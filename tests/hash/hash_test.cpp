#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "hash/addr_map.hpp"
#include "util/prng.hpp"

namespace parda {
namespace {

TEST(AddrMapTest, EmptyMap) {
  AddrMap map;
  EXPECT_EQ(map.size(), 0u);
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(42), nullptr);
  EXPECT_FALSE(map.contains(42));
  EXPECT_FALSE(map.erase(42));
}

TEST(AddrMapTest, InsertFindErase) {
  AddrMap map;
  EXPECT_TRUE(map.insert_or_assign(10, 100));
  EXPECT_TRUE(map.insert_or_assign(20, 200));
  ASSERT_NE(map.find(10), nullptr);
  EXPECT_EQ(*map.find(10), 100u);
  ASSERT_NE(map.find(20), nullptr);
  EXPECT_EQ(*map.find(20), 200u);
  EXPECT_EQ(map.size(), 2u);

  EXPECT_FALSE(map.insert_or_assign(10, 111));  // overwrite, not new
  EXPECT_EQ(*map.find(10), 111u);
  EXPECT_EQ(map.size(), 2u);

  EXPECT_TRUE(map.erase(10));
  EXPECT_EQ(map.find(10), nullptr);
  EXPECT_FALSE(map.erase(10));
  EXPECT_EQ(map.size(), 1u);
}

TEST(AddrMapTest, FindReturnsMutablePointer) {
  AddrMap map;
  map.insert_or_assign(5, 50);
  *map.find(5) = 99;
  EXPECT_EQ(*map.find(5), 99u);
}

TEST(AddrMapTest, GrowthPreservesEntries) {
  AddrMap map;
  for (Addr a = 0; a < 10000; ++a) map.insert_or_assign(a, a * 3);
  EXPECT_EQ(map.size(), 10000u);
  for (Addr a = 0; a < 10000; ++a) {
    ASSERT_NE(map.find(a), nullptr) << a;
    EXPECT_EQ(*map.find(a), a * 3);
  }
}

TEST(AddrMapTest, ClearEmptiesButKeepsCapacity) {
  AddrMap map;
  for (Addr a = 0; a < 100; ++a) map.insert_or_assign(a, a);
  const std::size_t cap = map.capacity();
  map.clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.capacity(), cap);
  EXPECT_EQ(map.find(5), nullptr);
  map.insert_or_assign(5, 7);
  EXPECT_EQ(*map.find(5), 7u);
}

TEST(AddrMapTest, ReserveAvoidsRehash) {
  AddrMap map;
  map.reserve(5000);
  const std::size_t cap = map.capacity();
  for (Addr a = 0; a < 5000; ++a) map.insert_or_assign(a, a);
  EXPECT_EQ(map.capacity(), cap);
}

TEST(AddrMapTest, EntriesMatchesContents) {
  AddrMap map;
  for (Addr a = 0; a < 57; ++a) map.insert_or_assign(a * 7, a);
  auto entries = map.entries();
  ASSERT_EQ(entries.size(), 57u);
  std::sort(entries.begin(), entries.end());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].first, i * 7);
    EXPECT_EQ(entries[i].second, i);
  }
}

TEST(AddrMapTest, ForEachVisitsEverythingOnce) {
  AddrMap map;
  for (Addr a = 100; a < 200; ++a) map.insert_or_assign(a, a + 1);
  std::unordered_map<Addr, Timestamp> seen;
  map.for_each([&](Addr a, Timestamp t) {
    EXPECT_TRUE(seen.emplace(a, t).second) << "duplicate visit " << a;
  });
  EXPECT_EQ(seen.size(), 100u);
  for (const auto& [a, t] : seen) EXPECT_EQ(t, a + 1);
}

TEST(AddrMapTest, MaxProbeLengthStaysSmall) {
  AddrMap map;
  for (Addr a = 0; a < 100000; ++a) map.insert_or_assign(a * 12345, a);
  // Robin-hood at <= 75% load keeps probe chains very short.
  EXPECT_LE(map.max_probe_length(), 32u);
}

TEST(AddrMapTest, AdversarialProbeChainSurvivesSaturation) {
  // Brute-force ~300 keys whose mix64 hashes land in one bucket of a
  // 1024-slot table. With the old 8-bit probe-distance encoding the chain
  // reached the 0xFF empty sentinel and silently corrupted the table; now
  // the dib field is wider and a chain probing past kGrowProbeLimit
  // forces an early rehash that splits the bucket.
  constexpr std::size_t kMask = 1023;
  constexpr std::size_t kBucket = 7;
  std::vector<Addr> keys;
  for (Addr k = 0; keys.size() < 300; ++k) {
    if ((static_cast<std::size_t>(mix64(k)) & kMask) == kBucket) {
      keys.push_back(k);
    }
  }
  AddrMap map;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_TRUE(map.insert_or_assign(keys[i], i));
  }
  EXPECT_EQ(map.size(), keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    ASSERT_NE(map.find(keys[i]), nullptr) << "key index " << i;
    EXPECT_EQ(*map.find(keys[i]), i);
  }
  // The forced growth must have split the chain well below the limit.
  EXPECT_LT(map.max_probe_length(), 255u);

  // Backward-shift deletion on the long chain: erase half, keep the rest.
  for (std::size_t i = 0; i < keys.size(); i += 2) {
    EXPECT_TRUE(map.erase(keys[i]));
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (i % 2 == 0) {
      EXPECT_EQ(map.find(keys[i]), nullptr);
    } else {
      ASSERT_NE(map.find(keys[i]), nullptr);
      EXPECT_EQ(*map.find(keys[i]), i);
    }
  }
}

TEST(AddrMapTest, RandomOpsMatchStdUnorderedMap) {
  AddrMap map;
  std::unordered_map<Addr, Timestamp> ref;
  Xoshiro256 rng(12345);
  for (int step = 0; step < 200000; ++step) {
    const Addr key = rng.below(500);  // small key space => heavy churn
    const int op = static_cast<int>(rng.below(3));
    if (op == 0) {
      const Timestamp value = rng();
      EXPECT_EQ(map.insert_or_assign(key, value),
                ref.insert_or_assign(key, value).second);
    } else if (op == 1) {
      EXPECT_EQ(map.erase(key), ref.erase(key) > 0);
    } else {
      const Timestamp* found = map.find(key);
      const auto it = ref.find(key);
      if (it == ref.end()) {
        EXPECT_EQ(found, nullptr);
      } else {
        ASSERT_NE(found, nullptr);
        EXPECT_EQ(*found, it->second);
      }
    }
    EXPECT_EQ(map.size(), ref.size());
  }
}

TEST(AddrMapTest, HandlesHugeKeys) {
  AddrMap map;
  const Addr keys[] = {0, ~0ULL, 1ULL << 63, (1ULL << 40) + 3};
  for (std::size_t i = 0; i < 4; ++i) map.insert_or_assign(keys[i], i);
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_NE(map.find(keys[i]), nullptr);
    EXPECT_EQ(*map.find(keys[i]), i);
  }
}

}  // namespace
}  // namespace parda
