#include <gtest/gtest.h>

#include <vector>

#include "cachesim/lru_cache.hpp"
#include "cachesim/set_assoc_cache.hpp"
#include "seq/olken.hpp"
#include "workload/generators.hpp"

namespace parda {
namespace {

TEST(LruCacheTest, HitsAndMisses) {
  LruCache cache(2);
  EXPECT_FALSE(cache.access(1));  // miss
  EXPECT_FALSE(cache.access(2));  // miss
  EXPECT_TRUE(cache.access(1));   // hit
  EXPECT_FALSE(cache.access(3));  // miss, evicts 2 (LRU)
  EXPECT_FALSE(cache.access(2));  // miss (was evicted)
  EXPECT_TRUE(cache.access(3));   // hit
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 4u);
  EXPECT_EQ(cache.accesses(), 6u);
}

TEST(LruCacheTest, CapacityOneDegeneratesToLastAddress) {
  LruCache cache(1);
  EXPECT_FALSE(cache.access(1));
  EXPECT_TRUE(cache.access(1));
  EXPECT_FALSE(cache.access(2));
  EXPECT_FALSE(cache.access(1));
  EXPECT_EQ(cache.resident(), 1u);
}

TEST(LruCacheTest, EvictionIsLeastRecentlyUsed) {
  LruCache cache(3);
  cache.access(1);
  cache.access(2);
  cache.access(3);
  cache.access(1);            // recency: 1,3,2
  EXPECT_FALSE(cache.access(4));  // evicts 2
  EXPECT_TRUE(cache.access(1));
  EXPECT_TRUE(cache.access(3));
  EXPECT_FALSE(cache.access(2));
}

TEST(LruCacheTest, ResetClearsEverything) {
  LruCache cache(4);
  cache.access(1);
  cache.access(1);
  cache.reset();
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_EQ(cache.resident(), 0u);
  EXPECT_FALSE(cache.access(1));
}

TEST(LruCacheTest, MatchesHistogramPredictionExactly) {
  // Advantage (1) of Section I: hits(C) == #refs with distance < C.
  UniformRandomWorkload w(500, 77);
  const auto trace = generate_trace(w, 20000);
  const Histogram hist = olken_analysis(trace);
  for (std::uint64_t c : {1u, 2u, 7u, 32u, 100u, 499u, 500u, 600u}) {
    LruCache cache(c);
    for (Addr a : trace) cache.access(a);
    EXPECT_EQ(cache.hits(), hist.hits_below(c)) << "C=" << c;
    EXPECT_EQ(cache.misses(), hist.total() - hist.hits_below(c));
  }
}

TEST(LruCacheTest, WritebackAccounting) {
  LruCache cache(2);
  cache.access(1, /*is_write=*/true);
  cache.access(2, /*is_write=*/false);
  EXPECT_EQ(cache.dirty_resident(), 1u);
  cache.access(3);  // evicts 1 (dirty) -> writeback
  EXPECT_EQ(cache.writebacks(), 1u);
  cache.access(4);  // evicts 2 (clean) -> no writeback
  EXPECT_EQ(cache.writebacks(), 1u);
  EXPECT_EQ(cache.dirty_resident(), 0u);
}

TEST(LruCacheTest, WriteHitMarksDirty) {
  LruCache cache(2);
  cache.access(1);                   // clean
  cache.access(1, /*is_write=*/true);  // hit, dirties
  cache.access(2);
  cache.access(3);  // evicts 1 -> writeback
  EXPECT_EQ(cache.writebacks(), 1u);
}

TEST(LruCacheTest, ReadOnlyTraceNeverWritesBack) {
  UniformRandomWorkload w(200, 5);
  const auto trace = generate_trace(w, 5000);
  LruCache cache(32);
  for (Addr a : trace) cache.access(a);
  EXPECT_EQ(cache.writebacks(), 0u);
  EXPECT_EQ(cache.dirty_resident(), 0u);
}

TEST(SetAssocCacheTest, WritebackAccounting) {
  // One set, two ways: a write-allocated line is evicted dirty.
  SetAssocCache sa(CacheConfig{2, 2, 1});
  sa.access(1, /*is_write=*/true);
  sa.access(2);
  sa.access(3);  // evicts LRU (1, dirty)
  EXPECT_EQ(sa.writebacks(), 1u);
  sa.access(4);  // evicts 2 (clean)
  EXPECT_EQ(sa.writebacks(), 1u);
}

TEST(SetAssocCacheTest, FullyAssociativeMatchesLru) {
  // One set with W ways and LRU replacement == fully associative LRU of W.
  UniformRandomWorkload w(100, 3);
  const auto trace = generate_trace(w, 5000);
  SetAssocCache sa(CacheConfig{32, 32, 1});
  LruCache lru(32);
  for (Addr a : trace) {
    EXPECT_EQ(sa.access(a), lru.access(a));
  }
}

TEST(SetAssocCacheTest, BlockGranularityCoalesces) {
  // Sequential words in one block: first access misses, next block_words-1
  // hit.
  SetAssocCache sa(CacheConfig{64, 8, 8});
  for (Addr a = 0; a < 64; ++a) sa.access(a);
  EXPECT_EQ(sa.misses(), 8u);  // one per block
  EXPECT_EQ(sa.hits(), 56u);
}

TEST(SetAssocCacheTest, AssociativityAffectsConflicts) {
  // Cycle over more blocks than a direct-mapped cache can hold without
  // conflicts; higher associativity with same capacity cannot do worse on
  // average for this cyclic pattern.
  SequentialWorkload w(64);
  const auto trace = generate_trace(w, 10000);
  SetAssocCache direct(CacheConfig{128, 1, 1});
  SetAssocCache assoc(CacheConfig{128, 128, 1});
  for (Addr a : trace) {
    direct.access(a);
    assoc.access(a);
  }
  // Capacity 128 > footprint 64: the fully associative cache only takes
  // compulsory misses; direct-mapped may conflict through hashing.
  EXPECT_EQ(assoc.misses(), 64u);
  EXPECT_GE(direct.misses(), assoc.misses());
}

TEST(SetAssocCacheTest, ResetRestoresColdState) {
  SetAssocCache sa(CacheConfig{16, 4, 1});
  sa.access(1);
  sa.access(1);
  sa.reset();
  EXPECT_EQ(sa.accesses(), 0u);
  EXPECT_FALSE(sa.access(1));
}

TEST(SetAssocCacheTest, MissRatioComputation) {
  SetAssocCache sa(CacheConfig{16, 4, 1});
  EXPECT_DOUBLE_EQ(sa.miss_ratio(), 0.0);
  sa.access(1);
  sa.access(1);
  EXPECT_DOUBLE_EQ(sa.miss_ratio(), 0.5);
}

}  // namespace
}  // namespace parda
