#include <gtest/gtest.h>

#include <vector>

#include "cachesim/hierarchy.hpp"
#include "seq/olken.hpp"
#include "workload/generators.hpp"

namespace parda {
namespace {

TEST(CacheHierarchyTest, BasicLevelRouting) {
  CacheHierarchy h({2, 4}, HierarchyPolicy::kGlobalLru);
  EXPECT_EQ(h.access(1), 2u);  // cold: misses both levels
  EXPECT_EQ(h.access(1), 0u);  // L1 hit
  h.access(2);
  h.access(3);                 // 1 evicted from L1 (cap 2), still in L2
  EXPECT_EQ(h.access(1), 1u);  // L2 hit
  EXPECT_EQ(h.level(0).accesses, 5u);
  EXPECT_EQ(h.level(0).hits, 1u);
  EXPECT_EQ(h.level(1).accesses, 4u);  // only L1 misses descend
  EXPECT_EQ(h.level(1).hits, 1u);
  EXPECT_EQ(h.memory_accesses(), 3u);
}

TEST(CacheHierarchyTest, GlobalLruMatchesHistogramPredictionExactly) {
  ZipfWorkload w(600, 0.9, 7);
  const auto trace = generate_trace(w, 30000);
  const Histogram hist = olken_analysis(trace);
  const std::vector<std::uint64_t> capacities{16, 128, 512};

  CacheHierarchy h(capacities, HierarchyPolicy::kGlobalLru);
  for (Addr a : trace) h.access(a);

  const auto predicted = predict_level_hits(hist, capacities);
  for (std::size_t i = 0; i < capacities.size(); ++i) {
    EXPECT_EQ(h.level(i).hits, predicted[i]) << "level " << i;
  }
  EXPECT_EQ(h.memory_accesses(),
            hist.total() - hist.hits_below(capacities.back()));
}

TEST(CacheHierarchyTest, FilteredLruApproximatesPrediction) {
  // Realistic filtering perturbs L2 recency: prediction is close but not
  // exact — quantify the gap instead of asserting equality.
  ZipfWorkload w(600, 0.9, 9);
  const auto trace = generate_trace(w, 30000);
  const Histogram hist = olken_analysis(trace);
  const std::vector<std::uint64_t> capacities{16, 256};

  CacheHierarchy h(capacities, HierarchyPolicy::kFilteredLru);
  for (Addr a : trace) h.access(a);

  const auto predicted = predict_level_hits(hist, capacities);
  // L1 sees the raw stream: always exact.
  EXPECT_EQ(h.level(0).hits, predicted[0]);
  // L2 drifts, but stays within 15% of its prediction on this workload.
  const double got = static_cast<double>(h.level(1).hits);
  const double want = static_cast<double>(predicted[1]);
  EXPECT_NEAR(got, want, want * 0.15 + 50.0);
}

TEST(CacheHierarchyTest, FilteredNeverOutperformsMemoryTrafficOfGlobal) {
  // Filtering can only degrade L2 (it sees less recency information);
  // total memory traffic of the filtered hierarchy is >= global-LRU's.
  UniformRandomWorkload w(400, 3);
  const auto trace = generate_trace(w, 20000);
  CacheHierarchy global({8, 128}, HierarchyPolicy::kGlobalLru);
  CacheHierarchy filtered({8, 128}, HierarchyPolicy::kFilteredLru);
  for (Addr a : trace) {
    global.access(a);
    filtered.access(a);
  }
  EXPECT_GE(filtered.memory_accesses(), global.memory_accesses());
}

TEST(CacheHierarchyTest, ResetClearsEverything) {
  CacheHierarchy h({2, 8}, HierarchyPolicy::kGlobalLru);
  h.access(1);
  h.access(1);
  h.reset();
  EXPECT_EQ(h.level(0).accesses, 0u);
  EXPECT_EQ(h.memory_accesses(), 0u);
  EXPECT_EQ(h.access(1), 2u);  // cold again
  EXPECT_EQ(h.level(1).capacity, 8u);
}

TEST(PredictLevelHitsTest, PartitionsTotalHits) {
  Histogram hist;
  hist.record(0, 10);
  hist.record(5, 20);
  hist.record(50, 30);
  hist.record(kInfiniteDistance, 40);
  const auto hits = predict_level_hits(hist, {1, 16, 64});
  EXPECT_EQ(hits, (std::vector<std::uint64_t>{10, 20, 30}));
}

}  // namespace
}  // namespace parda
