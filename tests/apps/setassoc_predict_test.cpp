// Tests for Smith's set-associative miss model driven by reuse distance
// histograms (the Marin & Mellor-Crummey application, paper ref [11]).
#include <gtest/gtest.h>

#include <vector>

#include "apps/miss_rate.hpp"
#include "cachesim/set_assoc_cache.hpp"
#include "hist/mrc.hpp"
#include "seq/olken.hpp"
#include "workload/generators.hpp"

namespace parda {
namespace {

TEST(SetAssocProbabilityTest, ZeroDistanceNeverMisses) {
  EXPECT_DOUBLE_EQ(set_assoc_miss_probability(0, 64, 8), 0.0);
  EXPECT_DOUBLE_EQ(set_assoc_miss_probability(7, 64, 8), 0.0);
}

TEST(SetAssocProbabilityTest, FullyAssociativeStepFunction) {
  // One set of A ways == fully associative cache of A entries: miss iff
  // d >= A with probability 1 (every intervening block is in the set).
  for (Distance d : {0u, 3u, 7u}) {
    EXPECT_DOUBLE_EQ(set_assoc_miss_probability(d, 1, 8), 0.0) << d;
  }
  for (Distance d : {8u, 9u, 100u}) {
    EXPECT_DOUBLE_EQ(set_assoc_miss_probability(d, 1, 8), 1.0) << d;
  }
}

TEST(SetAssocProbabilityTest, MonotoneInDistance) {
  double prev = 0.0;
  for (Distance d = 0; d < 4000; d += 37) {
    const double p = set_assoc_miss_probability(d, 128, 4);
    EXPECT_GE(p, prev - 1e-12) << d;
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
}

TEST(SetAssocProbabilityTest, MoreSetsFewerMisses) {
  const Distance d = 500;
  EXPECT_GT(set_assoc_miss_probability(d, 16, 4),
            set_assoc_miss_probability(d, 64, 4));
  EXPECT_GT(set_assoc_miss_probability(d, 64, 2),
            set_assoc_miss_probability(d, 64, 8));
}

TEST(SetAssocPredictTest, EmptyHistogram) {
  EXPECT_DOUBLE_EQ(predict_set_assoc_miss_ratio(Histogram{}, 64, 8), 0.0);
}

TEST(SetAssocPredictTest, AllInfinitiesMissEverywhere) {
  Histogram h;
  h.record(kInfiniteDistance, 100);
  EXPECT_DOUBLE_EQ(predict_set_assoc_miss_ratio(h, 64, 8), 1.0);
}

TEST(SetAssocPredictTest, ShortDistancesAlwaysHit) {
  Histogram h;
  h.record(0, 50);
  h.record(3, 50);
  // d < ways can never gather enough evictors.
  EXPECT_DOUBLE_EQ(predict_set_assoc_miss_ratio(h, 16, 8), 0.0);
}

TEST(SetAssocPredictTest, SingleSetMatchesFullyAssociativeModel) {
  Histogram h;
  h.record(2, 10);   // hit in a 1x8 cache
  h.record(20, 10);  // miss
  h.record(kInfiniteDistance, 20);
  EXPECT_NEAR(predict_set_assoc_miss_ratio(h, 1, 8), 30.0 / 40.0, 1e-9);
}

TEST(SetAssocPredictTest, TracksSimulationOnRandomWorkload) {
  // The binomial model's home turf: addresses spread uniformly over sets.
  UniformRandomWorkload w(2000, 7);
  const auto trace = generate_trace(w, 60000);
  const Histogram hist = olken_analysis(trace);

  for (const auto& [blocks, ways] : std::vector<std::pair<std::uint64_t,
                                                          std::uint32_t>>{
           {256, 4}, {512, 8}, {1024, 16}}) {
    SetAssocCache sim(CacheConfig{blocks, ways, 1});
    for (Addr a : trace) sim.access(a);
    const double predicted =
        predict_set_assoc_miss_ratio(hist, blocks / ways, ways);
    EXPECT_NEAR(predicted, sim.miss_ratio(), 0.06)
        << blocks << "x" << ways;
  }
}

TEST(SetAssocPredictTest, PredictionBetweenDirectMappedAndFullyAssoc) {
  ZipfWorkload w(1000, 0.8, 3);
  const auto trace = generate_trace(w, 30000);
  const Histogram hist = olken_analysis(trace);
  const std::uint64_t capacity = 256;
  const double direct = predict_set_assoc_miss_ratio(hist, capacity, 1);
  const double eight_way =
      predict_set_assoc_miss_ratio(hist, capacity / 8, 8);
  const double fully = miss_ratio(hist, capacity);
  // Higher associativity at equal capacity approaches the LRU model.
  EXPECT_GE(direct, eight_way - 1e-9);
  EXPECT_GE(eight_way, fully - 1e-9);
}

}  // namespace
}  // namespace parda
