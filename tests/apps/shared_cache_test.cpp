#include <gtest/gtest.h>

#include <vector>

#include "apps/shared_cache.hpp"
#include "hist/mrc.hpp"
#include "seq/olken.hpp"
#include "workload/generators.hpp"

namespace parda {
namespace {

TEST(InterleaveTest, RoundRobinAlternates) {
  const std::vector<std::vector<Addr>> streams{{1, 2, 3}, {10, 20, 30}};
  const InterleavedTrace mix =
      interleave_traces(streams, InterleavePolicy::kRoundRobin);
  EXPECT_EQ(mix.addresses, (std::vector<Addr>{1, 10, 2, 20, 3, 30}));
  EXPECT_EQ(mix.origin,
            (std::vector<std::uint32_t>{0, 1, 0, 1, 0, 1}));
}

TEST(InterleaveTest, RoundRobinUnevenLengths) {
  const std::vector<std::vector<Addr>> streams{{1, 2, 3, 4, 5}, {10}};
  const InterleavedTrace mix =
      interleave_traces(streams, InterleavePolicy::kRoundRobin);
  EXPECT_EQ(mix.addresses, (std::vector<Addr>{1, 10, 2, 3, 4, 5}));
}

TEST(InterleaveTest, RandomPreservesPerStreamOrder) {
  std::vector<std::vector<Addr>> streams{{}, {}};
  for (Addr a = 0; a < 500; ++a) streams[0].push_back(a);
  for (Addr a = 0; a < 300; ++a) streams[1].push_back((1ULL << 40) + a);
  const InterleavedTrace mix =
      interleave_traces(streams, InterleavePolicy::kRandom, 7);
  ASSERT_EQ(mix.addresses.size(), 800u);
  Addr next0 = 0;
  Addr next1 = 1ULL << 40;
  for (std::size_t i = 0; i < mix.addresses.size(); ++i) {
    if (mix.origin[i] == 0) {
      EXPECT_EQ(mix.addresses[i], next0++);
    } else {
      EXPECT_EQ(mix.addresses[i], next1++);
    }
  }
  EXPECT_EQ(next0, 500u);
}

TEST(InterleaveTest, EmptyStreams) {
  const InterleavedTrace mix = interleave_traces(
      {{}, {}}, InterleavePolicy::kRandom, 3);
  EXPECT_TRUE(mix.addresses.empty());
}

TEST(SharedCacheTest, ViewsPartitionCombined) {
  std::vector<std::vector<Addr>> streams;
  streams.push_back(generate_trace(
      *std::make_unique<ZipfWorkload>(100, 1.0, 3, 0), 4000));
  streams.push_back(generate_trace(
      *std::make_unique<SequentialWorkload>(300, 1), 4000));
  const SharedCacheAnalysis analysis = analyze_shared_cache(
      streams, InterleavePolicy::kRoundRobin);
  Histogram rebuilt = analysis.shared_view[0];
  rebuilt.merge(analysis.shared_view[1]);
  EXPECT_TRUE(rebuilt == analysis.combined);
  EXPECT_EQ(analysis.combined.total(), 8000u);
}

TEST(SharedCacheTest, InterleavingInflatesDistances) {
  // A stream with tight reuse gets its distances stretched by a streaming
  // co-runner: contention factor > 1 at mid cache sizes.
  std::vector<std::vector<Addr>> streams;
  streams.push_back(generate_trace(
      *std::make_unique<ZipfWorkload>(64, 1.1, 5, 0), 20000));
  streams.push_back(generate_trace(
      *std::make_unique<SequentialWorkload>(4096, 1), 20000));
  const SharedCacheAnalysis analysis = analyze_shared_cache(
      streams, InterleavePolicy::kRoundRobin);
  // Alone, the zipf stream fits comfortably in 64 entries; sharing with a
  // 4096-footprint streamer displaces it.
  const double factor = analysis.contention_factor(0, 64);
  EXPECT_GT(factor, 1.5);
  // With a cache big enough for both, contention vanishes.
  EXPECT_NEAR(analysis.contention_factor(0, 1 << 14), 1.0, 1e-9);
}

TEST(SharedCacheTest, DisjointStreamsKeepTheirInfinities) {
  std::vector<std::vector<Addr>> streams;
  streams.push_back({1, 2, 1, 2});
  streams.push_back({100, 200, 100});
  const SharedCacheAnalysis analysis = analyze_shared_cache(
      streams, InterleavePolicy::kRoundRobin);
  EXPECT_EQ(analysis.shared_view[0].infinities(), 2u);
  EXPECT_EQ(analysis.shared_view[1].infinities(), 2u);
  EXPECT_EQ(analysis.combined.infinities(), 4u);
  // Solo views match direct analysis.
  EXPECT_TRUE(analysis.solo_view[0] == olken_analysis(streams[0]));
}

TEST(SharedCacheTest, SymmetricStreamsSufferEqually) {
  std::vector<std::vector<Addr>> streams;
  streams.push_back(generate_trace(
      *std::make_unique<UniformRandomWorkload>(256, 3, 0), 10000));
  streams.push_back(generate_trace(
      *std::make_unique<UniformRandomWorkload>(256, 3, 1), 10000));
  const SharedCacheAnalysis analysis = analyze_shared_cache(
      streams, InterleavePolicy::kRoundRobin);
  const double f0 = analysis.contention_factor(0, 256);
  const double f1 = analysis.contention_factor(1, 256);
  EXPECT_NEAR(f0, f1, 0.05 * f0);
  EXPECT_GT(f0, 1.0);
}

}  // namespace
}  // namespace parda
