#include <gtest/gtest.h>

#include <vector>

#include "apps/superpage.hpp"
#include "workload/generators.hpp"

namespace parda {
namespace {

TEST(FoldToPagesTest, Folding) {
  const std::vector<Addr> trace{0, 1, 511, 512, 1024, 1025};
  EXPECT_EQ(fold_to_pages(trace, 512),
            (std::vector<Addr>{0, 0, 0, 1, 2, 2}));
  EXPECT_EQ(fold_to_pages(trace, 1), trace);
}

TEST(AnalyzePageSizeTest, FootprintShrinksWithPageSize) {
  SequentialWorkload w(8192);
  const auto trace = generate_trace(w, 20000);
  const PageSizeReport small = analyze_page_size(trace, 64);
  const PageSizeReport large = analyze_page_size(trace, 1024);
  EXPECT_EQ(small.pages_touched, 8192u / 64);
  EXPECT_EQ(large.pages_touched, 8192u / 1024);
  EXPECT_GT(small.pages_touched, large.pages_touched);
}

TEST(AnalyzePageSizeTest, TlbMissRatioDropsWithBiggerPages) {
  // A cyclic sweep over 8192 words under a 16-entry TLB: with 64-word
  // pages the 128-page cycle evicts every entry (one miss per page run);
  // with 1024-word pages the 8-page cycle fits and only faults cold.
  SequentialWorkload w(8192);
  const auto trace = generate_trace(w, 40000);
  const double small = analyze_page_size(trace, 64).tlb_miss_ratio(16);
  const double large = analyze_page_size(trace, 1024).tlb_miss_ratio(16);
  EXPECT_NEAR(small, 1.0 / 64.0, 0.003);  // one miss per 64-ref page run
  EXPECT_LT(large, 0.001);                // compulsory misses only
  EXPECT_GT(small, 10 * large);
}

TEST(RecommendPageSizeTest, PicksSmallestSufficientPage) {
  SequentialWorkload w(4096);
  const auto trace = generate_trace(w, 30000);
  // 16-entry TLB over a 4096-word cyclic sweep: 256-word pages (16-page
  // cycle) are the first size whose steady state never faults; 128-word
  // pages still fault once per 128-ref run (ratio ~1/128), which the
  // 0.005 tolerance rejects.
  const SuperpageChoice choice = recommend_page_size(
      trace, {64, 128, 256, 512, 1024}, 16, /*tolerance=*/0.005);
  EXPECT_EQ(choice.page_words, 256u);
  EXPECT_LT(choice.tlb_miss_ratio, 0.002);
  EXPECT_EQ(choice.mapped_words, 4096u);
}

TEST(RecommendPageSizeTest, TinyFootprintPicksSmallestPage) {
  // Everything fits at every page size: the smallest page wins (no waste).
  ZipfWorkload w(64, 1.0, 3);
  const auto trace = generate_trace(w, 5000);
  const SuperpageChoice choice =
      recommend_page_size(trace, {16, 64, 256}, 64);
  EXPECT_EQ(choice.page_words, 16u);
}

TEST(RecommendPageSizeTest, CandidateOrderIrrelevant) {
  SequentialWorkload w(4096);
  const auto trace = generate_trace(w, 20000);
  const SuperpageChoice a =
      recommend_page_size(trace, {1024, 64, 256, 512, 128}, 16);
  const SuperpageChoice b =
      recommend_page_size(trace, {64, 128, 256, 512, 1024}, 16);
  EXPECT_EQ(a.page_words, b.page_words);
}

}  // namespace
}  // namespace parda
