#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "apps/miss_rate.hpp"
#include "apps/partition.hpp"
#include "apps/phase_detect.hpp"
#include "seq/olken.hpp"
#include "workload/generators.hpp"

namespace parda {
namespace {

TEST(MissRateTest, PredictionMatchesLruSimulationExactly) {
  ZipfWorkload w(500, 0.9, 31);
  const auto trace = generate_trace(w, 20000);
  const Histogram hist = olken_analysis(trace);
  const auto report =
      predict_miss_rates(trace, hist, {1, 8, 64, 256, 1024});
  ASSERT_EQ(report.size(), 5u);
  EXPECT_DOUBLE_EQ(lru_prediction_error(report), 0.0);
  for (const auto& row : report) {
    EXPECT_DOUBLE_EQ(row.predicted, row.simulated_lru);
  }
}

TEST(MissRateTest, SetAssociativeTracksFullyAssociative) {
  ZipfWorkload w(400, 1.0, 7);
  const auto trace = generate_trace(w, 15000);
  const Histogram hist = olken_analysis(trace);
  const auto report = predict_miss_rates(trace, hist, {64, 256});
  for (const auto& row : report) {
    // An 8-way cache deviates from fully associative LRU, but for a
    // zipf-skewed stream it should stay in the same ballpark.
    EXPECT_NEAR(row.simulated_set_assoc, row.simulated_lru, 0.15);
  }
}

TEST(MissRateTest, MissRatioDecreasesWithCacheSize) {
  UniformRandomWorkload w(300, 3);
  const auto trace = generate_trace(w, 10000);
  const Histogram hist = olken_analysis(trace);
  const auto report =
      predict_miss_rates(trace, hist, {1, 4, 16, 64, 256, 512});
  for (std::size_t i = 1; i < report.size(); ++i) {
    EXPECT_LE(report[i].predicted, report[i - 1].predicted);
    EXPECT_LE(report[i].simulated_lru, report[i - 1].simulated_lru);
  }
}

TEST(PhaseDetectTest, FindsInjectedPhaseChanges) {
  // Three radically different locality regimes, 40k references each.
  std::vector<std::unique_ptr<Workload>> kids;
  kids.push_back(std::make_unique<SequentialWorkload>(10000, 0));
  kids.push_back(std::make_unique<ZipfWorkload>(64, 1.2, 5, 1));
  kids.push_back(std::make_unique<UniformRandomWorkload>(4096, 6, 2));
  PhasedWorkload w(std::move(kids), 40960);
  const auto trace = generate_trace(w, 3 * 40960);

  PhaseDetectOptions options;
  options.window = 8192;
  options.threshold = 0.4;
  const PhaseReport report = detect_phases(trace, options);

  // Expect a boundary near 40960 and near 81920 (within one window).
  bool near_first = false;
  bool near_second = false;
  for (const PhaseBoundary& b : report.boundaries) {
    if (b.position >= 40960 - 8192 && b.position <= 40960 + 8192) {
      near_first = true;
    }
    if (b.position >= 81920 - 8192 && b.position <= 81920 + 8192) {
      near_second = true;
    }
  }
  EXPECT_TRUE(near_first);
  EXPECT_TRUE(near_second);
  // And not dozens of spurious ones.
  EXPECT_LE(report.boundaries.size(), 6u);
}

TEST(PhaseDetectTest, HomogeneousTraceHasNoBoundaries) {
  ZipfWorkload w(256, 0.9, 13);
  const auto trace = generate_trace(w, 100000);
  PhaseDetectOptions options;
  options.window = 8192;
  options.threshold = 0.4;
  const PhaseReport report = detect_phases(trace, options);
  EXPECT_TRUE(report.boundaries.empty());
}

TEST(PhaseDetectTest, SignatureDistanceBasics) {
  const std::vector<double> a{1.0, 0.0};
  const std::vector<double> b{0.0, 1.0};
  EXPECT_DOUBLE_EQ(signature_distance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(signature_distance(a, b), 2.0);
  const std::vector<double> longer{0.5, 0.0, 0.5};
  EXPECT_DOUBLE_EQ(signature_distance(a, longer), 1.0);
}

TEST(PhaseDetectTest, EmptyTrace) {
  const PhaseReport report = detect_phases({}, PhaseDetectOptions{});
  EXPECT_TRUE(report.boundaries.empty());
  EXPECT_TRUE(report.signatures.empty());
}

Histogram hist_of(Workload&& w, std::size_t n) {
  auto trace = generate_trace(w, n);
  return olken_analysis(trace);
}

TEST(PartitionTest, GreedyFavorsCacheFriendlyStream) {
  // Stream A: tiny hot set (all reuse at short distance); stream B: large
  // uniform (reuse mostly beyond any small cache). A should win the ways
  // up to its footprint, then extra capacity flows to B.
  std::vector<Histogram> streams;
  streams.push_back(hist_of(ZipfWorkload(32, 1.2, 3), 20000));
  streams.push_back(hist_of(UniformRandomWorkload(100000, 4), 20000));
  const PartitionResult greedy = partition_greedy(streams, 64);
  EXPECT_GE(greedy.allocation[0], 24u);
  EXPECT_EQ(greedy.allocation[0] + greedy.allocation[1], 64u);
  // Greedy is a heuristic on non-convex miss curves, so compare it to the
  // even split with a small slack; the DP allocation must beat both.
  const PartitionResult even = partition_even(streams, 64);
  EXPECT_LE(static_cast<double>(greedy.total_misses),
            static_cast<double>(even.total_misses) * 1.01);
  const PartitionResult optimal = partition_optimal(streams, 64);
  EXPECT_LE(optimal.total_misses, even.total_misses);
  EXPECT_LE(optimal.total_misses, greedy.total_misses);
}

TEST(PartitionTest, OptimalNeverWorseThanGreedyOrEven) {
  std::vector<Histogram> streams;
  streams.push_back(hist_of(ZipfWorkload(64, 1.0, 5), 10000));
  streams.push_back(hist_of(SequentialWorkload(48), 10000));
  streams.push_back(hist_of(UniformRandomWorkload(512, 6), 10000));
  for (std::uint64_t budget : {8u, 32u, 96u, 256u}) {
    const auto optimal = partition_optimal(streams, budget);
    const auto greedy = partition_greedy(streams, budget);
    const auto even = partition_even(streams, budget);
    EXPECT_LE(optimal.total_misses, greedy.total_misses) << budget;
    EXPECT_LE(optimal.total_misses, even.total_misses) << budget;
    std::uint64_t sum = 0;
    for (std::uint64_t a : optimal.allocation) sum += a;
    EXPECT_EQ(sum, budget);
  }
}

TEST(PartitionTest, SingleStreamGetsEverything) {
  std::vector<Histogram> streams;
  streams.push_back(hist_of(ZipfWorkload(128, 0.8, 7), 5000));
  const auto result = partition_greedy(streams, 16);
  EXPECT_EQ(result.allocation, (std::vector<std::uint64_t>{16}));
  EXPECT_EQ(result.total_misses, stream_misses(streams[0], 16));
}

TEST(PartitionTest, ZeroBudget) {
  std::vector<Histogram> streams;
  streams.push_back(hist_of(SequentialWorkload(10), 100));
  streams.push_back(hist_of(SequentialWorkload(10, 1), 100));
  const auto result = partition_optimal(streams, 0);
  EXPECT_EQ(result.allocation, (std::vector<std::uint64_t>{0, 0}));
  EXPECT_EQ(result.total_misses, 200u);
}

TEST(PartitionTest, StreamMissesMatchesMrc) {
  Histogram h;
  h.record(0, 10);
  h.record(5, 10);
  h.record(kInfiniteDistance, 10);
  EXPECT_EQ(stream_misses(h, 0), 30u);
  EXPECT_EQ(stream_misses(h, 1), 20u);
  EXPECT_EQ(stream_misses(h, 6), 10u);
}

}  // namespace
}  // namespace parda
