// Exhaustive validation of the partitioners on small instances: the DP
// allocator must match brute-force enumeration exactly, and greedy must
// match it whenever the miss curves are convex.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "apps/partition.hpp"
#include "util/prng.hpp"

namespace parda {
namespace {

std::uint64_t total_misses(const std::vector<Histogram>& streams,
                           const std::vector<std::uint64_t>& alloc) {
  std::uint64_t total = 0;
  for (std::size_t k = 0; k < streams.size(); ++k) {
    total += stream_misses(streams[k], alloc[k]);
  }
  return total;
}

/// Enumerates every allocation of `budget` units over streams.size()
/// streams and returns the minimal total misses.
std::uint64_t brute_force(const std::vector<Histogram>& streams,
                          std::uint64_t budget) {
  std::uint64_t best = ~0ULL;
  std::vector<std::uint64_t> alloc(streams.size(), 0);
  std::function<void(std::size_t, std::uint64_t)> go =
      [&](std::size_t k, std::uint64_t left) {
        if (k + 1 == streams.size()) {
          alloc[k] = left;
          best = std::min(best, total_misses(streams, alloc));
          return;
        }
        for (std::uint64_t mine = 0; mine <= left; ++mine) {
          alloc[k] = mine;
          go(k + 1, left - mine);
        }
      };
  go(0, budget);
  return best;
}

Histogram random_histogram(Xoshiro256& rng, Distance max_d) {
  Histogram h;
  const int bins = 1 + static_cast<int>(rng.below(6));
  for (int b = 0; b < bins; ++b) {
    h.record(rng.below(max_d), 1 + rng.below(50));
  }
  h.record(kInfiniteDistance, rng.below(20));
  return h;
}

TEST(PartitionExhaustiveTest, DpMatchesBruteForceOnRandomInstances) {
  Xoshiro256 rng(2024);
  for (int instance = 0; instance < 40; ++instance) {
    const std::size_t k = 2 + rng.below(3);  // 2-4 streams
    std::vector<Histogram> streams;
    for (std::size_t s = 0; s < k; ++s) {
      streams.push_back(random_histogram(rng, 12));
    }
    const std::uint64_t budget = rng.below(15);
    const PartitionResult dp = partition_optimal(streams, budget);
    EXPECT_EQ(dp.total_misses, brute_force(streams, budget))
        << "instance " << instance;
    std::uint64_t sum = 0;
    for (std::uint64_t a : dp.allocation) sum += a;
    EXPECT_EQ(sum, budget);
    EXPECT_EQ(dp.total_misses, total_misses(streams, dp.allocation));
  }
}

TEST(PartitionExhaustiveTest, GreedyOptimalOnConvexCurves) {
  // Convex (diminishing-returns) miss curves: mass concentrated at
  // distance 0 makes every first unit the best unit.
  std::vector<Histogram> streams(3);
  streams[0].record(0, 100);
  streams[0].record(kInfiniteDistance, 5);
  streams[1].record(0, 60);
  streams[1].record(kInfiniteDistance, 5);
  streams[2].record(0, 10);
  streams[2].record(kInfiniteDistance, 5);
  for (std::uint64_t budget : {0u, 1u, 2u, 3u, 5u}) {
    const PartitionResult greedy = partition_greedy(streams, budget);
    const PartitionResult dp = partition_optimal(streams, budget);
    EXPECT_EQ(greedy.total_misses, dp.total_misses) << budget;
  }
}

TEST(PartitionExhaustiveTest, GreedyCanLoseOnConcaveCurves) {
  // A stream that only pays off at 3 units defeats unit-by-unit greedy:
  // stream A saves 10 misses per unit; stream B saves 100 but only once
  // it has all 3 units.
  std::vector<Histogram> streams(2);
  streams[0].record(0, 10);
  streams[0].record(1, 10);
  streams[0].record(2, 10);
  streams[1].record(2, 100);
  const PartitionResult greedy = partition_greedy(streams, 3);
  const PartitionResult dp = partition_optimal(streams, 3);
  EXPECT_EQ(dp.allocation, (std::vector<std::uint64_t>{0, 3}));
  EXPECT_LT(dp.total_misses, greedy.total_misses);
}

}  // namespace
}  // namespace parda
