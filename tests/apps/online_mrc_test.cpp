#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <span>
#include <vector>

#include "apps/online_mrc.hpp"
#include "core/parda.hpp"
#include "core/runtime.hpp"
#include "hist/mrc.hpp"
#include "seq/bounded.hpp"
#include "workload/generators.hpp"

namespace parda {
namespace {

TEST(OnlineMrcTest, NoDecayMatchesBoundedAnalysis) {
  ZipfWorkload w(300, 0.9, 3);
  const auto trace = generate_trace(w, 20000);
  OnlineMrcMonitor monitor(/*bound=*/256, /*window=*/1000, /*decay=*/1.0);
  for (Addr a : trace) monitor.access(a);
  const Histogram reference = bounded_analysis(trace, 256);
  EXPECT_TRUE(monitor.snapshot() == reference);
  for (std::uint64_t c : {1u, 16u, 128u, 256u}) {
    EXPECT_DOUBLE_EQ(monitor.miss_ratio(c), miss_ratio(reference, c));
  }
  EXPECT_EQ(monitor.references_seen(), trace.size());
  EXPECT_EQ(monitor.windows_completed(), trace.size() / 1000);
}

TEST(OnlineMrcTest, BatchedFeedMatchesPerReferenceLoop) {
  ZipfWorkload w(300, 0.9, 13);
  const auto trace = generate_trace(w, 23500);  // not a window multiple
  OnlineMrcMonitor batched(256, 1000, 0.75);
  // Feed in awkward batch sizes so segments straddle window boundaries.
  std::span<const Addr> rest(trace);
  for (std::size_t take = 1; !rest.empty(); take = take * 2 + 1) {
    const std::size_t n = std::min(take, rest.size());
    batched.feed(rest.first(n));
    rest = rest.subspan(n);
  }
  OnlineMrcMonitor looped(256, 1000, 0.75);
  for (Addr a : trace) looped.access(a);
  EXPECT_TRUE(batched.snapshot() == looped.snapshot());
  EXPECT_EQ(batched.references_seen(), looped.references_seen());
  EXPECT_EQ(batched.windows_completed(), looped.windows_completed());
}

TEST(OnlineMrcTest, DecayTracksPhaseChange) {
  // Phase 1: tiny hot set (low miss ratio at C=64). Phase 2: huge uniform
  // (high miss ratio). A decaying monitor converges to phase 2's regime;
  // a non-decaying one stays anchored to the long phase-1 history.
  std::vector<std::unique_ptr<Workload>> kids;
  kids.push_back(std::make_unique<ZipfWorkload>(32, 1.2, 5, 0));
  kids.push_back(std::make_unique<UniformRandomWorkload>(100000, 7, 1));
  PhasedWorkload w(std::move(kids), 50000);
  const auto trace = generate_trace(w, 100000);

  OnlineMrcMonitor decaying(1024, 2000, 0.5);
  OnlineMrcMonitor cumulative(1024, 2000, 1.0);
  for (Addr a : trace) {
    decaying.access(a);
    cumulative.access(a);
  }
  const double fresh = decaying.miss_ratio(64);
  const double stale = cumulative.miss_ratio(64);
  // Phase 2 misses virtually everything at C=64.
  EXPECT_GT(fresh, 0.9);
  // The cumulative monitor still averages in the hit-heavy first phase.
  EXPECT_LT(stale, 0.7);
}

TEST(OnlineMrcTest, PartialWindowIsVisibleImmediately) {
  OnlineMrcMonitor monitor(64, 1000000, 1.0);  // window never completes
  monitor.access(1);
  monitor.access(1);
  EXPECT_EQ(monitor.references_seen(), 2u);
  EXPECT_EQ(monitor.windows_completed(), 0u);
  // One infinity + one distance-0 hit: miss ratio at C=1 is 0.5.
  EXPECT_DOUBLE_EQ(monitor.miss_ratio(1), 0.5);
}

TEST(OnlineMrcTest, StateStaysBounded) {
  OnlineMrcMonitor monitor(128, 512, 0.9);
  UniformRandomWorkload w(50000, 9);
  const auto trace = generate_trace(w, 30000);
  for (Addr a : trace) monitor.access(a);
  EXPECT_EQ(monitor.bound(), 128u);
  // Everything beyond the bound is folded into infinities: no finite
  // distance can reach the bound.
  EXPECT_LT(monitor.snapshot().max_distance(), 128u);
  EXPECT_GT(monitor.snapshot().infinities(), 0u);
}

TEST(WindowedMrcTest, MatchesPerWindowColdAnalysisExactly) {
  // The runtime-backed monitor analyzes each completed window on the shared
  // pool; its aggregate must equal folding per-window one-shot
  // parda_analyze results (the old path: a fresh thread set per window).
  ZipfWorkload w(400, 0.9, 11);
  const auto trace = generate_trace(w, 12000);
  constexpr std::uint64_t kBound = 256;
  constexpr std::uint64_t kWindow = 1500;
  constexpr double kDecay = 0.5;

  core::PardaRuntime runtime;
  WindowedMrcMonitor monitor(runtime, kBound, kWindow, kDecay,
                             /*num_procs=*/2);
  for (Addr a : trace) monitor.access(a);

  PardaOptions options;
  options.num_procs = 2;
  options.bound = kBound;
  Histogram expected;
  std::size_t pos = 0;
  while (pos + kWindow <= trace.size()) {
    const std::span<const Addr> window(trace.data() + pos, kWindow);
    decayed_fold(expected, parda_analyze(window, options).hist, kDecay);
    pos += kWindow;
  }
  if (pos < trace.size()) {
    const std::span<const Addr> tail(trace.data() + pos, trace.size() - pos);
    expected.merge(parda_analyze(tail, options).hist);
  }

  EXPECT_TRUE(monitor.snapshot() == expected);
  EXPECT_EQ(monitor.references_seen(), trace.size());
  EXPECT_EQ(monitor.windows_completed(), trace.size() / kWindow);
  // Every window job reused the runtime's workers: one World, many reuses.
  EXPECT_EQ(runtime.capacity(), 2);
  EXPECT_GE(runtime.world_reuses(), monitor.windows_completed() - 1);
}

TEST(WindowedMrcTest, BatchedFeedMatchesPerReferenceLoop) {
  ZipfWorkload w(250, 0.9, 17);
  const auto trace = generate_trace(w, 7300);  // not a window multiple
  core::PardaRuntime runtime;
  WindowedMrcMonitor batched(runtime, 128, 1500, 0.5, /*num_procs=*/2);
  std::span<const Addr> rest(trace);
  for (std::size_t take = 7; !rest.empty(); take += 601) {
    const std::size_t n = std::min(take, rest.size());
    batched.feed(rest.first(n));
    rest = rest.subspan(n);
  }
  WindowedMrcMonitor looped(runtime, 128, 1500, 0.5, /*num_procs=*/2);
  for (Addr a : trace) looped.access(a);
  EXPECT_TRUE(batched.snapshot() == looped.snapshot());
  EXPECT_EQ(batched.windows_completed(), looped.windows_completed());
}

TEST(WindowedMrcTest, MissRatioAgreesWithInlineMonitorOnWindowMultiples) {
  // With decay=1 and window-aligned feeds, the windowed monitor differs
  // from the inline one only by cross-window reuses becoming infinities —
  // both count every reference exactly once.
  ZipfWorkload w(200, 1.0, 13);
  const auto trace = generate_trace(w, 8000);
  core::PardaRuntime runtime;
  WindowedMrcMonitor windowed(runtime, 128, 2000, 1.0, /*num_procs=*/2);
  OnlineMrcMonitor inline_monitor(128, 2000, 1.0);
  for (Addr a : trace) {
    windowed.access(a);
    inline_monitor.access(a);
  }
  const Histogram ws = windowed.snapshot();
  const Histogram is = inline_monitor.snapshot();
  EXPECT_EQ(ws.total(), is.total());
  EXPECT_GE(ws.infinities(), is.infinities());
}

}  // namespace
}  // namespace parda
