#include <gtest/gtest.h>

#include <vector>

#include "apps/time_distance.hpp"
#include "seq/olken.hpp"
#include "workload/generators.hpp"

namespace parda {
namespace {

TEST(TimeDistanceTest, SimpleTrace) {
  // a b a a: time distances inf, inf, 1, 0.
  const std::vector<Addr> trace{'a', 'b', 'a', 'a'};
  const Histogram h = time_distance_histogram(trace);
  EXPECT_EQ(h.infinities(), 2u);
  EXPECT_EQ(h.at(1), 1u);
  EXPECT_EQ(h.at(0), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(TimeDistanceTest, AgreesWithReuseOnDistinctIntervening) {
  // When all intervening references are distinct, both metrics coincide.
  const std::vector<Addr> trace{1, 2, 3, 4, 1};
  const Histogram td = time_distance_histogram(trace);
  const Histogram rd = olken_analysis(trace);
  EXPECT_EQ(td.at(3), 1u);
  EXPECT_EQ(rd.at(3), 1u);
}

TEST(TimeDistanceTest, ExceedsReuseWithRepeats) {
  // x a a a a x: time distance 4, reuse distance 1.
  const std::vector<Addr> trace{'x', 'a', 'a', 'a', 'a', 'x'};
  const LocalityComparison cmp = compare_locality_metrics(trace);
  EXPECT_EQ(cmp.time.at(4), 1u);
  EXPECT_EQ(cmp.reuse.at(1), 1u);
  EXPECT_GE(cmp.mean_gap(), 0.0);
}

TEST(TimeDistanceTest, SectionOneClaimTwo) {
  // Paper Section I, advantage (2): reuse distance is bounded by the
  // footprint M; time distance is not.
  ZipfWorkload w(50, 1.0, 7);
  const auto trace = generate_trace(w, 20000);
  const LocalityComparison cmp = compare_locality_metrics(trace);
  EXPECT_LT(cmp.reuse.max_distance(), 50u);          // < M
  EXPECT_GT(cmp.time.max_distance(), 50u);           // unbounded in M
  EXPECT_GE(cmp.mean_gap(), 0.0);                    // TD >= RD pointwise
  EXPECT_EQ(cmp.reuse.total(), cmp.time.total());
  EXPECT_EQ(cmp.reuse.infinities(), cmp.time.infinities());
}

TEST(TimeDistanceTest, ImmediateReuseIsZeroInBoth) {
  const std::vector<Addr> trace{9, 9, 9};
  const LocalityComparison cmp = compare_locality_metrics(trace);
  EXPECT_EQ(cmp.time.at(0), 2u);
  EXPECT_EQ(cmp.reuse.at(0), 2u);
}

}  // namespace
}  // namespace parda
