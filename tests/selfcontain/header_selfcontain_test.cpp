// Header self-containment: the real check is the generated per-header TUs
// compiled into the parda_header_selfcontain object library this test
// depends on (see tests/CMakeLists.txt) — each src/**/*.hpp is included
// first (and twice, catching missing include guards) in its own TU. This
// TU additionally proves the umbrella header is includable on its own and
// idempotent.
#include "parda.hpp"
#include "parda.hpp"  // include-guard check

#include <gtest/gtest.h>

namespace parda {
namespace {

TEST(HeaderSelfContain, UmbrellaExportsVersionAndNewApis) {
  EXPECT_STREQ(kVersionString, "1.0.0");
  // The umbrella must re-export the observability layer and the analyzer
  // concept (satellites of the observability PR): name them directly.
  EXPECT_FALSE(obs::enabled());
  static_assert(ReuseAnalyzer<OlkenAnalyzer<SplayTree>>);
}

}  // namespace
}  // namespace parda
