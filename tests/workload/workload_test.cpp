#include <gtest/gtest.h>

#include <set>
#include <unordered_set>
#include <vector>

#include "seq/olken.hpp"
#include "workload/generators.hpp"
#include "workload/spec.hpp"
#include "workload/workload.hpp"

namespace parda {
namespace {

std::size_t distinct_count(const std::vector<Addr>& trace) {
  return std::unordered_set<Addr>(trace.begin(), trace.end()).size();
}

TEST(SequentialWorkloadTest, CyclesOverFootprint) {
  SequentialWorkload w(4);
  const auto t = generate_trace(w, 10);
  const Addr b = region_base(0);
  EXPECT_EQ(t, (std::vector<Addr>{b, b + 1, b + 2, b + 3, b, b + 1, b + 2,
                                  b + 3, b, b + 1}));
}

TEST(SequentialWorkloadTest, ResetRestarts) {
  SequentialWorkload w(8);
  const auto first = generate_trace(w, 5);
  const auto second = take_trace(w, 5);
  EXPECT_EQ(first, second);
}

TEST(SequentialWorkloadTest, ReuseDistanceIsFootprintMinusOne) {
  SequentialWorkload w(100);
  const auto trace = generate_trace(w, 1000);
  const Histogram h = olken_analysis(trace);
  EXPECT_EQ(h.infinities(), 100u);
  EXPECT_EQ(h.at(99), 900u);  // every reuse at distance M-1
}

TEST(StridedWorkloadTest, TouchesWholeFootprintEventually) {
  StridedWorkload w(64, 8);
  const auto trace = generate_trace(w, 64 * 64);
  EXPECT_EQ(distinct_count(trace), 64u);
}

TEST(UniformRandomWorkloadTest, DeterministicAndInRange) {
  UniformRandomWorkload a(1000, 7);
  UniformRandomWorkload b(1000, 7);
  const auto ta = generate_trace(a, 5000);
  const auto tb = generate_trace(b, 5000);
  EXPECT_EQ(ta, tb);
  for (Addr x : ta) EXPECT_LT(x - region_base(0), 1000u);
  EXPECT_GT(distinct_count(ta), 900u);
}

TEST(ZipfWorkloadTest, SkewsTowardHotAddresses) {
  ZipfWorkload w(10000, 1.0, 11);
  const auto trace = generate_trace(w, 50000);
  std::size_t hot = 0;
  for (Addr a : trace) {
    if (a - region_base(0) < 10) ++hot;
  }
  // With alpha=1, the top 10 of 10000 elements draw ~30% of accesses.
  EXPECT_GT(hot, trace.size() / 10);
}

TEST(PointerChaseWorkloadTest, WalksAHamiltonianCycle) {
  PointerChaseWorkload w(257, 3);
  const auto trace = generate_trace(w, 257 * 2);
  // One full lap touches every node exactly once.
  std::set<Addr> first_lap(trace.begin(), trace.begin() + 257);
  EXPECT_EQ(first_lap.size(), 257u);
  // The second lap repeats the first exactly.
  for (std::size_t i = 0; i < 257; ++i) EXPECT_EQ(trace[i], trace[i + 257]);
}

TEST(PointerChaseWorkloadTest, ReuseDistanceIsFullFootprint) {
  PointerChaseWorkload w(128, 5);
  const Histogram h = olken_analysis(generate_trace(w, 128 * 4));
  EXPECT_EQ(h.infinities(), 128u);
  EXPECT_EQ(h.at(127), 128u * 3);
}

TEST(MatrixMultiplyWorkloadTest, FootprintIsThreeMatrices) {
  MatrixMultiplyWorkload w(8, 0);
  // One pass of the untiled kernel: n*n*(1 + 2n) addresses.
  const auto trace = generate_trace(w, 8 * 8 * (1 + 2 * 8));
  EXPECT_EQ(distinct_count(trace), 3u * 8 * 8);
}

TEST(MatrixMultiplyWorkloadTest, TiledChangesPatternNotFootprint) {
  MatrixMultiplyWorkload flat(8, 0);
  MatrixMultiplyWorkload tiled(8, 4);
  const std::size_t pass = 8 * 8 * (1 + 2 * 8);
  const auto tf = generate_trace(flat, pass);
  const auto tt = generate_trace(tiled, pass);
  EXPECT_EQ(distinct_count(tf), distinct_count(tt));
  EXPECT_NE(tf, tt);
  // Tiling must not increase the average reuse distance.
  const Histogram hf = olken_analysis(tf);
  const Histogram ht = olken_analysis(tt);
  EXPECT_EQ(hf.total(), ht.total());
}

TEST(StencilWorkloadTest, GeneratesBoundedAddresses) {
  StencilWorkload w(16, 16);
  const auto trace = generate_trace(w, 10000);
  for (Addr a : trace) EXPECT_LT(a - region_base(0), 2u * 16 * 16);
  EXPECT_GT(distinct_count(trace), 100u);
}

TEST(StackDistWorkloadTest, ProducesPrescribedDistances) {
  // 60% of references at depth 2, 20% at depth 10, 20% fresh.
  StackDistWorkload w({2, 10}, {0.6, 0.2}, 0.2, 42);
  const auto trace = generate_trace(w, 50000);
  const Histogram h = olken_analysis(trace);
  const auto total = static_cast<double>(h.total());
  EXPECT_NEAR(static_cast<double>(h.at(2)) / total, 0.6, 0.03);
  EXPECT_NEAR(static_cast<double>(h.at(10)) / total, 0.2, 0.03);
  EXPECT_NEAR(static_cast<double>(h.infinities()) / total, 0.2, 0.03);
  // Nothing else shows up.
  EXPECT_EQ(h.at(5), 0u);
}

TEST(MixWorkloadTest, DrawsFromAllChildren) {
  std::vector<std::unique_ptr<Workload>> kids;
  kids.push_back(std::make_unique<SequentialWorkload>(10, 0));
  kids.push_back(std::make_unique<SequentialWorkload>(10, 1));
  MixWorkload mix(std::move(kids), {0.5, 0.5}, 99);
  const auto trace = generate_trace(mix, 2000);
  std::size_t from_region1 = 0;
  for (Addr a : trace) {
    if (a >= region_base(1)) ++from_region1;
  }
  EXPECT_NEAR(static_cast<double>(from_region1), 1000.0, 120.0);
}

TEST(PhasedWorkloadTest, AlternatesChildrenInPhases) {
  std::vector<std::unique_ptr<Workload>> kids;
  kids.push_back(std::make_unique<SequentialWorkload>(4, 0));
  kids.push_back(std::make_unique<SequentialWorkload>(4, 1));
  PhasedWorkload w(std::move(kids), 100);
  const auto trace = generate_trace(w, 400);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_LT(trace[i], region_base(1));
  for (std::size_t i = 100; i < 200; ++i) {
    EXPECT_GE(trace[i], region_base(1));
  }
  for (std::size_t i = 200; i < 300; ++i) EXPECT_LT(trace[i], region_base(1));
}

TEST(MatrixMultiplyWorkloadTest, TilingReducesMeanReuseDistance) {
  // The textbook effect: tiling shortens B's reuse distances.
  MatrixMultiplyWorkload flat(24, 0);
  MatrixMultiplyWorkload tiled(24, 6);
  const std::size_t pass = 24 * 24 * (1 + 2 * 24);
  const Histogram hf = olken_analysis(generate_trace(flat, pass));
  const Histogram ht = olken_analysis(generate_trace(tiled, pass));
  EXPECT_LT(ht.mean_finite_distance(), hf.mean_finite_distance());
}

TEST(StencilWorkloadTest, NeighbourReuseIsShort) {
  StencilWorkload w(32, 32);
  const auto trace = generate_trace(w, 30000);
  const Histogram h = olken_analysis(trace);
  // West/east reuse is immediate; north/south reuse spans one grid row of
  // cells (~6 accesses each): the bulk of reuses resolve within a few
  // rows' worth of distinct addresses.
  EXPECT_GT(h.hits_below(8 * 32), h.finite_total() / 2);
}

TEST(StridedWorkloadTest, StrideOneMatchesSequentialWithinOneLap) {
  // After one full lap the strided walk rotates by one (to cover all
  // residues for larger strides), so compare only the first lap.
  StridedWorkload strided(50, 1);
  SequentialWorkload seq(50);
  EXPECT_EQ(generate_trace(strided, 50), generate_trace(seq, 50));
}

TEST(SpecProfilesTest, HasAllFifteenBenchmarks) {
  EXPECT_EQ(spec_profiles().size(), 15u);
  EXPECT_EQ(spec_profile("mcf").paper_m, 55'675'001u);
  EXPECT_EQ(spec_profile("dealII").paper_n, 66'801'413'934u);
  EXPECT_DOUBLE_EQ(spec_profile("libquantum").paper_parda, 58.81);
}

TEST(SpecProfilesTest, EveryProfileGenerates) {
  for (const SpecProfile& p : spec_profiles()) {
    auto w = make_spec_workload(p, /*scale=*/100000, /*seed=*/1);
    ASSERT_NE(w, nullptr) << p.name;
    const auto trace = generate_trace(*w, 20000);
    EXPECT_EQ(trace.size(), 20000u);
    EXPECT_GT(distinct_count(trace), 10u) << p.name;
  }
}

TEST(SpecProfilesTest, DeterministicAcrossInstances) {
  for (std::string_view name : {"mcf", "libquantum", "gcc"}) {
    auto a = make_spec_workload(name, 50000, 7);
    auto b = make_spec_workload(name, 50000, 7);
    EXPECT_EQ(generate_trace(*a, 5000), generate_trace(*b, 5000)) << name;
  }
}

TEST(SpecProfilesTest, FootprintScalesWithM) {
  // mcf's footprint dwarfs libquantum's at equal scale, as in Table IV.
  auto big = make_spec_workload("mcf", 10000, 3);
  auto small = make_spec_workload("libquantum", 10000, 3);
  const auto tb = generate_trace(*big, 60000);
  const auto ts = generate_trace(*small, 60000);
  EXPECT_GT(distinct_count(tb), 4 * distinct_count(ts));
}

TEST(SpecProfilesTest, ScaledHelpersNeverReturnZero) {
  for (const SpecProfile& p : spec_profiles()) {
    EXPECT_GE(p.scaled_m(~0ULL), 1u);
    EXPECT_GE(p.scaled_n(~0ULL), 1u);
  }
}

}  // namespace
}  // namespace parda
