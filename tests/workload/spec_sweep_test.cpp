// Parameterized sweep over every SPEC CPU2006 profile: each synthetic
// workload must be deterministic, have a sane footprint, and analyze to
// identical histograms through the sequential and parallel engines.
#include <gtest/gtest.h>

#include <string>
#include <unordered_set>

#include "core/parda.hpp"
#include "hist/mrc.hpp"
#include "seq/olken.hpp"
#include "workload/spec.hpp"

namespace parda {
namespace {

class SpecProfileSweep : public ::testing::TestWithParam<std::size_t> {
 protected:
  const SpecProfile& profile() const {
    return spec_profiles()[GetParam()];
  }
};

TEST_P(SpecProfileSweep, DeterministicStream) {
  auto a = make_spec_workload(profile(), 200000, 11);
  auto b = make_spec_workload(profile(), 200000, 11);
  EXPECT_EQ(generate_trace(*a, 4000), generate_trace(*b, 4000));
}

TEST_P(SpecProfileSweep, SeedChangesStreamForStochasticProfiles) {
  auto a = make_spec_workload(profile(), 200000, 1);
  auto b = make_spec_workload(profile(), 200000, 2);
  const auto ta = generate_trace(*a, 4000);
  const auto tb = generate_trace(*b, 4000);
  // Purely deterministic generators (libquantum's sweep) may coincide;
  // everything else should diverge.
  if (profile().name != "libquantum") {
    EXPECT_NE(ta, tb) << profile().name;
  }
}

TEST_P(SpecProfileSweep, ParallelEqualsSequential) {
  auto w = make_spec_workload(profile(), 300000, 5);
  const auto trace = generate_trace(*w, 5000);
  const Histogram expected = olken_analysis(trace);
  PardaOptions options;
  options.num_procs = 3;
  EXPECT_TRUE(parda_analyze(trace, options).hist == expected)
      << profile().name;
}

TEST_P(SpecProfileSweep, FootprintWithinSaneBounds) {
  const std::uint64_t scale = 100000;
  auto w = make_spec_workload(profile(), scale, 3);
  const auto trace = generate_trace(*w, 30000);
  std::unordered_set<Addr> distinct(trace.begin(), trace.end());
  // Footprint should be within an order of magnitude of the scaled M
  // (mixtures only approach their nominal footprint asymptotically).
  const auto target = static_cast<double>(profile().scaled_m(scale));
  EXPECT_GT(static_cast<double>(distinct.size()), target / 12.0)
      << profile().name;
  EXPECT_LT(static_cast<double>(distinct.size()), target * 12.0 + 256.0)
      << profile().name;
}

TEST_P(SpecProfileSweep, MissRatioCurveIsMonotone) {
  auto w = make_spec_workload(profile(), 300000, 9);
  const auto trace = generate_trace(*w, 8000);
  const Histogram hist = olken_analysis(trace);
  double prev = 1.1;
  for (std::uint64_t c = 1; c <= hist.max_distance() + 2; c *= 2) {
    const double r = miss_ratio(hist, c);
    EXPECT_LE(r, prev + 1e-12);
    prev = r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProfiles, SpecProfileSweep,
    ::testing::Range<std::size_t>(0, 15),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
      return std::string(spec_profiles()[info.param].name);
    });

}  // namespace
}  // namespace parda
