#include <gtest/gtest.h>

#include <stdexcept>
#include <unordered_set>

#include "seq/olken.hpp"
#include "workload/generators.hpp"
#include "workload/parse.hpp"

namespace parda {
namespace {

std::size_t distinct(const std::vector<Addr>& t) {
  return std::unordered_set<Addr>(t.begin(), t.end()).size();
}

TEST(ParseWorkloadTest, Sequential) {
  auto w = parse_workload("seq:m=8");
  const auto trace = generate_trace(*w, 16);
  SequentialWorkload expected(8);
  EXPECT_EQ(trace, generate_trace(expected, 16));
}

TEST(ParseWorkloadTest, ZipfWithAlpha) {
  auto w = parse_workload("zipf:m=1000,a=0.5", 7);
  ZipfWorkload expected(1000, 0.5, 7);
  EXPECT_EQ(generate_trace(*w, 500), generate_trace(expected, 500));
}

TEST(ParseWorkloadTest, ZipfDefaultAlpha) {
  auto w = parse_workload("zipf:m=100", 3);
  ZipfWorkload expected(100, 1.0, 3);
  EXPECT_EQ(generate_trace(*w, 200), generate_trace(expected, 200));
}

TEST(ParseWorkloadTest, StridedAndUniformAndPtrchase) {
  EXPECT_EQ(parse_workload("strided:m=64,s=8")->name(),
            StridedWorkload(64, 8).name());
  EXPECT_EQ(parse_workload("uniform:m=500", 9)->name(),
            UniformRandomWorkload(500, 9).name());
  EXPECT_EQ(parse_workload("ptrchase:m=128", 5)->name(),
            PointerChaseWorkload(128, 5).name());
}

TEST(ParseWorkloadTest, MatmulAndStencil) {
  EXPECT_EQ(parse_workload("matmul:n=16,t=4")->name(),
            MatrixMultiplyWorkload(16, 4).name());
  EXPECT_EQ(parse_workload("stencil:w=32,h=16")->name(),
            StencilWorkload(32, 16).name());
}

TEST(ParseWorkloadTest, StackDistLists) {
  auto w = parse_workload("stackdist:d=2/10,w=0.6/0.2,miss=0.2", 11);
  const auto trace = generate_trace(*w, 20000);
  const Histogram h = olken_analysis(trace);
  EXPECT_NEAR(static_cast<double>(h.at(2)) / static_cast<double>(h.total()),
              0.6, 0.05);
}

TEST(ParseWorkloadTest, SpecProfile) {
  auto w = parse_workload("spec:libquantum,scale=100000", 3);
  ASSERT_NE(w, nullptr);
  const auto trace = generate_trace(*w, 1000);
  EXPECT_EQ(distinct(trace), 64u);  // scaled + floored footprint
}

TEST(ParseWorkloadTest, MixComposite) {
  auto w = parse_workload("mix:seq:m=10|uniform:m=10,w=0.5/0.5", 13);
  const auto trace = generate_trace(*w, 4000);
  // Children land in distinct regions: both present.
  bool region0 = false;
  bool region1 = false;
  for (Addr a : trace) {
    if (a < region_base(1)) region0 = true;
    if (a >= region_base(1) && a < region_base(2)) region1 = true;
  }
  EXPECT_TRUE(region0);
  EXPECT_TRUE(region1);
}

TEST(ParseWorkloadTest, PhasedComposite) {
  auto w = parse_workload("phased:seq:m=4|uniform:m=100,len=50", 3);
  const auto trace = generate_trace(*w, 100);
  for (std::size_t i = 0; i < 50; ++i) EXPECT_LT(trace[i], region_base(1));
  for (std::size_t i = 50; i < 100; ++i) {
    EXPECT_GE(trace[i], region_base(1));
  }
}

TEST(ParseWorkloadTest, Determinism) {
  for (const char* spec :
       {"zipf:m=100", "mix:seq:m=5|zipf:m=50,w=1/1", "spec:gcc"}) {
    auto a = parse_workload(spec, 21);
    auto b = parse_workload(spec, 21);
    EXPECT_EQ(generate_trace(*a, 1000), generate_trace(*b, 1000)) << spec;
  }
}

TEST(ParseWorkloadTest, Errors) {
  EXPECT_THROW(parse_workload(""), std::invalid_argument);
  EXPECT_THROW(parse_workload("bogus:m=5"), std::invalid_argument);
  EXPECT_THROW(parse_workload("seq"), std::invalid_argument);     // missing m
  EXPECT_THROW(parse_workload("seq:m=x"), std::invalid_argument);
  EXPECT_THROW(parse_workload("seq:5"), std::invalid_argument);   // not k=v
  EXPECT_THROW(parse_workload("spec:notabenchmark"),
               std::invalid_argument);
  EXPECT_THROW(parse_workload("stackdist:d=1,w=0.5/0.5"),
               std::invalid_argument);  // length mismatch
  EXPECT_FALSE(workload_spec_valid("???"));
  EXPECT_TRUE(workload_spec_valid("seq:m=10"));
}

}  // namespace
}  // namespace parda
