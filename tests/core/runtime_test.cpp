#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "comm/fault.hpp"
#include "core/runtime.hpp"
#include "obs/obs.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_pipe.hpp"
#include "workload/generators.hpp"

namespace parda {
namespace {

std::vector<Addr> make_trace(std::uint64_t refs, std::uint64_t seed) {
  ZipfWorkload w(500, 0.9, seed);
  return generate_trace(w, refs);
}

std::size_t live_threads() {
  std::size_t n = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator("/proc/self/task")) {
    (void)entry;
    ++n;
  }
  return n;
}

TEST(PardaRuntimeTest, RepeatedAnalyzeLeaksNoThreads) {
  const auto trace = make_trace(5000, 1);
  core::PardaRuntime runtime;
  PardaOptions options;
  options.num_procs = 4;
  auto session = runtime.session(options);

  const Histogram first = session.analyze(trace).hist;
  const std::size_t after_first = live_threads();
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(session.analyze(trace).hist == first);
  }
  // The pool parks its workers between jobs; repeated analyses must not
  // spawn anything new.
  EXPECT_EQ(live_threads(), after_first);
  EXPECT_EQ(runtime.capacity(), 4);
  EXPECT_EQ(runtime.jobs_run(), 11u);
  EXPECT_EQ(runtime.worlds_created(), 1u);
  EXPECT_EQ(runtime.world_reuses(), 10u);
}

TEST(PardaRuntimeTest, SessionMatchesTransientEntryPoint) {
  const auto trace = make_trace(8000, 2);
  PardaOptions options;
  options.num_procs = 3;
  const Histogram reference = parda_analyze(trace, options).hist;

  core::PardaRuntime runtime;
  auto session = runtime.session(options);
  EXPECT_TRUE(session.analyze(trace).hist == reference);
  // Bounded too: the session honors option changes between calls.
  session.options().bound = 64;
  const Histogram bounded_ref =
      parda_analyze(trace, session.options()).hist;
  EXPECT_TRUE(session.analyze(trace).hist == bounded_ref);
}

TEST(PardaRuntimeTest, JobsRunMetricsAreMonotone) {
  const auto trace = make_trace(2000, 3);
  core::PardaRuntime runtime;
  auto session = runtime.session();
  std::uint64_t last = runtime.jobs_run();
  for (int i = 0; i < 5; ++i) {
    session.analyze(trace);
    const std::uint64_t now = runtime.jobs_run();
    EXPECT_GT(now, last);
    last = now;
  }
  EXPECT_GE(runtime.world_reuses(), 4u);
}

TEST(PardaRuntimeTest, FaultedJobLeavesRuntimeHealthy) {
  const auto trace = make_trace(6000, 4);
  const comm::FaultPlan plan = comm::FaultPlan::parse("rank=1,op=recv,n=0");

  core::PardaRuntime runtime;
  PardaOptions options;
  options.num_procs = 3;
  const Histogram reference = parda_analyze(trace, options).hist;

  auto session = runtime.session(options);
  session.options().run_options.fault_plan = &plan;
  EXPECT_THROW(session.analyze(trace), comm::FaultInjectedError);

  // Dropping the plan makes the very next job on the same runtime clean
  // and exact — the poisoned World was reset, not rebuilt.
  session.options().run_options.fault_plan = nullptr;
  EXPECT_TRUE(session.analyze(trace).hist == reference);
  EXPECT_GE(runtime.world_reuses(), 1u);
}

TEST(PardaRuntimeTest, ConcurrentSessionsMatchSequentialResults) {
  const auto trace_a = make_trace(10000, 5);
  const auto trace_b = make_trace(10000, 6);
  PardaOptions options_a;
  options_a.num_procs = 2;
  PardaOptions options_b;
  options_b.num_procs = 4;
  options_b.bound = 128;
  const Histogram ref_a = parda_analyze(trace_a, options_a).hist;
  const Histogram ref_b = parda_analyze(trace_b, options_b).hist;

  core::PardaRuntime runtime;
  bool ok_a = true;
  bool ok_b = true;
  std::thread client_a([&] {
    auto session = runtime.session(options_a);
    for (int i = 0; i < 6; ++i) {
      ok_a = ok_a && (session.analyze(trace_a).hist == ref_a);
    }
  });
  std::thread client_b([&] {
    auto session = runtime.session(options_b);
    for (int i = 0; i < 6; ++i) {
      ok_b = ok_b && (session.analyze(trace_b).hist == ref_b);
    }
  });
  client_a.join();
  client_b.join();
  EXPECT_TRUE(ok_a);
  EXPECT_TRUE(ok_b);
  EXPECT_EQ(runtime.jobs_run(), 12u);
}

TEST(PardaRuntimeTest, GaugesRepublishPerJob) {
  // Runtime gauges are re-published at every job admission: `values` holds
  // the shape of the most recent job, `shards`/`max` the lifetime
  // high-water mark (see DESIGN.md "Live telemetry & attribution").
  struct ScopedEnable {
    bool prev = obs::enabled();
    ScopedEnable() { obs::set_enabled(true); }
    ~ScopedEnable() { obs::set_enabled(prev); }
  } on;

  const auto trace = make_trace(3000, 9);
  core::PardaRuntime runtime;
  PardaOptions big;
  big.num_procs = 4;
  runtime.session(big).analyze(trace);
  PardaOptions small;
  small.num_procs = 2;
  runtime.session(small).analyze(trace);

  // Both jobs were admitted from this (unattributed) thread: shard 0.
  obs::Gauge& np = obs::registry().gauge("runtime.job_np");
  EXPECT_EQ(np.values()[0], 2u);  // current job's np, not a running max
  EXPECT_GE(np.shards()[0], 4u);  // ...which lives in the high-water mark
  EXPECT_GE(np.max(), 4u);
  obs::Gauge& capacity = obs::registry().gauge("runtime.pool_capacity");
  EXPECT_GE(capacity.values()[0], 2u);
}

TEST(PardaRuntimeTest, AnalyzeStreamViaSession) {
  const auto trace = make_trace(12000, 7);
  PardaOptions options;
  options.num_procs = 2;
  options.chunk_words = 1024;
  const Histogram reference = parda_analyze(trace, options).hist;

  core::PardaRuntime runtime;
  auto session = runtime.session(options);
  TracePipe pipe(trace.size() + 1);
  pipe.write(std::vector<Addr>(trace));
  pipe.close();
  EXPECT_TRUE(session.analyze_stream(pipe).hist == reference);
}

TEST(PardaRuntimeTest, AnalyzeFileViaSession) {
  const auto trace = make_trace(9000, 8);
  const std::string path =
      (std::filesystem::temp_directory_path() / "runtime_test.trc").string();
  write_trace_binary(path, trace);

  PardaOptions options;
  options.num_procs = 2;
  options.chunk_words = 2048;
  const Histogram reference = parda_analyze(trace, options).hist;

  core::PardaRuntime runtime;
  auto session = runtime.session(options);
  EXPECT_TRUE(session.analyze_file(path).hist == reference);
  // Second pass reuses the same workers and World.
  EXPECT_TRUE(session.analyze_file(path).hist == reference);
  EXPECT_GE(runtime.world_reuses(), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace parda
