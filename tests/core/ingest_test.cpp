// The ingest contract (DESIGN.md "Ingest"): every ingest path — pipe
// producer, zero-copy mmap views, chunked parallel .trz decode — must
// produce the bit-identical parda.histogram.v1 for the same trace, at
// every rank count and cache bound. Plus the structural guarantees the
// paths advertise: mmap rank views alias the mapping (zero copies, proven
// by ingest.bytes_copied staying 0), trz chunk runs tile the archive, and
// views stay in-bounds for their source's lifetime (ASan patrols the
// mmap edges when this suite runs under the asan preset).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "core/file_analysis.hpp"
#include "core/parda.hpp"
#include "core/runtime.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "seq/bounded.hpp"
#include "seq/olken.hpp"
#include "trace/source.hpp"
#include "trace/trace_compress.hpp"
#include "trace/trace_io.hpp"
#include "workload/generators.hpp"

namespace parda {
namespace {

std::string temp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::vector<Addr> ingest_trace(std::size_t n, std::uint64_t seed) {
  std::vector<std::unique_ptr<Workload>> kids;
  kids.push_back(std::make_unique<ZipfWorkload>(400, 0.9, seed, 0));
  kids.push_back(std::make_unique<SequentialWorkload>(128, 1));
  MixWorkload mix(std::move(kids), {0.7, 0.3}, seed);
  return generate_trace(mix, n);
}

/// One trace written in both on-disk shapes, shared across the suite.
class IngestTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    trace_ = new std::vector<Addr>(ingest_trace(6000, 23));
    trc_path_ = new std::string(temp_path("ingest_test.trc"));
    trz_path_ = new std::string(temp_path("ingest_test.trz"));
    write_trace_binary(*trc_path_, *trace_);
    // 512 refs/chunk -> 12 chunks: enough for interesting rank runs.
    write_trace_chunked(*trz_path_, *trace_, 512);
  }
  static void TearDownTestSuite() {
    std::remove(trc_path_->c_str());
    std::remove(trz_path_->c_str());
    delete trace_;
    delete trc_path_;
    delete trz_path_;
  }

  static PardaResult analyze(IngestMode mode, int np, std::uint64_t bound) {
    PardaOptions options;
    options.num_procs = np;
    options.bound = bound;
    const std::string& path =
        mode == IngestMode::kTrz ? *trz_path_ : *trc_path_;
    return parda_analyze_file(path, options, 1 << 12, mode);
  }

  static std::vector<Addr>* trace_;
  static std::string* trc_path_;
  static std::string* trz_path_;
};

std::vector<Addr>* IngestTest::trace_ = nullptr;
std::string* IngestTest::trc_path_ = nullptr;
std::string* IngestTest::trz_path_ = nullptr;

class IngestEquivalenceTest
    : public IngestTest,
      public ::testing::WithParamInterface<std::tuple<int, std::uint64_t>> {};

TEST_P(IngestEquivalenceTest, AllSourcesBitIdentical) {
  const auto [np, bound] = GetParam();
  const PardaResult pipe = analyze(IngestMode::kPipe, np, bound);
  const PardaResult mmap = analyze(IngestMode::kMmap, np, bound);
  const PardaResult trz = analyze(IngestMode::kTrz, np, bound);

  const Histogram expected = bound == 0 ? olken_analysis(*trace_)
                                        : bounded_analysis(*trace_, bound);
  EXPECT_TRUE(pipe.hist == expected) << "pipe np=" << np << " B=" << bound;
  EXPECT_TRUE(mmap.hist == expected) << "mmap np=" << np << " B=" << bound;
  EXPECT_TRUE(trz.hist == expected) << "trz np=" << np << " B=" << bound;
}

INSTANTIATE_TEST_SUITE_P(
    RanksAndBounds, IngestEquivalenceTest,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values(std::uint64_t{0},
                                         std::uint64_t{256})));

TEST_F(IngestTest, MmapViewsAliasTheMappingAndTileTheTrace) {
  MmapTraceSource source(*trc_path_);
  EXPECT_EQ(source.total_references(), trace_->size());
  const auto* base = static_cast<const std::uint8_t*>(source.map_base());
  const auto* end = base + source.map_bytes();
  for (const int np : {1, 2, 3, 4, 7}) {
    source.partition(np);
    std::uint64_t covered = 0;
    for (int r = 0; r < np; ++r) {
      const RankView view = source.rank_view(r);
      // Cumulative clock: the view starts at its global position.
      EXPECT_EQ(view.base, covered) << "np=" << np << " rank=" << r;
      covered += view.refs.size();
      if (view.refs.empty()) continue;
      // Zero-copy: the span points into the file mapping, not a buffer.
      const auto* lo = reinterpret_cast<const std::uint8_t*>(
          view.refs.data());
      const auto* hi = reinterpret_cast<const std::uint8_t*>(
          view.refs.data() + view.refs.size());
      EXPECT_GE(lo, base);
      EXPECT_LE(hi, end);
      // Contiguous tiling: rank r's refs are exactly trace[base..).
      EXPECT_EQ(view.refs.front(),
                (*trace_)[static_cast<std::size_t>(view.base)]);
      EXPECT_EQ(view.refs.back(),
                (*trace_)[static_cast<std::size_t>(covered) - 1]);
    }
    EXPECT_EQ(covered, trace_->size()) << "np=" << np;
  }
}

TEST_F(IngestTest, MmapViewReadableForSourceLifetime) {
  // Touch every element of every view and checksum it against the trace:
  // under ASan/valgrind this patrols both mapping edges for out-of-bounds
  // reads; logically it proves the views carry the exact file content.
  MmapTraceSource source(*trc_path_);
  source.partition(3);
  Addr expect_sum = 0;
  for (const Addr a : *trace_) expect_sum += a;
  Addr sum = 0;
  for (int r = 0; r < 3; ++r) {
    for (const Addr a : source.rank_view(r).refs) sum += a;
  }
  EXPECT_EQ(sum, expect_sum);
}

TEST_F(IngestTest, TrzChunkRunsAreContiguousAndComplete) {
  ChunkedTrzSource source(*trz_path_);
  const std::uint64_t chunks = source.file().num_chunks();
  ASSERT_EQ(chunks, 12u);  // 6000 refs at 512/chunk
  for (const int np : {1, 2, 4, 5, 16}) {  // 16 > chunks: empty tail ranks
    source.partition(np);
    std::uint64_t next_chunk = 0;
    std::uint64_t next_ref = 0;
    for (int r = 0; r < np; ++r) {
      const auto [first, count] = source.assigned_chunks(r);
      EXPECT_EQ(first, next_chunk) << "np=" << np << " rank=" << r;
      next_chunk += count;
      const RankView view = source.rank_view(r);
      EXPECT_EQ(view.base, static_cast<Timestamp>(next_ref));
      next_ref += view.refs.size();
      // Decoded content matches the trace slice, byte for byte.
      for (std::size_t i = 0; i < view.refs.size(); ++i) {
        ASSERT_EQ(view.refs[i],
                  (*trace_)[static_cast<std::size_t>(view.base) + i])
            << "np=" << np << " rank=" << r << " i=" << i;
      }
    }
    EXPECT_EQ(next_chunk, chunks) << "np=" << np;
    EXPECT_EQ(next_ref, trace_->size()) << "np=" << np;
  }
}

TEST_F(IngestTest, TrzSourceReusableAcrossAnalyses) {
  // The per-rank arenas persist across partition()/analysis cycles; the
  // results must not.  (A stale arena would double-append references.)
  comm::WorkerPool pool(4);
  ChunkedTrzSource source(*trz_path_);
  PardaOptions options;
  options.num_procs = 4;
  const PardaResult first = parda_analyze_source_on(pool, source, options);
  options.num_procs = 2;
  const PardaResult second = parda_analyze_source_on(pool, source, options);
  const Histogram expected = olken_analysis(*trace_);
  EXPECT_TRUE(first.hist == expected);
  EXPECT_TRUE(second.hist == expected);
}

TEST_F(IngestTest, PipeSourceRunsTheStreamingAlgorithm) {
  TracePipe pipe(2048);
  std::thread producer([&] {
    pipe.write(*trace_);
    pipe.close();
  });
  PipeTraceSource source(pipe);
  EXPECT_FALSE(source.offline());
  comm::WorkerPool pool(2);
  PardaOptions options;
  options.num_procs = 2;
  const PardaResult result = parda_analyze_source_on(pool, source, options);
  producer.join();
  EXPECT_TRUE(result.hist == olken_analysis(*trace_));
}

TEST_F(IngestTest, SessionAnalyzeSourceAndFileAgree) {
  core::PardaRuntime runtime;
  PardaOptions options;
  options.num_procs = 4;
  auto session = runtime.session(options);
  MmapTraceSource source(*trc_path_);
  const PardaResult via_source = session.analyze_source(source);
  const PardaResult via_file =
      session.analyze_file(*trc_path_, 1 << 12, IngestMode::kMmap);
  const PardaResult via_trz =
      session.analyze_file(*trz_path_, 1 << 12, IngestMode::kTrz);
  EXPECT_TRUE(via_source.hist == via_file.hist);
  EXPECT_TRUE(via_source.hist == via_trz.hist);
}

TEST_F(IngestTest, ZeroCopyProofInMetrics) {
  obs::set_enabled(true);
  auto& reg = obs::registry();

  reg.reset_values();
  analyze(IngestMode::kMmap, 4, 0);
  EXPECT_EQ(reg.counter_total("ingest.bytes_copied"), 0u);
  EXPECT_GE(reg.counter_total("ingest.bytes_mapped"),
            trace_->size() * sizeof(Addr));

  reg.reset_values();
  analyze(IngestMode::kTrz, 4, 0);
  EXPECT_EQ(reg.counter_total("ingest.bytes_copied"), 0u);
  EXPECT_EQ(reg.counter_total("ingest.chunks_assigned"), 12u);
  EXPECT_GT(reg.counter_total("ingest.bytes_decoded"), 0u);

  reg.reset_values();
  analyze(IngestMode::kPipe, 4, 0);
  EXPECT_EQ(reg.counter_total("ingest.bytes_copied"),
            trace_->size() * sizeof(Addr));

  reg.reset_values();
  obs::set_enabled(false);
}

TEST_F(IngestTest, OfflineSourceRejectsStreamingInterface) {
  MmapTraceSource mmap(*trc_path_);
  EXPECT_THROW(mmap.pipe(), CheckError);
  TracePipe pipe(64);
  PipeTraceSource streaming(pipe);
  EXPECT_THROW(streaming.partition(2), CheckError);
  EXPECT_THROW(streaming.rank_view(0), CheckError);
  EXPECT_THROW(streaming.total_references(), CheckError);
}

TEST_F(IngestTest, MmapRejectsMalformedTraces) {
  // The mmap reader mirrors BinaryTraceReader's validation ladder.
  EXPECT_THROW(MmapTraceSource{*trz_path_}, TraceFormatError);  // wrong magic
  EXPECT_THROW(MmapTraceSource(temp_path("nope.trc")), std::runtime_error);
  const std::string truncated = temp_path("ingest_truncated.trc");
  write_trace_binary(truncated, *trace_);
  std::FILE* f = std::fopen(truncated.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  // Chop the last reference in half: body size mismatch vs the header.
  const long size = [&] {
    std::fseek(f, 0, SEEK_END);
    return std::ftell(f);
  }();
  std::fclose(f);
  ASSERT_EQ(::truncate(truncated.c_str(), size - 4), 0);
  EXPECT_THROW(MmapTraceSource{truncated}, TraceFormatError);
  std::remove(truncated.c_str());
}

}  // namespace
}  // namespace parda
