// Property tests for the parallel algorithm: Parda must equal the
// sequential analysis exactly, for every rank count, chunking, engine,
// bound, and with or without the space optimization (paper Section IV-B).
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "core/parda.hpp"
#include "core/rank_state.hpp"
#include "seq/bounded.hpp"
#include "seq/olken.hpp"
#include "tree/avl_tree.hpp"
#include "tree/treap.hpp"
#include "workload/generators.hpp"
#include "workload/spec.hpp"

namespace parda {
namespace {

std::vector<Addr> mixed_trace(std::size_t n, std::uint64_t seed) {
  std::vector<std::unique_ptr<Workload>> kids;
  kids.push_back(std::make_unique<ZipfWorkload>(400, 0.9, seed, 0));
  kids.push_back(std::make_unique<SequentialWorkload>(150, 1));
  kids.push_back(std::make_unique<PointerChaseWorkload>(200, seed + 1, 2));
  MixWorkload mix(std::move(kids), {0.5, 0.3, 0.2}, seed + 2);
  return generate_trace(mix, n);
}

class PardaEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(PardaEquivalenceTest, MatchesSequentialUnbounded) {
  const auto [np, space_opt] = GetParam();
  const auto trace = mixed_trace(6000, 42);
  const Histogram expected = olken_analysis(trace);

  PardaOptions options;
  options.num_procs = np;
  options.space_optimized = space_opt;
  const PardaResult result = parda_analyze(trace, options);
  EXPECT_TRUE(result.hist == expected)
      << "np=" << np << " space_opt=" << space_opt;
  EXPECT_EQ(result.stats.ranks.size(), static_cast<std::size_t>(np));
}

INSTANTIATE_TEST_SUITE_P(
    RankAndOptimization, PardaEquivalenceTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 7, 8, 16),
                       ::testing::Bool()),
    [](const auto& info) {
      return "np" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_spaceopt" : "_plain");
    });

class PardaBoundedTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(PardaBoundedTest, MatchesSequentialBounded) {
  const auto [np, bound] = GetParam();
  const auto trace = mixed_trace(6000, 1234);
  const Histogram expected = bounded_analysis(trace, bound);

  PardaOptions options;
  options.num_procs = np;
  options.bound = bound;
  const PardaResult result = parda_analyze(trace, options);
  EXPECT_TRUE(result.hist == expected) << "np=" << np << " B=" << bound;
}

INSTANTIATE_TEST_SUITE_P(
    RankAndBound, PardaBoundedTest,
    ::testing::Combine(::testing::Values(1, 2, 4, 7),
                       ::testing::Values(1, 4, 16, 64, 256, 1024)),
    [](const auto& info) {
      return "np" + std::to_string(std::get<0>(info.param)) + "_B" +
             std::to_string(std::get<1>(info.param));
    });

TEST(PardaTest, EmptyTrace) {
  PardaOptions options;
  options.num_procs = 4;
  const PardaResult result = parda_analyze({}, options);
  EXPECT_EQ(result.hist.total(), 0u);
}

TEST(PardaTest, TraceShorterThanRankCount) {
  const std::vector<Addr> trace{1, 2, 1};
  PardaOptions options;
  options.num_procs = 8;
  const PardaResult result = parda_analyze(trace, options);
  EXPECT_TRUE(result.hist == olken_analysis(trace));
}

TEST(PardaTest, SingleAddressTrace) {
  const std::vector<Addr> trace(100, 7);
  PardaOptions options;
  options.num_procs = 4;
  const PardaResult result = parda_analyze(trace, options);
  EXPECT_EQ(result.hist.infinities(), 1u);
  EXPECT_EQ(result.hist.at(0), 99u);
}

TEST(PardaTest, AllDistinctTrace) {
  std::vector<Addr> trace(512);
  for (std::size_t i = 0; i < trace.size(); ++i) trace[i] = i;
  PardaOptions options;
  options.num_procs = 4;
  const PardaResult result = parda_analyze(trace, options);
  EXPECT_EQ(result.hist.infinities(), 512u);
  EXPECT_EQ(result.hist.finite_total(), 0u);
}

TEST(PardaTest, WorksWithEveryTreeEngine) {
  const auto trace = mixed_trace(3000, 5);
  const Histogram expected = olken_analysis(trace);
  PardaOptions options;
  options.num_procs = 3;
  EXPECT_TRUE(parda_analyze<SplayTree>(trace, options).hist == expected);
  EXPECT_TRUE(parda_analyze<AvlTree>(trace, options).hist == expected);
  EXPECT_TRUE(parda_analyze<Treap>(trace, options).hist == expected);
}

TEST(PardaTest, SpecWorkloadsRoundTrip) {
  // End-to-end over three scaled SPEC profiles with awkward rank counts.
  for (std::string_view name : {"mcf", "libquantum", "povray"}) {
    auto w = make_spec_workload(name, /*scale=*/200000, /*seed=*/9);
    const auto trace = generate_trace(*w, 8000);
    const Histogram expected = olken_analysis(trace);
    PardaOptions options;
    options.num_procs = 5;
    EXPECT_TRUE(parda_analyze(trace, options).hist == expected)
        << std::string(name);
  }
}

TEST(PardaTest, BoundedWithBoundLargerThanFootprintEqualsExact) {
  const auto trace = mixed_trace(4000, 77);
  PardaOptions options;
  options.num_procs = 4;
  options.bound = 1 << 20;
  EXPECT_TRUE(parda_analyze(trace, options).hist == olken_analysis(trace));
}

// --- RankState unit behaviour ----------------------------------------------

TEST(PardaProfileTest, OfflineProfilesAreConsistent) {
  const auto trace = mixed_trace(6000, 99);
  PardaOptions options;
  options.num_procs = 4;
  const PardaResult result = parda_analyze(trace, options);
  ASSERT_EQ(result.profiles.size(), 4u);

  std::uint64_t chunk_total = 0;
  std::uint64_t hits_total = 0;
  for (const RankProfile& p : result.profiles) {
    chunk_total += p.chunk_refs;
    hits_total += p.hits_resolved;
    EXPECT_GT(p.peak_resident, 0u);
  }
  EXPECT_EQ(chunk_total, trace.size());
  EXPECT_EQ(hits_total, result.hist.finite_total());
  // Rank 0 forwards nothing; the rightmost rank receives nothing.
  EXPECT_EQ(result.profiles[0].records_forwarded, 0u);
  EXPECT_EQ(result.profiles[3].records_received, 0u);
  // Everything rank 1 forwards, rank 0 receives.
  EXPECT_EQ(result.profiles[0].records_received,
            result.profiles[1].records_forwarded);
}

TEST(PardaProfileTest, BoundedCapsPeakResidency) {
  const auto trace = mixed_trace(6000, 7);
  PardaOptions options;
  options.num_procs = 3;
  options.bound = 32;
  const PardaResult result = parda_analyze(trace, options);
  for (const RankProfile& p : result.profiles) {
    EXPECT_LE(p.peak_resident, 32u);
  }
}

TEST(RankStateTest, LocalInfinityPerDistinctElement) {
  // Property 4.2: one local-infinity entry per distinct element of the
  // chunk.
  RankState<> state;
  const std::vector<Addr> chunk{5, 6, 5, 7, 6, 6, 8};
  for (std::size_t i = 0; i < chunk.size(); ++i) {
    state.process_own(chunk[i], i);
  }
  const auto inf = state.take_local_infinities();
  ASSERT_EQ(inf.size(), 4u);
  EXPECT_EQ(inf[0], (InfRecord{5, 0}));
  EXPECT_EQ(inf[1], (InfRecord{6, 1}));
  EXPECT_EQ(inf[2], (InfRecord{7, 3}));
  EXPECT_EQ(inf[3], (InfRecord{8, 6}));
}

TEST(RankStateTest, SpaceOptimizedDeletesResolvedEntries) {
  RankState<> state;  // space-optimized by default
  state.process_own(1, 0);
  state.process_own(2, 1);
  EXPECT_EQ(state.resident(), 2u);
  // Incoming infinity for address 1 resolves and removes the replica.
  state.process_incoming(std::vector<InfRecord>{{1, 10}});
  EXPECT_EQ(state.resident(), 1u);
  EXPECT_EQ(state.received_count(), 1u);
  EXPECT_EQ(state.hist().at(1), 1u);  // one distinct element (2) intervened
}

TEST(RankStateTest, UnoptimizedKeepsAndReplaysEntries) {
  RankState<> state(kUnbounded, /*space_optimized=*/false);
  state.process_own(1, 0);
  state.process_own(2, 1);
  state.take_local_infinities();
  state.process_incoming(std::vector<InfRecord>{{1, 10}, {3, 11}});
  // Hit re-inserted, miss inserted: 3 residents (1@10, 2@1, 3@11).
  EXPECT_EQ(state.resident(), 3u);
  EXPECT_EQ(state.hist().at(1), 1u);
  const auto forwarded = state.take_local_infinities();
  ASSERT_EQ(forwarded.size(), 1u);
  EXPECT_EQ(forwarded[0], (InfRecord{3, 11}));
}

TEST(RankStateTest, CountOffsetsIncomingDistances) {
  // Algorithm 4's count: misses processed earlier offset later hits.
  RankState<> state;
  state.process_own(100, 0);
  state.take_local_infinities();
  // Two unseen addresses pass through, then a hit on 100: the two strangers
  // are distinct elements between the reuse pair.
  state.process_incoming(std::vector<InfRecord>{{200, 5}, {300, 6}});
  state.process_incoming(std::vector<InfRecord>{{100, 7}});
  EXPECT_EQ(state.hist().at(2), 1u);
}

TEST(RankStateTest, ExportImportRoundTrip) {
  RankState<> a;
  a.process_own(10, 0);
  a.process_own(20, 1);
  a.take_local_infinities();
  RankState<> b;
  b.process_own(30, 2);
  b.take_local_infinities();
  auto exported = a.export_state();
  EXPECT_EQ(a.resident(), 0u);
  b.import_state(exported);
  EXPECT_EQ(b.resident(), 3u);
  // b can now resolve reuses of a's addresses.
  b.process_incoming(std::vector<InfRecord>{{10, 50}});
  EXPECT_EQ(b.hist().at(2), 1u);  // 20 and 30 intervene
}

TEST(RankStateTest, PruneToBoundKeepsMostRecent) {
  RankState<> state(/*bound=*/2, /*space_optimized=*/true);
  state.import_state(std::vector<InfRecord>{{1, 10}, {2, 20}, {3, 30}});
  state.prune_to_bound();
  EXPECT_EQ(state.resident(), 2u);
  // Address 1 (oldest) is gone: a reuse of it now misses.
  state.begin_merge_stage();
  state.process_incoming(std::vector<InfRecord>{{1, 40}});
  EXPECT_EQ(state.pending_infinities(), 1u);
}

TEST(RankStateTest, FlushGlobalInfinitiesCountsPending) {
  RankState<> state;
  state.process_own(1, 0);
  state.process_own(2, 1);
  state.flush_global_infinities();
  EXPECT_EQ(state.hist().infinities(), 2u);
  EXPECT_EQ(state.pending_infinities(), 0u);
}

}  // namespace
}  // namespace parda
