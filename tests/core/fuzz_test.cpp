// Randomized cross-engine equivalence sweep: for a battery of seeds and
// workload shapes, every exact engine in the repository must produce the
// identical histogram — naive stack, Olken on all four trees,
// Bennett-Kruskal, offline Parda (both merge variants, several rank
// counts), and streaming Parda — and the bounded variants must equal the
// bounded sequential analysis.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "core/parda.hpp"
#include "seq/bennett_kruskal.hpp"
#include "seq/bounded.hpp"
#include "seq/interval_analyzer.hpp"
#include "seq/naive.hpp"
#include "seq/olken.hpp"
#include "seq/opt.hpp"
#include "trace/trace_pipe.hpp"
#include "tree/avl_tree.hpp"
#include "tree/treap.hpp"
#include "tree/vector_tree.hpp"
#include "util/prng.hpp"
#include "workload/generators.hpp"

namespace parda {
namespace {

/// An adversarial trace cocktail: random segments of wildly different
/// locality, chosen by seed.
std::vector<Addr> cocktail_trace(std::uint64_t seed, std::size_t n) {
  Xoshiro256 rng(seed);
  std::vector<Addr> trace;
  trace.reserve(n);
  while (trace.size() < n) {
    const std::size_t segment =
        std::min<std::size_t>(n - trace.size(), 64 + rng.below(512));
    switch (rng.below(6)) {
      case 0: {  // constant hammering
        const Addr a = rng.below(64);
        for (std::size_t i = 0; i < segment; ++i) trace.push_back(a);
        break;
      }
      case 1: {  // fresh addresses (all infinities)
        for (std::size_t i = 0; i < segment; ++i) {
          trace.push_back((1ULL << 32) + rng());
        }
        break;
      }
      case 2: {  // small cyclic sweep
        const std::uint64_t m = 2 + rng.below(32);
        for (std::size_t i = 0; i < segment; ++i) {
          trace.push_back(1000 + i % m);
        }
        break;
      }
      case 3: {  // uniform over a mid-size pool
        const std::uint64_t m = 16 + rng.below(500);
        for (std::size_t i = 0; i < segment; ++i) {
          trace.push_back(5000 + rng.below(m));
        }
        break;
      }
      case 4: {  // sawtooth (stack-like)
        const std::uint64_t m = 4 + rng.below(64);
        for (std::size_t i = 0; i < segment; ++i) {
          const std::uint64_t phase = i % (2 * m);
          trace.push_back(9000 + (phase < m ? phase : 2 * m - phase - 1));
        }
        break;
      }
      default: {  // revisit something from earlier in the trace
        for (std::size_t i = 0; i < segment; ++i) {
          if (trace.empty()) {
            trace.push_back(7);
          } else {
            trace.push_back(trace[rng.below(trace.size())]);
          }
        }
        break;
      }
    }
  }
  trace.resize(n);
  return trace;
}

class FuzzEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzEquivalenceTest, AllExactEnginesAgree) {
  const std::uint64_t seed = GetParam();
  const auto trace = cocktail_trace(seed, 4000);
  const Histogram expected = olken_analysis<SplayTree>(trace);

  EXPECT_TRUE(naive_stack_analysis(trace) == expected);
  EXPECT_TRUE(olken_analysis<AvlTree>(trace) == expected);
  EXPECT_TRUE(olken_analysis<Treap>(trace) == expected);
  EXPECT_TRUE(olken_analysis<VectorTree>(trace) == expected);
  EXPECT_TRUE(bennett_kruskal_analysis(trace) == expected);
  EXPECT_TRUE(interval_analysis(trace) == expected);

  for (const int np : {2, 5}) {
    for (const bool space_opt : {false, true}) {
      PardaOptions options;
      options.num_procs = np;
      options.space_optimized = space_opt;
      EXPECT_TRUE(parda_analyze(trace, options).hist == expected)
          << "np=" << np << " opt=" << space_opt;
    }
  }
}

TEST_P(FuzzEquivalenceTest, BoundedEnginesAgree) {
  const std::uint64_t seed = GetParam();
  const auto trace = cocktail_trace(seed ^ 0xBEEF, 4000);
  for (const std::uint64_t bound : {3ULL, 17ULL, 129ULL}) {
    const Histogram expected = bounded_analysis(trace, bound);
    PardaOptions options;
    options.num_procs = 4;
    options.bound = bound;
    EXPECT_TRUE(parda_analyze(trace, options).hist == expected)
        << "B=" << bound;
  }
}

TEST_P(FuzzEquivalenceTest, StreamedMatchesOffline) {
  const std::uint64_t seed = GetParam();
  const auto trace = cocktail_trace(seed ^ 0xF00D, 3000);
  const Histogram expected = olken_analysis(trace);
  Xoshiro256 rng(seed);
  PardaOptions options;
  options.num_procs = 1 + static_cast<int>(rng.below(6));
  options.chunk_words = 16 + rng.below(700);
  const std::size_t block = 1 + rng.below(900);

  TracePipe pipe(512);
  std::thread producer([&] {
    for (std::size_t at = 0; at < trace.size(); at += block) {
      const std::size_t hi = std::min(at + block, trace.size());
      pipe.write(std::span<const Addr>(trace.data() + at, hi - at));
    }
    pipe.close();
  });
  const PardaResult result = parda_analyze_stream(pipe, options);
  producer.join();
  EXPECT_TRUE(result.hist == expected)
      << "np=" << options.num_procs << " C=" << options.chunk_words
      << " block=" << block;
}

TEST_P(FuzzEquivalenceTest, BoundedStreamedMatchesBoundedSequential) {
  const std::uint64_t seed = GetParam();
  const auto trace = cocktail_trace(seed ^ 0xCAFE, 3000);
  Xoshiro256 rng(seed * 3 + 1);
  const std::uint64_t bound = 2 + rng.below(200);
  const Histogram expected = bounded_analysis(trace, bound);

  PardaOptions options;
  options.num_procs = 1 + static_cast<int>(rng.below(5));
  options.chunk_words = 16 + rng.below(400);
  options.bound = bound;

  TracePipe pipe(256);
  std::thread producer([&] {
    for (std::size_t at = 0; at < trace.size(); at += 100) {
      const std::size_t hi = std::min(at + 100, trace.size());
      pipe.write(std::span<const Addr>(trace.data() + at, hi - at));
    }
    pipe.close();
  });
  const PardaResult result = parda_analyze_stream(pipe, options);
  producer.join();
  EXPECT_TRUE(result.hist == expected)
      << "np=" << options.num_procs << " C=" << options.chunk_words
      << " B=" << bound;
}

TEST_P(FuzzEquivalenceTest, OptStackMatchesBeladySimulator) {
  const std::uint64_t seed = GetParam();
  const auto trace = cocktail_trace(seed ^ 0xD00D, 2500);
  const Histogram opt = opt_distance_analysis(trace);
  Xoshiro256 rng(seed + 5);
  for (int i = 0; i < 2; ++i) {
    const std::uint64_t c = 1 + rng.below(400);
    OptCacheSim sim(c, trace);
    EXPECT_EQ(sim.run(), opt.hits_below(c)) << "C=" << c;
  }
  // Belady dominates LRU everywhere.
  const Histogram lru = olken_analysis(trace);
  for (std::uint64_t c = 1; c <= 1024; c *= 4) {
    EXPECT_GE(opt.hits_below(c), lru.hits_below(c)) << c;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzEquivalenceTest,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace parda
