// Direct tests of the histogram reduction (the reduce_sum of Algorithm 3)
// over the comm runtime, across rank counts, roots, and payload shapes.
#include <gtest/gtest.h>

#include <vector>

#include "comm/comm.hpp"
#include "core/parda.hpp"
#include "util/prng.hpp"

namespace parda {
namespace {

Histogram rank_histogram(int rank) {
  Histogram h;
  // Distinct shape per rank: rank r contributes r+1 at distance r and one
  // infinity.
  h.record(static_cast<Distance>(rank), static_cast<std::uint64_t>(rank) + 1);
  h.record(kInfiniteDistance);
  return h;
}

class ReduceHistogramTest : public ::testing::TestWithParam<int> {};

TEST_P(ReduceHistogramTest, SumsAcrossAllRanks) {
  const int np = GetParam();
  comm::run(np, [np](comm::Comm& comm) {
    const Histogram mine = rank_histogram(comm.rank());
    const Histogram total = reduce_histogram(comm, mine, 0);
    if (comm.rank() == 0) {
      for (int r = 0; r < np; ++r) {
        EXPECT_EQ(total.at(static_cast<Distance>(r)),
                  static_cast<std::uint64_t>(r) + 1)
            << r;
      }
      EXPECT_EQ(total.infinities(), static_cast<std::uint64_t>(np));
      EXPECT_EQ(total.total(),
                static_cast<std::uint64_t>(np) * (np + 1) / 2 +
                    static_cast<std::uint64_t>(np));
    } else {
      EXPECT_EQ(total.total(), 0u);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, ReduceHistogramTest,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 13, 16));

TEST(ReduceHistogramTest, NonZeroRoot) {
  comm::run(6, [](comm::Comm& comm) {
    const Histogram mine = rank_histogram(comm.rank());
    const Histogram total = reduce_histogram(comm, mine, 4);
    if (comm.rank() == 4) {
      EXPECT_EQ(total.infinities(), 6u);
    } else {
      EXPECT_EQ(total.total(), 0u);
    }
  });
}

TEST(ReduceHistogramTest, EmptyHistograms) {
  comm::run(4, [](comm::Comm& comm) {
    const Histogram total = reduce_histogram(comm, Histogram{}, 0);
    if (comm.rank() == 0) EXPECT_EQ(total.total(), 0u);
  });
}

TEST(ReduceHistogramTest, RaggedShapes) {
  // Rank 0 has a huge max distance, others tiny: the tree merge must
  // handle mismatched dense-array lengths in both directions.
  comm::run(3, [](comm::Comm& comm) {
    Histogram mine;
    if (comm.rank() == 0) {
      mine.record(100000, 1);
    } else {
      mine.record(static_cast<Distance>(comm.rank()), 7);
    }
    const Histogram total = reduce_histogram(comm, mine, 0);
    if (comm.rank() == 0) {
      EXPECT_EQ(total.at(100000), 1u);
      EXPECT_EQ(total.at(1), 7u);
      EXPECT_EQ(total.at(2), 7u);
      EXPECT_EQ(total.total(), 15u);
    }
  });
}

TEST(ReduceHistogramTest, MatchesSerialMerge) {
  // Randomized: reduction result == folding merge() serially.
  Xoshiro256 rng(321);
  for (int round = 0; round < 5; ++round) {
    const int np = 2 + static_cast<int>(rng.below(7));
    std::vector<Histogram> inputs(static_cast<std::size_t>(np));
    Histogram expected;
    for (auto& h : inputs) {
      const int bins = 1 + static_cast<int>(rng.below(5));
      for (int b = 0; b < bins; ++b) {
        h.record(rng.below(64), 1 + rng.below(9));
      }
      h.record(kInfiniteDistance, rng.below(4));
      expected.merge(h);
    }
    comm::run(np, [&](comm::Comm& comm) {
      const Histogram total = reduce_histogram(
          comm, inputs[static_cast<std::size_t>(comm.rank())], 0);
      if (comm.rank() == 0) EXPECT_TRUE(total == expected);
    });
  }
}

}  // namespace
}  // namespace parda
