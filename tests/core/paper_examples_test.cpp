// Reproduces every worked example in the paper:
//   Table I    — reuse distances of the running 10-reference trace
//   Figure 1   — tree state around processing reference 'a' at time 9
//   Table II   — two-processor local vs global distances (13 references)
//   Table III + Figure 2 — three-processor space-optimized run: per-rank
//                trees, local-infinity lists, and counters, step by step.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/parda.hpp"
#include "core/rank_state.hpp"
#include "seq/olken.hpp"
#include "tree/splay_tree.hpp"

namespace parda {
namespace {

std::vector<Addr> to_trace(const char* letters) {
  std::vector<Addr> trace;
  for (const char* p = letters; *p != '\0'; ++p) {
    if (*p == ' ') continue;
    trace.push_back(static_cast<Addr>(*p));
  }
  return trace;
}

// Table I: d a c b c c g e f a.
const char* const kTable1 = "d a c b c c g e f a";
// Table II: Table I extended with f b c.
const char* const kTable2 = "d a c b c c g e f a f b c";
// Table III: the 24-reference three-processor example.
const char* const kTable3 = "d a c b c c g e f a f b c m t m a c f b d c a c";

std::vector<TreeEntry> tree_contents(const SplayTree& tree) {
  std::vector<TreeEntry> entries;
  tree.for_each([&](TreeEntry e) { entries.push_back(e); });
  return entries;
}

TEST(PaperTable1, DistancesMatchPaper) {
  OlkenAnalyzer<SplayTree> analyzer;
  std::vector<Distance> d;
  for (Addr a : to_trace(kTable1)) d.push_back(analyzer.access(a));
  // Times 0-9: d a c b c c g e f a.
  EXPECT_EQ(d[0], kInfiniteDistance);
  EXPECT_EQ(d[1], kInfiniteDistance);
  EXPECT_EQ(d[2], kInfiniteDistance);
  EXPECT_EQ(d[3], kInfiniteDistance);
  EXPECT_EQ(d[4], 1u);  // D_c(4) = |Psi_3^3| = 1 (Section II example)
  EXPECT_EQ(d[5], 0u);
  EXPECT_EQ(d[6], kInfiniteDistance);
  EXPECT_EQ(d[7], kInfiniteDistance);
  EXPECT_EQ(d[8], kInfiniteDistance);
  EXPECT_EQ(d[9], 5u);  // the Figure 1 walk: 1 + 3 + 1 = 5
}

TEST(PaperFigure1, TreeStateBeforeAndAfterTime9) {
  OlkenAnalyzer<SplayTree> analyzer;
  const auto trace = to_trace(kTable1);
  for (std::size_t t = 0; t + 1 < trace.size(); ++t) {
    analyzer.access(trace[t]);
  }
  // Figure 1(a): before processing 'a'@9 the tree holds one entry per
  // distinct address, keyed by last access: 0:d 1:a 3:b 5:c 6:g 7:e 8:f.
  const auto before = tree_contents(analyzer.tree());
  const std::vector<TreeEntry> expected_before{
      {0, 'd'}, {1, 'a'}, {3, 'b'}, {5, 'c'}, {6, 'g'}, {7, 'e'}, {8, 'f'}};
  EXPECT_EQ(before, expected_before);

  EXPECT_EQ(analyzer.access('a'), 5u);

  // Figure 1(b): 'a' moved from timestamp 1 to timestamp 9.
  const auto after = tree_contents(analyzer.tree());
  const std::vector<TreeEntry> expected_after{
      {0, 'd'}, {3, 'b'}, {5, 'c'}, {6, 'g'}, {7, 'e'}, {8, 'f'}, {9, 'a'}};
  EXPECT_EQ(after, expected_after);
}

TEST(PaperTable2, LocalDistancesOfRightChunk) {
  // The right chunk (g e f a f b c, times 6-12) analyzed in isolation:
  // local distances: inf inf inf inf 1 inf inf (Table II row "Local").
  RankState<> rank1;
  const auto trace = to_trace(kTable2);
  for (std::size_t t = 6; t < trace.size(); ++t) {
    rank1.process_own(trace[t], t);
  }
  EXPECT_EQ(rank1.hist().at(1), 1u);        // f@10
  EXPECT_EQ(rank1.hist().finite_total(), 1u);
  const auto inf = rank1.take_local_infinities();
  // Local infinities: g e f a b c with their first-reference times.
  const std::vector<InfRecord> expected{{'g', 6}, {'e', 7}, {'f', 8},
                                        {'a', 9}, {'b', 11}, {'c', 12}};
  EXPECT_EQ(inf, expected);
}

TEST(PaperTable2, GlobalDistancesMatchPaper) {
  // Global row of Table II: inf inf inf inf 1 0 inf inf inf 5 1 5 5.
  const auto trace = to_trace(kTable2);
  const Histogram expected_seq = olken_analysis(trace);
  EXPECT_EQ(expected_seq.infinities(), 7u);
  EXPECT_EQ(expected_seq.at(0), 1u);
  EXPECT_EQ(expected_seq.at(1), 2u);
  EXPECT_EQ(expected_seq.at(5), 3u);

  PardaOptions options;
  options.num_procs = 2;
  EXPECT_TRUE(parda_analyze(trace, options).hist == expected_seq);
}

TEST(PaperTable3Figure2, ThreeProcessorSpaceOptimizedWalkthrough) {
  const auto trace = to_trace(kTable3);
  ASSERT_EQ(trace.size(), 24u);

  // Drive the three rank states by hand, playing the messages of
  // Algorithm 3 + 4 exactly as Figure 2 does.
  RankState<> p0;
  RankState<> p1;
  RankState<> p2;
  for (std::size_t t = 0; t < 8; ++t) p0.process_own(trace[t], t);
  for (std::size_t t = 8; t < 16; ++t) p1.process_own(trace[t], t);
  for (std::size_t t = 16; t < 24; ++t) p2.process_own(trace[t], t);

  // Figure 2(a-c): per-rank local infinities after chunk processing.
  // (p0 keeps its queue: rank 0 flushes rather than sends.)
  const auto inf0 = p0.local_infinities();
  const auto inf1 = p1.take_local_infinities();
  const auto inf2 = p2.take_local_infinities();
  {
    const std::vector<InfRecord> expect0{{'d', 0}, {'a', 1}, {'c', 2},
                                         {'b', 3}, {'g', 6}, {'e', 7}};
    const std::vector<InfRecord> expect1{{'f', 8},  {'a', 9},  {'b', 11},
                                         {'c', 12}, {'m', 13}, {'t', 14}};
    const std::vector<InfRecord> expect2{
        {'a', 16}, {'c', 17}, {'f', 18}, {'b', 19}, {'d', 20}};
    EXPECT_EQ(inf0, expect0);
    EXPECT_EQ(inf1, expect1);
    EXPECT_EQ(inf2, expect2);
  }
  // Intra-chunk hits: p0 sees c@4 (1) and c@5 (0); p1 sees f@10 (1) and
  // m@15 (1); p2 sees c@21 (3), a@22 (4), c@23 (1).
  EXPECT_EQ(p0.hist().at(1), 1u);
  EXPECT_EQ(p0.hist().at(0), 1u);
  EXPECT_EQ(p1.hist().at(1), 2u);
  EXPECT_EQ(p2.hist().at(3), 1u);
  EXPECT_EQ(p2.hist().at(4), 1u);
  EXPECT_EQ(p2.hist().at(1), 1u);

  // Round 1: p0 counts its own infinities as global; p1 processes p2's.
  p0.flush_global_infinities();
  EXPECT_EQ(p0.hist().infinities(), 6u);
  p1.process_incoming(inf2);
  // Figure 2(e): p1 retains only t@14, m@15; forwards 'd'; count = 5.
  EXPECT_EQ(p1.received_count(), 5u);
  EXPECT_EQ(p1.resident(), 2u);
  const auto fwd1 = p1.take_local_infinities();
  EXPECT_EQ(fwd1, (std::vector<InfRecord>{{'d', 20}}));
  // Distances resolved at p1: a@16 -> 5, c@17 -> 3, f@18 -> 5, b@19 -> 5.
  EXPECT_EQ(p1.hist().at(5), 3u);
  EXPECT_EQ(p1.hist().at(3), 1u);

  // p0 processes p1's first-round infinities.
  p0.process_incoming(inf1);
  // Figure 2(d): p0 keeps d@0, g@6, e@7; forwards f, m, t; count = 6.
  EXPECT_EQ(p0.received_count(), 6u);
  EXPECT_EQ(p0.resident(), 3u);
  {
    const auto contents = tree_contents(p0.tree());
    const std::vector<TreeEntry> expect{{0, 'd'}, {6, 'g'}, {7, 'e'}};
    EXPECT_EQ(contents, expect);
  }
  // Distances resolved at p0 so far: a@9 -> 5, b@11 -> 5, c@12 -> 5.
  EXPECT_EQ(p0.hist().at(5), 3u);

  // Round 2 at p0: flush f, m, t as global infinities, then process 'd'.
  p0.flush_global_infinities();
  EXPECT_EQ(p0.hist().infinities(), 9u);
  p0.process_incoming(fwd1);
  // Figure 2(f): only g@6, e@7 remain; count = 7; d@20 resolved at 8.
  EXPECT_EQ(p0.received_count(), 7u);
  EXPECT_EQ(p0.resident(), 2u);
  EXPECT_EQ(p0.hist().at(8), 1u);
  {
    const auto contents = tree_contents(p0.tree());
    const std::vector<TreeEntry> expect{{6, 'g'}, {7, 'e'}};
    EXPECT_EQ(contents, expect);
  }
  p0.flush_global_infinities();

  // The aggregate space property (Section IV-C): every distinct address
  // survives on exactly one rank.
  EXPECT_EQ(p0.resident() + p1.resident() + p2.resident(),
            2u + 2u + 5u);

  // Merge the three histograms: must equal the sequential analysis.
  Histogram merged = p0.hist();
  merged.merge(p1.hist());
  merged.merge(p2.hist());
  EXPECT_TRUE(merged == olken_analysis(trace));
  EXPECT_EQ(merged.total(), 24u);
  EXPECT_EQ(merged.infinities(), 9u);

  // And the full comm-driven run agrees too.
  PardaOptions options;
  options.num_procs = 3;
  EXPECT_TRUE(parda_analyze(trace, options).hist == merged);
}

TEST(PaperSection2, FormalismExamples) {
  // |Psi_1^5| = |<a, c, b, c, c>| = 3 distinct elements.
  const auto trace = to_trace(kTable1);
  std::vector<Addr> window(trace.begin() + 1, trace.begin() + 6);
  std::sort(window.begin(), window.end());
  window.erase(std::unique(window.begin(), window.end()), window.end());
  EXPECT_EQ(window.size(), 3u);
  // Max_c(Psi_1^5) = 5 and D_c(4) uses R_c = {2, 4, 5}.
  std::vector<std::size_t> r_c;
  for (std::size_t i = 1; i <= 5; ++i) {
    if (trace[i] == static_cast<Addr>('c')) r_c.push_back(i);
  }
  EXPECT_EQ(r_c, (std::vector<std::size_t>{2, 4, 5}));
}

}  // namespace
}  // namespace parda
