// Tests for the multi-phase online algorithm (Algorithms 5-6): streaming
// through a TracePipe must give exactly the offline/sequential result, for
// every phase size, rank count, and cache bound.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "core/file_analysis.hpp"
#include "core/parda.hpp"
#include "seq/bounded.hpp"
#include "seq/olken.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_pipe.hpp"
#include "workload/generators.hpp"

namespace parda {
namespace {

std::vector<Addr> stream_trace(std::size_t n, std::uint64_t seed) {
  std::vector<std::unique_ptr<Workload>> kids;
  kids.push_back(std::make_unique<ZipfWorkload>(300, 0.8, seed, 0));
  kids.push_back(std::make_unique<SequentialWorkload>(100, 1));
  MixWorkload mix(std::move(kids), {0.6, 0.4}, seed);
  return generate_trace(mix, n);
}

/// Runs the streaming analysis with a producer thread feeding the pipe in
/// blocks of `block_words`.
PardaResult run_streamed(const std::vector<Addr>& trace,
                         const PardaOptions& options,
                         std::size_t pipe_capacity,
                         std::size_t block_words) {
  TracePipe pipe(pipe_capacity);
  std::thread producer([&] {
    for (std::size_t at = 0; at < trace.size(); at += block_words) {
      const std::size_t hi = std::min(at + block_words, trace.size());
      pipe.write(std::span<const Addr>(trace.data() + at, hi - at));
    }
    pipe.close();
  });
  PardaResult result = parda_analyze_stream(pipe, options);
  producer.join();
  return result;
}

class StreamEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(StreamEquivalenceTest, MatchesSequential) {
  const auto [np, chunk] = GetParam();
  const auto trace = stream_trace(7000, 11);
  const Histogram expected = olken_analysis(trace);

  PardaOptions options;
  options.num_procs = np;
  options.chunk_words = chunk;
  const PardaResult result = run_streamed(trace, options, 2048, 513);
  EXPECT_TRUE(result.hist == expected)
      << "np=" << np << " C=" << chunk;
}

INSTANTIATE_TEST_SUITE_P(
    PhaseGeometry, StreamEquivalenceTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 8),
                       ::testing::Values(64, 100, 1000, 4096)),
    [](const auto& info) {
      return "np" + std::to_string(std::get<0>(info.param)) + "_C" +
             std::to_string(std::get<1>(info.param));
    });

TEST(StreamTest, ExactPhaseMultipleLength) {
  // Trace length an exact multiple of np*C: the final phase is full and a
  // zero-length phase terminates the loop.
  const auto trace = stream_trace(4096, 3);
  PardaOptions options;
  options.num_procs = 4;
  options.chunk_words = 256;  // 4 * 256 = 1024 divides 4096
  const PardaResult result = run_streamed(trace, options, 512, 128);
  EXPECT_TRUE(result.hist == olken_analysis(trace));
}

TEST(StreamTest, SinglePhaseWholeTrace) {
  const auto trace = stream_trace(900, 4);
  PardaOptions options;
  options.num_procs = 3;
  options.chunk_words = 1000;  // phase swallows everything
  const PardaResult result = run_streamed(trace, options, 4096, 900);
  EXPECT_TRUE(result.hist == olken_analysis(trace));
}

TEST(StreamTest, ManyTinyPhases) {
  // Phases of np*C = 6 references stress the rank-reversal reduction.
  const auto trace = stream_trace(1000, 5);
  PardaOptions options;
  options.num_procs = 3;
  options.chunk_words = 2;
  const PardaResult result = run_streamed(trace, options, 64, 7);
  EXPECT_TRUE(result.hist == olken_analysis(trace));
}

TEST(StreamTest, EmptyStream) {
  TracePipe pipe(64);
  pipe.close();
  PardaOptions options;
  options.num_procs = 4;
  const PardaResult result = parda_analyze_stream(pipe, options);
  EXPECT_EQ(result.hist.total(), 0u);
}

TEST(StreamTest, StreamShorterThanOnePhase) {
  const std::vector<Addr> trace{1, 2, 1, 3, 2};
  PardaOptions options;
  options.num_procs = 4;
  options.chunk_words = 100;
  const PardaResult result = run_streamed(trace, options, 64, 2);
  EXPECT_TRUE(result.hist == olken_analysis(trace));
}

class StreamBoundedTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {
};

TEST_P(StreamBoundedTest, BoundedStreamingMatchesBoundedSequential) {
  const auto [bound, chunk] = GetParam();
  const auto trace = stream_trace(5000, 21);
  const Histogram expected = bounded_analysis(trace, bound);

  PardaOptions options;
  options.num_procs = 4;
  options.chunk_words = chunk;
  options.bound = bound;
  const PardaResult result = run_streamed(trace, options, 1024, 200);
  EXPECT_TRUE(result.hist == expected)
      << "B=" << bound << " C=" << chunk;
}

INSTANTIATE_TEST_SUITE_P(
    BoundAndPhase, StreamBoundedTest,
    ::testing::Combine(::testing::Values(1, 8, 64, 400),
                       ::testing::Values(64, 500)),
    [](const auto& info) {
      return "B" + std::to_string(std::get<0>(info.param)) + "_C" +
             std::to_string(std::get<1>(info.param));
    });

TEST(FileAnalysisTest, StreamsTraceFileCorrectly) {
  const auto trace = stream_trace(6000, 33);
  const std::string path =
      std::string(::testing::TempDir()) + "/file_analysis.trc";
  write_trace_binary(path, trace);

  PardaOptions options;
  options.num_procs = 3;
  options.chunk_words = 500;
  const PardaResult result =
      parda_analyze_file(path, options, /*pipe_words=*/2048);
  EXPECT_TRUE(result.hist == olken_analysis(trace));
  std::remove(path.c_str());
}

TEST(FileAnalysisTest, MissingFileThrows) {
  PardaOptions options;
  options.num_procs = 2;
  EXPECT_THROW(parda_analyze_file("/does/not/exist.trc", options),
               std::runtime_error);
}

TEST(FileAnalysisTest, BoundedFileAnalysis) {
  const auto trace = stream_trace(4000, 41);
  const std::string path =
      std::string(::testing::TempDir()) + "/file_analysis_bounded.trc";
  write_trace_binary(path, trace);
  PardaOptions options;
  options.num_procs = 4;
  options.bound = 64;
  options.chunk_words = 256;
  const PardaResult result = parda_analyze_file(path, options, 1024);
  EXPECT_TRUE(result.hist == bounded_analysis(trace, 64));
  std::remove(path.c_str());
}

TEST(StreamTest, StreamingScatterCopiesEachBlockOnce) {
  // The streaming driver reads each phase block once and scatters chunk
  // views of that single block: O(1) copies of each phase block, observable
  // through the runtime's bytes_copied counter. Only tiny control traffic
  // (phase headers, per-rank profiles) may be copied; the trace words
  // themselves must move as shared views.
  const auto trace = stream_trace(40000, 17);
  PardaOptions options;
  options.num_procs = 4;
  options.chunk_words = 1000;
  const PardaResult result = run_streamed(trace, options, 8192, 2048);
  EXPECT_TRUE(result.hist == olken_analysis(trace));

  const std::uint64_t trace_bytes = trace.size() * sizeof(Addr);
  // Copied bytes stay bounded by control traffic — far below even a single
  // duplication of the trace.
  EXPECT_LT(result.stats.total_bytes_copied(), trace_bytes / 8)
      << "copied=" << result.stats.total_bytes_copied();
  // The bulk of the data (chunks for np-1 non-root ranks, plus pipeline
  // and state handoffs) moves as shared or moved buffers.
  EXPECT_GE(result.stats.total_bytes_shared(), trace_bytes / 2)
      << "shared=" << result.stats.total_bytes_shared();
}

TEST(StreamTest, CrossPhaseReuseResolved) {
  // A reuse pair that straddles a phase boundary: x at positions 0 and
  // just past the first phase; the distance must be the number of distinct
  // elements between, resolved via the carried global state.
  std::vector<Addr> trace;
  trace.push_back(999);
  for (Addr a = 0; a < 30; ++a) trace.push_back(a);  // 30 distinct
  trace.push_back(999);  // distance 30
  PardaOptions options;
  options.num_procs = 2;
  options.chunk_words = 8;  // phase = 16 refs, reuse spans phases
  const PardaResult result = run_streamed(trace, options, 64, 5);
  EXPECT_EQ(result.hist.at(30), 1u);
  EXPECT_EQ(result.hist.infinities(), 31u);
}

}  // namespace
}  // namespace parda
