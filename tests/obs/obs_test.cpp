// Observability layer tests: runtime flag / rank attribution, counter
// sharding under concurrent writers (exercised under the TSAN preset),
// gauge and timer aggregation, span nesting and ordering, chrome-trace
// and metrics JSON schema validation, and a disabled-overhead guard.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"

namespace parda::obs {
namespace {

/// Parses JSON that the test expects to be well-formed (json::parse throws
/// JsonError otherwise, failing the test with its message).
json::Value parse_ok(const std::string& text) { return json::parse(text); }

/// Turns obs on for one test and restores the previous state afterwards,
/// so the enable flag never leaks between tests.
class ScopedEnable {
 public:
  ScopedEnable() : prev_(enabled()) { set_enabled(true); }
  ~ScopedEnable() { set_enabled(prev_); }

 private:
  bool prev_;
};

TEST(ObsRuntime, EnableFlagAndThreadRankRoundTrip) {
  EXPECT_FALSE(enabled());  // compiled in, off by default
  {
    ScopedEnable on;
    EXPECT_TRUE(enabled());
  }
  EXPECT_FALSE(enabled());

  EXPECT_EQ(thread_shard(), 0);
  EXPECT_EQ(thread_rank(), -1);
  {
    ScopedThreadRank rank(3);
    EXPECT_EQ(thread_shard(), 4);
    EXPECT_EQ(thread_rank(), 3);
    {
      ScopedThreadRank inner(0);
      EXPECT_EQ(thread_rank(), 0);
    }
    EXPECT_EQ(thread_rank(), 3);  // nesting restores the previous rank
  }
  EXPECT_EQ(thread_shard(), 0);

  // Out-of-range ranks fold into the unattributed shard.
  ScopedThreadRank bogus(kMaxRanks + 7);
  EXPECT_EQ(thread_shard(), 0);
}

TEST(ObsCounter, ShardsPerRankUnderConcurrentWriters) {
  ScopedEnable on;
  Counter c("test.counter");

  // One writer thread per rank, plus one unattributed writer, all hammering
  // the same Counter concurrently. Per-rank shards mean no write ever
  // touches another thread's cache line; TSAN verifies the claim.
  constexpr int kRanks = 4;
  constexpr std::uint64_t kAddsPerRank = 20000;
  std::vector<std::thread> writers;
  for (int r = 0; r < kRanks; ++r) {
    writers.emplace_back([&c, r] {
      ScopedThreadRank rank(r);
      for (std::uint64_t i = 0; i < kAddsPerRank; ++i) {
        c.add(static_cast<std::uint64_t>(r) + 1);
      }
    });
  }
  writers.emplace_back([&c] {  // unattributed: shard 0
    for (std::uint64_t i = 0; i < kAddsPerRank; ++i) c.increment();
  });
  for (auto& t : writers) t.join();

  const auto shards = c.shards();
  EXPECT_EQ(shards[0], kAddsPerRank);
  std::uint64_t expected_total = kAddsPerRank;
  for (int r = 0; r < kRanks; ++r) {
    const std::uint64_t want = kAddsPerRank * (static_cast<std::uint64_t>(r) + 1);
    EXPECT_EQ(shards[static_cast<std::size_t>(r) + 1], want) << "rank " << r;
    expected_total += want;
  }
  EXPECT_EQ(c.total(), expected_total);

  c.reset();
  EXPECT_EQ(c.total(), 0u);
}

TEST(ObsCounter, DisabledAddIsDropped) {
  Counter c("test.disabled");
  ASSERT_FALSE(enabled());
  c.add(42);
  EXPECT_EQ(c.total(), 0u);

  ScopedEnable on;
  c.add(42);
  EXPECT_EQ(c.total(), 42u);
}

TEST(ObsCounter, AddForRankAttributesExplicitly) {
  ScopedEnable on;
  Counter c("test.for_rank");
  c.add_for_rank(2, 10);
  c.add_for_rank(-1, 5);           // out of range: unattributed
  c.add_for_rank(kMaxRanks, 7);    // out of range: unattributed
  const auto shards = c.shards();
  EXPECT_EQ(shards[3], 10u);
  EXPECT_EQ(shards[0], 12u);
  EXPECT_EQ(c.total(), 22u);
}

TEST(ObsGauge, TracksLastValueAndRunningMax) {
  ScopedEnable on;
  Gauge g("test.gauge");
  g.set(100);
  g.set(40);           // lower set keeps the max
  EXPECT_EQ(g.max(), 100u);
  g.set_max(250);
  g.set_max(90);
  EXPECT_EQ(g.max(), 250u);
  g.set_for_rank(1, 777);
  EXPECT_EQ(g.shards()[2], 777u);
  EXPECT_EQ(g.max(), 777u);
  g.reset();
  EXPECT_EQ(g.max(), 0u);
}

TEST(ObsTimer, AggregatesCountSumMinMaxAndLog2Buckets) {
  ScopedEnable on;
  TimerHistogram t("test.timer");
  t.record_ns(0);     // bucket 0
  t.record_ns(1);     // bucket 0 ([1,2))
  t.record_ns(3);     // bucket 1 ([2,4))
  t.record_ns(1023);  // bucket 9 ([512,1024))
  t.record_ns(1024);  // bucket 10

  const auto agg = t.aggregate();
  EXPECT_EQ(agg.count, 5u);
  EXPECT_EQ(agg.sum_ns, 0u + 1 + 3 + 1023 + 1024);
  EXPECT_EQ(agg.min_ns, 0u);
  EXPECT_EQ(agg.max_ns, 1024u);
  EXPECT_EQ(agg.buckets[0], 2u);
  EXPECT_EQ(agg.buckets[1], 1u);
  EXPECT_EQ(agg.buckets[9], 1u);
  EXPECT_EQ(agg.buckets[10], 1u);

  {
    ScopedThreadRank rank(1);
    t.record_ns(500);
  }
  EXPECT_EQ(t.shards()[2].first, 1u);
  EXPECT_EQ(t.shards()[2].second, 500u);
  EXPECT_EQ(t.aggregate().count, 6u);

  t.reset();
  const auto zero = t.aggregate();
  EXPECT_EQ(zero.count, 0u);
  EXPECT_EQ(zero.min_ns, 0u);  // min reported as 0 when empty
}

TEST(ObsRegistry, HandlesAreStableAndNamed) {
  Registry reg;
  Counter& a = reg.counter("x.count");
  Counter& b = reg.counter("x.count");
  EXPECT_EQ(&a, &b);  // same name -> same handle
  EXPECT_EQ(a.name(), "x.count");
  EXPECT_NE(&reg.counter("y.count"), &a);

  ScopedEnable on;
  a.add(9);
  EXPECT_EQ(reg.counter_total("x.count"), 9u);
  EXPECT_EQ(reg.counter_total("never.registered"), 0u);
  reg.reset_values();
  EXPECT_EQ(reg.counter_total("x.count"), 0u);
}

TEST(ObsRegistry, SnapshotMatchesMetricsV1Schema) {
  ScopedEnable on;
  Registry reg;
  reg.counter("comm.bytes").add_for_rank(0, 100);
  reg.counter("comm.bytes").add_for_rank(2, 300);
  reg.gauge("engine.peak").set_for_rank(1, 55);
  reg.timer("wait").record_ns(2000);

  const json::Value doc = parse_ok(reg.to_json());
  EXPECT_EQ(doc.at("schema").as_string(), "parda.metrics.v1");

  const json::Value& bytes = doc.at("counters").at("comm.bytes");
  EXPECT_EQ(bytes.at("total").as_u64(), 400u);
  EXPECT_EQ(bytes.at("unattributed").as_u64(), 0u);
  const auto& per_rank = bytes.at("per_rank").array;
  ASSERT_EQ(per_rank.size(), 3u);  // trimmed after the last active rank
  EXPECT_EQ(per_rank[0].as_u64(), 100u);
  EXPECT_EQ(per_rank[1].as_u64(), 0u);
  EXPECT_EQ(per_rank[2].as_u64(), 300u);

  EXPECT_EQ(doc.at("gauges").at("engine.peak").at("max").as_u64(), 55u);

  const json::Value& wait = doc.at("timers").at("wait");
  EXPECT_EQ(wait.at("count").as_u64(), 1u);
  EXPECT_EQ(wait.at("sum_ns").as_u64(), 2000u);
  EXPECT_EQ(wait.at("max_ns").as_u64(), 2000u);
  EXPECT_DOUBLE_EQ(wait.at("mean_ns").as_double(), 2000.0);
  // 2000 ns lands in log2 bucket 10 ([1024, 2048)).
  ASSERT_EQ(wait.at("log2_ns").array.size(), 11u);
  EXPECT_EQ(wait.at("log2_ns").array[10].as_u64(), 1u);
}

TEST(ObsSpans, EventsOrderedByRankThenStartAndNestingPreserved) {
  ScopedEnable on;
  SpanTracer t(64);

  {
    ScopedThreadRank rank(1);
    t.record(100, 900, "outer", 0);
    t.record(200, 400, "inner", 0);  // nested inside [100, 900]
  }
  {
    ScopedThreadRank rank(0);
    t.record(50, 60, "scatter", 0);
  }
  t.record(10, 20, "driver-op");  // unattributed

  const auto all = t.events();
  ASSERT_EQ(all.size(), 4u);
  // Sorted by (rank, t_start): unattributed (-1) first, then rank 0, 1.
  EXPECT_EQ(all[0].rank, -1);
  EXPECT_STREQ(all[0].op, "driver-op");
  EXPECT_EQ(all[0].phase, kNoPhase);
  EXPECT_EQ(all[1].rank, 0);
  EXPECT_STREQ(all[1].op, "scatter");
  EXPECT_EQ(all[2].rank, 1);
  EXPECT_STREQ(all[2].op, "outer");
  EXPECT_STREQ(all[3].op, "inner");
  // Nesting: the inner span lies strictly within the outer one.
  EXPECT_GE(all[3].t_start_ns, all[2].t_start_ns);
  EXPECT_LE(all[3].t_end_ns, all[2].t_end_ns);

  const auto rank1 = t.events_for_rank(1);
  ASSERT_EQ(rank1.size(), 2u);
  EXPECT_STREQ(rank1[0].op, "outer");

  t.clear();
  EXPECT_TRUE(t.events().empty());
}

TEST(ObsSpans, RingWrapCountsDroppedEvents) {
  ScopedEnable on;
  SpanTracer t(16);  // minimum capacity
  ScopedThreadRank rank(0);
  for (int i = 0; i < 21; ++i) {
    t.record(i, i + 1, "op");
  }
  EXPECT_EQ(t.dropped(), 5u);
  // The per-shard breakdown (the obs.spans_dropped counter in /metrics)
  // attributes every overwrite to the recording rank's shard.
  const auto per_shard = t.dropped_per_shard();
  EXPECT_EQ(per_shard[1], 5u);  // rank 0 records into shard 1
  EXPECT_EQ(per_shard[0], 0u);
  const auto kept = t.events();
  ASSERT_EQ(kept.size(), 16u);
  EXPECT_EQ(kept.front().t_start_ns, 5);  // oldest five were overwritten
  EXPECT_EQ(kept.back().t_start_ns, 20);
}

TEST(ObsSpans, SpanScopeRecordsOnlyWhileEnabled) {
  tracer().clear();
  {
    SpanScope disabled_span("should-not-appear");
  }
  {
    ScopedEnable on;
    ScopedThreadRank rank(2);
    SpanScope s("analyze", 7);
  }
  const auto all = tracer().events();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_STREQ(all[0].op, "analyze");
  EXPECT_EQ(all[0].rank, 2);
  EXPECT_EQ(all[0].phase, 7u);
  EXPECT_GE(all[0].t_end_ns, all[0].t_start_ns);
  tracer().clear();
}

TEST(ObsSpans, ChromeJsonMatchesTraceEventSchema) {
  ScopedEnable on;
  SpanTracer t(64);
  {
    ScopedThreadRank rank(0);
    t.record(1000, 3000, "scatter", 0);
    t.record(3000, 9000, "analyze", 0);
  }
  t.record(0, 500, "setup");  // unattributed -> tid kMaxRanks

  const json::Value doc = parse_ok(t.to_chrome_json());
  const auto& events = doc.at("traceEvents").array;
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");

  std::size_t complete = 0, metadata = 0;
  for (const json::Value& e : events) {
    const std::string& ph = e.at("ph").as_string();
    EXPECT_EQ(e.at("pid").as_u64(), 0u);
    if (ph == "M") {
      ++metadata;
      EXPECT_EQ(e.at("name").as_string(), "thread_name");
      continue;
    }
    ASSERT_EQ(ph, "X");  // complete events only
    ++complete;
    EXPECT_FALSE(e.at("name").as_string().empty());
    EXPECT_EQ(e.at("cat").as_string(), "parda");
    EXPECT_GE(e.at("dur").as_double(), 0.0);
    EXPECT_NE(e.find("ts"), nullptr);
    EXPECT_NE(e.at("args").find("rank"), nullptr);
  }
  EXPECT_EQ(complete, 3u);
  EXPECT_EQ(metadata, 2u);  // one row label per distinct tid

  // Spot-check the scatter event: ts/dur are microseconds.
  bool found_scatter = false;
  for (const json::Value& e : events) {
    if (e.at("ph").as_string() == "X" &&
        e.at("name").as_string() == "scatter") {
      found_scatter = true;
      EXPECT_DOUBLE_EQ(e.at("ts").as_double(), 1.0);
      EXPECT_DOUBLE_EQ(e.at("dur").as_double(), 2.0);
      EXPECT_EQ(e.at("tid").as_u64(), 0u);
      EXPECT_EQ(e.at("args").at("phase").as_u64(), 0u);
    }
    if (e.at("ph").as_string() == "X" &&
        e.at("name").as_string() == "setup") {
      EXPECT_EQ(e.at("tid").as_u64(),
                static_cast<std::uint64_t>(kMaxRanks));
    }
  }
  EXPECT_TRUE(found_scatter);
}

TEST(ObsOverhead, DisabledRecordingIsCheap) {
  // The <2% product guard is measured on bench_engines (see DESIGN.md);
  // this is a coarse regression tripwire: 20M disabled Counter::add calls
  // must stay far below any plausible "accidentally taking a lock" cost.
  // The bound is deliberately generous for loaded CI machines and TSAN.
  ASSERT_FALSE(enabled());
  Counter c("overhead.probe");
  WallTimer timer;
  for (std::uint64_t i = 0; i < 20'000'000; ++i) c.add(i);
  const double seconds = timer.seconds();
  EXPECT_EQ(c.total(), 0u);
  EXPECT_LT(seconds, 2.0) << "disabled-path overhead regressed";
}

}  // namespace
}  // namespace parda::obs
