// Live-telemetry tests: SpanReport attribution math on synthetic span
// lists, the Prometheus exporter + hand-rolled format validator, the
// structured JSON-lines logger, the TelemetryServer's endpoint routing and
// real HTTP serving (including scrapes concurrent with an in-flight
// streaming analysis), and the end-to-end acceptance check that a
// fault-injected delay on one rank is automatically named as the
// straggler by `SpanReport`.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "comm/fault.hpp"
#include "comm/transport/spec.hpp"
#include "core/parda.hpp"
#include "core/runtime.hpp"
#include "obs/obs.hpp"
#include "trace/trace_pipe.hpp"
#include "util/json.hpp"
#include "workload/generators.hpp"

namespace parda::obs {
namespace {

json::Value parse_ok(const std::string& text) { return json::parse(text); }

class ScopedEnable {
 public:
  ScopedEnable() : prev_(enabled()) { set_enabled(true); }
  ~ScopedEnable() { set_enabled(prev_); }

 private:
  bool prev_;
};

// ---------------------------------------------------------------------------
// SpanReport: attribution math on synthetic event lists.
// ---------------------------------------------------------------------------

SpanEvent ev(std::int64_t t0, std::int64_t t1, const char* op,
             std::uint32_t phase, std::int32_t rank) {
  return SpanEvent{t0, t1, op, phase, rank};
}

TEST(SpanReport, WaitRefinementAndStragglerSelfTime) {
  // Phase 0, three ranks. Rank 1 computes for the full 100 units; ranks 0
  // and 2 cover the same extent but spend 80 of it blocked — the classic
  // one-straggler shape.
  const std::vector<SpanEvent> events = {
      ev(0, 100, "infinity-pipeline", 0, 0),
      ev(10, 90, "recv-wait", 0, 0),
      ev(0, 100, "analyze", 0, 1),
      ev(0, 100, "infinity-pipeline", 0, 2),
      ev(15, 95, "barrier-wait", 0, 2),
  };
  const SpanReport report = SpanReport::from_events(events);

  ASSERT_EQ(report.phases().size(), 1u);
  const PhaseReport& phase = report.phases()[0];
  EXPECT_EQ(phase.phase, 0u);
  EXPECT_EQ(phase.t_begin_ns, 0);
  EXPECT_EQ(phase.t_end_ns, 100);
  EXPECT_EQ(phase.critical_path_ns, 100u);
  ASSERT_EQ(phase.ranks.size(), 3u);

  const RankSlice& r0 = phase.ranks[0];
  EXPECT_EQ(r0.total_ns, 100u);
  EXPECT_EQ(r0.wait_ns, 80u);
  EXPECT_EQ(r0.self_ns, 20u);
  const RankSlice& r1 = phase.ranks[1];
  EXPECT_EQ(r1.total_ns, 100u);
  EXPECT_EQ(r1.wait_ns, 0u);
  EXPECT_EQ(r1.self_ns, 100u);
  EXPECT_EQ(r1.compute_ns, 100u);

  // The straggler is the rank with the most SELF time, not the most wall
  // time — every rank spans the full extent here.
  EXPECT_EQ(phase.straggler_rank, 1);
  EXPECT_EQ(phase.straggler_self_ns, 100u);
  EXPECT_EQ(report.straggler_rank(), 1);
  // All three ranks cover the extent: no pipeline bubble.
  EXPECT_EQ(phase.bubble_ns, 0u);
  EXPECT_EQ(report.wall_ns(), 100u);
}

TEST(SpanReport, BubbleCountsUncoveredExtent) {
  // Rank 1 starts 40 units late: the phase extent is 100, rank 1 covers 60,
  // so the bubble is 40.
  const std::vector<SpanEvent> events = {
      ev(0, 100, "analyze", 2, 0),
      ev(40, 100, "analyze", 2, 1),
  };
  const SpanReport report = SpanReport::from_events(events);
  ASSERT_EQ(report.phases().size(), 1u);
  EXPECT_EQ(report.phases()[0].bubble_ns, 40u);
  EXPECT_EQ(report.phases()[0].critical_path_ns, 100u);
}

TEST(SpanReport, IoAndComputeSharesAndNoPhaseSortsLast) {
  const std::vector<SpanEvent> events = {
      ev(0, 30, "scatter", 1, 0),    ev(30, 90, "analyze", 1, 0),
      ev(0, 50, "analyze", 0, 0),    ev(200, 260, "final-reduce", kNoPhase, 0),
  };
  const SpanReport report = SpanReport::from_events(events);
  ASSERT_EQ(report.phases().size(), 3u);
  EXPECT_EQ(report.phases()[0].phase, 0u);
  EXPECT_EQ(report.phases()[1].phase, 1u);
  EXPECT_EQ(report.phases()[2].phase, kNoPhase);  // pseudo-phase sorts last

  const RankSlice& slice = report.phases()[1].ranks[0];
  EXPECT_EQ(slice.io_ns, 30u);
  EXPECT_EQ(slice.compute_ns, 60u);
  EXPECT_EQ(slice.total_ns, 90u);

  // Per-rank utilization folds every phase plus the pseudo-phase.
  ASSERT_EQ(report.ranks().size(), 1u);
  EXPECT_EQ(report.ranks()[0].busy_ns, 200u);
  EXPECT_EQ(report.ranks()[0].self_ns, 200u);
  EXPECT_GT(report.ranks()[0].utilization, 0.0);
}

TEST(SpanReport, JsonMatchesSpanReportV1Schema) {
  const std::vector<SpanEvent> events = {
      ev(0, 100, "analyze", 0, 0),
      ev(0, 80, "analyze", 0, 1),
      ev(120, 140, "final-reduce", kNoPhase, 0),
  };
  const SpanReport report = SpanReport::from_events(events, 7);
  const json::Value doc = parse_ok(report.to_json());
  EXPECT_EQ(doc.at("schema").as_string(), "parda.spanreport.v1");
  EXPECT_EQ(doc.at("spans_dropped").as_u64(), 7u);
  EXPECT_EQ(doc.at("straggler_rank").as_i64(), 0);
  EXPECT_EQ(doc.at("wall_ns").as_u64(), 140u);

  const auto& phases = doc.at("phases").array;
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].at("phase").as_u64(), 0u);
  EXPECT_EQ(phases[1].at("phase").kind,
            json::Value::Kind::kNull);  // kNoPhase -> null
  const auto& ranks = phases[0].at("ranks").array;
  ASSERT_EQ(ranks.size(), 2u);
  EXPECT_EQ(ranks[0].at("rank").as_i64(), 0);
  EXPECT_EQ(ranks[0].at("total_ns").as_u64(), 100u);
}

TEST(SpanReport, TableNamesRanksAndPhases) {
  const std::vector<SpanEvent> events = {
      ev(0, 100, "analyze", 3, 2),
      ev(0, 40, "reduce", kNoPhase, -1),  // driver work, no phase
  };
  const std::string table = SpanReport::from_events(events).to_table();
  EXPECT_NE(table.find("rank"), std::string::npos);
  EXPECT_NE(table.find("straggler"), std::string::npos);
  EXPECT_NE(table.find("driver"), std::string::npos);
  EXPECT_NE(table.find("3"), std::string::npos);
}

TEST(SpanReport, EmptyEventsProduceEmptyReport) {
  const SpanReport report = SpanReport::from_events({});
  EXPECT_TRUE(report.phases().empty());
  EXPECT_TRUE(report.ranks().empty());
  EXPECT_EQ(report.straggler_rank(), -1);
  EXPECT_EQ(report.wall_ns(), 0u);
  parse_ok(report.to_json());  // still well-formed JSON
}

// ---------------------------------------------------------------------------
// Prometheus exporter + hand-rolled validator.
// ---------------------------------------------------------------------------

TEST(PrometheusExport, RendersAndValidates) {
  ScopedEnable on;
  Registry reg;
  SpanTracer spans(16);

  Counter& bytes = reg.counter("test.bytes_sent");
  bytes.add_for_rank(0, 100);
  bytes.add_for_rank(1, 250);
  Gauge& np = reg.gauge("test.job_np");
  np.set_for_rank(0, 4);
  reg.timer("test.wait").record_ns(1500);
  spans.record(0, 10, "analyze", 0);

  const std::string text = to_prometheus(reg, spans);
  EXPECT_NE(text.find("# TYPE parda_test_bytes_sent_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("parda_test_bytes_sent_total{rank=\"1\"} 250"),
            std::string::npos);
  EXPECT_NE(text.find("parda_test_job_np{rank=\"0\"} 4"), std::string::npos);
  EXPECT_NE(text.find("parda_test_wait_ns_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(text.find("parda_obs_spans_dropped_total"), std::string::npos);

  const std::vector<std::string> problems = validate_prometheus(text);
  EXPECT_TRUE(problems.empty())
      << "validator rejected our own exposition: " << problems[0];
}

TEST(PrometheusValidator, FlagsBrokenDocuments) {
  // A well-formed miniature document passes...
  EXPECT_TRUE(validate_prometheus("# HELP a_total ok\n"
                                  "# TYPE a_total counter\n"
                                  "a_total{rank=\"0\"} 1\n")
                  .empty());
  // ...counters must end in _total...
  EXPECT_FALSE(validate_prometheus("# HELP a ok\n"
                                   "# TYPE a counter\n"
                                   "a 1\n")
                   .empty());
  // ...label values must escape backslashes/quotes/newlines...
  EXPECT_FALSE(validate_prometheus("# HELP a_total ok\n"
                                   "# TYPE a_total counter\n"
                                   "a_total{rank=\"b\"ad\"} 1\n")
                   .empty());
  // ...metric names have a restricted charset...
  EXPECT_FALSE(validate_prometheus("# HELP a-b ok\n"
                                   "# TYPE a-b gauge\n"
                                   "a-b 1\n")
                   .empty());
  // ...sample values must be numeric...
  EXPECT_FALSE(validate_prometheus("# HELP a ok\n"
                                   "# TYPE a gauge\n"
                                   "a banana\n")
                   .empty());
  // ...histograms need a +Inf bucket...
  EXPECT_FALSE(validate_prometheus("# HELP h ok\n"
                                   "# TYPE h histogram\n"
                                   "h_bucket{le=\"1\"} 1\n"
                                   "h_sum 1\n"
                                   "h_count 1\n")
                   .empty());
  // ...and cumulative buckets must be monotone.
  EXPECT_FALSE(validate_prometheus("# HELP h ok\n"
                                   "# TYPE h histogram\n"
                                   "h_bucket{le=\"1\"} 5\n"
                                   "h_bucket{le=\"2\"} 3\n"
                                   "h_bucket{le=\"+Inf\"} 5\n"
                                   "h_sum 1\n"
                                   "h_count 5\n")
                   .empty());
}

// ---------------------------------------------------------------------------
// Structured logging.
// ---------------------------------------------------------------------------

TEST(StructuredLog, EmitsOneJsonLineWithAttribution) {
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  const LogLevel prev = log_level();
  set_log_sink(sink);
  set_log_level(LogLevel::kInfo);

  {
    ScopedThreadRank rank(2);
    ScopedThreadPhase phase(7);
    log(LogLevel::kInfo, "test.event")
        .field("action", "delay")
        .field("ms", std::uint64_t{50})
        .field("ratio", 0.5)
        .field("ok", true);
  }
  log(LogLevel::kDebug, "test.suppressed").field("k", 1);  // below threshold

  set_log_sink(nullptr);
  set_log_level(prev);

  std::rewind(sink);
  char buf[4096];
  std::string contents;
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, sink)) > 0) {
    contents.append(buf, got);
  }
  std::fclose(sink);

  // Exactly one line: the suppressed event must leave no trace.
  ASSERT_FALSE(contents.empty());
  EXPECT_EQ(contents.find('\n'), contents.size() - 1);
  const json::Value doc = parse_ok(contents);
  EXPECT_EQ(doc.at("level").as_string(), "info");
  EXPECT_EQ(doc.at("event").as_string(), "test.event");
  EXPECT_EQ(doc.at("rank").as_i64(), 2);
  EXPECT_EQ(doc.at("phase").as_u64(), 7u);
  EXPECT_GE(doc.at("ts_ns").as_i64(), 0);
  // The wall-clock anchor: unix_ns is the same instant as ts_ns, so
  // multi-process logs merge on it. anchor + ts_ns == unix_ns exactly.
  EXPECT_EQ(doc.at("unix_ns").as_i64(),
            log_unix_anchor_ns() + doc.at("ts_ns").as_i64());
  EXPECT_EQ(doc.at("fields").at("action").as_string(), "delay");
  EXPECT_EQ(doc.at("fields").at("ms").as_u64(), 50u);
  EXPECT_TRUE(doc.at("fields").at("ok").boolean);
}

TEST(StructuredLog, LevelParsingRoundTrips) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_FALSE(parse_log_level("loud").has_value());
  EXPECT_STREQ(log_level_name(LogLevel::kError), "error");
}

// ---------------------------------------------------------------------------
// TelemetryServer: routing + real HTTP.
// ---------------------------------------------------------------------------

/// Blocking one-shot HTTP GET against 127.0.0.1:port; returns the full
/// response (status line, headers, body).
std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string http_body(const std::string& response) {
  const std::size_t at = response.find("\r\n\r\n");
  return at == std::string::npos ? std::string() : response.substr(at + 4);
}

TEST(TelemetryServer, RoutesAllEndpoints) {
  ScopedEnable on;
  TelemetryServer server(0, [] {
    Health h;
    h.workers = 4;
    h.jobs = 9;
    h.watchdog = true;
    return h;
  });
  EXPECT_GT(server.port(), 0);  // port 0 resolved to an ephemeral port

  const auto metrics = server.handle("/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_EQ(metrics.content_type, "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_TRUE(validate_prometheus(metrics.body).empty());

  const auto metrics_json = server.handle("/metrics.json");
  EXPECT_EQ(metrics_json.status, 200);
  EXPECT_EQ(parse_ok(metrics_json.body).at("schema").as_string(),
            "parda.metrics.v1");

  const auto spans = server.handle("/spans");
  EXPECT_EQ(spans.status, 200);
  parse_ok(spans.body).at("traceEvents");

  const auto health = server.handle("/healthz");
  EXPECT_EQ(health.status, 200);
  const json::Value doc = parse_ok(health.body);
  EXPECT_TRUE(doc.at("ok").boolean);
  EXPECT_EQ(doc.at("workers").as_i64(), 4);
  EXPECT_EQ(doc.at("jobs").as_u64(), 9u);
  EXPECT_TRUE(doc.at("watchdog").boolean);

  EXPECT_EQ(server.handle("/nope").status, 404);
  server.stop();
  server.stop();  // idempotent
}

TEST(TelemetryServer, AcceptPoolKeepsScrapesFlowingPastSlowRequests) {
  // Head-of-line blocking regression test: with a serial accept loop, a
  // request parked inside its handler would starve every later
  // connection. The accept pool must keep /metrics scrapes flowing while
  // /slow is still in service.
  ScopedEnable on;
  TelemetryServer server(0);
  ASSERT_GE(server.accept_threads(), 2);

  std::promise<void> release;
  std::shared_future<void> released(release.get_future());
  std::atomic<bool> slow_entered{false};
  server.set_handler([&](const TelemetryServer::Request& request)
                         -> std::optional<TelemetryServer::Response> {
    if (request.path == "/slow") {
      slow_entered.store(true, std::memory_order_release);
      released.wait();
      return TelemetryServer::Response{200, "text/plain", "done\n"};
    }
    return std::nullopt;
  });

  std::thread slow_client(
      [&] { http_get(server.port(), "/slow"); });
  while (!slow_entered.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // /slow is parked in its handler on one pool thread. These scrapes must
  // be served by the others — if they queue behind /slow, the test hangs
  // (and the 2s client recv timeout turns that into a visible failure).
  for (int i = 0; i < 3; ++i) {
    const std::string metrics = http_get(server.port(), "/metrics");
    EXPECT_NE(metrics.find("HTTP/1.1 200"), std::string::npos);
  }
  release.set_value();
  slow_client.join();
  server.stop();
}

TEST(TelemetryServer, ServesRealHttpGets) {
  ScopedEnable on;
  TelemetryServer server(0);
  const std::string health = http_get(server.port(), "/healthz");
  EXPECT_NE(health.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_TRUE(parse_ok(http_body(health)).at("ok").boolean);

  const std::string metrics = http_get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_TRUE(validate_prometheus(http_body(metrics)).empty());

  const std::string missing = http_get(server.port(), "/missing");
  EXPECT_NE(missing.find("HTTP/1.1 404"), std::string::npos);
}

TEST(TelemetryServer, ScrapesConcurrentWithStreamingAnalysis) {
  ScopedEnable on;
  tracer().clear();

  core::RuntimeOptions runtime_options;
  runtime_options.serve_port = 0;  // ephemeral
  core::PardaRuntime runtime(runtime_options);
  ASSERT_GT(runtime.serve_port(), 0);

  ZipfWorkload w(500, 0.9, 21);
  const auto trace = generate_trace(w, 20000);
  PardaOptions options;
  options.num_procs = 4;
  options.chunk_words = 1024;  // several streaming phases

  std::atomic<bool> done{false};
  std::thread scraper([&] {
    // Hammer every endpoint while the analyses run; each scrape must be a
    // complete, valid response even mid-phase.
    int scrapes = 0;
    while (!done.load(std::memory_order_relaxed) || scrapes < 3) {
      const std::string m = http_get(runtime.serve_port(), "/metrics");
      EXPECT_NE(m.find("HTTP/1.1 200"), std::string::npos);
      EXPECT_TRUE(validate_prometheus(http_body(m)).empty());
      parse_ok(http_body(http_get(runtime.serve_port(), "/metrics.json")));
      parse_ok(http_body(http_get(runtime.serve_port(), "/healthz")));
      ++scrapes;
    }
  });

  auto session = runtime.session(options);
  const Histogram reference = parda_analyze(trace, options).hist;
  for (int i = 0; i < 4; ++i) {
    TracePipe pipe(trace.size() + 1);
    pipe.write(std::vector<Addr>(trace));
    pipe.close();
    EXPECT_TRUE(session.analyze_stream(pipe).hist == reference);
  }
  done.store(true, std::memory_order_relaxed);
  scraper.join();

  // The spans endpoint reflects the finished run.
  const std::string spans = http_body(http_get(runtime.serve_port(), "/spans"));
  EXPECT_NE(parse_ok(spans).at("traceEvents").array.size(), 0u);
}

// ---------------------------------------------------------------------------
// Distributed telemetry: parda.telemetry.v1 frames and the rank-0 hub.
// ---------------------------------------------------------------------------

TEST(TelemetryFrame, RoundTripsThroughTheHub) {
  ScopedEnable on;
  Registry reg;
  SpanTracer spans(64);
  reg.counter("dist.bytes").add_for_rank(0, 77);
  reg.gauge("dist.depth").set_for_rank(0, 5);
  reg.timer("dist.wait").record_ns(1000);
  spans.record(100, 200, "analyze", 3);

  ClockSync clock;
  clock.offset_ns = 5'000'000;
  clock.uncertainty_ns = 1200;
  clock.valid = true;
  clock.samples = 8;

  const std::string frame = make_telemetry_frame(2, 9, false, clock, reg, spans);
  const json::Value doc = parse_ok(frame);
  EXPECT_EQ(doc.at("schema").as_string(), "parda.telemetry.v1");
  EXPECT_EQ(doc.at("process").as_i64(), 2);
  EXPECT_EQ(doc.at("seq").as_u64(), 9u);
  EXPECT_FALSE(doc.at("final").boolean);
  EXPECT_EQ(doc.at("clock").at("offset_ns").as_i64(), 5'000'000);
  EXPECT_EQ(doc.at("metrics").at("schema").as_string(), "parda.metrics.v1");

  TelemetryHub local_hub;
  EXPECT_TRUE(local_hub.empty());
  const TelemetryHub::Ingest first = local_hub.ingest_frame(frame);
  EXPECT_EQ(first.process, 2);
  EXPECT_FALSE(first.final_frame);
  EXPECT_FALSE(local_hub.empty());
  EXPECT_EQ(local_hub.frames_total(), 1u);

  const auto remotes = local_hub.snapshot();
  ASSERT_EQ(remotes.size(), 1u);
  const ProcessTelemetry& pt = remotes[0];
  EXPECT_EQ(pt.process, 2);
  EXPECT_EQ(pt.seq, 9u);
  EXPECT_FALSE(pt.final_received);
  EXPECT_TRUE(pt.clock.valid);
  ASSERT_EQ(pt.counters.size(), 1u);
  EXPECT_EQ(pt.counters[0].name, "dist.bytes");
  ASSERT_GE(pt.counters[0].shards.size(), 2u);
  EXPECT_EQ(pt.counters[0].shards[1], 77u);  // index r+1 = rank r
  ASSERT_EQ(pt.timers.size(), 1u);
  EXPECT_EQ(pt.timers[0].count, 1u);

  // Span timestamps were rebased onto rank 0's epoch at ingest.
  ASSERT_EQ(pt.spans.size(), 1u);
  EXPECT_EQ(pt.spans[0].t_start_ns, 100 + 5'000'000);
  EXPECT_EQ(pt.spans[0].t_end_ns, 200 + 5'000'000);
  EXPECT_STREQ(pt.spans[0].op, "analyze");
  EXPECT_EQ(pt.spans[0].phase, 3u);
  EXPECT_EQ(local_hub.max_uncertainty_ns(), 1200);

  // A later frame REPLACES the process's snapshot (frames are cumulative),
  // and the final flag is surfaced to the caller.
  spans.record(300, 400, "reduce", 3);
  const TelemetryHub::Ingest last = local_hub.ingest_frame(
      make_telemetry_frame(2, 10, true, clock, reg, spans));
  EXPECT_EQ(last.process, 2);
  EXPECT_TRUE(last.final_frame);
  const auto updated = local_hub.snapshot();
  ASSERT_EQ(updated.size(), 1u);
  EXPECT_EQ(updated[0].seq, 10u);
  EXPECT_TRUE(updated[0].final_received);
  EXPECT_EQ(updated[0].frames, 2u);
  EXPECT_EQ(updated[0].spans.size(), 2u);

  // merged_events folds local + rebased-remote spans for the SpanReport.
  SpanTracer local(16);
  local.record(0, 50, "scatter", 0);
  const auto merged = local_hub.merged_events(local);
  EXPECT_EQ(merged.size(), 3u);
  parse_ok(local_hub.merged_chrome_json(local)).at("traceEvents");
  const json::Value mm = parse_ok(local_hub.merged_metrics_json(reg));
  ASSERT_EQ(mm.at("processes").array.size(), 1u);
  EXPECT_EQ(mm.at("processes").array[0].at("process").as_i64(), 2);

  local_hub.clear();
  EXPECT_TRUE(local_hub.empty());
}

TEST(TelemetryFrame, HubRejectsMalformedFrames) {
  TelemetryHub local_hub;
  EXPECT_ANY_THROW(local_hub.ingest_frame("{"));
  EXPECT_ANY_THROW(local_hub.ingest_frame("{\"schema\":\"nope\"}"));
  EXPECT_TRUE(local_hub.empty());  // nothing was stored
}

TEST(TelemetryFrame, FleetPrometheusSharesFamilyBlocksAcrossProcesses) {
  ScopedEnable on;
  // The same counter exists locally and remotely: the exposition must
  // render ONE family block (a duplicate HELP/TYPE is a validator error)
  // with process="0" and process="1" samples side by side.
  Registry local;
  SpanTracer local_spans(16);
  local.counter("fleet.chunks").add_for_rank(0, 10);

  Registry remote;
  SpanTracer remote_spans(16);
  remote.counter("fleet.chunks").add_for_rank(1, 33);
  TelemetryHub local_hub;
  local_hub.ingest_frame(
      make_telemetry_frame(1, 1, true, ClockSync{0, 900, true, 8}, remote,
                           remote_spans));

  const std::string text = to_prometheus(local, local_spans, local_hub);
  const std::vector<std::string> problems = validate_prometheus(text);
  EXPECT_TRUE(problems.empty()) << problems[0];
  EXPECT_NE(text.find("parda_fleet_chunks_total{process=\"0\",rank=\"0\"} 10"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("parda_fleet_chunks_total{process=\"1\",rank=\"1\"} 33"),
            std::string::npos)
      << text;
  // Per-process freshness and clock-trust gauges ride along.
  EXPECT_NE(text.find("parda_telemetry_frames_total{process=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("parda_telemetry_final{process=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(
      text.find("parda_telemetry_clock_uncertainty_ns{process=\"1\"} 900"),
      std::string::npos);
}

TEST(PrometheusValidator, LabelValueEscapesAndProcessRankCombos) {
  // Escaped backslash, newline, and quote in a label value are legal; so
  // is any process/rank label combination the fleet exposition emits.
  EXPECT_TRUE(validate_prometheus(
                  "# HELP a_total ok\n"
                  "# TYPE a_total counter\n"
                  "a_total{path=\"C:\\\\tmp\\n\\\"q\\\"\"} 1\n"
                  "a_total{process=\"0\",rank=\"driver\"} 2\n"
                  "a_total{process=\"1\",rank=\"0\"} 3\n")
                  .empty());
  // Unknown escape sequences are rejected...
  EXPECT_FALSE(validate_prometheus("# HELP a_total ok\n"
                                   "# TYPE a_total counter\n"
                                   "a_total{rank=\"\\q\"} 1\n")
                   .empty());
  // ...as are unterminated label values...
  EXPECT_FALSE(validate_prometheus("# HELP a_total ok\n"
                                   "# TYPE a_total counter\n"
                                   "a_total{rank=\"0} 1\n")
                   .empty());
  // ...and the duplicate HELP/TYPE a naive per-process renderer would
  // produce (the regression the shared family blocks exist to prevent).
  EXPECT_FALSE(validate_prometheus("# HELP a_total ok\n"
                                   "# TYPE a_total counter\n"
                                   "a_total{process=\"0\"} 1\n"
                                   "# HELP a_total ok\n"
                                   "# TYPE a_total counter\n"
                                   "a_total{process=\"1\"} 2\n")
                   .empty());
}

TEST(FleetMetrics, CountersStayMonotoneAcrossWorldReset) {
  ScopedEnable on;
  // An injected fault poisons the shared World; the runtime recycles it
  // with World::reset() for the next job. The metrics registry is
  // process-global: the recycle must NOT zero counters (Prometheus
  // counters are monotone) and the exposition must stay valid throughout.
  ZipfWorkload w(300, 0.9, 41);
  const auto trace = generate_trace(w, 6000);
  const comm::FaultPlan plan = comm::FaultPlan::parse("rank=1,op=recv,n=0");

  core::PardaRuntime runtime;
  PardaOptions options;
  options.num_procs = 3;
  const Histogram reference = parda_analyze(trace, options).hist;

  auto session = runtime.session(options);
  session.options().run_options.fault_plan = &plan;
  EXPECT_THROW(session.analyze(trace), comm::FaultInjectedError);
  const std::uint64_t sends_after_abort =
      registry().counter_total("comm.sends");
  EXPECT_TRUE(validate_prometheus(to_prometheus(registry(), tracer())).empty());

  session.options().run_options.fault_plan = nullptr;
  EXPECT_TRUE(session.analyze(trace).hist == reference);
  EXPECT_GE(registry().counter_total("comm.sends"), sends_after_abort);
  EXPECT_TRUE(validate_prometheus(to_prometheus(registry(), tracer())).empty());
}

// ---------------------------------------------------------------------------
// Crash flight recorder.
// ---------------------------------------------------------------------------

TEST(FlightRecorder, FirstDumpWinsAndIsStructured) {
  ScopedEnable on;
  flightrec_reset_for_test();
  tracer().clear();
  {
    ScopedThreadRank rank(1);
    tracer().record(10, 90, "analyze", 0);
  }

  // The abort-origin log line must land in the dump's structured tail.
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  const LogLevel prev = log_level();
  set_log_sink(sink);
  set_log_level(LogLevel::kWarn);
  log(LogLevel::kWarn, "comm.abort").field("origin", 1).field("cause", "test");
  set_log_sink(nullptr);
  set_log_level(prev);
  std::fclose(sink);

  const std::string path =
      std::string(::testing::TempDir()) + "/flightrec_%r.json";
  flightrec_configure(path, 3);
  flightrec_note("transport", "tcp(np=2)");
  flightrec_note("abort.origin", "1");

  EXPECT_FALSE(flightrec_dumped());
  EXPECT_TRUE(flightrec_dump("test: injected failure"));
  EXPECT_TRUE(flightrec_dumped());
  // First dump wins: a second trigger in the same process is a no-op, so
  // the file describes the original failure, not the teardown cascade.
  EXPECT_FALSE(flightrec_dump("test: cascade"));

  const std::string resolved =
      std::string(::testing::TempDir()) + "/flightrec_3.json";
  std::FILE* f = std::fopen(resolved.c_str(), "r");
  ASSERT_NE(f, nullptr) << "expected dump at " << resolved;
  std::string doc_text;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) doc_text.append(buf, got);
  std::fclose(f);
  std::remove(resolved.c_str());

  const json::Value doc = parse_ok(doc_text);
  EXPECT_EQ(doc.at("schema").as_string(), "parda.flightrec.v1");
  EXPECT_EQ(doc.at("reason").as_string(), "test: injected failure");
  EXPECT_EQ(doc.at("process").as_i64(), 3);
  EXPECT_GT(doc.at("unix_ns").as_i64(), 0);
  EXPECT_EQ(doc.at("context").at("transport").as_string(), "tcp(np=2)");
  EXPECT_EQ(doc.at("context").at("abort.origin").as_string(), "1");

  bool abort_line = false;
  for (const json::Value& line : doc.at("log_tail").array) {
    if (line.at("event").as_string() == "comm.abort") abort_line = true;
  }
  EXPECT_TRUE(abort_line) << "log tail missed the abort-origin line";

  bool analyze_span = false;
  for (const json::Value& span : doc.at("spans").array) {
    if (span.at("op").as_string() == "analyze" &&
        span.at("rank").as_i64() == 1) {
      analyze_span = true;
    }
  }
  EXPECT_TRUE(analyze_span);
  EXPECT_EQ(doc.at("metrics").at("schema").as_string(), "parda.metrics.v1");

  flightrec_reset_for_test();
  tracer().clear();
}

// ---------------------------------------------------------------------------
// Acceptance: a fault-injected delay on one rank is named as the straggler.
// ---------------------------------------------------------------------------

TEST(SpanReportIntegration, InjectedDelayNamesTheDelayedRank) {
  ScopedEnable on;
  tracer().clear();

  // Delay rank 2's first recv by 80ms — long against a small-trace phase.
  const comm::FaultPlan plan =
      comm::FaultPlan::parse("rank=2,op=recv,n=0,action=delay,ms=80");

  ZipfWorkload w(500, 0.9, 33);
  const auto trace = generate_trace(w, 8000);
  PardaOptions options;
  options.num_procs = 4;
  options.chunk_words = 1024;
  options.run_options.fault_plan = &plan;
  // The fault-injection sweep (scripts/run_fault_injection.sh) reruns
  // attribution per wire: straggler naming is span math above the comm
  // layer and must not depend on the transport moving the bytes.
  if (const char* wire = std::getenv("PARDA_FAULT_TRANSPORT")) {
    if (*wire != '\0') {
      options.run_options.transport = comm::TransportSpec::parse(wire);
    }
  }

  core::PardaRuntime runtime;
  auto session = runtime.session(options);
  TracePipe pipe(trace.size() + 1);
  pipe.write(std::vector<Addr>(trace));
  pipe.close();
  session.analyze_stream(pipe);

  const SpanReport report = SpanReport::from_tracer(tracer());
  ASSERT_FALSE(report.phases().empty());
  // The injected sleep happens on rank 2's own thread (before it blocks),
  // so it shows up as SELF time there and as WAIT time on its peers.
  EXPECT_EQ(report.straggler_rank(), 2)
      << "attribution table:\n"
      << report.to_table();
}

}  // namespace
}  // namespace parda::obs
