#include <gtest/gtest.h>

#include <vector>

#include "hist/histogram.hpp"
#include "hist/mrc.hpp"
#include "util/json.hpp"
#include "util/prng.hpp"
#include "util/types.hpp"

namespace parda {
namespace {

TEST(HistogramJsonTest, RoundTripPreservesEveryBucket) {
  Histogram h;
  h.record(0, 3);
  h.record(7, 2);
  h.record(1u << 20, 1);  // sparse far bucket
  h.record(kInfiniteDistance, 5);

  const std::string text = h.to_json();
  const Histogram back = Histogram::from_json(text);
  EXPECT_TRUE(back == h);
  EXPECT_EQ(back.total(), h.total());
  EXPECT_EQ(back.infinities(), 5u);
  EXPECT_EQ(back.at(1u << 20), 1u);

  // The interchange document itself: schema-tagged, sparse finite pairs.
  const json::Value doc = json::parse(text);
  EXPECT_EQ(doc.at("schema").as_string(), "parda.histogram.v1");
  EXPECT_EQ(doc.at("total").as_u64(), h.total());
  EXPECT_EQ(doc.at("infinities").as_u64(), 5u);
  EXPECT_EQ(doc.at("finite").array.size(), 3u);  // only occupied buckets
}

TEST(HistogramJsonTest, EmptyHistogramRoundTrips) {
  const Histogram empty;
  const Histogram back = Histogram::from_json(empty.to_json());
  EXPECT_TRUE(back == empty);
  EXPECT_EQ(back.total(), 0u);
}

TEST(HistogramJsonTest, RejectsMalformedAndMismatchedDocuments) {
  EXPECT_THROW(Histogram::from_json("not json"), json::JsonError);
  EXPECT_THROW(Histogram::from_json("{}"), json::JsonError);
  // Wrong schema tag.
  EXPECT_THROW(
      Histogram::from_json(
          R"({"schema":"parda.metrics.v1","total":0,"infinities":0,"finite":[]})"),
      json::JsonError);
  // Total inconsistent with the buckets: corruption must not pass silently.
  EXPECT_THROW(
      Histogram::from_json(
          R"({"schema":"parda.histogram.v1","total":9,"infinities":1,"finite":[[2,3]]})"),
      json::JsonError);
}

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.infinities(), 0u);
  EXPECT_EQ(h.at(0), 0u);
  EXPECT_EQ(h.max_distance(), 0u);
  EXPECT_EQ(h.hits_below(1000), 0u);
}

TEST(HistogramTest, RecordFiniteAndInfinite) {
  Histogram h;
  h.record(0);
  h.record(0);
  h.record(5);
  h.record(kInfiniteDistance);
  EXPECT_EQ(h.at(0), 2u);
  EXPECT_EQ(h.at(5), 1u);
  EXPECT_EQ(h.at(3), 0u);
  EXPECT_EQ(h.infinities(), 1u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.finite_total(), 3u);
  EXPECT_EQ(h.max_distance(), 5u);
}

TEST(HistogramTest, RecordWithCount) {
  Histogram h;
  h.record(7, 10);
  h.record(kInfiniteDistance, 3);
  h.record(7, 0);  // no-op
  EXPECT_EQ(h.at(7), 10u);
  EXPECT_EQ(h.infinities(), 3u);
  EXPECT_EQ(h.total(), 13u);
}

TEST(HistogramTest, HitsBelow) {
  Histogram h;
  h.record(0, 4);
  h.record(1, 3);
  h.record(10, 2);
  h.record(kInfiniteDistance, 5);
  EXPECT_EQ(h.hits_below(0), 0u);
  EXPECT_EQ(h.hits_below(1), 4u);
  EXPECT_EQ(h.hits_below(2), 7u);
  EXPECT_EQ(h.hits_below(10), 7u);
  EXPECT_EQ(h.hits_below(11), 9u);
  EXPECT_EQ(h.hits_below(1 << 20), 9u);
}

TEST(HistogramTest, MergeAddsElementwise) {
  Histogram a;
  a.record(1, 2);
  a.record(kInfiniteDistance);
  Histogram b;
  b.record(1, 3);
  b.record(100, 1);
  a.merge(b);
  EXPECT_EQ(a.at(1), 5u);
  EXPECT_EQ(a.at(100), 1u);
  EXPECT_EQ(a.infinities(), 1u);
  EXPECT_EQ(a.total(), 7u);
}

TEST(HistogramTest, MergeIntoEmpty) {
  Histogram a;
  Histogram b;
  b.record(3, 7);
  a.merge(b);
  EXPECT_TRUE(a == b);
}

TEST(HistogramTest, EqualityIgnoresTrailingZeros) {
  Histogram a;
  a.record(1);
  a.record(1000);  // grows the dense array
  Histogram b;
  b.record(1000);
  b.record(1);
  EXPECT_TRUE(a == b);
  b.record(2);
  EXPECT_FALSE(a == b);
}

TEST(HistogramTest, SerializationRoundTrip) {
  Histogram h;
  h.record(0, 3);
  h.record(17, 2);
  h.record(kInfiniteDistance, 9);
  const Histogram back = Histogram::from_words(h.to_words());
  EXPECT_TRUE(h == back);
  EXPECT_EQ(back.infinities(), 9u);
  EXPECT_EQ(back.at(17), 2u);
}

TEST(HistogramTest, SerializationOfEmpty) {
  Histogram h;
  const Histogram back = Histogram::from_words(h.to_words());
  EXPECT_TRUE(h == back);
  EXPECT_EQ(back.total(), 0u);
}

TEST(HistogramTest, Log2Buckets) {
  Histogram h;
  h.record(0, 1);   // bucket 0
  h.record(1, 2);   // bucket 1: [1, 2)
  h.record(2, 4);   // bucket 2: [2, 4)
  h.record(3, 8);   // bucket 2
  h.record(4, 16);  // bucket 3: [4, 8)
  h.record(kInfiniteDistance, 100);
  const auto buckets = h.log2_buckets();
  ASSERT_GE(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 2u);
  EXPECT_EQ(buckets[2], 12u);
  EXPECT_EQ(buckets[3], 16u);
}

Histogram random_histogram(Xoshiro256& rng) {
  Histogram h;
  const int bins = static_cast<int>(rng.below(8));
  for (int b = 0; b < bins; ++b) {
    h.record(rng.below(1 << 12), 1 + rng.below(100));
  }
  h.record(kInfiniteDistance, rng.below(10));
  return h;
}

TEST(HistogramTest, MergeIsCommutativeAndAssociative) {
  Xoshiro256 rng(55);
  for (int round = 0; round < 50; ++round) {
    const Histogram a = random_histogram(rng);
    const Histogram b = random_histogram(rng);
    const Histogram c = random_histogram(rng);

    Histogram ab = a;
    ab.merge(b);
    Histogram ba = b;
    ba.merge(a);
    EXPECT_TRUE(ab == ba);

    Histogram ab_c = ab;
    ab_c.merge(c);
    Histogram bc = b;
    bc.merge(c);
    Histogram a_bc = a;
    a_bc.merge(bc);
    EXPECT_TRUE(ab_c == a_bc);

    // Totals are additive.
    EXPECT_EQ(ab.total(), a.total() + b.total());
    EXPECT_EQ(ab.infinities(), a.infinities() + b.infinities());
  }
}

TEST(HistogramTest, SerializationRoundTripFuzz) {
  Xoshiro256 rng(77);
  for (int round = 0; round < 50; ++round) {
    const Histogram h = random_histogram(rng);
    EXPECT_TRUE(Histogram::from_words(h.to_words()) == h);
  }
}

TEST(HistogramTest, MergeIdentity) {
  Xoshiro256 rng(99);
  const Histogram h = random_histogram(rng);
  Histogram merged = h;
  merged.merge(Histogram{});
  EXPECT_TRUE(merged == h);
  Histogram other;
  other.merge(h);
  EXPECT_TRUE(other == h);
}

TEST(HistogramTest, MeanFiniteDistance) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.mean_finite_distance(), 0.0);
  h.record(2, 3);
  h.record(10, 1);
  h.record(kInfiniteDistance, 100);  // excluded
  EXPECT_DOUBLE_EQ(h.mean_finite_distance(), 16.0 / 4.0);
}

TEST(HistogramTest, FiniteDistancePercentile) {
  Histogram h;
  EXPECT_EQ(h.finite_distance_percentile(0.5), 0u);
  h.record(1, 50);
  h.record(8, 40);
  h.record(100, 10);
  h.record(kInfiniteDistance, 999);
  EXPECT_EQ(h.finite_distance_percentile(0.25), 1u);
  EXPECT_EQ(h.finite_distance_percentile(0.5), 1u);
  EXPECT_EQ(h.finite_distance_percentile(0.75), 8u);
  EXPECT_EQ(h.finite_distance_percentile(1.0), 100u);
}

TEST(MrcTest, MissRatioBasics) {
  Histogram h;
  h.record(0, 50);
  h.record(10, 30);
  h.record(kInfiniteDistance, 20);
  EXPECT_DOUBLE_EQ(miss_ratio(h, 1), 0.5);    // only d=0 hits
  EXPECT_DOUBLE_EQ(miss_ratio(h, 11), 0.2);   // all finite hit
  EXPECT_DOUBLE_EQ(miss_ratio(h, 5), 0.5);    // d=10 still misses
  EXPECT_EQ(miss_count(h, 11), 20u);
  EXPECT_DOUBLE_EQ(miss_ratio(Histogram{}, 4), 0.0);
}

TEST(MrcTest, CurveIsMonotonicallyNonIncreasing) {
  Histogram h;
  for (Distance d = 0; d < 100; ++d) h.record(d, 100 - d);
  h.record(kInfiniteDistance, 13);
  const auto curve =
      miss_ratio_curve(h, {1, 2, 4, 8, 16, 32, 64, 128, 256});
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i].miss_ratio, curve[i - 1].miss_ratio);
  }
  EXPECT_NEAR(curve.back().miss_ratio,
              13.0 / static_cast<double>(h.total()), 1e-12);
}

TEST(MrcTest, Pow2CurveStopsAtCompulsoryFloor) {
  Histogram h;
  h.record(1, 10);
  h.record(kInfiniteDistance, 10);
  const auto curve = miss_ratio_curve_pow2(h, 1 << 20);
  ASSERT_FALSE(curve.empty());
  EXPECT_DOUBLE_EQ(curve.back().miss_ratio, 0.5);
  EXPECT_LT(curve.back().cache_size, 1u << 20);
}

TEST(MrcTest, CacheSizeForMissRatio) {
  Histogram h;
  h.record(0, 25);
  h.record(4, 25);
  h.record(16, 25);
  h.record(kInfiniteDistance, 25);
  // miss ratio: C<=0:1.0, 1..4:0.75, 5..16:0.5, >16:0.25
  EXPECT_EQ(cache_size_for_miss_ratio(h, 0.75, 1000), 1u);
  EXPECT_EQ(cache_size_for_miss_ratio(h, 0.5, 1000), 5u);
  EXPECT_EQ(cache_size_for_miss_ratio(h, 0.25, 1000), 17u);
  EXPECT_EQ(cache_size_for_miss_ratio(h, 0.1, 1000), 1001u);  // unattainable
}

}  // namespace
}  // namespace parda
