#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "hist/report.hpp"
#include "util/types.hpp"

namespace parda {
namespace {

TEST(ReportTest, HistogramCsvBasic) {
  Histogram h;
  h.record(0, 3);
  h.record(7, 2);
  h.record(kInfiniteDistance, 5);
  EXPECT_EQ(histogram_to_csv(h),
            "distance,count\n0,3\n7,2\ninf,5\n");
}

TEST(ReportTest, HistogramCsvEmptyHasHeaderAndInf) {
  EXPECT_EQ(histogram_to_csv(Histogram{}), "distance,count\ninf,0\n");
}

TEST(ReportTest, Log2Csv) {
  Histogram h;
  h.record(0, 1);
  h.record(3, 4);
  const std::string csv = histogram_to_csv_log2(h);
  EXPECT_EQ(csv, "bucket_low,bucket_high,count\n0,0,1\n2,3,4\n");
}

TEST(ReportTest, MrcCsv) {
  const std::vector<MrcPoint> curve{{1, 1.0}, {1024, 0.25}};
  EXPECT_EQ(mrc_to_csv(curve),
            "cache_size,miss_ratio\n1,1.000000\n1024,0.250000\n");
}

TEST(ReportTest, WriteTextFileRoundTrip) {
  const std::string path =
      std::string(::testing::TempDir()) + "/report_test.csv";
  write_text_file(path, "hello,world\n1,2\n");
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  EXPECT_EQ(std::string(buf, n), "hello,world\n1,2\n");
  std::remove(path.c_str());
}

TEST(ReportTest, WriteTextFileFailsOnBadPath) {
  EXPECT_THROW(write_text_file("/nonexistent-dir/x/y.csv", "data"),
               std::runtime_error);
}

}  // namespace
}  // namespace parda
