// Typed tests run every order-statistic engine against the same contract,
// plus randomized cross-checks against the sorted-vector oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "tree/avl_tree.hpp"
#include "tree/order_stat_tree.hpp"
#include "tree/splay_tree.hpp"
#include "tree/treap.hpp"
#include "tree/vector_tree.hpp"
#include "util/prng.hpp"

namespace parda {
namespace {

template <typename T>
class OrderStatTreeTest : public ::testing::Test {
 protected:
  T tree_;
};

using Engines = ::testing::Types<SplayTree, AvlTree, Treap, VectorTree>;
TYPED_TEST_SUITE(OrderStatTreeTest, Engines);

TYPED_TEST(OrderStatTreeTest, EmptyTree) {
  EXPECT_EQ(this->tree_.size(), 0u);
  EXPECT_TRUE(this->tree_.empty());
  EXPECT_EQ(this->tree_.count_greater(0), 0u);
  EXPECT_EQ(this->tree_.count_greater(100), 0u);
  EXPECT_FALSE(this->tree_.erase(5));
  EXPECT_TRUE(this->tree_.validate());
}

TYPED_TEST(OrderStatTreeTest, SingleElement) {
  this->tree_.insert(10, 0xAA);
  EXPECT_EQ(this->tree_.size(), 1u);
  EXPECT_EQ(this->tree_.count_greater(9), 1u);
  EXPECT_EQ(this->tree_.count_greater(10), 0u);
  EXPECT_EQ(this->tree_.count_greater(11), 0u);
  EXPECT_EQ(this->tree_.oldest(), (TreeEntry{10, 0xAA}));
  EXPECT_TRUE(this->tree_.validate());
  EXPECT_TRUE(this->tree_.erase(10));
  EXPECT_TRUE(this->tree_.empty());
}

TYPED_TEST(OrderStatTreeTest, CountGreaterOnAbsentKeys) {
  for (Timestamp ts : {10, 20, 30, 40, 50}) this->tree_.insert(ts, ts);
  EXPECT_EQ(this->tree_.count_greater(0), 5u);
  EXPECT_EQ(this->tree_.count_greater(10), 4u);
  EXPECT_EQ(this->tree_.count_greater(15), 4u);  // between keys
  EXPECT_EQ(this->tree_.count_greater(25), 3u);
  EXPECT_EQ(this->tree_.count_greater(45), 1u);
  EXPECT_EQ(this->tree_.count_greater(50), 0u);
  EXPECT_EQ(this->tree_.count_greater(99), 0u);
  EXPECT_TRUE(this->tree_.validate());
}

TYPED_TEST(OrderStatTreeTest, AscendingInsertion) {
  for (Timestamp ts = 0; ts < 1000; ++ts) this->tree_.insert(ts, ts * 2);
  EXPECT_EQ(this->tree_.size(), 1000u);
  EXPECT_TRUE(this->tree_.validate());
  for (Timestamp ts = 0; ts < 1000; ts += 37) {
    EXPECT_EQ(this->tree_.count_greater(ts), 999u - ts);
  }
}

TYPED_TEST(OrderStatTreeTest, DescendingInsertion) {
  for (Timestamp ts = 1000; ts-- > 0;) this->tree_.insert(ts, ts);
  EXPECT_EQ(this->tree_.size(), 1000u);
  EXPECT_TRUE(this->tree_.validate());
  EXPECT_EQ(this->tree_.count_greater(499), 500u);
}

TYPED_TEST(OrderStatTreeTest, OldestAndPopOldest) {
  Xoshiro256 rng(99);
  std::vector<Timestamp> keys;
  for (int i = 0; i < 300; ++i) {
    const Timestamp ts = rng() >> 16;
    if (std::find(keys.begin(), keys.end(), ts) != keys.end()) continue;
    keys.push_back(ts);
    this->tree_.insert(ts, ts + 1);
  }
  std::sort(keys.begin(), keys.end());
  for (Timestamp expected : keys) {
    EXPECT_EQ(this->tree_.oldest().ts, expected);
    const TreeEntry popped = this->tree_.pop_oldest();
    EXPECT_EQ(popped.ts, expected);
    EXPECT_EQ(popped.addr, expected + 1);
  }
  EXPECT_TRUE(this->tree_.empty());
  EXPECT_TRUE(this->tree_.validate());
}

TYPED_TEST(OrderStatTreeTest, ForEachIsInOrder) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 500; ++i) {
    this->tree_.insert(mix64(static_cast<std::uint64_t>(i)) >> 8,
                       static_cast<Addr>(i));
  }
  std::vector<Timestamp> visited;
  this->tree_.for_each([&](TreeEntry e) { visited.push_back(e.ts); });
  EXPECT_EQ(visited.size(), 500u);
  EXPECT_TRUE(std::is_sorted(visited.begin(), visited.end()));
}

TYPED_TEST(OrderStatTreeTest, ClearResets) {
  for (Timestamp ts = 0; ts < 50; ++ts) this->tree_.insert(ts, ts);
  this->tree_.clear();
  EXPECT_TRUE(this->tree_.empty());
  EXPECT_EQ(this->tree_.count_greater(0), 0u);
  this->tree_.insert(3, 3);
  EXPECT_EQ(this->tree_.size(), 1u);
  EXPECT_TRUE(this->tree_.validate());
}

TYPED_TEST(OrderStatTreeTest, EraseMiddleKeepsWeights) {
  for (Timestamp ts = 0; ts < 100; ++ts) this->tree_.insert(ts, ts);
  for (Timestamp ts = 10; ts < 60; ts += 2) {
    EXPECT_TRUE(this->tree_.erase(ts));
  }
  EXPECT_TRUE(this->tree_.validate());
  // 94 keys exceeded 5 originally; 25 of them (10, 12, ..., 58) were erased.
  EXPECT_EQ(this->tree_.count_greater(5), 69u);
  EXPECT_EQ(this->tree_.size(), 75u);
}

TYPED_TEST(OrderStatTreeTest, RandomizedAgainstOracle) {
  TypeParam tree;
  VectorTree oracle;
  Xoshiro256 rng(31337);
  std::vector<Timestamp> live;
  for (int step = 0; step < 30000; ++step) {
    const int op = static_cast<int>(rng.below(10));
    if (op < 5 || live.empty()) {
      // Insert a fresh timestamp.
      Timestamp ts = rng() >> 20;
      while (std::find(live.begin(), live.end(), ts) != live.end()) ++ts;
      tree.insert(ts, ts ^ 0xF00D);
      oracle.insert(ts, ts ^ 0xF00D);
      live.push_back(ts);
    } else if (op < 8) {
      const std::size_t pick = rng.below(live.size());
      const Timestamp ts = live[pick];
      EXPECT_TRUE(tree.erase(ts));
      EXPECT_TRUE(oracle.erase(ts));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      const Timestamp probe = rng() >> 20;
      EXPECT_EQ(tree.count_greater(probe), oracle.count_greater(probe));
    }
    EXPECT_EQ(tree.size(), oracle.size());
  }
  EXPECT_TRUE(tree.validate());
  // Final full sweep comparison.
  std::vector<TreeEntry> a;
  std::vector<TreeEntry> b;
  tree.for_each([&](TreeEntry e) { a.push_back(e); });
  oracle.for_each([&](TreeEntry e) { b.push_back(e); });
  EXPECT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
    EXPECT_EQ(a[i], b[i]);
  }
}

TYPED_TEST(OrderStatTreeTest, PopOldestInterleavedWithInserts) {
  // Simulates bounded-analysis LRU churn: insert ascending, evict oldest.
  for (Timestamp ts = 0; ts < 2000; ++ts) {
    this->tree_.insert(ts, ts);
    if (this->tree_.size() > 64) {
      const TreeEntry victim = this->tree_.pop_oldest();
      EXPECT_EQ(victim.ts, ts - 64);
    }
  }
  EXPECT_EQ(this->tree_.size(), 64u);
  EXPECT_TRUE(this->tree_.validate());
}

TEST(AvlTreeTest, HeightStaysLogarithmic) {
  AvlTree tree;
  for (Timestamp ts = 0; ts < (1 << 15); ++ts) tree.insert(ts, ts);
  // AVL height <= 1.44 log2(n); for n = 32768, that is ~22.
  EXPECT_LE(tree.height(), 23);
}

TEST(SplayTreeTest, WorksAfterWorstCasePattern) {
  // Ascending inserts make a splay tree a left path; make sure deep
  // operations still work (for_each and validate must not recurse).
  SplayTree tree;
  for (Timestamp ts = 0; ts < 200000; ++ts) tree.insert(ts, ts);
  EXPECT_TRUE(tree.validate());
  EXPECT_EQ(tree.count_greater(0), 199999u);
  EXPECT_EQ(tree.size(), 200000u);
}

}  // namespace
}  // namespace parda
