#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "seq/interval_analyzer.hpp"
#include "seq/olken.hpp"
#include "tree/interval_set.hpp"
#include "util/prng.hpp"
#include "workload/generators.hpp"

namespace parda {
namespace {

TEST(IntervalSetTest, EmptySet) {
  IntervalSet set;
  EXPECT_EQ(set.size(), 0u);
  EXPECT_EQ(set.count_in(0, 100), 0u);
  EXPECT_FALSE(set.contains(5));
  EXPECT_TRUE(set.validate());
}

TEST(IntervalSetTest, SinglePoint) {
  IntervalSet set;
  set.insert(10);
  EXPECT_TRUE(set.contains(10));
  EXPECT_FALSE(set.contains(9));
  EXPECT_FALSE(set.contains(11));
  EXPECT_EQ(set.size(), 1u);
  EXPECT_EQ(set.count_in(0, 100), 1u);
  EXPECT_EQ(set.count_in(10, 10), 1u);
  EXPECT_EQ(set.count_in(11, 20), 0u);
  EXPECT_TRUE(set.validate());
}

TEST(IntervalSetTest, AdjacentPointsMerge) {
  IntervalSet set;
  set.insert(5);
  set.insert(7);
  EXPECT_EQ(set.interval_count(), 2u);
  set.insert(6);  // bridges
  EXPECT_EQ(set.interval_count(), 1u);
  EXPECT_EQ(set.intervals()[0], (IntervalSet::Interval{5, 7}));
  EXPECT_EQ(set.size(), 3u);
  EXPECT_TRUE(set.validate());
}

TEST(IntervalSetTest, GrowLeftAndRight) {
  IntervalSet set;
  set.insert(10);
  set.insert(11);  // extend right
  EXPECT_EQ(set.interval_count(), 1u);
  set.insert(9);  // extend left
  EXPECT_EQ(set.interval_count(), 1u);
  EXPECT_EQ(set.intervals()[0], (IntervalSet::Interval{9, 11}));
  EXPECT_TRUE(set.validate());
}

TEST(IntervalSetTest, SequentialInsertStaysOneInterval) {
  IntervalSet set;
  for (std::uint64_t p = 0; p < 10000; ++p) set.insert(p);
  EXPECT_EQ(set.interval_count(), 1u);
  EXPECT_EQ(set.size(), 10000u);
  EXPECT_EQ(set.count_in(100, 199), 100u);
  EXPECT_TRUE(set.validate());
}

TEST(IntervalSetTest, ExtremeBounds) {
  IntervalSet set;
  set.insert(0);
  set.insert(~0ULL);
  EXPECT_EQ(set.count_in(0, ~0ULL), 2u);
  EXPECT_EQ(set.count_in(1, ~0ULL - 1), 0u);
  EXPECT_TRUE(set.validate());
}

TEST(IntervalSetTest, RandomizedAgainstStdSet) {
  IntervalSet set;
  std::set<std::uint64_t> ref;
  Xoshiro256 rng(77);
  for (int step = 0; step < 5000; ++step) {
    const bool can_insert = ref.size() < 2000;
    if (can_insert && (rng.below(2) == 0 || ref.empty())) {
      std::uint64_t p = rng.below(2000);
      while (ref.count(p) != 0) p = rng.below(2000);
      set.insert(p);
      ref.insert(p);
    } else {
      std::uint64_t lo = rng.below(2100);
      std::uint64_t hi = rng.below(2100);
      if (lo > hi) std::swap(lo, hi);
      std::uint64_t expected = 0;
      for (auto it = ref.lower_bound(lo);
           it != ref.end() && *it <= hi; ++it) {
        ++expected;
      }
      ASSERT_EQ(set.count_in(lo, hi), expected)
          << "[" << lo << "," << hi << "] step " << step;
    }
    if (ref.size() == 2000) break;  // key space exhausted
  }
  EXPECT_EQ(set.size(), ref.size());
  EXPECT_TRUE(set.validate());
}

TEST(IntervalAnalyzerTest, Table1Example) {
  const std::vector<Addr> trace{'d', 'a', 'c', 'b', 'c',
                                'c', 'g', 'e', 'f', 'a'};
  IntervalAnalyzer analyzer;
  std::vector<Distance> d;
  for (Addr a : trace) d.push_back(analyzer.access(a));
  EXPECT_EQ(d[4], 1u);
  EXPECT_EQ(d[5], 0u);
  EXPECT_EQ(d[9], 5u);
  EXPECT_EQ(analyzer.footprint(), 7u);
}

TEST(IntervalAnalyzerTest, MatchesOlkenOnWorkloads) {
  for (std::uint64_t seed : {2u, 9u}) {
    ZipfWorkload w(400, 0.9, seed);
    const auto trace = generate_trace(w, 6000);
    EXPECT_TRUE(interval_analysis(trace) == olken_analysis(trace)) << seed;
  }
  SequentialWorkload seq(128);
  const auto strace = generate_trace(seq, 4000);
  EXPECT_TRUE(interval_analysis(strace) == olken_analysis(strace));
}

TEST(IntervalAnalyzerTest, SequentialTraceCompressesHoles) {
  // Cyclic sweeps kill addresses in order: holes coalesce into very few
  // intervals — the compression the paper's reference [1] exploits.
  SequentialWorkload w(256);
  const auto trace = generate_trace(w, 10000);
  IntervalAnalyzer analyzer;
  for (Addr a : trace) analyzer.access(a);
  EXPECT_LE(analyzer.hole_intervals(), 4u);
  EXPECT_EQ(analyzer.footprint(), 256u);
}

}  // namespace
}  // namespace parda
