#include <gtest/gtest.h>

#include <vector>

#include "tree/fenwick.hpp"
#include "util/prng.hpp"

namespace parda {
namespace {

TEST(FenwickTest, EmptyAndZeroSized) {
  FenwickTree zero(0);
  EXPECT_EQ(zero.size(), 0u);
  EXPECT_EQ(zero.total(), 0);

  FenwickTree t(10);
  EXPECT_EQ(t.size(), 10u);
  EXPECT_EQ(t.total(), 0);
  EXPECT_EQ(t.prefix_sum(9), 0);
}

TEST(FenwickTest, SingleUpdates) {
  FenwickTree t(8);
  t.add(3, 5);
  EXPECT_EQ(t.prefix_sum(2), 0);
  EXPECT_EQ(t.prefix_sum(3), 5);
  EXPECT_EQ(t.prefix_sum(7), 5);
  t.add(0, 2);
  EXPECT_EQ(t.prefix_sum(0), 2);
  EXPECT_EQ(t.total(), 7);
}

TEST(FenwickTest, NegativeDeltas) {
  FenwickTree t(4);
  t.add(1, 10);
  t.add(1, -4);
  EXPECT_EQ(t.prefix_sum(1), 6);
  t.add(1, -6);
  EXPECT_EQ(t.total(), 0);
}

TEST(FenwickTest, RangeSum) {
  FenwickTree t(16);
  for (std::size_t i = 0; i < 16; ++i) {
    t.add(i, static_cast<std::int64_t>(i));
  }
  EXPECT_EQ(t.range_sum(0, 15), 120);
  EXPECT_EQ(t.range_sum(5, 5), 5);
  EXPECT_EQ(t.range_sum(3, 6), 3 + 4 + 5 + 6);
  EXPECT_EQ(t.range_sum(7, 3), 0);  // empty range
}

TEST(FenwickTest, ClearResets) {
  FenwickTree t(8);
  t.add(2, 9);
  t.clear();
  EXPECT_EQ(t.total(), 0);
  t.add(2, 1);
  EXPECT_EQ(t.prefix_sum(7), 1);
}

TEST(FenwickTest, RandomizedAgainstVector) {
  const std::size_t n = 257;
  FenwickTree t(n);
  std::vector<std::int64_t> ref(n, 0);
  Xoshiro256 rng(5);
  for (int step = 0; step < 20000; ++step) {
    if (rng.below(2) == 0) {
      const std::size_t i = rng.below(n);
      const auto delta = static_cast<std::int64_t>(rng.below(21)) - 10;
      t.add(i, delta);
      ref[i] += delta;
    } else {
      std::size_t lo = rng.below(n);
      std::size_t hi = rng.below(n);
      if (lo > hi) std::swap(lo, hi);
      std::int64_t expected = 0;
      for (std::size_t i = lo; i <= hi; ++i) expected += ref[i];
      EXPECT_EQ(t.range_sum(lo, hi), expected);
    }
  }
}

}  // namespace
}  // namespace parda
