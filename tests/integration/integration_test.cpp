// Cross-module integration tests: the full Figure 3 pipeline (instrumented
// program -> pipe -> parallel online analysis -> histogram -> MRC -> cache
// validation), plus end-to-end consistency checks across every layer.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/miss_rate.hpp"
#include "cachesim/lru_cache.hpp"
#include "core/parda.hpp"
#include "obs/obs.hpp"
#include "hist/mrc.hpp"
#include "seq/naive.hpp"
#include "seq/olken.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_pipe.hpp"
#include "util/json.hpp"
#include "vm/machine.hpp"
#include "vm/programs.hpp"
#include "workload/generators.hpp"
#include "workload/spec.hpp"

namespace parda {
namespace {

TEST(Figure3Pipeline, VmProgramThroughPipeToParallelAnalysis) {
  // The paper's framework: the instrumented program streams addresses into
  // a pipe; rank 0 scatters; the merged histogram equals offline analysis
  // of the same program's trace.
  const vm::Program program = vm::matmul(12);
  const std::vector<Addr> offline = vm::trace_program(program);
  const Histogram expected = olken_analysis(offline);

  TracePipe pipe(1 << 12);
  std::thread producer([&] {
    vm::Machine machine(program);
    std::vector<Addr> block;
    block.reserve(256);
    machine.run([&](Addr a) {
      block.push_back(a);
      if (block.size() == 256) {
        pipe.write(std::move(block));
        block.clear();
        block.reserve(256);
      }
    });
    pipe.write(std::move(block));
    pipe.close();
  });

  PardaOptions options;
  options.num_procs = 4;
  options.chunk_words = 500;
  const PardaResult result = parda_analyze_stream(pipe, options);
  producer.join();

  EXPECT_TRUE(result.hist == expected);
  EXPECT_EQ(result.hist.total(), offline.size());
}

TEST(Figure3Pipeline, BoundedOnlineAnalysisOfListChase) {
  const vm::Program program = vm::list_chase(600, 4);
  const std::vector<Addr> offline = vm::trace_program(program);

  TracePipe pipe(1024);
  std::thread producer([&] {
    vm::Machine machine(program);
    std::vector<Addr> block;
    machine.run([&](Addr a) {
      block.push_back(a);
      if (block.size() == 128) {
        pipe.write(std::move(block));
        block = {};
      }
    });
    pipe.write(std::move(block));
    pipe.close();
  });

  PardaOptions options;
  options.num_procs = 3;
  options.chunk_words = 200;
  options.bound = 256;  // below the 600-node footprint: everything misses
  const PardaResult result = parda_analyze_stream(pipe, options);
  producer.join();

  // Every round-to-round reuse spans 599 distinct elements >= bound 256.
  EXPECT_EQ(result.hist.infinities(), offline.size());
  EXPECT_EQ(result.hist.finite_total(), 0u);
}

TEST(EndToEnd, AllEnginesAgreeOnSpecWorkload) {
  auto w = make_spec_workload("sphinx3", 400000, 17);
  const auto trace = generate_trace(*w, 6000);
  const Histogram naive = naive_stack_analysis(trace);
  const Histogram olken = olken_analysis(trace);
  PardaOptions options;
  options.num_procs = 4;
  const Histogram parda = parda_analyze(trace, options).hist;
  EXPECT_TRUE(naive == olken);
  EXPECT_TRUE(olken == parda);
}

TEST(EndToEnd, HistogramPredictsEveryCacheSize) {
  auto w = make_spec_workload("gobmk", 400000, 23);
  const auto trace = generate_trace(*w, 12000);
  PardaOptions options;
  options.num_procs = 2;
  const Histogram hist = parda_analyze(trace, options).hist;
  for (std::uint64_t c = 1; c <= 256; c *= 4) {
    LruCache cache(c);
    for (Addr a : trace) cache.access(a);
    EXPECT_EQ(cache.misses(), miss_count(hist, c)) << "C=" << c;
  }
}

TEST(EndToEnd, TraceFileRoundTripPreservesAnalysis) {
  auto w = make_spec_workload("bzip2", 400000, 29);
  const auto trace = generate_trace(*w, 5000);
  const std::string path =
      std::string(::testing::TempDir()) + "/bzip2_e2e.trc";
  write_trace_binary(path, trace);
  const auto loaded = read_trace_binary(path);
  EXPECT_TRUE(olken_analysis(trace) == olken_analysis(loaded));
  std::remove(path.c_str());
}

TEST(EndToEnd, BoundedPardaSufficesForBoundedCaches) {
  // Section V's premise: for predicting caches up to B, the bounded
  // analysis loses nothing.
  auto w = make_spec_workload("milc", 400000, 31);
  const auto trace = generate_trace(*w, 10000);
  const std::uint64_t bound = 128;
  PardaOptions options;
  options.num_procs = 4;
  options.bound = bound;
  const Histogram bounded = parda_analyze(trace, options).hist;
  for (std::uint64_t c : {1u, 16u, 64u, 128u}) {
    LruCache cache(c);
    for (Addr a : trace) cache.access(a);
    EXPECT_EQ(cache.misses(), miss_count(bounded, c)) << "C=" << c;
  }
}

TEST(EndToEnd, PerRankStatsAreAccounted) {
  const auto trace = generate_trace(
      *make_spec_workload("calculix", 400000, 37), 20000);
  PardaOptions options;
  options.num_procs = 4;
  const PardaResult result = parda_analyze(trace, options);
  // Every rank did some work and sent at least its infinity lists.
  std::uint64_t msgs = 0;
  for (const auto& r : result.stats.ranks) msgs += r.messages_sent;
  EXPECT_GE(msgs, 3u);  // ranks 1..3 each send at least one message
  EXPECT_GT(result.stats.total_busy(), 0.0);
  EXPECT_GE(result.stats.wall_seconds, 0.0);
}

TEST(Observability, StreamingRunEmitsPerPhaseSpansAndAgreeingMetrics) {
  // Algorithm 5 observed from the outside: a 4-rank streaming run must
  // leave behind (a) per-rank spans shaped scatter -> analyze ->
  // infinity-pipeline -> reduce for every phase plus one final-reduce, and
  // (b) a metrics snapshot whose engine counters agree exactly with the
  // analysis result.
  obs::registry().reset_values();
  obs::tracer().clear();
  obs::set_enabled(true);

  constexpr int kRanks = 4;
  constexpr std::size_t kChunk = 512;
  const auto trace =
      generate_trace(*make_spec_workload("mcf", 400000, 11), 7000);

  TracePipe pipe(1 << 12);
  std::thread producer([&] {
    std::vector<Addr> copy = trace;
    pipe.write(std::move(copy));
    pipe.close();
  });
  PardaOptions options;
  options.num_procs = kRanks;
  options.chunk_words = kChunk;
  const PardaResult result = parda_analyze_stream(pipe, options);
  producer.join();
  obs::set_enabled(false);

  // --- Metrics agree with the analysis result and the comm RankStats.
  const obs::Registry& reg = obs::registry();
  EXPECT_EQ(reg.counter_total("engine.chunk_refs"), result.hist.total());
  EXPECT_EQ(reg.counter_total("engine.hits_resolved"),
            result.hist.finite_total());
  std::uint64_t msgs = 0, bytes = 0;
  for (const auto& r : result.stats.ranks) {
    msgs += r.messages_sent;
    bytes += r.bytes_sent;
  }
  EXPECT_EQ(reg.counter_total("comm.sends"), msgs);
  EXPECT_EQ(reg.counter_total("comm.bytes_sent"), bytes);
  EXPECT_GT(msgs, 0u);

  // --- Span structure: phases 0..P-1, the four-stage shape per rank.
  const std::uint64_t refs = trace.size();
  const std::uint32_t phases = static_cast<std::uint32_t>(
      (refs + kRanks * kChunk - 1) / (kRanks * kChunk));
  ASSERT_GE(phases, 3u) << "trace too short to exercise multiple phases";

  for (int rank = 0; rank < kRanks; ++rank) {
    const auto spans = obs::tracer().events_for_rank(rank);
    std::uint64_t final_reduces = 0;
    for (std::uint32_t p = 0; p < phases; ++p) {
      const obs::SpanEvent* scatter = nullptr;
      const obs::SpanEvent* analyze = nullptr;
      const obs::SpanEvent* pipeline = nullptr;
      const obs::SpanEvent* reduce = nullptr;
      for (const auto& e : spans) {
        if (e.phase != p) continue;
        const std::string op = e.op;
        if (op == "scatter") {
          EXPECT_EQ(scatter, nullptr) << "duplicate scatter, phase " << p;
          scatter = &e;
        } else if (op == "analyze") {
          EXPECT_EQ(analyze, nullptr);
          analyze = &e;
        } else if (op == "infinity-pipeline") {
          EXPECT_EQ(pipeline, nullptr);
          pipeline = &e;
        } else if (op == "reduce") {
          EXPECT_EQ(reduce, nullptr);
          reduce = &e;
        }
      }
      ASSERT_NE(scatter, nullptr) << "rank " << rank << " phase " << p;
      ASSERT_NE(analyze, nullptr) << "rank " << rank << " phase " << p;
      ASSERT_NE(pipeline, nullptr) << "rank " << rank << " phase " << p;
      ASSERT_NE(reduce, nullptr) << "rank " << rank << " phase " << p;
      // The four stages run in Algorithm 5 order within the phase.
      EXPECT_LE(scatter->t_start_ns, analyze->t_start_ns);
      EXPECT_LE(analyze->t_end_ns, pipeline->t_end_ns);
      EXPECT_LE(pipeline->t_start_ns, reduce->t_start_ns);
      EXPECT_LE(analyze->t_start_ns, analyze->t_end_ns);
    }
    for (const auto& e : spans) {
      // Beyond the P full phases only the end-of-stream scatter (which
      // reads zero words and terminates the loop) may appear.
      if (e.phase != obs::kNoPhase && e.phase >= phases) {
        EXPECT_STREQ(e.op, "scatter");
        EXPECT_EQ(e.phase, phases);
      }
      if (std::string(e.op) == "final-reduce") {
        EXPECT_EQ(e.phase, obs::kNoPhase);
        ++final_reduces;
      }
    }
    EXPECT_EQ(final_reduces, 1u) << "rank " << rank;
  }

  // The exported chrome trace for the run parses and is non-trivial.
  const std::string chrome = obs::tracer().to_chrome_json();
  EXPECT_GE(json::parse(chrome).at("traceEvents").array.size(),
            static_cast<std::size_t>(phases) * kRanks * 4);

  obs::registry().reset_values();
  obs::tracer().clear();
}

}  // namespace
}  // namespace parda
