// LruChainAnalyzer property tests: the log2 histogram must be bit-identical
// to bucketing an exact engine's output, on every trace family we can throw
// at it — including keys crafted (by inverting mix64) to pile into the same
// AddrMap bucket and stress the robin-hood probe chains.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "seq/bennett_kruskal.hpp"
#include "seq/bounded.hpp"
#include "seq/interval_analyzer.hpp"
#include "seq/lru_chain.hpp"
#include "seq/naive.hpp"
#include "seq/olken.hpp"
#include "tree/splay_tree.hpp"
#include "util/prng.hpp"
#include "workload/generators.hpp"

namespace parda {
namespace {

const std::vector<Addr> kTable1{'d', 'a', 'c', 'b', 'c',
                                'c', 'g', 'e', 'f', 'a'};

std::vector<std::uint64_t> olken_log2(std::span<const Addr> trace) {
  return olken_analysis<SplayTree>(trace).log2_buckets();
}

/// Triangle-wave sweep over K addresses: 0..K-1, K-2..0, 1..K-1, ... —
/// produces reuse distances at every scale up to 2K.
std::vector<Addr> sawtooth_trace(std::uint64_t k, std::size_t n) {
  std::vector<Addr> trace;
  trace.reserve(n);
  std::uint64_t pos = 0;
  std::int64_t dir = 1;
  for (std::size_t i = 0; i < n; ++i) {
    trace.push_back(pos);
    if (pos == k - 1 && dir == 1) dir = -1;
    if (pos == 0 && dir == -1) dir = 1;
    pos = static_cast<std::uint64_t>(static_cast<std::int64_t>(pos) + dir);
  }
  return trace;
}

/// Inverse of mix64 (one splitmix64 round): undo the xorshift-multiply
/// finalizer, then subtract the golden-ratio increment. Lets the test pick
/// hash *outputs* and derive the keys that produce them.
std::uint64_t unmix64(std::uint64_t h) {
  h ^= (h >> 31) ^ (h >> 62);
  h *= 0x319642b2d24d8ec3ULL;  // modular inverse of 0x94d049bb133111eb
  h ^= (h >> 27) ^ (h >> 54);
  h *= 0x96de1b173f119089ULL;  // modular inverse of 0xbf58476d1ce4e5b9
  h ^= (h >> 30) ^ (h >> 60);
  return h - 0x9e3779b97f4a7c15ULL;
}

/// Keys whose mix64 values all share the same low 20 bits, so every one of
/// them lands in the same AddrMap bucket until the table outgrows 2^20
/// slots — worst-case robin-hood probe chains.
std::vector<Addr> adversarial_keys(std::size_t count) {
  std::vector<Addr> keys;
  keys.reserve(count);
  for (std::size_t j = 0; j < count; ++j) {
    const std::uint64_t hash = (static_cast<std::uint64_t>(j) << 20) | 0x5aULL;
    keys.push_back(unmix64(hash));
  }
  return keys;
}

TEST(LruChainTest, UnmixInvertsMix) {
  for (std::uint64_t h : {0ULL, 1ULL, 0x5aULL, 0xdeadbeefULL,
                          0xffffffffffffffffULL, (7ULL << 20) | 0x5aULL}) {
    EXPECT_EQ(mix64(unmix64(h)), h);
  }
}

TEST(LruChainTest, EmptyTrace) {
  const Histogram h = lru_chain_analysis({});
  EXPECT_EQ(h.total(), 0u);
}

TEST(LruChainTest, Table1Buckets) {
  LruChainAnalyzer analyzer;
  const Histogram h = analyze_trace(analyzer, kTable1);
  EXPECT_EQ(h.log2_buckets(), olken_log2(kTable1));
  EXPECT_EQ(h.infinities(), 7u);
  EXPECT_EQ(h.total(), kTable1.size());
  std::string why;
  EXPECT_TRUE(analyzer.check_invariants(&why)) << why;
}

TEST(LruChainTest, AccessReturnsBucketFloor) {
  LruChainAnalyzer a;
  EXPECT_EQ(a.access(1), kInfiniteDistance);
  EXPECT_EQ(a.access(1), 0u);  // distance 0 -> bucket 0, floor 0
  EXPECT_EQ(a.access(2), kInfiniteDistance);
  EXPECT_EQ(a.access(1), 1u);  // distance 1 -> bucket 1, floor 1
  EXPECT_EQ(a.access(3), kInfiniteDistance);
  EXPECT_EQ(a.access(4), kInfiniteDistance);
  EXPECT_EQ(a.access(1), 2u);  // distance 3 -> bucket 2, floor 2
  EXPECT_EQ(a.access(2), 2u);  // distance 3 -> bucket 2, floor 2
}

TEST(LruChainTest, RepeatedSingleAddress) {
  LruChainAnalyzer a;
  for (int i = 0; i < 100; ++i) a.process(42);
  a.finish();
  EXPECT_EQ(a.footprint(), 1u);
  EXPECT_EQ(a.histogram().at(0), 99u);
  EXPECT_EQ(a.histogram().infinities(), 1u);
  EXPECT_EQ(a.marker_hop_count(), 0u);  // chain never exceeds one node
  std::string why;
  EXPECT_TRUE(a.check_invariants(&why)) << why;
}

TEST(LruChainTest, SequentialSweepAllInfinite) {
  SequentialWorkload w(1 << 12);
  const auto trace = generate_trace(w, 1 << 12);
  LruChainAnalyzer a;
  const Histogram h = analyze_trace(a, trace);
  EXPECT_EQ(h.infinities(), trace.size());
  EXPECT_EQ(h.finite_total(), 0u);
  std::string why;
  EXPECT_TRUE(a.check_invariants(&why)) << why;
}

TEST(LruChainTest, MatchesBucketedOlkenOnRandomTraces) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    UniformRandomWorkload w(257, seed);
    const auto trace = generate_trace(w, 6000);
    LruChainAnalyzer a;
    const Histogram h = analyze_trace(a, trace);
    EXPECT_EQ(h.log2_buckets(), olken_log2(trace)) << "seed " << seed;
    EXPECT_EQ(h.infinities(), olken_analysis<SplayTree>(trace).infinities());
    std::string why;
    EXPECT_TRUE(a.check_invariants(&why)) << "seed " << seed << ": " << why;
  }
}

TEST(LruChainTest, MatchesBucketedOlkenOnSkewedTraces) {
  ZipfWorkload w(500, 1.0, 11);
  const auto trace = generate_trace(w, 8000);
  LruChainAnalyzer a;
  EXPECT_EQ(analyze_trace(a, trace).log2_buckets(), olken_log2(trace));
}

TEST(LruChainTest, MatchesBucketedOlkenOnSawtoothTraces) {
  for (std::uint64_t k : {2u, 3u, 17u, 256u, 1000u}) {
    const auto trace = sawtooth_trace(k, 6000);
    LruChainAnalyzer a;
    const Histogram h = analyze_trace(a, trace);
    EXPECT_EQ(h.log2_buckets(), olken_log2(trace)) << "k " << k;
    std::string why;
    EXPECT_TRUE(a.check_invariants(&why)) << "k " << k << ": " << why;
  }
}

TEST(LruChainTest, MatchesBucketedOlkenOnAdversarialProbeChains) {
  // 2^12 keys that all hash into the same AddrMap bucket, referenced in a
  // shuffled repeating pattern: the hash table sees worst-case probe
  // chains while the chain sees distances at every scale.
  const auto keys = adversarial_keys(1 << 12);
  Xoshiro256 rng(99);
  std::vector<Addr> trace;
  trace.reserve(20000);
  for (std::size_t i = 0; i < 20000; ++i) {
    // Power-law-ish index so short and long reuses both occur.
    const std::size_t span = std::size_t{1} << rng.below(13);
    trace.push_back(keys[rng.below(span)]);
  }
  LruChainAnalyzer a;
  const Histogram h = analyze_trace(a, trace);
  EXPECT_EQ(h.log2_buckets(), olken_log2(trace));
  std::string why;
  EXPECT_TRUE(a.check_invariants(&why)) << why;
  EXPECT_GT(a.stats().hash_probes, 0u);
}

TEST(LruChainTest, BoundedMatchesBoundedTreeEngine) {
  for (std::uint64_t bound : {1u, 2u, 7u, 64u, 100u}) {
    UniformRandomWorkload w(300, bound + 5);
    const auto trace = generate_trace(w, 6000);
    LruChainAnalyzer a(bound);
    const Histogram mine = analyze_trace(a, trace);
    const Histogram exact = bounded_analysis<SplayTree>(trace, bound);
    EXPECT_EQ(mine.log2_buckets(), exact.log2_buckets()) << "bound " << bound;
    EXPECT_EQ(mine.infinities(), exact.infinities()) << "bound " << bound;
    std::string why;
    EXPECT_TRUE(a.check_invariants(&why)) << "bound " << bound << ": " << why;
  }
}

TEST(LruChainTest, FreeListRecyclesUnderBound) {
  const std::uint64_t kBound = 64;
  UniformRandomWorkload w(4096, 7);  // footprint far above the bound
  const auto trace = generate_trace(w, 50000);
  LruChainAnalyzer a(kBound);
  analyze_trace(a, trace);
  // Steady-state bounded operation allocates exactly `bound` arena slots:
  // every eviction's node is recycled for the next miss.
  EXPECT_EQ(a.allocated_nodes(), kBound);
  EXPECT_EQ(a.footprint(), kBound);
  EXPECT_EQ(a.free_nodes(), 0u);
  EXPECT_GT(a.eviction_count(), 0u);
  EXPECT_EQ(a.stats().peak_footprint, kBound);
  std::string why;
  EXPECT_TRUE(a.check_invariants(&why)) << why;
}

TEST(LruChainTest, UnboundedPeakEqualsFootprint) {
  UniformRandomWorkload w(777, 3);
  const auto trace = generate_trace(w, 20000);
  LruChainAnalyzer a;
  analyze_trace(a, trace);
  EXPECT_EQ(a.stats().peak_footprint, a.footprint());
  EXPECT_EQ(a.allocated_nodes(), a.footprint());
  EXPECT_EQ(a.free_nodes(), 0u);
  EXPECT_EQ(a.eviction_count(), 0u);
}

TEST(LruChainTest, ProcessBlockEqualsPerReferenceLoop) {
  ZipfWorkload w(400, 0.8, 21);
  const auto trace = generate_trace(w, 10000);
  LruChainAnalyzer batched;
  batched.process_block(trace);
  batched.finish();
  LruChainAnalyzer looped;
  for (Addr z : trace) looped.process(z);
  looped.finish();
  EXPECT_TRUE(batched.histogram() == looped.histogram());
  const EngineStats a = batched.stats();
  const EngineStats b = looped.stats();
  EXPECT_EQ(a.references, b.references);
  EXPECT_EQ(a.finite, b.finite);
  EXPECT_EQ(a.infinities, b.infinities);
  EXPECT_EQ(a.hash_probes, b.hash_probes);  // prefetch must not count
  EXPECT_EQ(a.marker_hops, b.marker_hops);
  EXPECT_EQ(a.peak_footprint, b.peak_footprint);
}

TEST(LruChainTest, OlkenProcessBlockEqualsPerReferenceLoop) {
  UniformRandomWorkload w(512, 17);
  const auto trace = generate_trace(w, 8000);
  OlkenAnalyzer<SplayTree> batched;
  batched.process_block(trace);
  batched.finish();
  OlkenAnalyzer<SplayTree> looped;
  for (Addr z : trace) looped.process(z);
  looped.finish();
  EXPECT_TRUE(batched.histogram() == looped.histogram());
  EXPECT_EQ(batched.stats().hash_probes, looped.stats().hash_probes);
}

TEST(LruChainTest, BennettKruskalProcessBlockEqualsPerReferenceLoop) {
  UniformRandomWorkload w(512, 31);
  const auto trace = generate_trace(w, 8000);
  BennettKruskalAnalyzer batched;
  batched.process_block(std::span<const Addr>(trace).first(5000));
  batched.process_block(std::span<const Addr>(trace).subspan(5000));
  batched.finish();
  BennettKruskalAnalyzer looped;
  for (Addr z : trace) looped.process(z);
  looped.finish();
  EXPECT_TRUE(batched.histogram() == looped.histogram());
  EXPECT_EQ(batched.stats().hash_probes, looped.stats().hash_probes);
}

TEST(LruChainTest, IntervalProcessBlockEqualsPerReferenceLoop) {
  UniformRandomWorkload w(512, 23);
  const auto trace = generate_trace(w, 8000);
  IntervalAnalyzer batched;
  batched.process_block(trace);
  batched.finish();
  IntervalAnalyzer looped;
  for (Addr z : trace) looped.process(z);
  looped.finish();
  EXPECT_TRUE(batched.histogram() == looped.histogram());
  EXPECT_EQ(batched.stats().hash_probes, looped.stats().hash_probes);
}

TEST(LruChainTest, BoundedProcessBlockEqualsPerReferenceLoop) {
  UniformRandomWorkload w(512, 29);
  const auto trace = generate_trace(w, 8000);
  BoundedAnalyzer<SplayTree> batched(32);
  batched.process_block(trace);
  batched.finish();
  BoundedAnalyzer<SplayTree> looped(32);
  for (Addr z : trace) looped.process(z);
  looped.finish();
  EXPECT_TRUE(batched.histogram() == looped.histogram());
  EXPECT_EQ(batched.stats().evictions, looped.stats().evictions);
}

TEST(LruChainTest, StatsAndMarkerHops) {
  UniformRandomWorkload w(100, 5);
  const auto trace = generate_trace(w, 5000);
  LruChainAnalyzer a;
  analyze_trace(a, trace);
  const EngineStats s = a.stats();
  EXPECT_EQ(s.references, trace.size());
  EXPECT_EQ(s.finite + s.infinities, s.references);
  EXPECT_GT(s.marker_hops, 0u);
  EXPECT_EQ(s.marker_hops, a.marker_hop_count());
  EXPECT_EQ(s.tree_rotations, 0u);  // no tree in this engine
}

TEST(LruChainTest, FinishIsIdempotent) {
  LruChainAnalyzer a;
  for (Addr z : kTable1) a.process(z);
  a.finish();
  const std::uint64_t total = a.histogram().total();
  a.finish();
  EXPECT_EQ(a.histogram().total(), total);
}

TEST(LruChainTest, ResetClearsEverything) {
  UniformRandomWorkload w(64, 9);
  const auto trace = generate_trace(w, 2000);
  LruChainAnalyzer a(16);
  analyze_trace(a, trace);
  a.reset();
  EXPECT_EQ(a.footprint(), 0u);
  EXPECT_EQ(a.time(), 0u);
  EXPECT_EQ(a.free_nodes(), 0u);
  EXPECT_EQ(a.eviction_count(), 0u);
  EXPECT_EQ(a.histogram().total(), 0u);
  std::string why;
  EXPECT_TRUE(a.check_invariants(&why)) << why;
  // And it is reusable: same trace, same answer.
  const Histogram again = analyze_trace(a, trace);
  LruChainAnalyzer fresh(16);
  EXPECT_TRUE(again == analyze_trace(fresh, trace));
}

TEST(LruChainTest, InvariantsHoldMidTrace) {
  // Audit the structure at many points during a bounded churny trace.
  ZipfWorkload w(200, 0.9, 31);
  const auto trace = generate_trace(w, 4000);
  LruChainAnalyzer a(37);  // non-power-of-two bound crosses marker edges
  std::string why;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    a.process(trace[i]);
    if (i % 251 == 0) {
      ASSERT_TRUE(a.check_invariants(&why)) << "ref " << i << ": " << why;
    }
  }
}

}  // namespace
}  // namespace parda
