// Tests for OPT (Belady) stack distance analysis (Mattson [12]).
#include <gtest/gtest.h>

#include <vector>

#include "cachesim/lru_cache.hpp"
#include "seq/olken.hpp"
#include "seq/opt.hpp"
#include "workload/generators.hpp"

namespace parda {
namespace {

TEST(OptDistanceTest, EmptyAndSingleton) {
  EXPECT_TRUE(opt_distances({}).empty());
  const auto d = opt_distances(std::vector<Addr>{42});
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0], kInfiniteDistance);
}

TEST(OptDistanceTest, ImmediateReuseIsZero) {
  const auto d = opt_distances(std::vector<Addr>{1, 1, 1});
  EXPECT_EQ(d[1], 0u);
  EXPECT_EQ(d[2], 0u);
}

TEST(OptDistanceTest, KnownSmallExample) {
  // Trace: a b c a. With OPT, at time 3 'a' should be near the top of the
  // stack because b and c are never referenced again: OPT distance of the
  // final 'a' is 0 (an OPT cache of size 1 keeps 'a' after time 0? No —
  // size-1 caches always hold the last reference, so the final 'a' misses
  // at C=1 but hits at C=2: distance 1).
  const auto d = opt_distances(std::vector<Addr>{'a', 'b', 'c', 'a'});
  EXPECT_EQ(d[3], 1u);
  // LRU would need C=3 (distance 2) for the same reuse.
  OlkenAnalyzer<SplayTree> lru;
  lru.access('a');
  lru.access('b');
  lru.access('c');
  EXPECT_EQ(lru.access('a'), 2u);
}

TEST(OptDistanceTest, InfinitiesMatchFootprint) {
  ZipfWorkload w(200, 0.9, 3);
  const auto trace = generate_trace(w, 5000);
  const Histogram opt = opt_distance_analysis(trace);
  const Histogram lru = olken_analysis(trace);
  EXPECT_EQ(opt.infinities(), lru.infinities());
  EXPECT_EQ(opt.total(), lru.total());
}

TEST(OptDistanceTest, StackDistanceMatchesBeladySimulator) {
  // The Mattson property for OPT: hits(C) == #refs with distance < C.
  for (std::uint64_t seed : {1u, 2u}) {
    ZipfWorkload w(150, 0.8, seed);
    const auto trace = generate_trace(w, 4000);
    const Histogram hist = opt_distance_analysis(trace);
    for (std::uint64_t c : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
      OptCacheSim sim(c, trace);
      EXPECT_EQ(sim.run(), hist.hits_below(c))
          << "C=" << c << " seed=" << seed;
    }
  }
}

TEST(OptDistanceTest, OptNeverWorseThanLruAtAnyCacheSize) {
  // Belady optimality, via both stacks' histograms.
  std::vector<std::unique_ptr<Workload>> kids;
  kids.push_back(std::make_unique<ZipfWorkload>(300, 0.9, 7, 0));
  kids.push_back(std::make_unique<SequentialWorkload>(100, 1));
  MixWorkload mix(std::move(kids), {0.5, 0.5}, 9);
  const auto trace = generate_trace(mix, 8000);

  const Histogram opt = opt_distance_analysis(trace);
  const Histogram lru = olken_analysis(trace);
  for (std::uint64_t c = 1; c <= 512; c *= 2) {
    EXPECT_GE(opt.hits_below(c), lru.hits_below(c)) << "C=" << c;
  }
}

TEST(OptDistanceTest, CyclicSweepShowsOptAdvantage) {
  // The classic case: a cyclic sweep over M > C addresses gives LRU zero
  // hits but OPT keeps C-1 of them resident.
  SequentialWorkload w(64);
  const auto trace = generate_trace(w, 64 * 20);
  const Histogram opt = opt_distance_analysis(trace);
  const Histogram lru = olken_analysis(trace);
  const std::uint64_t c = 16;
  EXPECT_EQ(lru.hits_below(c), 0u);  // LRU thrashes
  OptCacheSim sim(c, trace);
  const std::uint64_t opt_hits = sim.run();
  EXPECT_EQ(opt.hits_below(c), opt_hits);
  // OPT retains c-1 lines across each lap after the first.
  EXPECT_GE(opt_hits, (20u - 1) * (c - 1));
}

TEST(OptCacheSimTest, CountsAddUp) {
  UniformRandomWorkload w(100, 5);
  const auto trace = generate_trace(w, 2000);
  OptCacheSim sim(32, trace);
  sim.run();
  EXPECT_EQ(sim.hits() + sim.misses(), trace.size());
  // OPT with capacity >= footprint only takes compulsory misses.
  OptCacheSim big(4096, trace);
  big.run();
  EXPECT_EQ(big.misses(), olken_analysis(trace).infinities());
}

}  // namespace
}  // namespace parda
