// Tests for the alternative sequential engines: Bennett-Kruskal (exact,
// Fenwick-based, paper ref [2]) and the sampling approximation (refs
// [4][19][22] family).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "hist/mrc.hpp"
#include "seq/approx.hpp"
#include "seq/bennett_kruskal.hpp"
#include "seq/naive.hpp"
#include "seq/olken.hpp"
#include "workload/generators.hpp"
#include "workload/spec.hpp"

namespace parda {
namespace {

TEST(BennettKruskalTest, EmptyTrace) {
  EXPECT_EQ(bennett_kruskal_analysis({}).total(), 0u);
}

TEST(BennettKruskalTest, Table1Example) {
  const std::vector<Addr> trace{'d', 'a', 'c', 'b', 'c',
                                'c', 'g', 'e', 'f', 'a'};
  const Histogram h = bennett_kruskal_analysis(trace);
  EXPECT_EQ(h.infinities(), 7u);
  EXPECT_EQ(h.at(0), 1u);
  EXPECT_EQ(h.at(1), 1u);
  EXPECT_EQ(h.at(5), 1u);
}

TEST(BennettKruskalTest, MatchesOlkenOnRandomTraces) {
  for (std::uint64_t seed : {1u, 7u, 42u}) {
    ZipfWorkload w(500, 0.9, seed);
    const auto trace = generate_trace(w, 8000);
    EXPECT_TRUE(bennett_kruskal_analysis(trace) == olken_analysis(trace))
        << seed;
  }
}

TEST(BennettKruskalTest, MatchesNaiveOnSpecProfile) {
  auto w = make_spec_workload("soplex", 400000, 3);
  const auto trace = generate_trace(*w, 3000);
  EXPECT_TRUE(bennett_kruskal_analysis(trace) ==
              naive_stack_analysis(trace));
}

TEST(SampleSelectionTest, RateBoundsMembership) {
  std::size_t selected = 0;
  for (Addr a = 0; a < 100000; ++a) {
    if (sample_selects(a, 0.1, 7)) ++selected;
  }
  // Binomial(100000, 0.1): ~10000 +- 300 (3 sigma ~285).
  EXPECT_NEAR(static_cast<double>(selected), 10000.0, 400.0);
}

TEST(SampleSelectionTest, DeterministicPerSeed) {
  for (Addr a = 0; a < 100; ++a) {
    EXPECT_EQ(sample_selects(a, 0.5, 3), sample_selects(a, 0.5, 3));
  }
}

TEST(SampleSelectionTest, RateOneSelectsEverything) {
  for (Addr a = 0; a < 1000; ++a) {
    EXPECT_TRUE(sample_selects(a, 1.0, 11));
  }
}

TEST(SampledAnalysisTest, RateOneIsExact) {
  UniformRandomWorkload w(200, 5);
  const auto trace = generate_trace(w, 5000);
  EXPECT_TRUE(sampled_analysis(trace, 1.0) == olken_analysis(trace));
}

TEST(SampledAnalysisTest, MrcCloseToExact) {
  // The headline property: the sampled MRC tracks the exact MRC.
  ZipfWorkload w(5000, 0.9, 17);
  const auto trace = generate_trace(w, 200000);
  const Histogram exact = olken_analysis(trace);
  const Histogram approx = sampled_analysis(trace, 0.1, 3);
  double worst = 0.0;
  for (std::uint64_t c = 16; c <= 8192; c *= 2) {
    const double err =
        std::abs(miss_ratio(exact, c) - miss_ratio(approx, c));
    worst = std::max(worst, err);
  }
  EXPECT_LT(worst, 0.05);
}

TEST(SampledAnalysisTest, TotalScalesBack) {
  UniformRandomWorkload w(3000, 9);
  const auto trace = generate_trace(w, 100000);
  const Histogram approx = sampled_analysis(trace, 0.25, 5);
  EXPECT_NEAR(static_cast<double>(approx.total()),
              static_cast<double>(trace.size()),
              static_cast<double>(trace.size()) * 0.1);
}

TEST(SampledAnalysisTest, ComposesWithParda) {
  ZipfWorkload w(2000, 1.0, 23);
  const auto trace = generate_trace(w, 60000);
  PardaOptions options;
  options.num_procs = 3;
  const Histogram via_parda =
      sampled_parda_analysis(trace, 0.2, options, 7);
  const Histogram via_seq = sampled_analysis(trace, 0.2, 7);
  // Same sample, same exact engine underneath: identical results.
  EXPECT_TRUE(via_parda == via_seq);
}

}  // namespace
}  // namespace parda
