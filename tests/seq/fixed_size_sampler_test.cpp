#include "seq/fixed_size_sampler.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "hist/mrc.hpp"
#include "seq/analyzer.hpp"
#include "seq/bounded.hpp"
#include "tree/splay_tree.hpp"
#include "workload/generators.hpp"

namespace parda {
namespace {

std::vector<Addr> zipf_trace(std::uint64_t refs, std::uint64_t footprint,
                             std::uint64_t seed) {
  ZipfWorkload w(footprint, 0.9, seed);
  return generate_trace(w, refs);
}

TEST(FixedSizeSamplerTest, FullRateLargeBudgetMatchesExactBoundedEngine) {
  // With rate 1.0 and a budget no footprint reaches, every reference is
  // sampled at scale 1: the histogram must equal the bounded engine's.
  const auto trace = zipf_trace(20000, 300, 1);
  FixedSizeSampler sampler(/*max_tracked=*/4096);
  BoundedAnalyzer<SplayTree> exact(4096);
  const Histogram sampled = analyze_trace(sampler, trace);
  const Histogram reference = analyze_trace(exact, trace);
  EXPECT_TRUE(sampled == reference);
}

TEST(FixedSizeSamplerTest, TrackedSetNeverExceedsBudget) {
  constexpr std::size_t kBudget = 128;
  FixedSizeSampler sampler(kBudget, /*distance_cap=*/1 << 16);
  // Ever-growing footprint: every address distinct.
  for (Addr a = 0; a < 200000; ++a) sampler.process(a * 64);
  EXPECT_LE(sampler.tracked(), kBudget);
  EXPECT_GT(sampler.budget_evictions(), 0u);
  // The adaptive threshold must have decayed the rate below 1.
  EXPECT_LT(sampler.rate(), 1.0);
  sampler.finish();
  EXPECT_EQ(sampler.references_seen(), 200000u);
}

TEST(FixedSizeSamplerTest, FootprintStaysBoundedOnUnboundedStream) {
  constexpr std::size_t kBudget = 256;
  constexpr std::uint64_t kCap = 4096;
  FixedSizeSampler sampler(kBudget, kCap);
  std::uint64_t peak = 0;
  for (Addr a = 0; a < 500000; ++a) {
    sampler.process(a * 8);
    if ((a & 0xFFF) == 0) peak = std::max(peak, sampler.footprint_bytes());
  }
  peak = std::max(peak, sampler.footprint_bytes());
  // O(budget + cap): generous constant, but far below the ~500k-entry
  // state an exact analyzer would need.
  EXPECT_LT(peak, (kBudget * 256 + kCap * 8) * 4);
}

TEST(FixedSizeSamplerTest, MissRatioAccuracyOnZipf) {
  const auto trace = zipf_trace(200000, 20000, 7);
  BoundedAnalyzer<SplayTree> exact(1 << 16);
  const Histogram reference = analyze_trace(exact, trace);
  FixedSizeSampler sampler(/*max_tracked=*/256, /*distance_cap=*/1 << 16);
  const Histogram approx = analyze_trace(sampler, trace);

  // SHARDS at a 256-entry budget: mean absolute miss-ratio error across
  // power-of-two cache sizes must stay small (the paper reports < 0.01 at
  // 8K samples; 0.05 leaves margin for the tiny budget).
  double err = 0.0;
  int points = 0;
  for (std::uint64_t c = 1; c <= 16384; c *= 2) {
    err += std::abs(miss_ratio(approx, c) - miss_ratio(reference, c));
    ++points;
  }
  EXPECT_LT(err / points, 0.05) << "mean abs MRC error too high";
}

TEST(FixedSizeSamplerTest, WindowTakeKeepsSamplingState) {
  FixedSizeSampler sampler(1024);
  const auto trace = zipf_trace(4000, 200, 3);
  sampler.process_block(trace);
  const Histogram first = sampler.take_window_histogram();
  EXPECT_GT(first.total(), 0u);
  EXPECT_EQ(sampler.histogram().total(), 0u);

  // Same addresses again: the recency stack survived the take, so reuse
  // distances stay finite instead of re-registering as cold misses.
  sampler.process_block(trace);
  const Histogram second = sampler.take_window_histogram();
  EXPECT_GT(second.finite_total(), 0u);
  EXPECT_EQ(second.infinities(), 0u);
}

TEST(FixedSizeSamplerTest, DistanceCapSendsDeepReusesToInfinity) {
  constexpr std::uint64_t kCap = 64;
  FixedSizeSampler sampler(8192, kCap);
  // Cyclic sweep over 1000 addresses: every reuse distance is 999, far
  // over the cap, so after the cold pass everything lands in infinity.
  for (int round = 0; round < 3; ++round) {
    for (Addr a = 0; a < 1000; ++a) sampler.process(a);
  }
  sampler.finish();
  EXPECT_EQ(sampler.histogram().finite_total(), 0u);
  EXPECT_EQ(sampler.histogram().infinities(), 3000u);
}

TEST(FixedSizeSamplerTest, ScaledCountsApproximateTotalReferences) {
  // Distances are recorded with weight ~1/R: the histogram mass must stay
  // in the same ballpark as the true reference count even after the rate
  // decays (SHARDS_adj closes the per-window gap).
  const auto trace = zipf_trace(100000, 30000, 11);
  FixedSizeSampler sampler(512, 1 << 16);
  sampler.process_block(trace);
  const Histogram h = sampler.take_window_histogram();
  const double total = static_cast<double>(h.total());
  EXPECT_GT(total, 0.5 * static_cast<double>(trace.size()));
  EXPECT_LT(total, 1.5 * static_cast<double>(trace.size()));
}

TEST(FixedSizeSamplerTest, ResetRestoresInitialState) {
  FixedSizeSampler sampler(64);
  for (Addr a = 0; a < 10000; ++a) sampler.process(a);
  EXPECT_LT(sampler.rate(), 1.0);
  sampler.reset();
  EXPECT_DOUBLE_EQ(sampler.rate(), 1.0);
  EXPECT_EQ(sampler.tracked(), 0u);
  EXPECT_EQ(sampler.references_seen(), 0u);
  EXPECT_EQ(sampler.histogram().total(), 0u);

  const auto trace = zipf_trace(20000, 300, 5);
  FixedSizeSampler fresh(64);
  FixedSizeSampler recycled = std::move(sampler);
  const Histogram a = analyze_trace(fresh, trace);
  const Histogram b = analyze_trace(recycled, trace);
  EXPECT_TRUE(a == b);
}

TEST(FixedSizeSamplerTest, FinishIsIdempotent) {
  FixedSizeSampler sampler(32);
  for (Addr a = 0; a < 5000; ++a) sampler.process(a % 700);
  sampler.finish();
  const Histogram after_first = sampler.histogram();
  sampler.finish();
  EXPECT_TRUE(sampler.histogram() == after_first);
}

}  // namespace
}  // namespace parda
