#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "seq/bounded.hpp"
#include "seq/naive.hpp"
#include "seq/olken.hpp"
#include "tree/avl_tree.hpp"
#include "tree/treap.hpp"
#include "tree/vector_tree.hpp"
#include "util/prng.hpp"
#include "workload/generators.hpp"

namespace parda {
namespace {

// The running example of the paper: Table I.
const std::vector<Addr> kTable1{'d', 'a', 'c', 'b', 'c',
                                'c', 'g', 'e', 'f', 'a'};

TEST(NaiveStackTest, EmptyTrace) {
  const Histogram h = naive_stack_analysis({});
  EXPECT_EQ(h.total(), 0u);
}

TEST(NaiveStackTest, Table1Example) {
  NaiveStackAnalyzer analyzer;
  std::vector<Distance> distances;
  for (Addr a : kTable1) distances.push_back(analyzer.access(a));
  const std::vector<Distance> expected{
      kInfiniteDistance, kInfiniteDistance, kInfiniteDistance,
      kInfiniteDistance, 1,
      0,                 kInfiniteDistance, kInfiniteDistance,
      kInfiniteDistance, 5};
  EXPECT_EQ(distances, expected);
}

TEST(NaiveStackTest, RepeatedSingleAddress) {
  NaiveStackAnalyzer analyzer;
  EXPECT_EQ(analyzer.access(7), kInfiniteDistance);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(analyzer.access(7), 0u);
  EXPECT_EQ(analyzer.footprint(), 1u);
}

template <typename Tree>
class OlkenEngineTest : public ::testing::Test {};

using Engines = ::testing::Types<SplayTree, AvlTree, Treap, VectorTree>;
TYPED_TEST_SUITE(OlkenEngineTest, Engines);

TYPED_TEST(OlkenEngineTest, Table1Example) {
  OlkenAnalyzer<TypeParam> analyzer;
  std::vector<Distance> distances;
  for (Addr a : kTable1) distances.push_back(analyzer.access(a));
  EXPECT_EQ(distances[4], 1u);
  EXPECT_EQ(distances[5], 0u);
  EXPECT_EQ(distances[9], 5u);  // the worked Figure 1 distance
  EXPECT_EQ(analyzer.footprint(), 7u);
  EXPECT_EQ(analyzer.time(), 10u);
}

TYPED_TEST(OlkenEngineTest, MatchesNaiveOnRandomTraces) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    UniformRandomWorkload w(64, seed);
    const auto trace = generate_trace(w, 4000);
    EXPECT_TRUE(olken_analysis<TypeParam>(trace) ==
                naive_stack_analysis(trace))
        << "seed " << seed;
  }
}

TYPED_TEST(OlkenEngineTest, MatchesNaiveOnSkewedTraces) {
  ZipfWorkload w(200, 1.0, 5);
  const auto trace = generate_trace(w, 5000);
  EXPECT_TRUE(olken_analysis<TypeParam>(trace) == naive_stack_analysis(trace));
}

TYPED_TEST(OlkenEngineTest, HistogramMassInvariants) {
  UniformRandomWorkload w(100, 9);
  const auto trace = generate_trace(w, 3000);
  const Histogram h = olken_analysis<TypeParam>(trace);
  EXPECT_EQ(h.total(), trace.size());
  // Unbounded analysis: one infinity per distinct address.
  std::vector<Addr> unique = trace;
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
  EXPECT_EQ(h.infinities(), unique.size());
  // No distance can reach the footprint.
  EXPECT_LT(h.max_distance(), unique.size());
}

TEST(OlkenAnalyzerTest, ResetClearsState) {
  OlkenAnalyzer<SplayTree> analyzer;
  analyzer.access(1);
  analyzer.access(2);
  analyzer.reset();
  EXPECT_EQ(analyzer.time(), 0u);
  EXPECT_EQ(analyzer.footprint(), 0u);
  EXPECT_EQ(analyzer.access(1), kInfiniteDistance);
}

TEST(OlkenAnalyzerTest, ImmediateReuseIsDistanceZero) {
  OlkenAnalyzer<SplayTree> analyzer;
  analyzer.access(42);
  EXPECT_EQ(analyzer.access(42), 0u);
  EXPECT_EQ(analyzer.access(42), 0u);
}

// --- Bounded analysis --------------------------------------------------------

class BoundedSemanticsTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(BoundedSemanticsTest, ExactBelowBoundInfinityAtOrAbove) {
  const auto [bound, seed] = GetParam();
  ZipfWorkload w(300, 0.7, static_cast<std::uint64_t>(seed));
  const auto trace = generate_trace(w, 6000);
  const Histogram exact = olken_analysis(trace);
  const Histogram bounded = bounded_analysis(trace, bound);

  EXPECT_EQ(bounded.total(), exact.total());
  for (Distance d = 0; d < bound; ++d) {
    EXPECT_EQ(bounded.at(d), exact.at(d)) << "d=" << d << " B=" << bound;
  }
  // No finite mass survives at or beyond the bound...
  for (Distance d = bound; d <= bounded.max_distance(); ++d) {
    EXPECT_EQ(bounded.at(d), 0u) << "d=" << d;
  }
  // ...because everything at or above the bound became an infinity.
  std::uint64_t folded = exact.infinities();
  for (Distance d = bound; d <= exact.max_distance(); ++d) {
    folded += exact.at(d);
  }
  EXPECT_EQ(bounded.infinities(), folded);
}

INSTANTIATE_TEST_SUITE_P(
    Bounds, BoundedSemanticsTest,
    ::testing::Combine(::testing::Values(1, 2, 8, 32, 128, 299, 300, 512),
                       ::testing::Values(1, 2)));

TEST(BoundedAnalyzerTest, ResidencyNeverExceedsBound) {
  BoundedAnalyzer<SplayTree> analyzer(16);
  UniformRandomWorkload w(1000, 3);
  const auto trace = generate_trace(w, 2000);
  for (Addr a : trace) {
    analyzer.access(a);
    EXPECT_LE(analyzer.footprint(), 16u);
  }
}

TEST(BoundedAnalyzerTest, BoundLargerThanFootprintIsExact) {
  UniformRandomWorkload w(50, 4);
  const auto trace = generate_trace(w, 2000);
  EXPECT_TRUE(bounded_analysis(trace, 1 << 20) == olken_analysis(trace));
}

TEST(BoundedAnalyzerTest, BoundOneOnlyCountsImmediateReuse) {
  const std::vector<Addr> trace{1, 1, 2, 2, 2, 1};
  const Histogram h = bounded_analysis(trace, 1);
  EXPECT_EQ(h.at(0), 3u);  // 1@1, 2@3, 2@4
  EXPECT_EQ(h.infinities(), 3u);
}

}  // namespace
}  // namespace parda
