// Failure-path tests for trace I/O and the streaming pipeline: corrupt
// trace fixtures (truncated, bad magic, bad version, count mismatch),
// TracePipe poisoning from both sides, and deterministic producer faults
// through parda_analyze_file. These run under TSAN in CI.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "comm/fault.hpp"
#include "core/file_analysis.hpp"
#include "core/parda.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_pipe.hpp"
#include "util/check.hpp"

namespace parda {
namespace {

std::string temp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

void write_raw(const std::string& path, const void* data, std::size_t size) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  if (size > 0) {
    ASSERT_EQ(std::fwrite(data, 1, size, f), size);
  }
  std::fclose(f);
}

/// Builds a binary trace file by hand: header fields as given, then `body`
/// addresses — the knob for every corruption the reader must reject.
std::string write_fixture(const std::string& name, const char magic[8],
                          std::uint64_t version, std::uint64_t declared,
                          const std::vector<Addr>& body,
                          std::size_t truncate_body_bytes_to = SIZE_MAX) {
  std::vector<char> bytes;
  bytes.insert(bytes.end(), magic, magic + 8);
  const auto append_u64 = [&](std::uint64_t v) {
    const char* p = reinterpret_cast<const char*>(&v);
    bytes.insert(bytes.end(), p, p + sizeof(v));
  };
  append_u64(version);
  append_u64(declared);
  std::size_t body_bytes = body.size() * sizeof(Addr);
  if (truncate_body_bytes_to != SIZE_MAX) {
    body_bytes = truncate_body_bytes_to;
  }
  const char* p = reinterpret_cast<const char*>(body.data());
  bytes.insert(bytes.end(), p, p + body_bytes);
  const std::string path = temp_path(name);
  write_raw(path, bytes.data(), bytes.size());
  return path;
}

std::string what_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const std::exception& e) {
    return e.what();
  }
  return "";
}

// --- BinaryTraceReader constructor validation. ---

TEST(TraceFormatTest, FileShorterThanMagicThrows) {
  const std::string path = temp_path("tiny.trc");
  write_raw(path, "PAR", 3);
  const std::string what =
      what_of([&] { BinaryTraceReader reader(path); });
  EXPECT_NE(what.find("shorter than the 8-byte magic"), std::string::npos)
      << what;
}

TEST(TraceFormatTest, BadMagicNamesByteOffsetZero) {
  const char bad_magic[8] = {'N', 'O', 'T', 'A', 'T', 'R', 'C', '!'};
  const std::string path =
      write_fixture("badmagic.trc", bad_magic, kTraceVersion, 0, {});
  EXPECT_THROW(read_trace_binary(path), TraceFormatError);
  const std::string what = what_of([&] { BinaryTraceReader reader(path); });
  EXPECT_NE(what.find("bad trace magic at byte offset 0"), std::string::npos)
      << what;
}

TEST(TraceFormatTest, TruncatedHeaderThrows) {
  const std::string path = temp_path("shorthdr.trc");
  write_raw(path, kTraceMagic, sizeof(kTraceMagic));  // magic only
  const std::string what = what_of([&] { BinaryTraceReader reader(path); });
  EXPECT_NE(what.find("shorter than the 24-byte header"), std::string::npos)
      << what;
}

TEST(TraceFormatTest, UnsupportedVersionNamesByteOffsetEight) {
  const std::string path =
      write_fixture("badver.trc", kTraceMagic, kTraceVersion + 41, 0, {});
  const std::string what = what_of([&] { BinaryTraceReader reader(path); });
  EXPECT_NE(what.find("unsupported trace version 42"), std::string::npos)
      << what;
  EXPECT_NE(what.find("at byte offset 8"), std::string::npos) << what;
}

TEST(TraceFormatTest, DeclaredCountLargerThanBodyThrows) {
  // Header declares 10 references, body holds 5.
  const std::string path = write_fixture("truncbody.trc", kTraceMagic,
                                         kTraceVersion, 10, {1, 2, 3, 4, 5});
  const std::string what = what_of([&] { BinaryTraceReader reader(path); });
  EXPECT_NE(what.find("trace body size mismatch at byte offset 24"),
            std::string::npos)
      << what;
  EXPECT_NE(what.find("header declares 10 references (80 bytes)"),
            std::string::npos)
      << what;
  EXPECT_NE(what.find("the file holds 40 bytes (5 whole references)"),
            std::string::npos)
      << what;
}

TEST(TraceFormatTest, DeclaredCountSmallerThanBodyThrows) {
  const std::string path = write_fixture("extrabody.trc", kTraceMagic,
                                         kTraceVersion, 2, {1, 2, 3, 4});
  EXPECT_THROW(read_trace_binary(path), TraceFormatError);
}

TEST(TraceFormatTest, RaggedBodyThrows) {
  // Body is not a whole number of 8-byte references.
  const std::string path = write_fixture("ragged.trc", kTraceMagic,
                                         kTraceVersion, 1, {7}, 5);
  EXPECT_THROW(read_trace_binary(path), TraceFormatError);
}

TEST(TraceFormatTest, MissingFileThrows) {
  EXPECT_THROW(read_trace_binary(temp_path("does-not-exist.trc")),
               std::runtime_error);
}

TEST(TraceFormatTest, ValidTraceStillRoundTrips) {
  std::vector<Addr> trace(1000);
  for (std::size_t i = 0; i < trace.size(); ++i) trace[i] = i * 3 + 1;
  const std::string path = temp_path("valid.trc");
  write_trace_binary(path, trace);
  BinaryTraceReader reader(path);
  EXPECT_EQ(reader.total_references(), trace.size());
  EXPECT_EQ(read_trace_binary(path), trace);
}

// --- TracePipe poisoning. ---

TEST(TracePipeFaultTest, WriteAfterCloseIsACheckedError) {
  TracePipe pipe(64);
  pipe.write(std::vector<Addr>{1, 2});
  pipe.close();
  EXPECT_THROW(pipe.write(std::vector<Addr>{3}), CheckError);
  // The data queued before close is still readable.
  EXPECT_EQ(pipe.read_words(4), (std::vector<Addr>{1, 2}));
}

TEST(TracePipeFaultTest, ErrorBeatsQueuedData) {
  TracePipe pipe(64);
  pipe.write(std::vector<Addr>{1, 2, 3});
  pipe.close_with_error("producer died mid-trace");
  EXPECT_TRUE(pipe.failed());
  std::vector<Addr> block;
  try {
    pipe.read(block);
    FAIL() << "poisoned pipe delivered data";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("producer died mid-trace"),
              std::string::npos);
  }
  // Subsequent writes rethrow the stored error too.
  EXPECT_THROW(pipe.write(std::vector<Addr>{4}), std::runtime_error);
}

TEST(TracePipeFaultTest, FirstErrorWins) {
  TracePipe pipe(64);
  pipe.close_with_error("first");
  pipe.close_with_error("second");
  pipe.close();  // close after an error keeps the error
  std::vector<Addr> block;
  try {
    pipe.read(block);
    FAIL() << "expected the stored error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("first"), std::string::npos);
    EXPECT_EQ(std::string(e.what()).find("second"), std::string::npos);
  }
}

TEST(TracePipeFaultTest, PoisonWakesABlockedConsumer) {
  TracePipe pipe(64);
  std::string consumer_saw;
  std::thread consumer([&] {
    std::vector<Addr> block;
    try {
      pipe.read(block);  // blocks: nothing queued, not closed
    } catch (const std::exception& e) {
      consumer_saw = e.what();
    }
  });
  // Give the consumer time to park, then poison from the producer side.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  pipe.close_with_error("instrumented program crashed");
  consumer.join();
  EXPECT_NE(consumer_saw.find("instrumented program crashed"),
            std::string::npos)
      << consumer_saw;
}

TEST(TracePipeFaultTest, PoisonWakesABlockedProducer) {
  TracePipe pipe(4);  // tiny: the producer will hit backpressure
  std::string producer_saw;
  std::thread producer([&] {
    try {
      for (Addr a = 0;; ++a) pipe.write(std::vector<Addr>{a});
    } catch (const std::exception& e) {
      producer_saw = e.what();
    }
  });
  // Let the producer fill the pipe and block, then give up as the consumer.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  pipe.close_with_error("analysis aborted");
  producer.join();
  EXPECT_NE(producer_saw.find("analysis aborted"), std::string::npos)
      << producer_saw;
}

// --- Producer faults through the whole streaming analysis. ---

PardaOptions streaming_options(int np) {
  PardaOptions options;
  options.num_procs = np;
  options.chunk_words = 4096;
  // Safety net: a propagation bug fails the test instead of hanging it.
  options.run_options.op_timeout = std::chrono::milliseconds(5000);
  return options;
}

TEST(AnalyzeFileFaultTest, ProducerFaultPlanStopsTheRunCleanly) {
  std::vector<Addr> trace(200000);
  for (std::size_t i = 0; i < trace.size(); ++i) trace[i] = i % 997;
  const std::string path = temp_path("prodfault.trc");
  write_trace_binary(path, trace);

  const comm::FaultPlan plan =
      comm::FaultPlan::parse("op=producer,after_words=100000");
  PardaOptions options = streaming_options(2);
  options.run_options.fault_plan = &plan;

  try {
    parda_analyze_file(path, options, /*pipe_words=*/1 << 14);
    FAIL() << "expected the injected producer fault to surface";
  } catch (const comm::FaultInjectedError& e) {
    EXPECT_NE(std::string(e.what()).find("after 100000 words"),
              std::string::npos)
        << e.what();
  }
}

TEST(AnalyzeFileFaultTest, CorruptTraceSurfacesAsTraceFormatError) {
  const std::string path = write_fixture("analyze-trunc.trc", kTraceMagic,
                                         kTraceVersion, 100, {1, 2, 3});
  EXPECT_THROW(parda_analyze_file(path, streaming_options(2)),
               TraceFormatError);
}

TEST(AnalyzeFileFaultTest, CleanRunMatchesInMemoryAnalysis) {
  std::vector<Addr> trace(20000);
  for (std::size_t i = 0; i < trace.size(); ++i) trace[i] = (i * 7) % 501;
  const std::string path = temp_path("clean.trc");
  write_trace_binary(path, trace);

  const PardaResult streamed =
      parda_analyze_file(path, streaming_options(4), /*pipe_words=*/1 << 14);
  const PardaResult in_memory = parda_analyze(trace, streaming_options(4));
  EXPECT_EQ(streamed.hist.total(), in_memory.hist.total());
  EXPECT_EQ(streamed.hist.infinities(), in_memory.hist.infinities());
  EXPECT_EQ(streamed.hist.max_distance(), in_memory.hist.max_distance());
}

}  // namespace
}  // namespace parda
