// The .trz corruption and truncation matrix: every structural invariant of
// the chunked v2 layout (and the hardened v1 reader) must fail as a typed
// TraceFormatError naming the byte offset — never a crash, a hang, or a
// silently short trace. Tests mutate real archives byte-by-byte, fixing up
// CRCs with the exposed trz_crc32 when the corruption is supposed to get
// past the checksum and hit a deeper check.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "trace/trace_compress.hpp"
#include "trace/trace_io.hpp"
#include "util/prng.hpp"

namespace parda {
namespace {

std::string temp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

void put_u64(std::vector<std::uint8_t>& bytes, std::size_t off,
             std::uint64_t v) {
  ASSERT_LE(off + 8, bytes.size());
  std::memcpy(bytes.data() + off, &v, sizeof(v));
}

std::uint64_t get_u64(const std::vector<std::uint8_t>& bytes,
                      std::size_t off) {
  std::uint64_t v = 0;
  std::memcpy(&v, bytes.data() + off, sizeof(v));
  return v;
}

/// The writer's chunk checksum: CRC over the 8 LE base bytes, continued
/// over the payload. Re-derived here so corruption tests can re-seal an
/// index entry after editing the payload it describes.
std::uint32_t chunk_crc(std::uint64_t base,
                        std::span<const std::uint8_t> payload) {
  std::uint8_t base_le[8];
  std::memcpy(base_le, &base, sizeof(base_le));
  return trz_crc32(payload, trz_crc32({base_le, sizeof(base_le)}));
}

std::vector<Addr> walk_trace(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Addr> trace(n);
  Addr walk = 1 << 20;
  for (Addr& a : trace) {
    walk += rng.below(1 << 16);  // multi-byte varints, deterministic
    a = walk;
  }
  return trace;
}

/// Writes `trace` as a chunked archive and returns its raw bytes alongside
/// the path, ready for surgical corruption.
struct Archive {
  std::string path;
  std::vector<std::uint8_t> bytes;
};

Archive make_v2(const std::string& name, const std::vector<Addr>& trace,
                std::uint64_t chunk_refs) {
  Archive a;
  a.path = temp_path(name);
  write_trace_chunked(a.path, trace, chunk_refs);
  a.bytes = slurp(a.path);
  return a;
}

void expect_format_error(const std::string& path,
                         const std::string& what_substr) {
  try {
    read_trace_compressed(path);
    FAIL() << "expected TraceFormatError (" << what_substr << ")";
  } catch (const TraceFormatError& e) {
    EXPECT_NE(std::string(e.what()).find(what_substr), std::string::npos)
        << "actual: " << e.what();
    EXPECT_NE(std::string(e.what()).find("byte offset"), std::string::npos)
        << "actual: " << e.what();
  }
}

// --- v2 round trips ---------------------------------------------------------

TEST(TrzChunkedTest, RoundTripAcrossChunkBoundaries) {
  // Sizes straddling the chunk boundary: 0, 1, k-1, k, k+1, several chunks
  // with a short tail.
  const std::uint64_t k = 64;
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{63},
                              std::size_t{64}, std::size_t{65},
                              std::size_t{1000}}) {
    const std::vector<Addr> trace = walk_trace(n, 7 + n);
    const std::string path = temp_path("rt_" + std::to_string(n) + ".trz");
    write_trace_chunked(path, trace, k);
    EXPECT_EQ(read_trace_compressed(path), trace) << "n=" << n;
    std::remove(path.c_str());
  }
}

TEST(TrzChunkedTest, RoundTripExtremeAddresses) {
  const std::vector<Addr> trace{0, ~0ULL, 0, 1ULL << 63, 42, 1, ~0ULL - 1};
  const std::string path = temp_path("rt_extreme.trz");
  write_trace_chunked(path, trace, 3);
  EXPECT_EQ(read_trace_compressed(path), trace);
  std::remove(path.c_str());
}

TEST(TrzChunkedTest, IndexDescribesChunks) {
  const std::uint64_t k = 100;
  const std::vector<Addr> trace = walk_trace(250, 3);
  const Archive a = make_v2("index.trz", trace, k);
  ChunkedTrzFile file(a.path);
  EXPECT_EQ(file.total_references(), trace.size());
  EXPECT_EQ(file.chunk_refs(), k);
  ASSERT_EQ(file.num_chunks(), 3u);
  EXPECT_EQ(file.chunk(0).refs, 100u);
  EXPECT_EQ(file.chunk(1).refs, 100u);
  EXPECT_EQ(file.chunk(2).refs, 50u);  // short tail
  EXPECT_EQ(file.chunk(0).base, trace[0]);
  EXPECT_EQ(file.chunk(1).base, trace[100]);
  EXPECT_EQ(file.chunk(2).base, trace[200]);
  std::remove(a.path.c_str());
}

TEST(TrzChunkedTest, ChunksDecodeIndependently) {
  const std::uint64_t k = 100;
  const std::vector<Addr> trace = walk_trace(250, 4);
  const Archive a = make_v2("seek.trz", trace, k);
  ChunkedTrzFile file(a.path);
  // Decode only the middle chunk — no serial scan from the front.
  std::vector<Addr> middle;
  file.decode_chunk(1, middle);
  EXPECT_EQ(middle, std::vector<Addr>(trace.begin() + 100,
                                      trace.begin() + 200));
  // decode_chunk appends: a second chunk lands after the first.
  file.decode_chunk(2, middle);
  ASSERT_EQ(middle.size(), 150u);
  EXPECT_EQ(middle.back(), trace.back());
  std::remove(a.path.c_str());
}

TEST(TrzChunkedTest, EmptyTraceIsHeaderOnly) {
  const Archive a = make_v2("empty.trz", {}, 1 << 10);
  EXPECT_EQ(a.bytes.size(), kTrzV2HeaderBytes);
  EXPECT_TRUE(read_trace_compressed(a.path).empty());
  ChunkedTrzFile file(a.path);
  EXPECT_EQ(file.num_chunks(), 0u);
  std::remove(a.path.c_str());
}

// --- v2 corruption matrix ---------------------------------------------------
// One fixture archive, one mutation per test, one typed error per mutation.

class TrzCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace_ = walk_trace(250, 5);
    arch_ = make_v2("corrupt.trz", trace_, 100);
  }
  void TearDown() override { std::remove(arch_.path.c_str()); }

  /// Rewrites the archive with `bytes` and expects the typed failure.
  void expect_corrupt(const std::vector<std::uint8_t>& bytes,
                      const std::string& what_substr) {
    spit(arch_.path, bytes);
    expect_format_error(arch_.path, what_substr);
  }

  std::vector<Addr> trace_;
  Archive arch_;
};

TEST_F(TrzCorruptionTest, FileShorterThanMagic) {
  expect_corrupt({'P', 'A', 'R'}, "shorter than the 8-byte magic");
}

TEST_F(TrzCorruptionTest, BadMagic) {
  auto bytes = arch_.bytes;
  bytes[0] = 'X';
  expect_corrupt(bytes, "bad trz magic");
}

TEST_F(TrzCorruptionTest, TruncatedVersionField) {
  auto bytes = arch_.bytes;
  bytes.resize(12);
  expect_corrupt(bytes, "shorter than its version field");
}

TEST_F(TrzCorruptionTest, UnsupportedVersion) {
  auto bytes = arch_.bytes;
  put_u64(bytes, 8, 3);
  expect_corrupt(bytes, "unsupported trz version 3");
}

TEST_F(TrzCorruptionTest, TruncatedV2Header) {
  auto bytes = arch_.bytes;
  bytes.resize(kTrzV2HeaderBytes - 1);
  expect_corrupt(bytes, "shorter than the 40-byte v2 header");
}

TEST_F(TrzCorruptionTest, ZeroRefsPerChunk) {
  auto bytes = arch_.bytes;
  put_u64(bytes, 24, 0);
  expect_corrupt(bytes, "zero refs-per-chunk");
}

TEST_F(TrzCorruptionTest, ChunkCountMismatch) {
  auto bytes = arch_.bytes;
  put_u64(bytes, 32, get_u64(bytes, 32) + 1);
  expect_corrupt(bytes, "chunk count mismatch");
}

TEST_F(TrzCorruptionTest, IndexTruncated) {
  auto bytes = arch_.bytes;
  // Cut the file inside the chunk index (3 chunks × 24 bytes of index).
  bytes.resize(kTrzV2HeaderBytes + kTrzIndexEntryBytes + 4);
  expect_corrupt(bytes, "chunk index extends past the end of the file");
}

TEST_F(TrzCorruptionTest, CrcFieldHighBitsSet) {
  auto bytes = arch_.bytes;
  const std::size_t crc_off = kTrzV2HeaderBytes + 16;  // chunk 0's crc slot
  put_u64(bytes, crc_off, get_u64(bytes, crc_off) | (1ULL << 40));
  expect_corrupt(bytes, "corrupt crc field in chunk 0");
}

TEST_F(TrzCorruptionTest, PayloadLengthOutsideVarintEnvelope) {
  auto bytes = arch_.bytes;
  // 100 refs = 99 varints of 1..10 bytes; 10000 declared bytes cannot be a
  // well-formed delta stream no matter what they contain.
  put_u64(bytes, kTrzV2HeaderBytes + 8, 10000);
  expect_corrupt(bytes, "declares 10000 payload bytes for 100 references");
}

TEST_F(TrzCorruptionTest, PayloadTruncatedAtEndOfFile) {
  auto bytes = arch_.bytes;
  bytes.resize(bytes.size() - 5);
  expect_corrupt(bytes, "payload extends past the end of the file");
}

TEST_F(TrzCorruptionTest, TrailingBytesAfterPayload) {
  auto bytes = arch_.bytes;
  bytes.push_back(0);
  expect_corrupt(bytes, "trailing bytes after the last chunk payload");
}

TEST_F(TrzCorruptionTest, PayloadBitFlipFailsCrc) {
  auto bytes = arch_.bytes;
  ChunkedTrzFile file(arch_.path);  // locate chunk 1's payload
  bytes[static_cast<std::size_t>(file.chunk(1).payload_offset) + 3] ^= 0x01;
  expect_corrupt(bytes, "chunk 1 crc mismatch");
}

TEST_F(TrzCorruptionTest, BaseAddressCorruptionFailsCrc) {
  // The CRC seeds from the base's LE bytes, so index corruption of the
  // base (which never transits the payload) is still caught.
  auto bytes = arch_.bytes;
  put_u64(bytes, kTrzV2HeaderBytes, get_u64(bytes, kTrzV2HeaderBytes) ^ 1);
  expect_corrupt(bytes, "chunk 0 crc mismatch");
}

TEST_F(TrzCorruptionTest, ResealedExtraPayloadByteIsLeftOver) {
  // An attacker (or bitrot with a recomputed checksum) can pass the CRC;
  // the decoder still demands the payload decode to exactly refs-1 deltas.
  auto bytes = arch_.bytes;
  ChunkedTrzFile file(arch_.path);
  const TrzChunk last = file.chunk(2);
  bytes.push_back(0x00);  // one extra 1-byte varint at the file tail
  const std::size_t entry = static_cast<std::size_t>(
      kTrzV2HeaderBytes + 2 * kTrzIndexEntryBytes);
  put_u64(bytes, entry + 8, last.payload_bytes + 1);
  put_u64(bytes, entry + 16,
          chunk_crc(last.base,
                    {bytes.data() + last.payload_offset,
                     static_cast<std::size_t>(last.payload_bytes) + 1}));
  expect_corrupt(bytes, "payload bytes left over");
}

TEST_F(TrzCorruptionTest, ResealedTruncatedPayloadExhausts) {
  auto bytes = arch_.bytes;
  ChunkedTrzFile file(arch_.path);
  const TrzChunk last = file.chunk(2);
  bytes.pop_back();  // drop the final payload byte, then re-seal
  const std::size_t entry = static_cast<std::size_t>(
      kTrzV2HeaderBytes + 2 * kTrzIndexEntryBytes);
  put_u64(bytes, entry + 8, last.payload_bytes - 1);
  put_u64(bytes, entry + 16,
          chunk_crc(last.base,
                    {bytes.data() + last.payload_offset,
                     static_cast<std::size_t>(last.payload_bytes) - 1}));
  expect_corrupt(bytes, "truncated payload");
}

TEST_F(TrzCorruptionTest, ResealedVarintOverrun) {
  // A delta whose continuation bits never clear within 10 bytes: passes
  // the envelope and the CRC (re-sealed), dies as a typed overrun.
  const std::vector<Addr> two = {42, 43};
  const Archive small = make_v2("overrun.trz", two, 16);
  auto bytes = small.bytes;
  const auto old_payload = get_u64(bytes, kTrzV2HeaderBytes + 8);
  bytes.resize(bytes.size() - static_cast<std::size_t>(old_payload));
  const std::vector<std::uint8_t> evil(10, 0x80);  // 10 continuation bytes
  bytes.insert(bytes.end(), evil.begin(), evil.end());
  put_u64(bytes, kTrzV2HeaderBytes + 8, evil.size());
  put_u64(bytes, kTrzV2HeaderBytes + 16, chunk_crc(42, evil));
  spit(small.path, bytes);
  expect_format_error(small.path, "varint overrun");
  std::remove(small.path.c_str());
}

TEST_F(TrzCorruptionTest, V1ArchiveRejectedByChunkedReaderWithUpgradeHint) {
  const std::string v1 = temp_path("still_v1.trz");
  write_trace_compressed(v1, trace_);
  EXPECT_EQ(read_trace_compressed(v1), trace_);  // plain reader: fine
  try {
    ChunkedTrzFile file(v1);
    FAIL() << "expected TraceFormatError";
  } catch (const TraceFormatError& e) {
    EXPECT_NE(std::string(e.what()).find("trace_tool convert"),
              std::string::npos)
        << "actual: " << e.what();
  }
  std::remove(v1.c_str());
}

// --- v1 hardening -----------------------------------------------------------

class TrzV1Test : public ::testing::Test {
 protected:
  void SetUp() override {
    trace_ = walk_trace(300, 6);
    path_ = temp_path("v1.trz");
    write_trace_compressed(path_, trace_);
    bytes_ = slurp(path_);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::vector<Addr> trace_;
  std::string path_;
  std::vector<std::uint8_t> bytes_;
};

TEST_F(TrzV1Test, TruncatedV1Header) {
  auto bytes = bytes_;
  bytes.resize(kTrzV1HeaderBytes - 1);
  spit(path_, bytes);
  expect_format_error(path_, "shorter than the 32-byte v1 header");
}

TEST_F(TrzV1Test, PayloadShorterThanDeclared) {
  auto bytes = bytes_;
  bytes.resize(bytes.size() - 3);
  spit(path_, bytes);
  expect_format_error(path_, "trz payload truncated");
}

TEST_F(TrzV1Test, TrailingBytesAfterPayload) {
  auto bytes = bytes_;
  bytes.push_back(0);
  spit(path_, bytes);
  expect_format_error(path_, "trailing bytes after the declared trz payload");
}

TEST_F(TrzV1Test, CountLargerThanPayloadDecodes) {
  auto bytes = bytes_;
  put_u64(bytes, 16, trace_.size() + 1);
  spit(path_, bytes);
  expect_format_error(path_, "payload exhausted");
}

TEST_F(TrzV1Test, CountSmallerThanPayloadLeavesBytesOver) {
  auto bytes = bytes_;
  put_u64(bytes, 16, trace_.size() - 1);
  spit(path_, bytes);
  expect_format_error(path_, "payload bytes left over");
}

TEST_F(TrzV1Test, InMemoryDecompressorThrowsTypedErrors) {
  const auto payload = compress_trace(trace_);
  // Truncation and count mismatch surface as the same typed errors even
  // without a file behind the bytes.
  EXPECT_THROW(decompress_trace({payload.data(), payload.size() - 1},
                                trace_.size()),
               TraceFormatError);
  EXPECT_THROW(decompress_trace(payload, trace_.size() + 1),
               TraceFormatError);
  EXPECT_THROW(decompress_trace(payload, trace_.size() - 1),
               TraceFormatError);
  const std::vector<std::uint8_t> overrun(10, 0x80);
  EXPECT_THROW(decompress_trace(overrun, 1), TraceFormatError);
}

TEST_F(TrzV1Test, Crc32KnownAnswer) {
  // The IEEE check value: crc32("123456789") = 0xCBF43926. Pins the
  // polynomial and reflection so archives stay portable across builds.
  const char* s = "123456789";
  EXPECT_EQ(trz_crc32({reinterpret_cast<const std::uint8_t*>(s), 9}),
            0xCBF43926u);
  // Seed-chaining splits anywhere: crc(a+b) == crc(b, seed=crc(a)).
  const auto* p = reinterpret_cast<const std::uint8_t*>(s);
  EXPECT_EQ(trz_crc32({p + 4, 5}, trz_crc32({p, 4})), 0xCBF43926u);
}

}  // namespace
}  // namespace parda
