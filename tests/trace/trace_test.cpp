#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "trace/trace_compress.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_pipe.hpp"
#include "util/prng.hpp"

namespace parda {
namespace {

std::string temp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(TracePipeTest, SingleBlockRoundTrip) {
  TracePipe pipe(1024);
  pipe.write(std::vector<Addr>{1, 2, 3});
  pipe.close();
  std::vector<Addr> block;
  ASSERT_TRUE(pipe.read(block));
  EXPECT_EQ(block, (std::vector<Addr>{1, 2, 3}));
  EXPECT_FALSE(pipe.read(block));
}

TEST(TracePipeTest, EmptyWriteIsNoOp) {
  TracePipe pipe(16);
  pipe.write(std::vector<Addr>{});
  pipe.close();
  std::vector<Addr> block;
  EXPECT_FALSE(pipe.read(block));
  EXPECT_EQ(pipe.words_written(), 0u);
}

TEST(TracePipeTest, ReadWordsConcatenatesBlocks) {
  TracePipe pipe(1024);
  pipe.write(std::vector<Addr>{1, 2});
  pipe.write(std::vector<Addr>{3, 4, 5});
  pipe.close();
  EXPECT_EQ(pipe.read_words(4), (std::vector<Addr>{1, 2, 3, 4}));
  EXPECT_EQ(pipe.read_words(4), (std::vector<Addr>{5}));
  EXPECT_TRUE(pipe.read_words(4).empty());
}

TEST(TracePipeTest, ReadWordsSplitsLargeBlock) {
  TracePipe pipe(1024);
  std::vector<Addr> big(100);
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = i;
  pipe.write(big);
  pipe.close();
  std::vector<Addr> all;
  while (true) {
    const auto part = pipe.read_words(7);
    if (part.empty()) break;
    all.insert(all.end(), part.begin(), part.end());
  }
  EXPECT_EQ(all, big);
}

TEST(TracePipeTest, BackpressureBlocksProducer) {
  TracePipe pipe(8);  // tiny capacity
  std::vector<Addr> produced;
  std::thread producer([&] {
    for (Addr a = 0; a < 1000; ++a) {
      pipe.write(std::vector<Addr>{a});
      produced.push_back(a);
    }
    pipe.close();
  });
  std::vector<Addr> consumed;
  while (true) {
    const auto part = pipe.read_words(3);
    if (part.empty()) break;
    consumed.insert(consumed.end(), part.begin(), part.end());
  }
  producer.join();
  ASSERT_EQ(consumed.size(), 1000u);
  for (Addr a = 0; a < 1000; ++a) EXPECT_EQ(consumed[a], a);
  EXPECT_EQ(pipe.words_written(), 1000u);
}

TEST(TracePipeTest, OversizedBlockStillPasses) {
  TracePipe pipe(4);
  std::thread producer([&] {
    pipe.write(std::vector<Addr>{1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
    pipe.close();
  });
  const auto all = pipe.read_words(100);
  producer.join();
  EXPECT_EQ(all.size(), 10u);
}

TEST(TraceIoTest, BinaryRoundTrip) {
  Xoshiro256 rng(1);
  std::vector<Addr> trace(10000);
  for (Addr& a : trace) a = rng();
  const std::string path = temp_path("roundtrip.trc");
  write_trace_binary(path, trace);
  EXPECT_EQ(read_trace_binary(path), trace);
  std::remove(path.c_str());
}

TEST(TraceIoTest, BinaryEmptyTrace) {
  const std::string path = temp_path("empty.trc");
  write_trace_binary(path, std::vector<Addr>{});
  EXPECT_TRUE(read_trace_binary(path).empty());
  std::remove(path.c_str());
}

TEST(TraceIoTest, TextRoundTrip) {
  const std::vector<Addr> trace{0, 42, ~0ULL, 7};
  const std::string path = temp_path("roundtrip.txt");
  write_trace_text(path, trace);
  EXPECT_EQ(read_trace_text(path), trace);
  std::remove(path.c_str());
}

TEST(TraceIoTest, StreamingReaderChunks) {
  std::vector<Addr> trace(5000);
  for (std::size_t i = 0; i < trace.size(); ++i) trace[i] = i * 3;
  const std::string path = temp_path("stream.trc");
  write_trace_binary(path, trace);

  BinaryTraceReader reader(path);
  EXPECT_EQ(reader.total_references(), 5000u);
  std::vector<Addr> all;
  while (true) {
    const auto part = reader.read_words(777);
    if (part.empty()) break;
    all.insert(all.end(), part.begin(), part.end());
  }
  EXPECT_EQ(all, trace);
  std::remove(path.c_str());
}

TEST(TraceIoTest, RejectsGarbageFile) {
  const std::string path = temp_path("garbage.trc");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a trace file at all", f);
  std::fclose(f);
  EXPECT_THROW(read_trace_binary(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(TraceCompressTest, RoundTripRandom) {
  Xoshiro256 rng(9);
  std::vector<Addr> trace(20000);
  for (Addr& a : trace) a = rng();
  const auto bytes = compress_trace(trace);
  EXPECT_EQ(decompress_trace(bytes, trace.size()), trace);
}

TEST(TraceCompressTest, RoundTripEmpty) {
  EXPECT_TRUE(decompress_trace(compress_trace({}), 0).empty());
}

TEST(TraceCompressTest, SequentialTraceCompressesToOneBytePerRef) {
  std::vector<Addr> trace(10000);
  for (std::size_t i = 0; i < trace.size(); ++i) trace[i] = 4096 + i;
  const auto bytes = compress_trace(trace);
  // delta = +1 everywhere after the first: 1 varint byte each.
  EXPECT_LE(bytes.size(), trace.size() + 8);
  EXPECT_EQ(decompress_trace(bytes, trace.size()), trace);
}

TEST(TraceCompressTest, ExtremeValues) {
  const std::vector<Addr> trace{0, ~0ULL, 0, 1ULL << 63, 42};
  const auto bytes = compress_trace(trace);
  EXPECT_EQ(decompress_trace(bytes, trace.size()), trace);
}

TEST(TraceCompressTest, TruncatedPayloadThrows) {
  const std::vector<Addr> trace{1, 2, 3, 1000000};
  auto bytes = compress_trace(trace);
  bytes.pop_back();
  EXPECT_THROW(decompress_trace(bytes, trace.size()), std::runtime_error);
}

TEST(TraceCompressTest, FileRoundTrip) {
  Xoshiro256 rng(11);
  std::vector<Addr> trace(5000);
  Addr walk = 1 << 20;
  for (Addr& a : trace) {
    walk += rng.below(64);
    a = walk;
  }
  const std::string path = temp_path("roundtrip.trz");
  write_trace_compressed(path, trace);
  EXPECT_EQ(read_trace_compressed(path), trace);
  // Ascending small deltas: far below 8 bytes per reference.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  EXPECT_LT(size, static_cast<long>(trace.size() * 3));
  std::remove(path.c_str());
}

TEST(TraceCompressTest, RejectsWrongMagic) {
  const std::string path = temp_path("wrong_magic.trz");
  write_trace_binary(path, std::vector<Addr>{1, 2, 3});  // .trc layout
  EXPECT_THROW(read_trace_compressed(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(TraceIoTest, MissingFileThrows) {
  EXPECT_THROW(read_trace_binary(temp_path("does_not_exist.trc")),
               std::runtime_error);
  EXPECT_THROW(read_trace_text(temp_path("does_not_exist.txt")),
               std::runtime_error);
}

}  // namespace
}  // namespace parda
