// Tests for the zero-copy data-movement layer: move-in/move-out sends,
// in-place view receives, shared-block collectives, and the
// bytes_copied / bytes_shared accounting that proves no byte was touched.
// Pointer identity across rank threads is observable because the runtime
// is thread-backed: a moved or shared buffer keeps its address.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "comm/comm.hpp"

namespace parda::comm {
namespace {

TEST(CommZeroCopyTest, MoveSendRecvPreservesStorage) {
  std::atomic<const void*> sent{nullptr};
  std::atomic<const void*> received{nullptr};
  const RunStats stats = run(2, [&](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<std::uint64_t> data(1000, 7);
      sent.store(data.data());
      comm.send(1, 1, std::move(data));
    } else {
      const std::vector<std::uint64_t> got = comm.recv<std::uint64_t>(0, 1);
      ASSERT_EQ(got.size(), 1000u);
      EXPECT_EQ(got[0], 7u);
      received.store(got.data());
    }
  });
  // The receiver's vector is the sender's vector, moved — not a copy.
  EXPECT_EQ(sent.load(), received.load());
  EXPECT_EQ(stats.total_bytes_copied(), 0u);
  EXPECT_EQ(stats.total_bytes_shared(), 8000u);
  EXPECT_EQ(stats.total_bytes(), 8000u);
}

TEST(CommZeroCopyTest, CopySendIsCountedAsCopied) {
  const RunStats stats = run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const std::vector<std::uint64_t> data(10, 3);  // lvalue: copy path
      comm.send(1, 1, data);
    } else {
      EXPECT_EQ(comm.recv<std::uint64_t>(0, 1).size(), 10u);
    }
  });
  // One copy into the message, one copy out of the untyped payload.
  EXPECT_EQ(stats.total_bytes_copied(), 160u);
  EXPECT_EQ(stats.total_bytes(), 80u);
}

TEST(CommZeroCopyTest, RecvViewAliasesMovedBuffer) {
  std::atomic<const void*> sent{nullptr};
  std::atomic<const void*> viewed{nullptr};
  const RunStats stats = run(2, [&](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<std::uint64_t> data(512);
      for (std::size_t i = 0; i < data.size(); ++i) data[i] = i;
      sent.store(data.data());
      comm.send(1, 4, std::move(data));
    } else {
      const View<std::uint64_t> v = comm.recv_view<std::uint64_t>(0, 4);
      ASSERT_EQ(v.size(), 512u);
      EXPECT_EQ(v[17], 17u);
      viewed.store(v.data());
    }
  });
  EXPECT_EQ(sent.load(), viewed.load());
  EXPECT_EQ(stats.total_bytes_copied(), 0u);
}

TEST(CommZeroCopyTest, BroadcastViewPublishesOneBlock) {
  constexpr int kNp = 5;
  std::atomic<const void*> root_block{nullptr};
  std::atomic<int> aliased{0};
  const RunStats stats = run(kNp, [&](Comm& comm) {
    std::vector<std::uint64_t> data;
    if (comm.rank() == 2) {
      data.assign(4096, 0);
      for (std::size_t i = 0; i < data.size(); ++i) data[i] = i * 3;
      root_block.store(data.data());
    }
    const View<std::uint64_t> v =
        comm.broadcast_view(std::move(data), 2, 12);
    ASSERT_EQ(v.size(), 4096u);
    EXPECT_EQ(v[100], 300u);
    if (v.data() == root_block.load()) aliased.fetch_add(1);
  });
  // Every rank (root included) reads the same physical block.
  EXPECT_EQ(aliased.load(), kNp);
  EXPECT_EQ(stats.total_bytes_copied(), 0u);
  EXPECT_GT(stats.total_bytes_shared(), 0u);
}

TEST(CommZeroCopyTest, ScattervViewSlicesOneBlock) {
  constexpr int kNp = 4;
  std::atomic<const std::uint64_t*> base{nullptr};
  std::atomic<int> aliased{0};
  const RunStats stats = run(kNp, [&](Comm& comm) {
    std::vector<std::uint64_t> block;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> slices;
    if (comm.rank() == 1) {
      block.resize(100);
      for (std::size_t i = 0; i < block.size(); ++i) block[i] = i;
      base.store(block.data());
      // Ragged slices incl. the root's own and an empty one for rank 3.
      slices = {{0, 10}, {10, 50}, {60, 40}, {100, 0}};
    }
    const View<std::uint64_t> mine = comm.scatterv_view(
        std::move(block),
        std::span<const std::pair<std::uint64_t, std::uint64_t>>(slices), 1,
        30);
    switch (comm.rank()) {
      case 0:
        ASSERT_EQ(mine.size(), 10u);
        EXPECT_EQ(mine[9], 9u);
        break;
      case 1:  // self-scatter: the root's slice of its own block
        ASSERT_EQ(mine.size(), 50u);
        EXPECT_EQ(mine[0], 10u);
        break;
      case 2:
        ASSERT_EQ(mine.size(), 40u);
        EXPECT_EQ(mine[39], 99u);
        break;
      default:
        EXPECT_TRUE(mine.empty());
    }
    if (!mine.empty() && mine.data() == base.load() + mine[0]) {
      aliased.fetch_add(1);
    }
  });
  EXPECT_EQ(aliased.load(), 3);  // every non-empty slice aliases the block
  EXPECT_EQ(stats.total_bytes_copied(), 0u);
  EXPECT_EQ(stats.total_bytes_shared(), 100u * 8u - 50u * 8u);
}

TEST(CommZeroCopyTest, ScattervMoveOverloadMovesPieces) {
  const RunStats stats = run(3, [](Comm& comm) {
    std::vector<std::vector<int>> pieces;
    if (comm.rank() == 0) pieces = {{1}, {2, 2}, {3, 3, 3}};
    const std::vector<int> mine =
        comm.scatterv(std::move(pieces), 0, 31);
    ASSERT_EQ(mine.size(), static_cast<std::size_t>(comm.rank()) + 1);
    EXPECT_EQ(mine[0], comm.rank() + 1);
  });
  EXPECT_EQ(stats.total_bytes_copied(), 0u);
}

TEST(CommZeroCopyTest, GatherOfMovedBuffersNeverCopies) {
  const RunStats stats = run(6, [](Comm& comm) {
    std::vector<std::uint64_t> mine(
        static_cast<std::size_t>(comm.rank()) + 1,
        static_cast<std::uint64_t>(comm.rank()));
    const auto all = comm.gather(std::move(mine), 2, 11);
    if (comm.rank() == 2) {
      ASSERT_EQ(all.size(), 6u);
      for (int r = 0; r < 6; ++r) {
        ASSERT_EQ(all[static_cast<std::size_t>(r)].size(),
                  static_cast<std::size_t>(r) + 1);
        EXPECT_EQ(all[static_cast<std::size_t>(r)][0],
                  static_cast<std::uint64_t>(r));
      }
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
  // Binomial relays forward handles and the root moves each contribution
  // out: zero copies end to end.
  EXPECT_EQ(stats.total_bytes_copied(), 0u);
}

TEST(CommZeroCopyTest, ZeroLengthPayloads) {
  run(3, [](Comm& comm) {
    // Move-send of an empty vector.
    if (comm.rank() == 0) {
      comm.send(1, 1, std::vector<std::uint64_t>{});
    } else if (comm.rank() == 1) {
      EXPECT_TRUE(comm.recv<std::uint64_t>(0, 1).empty());
    }
    // Empty broadcast_view.
    const View<std::uint64_t> v =
        comm.broadcast_view(std::vector<std::uint64_t>{}, 0, 2);
    EXPECT_TRUE(v.empty());
    // scatterv_view where every slice is empty.
    std::vector<std::uint64_t> block;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> slices;
    if (comm.rank() == 0) slices = {{0, 0}, {0, 0}, {0, 0}};
    const View<std::uint64_t> s = comm.scatterv_view(
        std::move(block),
        std::span<const std::pair<std::uint64_t, std::uint64_t>>(slices), 0,
        3);
    EXPECT_TRUE(s.empty());
  });
}

TEST(CommZeroCopyTest, SingleRankCollectivesSelfDeliver) {
  run(1, [](Comm& comm) {
    const auto b = comm.broadcast(std::vector<int>{5, 6}, 0, 1);
    EXPECT_EQ(b, (std::vector<int>{5, 6}));
    const View<int> bv = comm.broadcast_view(std::vector<int>{7}, 0, 2);
    ASSERT_EQ(bv.size(), 1u);
    EXPECT_EQ(bv[0], 7);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> slices{{1, 2}};
    const View<int> sv = comm.scatterv_view(
        std::vector<int>{9, 10, 11},
        std::span<const std::pair<std::uint64_t, std::uint64_t>>(slices), 0,
        3);
    ASSERT_EQ(sv.size(), 2u);
    EXPECT_EQ(sv[0], 10);
    const auto g = comm.gather(std::vector<int>{1}, 0, 4);
    ASSERT_EQ(g.size(), 1u);
    EXPECT_EQ(g[0], (std::vector<int>{1}));
  });
}

TEST(CommZeroCopyTest, ViewKeepsBlockAliveAfterRootMovesOn) {
  // The root drops its handle immediately; receivers' views must keep the
  // refcounted block alive (lifetime is the refcount, not the root).
  run(4, [](Comm& comm) {
    std::vector<std::uint64_t> block;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> slices;
    if (comm.rank() == 0) {
      block.assign(400, 42);
      slices = {{0, 100}, {100, 100}, {200, 100}, {300, 100}};
    }
    View<std::uint64_t> mine = comm.scatterv_view(
        std::move(block),
        std::span<const std::pair<std::uint64_t, std::uint64_t>>(slices), 0,
        5);
    if (comm.rank() == 0) mine = View<std::uint64_t>{};  // root lets go
    comm.barrier();  // everyone else reads after the root dropped its view
    if (comm.rank() != 0) {
      ASSERT_EQ(mine.size(), 100u);
      for (std::uint64_t x : mine.span()) EXPECT_EQ(x, 42u);
    }
  });
}

TEST(CommZeroCopyTest, BroadcastStillReturnsOwnedVectors) {
  // The legacy vector-returning broadcast on top of the shared transport.
  const RunStats stats = run(8, [](Comm& comm) {
    std::vector<std::uint64_t> data;
    if (comm.rank() == 3) data.assign(1 << 12, 9);
    data = comm.broadcast(std::move(data), 3, 21);
    ASSERT_EQ(data.size(), std::size_t{1} << 12);
    EXPECT_EQ(data.front(), 9u);
    data[0] = static_cast<std::uint64_t>(comm.rank());  // owned: mutable
  });
  // Transport is shared; each rank pays at most one materializing copy,
  // so total copies stay below np * payload (the old cost was a copy per
  // hop on top of that).
  constexpr std::uint64_t kPayload = (std::uint64_t{1} << 12) * 8;
  EXPECT_LE(stats.total_bytes_copied(), 8 * kPayload);
  EXPECT_GE(stats.total_bytes_shared(), 7 * kPayload);
}

}  // namespace
}  // namespace parda::comm
