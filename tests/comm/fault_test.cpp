// Fault-tolerance tests for the comm runtime: abort propagation, recv and
// barrier deadlines, the stall watchdog, and the deterministic FaultPlan.
//
// The acceptance bar (ISSUE 2): every fault injected by the FaultPlan
// matrix must end the run with the injected error rethrown by run() and a
// RankAbortedError attributed to the originating rank on every blocked
// rank, within the deadline — zero hangs. These tests run under TSAN in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "comm/comm.hpp"
#include "comm/fault.hpp"
#include "util/check.hpp"

namespace parda::comm {
namespace {

using std::chrono::milliseconds;

/// Safety net for every test here: generous per-op deadlines so a bug in
/// abort propagation fails the test instead of hanging the suite.
RunOptions guarded() {
  RunOptions opts;
  opts.op_timeout = milliseconds(5000);
  // The fault-injection sweep (scripts/run_fault_injection.sh) reruns
  // the suite per wire: teardown guarantees must not depend on the
  // transport moving the bytes.
  if (const char* wire = std::getenv("PARDA_FAULT_TRANSPORT")) {
    if (*wire != '\0') opts.transport = TransportSpec::parse(wire);
  }
  return opts;
}

/// Runs `body` on np ranks under `opts` (whose plan makes rank `faulty`
/// throw), with a trailing barrier so every surviving rank deterministically
/// blocks until the poisoning reaches it. Asserts run() rethrows the
/// injected error and every other rank observes a RankAbortedError
/// attributed to `faulty`.
template <typename Body>
void expect_attributed_abort(int np, int faulty, const RunOptions& opts,
                             Body&& body) {
  std::vector<int> observed_origin(static_cast<std::size_t>(np), -100);
  EXPECT_THROW(
      run(np,
          [&](Comm& comm) {
            try {
              body(comm);
              // The faulty rank never gets here, so survivors park in the
              // barrier until the abort wakes them.
              comm.barrier();
            } catch (const RankAbortedError& e) {
              observed_origin[static_cast<std::size_t>(comm.rank())] =
                  e.origin_rank();
              throw;
            }
          },
          opts),
      FaultInjectedError);
  for (int r = 0; r < np; ++r) {
    if (r == faulty) continue;
    EXPECT_EQ(observed_origin[static_cast<std::size_t>(r)], faulty)
        << "rank " << r << " did not see an abort attributed to rank "
        << faulty;
  }
}

TEST(FaultPlanTest, ParsesAndDescribesRoundTrip) {
  const FaultPlan plan = FaultPlan::parse(
      "rank=1,op=recv,n=3;rank=0,op=send,n=2,action=delay,ms=50;"
      "op=producer,after_words=10000");
  ASSERT_EQ(plan.points().size(), 3u);
  EXPECT_EQ(plan.points()[0].rank, 1);
  EXPECT_EQ(plan.points()[0].op, FaultOp::kRecv);
  EXPECT_EQ(plan.points()[0].n, 3u);
  EXPECT_EQ(plan.points()[1].action, FaultPoint::Action::kDelay);
  EXPECT_EQ(plan.points()[1].delay_ms, 50u);
  ASSERT_TRUE(plan.producer_fail_after().has_value());
  EXPECT_EQ(*plan.producer_fail_after(), 10000u);
  // describe() round-trips through the grammar.
  const FaultPlan reparsed = FaultPlan::parse(plan.describe());
  EXPECT_EQ(reparsed.describe(), plan.describe());
}

TEST(FaultPlanTest, MatchFiresOnlyAtTheNamedPoint) {
  const FaultPlan plan = FaultPlan::parse("rank=1,op=recv,n=3");
  EXPECT_EQ(plan.match(1, FaultOp::kRecv, 3), &plan.points()[0]);
  EXPECT_EQ(plan.match(1, FaultOp::kRecv, 2), nullptr);
  EXPECT_EQ(plan.match(0, FaultOp::kRecv, 3), nullptr);
  EXPECT_EQ(plan.match(1, FaultOp::kSend, 3), nullptr);
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("rank=1"), CheckError);          // missing op
  EXPECT_THROW(FaultPlan::parse("op=recv"), CheckError);         // missing rank
  EXPECT_THROW(FaultPlan::parse("rank=1,op=frobnicate"), CheckError);
  EXPECT_THROW(FaultPlan::parse("rank=x,op=recv"), CheckError);
  EXPECT_THROW(FaultPlan::parse("rank=1,op=recv,action=delay"), CheckError);
  EXPECT_THROW(FaultPlan::parse("rank=1,op=recv,bogus=1"), CheckError);
}

TEST(FaultPlanTest, FromEnvReadsPardaFaultPlan) {
  ::setenv("PARDA_FAULT_PLAN", "rank=2,op=barrier,n=1", 1);
  const FaultPlan plan = FaultPlan::from_env();
  ::unsetenv("PARDA_FAULT_PLAN");
  ASSERT_EQ(plan.points().size(), 1u);
  EXPECT_EQ(plan.points()[0].rank, 2);
  EXPECT_EQ(plan.points()[0].op, FaultOp::kBarrier);
  EXPECT_TRUE(FaultPlan::from_env().empty());
}

TEST(FaultPlanTest, RandomPlansAreDeterministic) {
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    const FaultPlan a = FaultPlan::random(seed, 4);
    const FaultPlan b = FaultPlan::random(seed, 4);
    EXPECT_EQ(a.describe(), b.describe());
    ASSERT_EQ(a.points().size(), 1u);
    EXPECT_GE(a.points()[0].rank, 0);
    EXPECT_LT(a.points()[0].rank, 4);
    EXPECT_LT(a.points()[0].n, 4u);
  }
}

// --- The rank-throws-during-{send, recv, barrier, collective} matrix. ---

TEST(FaultMatrixTest, ThrowDuringSend) {
  const FaultPlan plan = FaultPlan::parse("rank=1,op=send,n=0");
  RunOptions opts = guarded();
  opts.fault_plan = &plan;
  // Ring: everyone sends right, receives from the left. Rank 1's send
  // faults before delivery, so rank 2 blocks until poisoned.
  expect_attributed_abort(4, 1, opts, [](Comm& comm) {
    comm.send((comm.rank() + 1) % 4, 1, std::vector<int>{comm.rank()});
    comm.recv<int>((comm.rank() + 3) % 4, 1);
  });
}

TEST(FaultMatrixTest, ThrowDuringRecv) {
  const FaultPlan plan = FaultPlan::parse("rank=2,op=recv,n=0");
  RunOptions opts = guarded();
  opts.fault_plan = &plan;
  expect_attributed_abort(4, 2, opts, [](Comm& comm) {
    comm.send((comm.rank() + 1) % 4, 1, std::vector<int>{comm.rank()});
    comm.recv<int>((comm.rank() + 3) % 4, 1);
  });
}

TEST(FaultMatrixTest, ThrowDuringBarrier) {
  const FaultPlan plan = FaultPlan::parse("rank=0,op=barrier,n=1");
  RunOptions opts = guarded();
  opts.fault_plan = &plan;
  expect_attributed_abort(4, 0, opts, [](Comm& comm) {
    comm.barrier();
    comm.barrier();  // rank 0 faults entering this one
  });
}

TEST(FaultMatrixTest, ThrowDuringCollective) {
  // Rank 3 dies inside the allreduce (its first collective-internal recv,
  // the broadcast hop from its tree parent).
  const FaultPlan plan = FaultPlan::parse("rank=3,op=recv,n=0");
  RunOptions opts = guarded();
  opts.fault_plan = &plan;
  expect_attributed_abort(8, 3, opts, [](Comm& comm) {
    std::vector<std::uint64_t> mine{static_cast<std::uint64_t>(comm.rank())};
    comm.allreduce_sum_u64(mine, 7);
  });
}

TEST(FaultMatrixTest, ScattervViewAbortReachesBlockedRanks) {
  // Root faults on its second scatter send: rank 1 already has its slice,
  // but ranks 2 and 3 are still blocked and must observe the abort.
  const FaultPlan plan = FaultPlan::parse("rank=0,op=send,n=1");
  RunOptions opts = guarded();
  opts.fault_plan = &plan;
  std::atomic<int> aborted_ranks{0};
  EXPECT_THROW(
      run(4,
          [&](Comm& comm) {
            try {
              std::vector<std::uint64_t> block;
              std::vector<std::pair<std::uint64_t, std::uint64_t>> slices;
              if (comm.rank() == 0) {
                block.assign(40, 7);
                slices.assign(4, {0, 10});
              }
              comm.scatterv_view(
                  std::move(block),
                  std::span<const std::pair<std::uint64_t, std::uint64_t>>(
                      slices),
                  0, 9);
            } catch (const RankAbortedError& e) {
              EXPECT_EQ(e.origin_rank(), 0);
              aborted_ranks.fetch_add(1);
              throw;
            }
          },
          opts),
      FaultInjectedError);
  EXPECT_GE(aborted_ranks.load(), 2);
}

TEST(FaultMatrixTest, DelayActionOnlySlowsTheRun) {
  const FaultPlan plan =
      FaultPlan::parse("rank=0,op=send,n=0,action=delay,ms=20");
  RunOptions opts = guarded();
  opts.fault_plan = &plan;
  run(2,
      [](Comm& comm) {
        if (comm.rank() == 0) {
          comm.send(1, 1, std::vector<int>{42});
        } else {
          EXPECT_EQ(comm.recv<int>(0, 1).at(0), 42);
        }
      },
      opts);
}

/// The seed matrix of the acceptance criteria: for a spread of seeds,
/// inject the pseudo-random fault into a communication-heavy program and
/// require a clean attributed teardown on every rank — zero hangs. CI runs
/// this with PARDA_FAULT_SEED set to sweep additional seeds.
TEST(FaultMatrixTest, SeededRandomPlanAlwaysTearsDownCleanly) {
  constexpr int kNp = 4;
  std::vector<std::uint64_t> seeds;
  if (const char* env = std::getenv("PARDA_FAULT_SEED")) {
    seeds.push_back(std::strtoull(env, nullptr, 0));
  } else {
    for (std::uint64_t s = 1; s <= 12; ++s) seeds.push_back(s);
  }
  for (const std::uint64_t seed : seeds) {
    const FaultPlan plan = FaultPlan::random(seed, kNp);
    RunOptions opts = guarded();
    opts.fault_plan = &plan;
    const int faulty = plan.points()[0].rank;
    bool threw = false;
    std::vector<int> observed(kNp, -100);
    try {
      run(kNp,
          [&](Comm& comm) {
            try {
              // A comm-heavy body hitting every op kind four times, so any
              // (op, n < 4) fault point is reached on every rank; the
              // per-round barrier guarantees no survivor outruns the fault.
              for (int round = 0; round < 4; ++round) {
                comm.send((comm.rank() + 1) % kNp, round,
                          std::vector<int>{comm.rank()});
                comm.recv<int>((comm.rank() + kNp - 1) % kNp, round);
                comm.barrier();
              }
            } catch (const RankAbortedError& e) {
              observed[static_cast<std::size_t>(comm.rank())] = e.origin_rank();
              throw;
            }
          },
          opts);
    } catch (const FaultInjectedError&) {
      threw = true;
    }
    ASSERT_TRUE(threw) << "seed " << seed << " plan " << plan.describe()
                       << " did not fire";
    for (int r = 0; r < kNp; ++r) {
      if (r == faulty) continue;
      EXPECT_EQ(observed[static_cast<std::size_t>(r)], faulty)
          << "seed " << seed << " plan " << plan.describe() << " rank " << r;
    }
  }
}

// --- Deadlines. ---

TEST(DeadlineTest, RecvTimesOut) {
  EXPECT_THROW(
      run(2,
          [](Comm& comm) {
            if (comm.rank() == 0) {
              // Nobody ever sends on tag 99.
              comm.recv<int>(1, 99, nullptr, nullptr, milliseconds(50));
            }
          }),
      DeadlineExceededError);
}

TEST(DeadlineTest, RecvTimeoutMessageNamesTheWait) {
  try {
    run(1, [](Comm& comm) {
      comm.recv<int>(0, 42, nullptr, nullptr, milliseconds(10));
    });
    FAIL() << "expected DeadlineExceededError";
  } catch (const DeadlineExceededError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("tag=42"), std::string::npos) << what;
  }
}

TEST(DeadlineTest, BarrierTimesOutAndAbortsPeers) {
  std::atomic<int> peer_origin{-100};
  EXPECT_THROW(
      run(2,
          [&](Comm& comm) {
            if (comm.rank() == 0) {
              comm.barrier(milliseconds(50));  // rank 1 never arrives
            } else {
              try {
                comm.recv<int>(0, 1);  // parked until rank 0's abort
              } catch (const RankAbortedError& e) {
                peer_origin.store(e.origin_rank());
                throw;
              }
            }
          }),
      DeadlineExceededError);
  EXPECT_EQ(peer_origin.load(), 0);
}

TEST(DeadlineTest, DefaultOpTimeoutAppliesToEveryRecv) {
  RunOptions opts;
  opts.op_timeout = milliseconds(50);
  EXPECT_THROW(run(2,
                   [](Comm& comm) {
                     if (comm.rank() == 0) comm.recv<int>(1, 5);
                   },
                   opts),
               DeadlineExceededError);
}

TEST(DeadlineTest, SatisfiedWaitBeatsTheDeadline) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 3, std::vector<int>{1});
      comm.barrier(milliseconds(5000));
    } else {
      EXPECT_EQ(
          comm.recv<int>(0, 3, nullptr, nullptr, milliseconds(5000)).at(0), 1);
      comm.barrier(milliseconds(5000));
    }
  });
}

// --- Plain exception propagation (no plan needed). ---

TEST(AbortTest, BodyExceptionUnblocksPeersAndRethrows) {
  std::vector<int> observed(3, -100);
  EXPECT_THROW(
      run(3,
          [&](Comm& comm) {
            if (comm.rank() == 1) {
              throw std::runtime_error("rank 1 exploded");
            }
            try {
              comm.recv<int>(1, 0);
            } catch (const RankAbortedError& e) {
              observed[static_cast<std::size_t>(comm.rank())] = e.origin_rank();
              EXPECT_NE(std::string(e.what()).find("rank 1 exploded"),
                        std::string::npos);
              throw;
            }
          },
          guarded()),
      std::runtime_error);
  EXPECT_EQ(observed[0], 1);
  EXPECT_EQ(observed[2], 1);
}

TEST(AbortTest, PoisoningBeatsQueuedMessages) {
  // Rank 0 queues a matching message at rank 1, then dies. Once the abort
  // has landed, popping that queued message must report the teardown, not
  // deliver the data.
  bool drained = false;
  EXPECT_THROW(
      run(2,
          [&](Comm& comm) {
            if (comm.rank() == 0) {
              comm.send(1, 1, std::vector<int>{7});
              throw std::runtime_error("boom");
            }
            // Probe a tag nobody uses until the poisoning is visible.
            for (;;) {
              try {
                comm.recv<int>(0, 2, nullptr, nullptr, milliseconds(5));
              } catch (const DeadlineExceededError&) {
                continue;
              } catch (const RankAbortedError&) {
                break;
              }
            }
            try {
              comm.recv<int>(0, 1);  // a matching message IS queued
              drained = true;
            } catch (const RankAbortedError& e) {
              EXPECT_EQ(e.origin_rank(), 0);
              throw;
            }
          }),
      std::runtime_error);
  EXPECT_FALSE(drained);
}

// --- Watchdog. ---

TEST(WatchdogTest, FiresOnHandcraftedRecvCycle) {
  RunOptions opts;
  opts.watchdog_interval = milliseconds(30);
  std::vector<int> observed(2, -100);
  try {
    run(2,
        [&](Comm& comm) {
          try {
            // Classic deadlock: each rank waits for the other's message.
            comm.recv<int>(1 - comm.rank(), 0);
          } catch (const RankAbortedError& e) {
            observed[static_cast<std::size_t>(comm.rank())] = e.origin_rank();
            throw;
          }
        },
        opts);
    FAIL() << "expected the watchdog to abort the deadlocked run";
  } catch (const RankAbortedError& e) {
    EXPECT_EQ(e.origin_rank(), kWatchdogOrigin);
    // The per-rank diagnostic dump rides in the error text.
    const std::string what = e.what();
    EXPECT_NE(what.find("stall detected"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 0: blocked in recv (peer=1, tag=0)"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("rank 1: blocked in recv (peer=0, tag=0)"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("queued"), std::string::npos) << what;
  }
  EXPECT_EQ(observed[0], kWatchdogOrigin);
  EXPECT_EQ(observed[1], kWatchdogOrigin);
}

TEST(WatchdogTest, FiresOnBarrierMinusOne) {
  // np-1 ranks reach the barrier; one is parked in a recv that can never
  // complete. All blocked, no progress -> watchdog.
  RunOptions opts;
  opts.watchdog_interval = milliseconds(30);
  EXPECT_THROW(run(3,
                   [](Comm& comm) {
                     if (comm.rank() == 2) {
                       comm.recv<int>(0, 77);
                     } else {
                       comm.barrier();
                     }
                   },
                   opts),
               RankAbortedError);
}

TEST(WatchdogTest, IgnoresExitedRanks) {
  // Rank 0 exits immediately; rank 1 deadlocks on it. "All blocked or
  // exited" must still count as a stall.
  RunOptions opts;
  opts.watchdog_interval = milliseconds(30);
  EXPECT_THROW(run(2,
                   [](Comm& comm) {
                     if (comm.rank() == 1) comm.recv<int>(0, 5);
                   },
                   opts),
               RankAbortedError);
}

TEST(WatchdogTest, DoesNotFireOnAProgressingRun) {
  RunOptions opts;
  opts.watchdog_interval = milliseconds(50);
  // A pipeline that keeps making progress across several sampling
  // intervals must not trip the watchdog: every block entry bumps the
  // rank's epoch, so "slow but moving" never reads as stalled.
  run(2,
      [](Comm& comm) {
        for (int i = 0; i < 20; ++i) {
          if (comm.rank() == 0) {
            comm.send(1, i, std::vector<int>{i});
          } else {
            EXPECT_EQ(comm.recv<int>(0, i).at(0), i);
          }
          std::this_thread::sleep_for(milliseconds(5));
          comm.barrier();
        }
      },
      opts);
}

}  // namespace
}  // namespace parda::comm
