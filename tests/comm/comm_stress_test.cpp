// Randomized stress tests for the message-passing runtime: message storms
// with random sizes/tags, interleaved collectives, and rank counts well
// above the core count (the Figure 4/5 configurations run 64 ranks on
// this 1-core host).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "comm/comm.hpp"
#include "util/prng.hpp"

namespace parda::comm {
namespace {

TEST(CommStressTest, RandomMessageStorm) {
  // Every rank sends a deterministic pseudo-random batch to every other
  // rank; receivers verify content, order (per source/tag), and totals.
  const int np = 6;
  const int batches = 30;
  run(np, [&](Comm& comm) {
    const int me = comm.rank();
    // Phase 1: fire everything.
    for (int dest = 0; dest < np; ++dest) {
      if (dest == me) continue;
      Xoshiro256 rng(static_cast<std::uint64_t>(me) * 1000 +
                     static_cast<std::uint64_t>(dest));
      for (int b = 0; b < batches; ++b) {
        std::vector<std::uint64_t> payload(rng.below(64));
        for (auto& x : payload) x = rng();
        payload.push_back(static_cast<std::uint64_t>(b));  // sequence mark
        comm.send(dest, /*tag=*/7, payload);
      }
    }
    // Phase 2: drain and verify (per-source order and content).
    for (int src = 0; src < np; ++src) {
      if (src == me) continue;
      Xoshiro256 rng(static_cast<std::uint64_t>(src) * 1000 +
                     static_cast<std::uint64_t>(me));
      for (int b = 0; b < batches; ++b) {
        const auto payload = comm.recv<std::uint64_t>(src, 7);
        std::vector<std::uint64_t> expected(rng.below(64));
        for (auto& x : expected) x = rng();
        expected.push_back(static_cast<std::uint64_t>(b));
        EXPECT_EQ(payload, expected) << "src=" << src << " b=" << b;
      }
    }
  });
}

TEST(CommStressTest, SixtyFourRanksReduce) {
  // The paper's rank count, far above this host's core count.
  const RunStats stats = run(64, [](Comm& comm) {
    std::vector<std::uint64_t> mine{1};
    const auto total =
        comm.reduce_sum_u64(std::span<const std::uint64_t>(mine), 0, 9);
    if (comm.rank() == 0) {
      ASSERT_EQ(total.size(), 1u);
      EXPECT_EQ(total[0], 64u);
    }
  });
  EXPECT_EQ(stats.ranks.size(), 64u);
}

TEST(CommStressTest, PipelineWithRandomWorkloads) {
  // The Parda communication shape under randomized payload sizes.
  const int np = 8;
  run(np, [&](Comm& comm) {
    const int r = comm.rank();
    Xoshiro256 rng(static_cast<std::uint64_t>(r) + 99);
    std::uint64_t received_words = 0;
    for (int round = 0; round < np - r; ++round) {
      if (r > 0) {
        std::vector<std::uint64_t> out(rng.below(256));
        std::iota(out.begin(), out.end(), 0);
        comm.send(r - 1, 3, out);
      }
      if (r < np - 1 && round < np - r - 1) {
        received_words += comm.recv<std::uint64_t>(r + 1, 3).size();
      }
    }
    // No assertion on totals (sizes are random); reaching here without
    // deadlock across all rounds is the property under test.
    (void)received_words;
  });
}

TEST(CommStressTest, CollectivesInterleavedWithPointToPoint) {
  run(4, [](Comm& comm) {
    for (int round = 0; round < 25; ++round) {
      // Point-to-point ring...
      const int next = (comm.rank() + 1) % comm.size();
      const int prev = (comm.rank() + comm.size() - 1) % comm.size();
      comm.send(next, 40 + round, std::vector<int>{comm.rank(), round});
      const auto got = comm.recv<int>(prev, 40 + round);
      EXPECT_EQ(got[0], prev);
      EXPECT_EQ(got[1], round);
      // ...then a collective on the same communicator.
      const std::vector<std::uint64_t> one{1};
      const auto sum = comm.allreduce_sum_u64(
          std::span<const std::uint64_t>(one), 1000 + round);
      EXPECT_EQ(sum.at(0), 4u);
    }
  });
}

TEST(CommStressTest, ManySmallBarriers) {
  std::atomic<int> counter{0};
  run(16, [&](Comm& comm) {
    for (int i = 0; i < 100; ++i) {
      counter.fetch_add(1);
      comm.barrier();
      EXPECT_EQ(counter.load() % 16, 0);
      comm.barrier();
    }
  });
  EXPECT_EQ(counter.load(), 1600);
}

TEST(CommStressTest, DisseminationBarrierOddRankCounts) {
  // The dissemination barrier's partner pattern (rank + 2^k mod np) only
  // degenerates to pairwise exchange at powers of two; pin the old
  // central-barrier semantics at awkward np values too.
  for (int np : {2, 3, 5, 6, 7, 12}) {
    std::atomic<int> counter{0};
    run(np, [&, np](Comm& comm) {
      for (int i = 0; i < 60; ++i) {
        counter.fetch_add(1);
        comm.barrier();
        // Between the two barriers every rank has arrived: the count is
        // frozen at a multiple of np.
        EXPECT_EQ(counter.load() % np, 0) << "np=" << np << " i=" << i;
        comm.barrier();
      }
    });
    EXPECT_EQ(counter.load(), np * 60);
  }
}

TEST(CommStressTest, BarriersInterleavedWithWildcardTraffic) {
  // Barrier signals and message traffic share the per-rank notification
  // machinery; hammer both at once and check nothing is lost or
  // misordered across the barrier edges.
  const int np = 5;
  run(np, [&](Comm& comm) {
    const int me = comm.rank();
    for (int round = 0; round < 40; ++round) {
      if (me != 0) {
        comm.send(0, /*tag=*/3,
                  std::vector<int>{me, round});
      }
      comm.barrier();
      if (me == 0) {
        std::vector<bool> seen(static_cast<std::size_t>(np), false);
        for (int i = 0; i < np - 1; ++i) {
          int src = -2;
          const auto got = comm.recv<int>(kAnySource, 3, &src);
          ASSERT_EQ(got.size(), 2u);
          EXPECT_EQ(got[0], src);
          EXPECT_EQ(got[1], round);
          EXPECT_FALSE(seen[static_cast<std::size_t>(src)]);
          seen[static_cast<std::size_t>(src)] = true;
        }
      }
      comm.barrier();
    }
  });
}

}  // namespace
}  // namespace parda::comm
