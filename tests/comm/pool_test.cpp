#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "comm/fault.hpp"
#include "comm/worker_pool.hpp"

namespace parda::comm {
namespace {

// A small allreduce-ish body used to check that a job on the pool behaves
// exactly like comm::run: every rank contributes its rank+1, rank 0 sums.
std::uint64_t gather_sum(WorkerPool& pool, int np) {
  std::uint64_t sum = 0;
  pool.run_job(np, [&](Comm& comm) {
    const std::uint64_t mine = static_cast<std::uint64_t>(comm.rank()) + 1;
    const auto pieces =
        comm.gather(std::span<const std::uint64_t>(&mine, 1), 0, 3);
    if (comm.rank() == 0) {
      for (const auto& piece : pieces) sum += piece.at(0);
    }
  });
  return sum;
}

TEST(WorkerPoolTest, RunJobMatchesRun) {
  WorkerPool pool;
  for (int np : {1, 2, 4}) {
    EXPECT_EQ(gather_sum(pool, np),
              static_cast<std::uint64_t>(np) * (np + 1) / 2);
  }
}

TEST(WorkerPoolTest, RunStatsShapeMatchesTransientRun) {
  WorkerPool pool;
  const RunStats stats = pool.run_job(3, [](Comm& comm) {
    comm.barrier();
  });
  EXPECT_EQ(stats.ranks.size(), 3u);
  EXPECT_GT(stats.wall_seconds, 0.0);
}

TEST(WorkerPoolTest, WorldsAreCachedAndReset) {
  WorkerPool pool;
  for (int i = 0; i < 5; ++i) {
    // Leave queued-but-unreceived state behind on purpose: rank 1 sends a
    // message nobody receives. The reset must drain it so iteration i+1
    // cannot observe iteration i's mailbox contents.
    pool.run_job(2, [&](Comm& comm) {
      if (comm.rank() == 1) {
        comm.send(0, 9, std::vector<std::uint64_t>{static_cast<std::uint64_t>(i)});
      }
      comm.barrier();
    });
  }
  EXPECT_EQ(pool.worlds_created(), 1u);
  EXPECT_EQ(pool.world_reuses(), 4u);
  EXPECT_EQ(pool.jobs_run(), 5u);
  // A fresh receive sees only the new job's message.
  pool.run_job(2, [](Comm& comm) {
    if (comm.rank() == 1) {
      comm.send(0, 9, std::vector<std::uint64_t>{42});
    } else {
      const auto got = comm.recv<std::uint64_t>(1, 9);
      ASSERT_EQ(got.size(), 1u);
      EXPECT_EQ(got[0], 42u);
    }
  });
}

TEST(WorkerPoolTest, CapacityGrowsToLargestNpAndSticks) {
  WorkerPool pool;
  EXPECT_EQ(pool.capacity(), 0);
  pool.run_job(2, [](Comm&) {});
  EXPECT_EQ(pool.capacity(), 2);
  pool.run_job(4, [](Comm&) {});
  EXPECT_EQ(pool.capacity(), 4);
  pool.run_job(1, [](Comm&) {});  // never shrinks
  EXPECT_EQ(pool.capacity(), 4);
  EXPECT_EQ(pool.worlds_created(), 3u);  // one World per distinct np
}

TEST(WorkerPoolTest, AbortFailsTheJobAndLeavesThePoolReusable) {
  WorkerPool pool;
  for (int round = 0; round < 3; ++round) {
    EXPECT_THROW(
        pool.run_job(3, [](Comm& comm) {
          if (comm.rank() == 1) throw std::runtime_error("rank 1 body threw");
          // The other ranks block; rank 1's abort must wake them.
          comm.recv<std::uint64_t>(kAnySource, 5);
        }),
        std::runtime_error);
    // The very next job on the same (poisoned, then reset) World succeeds.
    EXPECT_EQ(gather_sum(pool, 3), 6u);
  }
}

TEST(WorkerPoolTest, InjectedFaultRethrowsRootCause) {
  const FaultPlan plan = FaultPlan::parse("rank=1,op=recv,n=0");
  RunOptions options;
  options.fault_plan = &plan;
  WorkerPool pool;
  EXPECT_THROW(pool.run_job(2,
                            [](Comm& comm) {
                              if (comm.rank() == 0) {
                                comm.send(1, 2, std::vector<int>{1});
                                comm.recv<int>(1, 3);
                              } else {
                                comm.recv<int>(0, 2);
                                comm.send(0, 3, std::vector<int>{2});
                              }
                            },
                            options),
               FaultInjectedError);
  // Healthy afterwards, with the same World.
  EXPECT_EQ(gather_sum(pool, 2), 3u);
  EXPECT_GE(pool.world_reuses(), 1u);
}

TEST(WorkerPoolTest, PoolWatchdogAbortsAStalledJob) {
  RunOptions options;
  options.watchdog_interval = std::chrono::milliseconds(20);
  WorkerPool pool;
  try {
    pool.run_job(2,
                 [](Comm& comm) {
                   // Handcrafted recv cycle: both ranks wait forever.
                   comm.recv<std::uint64_t>(1 - comm.rank(), 0);
                 },
                 options);
    FAIL() << "expected RankAbortedError";
  } catch (const RankAbortedError& e) {
    EXPECT_EQ(e.origin_rank(), kWatchdogOrigin);
  }
  // The service thread must have retired the episode: the next watchdogged
  // job runs (and completes) on the same pool.
  const RunStats stats = pool.run_job(2, [](Comm& comm) { comm.barrier(); },
                                      options);
  EXPECT_EQ(stats.ranks.size(), 2u);
}

TEST(WorkerPoolTest, ConcurrentSubmittersSerializeFifo) {
  WorkerPool pool;
  pool.run_job(2, [](Comm&) {});  // pre-spawn
  constexpr int kSubmitters = 4;
  constexpr int kJobsEach = 8;
  std::atomic<int> running{0};
  std::atomic<int> max_running{0};
  std::vector<std::uint64_t> sums(kSubmitters, 0);
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (int j = 0; j < kJobsEach; ++j) {
        pool.run_job(2, [&](Comm& comm) {
          if (comm.rank() == 0) {
            // Exactly one job may be inside the pool at a time.
            const int now = running.fetch_add(1) + 1;
            int seen = max_running.load();
            while (now > seen &&
                   !max_running.compare_exchange_weak(seen, now)) {
            }
            sums[static_cast<std::size_t>(s)] += 1;
            running.fetch_sub(1);
          }
          comm.barrier();
        });
      }
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_EQ(max_running.load(), 1);
  for (const std::uint64_t sum : sums) EXPECT_EQ(sum, kJobsEach);
  EXPECT_EQ(pool.jobs_run(),
            static_cast<std::uint64_t>(kSubmitters) * kJobsEach + 1);
}

TEST(WorkerPoolTest, BackCompatRunStillWorks) {
  // comm::run is now a wrapper over a transient pool; the contract is
  // byte-identical for callers.
  int calls = 0;
  const RunStats stats = run(2, [&](Comm& comm) {
    if (comm.rank() == 0) ++calls;
    comm.barrier();
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(stats.ranks.size(), 2u);
}

}  // namespace
}  // namespace parda::comm
