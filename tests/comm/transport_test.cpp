// Tests for the pluggable transport layer (ISSUE 8).
//
// The acceptance bar: the SAME rank bodies, fault-tolerance machinery, and
// histogram math must behave identically whether messages move by mailbox
// handoff (threads), through shared-memory byte rings (shm), or over
// length-prefixed TCP frames (tcp). The equality suite here runs one
// trace/seed over all three wires and demands bit-identical
// parda.histogram.v1 output; the fault matrix demands equivalent abort
// attribution and deadline behavior.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "comm/comm.hpp"
#include "comm/fault.hpp"
#include "comm/transport/frame.hpp"
#include "comm/transport/ring.hpp"
#include "comm/transport/spec.hpp"
#include "comm/worker_pool.hpp"
#include "core/parda.hpp"
#include "trace/trace_pipe.hpp"
#include "util/check.hpp"
#include "workload/generators.hpp"

namespace parda::comm {
namespace {

using std::chrono::milliseconds;

/// Every wire the equality/fault matrices sweep. "threads" is the control:
/// the seed's zero-copy path, against which shm and tcp must be
/// indistinguishable from above the Comm surface.
const char* const kWires[] = {"threads", "shm", "tcp"};

/// RunOptions for a wire, with a generous safety-net deadline so a
/// transport bug fails the test instead of hanging the suite.
RunOptions on_wire(const std::string& spec_text) {
  RunOptions opts;
  opts.transport = TransportSpec::parse(spec_text);
  opts.op_timeout = milliseconds(20000);
  return opts;
}

// --- TransportSpec: the redesigned configuration surface --------------------

TEST(TransportSpecTest, ParsesBareKindsWithDefaults) {
  const TransportSpec threads = TransportSpec::parse("threads");
  EXPECT_EQ(threads.kind, TransportKind::kThreads);
  EXPECT_EQ(threads.local_rank, kAllRanksLocal);
  EXPECT_TRUE(threads.zero_copy());
  EXPECT_FALSE(threads.distributed());

  const TransportSpec shm = TransportSpec::parse("shm");
  EXPECT_EQ(shm.kind, TransportKind::kShm);
  EXPECT_FALSE(shm.zero_copy());

  const TransportSpec tcp = TransportSpec::parse("tcp");
  EXPECT_EQ(tcp.kind, TransportKind::kTcp);
  EXPECT_TRUE(tcp.peers.empty());
}

TEST(TransportSpecTest, ParsesParameterClauses) {
  const TransportSpec shm =
      TransportSpec::parse("shm:ring=64k,segment=/parda-t,rank=2");
  EXPECT_EQ(shm.ring_bytes, 64u * 1024u);
  EXPECT_EQ(shm.segment, "/parda-t");
  EXPECT_EQ(shm.local_rank, 2);
  EXPECT_TRUE(shm.distributed());

  const TransportSpec tcp =
      TransportSpec::parse("tcp:peers=a:7000+b:7001,sendq=2M,rank=0");
  ASSERT_EQ(tcp.peers.size(), 2u);
  EXPECT_EQ(tcp.peers[0], "a:7000");
  EXPECT_EQ(tcp.peers[1], "b:7001");
  EXPECT_EQ(tcp.sendq_bytes, 2u * 1024u * 1024u);
  EXPECT_EQ(tcp.local_rank, 0);
}

TEST(TransportSpecTest, DescribeRoundTrips) {
  for (const char* text :
       {"threads", "shm", "tcp", "shm:ring=65536,segment=/parda-x,rank=1",
        "tcp:peers=h0:9+h1:10,sendq=1024,rank=0"}) {
    const TransportSpec spec = TransportSpec::parse(text);
    EXPECT_EQ(TransportSpec::parse(spec.describe()), spec) << text;
  }
}

TEST(TransportSpecTest, RejectsMalformedSpecs) {
  EXPECT_THROW(TransportSpec::parse("carrier-pigeon"), CheckError);
  EXPECT_THROW(TransportSpec::parse("shm:bogus=1"), CheckError);
  EXPECT_THROW(TransportSpec::parse("threads:ring=4k"), CheckError);
  EXPECT_THROW(TransportSpec::parse("tcp:ring=4k"), CheckError);  // shm key
  EXPECT_THROW(TransportSpec::parse("shm:ring=0"), CheckError);
  EXPECT_THROW(TransportSpec::parse("shm:ring=4q"), CheckError);
  EXPECT_THROW(TransportSpec::parse("shm:rank=-1"), CheckError);
  EXPECT_THROW(TransportSpec::parse("shm:segment"), CheckError);  // no '='
}

TEST(TransportSpecTest, SignatureExcludesEndpointNoise) {
  // Two worlds that differ only in rendezvous endpoints share wire
  // identity (and may share a pooled World); different kinds never do.
  EXPECT_EQ(TransportSpec::parse("shm:segment=/a").signature(),
            TransportSpec::parse("shm:segment=/b").signature());
  EXPECT_EQ(TransportSpec::parse("tcp:peers=a:1+b:2,rank=0").signature(),
            TransportSpec::parse("tcp:peers=c:3+d:4,rank=0").signature());
  EXPECT_NE(TransportSpec::parse("threads").signature(),
            TransportSpec::parse("shm").signature());
  EXPECT_NE(TransportSpec::parse("shm").signature(),
            TransportSpec::parse("shm:ring=4k").signature());
}

TEST(TransportSpecTest, ValidateEnforcesTheDistributedMatrix) {
  EXPECT_NO_THROW(TransportSpec::parse("threads").validate(4));
  EXPECT_NO_THROW(TransportSpec::parse("shm").validate(4));
  EXPECT_NO_THROW(TransportSpec::parse("tcp").validate(4));
  EXPECT_NO_THROW(
      TransportSpec::parse("shm:segment=/s,rank=3").validate(4));
  EXPECT_NO_THROW(
      TransportSpec::parse("tcp:peers=a:1+b:2,rank=1").validate(2));

  // threads cannot span processes.
  EXPECT_THROW(TransportSpec::parse("threads:rank=0").validate(2),
               CheckError);
  // rank out of range.
  EXPECT_THROW(TransportSpec::parse("shm:segment=/s,rank=4").validate(4),
               CheckError);
  // distributed shm needs a named segment to rendezvous on.
  EXPECT_THROW(TransportSpec::parse("shm:rank=0").validate(2), CheckError);
  // distributed tcp needs one endpoint per rank.
  EXPECT_THROW(TransportSpec::parse("tcp:peers=a:1,rank=0").validate(2),
               CheckError);
  // peers without rank: in-process worlds build their own loopback mesh.
  EXPECT_THROW(TransportSpec::parse("tcp:peers=a:1+b:2").validate(2),
               CheckError);
}

// --- Ring and frame plumbing ------------------------------------------------

TEST(ByteRingTest, StreamsWritesLargerThanCapacity) {
  // A 64-byte ring must pass a 4KiB write through in pieces: the ring
  // bounds memory, never message size.
  transport::RingHeader header;
  std::vector<std::byte> storage(64);
  transport::ByteRing ring(&header, storage.data(), storage.size());

  std::vector<std::byte> sent(4096);
  for (std::size_t i = 0; i < sent.size(); ++i) {
    sent[i] = static_cast<std::byte>(i * 131 + 7);
  }
  std::thread producer([&] {
    const bool ok = ring.write(
        sent.data(), sent.size(), [] { return true; }, [] {});
    EXPECT_TRUE(ok);
  });
  std::vector<std::byte> got;
  std::byte buf[48];
  while (got.size() < sent.size()) {
    const std::size_t n = ring.read_some(buf, sizeof(buf));
    got.insert(got.end(), buf, buf + n);
  }
  producer.join();
  EXPECT_EQ(got, sent);
}

TEST(ByteRingTest, AbandonedWriteReportsFailure) {
  // keep_waiting returning false must abandon a blocked write instead of
  // spinning forever — this is how an abort unsticks a full ring.
  transport::RingHeader header;
  std::vector<std::byte> storage(16);
  transport::ByteRing ring(&header, storage.data(), storage.size());
  std::vector<std::byte> data(64);
  EXPECT_FALSE(ring.write(
      data.data(), data.size(), [] { return false; }, [] {}));
}

TEST(FrameReaderTest, ReassemblesFramesAcrossArbitraryFragmentation) {
  // Two frames, fed one to three bytes at a time: the reader must emit
  // exactly two complete (header, payload) pairs regardless of how the
  // stream fragments.
  std::vector<std::byte> stream;
  transport::FrameHeader h1;
  h1.src = 1;
  h1.origin = 1;
  h1.tag = 42;
  const std::string p1 = "hello, wire";
  h1.payload_bytes = p1.size();
  const auto f1 = transport::encode_frame(
      h1, {reinterpret_cast<const std::byte*>(p1.data()), p1.size()});
  transport::FrameHeader h2;
  h2.src = 2;
  h2.tag = 7;
  h2.payload_bytes = 0;
  const auto f2 = transport::encode_frame(h2, {});
  stream.insert(stream.end(), f1.begin(), f1.end());
  stream.insert(stream.end(), f2.begin(), f2.end());

  std::size_t at = 0;
  std::size_t dribble = 0;
  const auto pull = [&](std::byte* dst, std::size_t max) {
    const std::size_t n =
        std::min({max, stream.size() - at, dribble % 3 + 1});
    ++dribble;
    std::memcpy(dst, stream.data() + at, n);
    at += n;
    return n;
  };

  std::vector<std::pair<transport::FrameHeader, std::string>> frames;
  transport::FrameReader reader;
  while (at < stream.size()) {
    reader.drain(pull, [&](const transport::FrameHeader& h,
                           std::vector<std::byte>&& payload) {
      frames.emplace_back(
          h, std::string(reinterpret_cast<const char*>(payload.data()),
                         payload.size()));
    });
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].first.tag, 42);
  EXPECT_EQ(frames[0].second, "hello, wire");
  EXPECT_EQ(frames[1].first.src, 2);
  EXPECT_EQ(frames[1].second, "");
}

// --- Comm semantics over every wire ----------------------------------------

TEST(CrossTransportTest, PointToPointSemanticsHoldOnEveryWire) {
  for (const char* wire : kWires) {
    SCOPED_TRACE(wire);
    run(
        3,
        [](Comm& comm) {
          // Ping-pong + out-of-order tags + wildcard source, the core of
          // the transport-neutral point-to-point contract.
          if (comm.rank() == 0) {
            comm.send(1, 1, std::vector<std::uint64_t>{1, 2, 3});
            comm.send(1, 2, std::vector<std::uint64_t>{9});
            bool seen1 = false;
            bool seen2 = false;
            for (int i = 0; i < 2; ++i) {
              int src = -2;
              const auto v = comm.recv<std::uint64_t>(kAnySource, 5, &src);
              EXPECT_EQ(v.at(0), static_cast<std::uint64_t>(src) * 10);
              seen1 |= src == 1;
              seen2 |= src == 2;
            }
            EXPECT_TRUE(seen1);
            EXPECT_TRUE(seen2);
          } else if (comm.rank() == 1) {
            EXPECT_EQ(comm.recv<std::uint64_t>(0, 2).at(0), 9u);  // tag 2 first
            EXPECT_EQ(comm.recv<std::uint64_t>(0, 1).size(), 3u);
            comm.send(0, 5, std::vector<std::uint64_t>{10});
          } else {
            comm.send(0, 5, std::vector<std::uint64_t>{20});
          }
          comm.barrier();
        },
        on_wire(wire));
  }
}

TEST(CrossTransportTest, BarriersSynchronizeOnEveryWire) {
  for (const char* wire : kWires) {
    SCOPED_TRACE(wire);
    std::atomic<int> phase{0};
    run(
        4,
        [&](Comm& comm) {
          for (int round = 0; round < 5; ++round) {
            EXPECT_EQ(phase.load(), round);
            comm.barrier();
            // Every rank observed phase == round before any rank moves on;
            // one designated rank advances it between barriers.
            if (comm.rank() == 0) ++phase;
            comm.barrier();
          }
        },
        on_wire(wire));
    EXPECT_EQ(phase.load(), 5);
  }
}

TEST(CrossTransportTest, ByteAccountingIsHonestPerWire) {
  const std::vector<std::uint64_t> block(1024, 7);
  for (const char* wire : kWires) {
    SCOPED_TRACE(wire);
    const RunStats stats = run(
        2,
        [&](Comm& comm) {
          if (comm.rank() == 0) {
            auto copy = block;
            comm.send(1, 3, std::move(copy));  // ownership handoff
          } else {
            comm.recv<std::uint64_t>(0, 3);
          }
          comm.barrier();
        },
        on_wire(wire));
    const std::uint64_t payload = block.size() * sizeof(std::uint64_t);
    EXPECT_GE(stats.total_bytes(), payload);
    if (std::string(wire) == "threads") {
      // Moved-ownership send travels zero-copy in process.
      EXPECT_GE(stats.total_bytes_shared(), payload);
    } else {
      // One counted serialization copy per wire crossing.
      EXPECT_GE(stats.total_bytes_copied(), payload);
      EXPECT_EQ(stats.total_bytes_shared(), 0u);
    }
  }
}

TEST(CrossTransportTest, SharedViewsDegradeToCopiesOffThreads) {
  // broadcast_view hands out refcounted views on the threads wire and
  // falls back to per-receiver copies on serializing wires — same values
  // either way (the graceful-degradation half of the view contract).
  for (const char* wire : kWires) {
    SCOPED_TRACE(wire);
    run(
        3,
        [](Comm& comm) {
          std::vector<std::uint64_t> root_data;
          if (comm.rank() == 0) {
            root_data.assign(512, 0);
            for (std::size_t i = 0; i < root_data.size(); ++i) {
              root_data[i] = i * 3 + 1;
            }
          }
          const View<std::uint64_t> view =
              comm.broadcast_view(std::move(root_data), 0, 9);
          ASSERT_EQ(view.span().size(), 512u);
          EXPECT_EQ(view.span()[0], 1u);
          EXPECT_EQ(view.span()[511], 511u * 3 + 1);
          comm.barrier();
        },
        on_wire(wire));
  }
}

// --- The equality suite: bit-identical histograms ---------------------------

std::vector<Addr> equality_trace(std::size_t n, std::uint64_t seed) {
  std::vector<std::unique_ptr<Workload>> kids;
  kids.push_back(std::make_unique<ZipfWorkload>(400, 0.8, seed, 0));
  kids.push_back(std::make_unique<SequentialWorkload>(128, 1));
  MixWorkload mix(std::move(kids), {0.7, 0.3}, seed);
  return generate_trace(mix, n);
}

TEST(CrossTransportEqualityTest, OfflineHistogramsAreBitIdentical) {
  const auto trace = equality_trace(6000, 17);
  for (const std::uint64_t bound : {std::uint64_t{0}, std::uint64_t{128}}) {
    for (const int np : {1, 2, 4}) {
      PardaOptions options;
      options.num_procs = np;
      if (bound != 0) options.bound = bound;
      options.run_options = on_wire("threads");
      const PardaResult expected = parda_analyze(trace, options);
      const std::string expected_json = expected.hist.to_json();
      for (const char* wire : {"shm", "tcp"}) {
        SCOPED_TRACE(std::string(wire) + " np=" + std::to_string(np) +
                     " bound=" + std::to_string(bound));
        options.run_options = on_wire(wire);
        const PardaResult got = parda_analyze(trace, options);
        EXPECT_TRUE(got.hist == expected.hist);
        // Bit-identical parda.histogram.v1, not just equal totals.
        EXPECT_EQ(got.hist.to_json(), expected_json);
      }
    }
  }
}

TEST(CrossTransportEqualityTest, StreamedHistogramsAreBitIdentical) {
  const auto trace = equality_trace(5000, 23);
  const auto streamed = [&](const char* wire, int np) {
    TracePipe pipe(1024);
    std::thread producer([&] {
      constexpr std::size_t kBlock = 257;
      for (std::size_t at = 0; at < trace.size(); at += kBlock) {
        const std::size_t hi = std::min(at + kBlock, trace.size());
        pipe.write(std::span<const Addr>(trace.data() + at, hi - at));
      }
      pipe.close();
    });
    PardaOptions options;
    options.num_procs = np;
    options.chunk_words = 320;
    options.run_options = on_wire(wire);
    const PardaResult result = parda_analyze_stream(pipe, options);
    producer.join();
    return result;
  };
  for (const int np : {2, 4}) {
    const PardaResult expected = streamed("threads", np);
    for (const char* wire : {"shm", "tcp"}) {
      SCOPED_TRACE(std::string(wire) + " np=" + std::to_string(np));
      const PardaResult got = streamed(wire, np);
      EXPECT_TRUE(got.hist == expected.hist);
      EXPECT_EQ(got.hist.to_json(), expected.hist.to_json());
    }
  }
}

// --- Fault equivalence: aborts and deadlines per wire -----------------------

/// Mirror of fault_test's harness: run `body` under `opts` with rank
/// `faulty` set up to throw, assert run() rethrows the injected error and
/// every surviving rank sees a RankAbortedError attributed to `faulty`.
template <typename Body>
void expect_attributed_abort(int np, int faulty, const RunOptions& opts,
                             Body&& body) {
  std::vector<int> observed_origin(static_cast<std::size_t>(np), -100);
  EXPECT_THROW(
      run(np,
          [&](Comm& comm) {
            try {
              body(comm);
              comm.barrier();
            } catch (const RankAbortedError& e) {
              observed_origin[static_cast<std::size_t>(comm.rank())] =
                  e.origin_rank();
              throw;
            }
          },
          opts),
      FaultInjectedError);
  for (int r = 0; r < np; ++r) {
    if (r == faulty) continue;
    EXPECT_EQ(observed_origin[static_cast<std::size_t>(r)], faulty)
        << "rank " << r << " did not see an abort attributed to rank "
        << faulty;
  }
}

TEST(CrossTransportFaultTest, AbortAttributionIsIdenticalOnEveryWire) {
  // The FaultPlan seed matrix: every (wire, plan) cell must end with the
  // injected error rethrown and the origin correctly attributed on every
  // surviving rank — the transport must neither eat nor re-attribute an
  // abort.
  struct Cell {
    const char* plan;
    int faulty;
  };
  const Cell kMatrix[] = {
      {"rank=1,op=recv,n=0", 1},
      {"rank=0,op=send,n=0", 0},
      {"rank=2,op=recv,n=1", 2},  // n counts ops zero-based: second recv
  };
  for (const char* wire : kWires) {
    for (const Cell& cell : kMatrix) {
      SCOPED_TRACE(std::string(wire) + " plan=" + cell.plan);
      FaultPlan plan = FaultPlan::parse(cell.plan);
      RunOptions opts = on_wire(wire);
      opts.fault_plan = &plan;
      expect_attributed_abort(3, cell.faulty, opts, [](Comm& comm) {
        // Every rank sends to and receives from its neighbors, so every
        // rank crosses both a send and enough recv points for the matrix.
        const int next = (comm.rank() + 1) % comm.size();
        const int prev = (comm.rank() + comm.size() - 1) % comm.size();
        comm.send(next, 1, std::vector<int>{comm.rank()});
        EXPECT_EQ(comm.recv<int>(prev, 1).at(0), prev);
        comm.send(prev, 2, std::vector<int>{comm.rank()});
        EXPECT_EQ(comm.recv<int>(next, 2).at(0), next);
      });
    }
  }
}

TEST(CrossTransportFaultTest, RecvDeadlineFiresOnEveryWire) {
  for (const char* wire : kWires) {
    SCOPED_TRACE(wire);
    RunOptions opts = on_wire(wire);
    opts.op_timeout = milliseconds(200);
    EXPECT_THROW(
        run(
            2,
            [](Comm& comm) {
              if (comm.rank() == 0) {
                comm.recv<int>(1, 77);  // rank 1 never sends: must time out
              }
            },
            opts),
        DeadlineExceededError);
  }
}

TEST(CrossTransportFaultTest, WatchdogFiresOnRecvCycleOnEveryWire) {
  // The classic two-rank recv deadlock: only the stall watchdog can end
  // it, and it must attribute the abort to kWatchdogOrigin on every wire.
  for (const char* wire : kWires) {
    SCOPED_TRACE(wire);
    RunOptions opts = on_wire(wire);
    opts.op_timeout = {};  // no per-op deadline: only the watchdog can fire
    opts.watchdog_interval = milliseconds(50);
    try {
      run(
          2, [](Comm& comm) { comm.recv<int>(1 - comm.rank(), 0); }, opts);
      FAIL() << "expected the watchdog to abort the deadlocked run";
    } catch (const RankAbortedError& e) {
      EXPECT_EQ(e.origin_rank(), kWatchdogOrigin);
      EXPECT_NE(std::string(e.what()).find("stall detected"),
                std::string::npos)
          << e.what();
    }
  }
}

// --- Pooled reuse per wire --------------------------------------------------

TEST(CrossTransportPoolTest, WorldsAreReusedAndRecoverAfterAborts) {
  WorkerPool pool;
  const auto clean_job = [](Comm& comm) {
    const int next = (comm.rank() + 1) % comm.size();
    const int prev = (comm.rank() + comm.size() - 1) % comm.size();
    comm.send(next, 4, std::vector<int>{comm.rank() * 11});
    EXPECT_EQ(comm.recv<int>(prev, 4).at(0), prev * 11);
    comm.barrier();
  };
  for (const char* wire : kWires) {
    SCOPED_TRACE(wire);
    const std::uint64_t reuses_before = pool.world_reuses();
    pool.run_job(3, clean_job, on_wire(wire));
    pool.run_job(3, clean_job, on_wire(wire));  // same world, rings warm
    EXPECT_THROW(pool.run_job(
                     3,
                     [](Comm& comm) {
                       if (comm.rank() == 1) {
                         throw std::runtime_error("induced failure");
                       }
                       comm.barrier();
                     },
                     on_wire(wire)),
                 std::runtime_error);
    // The poisoned world is cleared (generation bump, rings/mesh rewound)
    // and the next job on the same wire runs clean.
    pool.run_job(3, clean_job, on_wire(wire));
    EXPECT_GE(pool.world_reuses(), reuses_before + 2);
  }
  // Different wires never share a world even at the same np.
  EXPECT_GE(pool.worlds_created(), 3u);
}

TEST(CrossTransportPoolTest, DistributedSpecsBypassThePool) {
  // A distributed spec must be rejected fast when misconfigured, not
  // cached: validate() runs before any world exists.
  WorkerPool pool;
  RunOptions opts;
  opts.transport = TransportSpec::parse("tcp:peers=a:1,rank=0");
  EXPECT_THROW(pool.run_job(2, [](Comm&) {}, opts), CheckError);
  EXPECT_EQ(pool.jobs_run(), 0u);
}

}  // namespace
}  // namespace parda::comm
