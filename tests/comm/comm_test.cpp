#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "comm/comm.hpp"

namespace parda::comm {
namespace {

TEST(CommTest, SingleRankRuns) {
  int calls = 0;
  const RunStats stats = run(1, [&](Comm& comm) {
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.size(), 1);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(stats.ranks.size(), 1u);
}

TEST(CommTest, PingPong) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 7, std::vector<std::uint64_t>{1, 2, 3});
      const auto back = comm.recv<std::uint64_t>(1, 8);
      ASSERT_EQ(back.size(), 3u);
      EXPECT_EQ(back[0], 2u);
      EXPECT_EQ(back[2], 4u);
    } else {
      auto data = comm.recv<std::uint64_t>(0, 7);
      for (auto& x : data) ++x;
      comm.send(0, 8, data);
    }
  });
}

TEST(CommTest, EmptyMessage) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 1, std::vector<std::uint64_t>{});
    } else {
      EXPECT_TRUE(comm.recv<std::uint64_t>(0, 1).empty());
    }
  });
}

TEST(CommTest, TagMatchingOutOfOrder) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, /*tag=*/1, std::vector<int>{10});
      comm.send(1, /*tag=*/2, std::vector<int>{20});
    } else {
      // Receive tag 2 first even though tag 1 arrived first.
      EXPECT_EQ(comm.recv<int>(0, 2).at(0), 20);
      EXPECT_EQ(comm.recv<int>(0, 1).at(0), 10);
    }
  });
}

TEST(CommTest, FifoPerSourceAndTag) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 100; ++i) comm.send(1, 5, std::vector<int>{i});
    } else {
      for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(comm.recv<int>(0, 5).at(0), i);
      }
    }
  });
}

TEST(CommTest, WildcardSource) {
  run(3, [](Comm& comm) {
    if (comm.rank() == 0) {
      bool seen1 = false;
      bool seen2 = false;
      for (int i = 0; i < 2; ++i) {
        int src = -2;
        const auto v = comm.recv<int>(kAnySource, 9, &src);
        EXPECT_EQ(v.at(0), src * 100);
        seen1 |= src == 1;
        seen2 |= src == 2;
      }
      EXPECT_TRUE(seen1);
      EXPECT_TRUE(seen2);
    } else {
      comm.send(0, 9, std::vector<int>{comm.rank() * 100});
    }
  });
}

TEST(CommTest, WildcardRecvIsFifoByArrival) {
  // Arrival order is forced with barriers: rank 2's message is in the
  // mailbox strictly before rank 1's. A wildcard recv must hand them out
  // in arrival order even though they live in different source buckets.
  run(3, [](Comm& comm) {
    if (comm.rank() == 2) comm.send(0, 9, std::vector<int>{200});
    comm.barrier();
    if (comm.rank() == 1) comm.send(0, 9, std::vector<int>{100});
    comm.barrier();
    if (comm.rank() == 0) {
      int src = -2;
      EXPECT_EQ(comm.recv<int>(kAnySource, 9, &src).at(0), 200);
      EXPECT_EQ(src, 2);
      EXPECT_EQ(comm.recv<int>(kAnySource, 9, &src).at(0), 100);
      EXPECT_EQ(src, 1);
    }
  });
}

TEST(CommTest, WildcardSkipsNonMatchingTags) {
  // An earlier-arrived message with the wrong tag must not be returned by
  // a wildcard recv, and must still be receivable afterwards.
  run(3, [](Comm& comm) {
    if (comm.rank() == 1) comm.send(0, /*tag=*/5, std::vector<int>{55});
    comm.barrier();
    if (comm.rank() == 2) comm.send(0, /*tag=*/6, std::vector<int>{66});
    comm.barrier();
    if (comm.rank() == 0) {
      int src = -2;
      EXPECT_EQ(comm.recv<int>(kAnySource, 6, &src).at(0), 66);
      EXPECT_EQ(src, 2);
      EXPECT_EQ(comm.recv<int>(kAnySource, 5, &src).at(0), 55);
      EXPECT_EQ(src, 1);
    }
  });
}

TEST(CommTest, SelfSendThroughCollectives) {
  // broadcast and scatterv where the root is also a receiver of its own
  // data, across every root position.
  const int np = 4;
  for (int root = 0; root < np; ++root) {
    run(np, [root](Comm& comm) {
      std::vector<int> data;
      if (comm.rank() == root) data = {root, -root};
      data = comm.broadcast(std::move(data), root, 50);
      EXPECT_EQ(data, (std::vector<int>{root, -root}));

      std::vector<std::vector<int>> pieces;
      if (comm.rank() == root) {
        pieces.resize(static_cast<std::size_t>(comm.size()));
        for (int r = 0; r < comm.size(); ++r) {
          pieces[static_cast<std::size_t>(r)] = {r * 10};
        }
      }
      const auto mine = comm.scatterv(std::move(pieces), root, 51);
      ASSERT_EQ(mine.size(), 1u);
      EXPECT_EQ(mine[0], comm.rank() * 10);
    });
  }
}

TEST(CommTest, BarrierSynchronizes) {
  std::atomic<int> before{0};
  std::atomic<int> after_ok{0};
  run(4, [&](Comm& comm) {
    (void)comm;
    before.fetch_add(1);
    comm.barrier();
    if (before.load() == 4) after_ok.fetch_add(1);
  });
  EXPECT_EQ(after_ok.load(), 4);
}

TEST(CommTest, RepeatedBarriers) {
  std::atomic<int> counter{0};
  run(3, [&](Comm& comm) {
    for (int round = 0; round < 50; ++round) {
      comm.barrier();
      counter.fetch_add(1);
      comm.barrier();
      EXPECT_EQ(counter.load() % 3, 0) << "round " << round;
    }
  });
}

TEST(CommTest, GatherCollectsAllRanks) {
  run(4, [](Comm& comm) {
    const std::vector<std::uint64_t> mine{
        static_cast<std::uint64_t>(comm.rank()),
        static_cast<std::uint64_t>(comm.rank() * 2)};
    auto all = comm.gather(std::span<const std::uint64_t>(mine), 2, 11);
    if (comm.rank() == 2) {
      ASSERT_EQ(all.size(), 4u);
      for (int r = 0; r < 4; ++r) {
        ASSERT_EQ(all[r].size(), 2u);
        EXPECT_EQ(all[r][0], static_cast<std::uint64_t>(r));
        EXPECT_EQ(all[r][1], static_cast<std::uint64_t>(r * 2));
      }
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST(CommTest, BroadcastReachesEveryone) {
  run(5, [](Comm& comm) {
    std::vector<int> data;
    if (comm.rank() == 3) data = {42, 43};
    data = comm.broadcast(std::move(data), 3, 12);
    ASSERT_EQ(data.size(), 2u);
    EXPECT_EQ(data[0], 42);
    EXPECT_EQ(data[1], 43);
  });
}

TEST(CommTest, ReduceSumU64EqualLengths) {
  for (int np : {1, 2, 3, 4, 7, 8}) {
    run(np, [np](Comm& comm) {
      const std::vector<std::uint64_t> mine{
          1, static_cast<std::uint64_t>(comm.rank())};
      const auto total =
          comm.reduce_sum_u64(std::span<const std::uint64_t>(mine), 0, 13);
      if (comm.rank() == 0) {
        ASSERT_EQ(total.size(), 2u);
        EXPECT_EQ(total[0], static_cast<std::uint64_t>(np));
        EXPECT_EQ(total[1],
                  static_cast<std::uint64_t>(np) * (np - 1) / 2);
      } else {
        EXPECT_TRUE(total.empty());
      }
    });
  }
}

TEST(CommTest, ReduceSumU64RaggedLengths) {
  run(4, [](Comm& comm) {
    // Rank r contributes r+1 ones.
    const std::vector<std::uint64_t> mine(
        static_cast<std::size_t>(comm.rank() + 1), 1);
    const auto total =
        comm.reduce_sum_u64(std::span<const std::uint64_t>(mine), 0, 14);
    if (comm.rank() == 0) {
      ASSERT_EQ(total.size(), 4u);
      EXPECT_EQ(total[0], 4u);  // all ranks
      EXPECT_EQ(total[1], 3u);
      EXPECT_EQ(total[2], 2u);
      EXPECT_EQ(total[3], 1u);
    }
  });
}

TEST(CommTest, ReduceSumNonZeroRoot) {
  run(3, [](Comm& comm) {
    const std::vector<std::uint64_t> mine{10};
    const auto total =
        comm.reduce_sum_u64(std::span<const std::uint64_t>(mine), 2, 15);
    if (comm.rank() == 2) {
      ASSERT_EQ(total.size(), 1u);
      EXPECT_EQ(total[0], 30u);
    }
  });
}

TEST(CommTest, ScattervDistributesPieces) {
  run(4, [](Comm& comm) {
    std::vector<std::vector<int>> pieces;
    if (comm.rank() == 1) {
      pieces = {{0}, {1, 11}, {2, 22, 222}, {}};
    }
    const std::vector<int> mine = comm.scatterv(pieces, 1, 30);
    switch (comm.rank()) {
      case 0:
        EXPECT_EQ(mine, (std::vector<int>{0}));
        break;
      case 1:
        EXPECT_EQ(mine, (std::vector<int>{1, 11}));
        break;
      case 2:
        EXPECT_EQ(mine, (std::vector<int>{2, 22, 222}));
        break;
      default:
        EXPECT_TRUE(mine.empty());
    }
  });
}

TEST(CommTest, AllgatherGivesEveryoneEverything) {
  run(3, [](Comm& comm) {
    const std::vector<std::uint64_t> mine(
        static_cast<std::size_t>(comm.rank()) + 1,
        static_cast<std::uint64_t>(comm.rank()));
    const auto all =
        comm.allgather(std::span<const std::uint64_t>(mine), 31);
    ASSERT_EQ(all.size(), 3u);
    for (int r = 0; r < 3; ++r) {
      ASSERT_EQ(all[static_cast<std::size_t>(r)].size(),
                static_cast<std::size_t>(r) + 1);
      for (std::uint64_t v : all[static_cast<std::size_t>(r)]) {
        EXPECT_EQ(v, static_cast<std::uint64_t>(r));
      }
    }
  });
}

TEST(CommTest, AllreduceSumReachesAllRanks) {
  run(5, [](Comm& comm) {
    const std::vector<std::uint64_t> mine{
        static_cast<std::uint64_t>(comm.rank()), 1};
    const auto total = comm.allreduce_sum_u64(
        std::span<const std::uint64_t>(mine), 32);
    ASSERT_EQ(total.size(), 2u);
    EXPECT_EQ(total[0], 10u);  // 0+1+2+3+4
    EXPECT_EQ(total[1], 5u);
  });
}

TEST(CommTest, ExceptionPropagates) {
  EXPECT_THROW(run(2,
                   [](Comm& comm) {
                     if (comm.rank() == 1) {
                       throw std::runtime_error("rank 1 exploded");
                     }
                   }),
               std::runtime_error);
}

TEST(CommTest, StatsCountMessagesAndBytes) {
  const RunStats stats = run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 1, std::vector<std::uint64_t>(10, 0));
    } else {
      comm.recv<std::uint64_t>(0, 1);
    }
  });
  EXPECT_EQ(stats.total_messages(), 1u);
  EXPECT_EQ(stats.total_bytes(), 80u);
  EXPECT_GE(stats.wall_seconds, 0.0);
  EXPECT_GE(stats.max_busy(), 0.0);
  EXPECT_LE(stats.max_busy(), stats.total_busy() + 1e-9);
}

TEST(CommTest, ManyRanksPipelineStress) {
  // Chain: rank i sends to i-1, mirroring Parda's infinity pipeline.
  const int np = 8;
  run(np, [np](Comm& comm) {
    const int r = comm.rank();
    for (int round = 0; round < 20; ++round) {
      if (r < np - 1) {
        const auto incoming = comm.recv<std::uint64_t>(r + 1, 21);
        EXPECT_EQ(incoming.at(0),
                  static_cast<std::uint64_t>(r + 1 + round * 1000));
      }
      if (r > 0) {
        comm.send(r - 1, 21,
                  std::vector<std::uint64_t>{
                      static_cast<std::uint64_t>(r + round * 1000)});
      }
    }
  });
}

}  // namespace
}  // namespace parda::comm
