#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "util/prng.hpp"
#include "util/stats.hpp"
#include "util/types.hpp"

namespace parda {
namespace {

TEST(Xoshiro256Test, DeterministicForSameSeed) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256Test, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Xoshiro256Test, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Xoshiro256Test, BelowOneAlwaysZero) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro256Test, RangeInclusive) {
  Xoshiro256 rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= v == 5;
    saw_hi |= v == 8;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Xoshiro256Test, UniformInUnitInterval) {
  Xoshiro256 rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Xoshiro256Test, JumpProducesDisjointStream) {
  Xoshiro256 a(5);
  Xoshiro256 b(5);
  b.jump();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Mix64Test, IsDeterministicAndSpreads) {
  EXPECT_EQ(mix64(1), mix64(1));
  EXPECT_NE(mix64(1), mix64(2));
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 1000; ++i) outputs.insert(mix64(i));
  EXPECT_EQ(outputs.size(), 1000u);
}

TEST(ZipfSamplerTest, StaysInRange) {
  Xoshiro256 rng(17);
  ZipfSampler zipf(100, 0.8);
  for (int i = 0; i < 5000; ++i) EXPECT_LT(zipf(rng), 100u);
}

TEST(ZipfSamplerTest, RankZeroIsHottest) {
  Xoshiro256 rng(19);
  ZipfSampler zipf(1000, 1.0);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[100]);
  EXPECT_GT(counts[10], counts[500]);
}

TEST(ZipfSamplerTest, AlphaZeroIsRoughlyUniform) {
  Xoshiro256 rng(23);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf(rng)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 1200);
}

TEST(ZipfSamplerTest, SingleElement) {
  Xoshiro256 rng(29);
  ZipfSampler zipf(1, 1.2);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf(rng), 0u);
}

TEST(RandomPermutationTest, IsAPermutation) {
  Xoshiro256 rng(31);
  const auto perm = random_permutation(257, rng);
  ASSERT_EQ(perm.size(), 257u);
  std::set<std::uint64_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 257u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 256u);
}

TEST(StatsTest, MeanAndStdev) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_NEAR(stdev(xs), 1.5811, 1e-3);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(stdev(std::vector<double>{2.0}), 0.0);
}

TEST(StatsTest, MedianAndPercentile) {
  EXPECT_DOUBLE_EQ(median({5, 1, 3}), 3.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 100), 5.0);
}

TEST(StatsTest, Geomean) {
  EXPECT_NEAR(geomean(std::vector<double>{1, 100}), 10.0, 1e-9);
  EXPECT_NEAR(geomean(std::vector<double>{2, 2, 2}), 2.0, 1e-12);
}

TEST(StatsTest, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(12081037), "12,081,037");
  EXPECT_EQ(with_commas(1234567890), "1,234,567,890");
}

TEST(StatsTest, WordsHuman) {
  EXPECT_EQ(words_human(512), "512w");
  EXPECT_EQ(words_human(1ULL << 10), "1Kw");
  EXPECT_EQ(words_human(512ULL << 10), "512Kw");
  EXPECT_EQ(words_human(2ULL << 20), "2Mw");
  EXPECT_EQ(words_human(64ULL << 20), "64Mw");
  EXPECT_EQ(words_human(1000), "1000w");
}

TEST(TypesTest, Sentinels) {
  EXPECT_EQ(kInfiniteDistance, ~0ULL);
  EXPECT_EQ(kNoTimestamp, ~0ULL);
}

}  // namespace
}  // namespace parda
