// Death tests: the PARDA_CHECK guards on invalid configuration must fail
// fast and loudly rather than corrupt an analysis.
#include <gtest/gtest.h>

#include <string>

#include "cachesim/lru_cache.hpp"
#include "cachesim/set_assoc_cache.hpp"
#include "core/rank_state.hpp"
#include "hist/histogram.hpp"
#include "trace/trace_pipe.hpp"
#include "util/check.hpp"

namespace parda {
namespace {

TEST(DeathTest, BoundedRankStateRequiresSpaceOptimization) {
  EXPECT_DEATH(RankState<>(/*bound=*/16, /*space_optimized=*/false),
               "PARDA_CHECK");
}

TEST(DeathTest, TracePipeRejectsZeroCapacity) {
  EXPECT_DEATH(TracePipe pipe(0), "PARDA_CHECK");
}

TEST(DeathTest, LruCacheRejectsZeroCapacity) {
  EXPECT_DEATH(LruCache cache(0), "PARDA_CHECK");
}

TEST(DeathTest, SetAssocRejectsNonDivisibleWays) {
  EXPECT_DEATH(SetAssocCache cache(CacheConfig{10, 3, 1}), "PARDA_CHECK");
}

TEST(DeathTest, HistogramRejectsAbsurdDistances) {
  // The underflow guard (see src/hist/histogram.cpp): a near-2^64 finite
  // distance is an upstream bug, not a growable bin.
  Histogram h;
  EXPECT_DEATH(h.record(kInfiniteDistance - 1), "PARDA_CHECK");
}

TEST(DeathTest, ChecksPrintTheFailingExpression) {
  EXPECT_DEATH(PARDA_CHECK(1 + 1 == 3), "1 \\+ 1 == 3");
}

// PARDA_CHECK_MSG is the throwing flavor: recoverable validation (user
// input, file formats, fault specs) raises CheckError instead of aborting.
TEST(CheckErrorTest, CheckMsgThrowsWithFormattedContext) {
  try {
    PARDA_CHECK_MSG(1 + 1 == 3, "np=%d is out of range [1, %d]", 9, 4);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 + 1 == 3"), std::string::npos) << what;
    EXPECT_NE(what.find("np=9 is out of range [1, 4]"), std::string::npos)
        << what;
  }
}

TEST(CheckErrorTest, CheckMsgPassesWhenConditionHolds) {
  EXPECT_NO_THROW(PARDA_CHECK_MSG(2 + 2 == 4, "never printed"));
}

}  // namespace
}  // namespace parda
