#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/cli.hpp"
#include "util/table.hpp"

namespace parda {
namespace {

std::vector<char*> make_argv(std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& a : args) argv.push_back(a.data());
  return argv;
}

TEST(CliParserTest, ParsesEqualsAndSpaceForms) {
  std::string name = "default";
  std::uint64_t count = 0;
  double rate = 0.0;
  bool flag = false;
  CliParser cli("test");
  cli.add_flag("name", &name, "a string");
  cli.add_flag("count", &count, "a count");
  cli.add_flag("rate", &rate, "a rate");
  cli.add_flag("flag", &flag, "a bool");

  std::vector<std::string> args{"prog",    "--name=widget", "--count",
                                "42",      "--rate=2.5",    "--flag",
                                "positional"};
  auto argv = make_argv(args);
  cli.parse(static_cast<int>(argv.size()), argv.data());

  EXPECT_EQ(name, "widget");
  EXPECT_EQ(count, 42u);
  EXPECT_DOUBLE_EQ(rate, 2.5);
  EXPECT_TRUE(flag);
  ASSERT_EQ(cli.positionals().size(), 1u);
  EXPECT_EQ(cli.positionals()[0], "positional");
}

TEST(CliParserTest, DefaultsSurviveWhenAbsent) {
  std::uint64_t count = 7;
  CliParser cli("test");
  cli.add_flag("count", &count, "a count");
  std::vector<std::string> args{"prog"};
  auto argv = make_argv(args);
  cli.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(count, 7u);
}

TEST(CliParserTest, HexAndBoolValues) {
  std::uint64_t count = 0;
  bool flag = true;
  CliParser cli("test");
  cli.add_flag("count", &count, "a count");
  cli.add_flag("flag", &flag, "a bool");
  std::vector<std::string> args{"prog", "--count=0x10", "--flag=false"};
  auto argv = make_argv(args);
  cli.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(count, 16u);
  EXPECT_FALSE(flag);
}

TEST(CliParserTest, UnknownFlagExits) {
  CliParser cli("test");
  std::vector<std::string> args{"prog", "--bogus=1"};
  auto argv = make_argv(args);
  EXPECT_EXIT(cli.parse(static_cast<int>(argv.size()), argv.data()),
              ::testing::ExitedWithCode(kExitUsage), "unknown flag");
}

TEST(CliParserTest, MissingValueExits) {
  std::uint64_t count = 0;
  CliParser cli("test");
  cli.add_flag("count", &count, "a count");
  std::vector<std::string> args{"prog", "--count"};
  auto argv = make_argv(args);
  EXPECT_EXIT(cli.parse(static_cast<int>(argv.size()), argv.data()),
              ::testing::ExitedWithCode(kExitUsage), "requires a value");
}

TEST(CliParserTest, MalformedIntegerExitsUsage) {
  std::uint64_t count = 0;
  CliParser cli("test");
  cli.add_flag("count", &count, "a count");
  std::vector<std::string> args{"prog", "--count=12abc"};
  auto argv = make_argv(args);
  EXPECT_EXIT(cli.parse(static_cast<int>(argv.size()), argv.data()),
              ::testing::ExitedWithCode(kExitUsage), "needs an integer");
}

TEST(CliParserTest, NegativeUnsignedExitsUsage) {
  std::uint64_t count = 0;
  CliParser cli("test");
  cli.add_flag("count", &count, "a count");
  std::vector<std::string> args{"prog", "--count=-4"};
  auto argv = make_argv(args);
  EXPECT_EXIT(cli.parse(static_cast<int>(argv.size()), argv.data()),
              ::testing::ExitedWithCode(kExitUsage), "non-negative");
}

TEST(CliParserTest, MalformedBoolExitsUsage) {
  bool flag = false;
  CliParser cli("test");
  cli.add_flag("flag", &flag, "a bool");
  std::vector<std::string> args{"prog", "--flag=maybe"};
  auto argv = make_argv(args);
  EXPECT_EXIT(cli.parse(static_cast<int>(argv.size()), argv.data()),
              ::testing::ExitedWithCode(kExitUsage), "needs a boolean");
}

TEST(CliParserTest, HelpExitsZero) {
  CliParser cli("test");
  std::vector<std::string> args{"prog", "--help"};
  auto argv = make_argv(args);
  EXPECT_EXIT(cli.parse(static_cast<int>(argv.size()), argv.data()),
              ::testing::ExitedWithCode(0), "usage");
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer-name", "23456"});

  std::string path = std::string(::testing::TempDir()) + "/table.txt";
  std::FILE* f = std::fopen(path.c_str(), "w+");
  ASSERT_NE(f, nullptr);
  table.print(f);
  std::fflush(f);
  std::rewind(f);
  char buf[512] = {};
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::remove(path.c_str());

  const std::string out(buf, n);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // Each line of the body is equally wide up to trailing spaces: check
  // the header separator exists.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TablePrinterTest, FormatHelpers) {
  EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::fmt(2.0, 0), "2");
  EXPECT_EQ(TablePrinter::fmt_u64(1234567), "1,234,567");
}

}  // namespace
}  // namespace parda
