#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "vm/assembler.hpp"
#include "vm/machine.hpp"
#include "vm/programs.hpp"

namespace parda::vm {
namespace {

TEST(AssemblerTest, MinimalProgram) {
  const Program p = assemble("halt\n");
  ASSERT_EQ(p.code.size(), 1u);
  EXPECT_EQ(p.code[0].op, Op::kHalt);
  EXPECT_EQ(p.memory_words, 0u);
}

TEST(AssemblerTest, DirectivesAndComments) {
  const Program p = assemble(R"(
    .name demo       ; program name
    .mem 64          # memory size
    .data 1 2 3
    halt
  )");
  EXPECT_EQ(p.name, "demo");
  EXPECT_EQ(p.memory_words, 64u);
  EXPECT_EQ(p.initial_memory, (std::vector<std::int64_t>{1, 2, 3}));
}

TEST(AssemblerTest, VectorSumRunsCorrectly) {
  // The assembly equivalent of programs.cpp's vector_sum(4) with data.
  const Program p = assemble(R"(
    .name vecsum
    .mem 4
    .data 10 20 30 40
      movi r1, 0
      movi r2, 4
      movi r3, 0
    loop:
      load r4, r1, 0
      add  r3, r3, r4
      addi r1, r1, 1
      blt  r1, r2, loop
      halt
  )");
  Machine m(p);
  std::vector<Addr> accessed;
  m.run([&](Addr a) { accessed.push_back(a); });
  EXPECT_EQ(m.reg(3), 100);
  EXPECT_EQ(accessed, (std::vector<Addr>{0, 1, 2, 3}));
}

TEST(AssemblerTest, LabelsForwardAndBackward) {
  const Program p = assemble(R"(
      jmp skip
    back:
      halt
    skip:
      movi r1, 7
      jmp back
  )");
  Machine m(p);
  m.run(nullptr);
  EXPECT_EQ(m.reg(1), 7);
}

TEST(AssemblerTest, NegativeImmediates) {
  const Program p = assemble(R"(
      movi r1, 10
      addi r1, r1, -3
      halt
  )");
  Machine m(p);
  m.run(nullptr);
  EXPECT_EQ(m.reg(1), 7);
}

TEST(AssemblerTest, ShrAndStore) {
  const Program p = assemble(R"(
      .mem 2
      movi r1, 12
      shr  r2, r1, 2
      movi r3, 0
      store r2, r3, 1
      halt
  )");
  Machine m(p);
  m.run(nullptr);
  EXPECT_EQ(m.memory()[1], 3);
}

TEST(AssemblerTest, MatchesHandBuiltProgram) {
  // The text form of list-style summation must trace identically to the
  // builder API's vector_sum.
  const Program built = vector_sum(16);
  const Program text = assemble(R"(
    .mem 16
      movi r1, 0
      movi r2, 16
      movi r3, 0
    loop:
      load r4, r1, 0
      add  r3, r3, r4
      addi r1, r1, 1
      blt  r1, r2, loop
      halt
  )");
  EXPECT_EQ(trace_program(built), trace_program(text));
}

TEST(AssemblerTest, DataImpliesMemorySize) {
  const Program p = assemble(".data 1 2 3 4 5\nhalt\n");
  EXPECT_EQ(p.memory_words, 5u);
}

TEST(AssemblerTest, SyntaxErrors) {
  EXPECT_THROW(assemble("bogus r1, r2\n"), std::invalid_argument);
  EXPECT_THROW(assemble("movi r99, 1\n"), std::invalid_argument);
  EXPECT_THROW(assemble("movi 5, 1\n"), std::invalid_argument);
  EXPECT_THROW(assemble("add r1, r2\n"), std::invalid_argument);  // arity
  EXPECT_THROW(assemble("jmp nowhere\n"), std::invalid_argument);
  EXPECT_THROW(assemble("dup: halt\ndup: halt\n"), std::invalid_argument);
  EXPECT_THROW(assemble(".mem lots\n"), std::invalid_argument);
  EXPECT_THROW(assemble(".weird 1\n"), std::invalid_argument);
  EXPECT_THROW(assemble("movi r1, label\n"), std::invalid_argument);
}

TEST(AssemblerTest, ErrorMessagesCarryLineNumbers) {
  try {
    assemble("halt\nhalt\nbroken op\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(AssemblerFileTest, MissingFileThrows) {
  EXPECT_THROW(assemble_file("/no/such/file.s"), std::invalid_argument);
}

}  // namespace
}  // namespace parda::vm
