#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "seq/olken.hpp"
#include "vm/machine.hpp"
#include "vm/programs.hpp"

namespace parda::vm {
namespace {

TEST(MachineTest, HaltStopsExecution) {
  Program p{"halt", {Instr{Op::kHalt}}, 0, {}};
  Machine m(p);
  EXPECT_EQ(m.run(nullptr), 1u);
  EXPECT_EQ(m.mem_accesses(), 0u);
}

TEST(MachineTest, ArithmeticWorks) {
  Program p{"arith",
            {
                Instr{Op::kMovi, 1, 0, 0, 6},
                Instr{Op::kMovi, 2, 0, 0, 7},
                Instr{Op::kMul, 3, 1, 2, 0},
                Instr{Op::kAddi, 3, 3, 0, 8},
                Instr{Op::kHalt},
            },
            0,
            {}};
  Machine m(p);
  m.run(nullptr);
  EXPECT_EQ(m.reg(3), 50);
}

TEST(MachineTest, LoadStoreInstrumented) {
  Program p{"ls",
            {
                Instr{Op::kMovi, 1, 0, 0, 41},
                Instr{Op::kMovi, 2, 0, 0, 3},  // address
                Instr{Op::kStore, 1, 2, 0, 0},
                Instr{Op::kLoad, 3, 2, 0, 1},  // mem[4]
                Instr{Op::kHalt},
            },
            8,
            {}};
  Machine m(p);
  std::vector<Addr> accessed;
  m.run([&](Addr a) { accessed.push_back(a); });
  EXPECT_EQ(accessed, (std::vector<Addr>{3, 4}));
  EXPECT_EQ(m.memory()[3], 41);
  EXPECT_EQ(m.reg(3), 0);
}

TEST(MachineTest, OutOfBoundsAccessThrows) {
  Program p{"oob",
            {Instr{Op::kMovi, 1, 0, 0, 100}, Instr{Op::kLoad, 2, 1, 0, 0},
             Instr{Op::kHalt}},
            8,
            {}};
  Machine m(p);
  EXPECT_THROW(m.run(nullptr), std::runtime_error);
}

TEST(MachineTest, MaxStepsBoundsRunawayLoops) {
  Program p{"spin", {Instr{Op::kJmp, 0, 0, 0, 0}}, 0, {}};
  Machine m(p);
  EXPECT_EQ(m.run(nullptr, 1000), 1000u);
}

TEST(MachineTest, ResetRestoresInitialMemory) {
  Program p{"wr",
            {Instr{Op::kMovi, 1, 0, 0, 9}, Instr{Op::kStore, 1, 2, 0, 0},
             Instr{Op::kHalt}},
            4,
            {5, 6, 7, 8}};
  Machine m(p);
  EXPECT_EQ(m.memory()[0], 5);
  m.run(nullptr);
  EXPECT_EQ(m.memory()[0], 9);
  m.reset();
  EXPECT_EQ(m.memory()[0], 5);
  EXPECT_EQ(m.memory()[3], 8);
}

TEST(VectorSumTest, OneLoadPerElement) {
  const auto trace = trace_program(vector_sum(100));
  ASSERT_EQ(trace.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(trace[i], i);
  // All compulsory misses: footprint == trace length.
  const Histogram h = olken_analysis(trace);
  EXPECT_EQ(h.infinities(), 100u);
}

TEST(SmoothPassesTest, HasShortAndLongReuse) {
  const std::uint64_t n = 64;
  const auto trace = trace_program(smooth_passes(n, 3));
  // Per pass: (n-1) iterations x 3 accesses.
  EXPECT_EQ(trace.size(), 3 * (n - 1) * 3);
  const Histogram h = olken_analysis(trace);
  // The load of a[i] at iteration i reuses the a[i] loaded as "a[i+1]" in
  // iteration i-1; only b[i-1] intervenes, so distance 1 is common.
  EXPECT_GT(h.at(1), 0u);
  // Inter-pass reuse at distance ~ full footprint.
  EXPECT_GT(h.hits_below(2 * n) - h.hits_below(2), 0u);
  EXPECT_EQ(h.infinities(), 2 * n - 1);  // a[] fully, b[0..n-2]
}

TEST(MatmulTest, TraceLengthAndFootprint) {
  const std::uint64_t n = 6;
  const auto trace = trace_program(matmul(n));
  // Per (i, j): n iterations of (A load + B load) + C load + C store.
  EXPECT_EQ(trace.size(), n * n * (2 * n + 2));
  std::set<Addr> distinct(trace.begin(), trace.end());
  EXPECT_EQ(distinct.size(), 3 * n * n);
}

TEST(MatmulTest, ComputesCorrectProduct) {
  // With A and B zero-initialized the product is zero; instead, initialize
  // via the data segment: A = all ones, B = identity => C = A.
  const std::uint64_t n = 4;
  Program p = matmul(n);
  p.initial_memory.assign(3 * n * n, 0);
  for (std::uint64_t i = 0; i < n * n; ++i) p.initial_memory[i] = 1;
  for (std::uint64_t i = 0; i < n; ++i) {
    p.initial_memory[n * n + i * n + i] = 1;
  }
  Machine m(p);
  m.run(nullptr);
  for (std::uint64_t i = 0; i < n * n; ++i) {
    EXPECT_EQ(m.memory()[2 * n * n + i], 1) << i;
  }
}

TEST(BinarySearchTest, LogDepthAccessPattern) {
  const std::uint64_t n = 1024;
  const auto trace = trace_program(binary_search(n, 50));
  // Each query probes ceil(log2(n)) = 10 levels at most and at least a few.
  EXPECT_GE(trace.size(), 50u * 5);
  EXPECT_LE(trace.size(), 50u * 11);
  // The root (n/2 - ish) is touched by every query: the first probe of
  // each search is mid = (0 + n) >> 1.
  std::size_t root_touches = 0;
  for (Addr a : trace) {
    if (a == n / 2) ++root_touches;
  }
  EXPECT_EQ(root_touches, 50u);
  // Heavy reuse of the top of the "tree": root reuse distance is small.
  const Histogram h = olken_analysis(trace);
  EXPECT_GT(h.hits_below(32), trace.size() / 4);
}

TEST(BinarySearchTest, AllProbesInBounds) {
  const auto trace = trace_program(binary_search(100, 200));
  for (Addr a : trace) EXPECT_LT(a, 100u);
}

TEST(BubbleSortTest, ActuallySorts) {
  const std::uint64_t n = 64;
  Program p = bubble_sort(n);
  Machine m(p);
  m.run(nullptr);
  for (std::uint64_t i = 0; i < n; ++i) {
    EXPECT_EQ(m.memory()[i], static_cast<std::int64_t>(i)) << i;
  }
}

TEST(BubbleSortTest, QuadraticReferenceCount) {
  const std::uint64_t n = 32;
  const auto trace = trace_program(bubble_sort(n));
  // n passes x (n-1) iterations x (2 loads + 0..2 stores).
  EXPECT_GE(trace.size(), n * (n - 1) * 2);
  EXPECT_LE(trace.size(), n * (n - 1) * 4);
  // Tiny working set: everything after warmup reuses within 2n.
  const Histogram h = olken_analysis(trace);
  EXPECT_EQ(h.infinities(), n);
  EXPECT_EQ(h.hits_below(n), h.finite_total());
}

TEST(ListChaseTest, VisitsAllNodesPerRound) {
  const auto trace = trace_program(list_chase(97, 2));
  ASSERT_EQ(trace.size(), 2 * 97u);
  const std::set<Addr> first(trace.begin(), trace.begin() + 97);
  EXPECT_EQ(first.size(), 97u);
  const Histogram h = olken_analysis(trace);
  EXPECT_EQ(h.infinities(), 97u);
  EXPECT_EQ(h.at(96), 97u);
}

}  // namespace
}  // namespace parda::vm
