// The ISSUE-7 acceptance scenario: >= 8 concurrent tenants on one shared
// runtime — one aborting every window via fault injection, one exceeding
// its memory quota — driven from concurrent client threads. The service
// must never crash, unaffected tenants must be bit-identical to solo
// runs, the degraded tenant's resident state must stay under its quota,
// and a drain must flush every tenant's histogram. Runs under TSAN and
// ASan in CI (see CMakePresets.json).
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "apps/online_mrc.hpp"
#include "comm/fault.hpp"
#include "core/runtime.hpp"
#include "hist/histogram.hpp"
#include "serve/service.hpp"
#include "workload/generators.hpp"

namespace parda::serve {
namespace {

std::size_t live_threads() {
  std::size_t n = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator("/proc/self/task")) {
    (void)entry;
    ++n;
  }
  return n;
}

/// Baseline for leak checks: runs one throwaway thread first so lazily
/// spawned runtime threads (e.g. a sanitizer's background thread) exist
/// before the count is taken.
std::size_t thread_baseline() {
  std::thread([] {}).join();
  return live_threads();
}

/// Joined threads can linger in /proc/self/task for a moment; poll before
/// declaring a leak.
void expect_no_thread_leak(std::size_t allowed) {
  for (int i = 0; i < 100 && live_threads() > allowed; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_LE(live_threads(), allowed);
}

std::vector<Addr> tenant_trace(std::uint64_t refs, std::uint64_t footprint,
                               std::uint64_t seed) {
  ZipfWorkload w(footprint, 0.9, seed);
  return generate_trace(w, refs);
}

// Every tenant feeds in fixed-size batches; window rolls depend only on
// the tenant's own cumulative reference count, so interleaving with other
// tenants cannot change its histogram.
void feed_in_batches(MrcService& service, const std::string& name,
                     std::span<const Addr> trace, std::size_t batch) {
  for (std::size_t off = 0; off < trace.size(); off += batch) {
    const std::size_t n = std::min(batch, trace.size() - off);
    service.ingest(name, trace.subspan(off, n));
  }
}

TEST(ServeChaosTest, ConcurrentTenantsWithFaultsAndQuotas) {
  constexpr int kCleanTenants = 6;  // + 1 faulty + 1 hog = 8 total
  constexpr std::uint64_t kRefs = 12000;
  // The hog's exact-mode footprint is its reserved window buffer (128 KiB)
  // plus the aggregate histogram, so this quota trips once the first
  // window lands; the degraded sampler at a 256-entry budget sits well
  // under it.
  constexpr std::uint64_t kMemoryQuota = 128 * 1024;

  core::PardaRuntime runtime;
  MrcService service(runtime);

  // num_procs=2: rank 1 always sends (infinities, gather, reduce) and
  // never recvs, so op=send is the reliably-firing injection point.
  const comm::FaultPlan plan = comm::FaultPlan::parse("rank=1,op=send,n=0");
  TenantConfig base;
  base.bound = 1 << 12;
  base.window = 2048;
  base.num_procs = 2;

  TenantConfig faulty = base;
  faulty.fault_plan = &plan;
  faulty.quotas.max_aborts = ~std::uint64_t{0};  // abort forever, never out

  TenantConfig hog = base;
  hog.window = 16384;  // 128 KiB buffer alone
  hog.quotas.memory_quota_bytes = kMemoryQuota;
  hog.quotas.sampler_tracked = 256;

  ASSERT_EQ(service.register_tenant("faulty", faulty), Admission::kOk);
  ASSERT_EQ(service.register_tenant("hog", hog), Admission::kOk);
  std::vector<std::string> clean_names;
  std::vector<std::vector<Addr>> clean_traces;
  for (int i = 0; i < kCleanTenants; ++i) {
    const std::string name = "clean" + std::to_string(i);
    ASSERT_EQ(service.register_tenant(name, base), Admission::kOk);
    clean_names.push_back(name);
    clean_traces.push_back(
        tenant_trace(kRefs, 500 + 100 * static_cast<std::uint64_t>(i),
                     static_cast<std::uint64_t>(i) + 1));
  }
  const auto faulty_trace = tenant_trace(kRefs, 400, 99);
  const auto hog_trace = tenant_trace(4 * kRefs, 200000, 98);

  const std::size_t threads_before = thread_baseline();

  // One client thread per tenant, all hammering the shared pool at once.
  {
    std::vector<std::thread> clients;
    clients.emplace_back([&] {
      // Aborts EVERY completed window: 2048-ref batches guarantee one
      // window job (and one World poison/recycle) per ingest.
      feed_in_batches(service, "faulty", faulty_trace, 2048);
    });
    clients.emplace_back(
        [&] { feed_in_batches(service, "hog", hog_trace, 4096); });
    for (int i = 0; i < kCleanTenants; ++i) {
      clients.emplace_back([&, i] {
        feed_in_batches(service, clean_names[static_cast<std::size_t>(i)],
                        clean_traces[static_cast<std::size_t>(i)], 1536);
      });
    }
    for (auto& t : clients) t.join();
  }

  // The faulty tenant aborted every window but was never quarantined
  // (infinite abort quota) and never completed a window.
  {
    const auto s = service.status("faulty");
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(s->mode, TenantMode::kExact);
    EXPECT_EQ(s->windows, 0u);
    EXPECT_GE(s->aborts, kRefs / 2048 - 1);
  }

  // The hog degraded and its resident state sits under its quota.
  {
    const auto s = service.status("hog");
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(s->mode, TenantMode::kDegraded);
    EXPECT_LT(s->footprint_bytes, kMemoryQuota);
    EXPECT_LT(s->sample_rate, 1.0);
  }

  // No worker-thread leak: the pool parked its workers; repeated
  // abort/recycle cycles must not have spawned extras beyond the pool's
  // steady-state capacity (client threads are joined already). Checked
  // before the solo-comparison runtime below adds its own workers.
  expect_no_thread_leak(threads_before +
                        static_cast<std::size_t>(runtime.capacity()));

  // Unaffected tenants: bit-identical to a solo run of the same stream on
  // a fresh runtime with nothing else going on.
  {
    core::PardaRuntime solo_runtime;
    for (int i = 0; i < kCleanTenants; ++i) {
      WindowedMrcMonitor solo(solo_runtime, base.bound, base.window,
                              base.decay, base.num_procs);
      solo.feed(clean_traces[static_cast<std::size_t>(i)]);
      const auto served =
          service.histogram(clean_names[static_cast<std::size_t>(i)]);
      ASSERT_TRUE(served.has_value()) << clean_names[i];
      EXPECT_TRUE(*served == solo.snapshot())
          << clean_names[i] << " diverged from its solo run";
      const auto s = service.status(clean_names[static_cast<std::size_t>(i)]);
      EXPECT_EQ(s->mode, TenantMode::kExact);
      EXPECT_EQ(s->aborts, 0u);
      EXPECT_EQ(s->references, kRefs);
    }
  }

  // Graceful drain: every tenant flushes, including the quarantine-free
  // faulty one (its safe aggregate is empty) and the degraded hog.
  const auto flushed = service.drain();
  ASSERT_EQ(flushed.size(), 2u + kCleanTenants);
  for (int i = 0; i < kCleanTenants; ++i) {
    const auto& h = flushed.at(clean_names[static_cast<std::size_t>(i)]);
    EXPECT_EQ(h.total(), kRefs) << clean_names[i];
  }
  EXPECT_GT(flushed.at("hog").total(), 0u);
  EXPECT_TRUE(service.draining());
  EXPECT_EQ(service.ingest("clean0", clean_traces[0]), Admission::kDraining);
}

// The satellite fault-isolation test at the monitor layer: N windowed
// monitors multiplex one runtime, one of them aborting every window via
// its session's fault plan. The others' histograms must equal solo runs,
// and the pool must not leak threads across repeated World recoveries.
TEST(ServeChaosTest, MonitorsShareRuntimeAcrossRepeatedAborts) {
  core::PardaRuntime runtime;
  const comm::FaultPlan plan = comm::FaultPlan::parse("rank=1,op=send,n=0");

  constexpr int kMonitors = 4;
  constexpr std::uint64_t kWindow = 1024;
  std::vector<std::vector<Addr>> traces;
  for (int i = 0; i < kMonitors; ++i) {
    traces.push_back(tenant_trace(8 * kWindow, 300, 40 + i));
  }

  std::vector<WindowedMrcMonitor> monitors;
  monitors.reserve(kMonitors);
  for (int i = 0; i < kMonitors; ++i) {
    monitors.emplace_back(runtime, /*bound=*/1 << 12, kWindow, 1.0, 2);
  }
  monitors[0].options().run_options.fault_plan = &plan;

  const std::size_t threads_before = thread_baseline();
  std::vector<std::thread> feeders;
  for (int i = 0; i < kMonitors; ++i) {
    feeders.emplace_back([&, i] {
      const auto& trace = traces[static_cast<std::size_t>(i)];
      for (std::size_t off = 0; off < trace.size(); off += kWindow) {
        auto batch = std::span(trace).subspan(off, kWindow);
        if (i == 0) {
          EXPECT_THROW(monitors[0].feed(batch), std::exception);
        } else {
          monitors[static_cast<std::size_t>(i)].feed(batch);
        }
      }
    });
  }
  for (auto& t : feeders) t.join();

  EXPECT_EQ(monitors[0].windows_completed(), 0u);
  EXPECT_EQ(monitors[0].windows_aborted(), 8u);
  // Thread-leak check before the solo runtime spawns its own workers.
  expect_no_thread_leak(threads_before +
                        static_cast<std::size_t>(runtime.capacity()));

  core::PardaRuntime solo_runtime;
  for (int i = 1; i < kMonitors; ++i) {
    WindowedMrcMonitor solo(solo_runtime, 1 << 12, kWindow, 1.0, 2);
    solo.feed(traces[static_cast<std::size_t>(i)]);
    EXPECT_TRUE(monitors[static_cast<std::size_t>(i)].snapshot() ==
                solo.snapshot())
        << "monitor " << i << " diverged";
  }
}

}  // namespace
}  // namespace parda::serve
