#include "serve/service.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "apps/online_mrc.hpp"
#include "comm/fault.hpp"
#include "core/runtime.hpp"
#include "hist/histogram.hpp"
#include "workload/generators.hpp"

namespace parda::serve {
namespace {

using std::chrono::steady_clock;

std::vector<Addr> zipf_trace(std::uint64_t refs, std::uint64_t footprint,
                             std::uint64_t seed) {
  ZipfWorkload w(footprint, 0.9, seed);
  return generate_trace(w, refs);
}

TenantConfig small_tenant() {
  TenantConfig config;
  config.bound = 1 << 12;
  config.window = 1024;
  config.num_procs = 2;
  return config;
}

TEST(MrcServiceTest, RegisterValidation) {
  core::PardaRuntime runtime;
  MrcService::Config cfg;
  cfg.max_tenants = 2;
  MrcService service(runtime, cfg);

  EXPECT_EQ(service.register_tenant("alice"), Admission::kOk);
  EXPECT_EQ(service.register_tenant("alice"), Admission::kAlreadyExists);
  EXPECT_EQ(service.register_tenant("bad name!"), Admission::kMalformed);
  EXPECT_EQ(service.register_tenant(""), Admission::kMalformed);
  EXPECT_EQ(service.register_tenant(std::string(65, 'a')),
            Admission::kMalformed);
  EXPECT_EQ(service.register_tenant("bob"), Admission::kOk);
  EXPECT_EQ(service.register_tenant("carol"), Admission::kTenantLimit);
  EXPECT_EQ(service.tenant_count(), 2u);
}

TEST(MrcServiceTest, IngestMatchesSoloMonitor) {
  core::PardaRuntime runtime;
  MrcService service(runtime);
  const TenantConfig cfg = small_tenant();
  ASSERT_EQ(service.register_tenant("alice", cfg), Admission::kOk);

  const auto trace = zipf_trace(10000, 400, 1);
  EXPECT_EQ(service.ingest("alice", trace), Admission::kOk);

  WindowedMrcMonitor solo(runtime, cfg.bound, cfg.window, cfg.decay,
                          cfg.num_procs);
  solo.feed(trace);
  const auto hist = service.histogram("alice");
  ASSERT_TRUE(hist.has_value());
  EXPECT_TRUE(*hist == solo.snapshot());

  const auto status = service.status("alice");
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->references, trace.size());
  EXPECT_EQ(status->windows, trace.size() / cfg.window);
  EXPECT_EQ(status->mode, TenantMode::kExact);
}

TEST(MrcServiceTest, UnknownTenantAndBatchQuotas) {
  core::PardaRuntime runtime;
  MrcService service(runtime);
  TenantConfig cfg = small_tenant();
  cfg.quotas.max_batch_refs = 100;
  cfg.quotas.max_queued_bytes = 4096;  // 512 queued refs
  ASSERT_EQ(service.register_tenant("alice", cfg), Admission::kOk);

  const std::vector<Addr> small(50, 1);
  const std::vector<Addr> big(101, 1);
  EXPECT_EQ(service.ingest("nobody", small), Admission::kUnknownTenant);
  EXPECT_EQ(service.ingest("alice", big), Admission::kBatchTooLarge);
  // 50-ref batches accumulate in the pending window (window = 1024 never
  // rolls); the 11th would exceed 512 queued refs.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(service.ingest("alice", small), Admission::kOk) << i;
  }
  EXPECT_EQ(service.ingest("alice", small), Admission::kQueueFull);
}

TEST(MrcServiceTest, TokenBucketRateLimit) {
  core::PardaRuntime runtime;
  MrcService service(runtime);
  TenantConfig cfg = small_tenant();
  cfg.quotas.max_refs_per_sec = 1000;
  ASSERT_EQ(service.register_tenant("alice", cfg), Admission::kOk);

  const std::vector<Addr> batch(800, 7);
  const auto t0 = steady_clock::now();
  // Burst capacity is one second's worth (1000 tokens): the first batch
  // leaves 200 tokens, so a second batch at the same instant is bounced.
  EXPECT_EQ(service.ingest("alice", batch, t0), Admission::kOk);
  EXPECT_EQ(service.ingest("alice", batch, t0), Admission::kRateLimited);
  // Half a second refills 500 tokens: 700 < 800, still bounced.
  EXPECT_EQ(service.ingest("alice", batch,
                           t0 + std::chrono::milliseconds(500)),
            Admission::kRateLimited);
  EXPECT_EQ(service.ingest("alice", batch,
                           t0 + std::chrono::milliseconds(1200)),
            Admission::kOk);
}

TEST(MrcServiceTest, MemoryQuotaDegradesInPlace) {
  core::PardaRuntime runtime;
  MrcService service(runtime);
  TenantConfig cfg = small_tenant();
  // Windowed analysis bounds exact state by O(window); an 8K-ref window's
  // buffer alone is 64 KiB, so this quota forces degradation quickly.
  cfg.window = 8192;
  cfg.quotas.memory_quota_bytes = 64 * 1024;
  cfg.quotas.sampler_tracked = 256;
  ASSERT_EQ(service.register_tenant("hog", cfg), Admission::kOk);

  // A huge-footprint stream: the exact pipeline's aggregate histogram and
  // window buffer blow past 64 KiB, forcing degradation.
  const auto trace = zipf_trace(60000, 50000, 2);
  Admission last = Admission::kOk;
  for (std::size_t off = 0; off < trace.size(); off += 4096) {
    const auto n = std::min<std::size_t>(4096, trace.size() - off);
    last = service.ingest("hog", std::span(trace).subspan(off, n));
    ASSERT_TRUE(admitted(last));
  }
  EXPECT_EQ(last, Admission::kDegraded);
  const auto status = service.status("hog");
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->mode, TenantMode::kDegraded);
  EXPECT_LE(status->footprint_bytes, cfg.quotas.memory_quota_bytes * 2);
  // Still serving histograms after degradation.
  EXPECT_TRUE(service.histogram("hog").has_value());

  // Once degraded, footprint stops growing: feed the same stream again
  // and the resident state must stay put (constant-memory contract).
  const auto fp_before = service.status("hog")->footprint_bytes;
  for (std::size_t off = 0; off < trace.size(); off += 4096) {
    const auto n = std::min<std::size_t>(4096, trace.size() - off);
    ASSERT_TRUE(admitted(
        service.ingest("hog", std::span(trace).subspan(off, n))));
  }
  const auto fp_after = service.status("hog")->footprint_bytes;
  EXPECT_LE(fp_after, fp_before + (fp_before / 4));
}

TEST(MrcServiceTest, FaultingTenantIsQuarantinedAndIsolated) {
  core::PardaRuntime runtime;
  MrcService service(runtime);
  // With num_procs=2, rank 1 (the last rank) only ever sends — infinities
  // left, then gather/reduce — so op=send is the op that always happens.
  const comm::FaultPlan plan = comm::FaultPlan::parse("rank=1,op=send,n=0");
  TenantConfig faulty = small_tenant();
  faulty.fault_plan = &plan;
  faulty.quotas.max_aborts = 1;
  const TenantConfig clean = small_tenant();
  ASSERT_EQ(service.register_tenant("faulty", faulty), Admission::kOk);
  ASSERT_EQ(service.register_tenant("clean", clean), Admission::kOk);

  const auto trace = zipf_trace(4096, 300, 3);
  // The first completed window aborts -> immediate quarantine.
  EXPECT_EQ(service.ingest("faulty", trace), Admission::kQuarantined);
  EXPECT_EQ(service.status("faulty")->mode, TenantMode::kQuarantined);
  EXPECT_GE(service.status("faulty")->aborts, 1u);
  EXPECT_EQ(service.ingest("faulty", trace), Admission::kQuarantined);

  // The clean tenant, sharing the same pool, is bit-identical to solo.
  EXPECT_EQ(service.ingest("clean", trace), Admission::kOk);
  WindowedMrcMonitor solo(runtime, clean.bound, clean.window, clean.decay,
                          clean.num_procs);
  solo.feed(trace);
  EXPECT_TRUE(*service.histogram("clean") == solo.snapshot());
}

TEST(MrcServiceTest, AbortQuotaToleratesFaultsBelowThreshold) {
  core::PardaRuntime runtime;
  MrcService service(runtime);
  const comm::FaultPlan plan = comm::FaultPlan::parse("rank=1,op=send,n=0");
  TenantConfig cfg = small_tenant();
  cfg.fault_plan = &plan;
  cfg.quotas.max_aborts = 1000;  // effectively never quarantine
  ASSERT_EQ(service.register_tenant("flaky", cfg), Admission::kOk);

  const auto trace = zipf_trace(1024, 100, 4);
  for (int i = 0; i < 5; ++i) {
    // Every window job aborts, but the tenant stays registered and the
    // service keeps answering (repeated World recycling underneath).
    EXPECT_EQ(service.ingest("flaky", trace), Admission::kOk) << i;
  }
  const auto status = service.status("flaky");
  EXPECT_EQ(status->mode, TenantMode::kExact);
  EXPECT_EQ(status->aborts, 5u);
  EXPECT_EQ(status->windows, 0u);
}

TEST(MrcServiceTest, DegradeAllShedPolicy) {
  core::PardaRuntime runtime;
  MrcService::Config cfg;
  cfg.shed = ShedPolicy::kDegradeAll;
  cfg.global_memory_quota_bytes = 20 * 1024;
  cfg.tenant_defaults = small_tenant();
  MrcService service(runtime, cfg);
  ASSERT_EQ(service.register_tenant("a"), Admission::kOk);
  ASSERT_EQ(service.register_tenant("b"), Admission::kOk);

  const auto trace = zipf_trace(40000, 30000, 5);
  Admission last = Admission::kOk;
  for (std::size_t off = 0; off < trace.size() && last != Admission::kDegraded;
       off += 2048) {
    const auto n = std::min<std::size_t>(2048, trace.size() - off);
    last = service.ingest("a", std::span(trace).subspan(off, n));
    ASSERT_TRUE(admitted(last));
  }
  // Pushing tenant a over the global quota degraded EVERYONE in place.
  EXPECT_EQ(last, Admission::kDegraded);
  EXPECT_EQ(service.status("a")->mode, TenantMode::kDegraded);
  EXPECT_EQ(service.status("b")->mode, TenantMode::kDegraded);
}

TEST(MrcServiceTest, RejectNewestShedPolicy) {
  core::PardaRuntime runtime;
  MrcService::Config cfg;
  cfg.shed = ShedPolicy::kRejectNewest;
  cfg.global_memory_quota_bytes = 12 * 1024;
  cfg.tenant_defaults = small_tenant();
  MrcService service(runtime, cfg);
  ASSERT_EQ(service.register_tenant("a"), Admission::kOk);

  const auto trace = zipf_trace(30000, 20000, 6);
  Admission last = Admission::kOk;
  for (std::size_t off = 0; off < trace.size() && last != Admission::kShedding;
       off += 2048) {
    const auto n = std::min<std::size_t>(2048, trace.size() - off);
    last = service.ingest("a", std::span(trace).subspan(off, n));
  }
  EXPECT_EQ(last, Admission::kShedding);
  // Shedding does not mutate the tenant: it stays exact.
  EXPECT_EQ(service.status("a")->mode, TenantMode::kExact);
}

TEST(MrcServiceTest, DrainFlushesAndStopsAdmission) {
  core::PardaRuntime runtime;
  MrcService service(runtime);
  const TenantConfig cfg = small_tenant();
  ASSERT_EQ(service.register_tenant("alice", cfg), Admission::kOk);
  ASSERT_EQ(service.register_tenant("bob", cfg), Admission::kOk);

  const auto trace = zipf_trace(3000, 200, 7);  // partial window left over
  ASSERT_EQ(service.ingest("alice", trace), Admission::kOk);
  ASSERT_EQ(service.ingest("bob", trace), Admission::kOk);

  WindowedMrcMonitor solo(runtime, cfg.bound, cfg.window, cfg.decay,
                          cfg.num_procs);
  solo.feed(trace);
  const Histogram expected = solo.snapshot();

  const auto flushed = service.drain();
  ASSERT_EQ(flushed.size(), 2u);
  EXPECT_TRUE(flushed.at("alice") == expected);
  EXPECT_TRUE(flushed.at("bob") == expected);
  // Every reference fed, including the partial in-flight window, made it
  // into the flushed histogram.
  EXPECT_EQ(flushed.at("alice").total(), trace.size());

  EXPECT_TRUE(service.draining());
  EXPECT_EQ(service.ingest("alice", trace), Admission::kDraining);
  EXPECT_EQ(service.register_tenant("carol"), Admission::kDraining);
  // Drain is idempotent.
  EXPECT_TRUE(service.drain().at("alice") == expected);
}

// --- HTTP route dispatch (no sockets: drive route() directly) ---------------

using Request = obs::TelemetryServer::Request;

Request post(std::string path, std::string body = "",
             std::string content_type = "text/plain") {
  return Request{"POST", std::move(path), std::move(content_type),
                 std::move(body)};
}

Request get(std::string path) { return Request{"GET", std::move(path), "", ""}; }

TEST(MrcServiceRouteTest, RegisterIngestStatusHistogram) {
  core::PardaRuntime runtime;
  MrcService service(runtime);

  auto r = service.route(post("/tenants/alice",
                              "{\"bound\": 4096, \"window\": 512}"));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, 200);

  r = service.route(post("/ingest/alice", "1\n2\n0x10\n1\n"));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, 200);
  EXPECT_NE(r->body.find("\"accepted\":4"), std::string::npos);

  r = service.route(get("/tenants"));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, 200);
  EXPECT_NE(r->body.find("parda.tenants.v1"), std::string::npos);
  EXPECT_NE(r->body.find("\"alice\""), std::string::npos);

  r = service.route(get("/tenants/alice"));
  ASSERT_TRUE(r.has_value());
  EXPECT_NE(r->body.find("\"references\":4"), std::string::npos);

  r = service.route(get("/tenants/alice/histogram"));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, 200);
  const Histogram h = Histogram::from_json(r->body);
  EXPECT_EQ(h.total(), 4u);

  // Unrelated paths fall through to the telemetry built-ins.
  EXPECT_FALSE(service.route(get("/metrics")).has_value());
  EXPECT_FALSE(service.route(get("/healthz")).has_value());
}

TEST(MrcServiceRouteTest, ErrorStatuses) {
  core::PardaRuntime runtime;
  MrcService::Config cfg;
  cfg.max_tenants = 1;
  MrcService service(runtime, cfg);

  EXPECT_EQ(service.route(get("/tenants/ghost"))->status, 404);
  EXPECT_EQ(service.route(post("/ingest/ghost", "1\n"))->status, 404);
  EXPECT_EQ(service.route(post("/tenants/bad name"))->status, 400);
  EXPECT_EQ(service.route(post("/tenants/a", "{not json"))->status, 400);
  ASSERT_EQ(service.route(post("/tenants/a"))->status, 200);
  EXPECT_EQ(service.route(post("/tenants/a"))->status, 409);
  EXPECT_EQ(service.route(post("/tenants/b"))->status, 503);
}

TEST(MrcServiceRouteTest, MalformedFrameQuarantines) {
  core::PardaRuntime runtime;
  MrcService service(runtime);
  ASSERT_EQ(service.route(post("/tenants/alice"))->status, 200);

  EXPECT_EQ(service.route(post("/ingest/alice", "1\nnot-a-number\n"))->status,
            400);
  EXPECT_EQ(service.status("alice")->mode, TenantMode::kQuarantined);
  EXPECT_EQ(service.route(post("/ingest/alice", "1\n"))->status, 409);

  // Binary codec: a non-multiple-of-8 body is malformed too.
  ASSERT_EQ(service.route(post("/tenants/bob"))->status, 200);
  EXPECT_EQ(service.route(post("/ingest/bob", "12345",
                               "application/octet-stream"))
                ->status,
            400);
  EXPECT_EQ(service.status("bob")->mode, TenantMode::kQuarantined);
}

TEST(MrcServiceRouteTest, BinaryFrameCodec) {
  core::PardaRuntime runtime;
  MrcService service(runtime);
  ASSERT_EQ(service.route(post("/tenants/alice"))->status, 200);

  std::string body;
  for (std::uint64_t v : {1ull, 2ull, 1ull}) {
    char bytes[8];
    std::memcpy(bytes, &v, 8);
    body.append(bytes, 8);
  }
  const auto r = service.route(
      post("/ingest/alice", body, "application/octet-stream"));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, 200);
  EXPECT_EQ(service.status("alice")->references, 3u);
}

TEST(ParseFrameTest, TextAndBinary) {
  std::vector<Addr> out;
  EXPECT_TRUE(parse_frame("text/plain", "1\n2\n\n 0xff \r\n", out));
  EXPECT_EQ(out, (std::vector<Addr>{1, 2, 255}));
  EXPECT_TRUE(parse_frame("text/plain; charset=utf-8", "7", out));
  EXPECT_EQ(out, (std::vector<Addr>{7}));
  EXPECT_TRUE(parse_frame("", "", out));
  EXPECT_TRUE(out.empty());
  EXPECT_FALSE(parse_frame("text/plain", "1\nx\n", out));
  EXPECT_FALSE(parse_frame("text/plain", "0x\n", out));
  EXPECT_FALSE(parse_frame("text/plain", "-3\n", out));

  const char bytes[16] = {1, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_TRUE(parse_frame("application/octet-stream",
                          std::string_view(bytes, 16), out));
  EXPECT_EQ(out, (std::vector<Addr>{1, 2}));
  EXPECT_FALSE(parse_frame("application/octet-stream",
                           std::string_view(bytes, 15), out));
}

}  // namespace
}  // namespace parda::serve
