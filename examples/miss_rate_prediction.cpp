// Miss-rate prediction across cache sizes (the Zhong et al. application
// from the paper's introduction): one reuse distance analysis predicts the
// miss ratio of every cache size; validated against exact LRU simulation
// and a realistic 8-way set-associative cache.
//
//   ./miss_rate_prediction --workload=sphinx3 --refs=150000
#include <cstdio>
#include <string>

#include "apps/miss_rate.hpp"
#include "core/parda.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/spec.hpp"

int main(int argc, char** argv) {
  using namespace parda;

  std::string workload_name = "sphinx3";
  std::uint64_t refs = 150000;
  std::uint64_t procs = 4;
  std::uint64_t ways = 8;
  std::uint64_t scale = kDefaultSpecScale;

  CliParser cli(
      "Predict LRU miss rates from one reuse distance histogram and "
      "validate against cache simulation");
  cli.add_flag("workload", &workload_name, "SPEC profile name");
  cli.add_flag("refs", &refs, "trace length");
  cli.add_flag("procs", &procs, "analysis ranks");
  cli.add_flag("ways", &ways, "set-associative ways for the comparison");
  cli.add_flag("scale", &scale, "SPEC footprint down-scaling factor");
  cli.parse(argc, argv);

  auto workload = make_spec_workload(workload_name, scale, /*seed=*/2);
  const auto trace = generate_trace(*workload, refs);

  PardaOptions options;
  options.num_procs = static_cast<int>(procs);
  const Histogram hist = parda_analyze(trace, options).hist;

  std::vector<std::uint64_t> sizes;
  for (std::uint64_t c = 16; c <= hist.max_distance() * 2 + 16; c *= 4) {
    sizes.push_back(c);
  }
  const auto report = predict_miss_rates(trace, hist, sizes,
                                         static_cast<std::uint32_t>(ways));

  std::printf("workload %s, %s references, %s distinct\n\n",
              workload_name.c_str(), with_commas(hist.total()).c_str(),
              with_commas(hist.infinities()).c_str());
  TablePrinter table({"cache", "predicted", "LRU sim", "abs err",
                      std::to_string(ways) + "-way sim"});
  for (const MissRateReport& row : report) {
    table.add_row({words_human(row.cache_words),
                   TablePrinter::fmt(row.predicted, 4),
                   TablePrinter::fmt(row.simulated_lru, 4),
                   TablePrinter::fmt(
                       std::abs(row.predicted - row.simulated_lru), 6),
                   TablePrinter::fmt(row.simulated_set_assoc, 4)});
  }
  table.print();
  std::printf(
      "\nmean |predicted - LRU| = %.6f (exact by construction; Section I "
      "claim (1))\n",
      lru_prediction_error(report));
  return 0;
}
