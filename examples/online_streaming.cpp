// The Figure 3 framework end to end: an instrumented program (the mini-Pin
// VM) streams its memory trace through a pipe into the multi-phase online
// Parda analysis, concurrently with execution — no trace file is ever
// stored.
//
//   ./online_streaming --program=matmul --n=48 --procs=4 --chunk=4096
#include <cstdio>
#include <string>
#include <thread>

#include "core/parda.hpp"
#include "hist/mrc.hpp"
#include "trace/trace_pipe.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "vm/machine.hpp"
#include "vm/programs.hpp"

int main(int argc, char** argv) {
  using namespace parda;

  std::string program_name = "matmul";
  std::uint64_t n = 48;
  std::uint64_t rounds = 4;
  std::uint64_t procs = 4;
  std::uint64_t chunk = 4096;
  std::uint64_t pipe_words = 1 << 16;
  std::uint64_t bound = 0;

  CliParser cli(
      "Run an instrumented VM program and analyze its trace online "
      "(paper Figure 3)");
  cli.add_flag("program", &program_name,
               "vector_sum | smooth | matmul | list_chase");
  cli.add_flag("n", &n, "problem size");
  cli.add_flag("rounds", &rounds, "passes/rounds for iterative programs");
  cli.add_flag("procs", &procs, "analysis ranks");
  cli.add_flag("chunk", &chunk, "per-rank chunk size C (phase = np*C)");
  cli.add_flag("pipe", &pipe_words, "pipe capacity in words");
  cli.add_flag("bound", &bound, "cache bound B (0 = unbounded)");
  std::uint64_t watchdog_ms = 0;
  cli.add_flag("watchdog-ms", &watchdog_ms,
               "stall watchdog sampling interval (0 = off)");
  cli.parse(argc, argv);

  if (procs == 0) usage_error("--procs must be positive");
  if (chunk == 0) usage_error("--chunk must be positive");
  if (pipe_words == 0) usage_error("--pipe must be positive");

  vm::Program program;
  if (program_name == "vector_sum") {
    program = vm::vector_sum(n);
  } else if (program_name == "smooth") {
    program = vm::smooth_passes(n, rounds);
  } else if (program_name == "matmul") {
    program = vm::matmul(n);
  } else if (program_name == "list_chase") {
    program = vm::list_chase(n, rounds);
  } else {
    usage_error("unknown program '%s' (expected vector_sum | smooth | "
                "matmul | list_chase)",
                program_name.c_str());
  }

  TracePipe pipe(pipe_words);
  WallTimer timer;
  std::uint64_t instructions = 0;
  std::thread producer([&] {
    try {
      vm::Machine machine(program);
      std::vector<Addr> block;
      block.reserve(1024);
      instructions = machine.run([&](Addr a) {
        block.push_back(a);
        if (block.size() == 1024) {
          pipe.write(std::move(block));
          block = {};
          block.reserve(1024);
        }
      });
      pipe.write(std::move(block));
      pipe.close();
    } catch (...) {
      // A crashed VM must read as a failure downstream, not as a clean
      // end-of-trace.
      pipe.close_with_error(std::current_exception());
    }
  });

  PardaOptions options;
  options.num_procs = static_cast<int>(procs);
  options.chunk_words = chunk;
  options.bound = bound;
  if (watchdog_ms > 0) {
    options.run_options.watchdog_interval =
        std::chrono::milliseconds(watchdog_ms);
  }
  PardaResult result;
  try {
    result = parda_analyze_stream(pipe, options);
  } catch (const std::exception& e) {
    pipe.close_with_error(std::current_exception());
    producer.join();
    std::fprintf(stderr, "online_streaming: analysis failed: %s\n", e.what());
    return kExitRuntime;
  }
  producer.join();
  const double elapsed = timer.seconds();

  const Histogram& hist = result.hist;
  std::printf("program %s: %s instructions, %s memory accesses\n",
              program.name.c_str(), with_commas(instructions).c_str(),
              with_commas(hist.total()).c_str());
  const std::string bound_note =
      bound == 0 ? "" : ", bound " + words_human(bound);
  std::printf("analysis: %llu ranks, chunk %s, pipe %s%s\n",
              static_cast<unsigned long long>(procs),
              words_human(chunk).c_str(), words_human(pipe_words).c_str(),
              bound_note.c_str());
  std::printf("wall time %.3fs; busiest rank %.3fs; %s messages, %s bytes\n\n",
              elapsed, result.stats.max_busy(),
              with_commas(result.stats.total_messages()).c_str(),
              with_commas(result.stats.total_bytes()).c_str());

  TablePrinter table({"cache size", "miss ratio"});
  for (const MrcPoint& p :
       miss_ratio_curve_pow2(hist, hist.max_distance() + 2)) {
    table.add_row(
        {words_human(p.cache_size), TablePrinter::fmt(p.miss_ratio, 4)});
  }
  table.print();
  return 0;
}
