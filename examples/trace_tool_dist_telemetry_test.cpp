// Distributed telemetry-plane acceptance tests against the real trace_tool
// binary (path injected by CMake), driving a genuine 2-process tcp run:
//
//   - rank 0's --serve endpoint must expose the WHOLE fleet's /metrics
//     mid-run — both processes' series under process="..." labels, in a
//     valid Prometheus exposition — fed by the reserved-tag telemetry
//     channel while the analysis is still executing;
//   - the merged span report must name a FaultPlan-delayed REMOTE rank as
//     the straggler, which only works if the clock handshake rebased the
//     remote spans onto rank 0's epoch;
//   - an injected abort must leave a parda.flightrec.v1 postmortem from
//     the aborting process, carrying its last spans and the abort-origin
//     log line, via the $PARDA_FLIGHT_RECORDER env fallback.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "util/json.hpp"

namespace {

using parda::json::Value;

std::string tool() { return PARDA_TRACE_TOOL_PATH; }

/// Deterministic per-run port block: four consecutive ports derived from
/// the pid so parallel ctest invocations don't collide.
int base_port() {
  static const int base = 45600 + static_cast<int>(::getpid() % 997) * 4;
  return base;
}

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return "";
  std::string out;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, got);
  std::fclose(f);
  return out;
}

/// Blocking one-shot HTTP GET against 127.0.0.1:port; returns the body
/// ("" on any failure).
std::string http_get_body(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t at = response.find("\r\n\r\n");
  return at == std::string::npos ? std::string() : response.substr(at + 4);
}

class DistTelemetryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const std::string cmd = tool() +
                            " gen --workload=zipf:m=500,a=0.9 --refs=60000 "
                            "--out=dist_tel.trc >/dev/null 2>&1";
    ASSERT_EQ(WEXITSTATUS(std::system(cmd.c_str())), 0);
  }

  static std::string peers(int p0, int p1) {
    return "127.0.0.1:" + std::to_string(p0) + ",127.0.0.1:" +
           std::to_string(p1);
  }
};

TEST_F(DistTelemetryTest, FleetScrapeMidRunAndRemoteStragglerNamed) {
  // --stream so the chunks travel over the wire: in offline mode every
  // process slices its local copy of the trace and rank 1 never recvs,
  // which would leave the injected recv-delay unmatched.
  const std::string common =
      " analyze dist_tel.trc --stream --chunk=4096 --procs=2 "
      "--transport=tcp --peers=" +
      peers(base_port(), base_port() + 1) +
      " --fault-plan=rank=1,op=recv,n=0,action=delay,ms=1000";
  const std::string env = "PARDA_TELEMETRY_INTERVAL_MS=25 ";

  // Rank 1 in the background. --metrics-out turns its telemetry on (the
  // periodic forwarder only runs on obs-enabled processes). Its output
  // goes to a file, not the pipe: nothing drains the pipe until the run
  // ends, so a chatty rank (e.g. sanitizer reports) filling it would
  // deadlock against rank 0, which the port-wait loop below is reading.
  const std::string cmd1 = env + tool() + common +
                           " --rank=1 --metrics-out=dist_tel_r1.json"
                           " > dist_tel_r1.log 2>&1";
  std::FILE* r1 = ::popen(cmd1.c_str(), "r");
  ASSERT_NE(r1, nullptr);

  // Rank 0 in the foreground: fleet server + merged report.
  std::remove("dist_tel_report.json");
  const std::string cmd0 =
      env + tool() + common +
      " --rank=0 --serve=0 --report --report-json=dist_tel_report.json 2>&1";
  std::FILE* r0 = ::popen(cmd0.c_str(), "r");
  ASSERT_NE(r0, nullptr);

  // First contract line on stdout names the resolved ephemeral port.
  int port = 0;
  char line[512];
  while (std::fgets(line, sizeof line, r0) != nullptr) {
    if (std::sscanf(line, "PARDA_SERVE_PORT=%d", &port) == 1) break;
  }
  EXPECT_GT(port, 0) << "rank 0 never announced its serve port";

  // Mid-run fleet scrape: poll until rank 1's series appear (its first
  // frame lands within ~one 25ms interval; the injected 1s delay keeps
  // the run alive far longer than that). Every scrape must be a valid
  // exposition even while frames are still streaming in.
  bool fleet_seen = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (port > 0 && std::chrono::steady_clock::now() < deadline) {
    const std::string body = http_get_body(port, "/metrics");
    if (body.find("process=\"1\"") != std::string::npos) {
      fleet_seen = true;
      EXPECT_NE(body.find("process=\"0\""), std::string::npos)
          << "fleet exposition lost the local process's series";
      const std::vector<std::string> problems =
          parda::obs::validate_prometheus(body);
      EXPECT_TRUE(problems.empty())
          << "mid-run fleet scrape invalid: " << problems[0];
      EXPECT_NE(body.find("parda_telemetry_clock_valid{process=\"1\"} 1"),
                std::string::npos)
          << "clock handshake did not converge";
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(fleet_seen) << "rank 1's series never reached rank 0's /metrics";

  while (std::fgets(line, sizeof line, r0) != nullptr) {
  }
  EXPECT_EQ(WEXITSTATUS(::pclose(r0)), 0);
  while (std::fgets(line, sizeof line, r1) != nullptr) {
  }
  EXPECT_EQ(WEXITSTATUS(::pclose(r1)), 0);

  // The merged report runs on clock-rebased remote spans: the delayed
  // REMOTE rank must be named the straggler, with the handshake's error
  // bar surfaced.
  const std::string report_text = read_file("dist_tel_report.json");
  ASSERT_FALSE(report_text.empty()) << "rank 0 wrote no span report";
  const Value report = parda::json::parse(report_text);
  EXPECT_EQ(report.at("schema").as_string(), "parda.spanreport.v1");
  EXPECT_EQ(report.at("straggler_rank").as_i64(), 1)
      << "merged cross-process attribution missed the delayed rank";
  EXPECT_GE(report.at("clock_uncertainty_ns").as_i64(), 0);
}

TEST_F(DistTelemetryTest, InjectedAbortLeavesFlightRecorderPostmortem) {
  std::remove("dist_fr_0.json");
  std::remove("dist_fr_1.json");
  const std::string common =
      " analyze dist_tel.trc --procs=2 --transport=tcp --peers=" +
      peers(base_port() + 2, base_port() + 3) +
      " --fault-plan=rank=1,op=send,n=0";  // default action: throw -> abort
  const std::string env = "PARDA_FLIGHT_RECORDER=dist_fr_%r.json ";

  const std::string cmd1 = env + tool() + common +
                           " --rank=1 --metrics-out=dist_tel_r1b.json"
                           " > dist_tel_r1b.log 2>&1";
  std::FILE* r1 = ::popen(cmd1.c_str(), "r");
  ASSERT_NE(r1, nullptr);
  const std::string cmd0 = env + tool() + common + " --rank=0 2>&1";
  std::FILE* r0 = ::popen(cmd0.c_str(), "r");
  ASSERT_NE(r0, nullptr);

  char line[512];
  while (std::fgets(line, sizeof line, r0) != nullptr) {
  }
  EXPECT_NE(WEXITSTATUS(::pclose(r0)), 0) << "rank 0 missed the abort";
  while (std::fgets(line, sizeof line, r1) != nullptr) {
  }
  EXPECT_NE(WEXITSTATUS(::pclose(r1)), 0) << "rank 1 missed its own fault";

  // The aborting process (local rank 1) left a structured postmortem via
  // the env fallback, %r resolved to its rank.
  const std::string dump_text = read_file("dist_fr_1.json");
  ASSERT_FALSE(dump_text.empty()) << "no flight-recorder dump from rank 1";
  const Value dump = parda::json::parse(dump_text);
  EXPECT_EQ(dump.at("schema").as_string(), "parda.flightrec.v1");
  EXPECT_EQ(dump.at("process").as_i64(), 1);
  EXPECT_NE(dump.at("reason").as_string().find("abort"), std::string::npos);
  EXPECT_EQ(dump.at("context").at("abort.origin").as_string(), "1");

  // Its last spans made it into the dump (obs was on via --metrics-out,
  // and the first send fires only after scatter+analyze ran)...
  EXPECT_FALSE(dump.at("spans").array.empty());

  // ...and the structured-log tail pins down the abort origin.
  bool abort_line = false;
  for (const Value& entry : dump.at("log_tail").array) {
    if (entry.at("event").as_string() == "comm.abort") abort_line = true;
  }
  EXPECT_TRUE(abort_line) << "log tail lost the comm.abort line";
}

}  // namespace
