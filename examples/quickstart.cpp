// Quickstart: generate a workload, run parallel reuse distance analysis,
// and print the histogram and the miss-ratio curve it implies.
//
//   ./quickstart --workload=mcf --refs=200000 --procs=4 --bound=0
#include <cstdio>
#include <string>

#include "core/parda.hpp"
#include "hist/mrc.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/spec.hpp"

int main(int argc, char** argv) {
  using namespace parda;

  std::string workload_name = "mcf";
  std::uint64_t refs = 200000;
  std::uint64_t procs = 4;
  std::uint64_t bound = 0;
  std::uint64_t scale = kDefaultSpecScale;

  CliParser cli("Parda quickstart: analyze one SPEC-like workload");
  cli.add_flag("workload", &workload_name,
               "SPEC profile name (perlbench..sphinx3)");
  cli.add_flag("refs", &refs, "trace length to analyze");
  cli.add_flag("procs", &procs, "number of analysis ranks");
  cli.add_flag("bound", &bound, "cache bound B in words (0 = unbounded)");
  cli.add_flag("scale", &scale, "SPEC footprint down-scaling factor");
  cli.parse(argc, argv);

  auto workload = make_spec_workload(workload_name, scale, /*seed=*/1);
  std::printf("workload: %s (%s)\n", workload_name.c_str(),
              workload->name().c_str());
  const auto trace = generate_trace(*workload, refs);

  PardaOptions options;
  options.num_procs = static_cast<int>(procs);
  options.bound = bound;
  const PardaResult result = parda_analyze(trace, options);
  const Histogram& hist = result.hist;

  std::printf("references analyzed: %s\n",
              with_commas(hist.total()).c_str());
  std::printf("distinct addresses (compulsory misses): %s\n",
              with_commas(hist.infinities()).c_str());
  std::printf("max finite reuse distance: %s\n",
              with_commas(hist.max_distance()).c_str());
  std::printf("rank work: max %.3fs, total %.3fs across %d ranks\n\n",
              result.stats.max_busy(), result.stats.total_busy(),
              options.num_procs);

  std::printf("reuse distance histogram (log2 buckets):\n");
  const auto buckets = hist.log2_buckets();
  TablePrinter hist_table({"bucket", "distances", "references", "share"});
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const std::uint64_t lo = i == 0 ? 0 : 1ULL << (i - 1);
    const std::uint64_t hi = i == 0 ? 0 : (1ULL << i) - 1;
    hist_table.add_row(
        {std::to_string(i),
         i == 0 ? "0" : "[" + with_commas(lo) + ", " + with_commas(hi) + "]",
         with_commas(buckets[i]),
         TablePrinter::fmt(100.0 * static_cast<double>(buckets[i]) /
                               static_cast<double>(hist.total()),
                           2) +
             "%"});
  }
  hist_table.add_row({"inf", "first references", with_commas(hist.infinities()),
                      TablePrinter::fmt(100.0 *
                                            static_cast<double>(
                                                hist.infinities()) /
                                            static_cast<double>(hist.total()),
                                        2) +
                          "%"});
  hist_table.print();

  std::printf("\nmiss-ratio curve:\n");
  TablePrinter mrc_table({"cache size", "miss ratio"});
  for (const MrcPoint& p :
       miss_ratio_curve_pow2(hist, hist.max_distance() + 2)) {
    mrc_table.add_row(
        {words_human(p.cache_size), TablePrinter::fmt(p.miss_ratio, 4)});
  }
  mrc_table.print();
  return 0;
}
