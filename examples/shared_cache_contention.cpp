// Shared-cache contention analysis for co-running SPEC-like workloads:
// interleave their reference streams and quantify how much each program's
// miss count inflates versus running alone — the multi-programmed setting
// the paper's related work ([8][14][15]) studies with reuse distances.
//
//   ./shared_cache_contention --refs=50000 --cache=4096
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "apps/shared_cache.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/spec.hpp"

int main(int argc, char** argv) {
  using namespace parda;

  std::uint64_t refs = 50000;
  std::uint64_t cache = 4096;
  std::uint64_t scale = kDefaultSpecScale * 4;
  bool random_mix = false;

  CliParser cli(
      "Quantify shared-cache contention among co-running workloads from "
      "their interleaved reuse distance histograms");
  cli.add_flag("refs", &refs, "references per workload");
  cli.add_flag("cache", &cache, "shared cache capacity in words");
  cli.add_flag("scale", &scale, "SPEC footprint down-scaling factor");
  cli.add_flag("random", &random_mix,
               "random interleaving instead of round-robin");
  cli.parse(argc, argv);

  const std::vector<std::string> names{"povray", "mcf", "lbm", "gobmk"};
  std::vector<std::vector<Addr>> streams;
  for (std::size_t k = 0; k < names.size(); ++k) {
    auto w = make_spec_workload(names[k], scale, /*seed=*/10 + k);
    streams.push_back(generate_trace(*w, refs));
    // Shift each stream into its own address region so interleaving
    // models pure capacity contention, not data sharing.
    for (Addr& a : streams.back()) a += static_cast<Addr>(k) << 50;
  }

  const SharedCacheAnalysis analysis = analyze_shared_cache(
      streams,
      random_mix ? InterleavePolicy::kRandom
                 : InterleavePolicy::kRoundRobin,
      /*seed=*/1);

  std::printf("%zu workloads, %s references each, shared cache %s, %s "
              "interleaving\n\n",
              names.size(), with_commas(refs).c_str(),
              words_human(cache).c_str(),
              random_mix ? "random" : "round-robin");

  TablePrinter table({"workload", "solo misses", "shared misses",
                      "contention x"});
  for (std::size_t k = 0; k < names.size(); ++k) {
    table.add_row({names[k], with_commas(analysis.solo_misses(k, cache)),
                   with_commas(analysis.shared_misses(k, cache)),
                   TablePrinter::fmt(analysis.contention_factor(k, cache),
                                     2)});
  }
  table.print();

  std::printf(
      "\nsmall-footprint workloads suffer most from large-footprint "
      "co-runners; a cache holding all footprints shows factor 1.0\n");
  return 0;
}
