// Locality metrics side by side (paper Section I): reuse distance vs time
// distance on one workload, plus the page-granularity view that drives
// superpage selection (Cascaval et al., cited application).
//
//   ./locality_metrics --workload=sphinx3 --refs=100000 --tlb=64
#include <cstdio>
#include <string>
#include <vector>

#include "apps/superpage.hpp"
#include "apps/time_distance.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/spec.hpp"

int main(int argc, char** argv) {
  using namespace parda;

  std::string workload_name = "sphinx3";
  std::uint64_t refs = 100000;
  std::uint64_t tlb = 64;
  std::uint64_t scale = kDefaultSpecScale;

  CliParser cli(
      "Compare reuse distance with time distance and derive a superpage "
      "recommendation");
  cli.add_flag("workload", &workload_name, "SPEC profile name");
  cli.add_flag("refs", &refs, "trace length");
  cli.add_flag("tlb", &tlb, "TLB entries for the page-size study");
  cli.add_flag("scale", &scale, "SPEC footprint down-scaling factor");
  cli.parse(argc, argv);

  auto workload = make_spec_workload(workload_name, scale, /*seed=*/4);
  const auto trace = generate_trace(*workload, refs);

  const LocalityComparison cmp = compare_locality_metrics(trace);
  std::printf("workload %s, %s references, footprint %s\n\n",
              workload_name.c_str(), with_commas(refs).c_str(),
              with_commas(cmp.reuse.infinities()).c_str());

  TablePrinter metrics({"metric", "mean", "p50", "p99", "max"});
  metrics.add_row(
      {"reuse distance", TablePrinter::fmt(cmp.reuse.mean_finite_distance(), 1),
       with_commas(cmp.reuse.finite_distance_percentile(0.5)),
       with_commas(cmp.reuse.finite_distance_percentile(0.99)),
       with_commas(cmp.reuse.max_distance())});
  metrics.add_row(
      {"time distance", TablePrinter::fmt(cmp.time.mean_finite_distance(), 1),
       with_commas(cmp.time.finite_distance_percentile(0.5)),
       with_commas(cmp.time.finite_distance_percentile(0.99)),
       with_commas(cmp.time.max_distance())});
  metrics.print();
  std::printf(
      "\nreuse distance stays below the footprint (%s); time distance does "
      "not (Section I, advantage 2)\n\n",
      with_commas(cmp.reuse.infinities()).c_str());

  const std::vector<std::uint64_t> page_sizes{64, 256, 1024, 4096, 16384};
  TablePrinter pages({"page size", "pages touched", "TLB miss ratio"});
  for (std::uint64_t size : page_sizes) {
    const PageSizeReport report = analyze_page_size(trace, size);
    pages.add_row({words_human(size), with_commas(report.pages_touched),
                   TablePrinter::fmt(report.tlb_miss_ratio(tlb), 4)});
  }
  pages.print();
  const SuperpageChoice choice = recommend_page_size(trace, page_sizes, tlb);
  std::printf(
      "\nrecommended page size for a %llu-entry TLB: %s (miss ratio %.4f, "
      "%s words mapped)\n",
      static_cast<unsigned long long>(tlb),
      words_human(choice.page_words).c_str(), choice.tlb_miss_ratio,
      with_commas(choice.mapped_words).c_str());
  return 0;
}
