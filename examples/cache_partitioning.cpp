// Shared-cache partitioning (Lu et al. "Soft-OLP", from the paper's intro
// and conclusions): per-stream reuse distance histograms drive an
// allocation of cache ways among co-running workloads, compared against an
// even split and the DP-optimal allocation.
//
//   ./cache_partitioning --units=128 --refs=100000
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "apps/partition.hpp"
#include "core/parda.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/spec.hpp"

int main(int argc, char** argv) {
  using namespace parda;

  std::uint64_t units = 128;
  std::uint64_t refs = 100000;
  std::uint64_t scale = kDefaultSpecScale * 4;

  CliParser cli(
      "Partition a shared cache among co-running SPEC-like workloads "
      "using their reuse distance histograms");
  cli.add_flag("units", &units, "total cache units to divide");
  cli.add_flag("refs", &refs, "trace length per workload");
  cli.add_flag("scale", &scale, "SPEC footprint down-scaling factor");
  cli.parse(argc, argv);

  const std::vector<std::string> names{"povray", "mcf", "libquantum",
                                       "gobmk"};
  std::vector<Histogram> histograms;
  PardaOptions options;
  options.num_procs = 2;
  for (const std::string& name : names) {
    auto w = make_spec_workload(name, scale, /*seed=*/3);
    const auto trace = generate_trace(*w, refs);
    histograms.push_back(parda_analyze(trace, options).hist);
  }

  const PartitionResult even = partition_even(histograms, units);
  const PartitionResult greedy = partition_greedy(histograms, units);
  const PartitionResult optimal = partition_optimal(histograms, units);

  std::printf("partitioning %s cache units among %zu workloads\n\n",
              with_commas(units).c_str(), names.size());
  TablePrinter table({"workload", "even", "greedy", "optimal"});
  for (std::size_t i = 0; i < names.size(); ++i) {
    table.add_row({names[i], with_commas(even.allocation[i]),
                   with_commas(greedy.allocation[i]),
                   with_commas(optimal.allocation[i])});
  }
  table.add_row({"total misses", with_commas(even.total_misses),
                 with_commas(greedy.total_misses),
                 with_commas(optimal.total_misses)});
  table.print();

  const double saving =
      even.total_misses == 0
          ? 0.0
          : 100.0 *
                (static_cast<double>(even.total_misses) -
                 static_cast<double>(optimal.total_misses)) /
                static_cast<double>(even.total_misses);
  std::printf("\nhistogram-driven partitioning saves %.1f%% of misses vs an "
              "even split\n",
              saving);
  return 0;
}
