// OPT (Belady) vs LRU stack distances (Mattson et al. [12] define both):
// one pass per policy yields the hit ratio of every cache size, showing
// how far LRU sits from optimal on a given workload.
//
//   ./opt_vs_lru --workload="zipf:m=4096,a=0.9" --refs=100000
#include <cstdio>
#include <string>

#include "hist/mrc.hpp"
#include "seq/olken.hpp"
#include "seq/opt.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/parse.hpp"

int main(int argc, char** argv) {
  using namespace parda;

  std::string spec = "seq:m=4096";
  std::uint64_t refs = 100000;
  std::uint64_t seed = 1;

  CliParser cli(
      "Compare LRU and OPT (Belady) miss ratios across every cache size "
      "from their stack distance histograms");
  cli.add_flag("workload", &spec,
               "workload spec string, e.g. zipf:m=4096,a=0.9 or spec:mcf");
  cli.add_flag("refs", &refs, "trace length");
  cli.add_flag("seed", &seed, "workload seed");
  cli.parse(argc, argv);

  auto workload = parse_workload(spec, seed);
  const auto trace = generate_trace(*workload, refs);

  const Histogram lru = olken_analysis(trace);
  const Histogram opt = opt_distance_analysis(trace);

  std::printf("workload %s, %s references, %s distinct\n\n",
              workload->name().c_str(), with_commas(refs).c_str(),
              with_commas(lru.infinities()).c_str());

  TablePrinter table({"cache size", "LRU miss", "OPT miss", "LRU/OPT"});
  for (std::uint64_t c = 1; c <= lru.max_distance() + 2; c *= 2) {
    const double l = miss_ratio(lru, c);
    const double o = miss_ratio(opt, c);
    table.add_row({words_human(c), TablePrinter::fmt(l, 4),
                   TablePrinter::fmt(o, 4),
                   o == 0.0 ? "-" : TablePrinter::fmt(l / o, 2) + "x"});
  }
  table.print();
  std::printf(
      "\nOPT lower-bounds every replacement policy; cyclic sweeps show the "
      "largest LRU/OPT gaps (try --workload=seq:m=4096)\n");
  return 0;
}
