// trace_tool: generate, convert, and analyze trace files from the command
// line — the offline companion to the streaming pipeline.
//
//   ./trace_tool gen --workload=lbm --refs=100000 --out=lbm.trc
//   ./trace_tool analyze lbm.trc --procs=4 --bound=2048
//   ./trace_tool analyze lbm.trc --engine=lru        # raw-speed log2 MRC
//   ./trace_tool analyze lbm.trc --stream --pipe=65536 --watchdog-ms=1000
//   ./trace_tool analyze lbm.trc --stream --metrics-out=m.json
//                --trace-spans=s.json
//   ./trace_tool analyze lbm.trc --stream --serve=0 --report
//   ./trace_tool analyze lbm.trc --transport=shm          # real wire, 1 proc
//   ./trace_tool analyze lbm.trc --transport=tcp --rank=0
//                --peers=host0:7000,host1:7000            # distributed
//   ./trace_tool analyze lbm.trc --ingest=mmap       # zero-copy offline
//   ./trace_tool analyze lbm.trz --ingest=trz --procs=8
//   ./trace_tool checkmetrics scrape.prom
//   ./trace_tool convert lbm.trc lbm.txt
//   ./trace_tool convert lbm.trc lbm.trz --chunk-refs=65536
//   ./trace_tool convert old.trz new.trz --trz-version=2  # v1 -> chunked v2
//
// The transport, ingest path, and log level all resolve through the
// layered config rule: the CLI flag beats the environment variable
// ($PARDA_TRANSPORT / $PARDA_INGEST / $PARDA_LOG_LEVEL) beats the default.
//
// Exit codes: 0 success, 1 runtime failure (missing/corrupt trace, aborted
// analysis, invalid exposition format), 2 usage error (bad flag or
// argument).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <optional>
#include <string>

#include "comm/fault.hpp"
#include "comm/transport/spec.hpp"
#include "core/file_analysis.hpp"
#include "core/parda.hpp"
#include "core/runtime.hpp"
#include "seq/bennett_kruskal.hpp"
#include "seq/bounded.hpp"
#include "seq/interval_analyzer.hpp"
#include "seq/lru_chain.hpp"
#include "seq/naive.hpp"
#include "seq/olken.hpp"
#include "tree/avl_tree.hpp"
#include "tree/treap.hpp"
#include "hist/mrc.hpp"
#include "hist/report.hpp"
#include "obs/obs.hpp"
#include "trace/source.hpp"
#include "trace/trace_compress.hpp"
#include "trace/trace_io.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/config.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/parse.hpp"
#include "workload/spec.hpp"

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::vector<parda::Addr> load(const std::string& path) {
  if (ends_with(path, ".txt")) return parda::read_trace_text(path);
  if (ends_with(path, ".trz")) return parda::read_trace_compressed(path);
  return parda::read_trace_binary(path);
}

void store(const std::string& path, const std::vector<parda::Addr>& trace,
           std::uint64_t trz_version = 2,
           std::uint64_t chunk_refs = parda::kDefaultTrzChunkRefs) {
  if (ends_with(path, ".txt")) {
    parda::write_trace_text(path, trace);
  } else if (ends_with(path, ".trz")) {
    if (trz_version == 1) {
      parda::write_trace_compressed(path, trace);
    } else {
      parda::write_trace_chunked(path, trace, chunk_refs);
    }
  } else {
    parda::write_trace_binary(path, trace);
  }
}

/// Validates the .trz output knobs for the writing commands (gen and
/// convert). The flags only mean something for a .trz output, and
/// --chunk-refs only for the chunked v2 layout.
void check_trz_flags(const parda::CliParser& cli, const char* command,
                     const std::string& out_path, std::uint64_t trz_version,
                     std::uint64_t chunk_refs) {
  using parda::usage_error;
  if (trz_version != 1 && trz_version != 2) {
    usage_error("%s: bad --trz-version %llu (expected 1 or 2)", command,
                static_cast<unsigned long long>(trz_version));
  }
  if (chunk_refs == 0) {
    usage_error("%s: --chunk-refs must be positive", command);
  }
  if (!ends_with(out_path, ".trz")) {
    if (cli.was_set("trz-version")) {
      usage_error("%s: --trz-version applies only to .trz outputs", command);
    }
    if (cli.was_set("chunk-refs")) {
      usage_error("%s: --chunk-refs applies only to .trz outputs", command);
    }
  }
  if (trz_version == 1 && cli.was_set("chunk-refs")) {
    usage_error("%s: --chunk-refs needs --trz-version=2 (a v1 archive is one "
                "whole-file stream)",
                command);
  }
}

constexpr const char* kEngineNames =
    "parda|lru|olken|splay|avl|treap|fenwick|interval|naive";

bool is_known_engine(const std::string& e) {
  return e == "parda" || e == "lru" || e == "olken" || e == "splay" ||
         e == "avl" || e == "treap" || e == "fenwick" || e == "interval" ||
         e == "naive";
}

/// Runs a whole trace through a sequential engine and publishes its
/// structural counters under "engine.*" (when telemetry is on), mirroring
/// what the parallel driver publishes per rank.
template <parda::ReuseAnalyzer A>
parda::Histogram run_seq(A analyzer, std::span<const parda::Addr> trace) {
  parda::Histogram h = parda::analyze_trace(analyzer, trace);
  if (parda::obs::enabled()) {
    analyzer.stats().publish(parda::obs::registry(), "engine");
  }
  return h;
}

parda::Histogram run_seq_engine(const std::string& engine,
                                std::span<const parda::Addr> trace,
                                std::uint64_t bound) {
  using namespace parda;
  if (engine == "lru") return run_seq(LruChainAnalyzer(bound), trace);
  if (engine == "olken" || engine == "splay") {
    return bound != 0 ? run_seq(BoundedAnalyzer<SplayTree>(bound), trace)
                      : run_seq(OlkenAnalyzer<SplayTree>(), trace);
  }
  if (engine == "avl") {
    return bound != 0 ? run_seq(BoundedAnalyzer<AvlTree>(bound), trace)
                      : run_seq(OlkenAnalyzer<AvlTree>(), trace);
  }
  if (engine == "treap") {
    return bound != 0 ? run_seq(BoundedAnalyzer<Treap>(bound), trace)
                      : run_seq(OlkenAnalyzer<Treap>(), trace);
  }
  if (bound != 0) {
    usage_error("analyze: --engine=%s does not support --bound",
                engine.c_str());
  }
  if (engine == "fenwick") return run_seq(BennettKruskalAnalyzer(), trace);
  if (engine == "interval") return run_seq(IntervalAnalyzer(), trace);
  return run_seq(NaiveStackAnalyzer(), trace);  // "naive"
}

/// Resolves the transport configuration: the --transport spec string
/// through the layered config rule (CLI > $PARDA_TRANSPORT > "threads"),
/// then the endpoint convenience flags (--rank/--peers/--segment) folded
/// on top. Every misconfiguration here is a usage error (exit 2) raised
/// before any runtime state exists.
parda::comm::TransportSpec resolve_transport(const parda::CliParser& cli,
                                             const std::string& transport_text,
                                             std::uint64_t rank,
                                             const std::string& peers,
                                             const std::string& segment,
                                             std::uint64_t procs) {
  using parda::comm::TransportKind;
  using parda::comm::TransportSpec;
  const parda::config::Resolved resolved = parda::config::resolve_flag(
      cli, "transport", transport_text, "PARDA_TRANSPORT", "threads");
  TransportSpec spec;
  try {
    spec = TransportSpec::parse(resolved.value);
  } catch (const parda::CheckError& e) {
    parda::usage_error("bad transport spec '%s' (from %s): %s",
                       resolved.value.c_str(),
                       parda::config::source_name(resolved.source), e.what());
  }
  if (cli.was_set("segment")) {
    if (spec.kind != TransportKind::kShm) {
      parda::usage_error("--segment applies only to --transport=shm");
    }
    spec.segment = segment;
  }
  if (cli.was_set("peers")) {
    if (spec.kind != TransportKind::kTcp) {
      parda::usage_error("--peers applies only to --transport=tcp");
    }
    // Accept ',' between endpoints on the command line (the one-string
    // spec grammar uses '+' because ',' separates its key=val pairs).
    spec.peers.clear();
    std::string cur;
    for (const char c : peers) {
      if (c == ',' || c == '+') {
        if (!cur.empty()) spec.peers.push_back(cur);
        cur.clear();
      } else {
        cur += c;
      }
    }
    if (!cur.empty()) spec.peers.push_back(cur);
    if (spec.peers.empty()) {
      parda::usage_error("--peers needs at least one host:port endpoint");
    }
  }
  if (cli.was_set("rank")) {
    if (spec.kind == TransportKind::kThreads) {
      parda::usage_error(
          "--rank needs a cross-process transport (--transport=shm with "
          "--segment, or --transport=tcp with --peers)");
    }
    spec.local_rank = static_cast<int>(rank);
  }
  try {
    spec.validate(static_cast<int>(procs));
  } catch (const parda::CheckError& e) {
    parda::usage_error("bad transport configuration: %s", e.what());
  }
  return spec;
}

void print_result(const parda::PardaResult& result) {
  using namespace parda;
  std::printf("%s references, %s distinct, max distance %s\n",
              with_commas(result.hist.total()).c_str(),
              with_commas(result.hist.infinities()).c_str(),
              with_commas(result.hist.max_distance()).c_str());
  TablePrinter table({"cache size", "miss ratio"});
  for (const MrcPoint& p :
       miss_ratio_curve_pow2(result.hist, result.hist.max_distance() + 2)) {
    table.add_row(
        {words_human(p.cache_size), TablePrinter::fmt(p.miss_ratio, 4)});
  }
  table.print();
}

int run_tool(int argc, char** argv) {
  using namespace parda;

  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: trace_tool gen|analyze|convert|checkmetrics [args] "
                 "(--help for details)\n");
    return kExitUsage;
  }
  const std::string command = argv[1];

  std::string workload_name = "mcf";
  std::uint64_t refs = 100000;
  std::uint64_t seed = 1;
  std::uint64_t scale = kDefaultSpecScale;
  std::string out = "trace.trc";
  std::uint64_t procs = 4;
  std::uint64_t bound = 0;
  std::string engine = "parda";
  bool stream = false;
  std::string ingest_text;
  std::uint64_t chunk = 1 << 16;
  std::uint64_t pipe_words = 1 << 20;
  std::uint64_t trz_version = 2;
  std::uint64_t chunk_refs = kDefaultTrzChunkRefs;
  std::string fault_plan_spec;
  std::uint64_t watchdog_ms = 0;
  std::uint64_t timeout_ms = 0;
  std::uint64_t repeat = 1;
  std::string metrics_out;
  std::string trace_spans;
  std::string serve;  // "" = off; a port number, 0 = ephemeral
  bool report = false;
  std::string report_json;
  std::string log_level_name;
  std::string transport_text;
  std::uint64_t rank = 0;
  std::string peers;
  std::string segment;
  std::string flight_recorder;

  CliParser cli("Parda trace file tool");
  cli.add_flag("workload", &workload_name,
               "gen: SPEC profile name or workload spec string");
  cli.add_flag("refs", &refs, "gen: trace length");
  cli.add_flag("seed", &seed, "gen: random seed");
  cli.add_flag("scale", &scale, "gen: footprint scale");
  cli.add_flag("out", &out, "gen: output path (.trc binary, .txt text)");
  cli.add_flag("procs", &procs, "analyze: ranks");
  cli.add_flag("bound", &bound, "analyze: cache bound (0 = unbounded)");
  cli.add_flag("engine", &engine,
               "analyze: parda (parallel, default) or a sequential engine: "
               "lru|olken|splay|avl|treap|fenwick|interval|naive");
  cli.add_flag("stream", &stream,
               "analyze: stream the file through a bounded pipe");
  cli.add_flag("ingest", &ingest_text,
               "analyze: file ingest path: pipe (stream through a bounded "
               "pipe) | mmap (zero-copy map of a .trc) | trz (parallel "
               "chunked decode of a v2 .trz); also $PARDA_INGEST");
  cli.add_flag("chunk", &chunk, "analyze --stream: per-rank chunk size C");
  cli.add_flag("pipe", &pipe_words, "analyze --stream: pipe capacity in words");
  cli.add_flag("trz-version", &trz_version,
               "gen/convert: .trz archive version: 2 (chunked, default) | 1 "
               "(whole-file stream)");
  cli.add_flag("chunk-refs", &chunk_refs,
               "gen/convert: references per chunk for v2 .trz outputs");
  cli.add_flag("fault-plan", &fault_plan_spec,
               "fault injection plan (see DESIGN.md; also $PARDA_FAULT_PLAN)");
  cli.add_flag("watchdog-ms", &watchdog_ms,
               "stall watchdog sampling interval (0 = off)");
  cli.add_flag("timeout-ms", &timeout_ms,
               "per-op recv/barrier deadline (0 = wait forever)");
  cli.add_flag("repeat", &repeat,
               "analyze: run N times on one persistent runtime (perf "
               "comparisons; prints per-iteration wall time)");
  cli.add_flag("metrics-out", &metrics_out,
               "write a parda.metrics.v1 JSON snapshot to FILE");
  cli.add_flag("trace-spans", &trace_spans,
               "write chrome://tracing span JSON to FILE");
  cli.add_flag("serve", &serve,
               "serve live telemetry on 127.0.0.1:PORT while analyzing "
               "(0 = ephemeral; prints the bound port)");
  cli.add_flag("report", &report,
               "print the span-attribution report (per-phase critical "
               "path, straggler rank, per-rank utilization)");
  cli.add_flag("report-json", &report_json,
               "write the parda.spanreport.v1 JSON to FILE");
  cli.add_flag("log-level", &log_level_name,
               "structured log threshold: trace|debug|info|warn|error|off "
               "(also $PARDA_LOG_LEVEL)");
  cli.add_flag("transport", &transport_text,
               "comm wire: threads (default) | shm | tcp, with optional "
               "spec parameters 'kind:key=val,...' (also $PARDA_TRANSPORT)");
  cli.add_flag("rank", &rank,
               "distributed: the one rank THIS process hosts (peers run "
               "elsewhere); needs --transport=shm or tcp");
  cli.add_flag("peers", &peers,
               "distributed tcp: host:port per rank, comma-separated");
  cli.add_flag("segment", &segment,
               "distributed shm: named segment (e.g. /parda-run1) the rank "
               "processes rendezvous on");
  cli.add_flag("flight-recorder", &flight_recorder,
               "write a parda.flightrec.v1 crash dump to FILE on abort, "
               "fatal signal, or trace format error (%r expands to the "
               "process's rank; also $PARDA_FLIGHT_RECORDER)");
  cli.parse(argc - 1, argv + 1);

  if (!is_known_engine(engine)) {
    usage_error("bad --engine '%s' (expected %s)", engine.c_str(),
                kEngineNames);
  }

  const config::Resolved log_level = config::resolve_flag(
      cli, "log-level", log_level_name, "PARDA_LOG_LEVEL", "");
  if (!log_level.value.empty()) {
    const auto parsed = obs::parse_log_level(log_level.value);
    if (parsed.has_value()) {
      obs::set_log_level(*parsed);
    } else if (log_level.from_cli()) {
      usage_error("bad --log-level '%s'", log_level.value.c_str());
    } else {
      // A malformed environment value keeps the default threshold (the
      // lazy init in obs/log.cpp does the same) — just say so once.
      std::fprintf(stderr, "trace_tool: ignoring bad $PARDA_LOG_LEVEL '%s'\n",
                   log_level.value.c_str());
    }
  }

  const comm::TransportSpec transport =
      resolve_transport(cli, transport_text, rank, peers, segment, procs);

  // The flight recorder arms early, before any file or wire is touched:
  // CLI path beats $PARDA_FLIGHT_RECORDER (read lazily at dump time when
  // no path is configured here) beats off. %r in the path becomes the
  // rank this process hosts, so distributed launches can share one
  // template.
  {
    const config::Resolved rec = config::resolve_flag(
        cli, "flight-recorder", flight_recorder, "PARDA_FLIGHT_RECORDER", "");
    const int process = transport.distributed() ? transport.local_rank : 0;
    obs::flightrec_set_process(process);
    if (!rec.value.empty()) obs::flightrec_configure(rec.value, process);
    obs::flightrec_install_signal_handlers();
  }
  if (engine != "parda" && cli.was_set("transport") &&
      transport.kind != comm::TransportKind::kThreads) {
    usage_error("--transport=%s requires --engine=parda (sequential engines "
                "run in one thread, no wire involved)",
                comm::transport_kind_name(transport.kind));
  }

  // The file-ingest path, through the same layered rule as the transport:
  // --ingest beats $PARDA_INGEST beats the legacy default (load the whole
  // trace in memory; with --stream, the pipe). nullopt = legacy default.
  std::optional<IngestMode> ingest;
  const config::Resolved ingest_resolved =
      config::resolve_flag(cli, "ingest", ingest_text, "PARDA_INGEST", "");
  if (!ingest_resolved.value.empty()) {
    const std::optional<IngestMode> parsed =
        parse_ingest_mode(ingest_resolved.value);
    if (parsed.has_value()) {
      ingest = *parsed;
    } else if (ingest_resolved.from_cli()) {
      usage_error("bad --ingest '%s' (expected pipe|mmap|trz)",
                  ingest_resolved.value.c_str());
    } else {
      std::fprintf(stderr, "trace_tool: ignoring bad $PARDA_INGEST '%s'\n",
                   ingest_resolved.value.c_str());
    }
  }
  if (stream) {
    // --stream IS pipe ingest. A contradictory CLI --ingest is a usage
    // error; a contradictory environment is tolerated, like --transport.
    if (ingest.has_value() && *ingest != IngestMode::kPipe &&
        ingest_resolved.from_cli()) {
      usage_error("analyze: --stream streams through the pipe; drop it or "
                  "use --ingest=%s without --stream",
                  ingest_mode_name(*ingest));
    }
    ingest = IngestMode::kPipe;
  }
  if (engine != "parda" && cli.was_set("ingest")) {
    usage_error("--ingest requires --engine=parda (sequential engines load "
                "the whole trace in memory)");
  }

  std::optional<std::uint16_t> serve_port;
  if (!serve.empty()) {
    char* end = nullptr;
    const unsigned long port = std::strtoul(serve.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || port > 65535) {
      usage_error("bad --serve port '%s'", serve.c_str());
    }
    serve_port = static_cast<std::uint16_t>(port);
  }

  // Observability is compiled in but off; any telemetry output flag turns
  // it on for the whole process.
  if (!metrics_out.empty() || !trace_spans.empty() || serve_port ||
      report || !report_json.empty()) {
    obs::set_enabled(true);
  }

  if (command == "gen") {
    if (refs == 0) usage_error("gen: --refs must be positive");
    check_trz_flags(cli, "gen", out, trz_version, chunk_refs);
    // Accept either a bare Table IV profile name ("mcf") or a full
    // workload spec string ("zipf:m=100000,a=0.9", "mix:...", "spec:mcf").
    std::unique_ptr<Workload> w;
    if (find_spec_profile(workload_name) != nullptr) {
      w = make_spec_workload(workload_name, scale, seed);
    } else {
      w = parse_workload(workload_name, seed);
    }
    const auto trace = generate_trace(*w, refs);
    store(out, trace, trz_version, chunk_refs);
    std::printf("wrote %s references of %s to %s\n",
                with_commas(refs).c_str(), w->name().c_str(), out.c_str());
    return 0;
  }
  if (command == "analyze") {
    if (cli.positionals().empty()) usage_error("analyze: missing trace path");
    if (procs == 0) usage_error("analyze: --procs must be positive");
    if (stream && chunk == 0) usage_error("analyze: --chunk must be positive");
    if (stream && pipe_words == 0) {
      usage_error("analyze: --pipe must be positive");
    }

    if (repeat == 0) usage_error("analyze: --repeat must be positive");
    PardaResult result;
    if (engine != "parda") {
      // Sequential engines run inline — no runtime, no workers — so the
      // streaming/serving machinery does not apply.
      if (stream) {
        usage_error("analyze: --engine=%s is sequential; --stream supports "
                    "only --engine=parda",
                    engine.c_str());
      }
      if (serve_port) usage_error("analyze: --serve requires --engine=parda");
      const std::vector<Addr> trace = load(cli.positionals()[0]);
      for (std::uint64_t i = 0; i < repeat; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        result.hist = run_seq_engine(engine, trace, bound);
        const std::chrono::duration<double> wall =
            std::chrono::steady_clock::now() - t0;
        result.stats.wall_seconds = wall.count();
        if (repeat > 1) {
          std::printf("iteration %llu: %.3f ms wall\n",
                      static_cast<unsigned long long>(i + 1),
                      wall.count() * 1e3);
        }
      }
    } else {
      comm::FaultPlan plan = fault_plan_spec.empty()
                                 ? comm::FaultPlan::from_env()
                                 : comm::FaultPlan::parse(fault_plan_spec);
      if (transport.distributed()) {
        // One process = one rank: the pool, the watchdog's shared rank
        // board, and warm --repeat reuse are all single-process machinery.
        if (watchdog_ms > 0) {
          usage_error("analyze: --watchdog-ms needs an in-process world "
                      "(the stall watchdog samples every rank's progress "
                      "from shared memory)");
        }
        if (repeat != 1) {
          usage_error("analyze: --repeat needs an in-process world "
                      "(distributed worlds live for exactly one run)");
        }
      }
      PardaOptions options;
      options.num_procs = static_cast<int>(procs);
      options.bound = bound;
      options.chunk_words = chunk;
      options.run_options.transport = transport;
      if (!plan.empty()) options.run_options.fault_plan = &plan;
      if (watchdog_ms > 0) {
        options.run_options.watchdog_interval =
            std::chrono::milliseconds(watchdog_ms);
      }
      if (timeout_ms > 0) {
        options.run_options.op_timeout = std::chrono::milliseconds(timeout_ms);
      }

      // One persistent runtime for every iteration: with --repeat > 1 the
      // workers spawn once and every later analysis reuses them, so the
      // per-iteration times show the warm-pool effect directly.
      core::RuntimeOptions runtime_options;
      runtime_options.serve_port = serve_port;
      core::PardaRuntime runtime(runtime_options);
      if (serve_port) {
        // The PARDA_SERVE_PORT line is a machine-parseable contract:
        // scripts resolve an ephemeral --serve=0 port by grepping exactly
        // "^PARDA_SERVE_PORT=" (see scripts/run_telemetry_smoke.sh and
        // scripts/run_soak.sh). Keep it first and keep the format stable.
        std::printf("PARDA_SERVE_PORT=%u\n",
                    static_cast<unsigned>(runtime.serve_port()));
        std::printf("serving telemetry on http://127.0.0.1:%u "
                    "(/metrics /metrics.json /spans /healthz)\n",
                    static_cast<unsigned>(runtime.serve_port()));
        std::fflush(stdout);
      }
      auto session = runtime.session(options);
      std::vector<Addr> trace;
      if (!ingest.has_value()) trace = load(cli.positionals()[0]);
      for (std::uint64_t i = 0; i < repeat; ++i) {
        result = ingest.has_value()
                     ? session.analyze_file(cli.positionals()[0], pipe_words,
                                            *ingest)
                     : session.analyze(trace);
        if (repeat > 1) {
          std::printf("iteration %llu: %.3f ms wall\n",
                      static_cast<unsigned long long>(i + 1),
                      result.stats.wall_seconds * 1e3);
        }
      }
    }
    if (transport.distributed() && transport.local_rank != 0) {
      // The reduction roots at rank 0, so only that process holds the
      // merged histogram; siblings confirm completion and keep their
      // per-process telemetry outputs below.
      std::printf("rank %d done (results print on the rank 0 process)\n",
                  transport.local_rank);
    } else {
      print_result(result);
    }
    // When this process is the hub of a distributed run, every telemetry
    // output covers the whole fleet: remote frames are merged in (span
    // timestamps already rebased onto this process's clock at ingest).
    // The hub is empty everywhere else, and these fall back byte-for-byte
    // to the historical single-process outputs.
    const bool fleet = !obs::hub().empty();
    if (!metrics_out.empty()) {
      const std::string snapshot =
          fleet ? obs::hub().merged_metrics_json(obs::registry())
                : obs::registry().to_json();
      write_text_file(metrics_out, snapshot + "\n");
      std::printf("wrote metrics snapshot to %s\n", metrics_out.c_str());
    }
    if (!trace_spans.empty()) {
      const std::string spans_json =
          fleet ? obs::hub().merged_chrome_json(obs::tracer())
                : obs::tracer().to_chrome_json();
      write_text_file(trace_spans, spans_json + "\n");
      std::printf("wrote %zu trace spans to %s\n",
                  fleet ? obs::hub().merged_events(obs::tracer()).size()
                        : obs::tracer().events().size(),
                  trace_spans.c_str());
    }
    if (report || !report_json.empty()) {
      obs::SpanReport span_report =
          fleet ? obs::SpanReport::from_events(
                      obs::hub().merged_events(obs::tracer()),
                      obs::hub().merged_dropped(obs::tracer()))
                : obs::SpanReport::from_tracer(obs::tracer());
      if (fleet) {
        span_report.set_clock_uncertainty_ns(obs::hub().max_uncertainty_ns());
      }
      if (report) {
        std::printf("\n%s", span_report.to_table().c_str());
      }
      if (!report_json.empty()) {
        write_text_file(report_json, span_report.to_json() + "\n");
        std::printf("wrote span report to %s\n", report_json.c_str());
      }
    }
    return 0;
  }
  if (command == "checkmetrics") {
    if (cli.positionals().empty()) {
      usage_error("checkmetrics: missing exposition file path");
    }
    const std::string text = read_text_file(cli.positionals()[0]);
    const std::vector<std::string> problems = obs::validate_prometheus(text);
    if (problems.empty()) {
      std::printf("%s: valid Prometheus exposition\n",
                  cli.positionals()[0].c_str());
      return 0;
    }
    for (const std::string& p : problems) {
      std::fprintf(stderr, "%s: %s\n", cli.positionals()[0].c_str(),
                   p.c_str());
    }
    return kExitRuntime;
  }
  if (command == "convert") {
    if (cli.positionals().size() < 2) {
      usage_error("convert: need input and output paths");
    }
    check_trz_flags(cli, "convert", cli.positionals()[1], trz_version,
                    chunk_refs);
    const auto trace = load(cli.positionals()[0]);
    store(cli.positionals()[1], trace, trz_version, chunk_refs);
    std::printf("converted %zu references\n", trace.size());
    return 0;
  }
  usage_error(
      "unknown command '%s' (expected gen|analyze|convert|checkmetrics)",
      command.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run_tool(argc, argv);
  } catch (const parda::obs::ServerBindError& e) {
    // A taken or unbindable --serve port is a runtime failure with a
    // dedicated diagnostic, not a crash: scripts distinguish it from
    // usage errors by the exit code.
    std::fprintf(stderr, "trace_tool: cannot bind telemetry port %u: %s\n",
                 static_cast<unsigned>(e.port()), e.what());
    return parda::kExitRuntime;
  } catch (const std::exception& e) {
    // Runtime failures (missing or corrupt traces, aborted analyses) get a
    // one-line diagnostic and an exit code distinct from usage errors. The
    // flight recorder captures the dying context (comm aborts already
    // dumped at the abort site; the first dump wins).
    parda::obs::flightrec_dump(std::string("trace_tool: ") + e.what());
    std::fprintf(stderr, "trace_tool: %s\n", e.what());
    return parda::kExitRuntime;
  }
}
