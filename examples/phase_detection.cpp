// Locality phase detection (Shen et al., cited in the paper's intro): cut
// the trace into windows, build per-window reuse distance signatures, and
// report where the program's locality regime changes.
//
//   ./phase_detection --refs=300000 --window=16384 --threshold=0.4
#include <cstdio>
#include <memory>
#include <string>

#include "apps/phase_detect.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace parda;

  std::uint64_t refs = 300000;
  std::uint64_t window = 16384;
  double threshold = 0.4;
  std::uint64_t phase_len = 65536;

  CliParser cli("Detect locality phases in a phased synthetic workload");
  cli.add_flag("refs", &refs, "trace length");
  cli.add_flag("window", &window, "analysis window size");
  cli.add_flag("threshold", &threshold, "signature divergence threshold");
  cli.add_flag("phase-len", &phase_len, "injected phase length");
  cli.parse(argc, argv);

  // A gcc-like program: three alternating locality regimes.
  std::vector<std::unique_ptr<Workload>> kids;
  kids.push_back(std::make_unique<SequentialWorkload>(20000, 0));
  kids.push_back(std::make_unique<ZipfWorkload>(256, 1.1, 7, 1));
  kids.push_back(std::make_unique<UniformRandomWorkload>(8192, 8, 2));
  PhasedWorkload workload(std::move(kids), phase_len);
  const auto trace = generate_trace(workload, refs);

  PhaseDetectOptions options;
  options.window = window;
  options.threshold = threshold;
  const PhaseReport report = detect_phases(trace, options);

  std::printf("%s references, window %s, threshold %.2f\n",
              with_commas(refs).c_str(), with_commas(window).c_str(),
              threshold);
  std::printf("injected phase boundaries every %s references\n\n",
              with_commas(phase_len).c_str());

  TablePrinter table({"boundary at", "divergence", "nearest injected"});
  for (const PhaseBoundary& b : report.boundaries) {
    const std::uint64_t nearest =
        ((b.position + phase_len / 2) / phase_len) * phase_len;
    table.add_row({with_commas(b.position), TablePrinter::fmt(b.divergence, 3),
                   with_commas(nearest)});
  }
  table.print();
  std::printf("\n%zu boundaries detected across %zu windows\n",
              report.boundaries.size(), report.signatures.size());
  return 0;
}
