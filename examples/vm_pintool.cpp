// vm_pintool: the closest analogue of running "pin -t memtrace -- app"
// in this repository — assemble a program from a .s file (or use a named
// builtin), execute it under instrumentation, and analyze its memory
// trace online through the pipe (paper Figure 3).
//
//   ./vm_pintool --asm=myprog.s --procs=4
//   ./vm_pintool --program=bubble_sort --n=128
#include <cstdio>
#include <string>
#include <thread>

#include "core/parda.hpp"
#include "hist/mrc.hpp"
#include "trace/trace_pipe.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "vm/assembler.hpp"
#include "vm/programs.hpp"
#include "vm/tracer.hpp"

int main(int argc, char** argv) {
  using namespace parda;

  std::string asm_path;
  std::string program_name = "bubble_sort";
  std::uint64_t n = 128;
  std::uint64_t rounds = 4;
  std::uint64_t procs = 4;
  std::uint64_t bound = 0;

  CliParser cli(
      "Run a VM program under instrumentation and analyze its memory "
      "trace online");
  cli.add_flag("asm", &asm_path, "assembly file to run (overrides "
                                 "--program)");
  cli.add_flag("program", &program_name,
               "builtin: vector_sum | smooth | matmul | list_chase | "
               "binary_search | bubble_sort");
  cli.add_flag("n", &n, "builtin problem size");
  cli.add_flag("rounds", &rounds, "builtin rounds/queries");
  cli.add_flag("procs", &procs, "analysis ranks");
  cli.add_flag("bound", &bound, "cache bound (0 = unbounded)");
  cli.parse(argc, argv);

  vm::Program program;
  if (!asm_path.empty()) {
    program = vm::assemble_file(asm_path);
  } else if (program_name == "vector_sum") {
    program = vm::vector_sum(n);
  } else if (program_name == "smooth") {
    program = vm::smooth_passes(n, rounds);
  } else if (program_name == "matmul") {
    program = vm::matmul(n);
  } else if (program_name == "list_chase") {
    program = vm::list_chase(n, rounds);
  } else if (program_name == "binary_search") {
    program = vm::binary_search(n, rounds * 100);
  } else if (program_name == "bubble_sort") {
    program = vm::bubble_sort(n);
  } else {
    std::fprintf(stderr, "unknown program %s\n", program_name.c_str());
    return 1;
  }

  TracePipe pipe(1 << 16);
  vm::StreamResult run_result;
  std::thread producer(
      [&] { run_result = vm::stream_program(program, pipe); });

  PardaOptions options;
  options.num_procs = static_cast<int>(procs);
  options.bound = bound;
  options.chunk_words = 4096;
  const PardaResult result = parda_analyze_stream(pipe, options);
  producer.join();

  std::printf("program %s: %s instructions, %s memory accesses, %s distinct"
              "\n\n",
              program.name.c_str(),
              with_commas(run_result.instructions).c_str(),
              with_commas(result.hist.total()).c_str(),
              with_commas(result.hist.infinities()).c_str());
  TablePrinter table({"cache size", "miss ratio"});
  for (const MrcPoint& p :
       miss_ratio_curve_pow2(result.hist, result.hist.max_distance() + 2)) {
    table.add_row(
        {words_human(p.cache_size), TablePrinter::fmt(p.miss_ratio, 4)});
  }
  table.print();
  return 0;
}
