; 64x64 matrix transpose, for vm_pintool:
;   ./vm_pintool --asm=examples/asm/transpose.s
;
; Reads A row-major at [0, 4096), writes B at [4096, 8192). The column
; writes stride by 64 words, giving the classic transpose locality gap
; between read and write streams.
.name transpose
.mem 8192

  movi r1, 0          ; i (row)
  movi r2, 64         ; n
outer:
  movi r3, 0          ; j (col)
inner:
  mul  r4, r1, r2     ; i*n
  add  r4, r4, r3     ; i*n + j
  load r5, r4, 0      ; A[i][j]
  mul  r6, r3, r2     ; j*n
  add  r6, r6, r1     ; j*n + i
  store r5, r6, 4096  ; B[j][i]
  addi r3, r3, 1
  blt  r3, r2, inner
  addi r1, r1, 1
  blt  r1, r2, outer
  halt
