; Dot product of two 256-element vectors, for vm_pintool:
;   ./vm_pintool --asm=examples/asm/dotprod.s
;
; a[] lives at [0, 256), b[] at [256, 512); the result lands in r5.
.name dotprod
.mem 512

  movi r1, 0        ; i
  movi r2, 256      ; n
  movi r5, 0        ; acc
loop:
  load r3, r1, 0    ; a[i]
  load r4, r1, 256  ; b[i]
  mul  r3, r3, r4
  add  r5, r5, r3
  addi r1, r1, 1
  blt  r1, r2, loop
  halt
