// parda_serve: the long-running multi-tenant MRC ingest service.
//
//   ./parda_serve --port=0 --max-tenants=32 --memory-quota=8388608
//
// Tenants register and stream references over the telemetry server's
// HTTP surface (see DESIGN.md "Serving & isolation model"):
//
//   curl -X POST http://127.0.0.1:$PORT/tenants/alice
//   curl -X POST --data-binary $'1\n2\n1\n' http://127.0.0.1:$PORT/ingest/alice
//   curl http://127.0.0.1:$PORT/tenants
//   curl http://127.0.0.1:$PORT/tenants/alice/histogram
//
// Startup prints "PARDA_SERVE_PORT=<port>" as the first stdout line — the
// machine-parseable contract scripts use to resolve --port=0.
//
// SIGTERM/SIGINT drain gracefully: admission stops, every tenant's
// in-flight window is finished and folded, per-tenant parda.histogram.v1
// files land in --flush-dir (when set), and the process exits 0.
//
// Exit codes: 0 clean (drained) shutdown, 1 runtime failure (e.g. the
// port cannot be bound), 2 usage error.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <exception>
#include <filesystem>
#include <string>
#include <thread>

#include "core/runtime.hpp"
#include "hist/report.hpp"
#include "obs/obs.hpp"
#include "serve/service.hpp"
#include "util/cli.hpp"

namespace {

volatile std::sig_atomic_t g_shutdown = 0;

void on_signal(int) { g_shutdown = 1; }

int run_server(int argc, char** argv) {
  using namespace parda;

  std::uint64_t port = 0;
  std::uint64_t procs = 2;
  std::uint64_t bound = 1 << 16;
  std::uint64_t window = 1 << 14;
  double decay = 1.0;
  std::uint64_t max_tenants = 64;
  std::uint64_t rate_limit = 0;
  std::uint64_t memory_quota = 0;
  std::uint64_t sampler_tracked = 4096;
  std::uint64_t max_aborts = 1;
  std::uint64_t global_quota = 0;
  std::uint64_t max_pending = 0;
  std::string shed = "reject";
  std::string flush_dir;
  std::uint64_t duration_ms = 0;
  std::string log_level_name;
  std::string flight_recorder;

  CliParser cli("Parda multi-tenant MRC ingest service");
  cli.add_flag("port", &port, "listen port on 127.0.0.1 (0 = ephemeral)");
  cli.add_flag("procs", &procs, "ranks per tenant window job");
  cli.add_flag("bound", &bound, "default tenant cache bound");
  cli.add_flag("window", &window, "default tenant window (references)");
  cli.add_flag("decay", &decay, "default tenant window decay in (0, 1]");
  cli.add_flag("max-tenants", &max_tenants, "registered-tenant cap");
  cli.add_flag("rate-limit", &rate_limit,
               "default tenant quota: references/second (0 = unlimited)");
  cli.add_flag("memory-quota", &memory_quota,
               "default tenant quota: resident bytes before degradation to "
               "fixed-size sampling (0 = never degrade)");
  cli.add_flag("sampler-tracked", &sampler_tracked,
               "degraded-mode sampler budget (distinct addresses)");
  cli.add_flag("max-aborts", &max_aborts,
               "aborted window jobs tolerated before quarantine");
  cli.add_flag("global-quota", &global_quota,
               "service-wide resident-byte overload threshold (0 = off)");
  cli.add_flag("max-pending", &max_pending,
               "pending-job overload threshold (0 = off)");
  cli.add_flag("shed", &shed,
               "overload policy: reject (bounce new batches 503) or "
               "degrade (downgrade every tenant to sampling)");
  cli.add_flag("flush-dir", &flush_dir,
               "drain: write <tenant>.hist.json files here");
  cli.add_flag("duration-ms", &duration_ms,
               "serve for N ms then drain (0 = until SIGTERM/SIGINT)");
  cli.add_flag("log-level", &log_level_name,
               "structured log threshold: trace|debug|info|warn|error|off");
  cli.add_flag("flight-recorder", &flight_recorder,
               "write a parda.flightrec.v1 crash dump to FILE on a fatal "
               "signal or unhandled error (also $PARDA_FLIGHT_RECORDER)");
  cli.parse(argc - 1, argv + 1);

  if (port > 65535) usage_error("bad --port %llu",
                                static_cast<unsigned long long>(port));
  if (procs == 0) usage_error("--procs must be positive");
  if (bound == 0) usage_error("--bound must be positive");
  if (window == 0) usage_error("--window must be positive");
  if (decay <= 0.0 || decay > 1.0) usage_error("--decay must be in (0, 1]");
  if (max_tenants == 0) usage_error("--max-tenants must be positive");
  if (sampler_tracked == 0) usage_error("--sampler-tracked must be positive");
  if (shed != "reject" && shed != "degrade") {
    usage_error("bad --shed '%s' (expected reject|degrade)", shed.c_str());
  }
  if (!flush_dir.empty()) {
    // Created up front so a bad path fails the launch, not the drain.
    std::error_code ec;
    std::filesystem::create_directories(flush_dir, ec);
    if (ec) {
      usage_error("cannot create --flush-dir '%s': %s", flush_dir.c_str(),
                  ec.message().c_str());
    }
  }
  if (!log_level_name.empty()) {
    const auto parsed = obs::parse_log_level(log_level_name);
    if (!parsed.has_value()) {
      usage_error("bad --log-level '%s'", log_level_name.c_str());
    }
    obs::set_log_level(*parsed);
  }

  if (!flight_recorder.empty()) {
    obs::flightrec_configure(flight_recorder, /*process=*/0);
  }
  obs::flightrec_install_signal_handlers();

  core::RuntimeOptions runtime_options;
  runtime_options.serve_port = static_cast<std::uint16_t>(port);
  core::PardaRuntime runtime(runtime_options);

  serve::MrcService::Config config;
  config.max_tenants = max_tenants;
  config.global_memory_quota_bytes = global_quota;
  config.max_pending_jobs = max_pending;
  config.shed = shed == "degrade" ? serve::ShedPolicy::kDegradeAll
                                  : serve::ShedPolicy::kRejectNewest;
  config.tenant_defaults.bound = bound;
  config.tenant_defaults.window = window;
  config.tenant_defaults.decay = decay;
  config.tenant_defaults.num_procs = static_cast<int>(procs);
  config.tenant_defaults.quotas.max_refs_per_sec = rate_limit;
  config.tenant_defaults.quotas.memory_quota_bytes = memory_quota;
  config.tenant_defaults.quotas.sampler_tracked =
      static_cast<std::size_t>(sampler_tracked);
  config.tenant_defaults.quotas.max_aborts = max_aborts;

  serve::MrcService service(runtime, config);
  service.mount();

  std::printf("PARDA_SERVE_PORT=%u\n",
              static_cast<unsigned>(runtime.serve_port()));
  std::printf("serving tenants on http://127.0.0.1:%u "
              "(/tenants /ingest/<name> /metrics /healthz)\n",
              static_cast<unsigned>(runtime.serve_port()));
  std::fflush(stdout);

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);

  const auto started = std::chrono::steady_clock::now();
  while (g_shutdown == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (duration_ms > 0) {
      const auto elapsed = std::chrono::steady_clock::now() - started;
      if (elapsed >= std::chrono::milliseconds(duration_ms)) break;
    }
  }

  std::printf("draining %zu tenants\n", service.tenant_count());
  std::fflush(stdout);
  const auto flushed = service.drain();
  for (const auto& [name, hist] : flushed) {
    if (!flush_dir.empty()) {
      write_text_file(flush_dir + "/" + name + ".hist.json",
                      hist.to_json() + "\n");
    }
    std::printf("tenant %s: %llu references, %llu distinct\n", name.c_str(),
                static_cast<unsigned long long>(hist.total()),
                static_cast<unsigned long long>(hist.infinities()));
  }
  std::printf("drained\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run_server(argc, argv);
  } catch (const parda::obs::ServerBindError& e) {
    std::fprintf(stderr, "parda_serve: cannot bind port %u: %s\n",
                 static_cast<unsigned>(e.port()), e.what());
    return parda::kExitRuntime;
  } catch (const std::exception& e) {
    parda::obs::flightrec_dump(std::string("parda_serve: ") + e.what());
    std::fprintf(stderr, "parda_serve: %s\n", e.what());
    return parda::kExitRuntime;
  }
}
