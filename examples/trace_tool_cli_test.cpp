// CLI contract tests for trace_tool, run against the real binary (path
// injected by CMake): strict flag handling must distinguish usage errors
// (exit 2) from runtime failures (exit 1) and success (exit 0).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

namespace {

int run(const std::string& args) {
  const std::string cmd =
      std::string(PARDA_TRACE_TOOL_PATH) + " " + args + " >/dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  return WEXITSTATUS(status);
}

/// Like run() but with an environment assignment prefixed, for the
/// CLI > env > default precedence tests.
int run_env(const std::string& env, const std::string& args) {
  const std::string cmd = env + " " + std::string(PARDA_TRACE_TOOL_PATH) +
                          " " + args + " >/dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  return WEXITSTATUS(status);
}

class TraceToolCliTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ASSERT_EQ(run("gen --workload=zipf:m=500,a=0.9 --refs=20000 "
                  "--out=trace_cli_test.trc"),
              0);
  }
};

TEST_F(TraceToolCliTest, UnknownEngineIsUsageError) {
  EXPECT_EQ(run("analyze trace_cli_test.trc --engine=warp"), 2);
}

TEST_F(TraceToolCliTest, UnknownEngineRejectedForEveryCommand) {
  // The name is validated at parse time, before any work happens.
  EXPECT_EQ(run("gen --refs=10 --engine=warp --out=should_not_exist.trc"), 2);
}

TEST_F(TraceToolCliTest, SequentialEngineRuns) {
  EXPECT_EQ(run("analyze trace_cli_test.trc --engine=lru"), 0);
  EXPECT_EQ(run("analyze trace_cli_test.trc --engine=lru --bound=256"), 0);
  EXPECT_EQ(run("analyze trace_cli_test.trc --engine=olken"), 0);
  EXPECT_EQ(run("analyze trace_cli_test.trc --engine=fenwick"), 0);
}

TEST_F(TraceToolCliTest, SequentialEngineWithStreamIsUsageError) {
  EXPECT_EQ(run("analyze trace_cli_test.trc --engine=lru --stream"), 2);
}

TEST_F(TraceToolCliTest, BoundOnUnboundedOnlyEngineIsUsageError) {
  EXPECT_EQ(run("analyze trace_cli_test.trc --engine=fenwick --bound=64"), 2);
  EXPECT_EQ(run("analyze trace_cli_test.trc --engine=naive --bound=64"), 2);
}

TEST_F(TraceToolCliTest, MissingTraceIsRuntimeError) {
  EXPECT_EQ(run("analyze no_such_file.trc --engine=lru"), 1);
}

TEST_F(TraceToolCliTest, DefaultEngineStillWorks) {
  EXPECT_EQ(run("analyze trace_cli_test.trc --procs=2"), 0);
}

// --- Transport flag matrix (ISSUE 8) ---------------------------------------

TEST_F(TraceToolCliTest, InProcessTransportsAnalyze) {
  EXPECT_EQ(run("analyze trace_cli_test.trc --procs=2 --transport=threads"),
            0);
  EXPECT_EQ(run("analyze trace_cli_test.trc --procs=2 --transport=shm"), 0);
  EXPECT_EQ(run("analyze trace_cli_test.trc --procs=2 --transport=tcp"), 0);
}

TEST_F(TraceToolCliTest, BadTransportSpecIsUsageError) {
  EXPECT_EQ(run("analyze trace_cli_test.trc --transport=carrier-pigeon"), 2);
  EXPECT_EQ(run("analyze trace_cli_test.trc --transport=shm:bogus=1"), 2);
  EXPECT_EQ(run("analyze trace_cli_test.trc --transport=shm:ring=0"), 2);
}

TEST_F(TraceToolCliTest, EndpointFlagsNeedTheMatchingTransport) {
  // --rank without a cross-process wire.
  EXPECT_EQ(run("analyze trace_cli_test.trc --rank=0"), 2);
  EXPECT_EQ(run("analyze trace_cli_test.trc --transport=threads --rank=0"),
            2);
  // --peers is tcp-only, --segment is shm-only.
  EXPECT_EQ(run("analyze trace_cli_test.trc --transport=shm "
                "--peers=a:1,b:2"),
            2);
  EXPECT_EQ(run("analyze trace_cli_test.trc --transport=tcp --segment=/x"),
            2);
  // Distributed shm needs a named segment; distributed tcp needs one peer
  // per rank; peers without --rank is meaningless.
  EXPECT_EQ(run("analyze trace_cli_test.trc --procs=2 --transport=shm "
                "--rank=0"),
            2);
  EXPECT_EQ(run("analyze trace_cli_test.trc --procs=2 --transport=tcp "
                "--rank=0 --peers=127.0.0.1:1"),
            2);
  EXPECT_EQ(run("analyze trace_cli_test.trc --procs=2 --transport=tcp "
                "--peers=127.0.0.1:1,127.0.0.1:2"),
            2);
  // Rank out of range.
  EXPECT_EQ(run("analyze trace_cli_test.trc --procs=2 --transport=shm "
                "--segment=/parda-cli --rank=2"),
            2);
}

TEST_F(TraceToolCliTest, SequentialEngineRejectsExplicitWireTransport) {
  EXPECT_EQ(run("analyze trace_cli_test.trc --engine=lru --transport=shm"),
            2);
  // ... but a process-wide $PARDA_TRANSPORT does not break sequential
  // engines (they ignore the wire instead of failing).
  EXPECT_EQ(run_env("PARDA_TRANSPORT=shm",
                    "analyze trace_cli_test.trc --engine=lru"),
            0);
}

TEST_F(TraceToolCliTest, DistributedModeRejectsPoolOnlyFeatures) {
  const std::string dist =
      "analyze trace_cli_test.trc --procs=2 --transport=tcp "
      "--peers=127.0.0.1:1,127.0.0.1:2 --rank=0 ";
  EXPECT_EQ(run(dist + "--watchdog-ms=100"), 2);
  EXPECT_EQ(run(dist + "--repeat=3"), 2);
}

TEST_F(TraceToolCliTest, TransportResolvesCliOverEnvOverDefault) {
  // A bogus environment value fails strict parsing...
  EXPECT_EQ(run_env("PARDA_TRANSPORT=warp-drive",
                    "analyze trace_cli_test.trc --procs=2"),
            2);
  // ...unless the command line overrides it (CLI wins)...
  EXPECT_EQ(run_env("PARDA_TRANSPORT=warp-drive",
                    "analyze trace_cli_test.trc --procs=2 "
                    "--transport=threads"),
            0);
  // ...and a valid env value selects the wire with no flag at all.
  EXPECT_EQ(run_env("PARDA_TRANSPORT=shm",
                    "analyze trace_cli_test.trc --procs=2"),
            0);
}

/// Launches one trace_tool rank process per entry in `ranks` (all but the
/// last in the background), returning rank 0's exit code. The peers all
/// analyze the same trace, so the run exercises the real cross-process
/// rendezvous + wire + implicit final barrier.
int run_distributed(const std::string& common, int np) {
  std::string cmd = "( ";
  for (int r = np - 1; r >= 1; --r) {
    cmd += std::string(PARDA_TRACE_TOOL_PATH) + " " + common +
           " --rank=" + std::to_string(r) + " >/dev/null 2>&1 & ";
  }
  cmd += std::string(PARDA_TRACE_TOOL_PATH) + " " + common +
         " --rank=0 >/dev/null 2>&1 ; rc=$? ; wait ; exit $rc )";
  const int status = std::system(cmd.c_str());
  return WEXITSTATUS(status);
}

TEST_F(TraceToolCliTest, DistributedTcpAnalyzeAcrossProcesses) {
  EXPECT_EQ(run_distributed(
                "analyze trace_cli_test.trc --procs=2 --transport=tcp "
                "--peers=127.0.0.1:46917,127.0.0.1:46918",
                2),
            0);
}

TEST_F(TraceToolCliTest, DistributedShmAnalyzeAcrossProcesses) {
  EXPECT_EQ(run_distributed(
                "analyze trace_cli_test.trc --procs=2 --transport=shm "
                "--segment=/parda-cli-test",
                2),
            0);
}

// --- Ingest flag matrix (DESIGN.md "Ingest") --------------------------------

TEST_F(TraceToolCliTest, EveryIngestModeAnalyzes) {
  ASSERT_EQ(run("convert trace_cli_test.trc trace_cli_test.trz"), 0);
  EXPECT_EQ(run("analyze trace_cli_test.trc --procs=2 --ingest=pipe"), 0);
  EXPECT_EQ(run("analyze trace_cli_test.trc --procs=2 --ingest=mmap"), 0);
  EXPECT_EQ(run("analyze trace_cli_test.trz --procs=2 --ingest=trz"), 0);
}

TEST_F(TraceToolCliTest, BadIngestModeIsUsageError) {
  EXPECT_EQ(run("analyze trace_cli_test.trc --ingest=carrier-pigeon"), 2);
}

TEST_F(TraceToolCliTest, StreamContradictsOfflineIngest) {
  // --stream IS pipe ingest: saying both is fine, an offline mode is not.
  EXPECT_EQ(run("analyze trace_cli_test.trc --stream --ingest=pipe"), 0);
  EXPECT_EQ(run("analyze trace_cli_test.trc --stream --ingest=mmap"), 2);
  EXPECT_EQ(run("analyze trace_cli_test.trc --stream --ingest=trz"), 2);
  // A process-wide $PARDA_INGEST yields to an explicit --stream.
  EXPECT_EQ(run_env("PARDA_INGEST=mmap",
                    "analyze trace_cli_test.trc --stream"),
            0);
}

TEST_F(TraceToolCliTest, SequentialEngineRejectsExplicitIngest) {
  EXPECT_EQ(run("analyze trace_cli_test.trc --engine=lru --ingest=mmap"), 2);
  // ... but tolerates the environment, like --transport.
  EXPECT_EQ(run_env("PARDA_INGEST=mmap",
                    "analyze trace_cli_test.trc --engine=lru"),
            0);
}

TEST_F(TraceToolCliTest, IngestResolvesCliOverEnvOverDefault) {
  // A valid env value selects the path with no flag at all...
  EXPECT_EQ(run_env("PARDA_INGEST=mmap",
                    "analyze trace_cli_test.trc --procs=2"),
            0);
  // ...the command line beats it...
  EXPECT_EQ(run_env("PARDA_INGEST=trz",
                    "analyze trace_cli_test.trc --procs=2 --ingest=mmap"),
            0);
  // ...and a malformed env value falls back to the default with a warning
  // (the legacy in-memory path still works, unlike a bad --ingest).
  EXPECT_EQ(run_env("PARDA_INGEST=carrier-pigeon",
                    "analyze trace_cli_test.trc --procs=2"),
            0);
}

TEST_F(TraceToolCliTest, WrongContainerForIngestIsRuntimeError) {
  ASSERT_EQ(run("convert trace_cli_test.trc trace_cli_test.trz"), 0);
  EXPECT_EQ(run("analyze trace_cli_test.trc --ingest=trz"), 1);
  EXPECT_EQ(run("analyze trace_cli_test.trz --ingest=mmap"), 1);
}

// --- convert: .trz versions and chunking ------------------------------------

TEST_F(TraceToolCliTest, ConvertWritesChunkedV2ByDefault) {
  ASSERT_EQ(run("convert trace_cli_test.trc trace_cli_conv.trz"), 0);
  EXPECT_EQ(run("analyze trace_cli_conv.trz --procs=2 --ingest=trz"), 0);
  ASSERT_EQ(run("convert trace_cli_test.trc trace_cli_conv.trz "
                "--chunk-refs=1024"),
            0);
  EXPECT_EQ(run("analyze trace_cli_conv.trz --procs=2 --ingest=trz"), 0);
}

TEST_F(TraceToolCliTest, V1ArchivesStillReadableButNotChunkIngestable) {
  ASSERT_EQ(run("convert trace_cli_test.trc trace_cli_v1.trz "
                "--trz-version=1"),
            0);
  // Legacy in-memory load decodes v1 fine; chunked ingest demands v2.
  EXPECT_EQ(run("analyze trace_cli_v1.trz --procs=2"), 0);
  EXPECT_EQ(run("analyze trace_cli_v1.trz --procs=2 --ingest=trz"), 1);
  // The upgrade path named in that error actually works.
  ASSERT_EQ(run("convert trace_cli_v1.trz trace_cli_v2.trz "
                "--trz-version=2"),
            0);
  EXPECT_EQ(run("analyze trace_cli_v2.trz --procs=2 --ingest=trz"), 0);
}

TEST_F(TraceToolCliTest, TrzFlagValidation) {
  // .trz knobs on a non-.trz output.
  EXPECT_EQ(run("convert trace_cli_test.trc plain.trc --chunk-refs=64"), 2);
  EXPECT_EQ(run("convert trace_cli_test.trc plain.trc --trz-version=2"), 2);
  // Version out of range; chunking a v1 stream; degenerate chunk size.
  EXPECT_EQ(run("convert trace_cli_test.trc x.trz --trz-version=3"), 2);
  EXPECT_EQ(run("convert trace_cli_test.trc x.trz --trz-version=1 "
                "--chunk-refs=64"),
            2);
  EXPECT_EQ(run("convert trace_cli_test.trc x.trz --chunk-refs=0"), 2);
  // gen validates the same knobs.
  EXPECT_EQ(run("gen --refs=100 --out=x.trc --chunk-refs=64"), 2);
}

TEST_F(TraceToolCliTest, GenWritesChunkedTrzDirectly) {
  ASSERT_EQ(run("gen --workload=zipf:m=200,a=0.8 --refs=5000 "
                "--out=trace_cli_gen.trz --chunk-refs=512"),
            0);
  EXPECT_EQ(run("analyze trace_cli_gen.trz --procs=2 --ingest=trz"), 0);
}

}  // namespace
