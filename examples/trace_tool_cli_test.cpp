// CLI contract tests for trace_tool, run against the real binary (path
// injected by CMake): strict flag handling must distinguish usage errors
// (exit 2) from runtime failures (exit 1) and success (exit 0).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

namespace {

int run(const std::string& args) {
  const std::string cmd =
      std::string(PARDA_TRACE_TOOL_PATH) + " " + args + " >/dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  return WEXITSTATUS(status);
}

class TraceToolCliTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ASSERT_EQ(run("gen --workload=zipf:m=500,a=0.9 --refs=20000 "
                  "--out=trace_cli_test.trc"),
              0);
  }
};

TEST_F(TraceToolCliTest, UnknownEngineIsUsageError) {
  EXPECT_EQ(run("analyze trace_cli_test.trc --engine=warp"), 2);
}

TEST_F(TraceToolCliTest, UnknownEngineRejectedForEveryCommand) {
  // The name is validated at parse time, before any work happens.
  EXPECT_EQ(run("gen --refs=10 --engine=warp --out=should_not_exist.trc"), 2);
}

TEST_F(TraceToolCliTest, SequentialEngineRuns) {
  EXPECT_EQ(run("analyze trace_cli_test.trc --engine=lru"), 0);
  EXPECT_EQ(run("analyze trace_cli_test.trc --engine=lru --bound=256"), 0);
  EXPECT_EQ(run("analyze trace_cli_test.trc --engine=olken"), 0);
  EXPECT_EQ(run("analyze trace_cli_test.trc --engine=fenwick"), 0);
}

TEST_F(TraceToolCliTest, SequentialEngineWithStreamIsUsageError) {
  EXPECT_EQ(run("analyze trace_cli_test.trc --engine=lru --stream"), 2);
}

TEST_F(TraceToolCliTest, BoundOnUnboundedOnlyEngineIsUsageError) {
  EXPECT_EQ(run("analyze trace_cli_test.trc --engine=fenwick --bound=64"), 2);
  EXPECT_EQ(run("analyze trace_cli_test.trc --engine=naive --bound=64"), 2);
}

TEST_F(TraceToolCliTest, MissingTraceIsRuntimeError) {
  EXPECT_EQ(run("analyze no_such_file.trc --engine=lru"), 1);
}

TEST_F(TraceToolCliTest, DefaultEngineStillWorks) {
  EXPECT_EQ(run("analyze trace_cli_test.trc --procs=2"), 0);
}

}  // namespace
