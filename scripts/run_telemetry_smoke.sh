#!/usr/bin/env bash
# End-to-end telemetry smoke: stream a trace through trace_tool with a
# seeded FaultPlan delay on rank 2 while the live TelemetryServer is up,
# scrape /metrics /metrics.json /spans /healthz mid-run, validate the
# Prometheus exposition with `trace_tool checkmetrics`, and assert the
# span-attribution report names the delayed rank as the straggler.
#
# Usage: scripts/run_telemetry_smoke.sh [BUILD_DIR]   (default: build)
# Exercises exactly what the README "Monitoring" quickstart promises; used
# as the telemetry CI job.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
TOOL="$BUILD_DIR/examples/trace_tool"
if [[ ! -x "$TOOL" ]]; then
  echo "error: $TOOL not built (run: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
  exit 1
fi

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

"$TOOL" gen --workload=mcf --refs=400000 --seed=7 --out="$WORK/smoke.trc"

# Stream with an ephemeral-port server, a 300ms delay injected into rank
# 2's recv path, and the span report written as JSON. --repeat keeps the
# run long enough that the mid-run scrape below really lands mid-analysis.
"$TOOL" analyze "$WORK/smoke.trc" --stream --procs=4 --chunk=8192 \
    --serve=0 --report --report-json="$WORK/report.json" \
    --fault-plan="rank=2,op=recv,n=4,action=delay,ms=300" \
    --repeat=6 --log-level=info > "$WORK/analyze.out" 2> "$WORK/analyze.log" &
ANALYZE_PID=$!

# The bound port is the first thing the tool prints.
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's|.*http://127\.0\.0\.1:\([0-9]*\).*|\1|p' "$WORK/analyze.out" | head -n1)"
  [[ -n "$PORT" ]] && break
  sleep 0.1
done
if [[ -z "$PORT" ]]; then
  echo "error: server port never appeared in analyze output" >&2
  cat "$WORK/analyze.out" "$WORK/analyze.log" >&2
  exit 1
fi
echo "scraping telemetry on port $PORT"

# Mid-run scrapes: every endpoint must answer while ranks are analyzing.
curl -fsS "http://127.0.0.1:$PORT/metrics"      > "$WORK/scrape.prom"
curl -fsS "http://127.0.0.1:$PORT/metrics.json" > "$WORK/scrape.json"
curl -fsS "http://127.0.0.1:$PORT/spans"        > "$WORK/scrape.spans"
curl -fsS "http://127.0.0.1:$PORT/healthz"      > "$WORK/scrape.health"

wait "$ANALYZE_PID"

# The scrape must be well-formed Prometheus 0.0.4 exposition...
"$TOOL" checkmetrics "$WORK/scrape.prom"
# ...the JSON endpoints must carry their schemas...
grep -q '"schema": *"parda.metrics.v1"' "$WORK/scrape.json"
grep -q '"traceEvents"' "$WORK/scrape.spans"
grep -q '"ok": *true' "$WORK/scrape.health"
# ...the structured log must have recorded the injected fault...
grep -q '"event":"fault.inject"' "$WORK/analyze.log"
# ...and the attribution report must name the delayed rank.
grep -q '"straggler_rank": *2' "$WORK/report.json"
grep -q 'straggler rank 2' "$WORK/analyze.out"

echo "telemetry smoke passed: scrape valid, straggler rank 2 attributed"
