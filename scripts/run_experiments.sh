#!/usr/bin/env bash
# Regenerates every paper table/figure and the ablations.
#
# Usage:
#   scripts/run_experiments.sh [builddir]
#
# Environment knobs (see bench/bench_common.hpp):
#   PARDA_BENCH_SCALE    SPEC footprint/length divisor (default 8000;
#                        1000 = the largest configuration we recommend)
#   PARDA_BENCH_PROCS    analysis ranks for fixed-np harnesses (default 8)
#   PARDA_BENCH_MAXREFS  per-benchmark reference cap (default 2,000,000)
set -euo pipefail

build=${1:-build}

if [[ ! -d "$build/bench" ]]; then
  echo "configuring and building into $build ..."
  cmake -B "$build" -G Ninja
  cmake --build "$build"
fi

echo "== tests =="
ctest --test-dir "$build" --output-on-failure

echo "== benches =="
for b in "$build"/bench/bench_*; do
  [[ -x "$b" && -f "$b" ]] || continue
  echo "##### $(basename "$b")"
  "$b"
  echo
done
