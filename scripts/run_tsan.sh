#!/usr/bin/env bash
# Builds the tree under ThreadSanitizer and runs the comm + streaming
# tests — the suites that exercise the zero-copy payload handoffs across
# rank threads. Used as the TSAN CI job; run locally after touching
# src/comm or the streaming driver.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset tsan
cmake --build --preset tsan -j"$(nproc)"
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" ctest --preset tsan
