#!/usr/bin/env bash
# Multi-tenant serving soak: run `parda_serve` for SOAK_SECONDS (default
# 60) under a mixed tenant population — two twins on identical streams
# (cross-tenant isolation check: their flushed histograms must be
# byte-identical), a heavy tenant big enough to trip its memory quota and
# degrade, and a hostile tenant that sends malformed frames, an oversized
# body, and a deliberately slow upload. Mid-run the /metrics exposition is
# scraped and validated with `trace_tool checkmetrics`. The soak fails if
# the server crashes, RSS exceeds the soak budget, the twins diverge, or
# the SIGTERM drain does not flush every tenant and exit 0.
#
# Usage: scripts/run_soak.sh [BUILD_DIR]   (default: build)
# Env:   SOAK_SECONDS  total soak duration (default 60)
#        SOAK_RSS_MB   server RSS budget in MiB (default 512)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
SERVE="$BUILD_DIR/examples/parda_serve"
TOOL="$BUILD_DIR/examples/trace_tool"
SOAK_SECONDS="${SOAK_SECONDS:-60}"
SOAK_RSS_MB="${SOAK_RSS_MB:-512}"
for bin in "$SERVE" "$TOOL"; do
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built (run: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
    exit 1
  fi
done

WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  [[ -n "$SERVE_PID" ]] && kill -9 "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

# Deterministic text ingest batches: the twins replay the same cycle of
# files, so any divergence in their flushed histograms is a cross-tenant
# isolation bug, not workload noise.
python3 - "$WORK" <<'EOF'
import sys, os
work = sys.argv[1]
for b in range(8):
    with open(os.path.join(work, f"twin_batch{b}.txt"), "w") as f:
        for i in range(4096):
            f.write(f"{(i * 2654435761 + b * 97) % 1500:#x}\n")
for b in range(8):
    with open(os.path.join(work, f"heavy_batch{b}.txt"), "w") as f:
        for i in range(8192):
            f.write(f"{(i + b * 8192) * 64}\n")  # ever-growing footprint
EOF
# > 8 MiB: must bounce off the server's body cap with 413.
head -c $((9 * 1024 * 1024)) /dev/zero | tr '\0' 'a' > "$WORK/oversize.body"

"$SERVE" --port=0 --procs=2 --bound=65536 --window=4096 \
    --memory-quota=$((256 * 1024)) --sampler-tracked=1024 \
    --flush-dir="$WORK/flush" --log-level=warn \
    > "$WORK/serve.out" 2> "$WORK/serve.log" &
SERVE_PID=$!

PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/^PARDA_SERVE_PORT=\([0-9]*\)$/\1/p' "$WORK/serve.out" | head -n1)"
  [[ -n "$PORT" ]] && break
  sleep 0.1
done
if [[ -z "$PORT" ]]; then
  echo "error: PARDA_SERVE_PORT line never appeared" >&2
  cat "$WORK/serve.out" "$WORK/serve.log" >&2
  exit 1
fi
BASE="http://127.0.0.1:$PORT"
echo "soak: serving on port $PORT for ${SOAK_SECONDS}s (pid $SERVE_PID)"

expect_status() {  # expect_status WANT curl-args...
  local want="$1"; shift
  local got
  got="$(curl -s -o /dev/null -w '%{http_code}' "$@")"
  if [[ "$got" != "$want" ]]; then
    echo "error: expected HTTP $want, got $got for: $*" >&2
    exit 1
  fi
}

check_rss() {
  local rss_kb
  rss_kb="$(awk '/^VmRSS:/{print $2}' "/proc/$SERVE_PID/status" 2>/dev/null || echo 0)"
  if (( rss_kb > SOAK_RSS_MB * 1024 )); then
    echo "error: server RSS ${rss_kb} KiB exceeds budget ${SOAK_RSS_MB} MiB" >&2
    exit 1
  fi
}

expect_status 200 -X POST "$BASE/tenants/twin-a"
expect_status 200 -X POST "$BASE/tenants/twin-b"
# Heavy gets a big window (512 KiB reserved buffer) but a 128 KiB memory
# quota, so it MUST degrade to the fixed-size sampler early in the soak.
expect_status 200 -H 'Content-Type: application/json' --data-binary \
  '{"window": 65536, "quotas": {"memory_quota_bytes": 131072, "sampler_tracked": 256}}' \
  "$BASE/tenants/heavy"
expect_status 200 -X POST "$BASE/tenants/hostile"
expect_status 200 -X POST "$BASE/tenants/slowpoke"

DEADLINE=$(( $(date +%s) + SOAK_SECONDS ))
HALFWAY=$(( $(date +%s) + SOAK_SECONDS / 2 ))
SCRAPED=0
round=0
while (( $(date +%s) < DEADLINE )); do
  b=$(( round % 8 ))
  # Twins ingest the same batch; heavy keeps growing until its quota
  # degrades it in place (both 200: kOk and kDegraded are admitted).
  expect_status 200 --data-binary "@$WORK/twin_batch$b.txt" "$BASE/ingest/twin-a"
  expect_status 200 --data-binary "@$WORK/twin_batch$b.txt" "$BASE/ingest/twin-b"
  expect_status 200 --data-binary "@$WORK/heavy_batch$b.txt" "$BASE/ingest/heavy"

  # Hostile traffic, one flavor per round. None of it may crash the
  # server or perturb the other tenants.
  case $(( round % 3 )) in
    0) expect_status 400 --data-binary 'xyzzy not-an-address' \
           "$BASE/ingest/hostile" ;;                      # malformed frame
    1) expect_status 413 --data-binary "@$WORK/oversize.body" \
           "$BASE/ingest/heavy" ;;                        # oversized trace
    2) curl -s -o /dev/null --limit-rate 1K --max-time 8 \
           --data-binary "@$WORK/twin_batch0.txt" \
           "$BASE/ingest/slowpoke" || true ;;             # slow client
  esac

  if (( SCRAPED == 0 && $(date +%s) >= HALFWAY )); then
    curl -fsS "$BASE/metrics" > "$WORK/scrape.prom"
    "$TOOL" checkmetrics "$WORK/scrape.prom"
    grep -q 'parda_serve_ingest_refs' "$WORK/scrape.prom" || {
      echo "error: per-tenant ingest metrics missing from scrape" >&2; exit 1; }
    curl -fsS "$BASE/tenants" > "$WORK/tenants.json"
    SCRAPED=1
    echo "soak: mid-run scrape valid"
  fi
  check_rss
  round=$(( round + 1 ))
done
echo "soak: $round rounds of mixed traffic done"

if ! kill -0 "$SERVE_PID" 2>/dev/null; then
  echo "error: server died during the soak" >&2
  cat "$WORK/serve.log" >&2
  exit 1
fi
if (( SCRAPED == 0 )); then
  echo "error: soak too short for the mid-run scrape" >&2
  exit 1
fi

# The heavy tenant must have degraded rather than blowing past its quota.
curl -fsS "$BASE/tenants/heavy" > "$WORK/heavy.json"
grep -q '"mode": *"degraded"' "$WORK/heavy.json" || {
  echo "error: heavy tenant never degraded:" >&2
  cat "$WORK/heavy.json" >&2
  exit 1
}

# Graceful drain: SIGTERM must flush every tenant and exit 0.
kill -TERM "$SERVE_PID"
EXIT_CODE=0
wait "$SERVE_PID" || EXIT_CODE=$?
SERVE_PID=""
if (( EXIT_CODE != 0 )); then
  echo "error: drain exited $EXIT_CODE" >&2
  cat "$WORK/serve.log" >&2
  exit 1
fi
for t in twin-a twin-b heavy hostile slowpoke; do
  [[ -s "$WORK/flush/$t.hist.json" ]] || {
    echo "error: drain did not flush tenant $t" >&2; exit 1; }
done

# Cross-tenant isolation: identical streams => byte-identical flushed
# histograms. The slow client has its own tenant, so the twins saw exactly
# the same batches in the same order.
cmp -s "$WORK/flush/twin-a.hist.json" "$WORK/flush/twin-b.hist.json" || {
  echo "error: twins ingested identical streams but their flushed" \
       "histograms differ (cross-tenant interference)" >&2
  diff "$WORK/flush/twin-a.hist.json" "$WORK/flush/twin-b.hist.json" | head >&2
  exit 1
}
echo "soak: twin histograms byte-identical"

echo "soak passed: $round rounds, no crash, RSS under ${SOAK_RSS_MB} MiB," \
     "heavy degraded in place, drain flushed all tenants"
