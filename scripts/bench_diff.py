#!/usr/bin/env python3
"""Compare two parda.bench.v1 JSON artifacts and flag metric regressions.

Usage:
    bench_diff.py BASELINE.json CANDIDATE.json [--threshold-pct 20]
                  [--metric wall_seconds --metric per_analysis_ms ...]

Points are matched on (bench, name, params). Params may be integers or
strings; a missing "transport" param defaults to "threads" so baselines
written before the comm layer grew a transport axis keep matching the
threads points of newer runs. For each matched point, every metric
present in both files is compared; a metric whose candidate value
exceeds the baseline by more than --threshold-pct is a regression (all
schema metrics are costs: time, bytes, messages — bigger is worse). Points
present on only one side are reported but are not failures, so adding a
measurement does not break the gate.

Exit status: 0 = no regression, 1 = at least one metric over threshold,
2 = usage / schema error. Stdlib only.
"""

import argparse
import json
import sys


def die(msg):
    print(msg, file=sys.stderr)
    sys.exit(2)


def load_points(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die(f"bench_diff: cannot read {path}: {e}")
    if not isinstance(doc, dict):
        die(f"bench_diff: {path}: top level must be an object, "
            f"got {type(doc).__name__}")
    if doc.get("schema") != "parda.bench.v1":
        die(f"bench_diff: {path}: expected schema parda.bench.v1, "
            f"got {doc.get('schema')!r}")
    bench = doc.get("bench", "")
    raw_points = doc.get("points", [])
    if not isinstance(raw_points, list):
        die(f"bench_diff: {path}: 'points' must be an array")
    points = {}
    for i, p in enumerate(raw_points):
        if not isinstance(p, dict) or "name" not in p:
            die(f"bench_diff: {path}: points[{i}] must be an object "
                f"with a 'name'")
        params = p.get("params", {})
        metrics = p.get("metrics", {})
        if not isinstance(params, dict) or not isinstance(metrics, dict):
            die(f"bench_diff: {path}: points[{i}] ({p['name']}): 'params' "
                f"and 'metrics' must be objects")
        bad = [m for m, v in metrics.items()
               if not isinstance(v, (int, float)) or isinstance(v, bool)]
        if bad:
            die(f"bench_diff: {path}: points[{i}] ({p['name']}): "
                f"non-numeric metric value(s): {', '.join(sorted(bad))}")
        # The transport axis postdates early baselines; those measured the
        # in-process threads wire, so pin that as the default identity.
        params.setdefault("transport", "threads")
        key = (bench, p["name"], tuple(sorted(params.items())))
        points[key] = metrics
    return points


def fmt_key(key):
    bench, name, params = key
    label = "".join(f" {k}={v}" for k, v in params)
    return f"{bench}/{name}{label}"


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--threshold-pct", type=float, default=20.0,
                    help="allowed increase per metric (default 20%%)")
    ap.add_argument("--metric", action="append", default=None,
                    help="compare only these metrics (repeatable; "
                         "default: every shared metric)")
    args = ap.parse_args()

    base = load_points(args.baseline)
    cand = load_points(args.candidate)

    regressions = 0
    compared = 0
    for key in sorted(base.keys() | cand.keys()):
        if key not in base:
            print(f"  new point (not compared): {fmt_key(key)}")
            continue
        if key not in cand:
            print(f"  missing point (not compared): {fmt_key(key)}")
            continue
        for metric in sorted(base[key].keys() & cand[key].keys()):
            if args.metric and metric not in args.metric:
                continue
            b, c = base[key][metric], cand[key][metric]
            compared += 1
            if b == 0:
                continue  # no baseline to compare against
            delta_pct = (c - b) / b * 100.0
            if delta_pct > args.threshold_pct:
                regressions += 1
                print(f"REGRESSION {fmt_key(key)} {metric}: "
                      f"{b:g} -> {c:g} ({delta_pct:+.1f}% > "
                      f"+{args.threshold_pct:g}%)")

    print(f"bench_diff: {compared} metrics compared, "
          f"{regressions} regression(s) over +{args.threshold_pct:g}%")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
