#!/usr/bin/env bash
# Builds the tree under AddressSanitizer + UBSan and runs the suites that
# exercise the pooled executor's reuse paths — the reused Worlds, parked
# workers, and session layer must be free of lifetime and arithmetic bugs,
# not just data races. Used as the ASan CI job; run locally after touching
# src/comm/worker_pool.* or src/core/runtime.*.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset asan
cmake --build --preset asan -j"$(nproc)"
ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=1}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}" \
  ctest --preset asan
