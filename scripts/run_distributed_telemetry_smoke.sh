#!/usr/bin/env bash
# Distributed telemetry-plane smoke, in three acts:
#
#   1. Bit-identity: the merged analysis (reference counts + MRC table)
#      must be byte-identical with telemetry off and on, across every
#      wire — threads in-process, then real 2-process shm and tcp runs
#      via scripts/run_distributed.sh. The telemetry channel rides the
#      transport's reserved control tags, so it must never perturb the
#      data-plane messages it shares the wire with.
#   2. Fleet scrape: a tcp run with an injected straggler delay serves
#      rank 0's /metrics mid-run; the scrape must carry BOTH processes'
#      series (process="0" and process="1" labels), pass `trace_tool
#      checkmetrics`, and show the remote clock handshake converged.
#   3. Flight recorder: an injected remote send fault must abort the job
#      AND leave a parda.flightrec.v1 postmortem from the faulting
#      process via the $PARDA_FLIGHT_RECORDER env fallback.
#
# Usage: scripts/run_distributed_telemetry_smoke.sh [BUILD_DIR]  (default:
# build). Used as the distributed-telemetry CI job.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
TOOL="$BUILD_DIR/examples/trace_tool"
if [[ ! -x "$TOOL" ]]; then
  echo "error: $TOOL not built (run: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
  exit 1
fi
export PARDA_TRACE_TOOL="$TOOL"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
BASE_PORT=$((46000 + ($$ % 500) * 4))
SEGMENT="/parda-telsmoke-$$"

"$TOOL" gen --workload=zipf:m=800,a=0.9 --refs=120000 --seed=3 \
    --out="$WORK/smoke.trc"

# Strips every line the telemetry plane adds (port announcement, scrape
# URL, snapshot-written notices) and the background ranks' sign-offs,
# leaving only the analysis result: reference counts and the MRC table.
filter() {
  grep -Ev '^(PARDA_SERVE_PORT=|serving telemetry|wrote |rank [0-9]+ done)' \
    "$1" > "$2"
}

echo "=== act 1: bit-identity with telemetry on/off ==="
"$TOOL" analyze "$WORK/smoke.trc" --procs=2 > "$WORK/ref.out"
filter "$WORK/ref.out" "$WORK/ref.filtered"

run_variant() {  # name, command...
  local name="$1"; shift
  "$@" > "$WORK/$name.out"
  filter "$WORK/$name.out" "$WORK/$name.filtered"
  if ! diff -u "$WORK/ref.filtered" "$WORK/$name.filtered"; then
    echo "error: $name analysis differs from the telemetry-off reference" >&2
    exit 1
  fi
  echo "  $name: identical"
}

run_variant threads_on "$TOOL" analyze "$WORK/smoke.trc" --procs=2 \
    --serve=0 --metrics-out=/dev/null
run_variant shm_off scripts/run_distributed.sh "$WORK/smoke.trc" \
    --np 2 --wire shm --segment "$SEGMENT-off"
run_variant shm_on scripts/run_distributed.sh "$WORK/smoke.trc" \
    --np 2 --wire shm --segment "$SEGMENT-on" --serve 0 \
    -- --metrics-out=/dev/null
run_variant tcp_off scripts/run_distributed.sh "$WORK/smoke.trc" \
    --np 2 --wire tcp --base-port "$BASE_PORT"
run_variant tcp_on scripts/run_distributed.sh "$WORK/smoke.trc" \
    --np 2 --wire tcp --base-port $((BASE_PORT + 4)) --serve 0 \
    -- --metrics-out=/dev/null

echo "=== act 2: mid-run fleet scrape over tcp ==="
# --stream so the chunks travel over the wire (in offline mode rank 1
# never recvs and the injected delay would go unmatched); the 800ms delay
# holds the run open long enough for the scrape to land mid-analysis.
PARDA_TELEMETRY_INTERVAL_MS=25 scripts/run_distributed.sh \
    "$WORK/smoke.trc" --np 2 --wire tcp --base-port $((BASE_PORT + 8)) \
    --serve 0 -- --stream --chunk=4096 --metrics-out=/dev/null \
    --fault-plan="rank=1,op=recv,n=0,action=delay,ms=800" \
    > "$WORK/scrape_run.out" 2> "$WORK/scrape_run.log" &
RUN_PID=$!

PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/^PARDA_SERVE_PORT=\([0-9]*\)$/\1/p' \
    "$WORK/scrape_run.out" | head -n1)"
  [[ -n "$PORT" ]] && break
  sleep 0.1
done
if [[ -z "$PORT" ]]; then
  echo "error: rank 0 never announced its serve port" >&2
  cat "$WORK/scrape_run.out" "$WORK/scrape_run.log" >&2
  exit 1
fi

# Poll until the remote process's series reach the fleet exposition: its
# first telemetry frame lands within ~one 25ms forwarding interval.
FLEET=""
for _ in $(seq 1 200); do
  if curl -fsS "http://127.0.0.1:$PORT/metrics" > "$WORK/fleet.prom" 2>/dev/null \
      && grep -q 'process="1"' "$WORK/fleet.prom"; then
    FLEET=yes
    break
  fi
  sleep 0.05
done
wait "$RUN_PID"
if [[ -z "$FLEET" ]]; then
  echo "error: remote series never reached rank 0's /metrics" >&2
  exit 1
fi
grep -q 'process="0"' "$WORK/fleet.prom"
grep -q 'parda_telemetry_clock_valid{process="1"} 1' "$WORK/fleet.prom"
"$TOOL" checkmetrics "$WORK/fleet.prom"

echo "=== act 3: crash flight recorder on an injected abort ==="
rc=0
PARDA_FLIGHT_RECORDER="$WORK/fr_%r.json" scripts/run_distributed.sh \
    "$WORK/smoke.trc" --np 2 --wire tcp --base-port $((BASE_PORT + 12)) \
    -- --metrics-out=/dev/null --fault-plan="rank=1,op=send,n=0" \
    > "$WORK/abort_run.out" 2> "$WORK/abort_run.log" || rc=$?
if [[ "$rc" -eq 0 ]]; then
  echo "error: injected send fault did not fail the job" >&2
  exit 1
fi
if [[ ! -s "$WORK/fr_1.json" ]]; then
  echo "error: faulting process left no flight-recorder dump" >&2
  ls -l "$WORK" >&2
  exit 1
fi
grep -q '"schema": *"parda.flightrec.v1"' "$WORK/fr_1.json"
grep -q '"abort.origin": *"1"' "$WORK/fr_1.json"
grep -q '"event":"comm.abort"' "$WORK/fr_1.json"

echo "distributed telemetry smoke passed:" \
     "bit-identical on/off (threads/shm/tcp), fleet scrape valid," \
     "flight recorder dumped"
