#!/usr/bin/env bash
# Launches a real multi-process Parda analysis: one trace_tool process per
# rank over a cross-process wire (tcp socket mesh or a named shm segment).
# Ranks np-1..1 run in the background; rank 0 runs in the foreground and
# its exit code (it holds the merged histogram) is the script's. A `wait`
# afterwards reaps the background ranks so none outlive the run.
#
# Usage:
#   scripts/run_distributed.sh TRACE [--np N] [--wire tcp|shm]
#                              [--base-port P] [--segment /name]
#                              [--serve PORT]
#                              [-- EXTRA_TRACE_TOOL_ARGS...]
# Examples:
#   scripts/run_distributed.sh trace.trc --np 4                # tcp mesh
#   scripts/run_distributed.sh trace.trc --np 2 --wire shm \
#       --segment /parda-run -- --bound=4096
#   scripts/run_distributed.sh trace.trc --np 4 --serve 9464   # fleet scrape
#
# --serve starts rank 0's TelemetryServer (PORT, or 0 for ephemeral): the
# telemetry channel forwards every rank's metrics and spans to rank 0, so
# `curl localhost:PORT/metrics` mid-run returns the whole fleet's series
# under process="..." labels. Only rank 0 gets the flag.
#
# Every rank needs the same trace file path; this launcher targets a
# single host (the multi-machine case is the same invocation with the
# loopback endpoints replaced by real ones, one per machine).
set -euo pipefail
cd "$(dirname "$0")/.."

TOOL=${PARDA_TRACE_TOOL:-./build/examples/trace_tool}

trace=""
np=2
wire=tcp
base_port=47100
segment=/parda-dist
serve=""
extra=()

while [ $# -gt 0 ]; do
  case "$1" in
    --np) np="$2"; shift 2 ;;
    --np=*) np="${1#*=}"; shift ;;
    --wire) wire="$2"; shift 2 ;;
    --wire=*) wire="${1#*=}"; shift ;;
    --base-port) base_port="$2"; shift 2 ;;
    --base-port=*) base_port="${1#*=}"; shift ;;
    --segment) segment="$2"; shift 2 ;;
    --segment=*) segment="${1#*=}"; shift ;;
    --serve) serve="$2"; shift 2 ;;
    --serve=*) serve="${1#*=}"; shift ;;
    --) shift; extra=("$@"); break ;;
    -*) echo "run_distributed.sh: unknown flag $1" >&2; exit 2 ;;
    *)
      if [ -n "$trace" ]; then
        echo "run_distributed.sh: more than one trace given" >&2; exit 2
      fi
      trace="$1"; shift ;;
  esac
done

if [ -z "$trace" ]; then
  echo "usage: scripts/run_distributed.sh TRACE [--np N] [--wire tcp|shm]" \
       "[--base-port P] [--segment /name] [-- TRACE_TOOL_ARGS...]" >&2
  exit 2
fi
if [ ! -x "$TOOL" ]; then
  echo "run_distributed.sh: $TOOL not built (cmake --build build" \
       "--target trace_tool), or set PARDA_TRACE_TOOL" >&2
  exit 2
fi

case "$wire" in
  tcp)
    peers=""
    for ((r = 0; r < np; ++r)); do
      peers+="${peers:+,}127.0.0.1:$((base_port + r))"
    done
    common=(analyze "$trace" --procs="$np" --transport=tcp
            --peers="$peers" "${extra[@]}")
    ;;
  shm)
    common=(analyze "$trace" --procs="$np" --transport=shm
            --segment="$segment" "${extra[@]}")
    ;;
  *)
    echo "run_distributed.sh: --wire must be tcp or shm, got '$wire'" >&2
    exit 2
    ;;
esac

rank0_extra=()
if [ -n "$serve" ]; then
  rank0_extra+=(--serve="$serve")
fi

for ((r = np - 1; r >= 1; --r)); do
  "$TOOL" "${common[@]}" --rank="$r" &
done
rc=0
"$TOOL" "${common[@]}" "${rank0_extra[@]}" --rank=0 || rc=$?
wait
exit "$rc"
