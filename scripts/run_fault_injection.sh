#!/usr/bin/env bash
# Fault-injection sweep: builds the tree and runs the fault test suites
# across a matrix of deterministic FaultPlan seeds. Each seed picks a
# pseudo-random (rank, op, n) injection point (see FaultPlan::random); the
# suite asserts the run ends with an error attributed to the originating
# rank on every rank — zero hangs.
#
# Usage: scripts/run_fault_injection.sh [seed...]
#   With no arguments, sweeps seeds 1..24. PARDA_FAULT_SEED is consumed by
#   FaultMatrixTest.SeededRandomPlanAlwaysTearsDownCleanly.
set -euo pipefail
cd "$(dirname "$0")/.."

seeds=("$@")
if [ ${#seeds[@]} -eq 0 ]; then
  seeds=($(seq 1 24))
fi

cmake --preset default
cmake --build --preset default -j"$(nproc)" --target comm_fault_test trace_fault_test

# One full pass of both suites first (fixed plans, deadlines, watchdog).
./build/tests/comm_fault_test
./build/tests/trace_fault_test

# Then the seed matrix: the same teardown guarantees for pseudo-random
# injection points. Each run is bounded by the suite's internal deadlines,
# so a propagation bug fails fast instead of wedging CI.
for seed in "${seeds[@]}"; do
  echo "=== fault-injection seed ${seed} ==="
  PARDA_FAULT_SEED="${seed}" ./build/tests/comm_fault_test \
    --gtest_filter='FaultMatrixTest.SeededRandomPlanAlwaysTearsDownCleanly'
done
echo "fault-injection sweep passed for seeds: ${seeds[*]}"
