#!/usr/bin/env bash
# Fault-injection sweep: builds the tree and runs the fault test suites
# across a matrix of deterministic FaultPlan seeds. Each seed picks a
# pseudo-random (rank, op, n) injection point (see FaultPlan::random); the
# suite asserts the run ends with an error attributed to the originating
# rank on every rank — zero hangs.
#
# The whole matrix runs once per transport (threads, shm, tcp): abort
# attribution and teardown are contracts of the Comm layer, not of
# whichever wire happens to move the bytes. PARDA_FAULT_TRANSPORT is
# consumed by the suite's shared RunOptions helper.
#
# Usage: scripts/run_fault_injection.sh [seed...]
#   With no arguments, sweeps seeds 1..24. PARDA_FAULT_SEED is consumed by
#   FaultMatrixTest.SeededRandomPlanAlwaysTearsDownCleanly. Set
#   PARDA_FAULT_TRANSPORTS (comma-separated) to restrict the wire loop.
set -euo pipefail
cd "$(dirname "$0")/.."

seeds=("$@")
if [ ${#seeds[@]} -eq 0 ]; then
  seeds=($(seq 1 24))
fi
IFS=',' read -r -a wires <<< "${PARDA_FAULT_TRANSPORTS:-threads,shm,tcp}"

cmake --preset default
cmake --build --preset default -j"$(nproc)" \
  --target comm_fault_test comm_transport_test trace_fault_test \
           obs_telemetry_test

# One full pass of the suites first (fixed plans, deadlines, watchdog),
# plus the cross-transport equivalence suite, which asserts the fault
# matrix produces identical attribution on every wire.
./build/tests/comm_fault_test
./build/tests/trace_fault_test
./build/tests/comm_transport_test

# Straggler attribution per wire: an injected delay must be blamed on
# the same rank whichever transport carries the messages.
for wire in "${wires[@]}"; do
  echo "=== straggler attribution wire ${wire} ==="
  PARDA_FAULT_TRANSPORT="${wire}" ./build/tests/obs_telemetry_test \
    --gtest_filter='SpanReportIntegration.InjectedDelayNamesTheDelayedRank'
done

# Then the seed matrix per wire: the same teardown guarantees for
# pseudo-random injection points on every transport. Each run is bounded
# by the suite's internal deadlines, so a propagation bug fails fast
# instead of wedging CI.
#
# Every seeded run also doubles as a crash-flight-recorder check: each
# injected abort must leave a structured parda.flightrec.v1 postmortem
# (the recorder's first-dump-wins latch is per process, and the filter
# runs exactly one aborting test per invocation).
FR_DIR="$(mktemp -d)"
trap 'rm -rf "$FR_DIR"' EXIT
for wire in "${wires[@]}"; do
  for seed in "${seeds[@]}"; do
    echo "=== fault-injection wire ${wire} seed ${seed} ==="
    fr="$FR_DIR/fr_${wire}_${seed}.json"
    PARDA_FAULT_TRANSPORT="${wire}" PARDA_FAULT_SEED="${seed}" \
      PARDA_FLIGHT_RECORDER="$fr" \
      ./build/tests/comm_fault_test \
      --gtest_filter='FaultMatrixTest.SeededRandomPlanAlwaysTearsDownCleanly'
    if [ ! -s "$fr" ]; then
      echo "error: wire ${wire} seed ${seed} aborted without a" \
           "flight-recorder dump" >&2
      exit 1
    fi
    grep -q '"schema": *"parda.flightrec.v1"' "$fr"
    grep -q '"abort.origin"' "$fr"
  done
done
echo "fault-injection sweep passed: wires ${wires[*]}, seeds ${seeds[*]}," \
     "flight recorder dumped on every abort"
