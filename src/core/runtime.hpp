// The analysis-session layer: a PardaRuntime owns one persistent
// WorkerPool (comm/worker_pool.hpp) and hands out lightweight
// AnalysisSession handles bound to it. Repeated analyses — bench loops,
// online monitoring windows, many small traces — reuse the same parked
// worker threads and cached Worlds instead of spawning and joining np OS
// threads per call.
//
// Concurrency model: sessions are cheap value handles; any number of them
// (on any threads) may call analyze()/analyze_stream()/analyze_file()
// concurrently. Jobs multiplex the runtime's single pool through its FIFO
// admission queue — one job runs at a time, in arrival order, and the
// results are exactly what the transient parda_analyze entry points
// produce. A failed job (rank exception, injected fault, watchdog abort)
// throws from that call only; the runtime stays healthy for the next one.
//
// The runtime must outlive every session created from it.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <span>
#include <string>

#include "comm/worker_pool.hpp"
#include "core/parda.hpp"
#include "obs/metrics.hpp"
#include "obs/server.hpp"

namespace parda::core {

class PardaRuntime;

/// A binding of analysis options to a runtime. analyze* calls submit jobs
/// to the runtime's shared pool; tune options() freely between calls.
class AnalysisSession {
 public:
  /// Offline analysis of an in-memory trace (Algorithm 3).
  PardaResult analyze(std::span<const Addr> trace);
  /// Online multi-phase analysis of a TracePipe (Algorithms 5-6).
  PardaResult analyze_stream(TracePipe& pipe);
  /// Analysis through a caller-owned TraceSource (trace/source.hpp):
  /// offline sources run Algorithm 3 over their rank views; streaming
  /// sources run the multi-phase pipe algorithm.
  PardaResult analyze_source(TraceSource& source);
  /// Analysis of an on-disk trace through the chosen ingest path
  /// (pipe producer, mmap view, or chunked .trz decode — see
  /// core/file_analysis.hpp). pipe_words only applies to kPipe.
  PardaResult analyze_file(const std::string& path,
                           std::size_t pipe_words = 1 << 20,
                           IngestMode ingest = IngestMode::kPipe);

  PardaOptions& options() noexcept { return options_; }
  const PardaOptions& options() const noexcept { return options_; }

 private:
  friend class PardaRuntime;
  AnalysisSession(PardaRuntime& runtime, PardaOptions options)
      : runtime_(&runtime), options_(std::move(options)) {}

  PardaRuntime* runtime_;
  PardaOptions options_;
};

/// Construction knobs for PardaRuntime; default-constructed reproduces the
/// historical plain pool.
struct RuntimeOptions {
  /// Parked workers spawned up front (0 = grow lazily to the largest
  /// num_procs any session asks for).
  int initial_workers = 0;
  /// When set, the runtime owns a TelemetryServer on 127.0.0.1:*serve_port
  /// (0 = ephemeral; query serve_port() for the bound port) serving
  /// /metrics, /metrics.json, /spans, and /healthz for the duration of the
  /// runtime. Starting the server enables obs recording — with no server
  /// (and obs otherwise off) the hot paths do zero telemetry work.
  std::optional<std::uint16_t> serve_port;
};

/// Owns the shared WorkerPool. Construct once, keep it alive for the
/// process (or the serving scope), and create sessions per client/config.
class PardaRuntime {
 public:
  /// Spawns `initial_workers` parked workers up front (0 = grow lazily to
  /// the largest num_procs any session asks for).
  explicit PardaRuntime(int initial_workers = 0)
      : PardaRuntime(RuntimeOptions{initial_workers, std::nullopt}) {}
  explicit PardaRuntime(const RuntimeOptions& options);
  ~PardaRuntime();

  /// Creates a session bound to this runtime with the given options.
  AnalysisSession session(PardaOptions options = {}) {
    return AnalysisSession(*this, std::move(options));
  }

  comm::WorkerPool& pool() noexcept { return pool_; }

  /// Lifecycle counters, mirrored from the pool (see also the runtime.*
  /// metrics in the obs registry).
  int capacity() const noexcept { return pool_.capacity(); }
  std::uint64_t jobs_run() const noexcept { return pool_.jobs_run(); }
  std::uint64_t worlds_created() const noexcept {
    return pool_.worlds_created();
  }
  std::uint64_t world_reuses() const noexcept { return pool_.world_reuses(); }

  /// The telemetry server's bound port, or 0 when not serving.
  std::uint16_t serve_port() const noexcept {
    return server_ ? server_->port() : 0;
  }

  /// The owned telemetry server, or nullptr when not serving. The serving
  /// layer uses this to mount its routes (TelemetryServer::set_handler).
  obs::TelemetryServer* telemetry() noexcept { return server_.get(); }

  /// Jobs submitted through sessions that have not finished yet (queued
  /// in the pool's FIFO admission or running). The admission-control hook
  /// for layers that must shed load before the queue grows without bound:
  /// sampled by MrcService, published as the runtime.pending_jobs gauge.
  std::uint64_t pending_jobs() const noexcept {
    return pending_jobs_.load(std::memory_order_relaxed);
  }

 private:
  friend class AnalysisSession;

  comm::WorkerPool pool_;
  std::atomic<std::uint64_t> pending_jobs_{0};
  obs::Gauge* pending_gauge_;                     // cached handle
  std::unique_ptr<obs::TelemetryServer> server_;  // null unless serving
};

}  // namespace parda::core
