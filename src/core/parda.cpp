#include "core/parda.hpp"

#include "seq/bounded.hpp"
#include "seq/olken.hpp"

namespace parda {

Histogram reduce_histogram(comm::Comm& comm, const Histogram& mine,
                           int root) {
  // Binomial-tree merge in virtual rank space rooted at `root`, mirroring
  // MPI_Reduce: ceil(log2(np)) rounds, each rank sends exactly once.
  const int np = comm.size();
  const int me = (comm.rank() - root + np) % np;
  Histogram acc = mine;
  for (int step = 1; step < np; step <<= 1) {
    if ((me & step) != 0) {
      const int dest = ((me - step) + root) % np;
      // Move the serialized histogram into the message; the receiver's
      // recv moves it back out, so the reduction never copies payloads.
      comm.send(dest, kTagHistogram, acc.to_words());
      return {};
    }
    if (me + step < np) {
      const int src = (me + step + root) % np;
      const std::vector<std::uint64_t> words =
          comm.recv<std::uint64_t>(src, kTagHistogram);
      acc.merge(Histogram::from_words(words));
    }
  }
  return acc;
}

Histogram sequential_reference(std::span<const Addr> trace,
                               std::uint64_t bound) {
  if (bound == kUnbounded) return olken_analysis<SplayTree>(trace);
  return bounded_analysis<SplayTree>(trace, bound);
}

}  // namespace parda
