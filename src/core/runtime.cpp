#include "core/runtime.hpp"

#include "core/file_analysis.hpp"
#include "obs/runtime.hpp"

namespace parda::core {

PardaRuntime::PardaRuntime(const RuntimeOptions& options)
    : pool_(options.initial_workers) {
  if (options.serve_port.has_value()) {
    // A live scrape without recording would read all-zero shards; serving
    // implies observing.
    obs::set_enabled(true);
    server_ = std::make_unique<obs::TelemetryServer>(
        *options.serve_port, [this] {
          obs::Health h;
          h.ok = true;
          h.workers = pool_.capacity();
          h.jobs = pool_.jobs_run();
          h.watchdog = pool_.watchdog_armed();
          return h;
        });
  }
}

PardaRuntime::~PardaRuntime() {
  // The health callback dereferences the pool: stop serving before any
  // member is torn down.
  server_.reset();
}

PardaResult AnalysisSession::analyze(std::span<const Addr> trace) {
  return parda_analyze_on(runtime_->pool(), trace, options_);
}

PardaResult AnalysisSession::analyze_stream(TracePipe& pipe) {
  return parda_analyze_stream_on(runtime_->pool(), pipe, options_);
}

PardaResult AnalysisSession::analyze_file(const std::string& path,
                                          std::size_t pipe_words) {
  return parda_analyze_file_on(runtime_->pool(), path, options_, pipe_words);
}

}  // namespace parda::core
