#include "core/runtime.hpp"

#include "core/file_analysis.hpp"

namespace parda::core {

PardaResult AnalysisSession::analyze(std::span<const Addr> trace) {
  return parda_analyze_on(runtime_->pool(), trace, options_);
}

PardaResult AnalysisSession::analyze_stream(TracePipe& pipe) {
  return parda_analyze_stream_on(runtime_->pool(), pipe, options_);
}

PardaResult AnalysisSession::analyze_file(const std::string& path,
                                          std::size_t pipe_words) {
  return parda_analyze_file_on(runtime_->pool(), path, options_, pipe_words);
}

}  // namespace parda::core
