#include "core/runtime.hpp"

#include "core/file_analysis.hpp"
#include "obs/runtime.hpp"

namespace parda::core {

namespace {

/// Tracks one in-flight session job on its runtime: the counter feeds
/// PardaRuntime::pending_jobs() (the serving layer's queue-pressure
/// signal) and mirrors into the runtime.pending_jobs gauge.
class PendingJobGuard {
 public:
  PendingJobGuard(std::atomic<std::uint64_t>& pending, obs::Gauge* gauge)
      : pending_(pending), gauge_(gauge) {
    const std::uint64_t now =
        pending_.fetch_add(1, std::memory_order_relaxed) + 1;
    gauge_->set(now);
  }
  ~PendingJobGuard() {
    const std::uint64_t now =
        pending_.fetch_sub(1, std::memory_order_relaxed) - 1;
    gauge_->set(now);
  }

 private:
  std::atomic<std::uint64_t>& pending_;
  obs::Gauge* gauge_;
};

}  // namespace

PardaRuntime::PardaRuntime(const RuntimeOptions& options)
    : pool_(options.initial_workers),
      pending_gauge_(&obs::registry().gauge("runtime.pending_jobs")) {
  if (options.serve_port.has_value()) {
    // A live scrape without recording would read all-zero shards; serving
    // implies observing.
    obs::set_enabled(true);
    server_ = std::make_unique<obs::TelemetryServer>(
        *options.serve_port, [this] {
          obs::Health h;
          h.ok = true;
          h.workers = pool_.capacity();
          h.jobs = pool_.jobs_run();
          h.watchdog = pool_.watchdog_armed();
          return h;
        });
  }
}

PardaRuntime::~PardaRuntime() {
  // The health callback dereferences the pool: stop serving before any
  // member is torn down.
  server_.reset();
}

PardaResult AnalysisSession::analyze(std::span<const Addr> trace) {
  PendingJobGuard pending(runtime_->pending_jobs_, runtime_->pending_gauge_);
  return parda_analyze_on(runtime_->pool(), trace, options_);
}

PardaResult AnalysisSession::analyze_stream(TracePipe& pipe) {
  PendingJobGuard pending(runtime_->pending_jobs_, runtime_->pending_gauge_);
  return parda_analyze_stream_on(runtime_->pool(), pipe, options_);
}

PardaResult AnalysisSession::analyze_source(TraceSource& source) {
  PendingJobGuard pending(runtime_->pending_jobs_, runtime_->pending_gauge_);
  return parda_analyze_source_on(runtime_->pool(), source, options_);
}

PardaResult AnalysisSession::analyze_file(const std::string& path,
                                          std::size_t pipe_words,
                                          IngestMode ingest) {
  PendingJobGuard pending(runtime_->pending_jobs_, runtime_->pending_gauge_);
  return parda_analyze_file_on(runtime_->pool(), path, options_, pipe_words,
                               ingest);
}

}  // namespace parda::core
