// Parda: parallel reuse distance analysis (paper Algorithms 3-7).
//
// Two entry points:
//  - parda_analyze:        offline analysis of an in-memory trace divided
//                          into np contiguous chunks (Algorithm 3, with the
//                          space-optimized merge of Algorithm 4 and the
//                          cache bound of Algorithm 7).
//  - parda_analyze_stream: online multi-phase analysis of a TracePipe fed
//                          by a concurrent producer (Algorithms 5-6 with
//                          the rank-reversal optimization), reproducing the
//                          Figure 3 framework: producer -> pipe -> rank 0
//                          -> scatter -> ranks -> merge -> reduce.
//
// Both run on the thread-backed comm runtime and return the histogram plus
// per-rank work statistics (used for critical-path scaling reports).
#pragma once

#include <span>

#include "comm/comm.hpp"
#include "comm/worker_pool.hpp"
#include "core/messages.hpp"
#include "core/rank_state.hpp"
#include "hist/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/span_tracer.hpp"
#include "trace/source.hpp"
#include "trace/trace_pipe.hpp"
#include "tree/splay_tree.hpp"
#include "util/check.hpp"
#include "util/types.hpp"

namespace parda {

struct PardaOptions {
  /// Number of ranks (the paper's np). Each becomes one thread.
  int num_procs = 4;
  /// Cache bound B of Algorithm 7 in distinct elements; kUnbounded for the
  /// exact full-depth analysis.
  std::uint64_t bound = kUnbounded;
  /// Use the space-optimized local-infinity processing (Algorithm 4).
  /// Bounded and streaming modes require it.
  bool space_optimized = true;
  /// Streaming only: per-rank chunk size C; each phase consumes np*C
  /// references (Algorithm 5).
  std::size_t chunk_words = 1 << 16;
  /// Feed each rank's chunk through the batched process_own_block path
  /// (software-prefetched hash probes) instead of the per-reference loop.
  /// Results are identical either way; the toggle exists so bench_engines
  /// can measure the two paths head-to-head.
  bool block_dispatch = true;
  /// Fault-tolerance knobs forwarded to comm::run: per-op deadlines, the
  /// stall watchdog, and deterministic fault injection. The default is the
  /// historical wait-forever behavior.
  comm::RunOptions run_options;
};

/// Per-rank algorithm counters (beyond the comm-level RankStats): where
/// the work went, for the load-balancing analysis of Algorithms 5-6.
struct RankProfile {
  std::uint64_t chunk_refs = 0;         // own-chunk references processed
  std::uint64_t records_received = 0;   // incoming local infinities
  std::uint64_t records_forwarded = 0;  // survivors sent further left
  std::uint64_t hits_resolved = 0;      // finite distances recorded
  std::uint64_t peak_resident = 0;      // max tree size observed
  std::uint64_t phases = 0;             // phases participated in (stream)
};

struct PardaResult {
  Histogram hist;
  comm::RunStats stats;
  std::vector<RankProfile> profiles;  // indexed by physical rank
};

/// Reduces each rank's histogram onto `root` with a binomial tree
/// (the reduce_sum of Algorithm 3); returns the merged histogram at root
/// and an empty histogram elsewhere.
Histogram reduce_histogram(comm::Comm& comm, const Histogram& mine, int root);

namespace detail {

/// The merge stage driven at virtual rank v of np: runs the remaining
/// np - v rounds of Algorithm 3's while-loop after the rank has processed
/// its own chunk. phys_of maps virtual to physical ranks (identity in the
/// offline algorithm; phase-reversed when streaming).
template <OrderStatTree Tree, typename PhysOf>
void run_merge_rounds(comm::Comm& comm, RankState<Tree>& state, int virt,
                      PhysOf&& phys_of, std::uint64_t* forwarded = nullptr) {
  const int np = comm.size();
  for (int round = 0; round < np - virt; ++round) {
    if (virt > 0) {
      std::vector<InfRecord> outgoing = state.take_local_infinities();
      if (forwarded != nullptr) *forwarded += outgoing.size();
      // Zero-copy: the record list is moved into the message and the
      // receiving rank processes it in place through a View.
      comm.send(phys_of(virt - 1), kTagInfinities, std::move(outgoing));
    } else {
      state.flush_global_infinities();
    }
    if (virt < np - 1 && round < np - virt - 1) {
      const comm::View<InfRecord> incoming =
          comm.recv_view<InfRecord>(phys_of(virt + 1), kTagInfinities);
      state.process_incoming(incoming.span());
    }
  }
}

/// End-of-rank metrics publication: the rank's RankProfile plus the
/// structural counters of its analysis state, attributed to the calling
/// rank's shard. Cold path (runs once per rank per analysis); the engine.*
/// totals are designed to agree with the result histogram:
/// engine.chunk_refs == hist.total(), engine.hits_resolved ==
/// hist.finite_total().
template <OrderStatTree Tree>
void publish_rank_metrics(const RankProfile& profile,
                          const RankState<Tree>& state) {
  if (!obs::enabled()) return;
  auto& reg = obs::registry();
  reg.counter("engine.chunk_refs").add(profile.chunk_refs);
  reg.counter("engine.records_received").add(profile.records_received);
  reg.counter("engine.records_forwarded").add(profile.records_forwarded);
  reg.counter("engine.hits_resolved").add(profile.hits_resolved);
  reg.counter("engine.infinities").add(state.hist().infinities());
  reg.counter("engine.phases").add(profile.phases);
  reg.counter("engine.hash_probes").add(state.table().probe_count());
  if constexpr (requires { state.tree().rotation_count(); }) {
    reg.counter("engine.tree_rotations").add(state.tree().rotation_count());
  }
  if constexpr (requires { state.tree().splay_count(); }) {
    reg.counter("engine.tree_splays").add(state.tree().splay_count());
  }
  reg.gauge("engine.peak_resident").set_max(profile.peak_resident);
}

/// Gathers each rank's profile at rank 0 (physical order).
inline std::vector<RankProfile> gather_profiles(comm::Comm& comm,
                                                const RankProfile& mine) {
  static_assert(std::is_trivially_copyable_v<RankProfile>);
  const auto pieces =
      comm.gather(std::span<const RankProfile>(&mine, 1), 0, kTagProfile);
  std::vector<RankProfile> out;
  out.reserve(pieces.size());
  for (const auto& piece : pieces) {
    if (!piece.empty()) out.push_back(piece[0]);
  }
  return out;
}

/// The equal ceil-division split of Algorithm 3 over an in-memory trace:
/// rank p owns global positions [p*ceil(N/np), ...).
inline RankView equal_rank_view(std::span<const Addr> trace, int rank,
                                int np) {
  const std::size_t n = trace.size();
  const std::size_t chunk = (n + static_cast<std::size_t>(np) - 1) /
                            static_cast<std::size_t>(np);
  const std::size_t begin =
      std::min(static_cast<std::size_t>(rank) * chunk, n);
  const std::size_t end = std::min(begin + chunk, n);
  return RankView{trace.subspan(begin, end - begin),
                  static_cast<Timestamp>(begin)};
}

/// The per-rank body of the offline algorithm (one call per rank inside a
/// comm job), over the rank's own disjoint view of the trace. The views
/// must tile the trace contiguously in rank order with cumulative bases
/// (equal_rank_view for in-memory traces; a TraceSource's rank_view for
/// zero-copy ingest, where boundaries may be chunk-aligned rather than
/// equal). Shared by parda_analyze, parda_analyze_source_on, and the
/// session layer so the chunk/merge/reduce scaffolding exists exactly
/// once.
template <OrderStatTree Tree>
void offline_rank_body(comm::Comm& comm, const RankView& view,
                       const PardaOptions& options, Histogram& result,
                       std::vector<RankProfile>& profiles) {
  RankState<Tree> state(options.bound, options.space_optimized);
  RankProfile profile;

  {
    obs::SpanScope span("analyze");
    state.begin_merge_stage();
    if (options.block_dispatch) {
      state.process_own_block(view.refs, view.base);
    } else {
      for (std::size_t i = 0; i < view.refs.size(); ++i) {
        state.process_own(view.refs[i], view.base + i);
      }
    }
  }
  profile.chunk_refs = view.refs.size();

  {
    obs::SpanScope span("infinity-pipeline");
    detail::run_merge_rounds(comm, state, comm.rank(),
                             [](int virt) { return virt; },
                             &profile.records_forwarded);
  }
  profile.records_received = state.received_count();
  profile.hits_resolved = state.hist().finite_total();
  profile.peak_resident = state.peak_resident();
  detail::publish_rank_metrics(profile, state);

  std::vector<RankProfile> gathered;
  Histogram reduced;
  {
    obs::SpanScope span("reduce");
    gathered = detail::gather_profiles(comm, profile);
    reduced = reduce_histogram(comm, state.hist(), 0);
  }
  if (comm.rank() == 0) {
    result = std::move(reduced);
    profiles = std::move(gathered);
  }
}

}  // namespace detail

/// Offline Parda (Algorithm 3) on a caller-owned WorkerPool: splits the
/// trace into np contiguous chunks (chunk p owns global positions
/// [p*ceil(N/np), ...)), analyzes them in parallel, and resolves
/// cross-chunk reuses through the local-infinity pipeline. The result
/// equals the sequential analysis exactly (unbounded), or the bounded
/// sequential analysis when options.bound is set.
template <OrderStatTree Tree = SplayTree>
PardaResult parda_analyze_on(comm::WorkerPool& pool,
                             std::span<const Addr> trace,
                             const PardaOptions& options) {
  const int np = options.num_procs;
  PARDA_CHECK(np >= 1);
  Histogram result;
  std::vector<RankProfile> profiles;
  comm::RunStats stats = pool.run_job(
      np,
      [&](comm::Comm& comm) {
        detail::offline_rank_body<Tree>(
            comm, detail::equal_rank_view(trace, comm.rank(), np), options,
            result, profiles);
      },
      options.run_options);
  return PardaResult{std::move(result), std::move(stats),
                     std::move(profiles)};
}

/// One-shot offline analysis on a transient runtime (the historical entry
/// point). Long-lived callers should hold a core::PardaRuntime (or a raw
/// WorkerPool) and use parda_analyze_on to amortize thread spawning.
template <OrderStatTree Tree = SplayTree>
PardaResult parda_analyze(std::span<const Addr> trace,
                          const PardaOptions& options) {
  comm::WorkerPool pool(options.num_procs);
  return parda_analyze_on<Tree>(pool, trace, options);
}

namespace detail {

/// The per-rank body of the streaming algorithm (Algorithms 5-6): phase
/// intake + scatter, chunk processing, merge rounds on the virtual
/// topology, state reduction with rank reversal. Shared by
/// parda_analyze_stream and the session layer.
template <OrderStatTree Tree>
void stream_rank_body(comm::Comm& comm, TracePipe& pipe,
                      const PardaOptions& options, Histogram& result,
                      std::vector<RankProfile>& profiles) {
  const int np = comm.size();
  const std::size_t chunk = options.chunk_words;
  RankState<Tree> state(options.bound, /*space_optimized=*/true);
  RankProfile profile;
  const int me = comm.rank();
  bool reversed = false;  // virtual<->physical map flips every phase
  const auto phys_of = [&](int virt) {
    return reversed ? np - 1 - virt : virt;
  };
  const auto virt_of = [&](int phys) {
    return reversed ? np - 1 - phys : phys;
  };
  Timestamp phase_base = 0;
  std::uint32_t phase_no = 0;

  while (true) {
    // Attribute everything this thread records during the phase — notably
    // the recv-wait/barrier-wait spans inside the comm layer — to
    // phase_no, so the SpanReport can decompose each phase into self vs
    // blocked time per rank.
    obs::ScopedThreadPhase phase_scope(phase_no);
    // --- Phase intake: rank 0 reads ONE block from the pipe and
    // scatters per-rank (offset, count) views of it — the block is never
    // copied again, regardless of np (slices are indexed by physical
    // rank via the virtual mapping). The span is recorded manually
    // because phase_words and the chunk view outlive this section.
    const std::int64_t scatter_t0 =
        obs::enabled() ? obs::tracer().now_ns() : -1;
    std::vector<Addr> block;
    std::vector<std::uint64_t> header;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> slices;
    if (me == 0) {
      block = pipe.read_words(chunk * static_cast<std::size_t>(np));
      header = {block.size()};
      slices.resize(static_cast<std::size_t>(np));
      for (int v = 0; v < np; ++v) {
        const std::size_t lo = std::min(static_cast<std::size_t>(v) * chunk,
                                        block.size());
        const std::size_t hi = std::min(lo + chunk, block.size());
        slices[static_cast<std::size_t>(phys_of(v))] = {lo, hi - lo};
      }
    }
    const std::uint64_t phase_words =
        comm.broadcast(std::move(header), 0, kTagControl).at(0);
    const comm::View<Addr> mine = comm.scatterv_view(
        std::move(block),
        std::span<const std::pair<std::uint64_t, std::uint64_t>>(slices), 0,
        kTagChunk);
    if (scatter_t0 >= 0) {
      obs::tracer().record(scatter_t0, obs::tracer().now_ns(), "scatter",
                           phase_no);
    }
    if (phase_words == 0) break;

    // --- Chunk processing (Algorithm 7 / modified stack_dist).
    const int virt = virt_of(me);
    const Timestamp my_base =
        phase_base + static_cast<Timestamp>(virt) * chunk;
    {
      obs::SpanScope span("analyze", phase_no);
      state.begin_merge_stage();
      if (options.block_dispatch) {
        state.process_own_block(mine.span(), my_base);
      } else {
        for (std::size_t i = 0; i < mine.size(); ++i) {
          state.process_own(mine[i], my_base + i);
        }
      }
    }
    profile.chunk_refs += mine.size();
    ++profile.phases;

    // --- Merge rounds (Algorithm 3's loop on virtual topology).
    {
      obs::SpanScope span("infinity-pipeline", phase_no);
      detail::run_merge_rounds(comm, state, virt, phys_of,
                               &profile.records_forwarded);
    }
    profile.records_received += state.received_count();

    // --- State reduction onto virtual np-1 (Algorithm 6): the exported
    // state moves into the message and is imported through a view.
    {
      obs::SpanScope span("reduce", phase_no);
      const int holder_phys = phys_of(np - 1);
      if (virt != np - 1) {
        comm.send(holder_phys, kTagState, state.export_state());
      } else {
        for (int v = 0; v < np - 1; ++v) {
          const comm::View<InfRecord> incoming =
              comm.recv_view<InfRecord>(phys_of(v), kTagState);
          state.import_state(incoming.span());
        }
        state.prune_to_bound();
      }
    }

    phase_base += phase_words;
    reversed = !reversed;  // the holder is virtual rank 0 next phase
    ++phase_no;
    if (phase_words < chunk * static_cast<std::uint64_t>(np)) {
      // Short phase: the pipe is exhausted; everyone agrees because
      // phase_words was broadcast.
      break;
    }
  }

  profile.hits_resolved = state.hist().finite_total();
  profile.peak_resident = state.peak_resident();
  detail::publish_rank_metrics(profile, state);
  std::vector<RankProfile> gathered;
  Histogram reduced;
  {
    obs::SpanScope span("final-reduce");
    gathered = detail::gather_profiles(comm, profile);
    reduced = reduce_histogram(comm, state.hist(), 0);
  }
  if (me == 0) {
    result = std::move(reduced);
    profiles = std::move(gathered);
  }
}

}  // namespace detail

/// Online multi-phase Parda (Algorithms 5-6) on a caller-owned WorkerPool.
/// Rank 0 drains the pipe in phases of np*C references and scatters
/// per-virtual-rank chunks; after each phase all resident state is reduced
/// onto the virtual rank np-1, which becomes virtual rank 0 of the next
/// phase (rank reversal), so the global state never travels. Requires
/// space optimization (the reduce step relies on the disjoint-residency
/// property of Algorithm 4).
template <OrderStatTree Tree = SplayTree>
PardaResult parda_analyze_stream_on(comm::WorkerPool& pool, TracePipe& pipe,
                                    const PardaOptions& options) {
  const int np = options.num_procs;
  PARDA_CHECK(np >= 1);
  PARDA_CHECK(options.chunk_words >= 1);
  PARDA_CHECK(options.space_optimized);
  Histogram result;
  std::vector<RankProfile> profiles;
  comm::RunStats stats = pool.run_job(
      np,
      [&](comm::Comm& comm) {
        detail::stream_rank_body<Tree>(comm, pipe, options, result, profiles);
      },
      options.run_options);
  return PardaResult{std::move(result), std::move(stats),
                     std::move(profiles)};
}

/// One-shot streaming analysis on a transient runtime (the historical
/// entry point); see parda_analyze_stream_on.
template <OrderStatTree Tree = SplayTree>
PardaResult parda_analyze_stream(TracePipe& pipe, const PardaOptions& options) {
  comm::WorkerPool pool(options.num_procs);
  return parda_analyze_stream_on<Tree>(pool, pipe, options);
}

/// Analysis through a TraceSource (DESIGN.md "Ingest"): offline sources
/// (mmap, chunked trz) are partitioned once and each rank pulls its own
/// disjoint RankView from its own thread — for ChunkedTrzSource that call
/// IS the per-rank parallel decode, recorded under an "ingest" span;
/// for MmapTraceSource it is a zero-copy window into the mapping.
/// Streaming sources run the multi-phase pipe algorithm unchanged. The
/// source must stay alive for the duration of the call (rank views alias
/// its storage) and may be reused across calls — ChunkedTrzSource keeps
/// its per-rank decode arenas warm.
template <OrderStatTree Tree = SplayTree>
PardaResult parda_analyze_source_on(comm::WorkerPool& pool,
                                    TraceSource& source,
                                    const PardaOptions& options) {
  if (!source.offline()) {
    return parda_analyze_stream_on<Tree>(pool, source.pipe(), options);
  }
  const int np = options.num_procs;
  PARDA_CHECK(np >= 1);
  source.partition(np);
  Histogram result;
  std::vector<RankProfile> profiles;
  comm::RunStats stats = pool.run_job(
      np,
      [&](comm::Comm& comm) {
        RankView view;
        {
          obs::SpanScope span("ingest");
          view = source.rank_view(comm.rank());
        }
        detail::offline_rank_body<Tree>(comm, view, options, result,
                                        profiles);
      },
      options.run_options);
  return PardaResult{std::move(result), std::move(stats),
                     std::move(profiles)};
}

/// Convenience: sequential Olken analysis through the same result type,
/// for side-by-side comparisons in benches.
Histogram sequential_reference(std::span<const Addr> trace,
                               std::uint64_t bound = kUnbounded);

}  // namespace parda
