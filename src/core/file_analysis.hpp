// Analysis of on-disk traces, by ingest mode (DESIGN.md "Ingest"):
//
//   kPipe — the historical path: a producer thread streams the file
//           through a bounded TracePipe into the multi-phase online
//           algorithm, so traces larger than memory are analyzed at
//           O(pipe + rank state) footprint (the Figure 3 shape).
//   kMmap — zero-copy offline: the file is mmap'd and ranks analyze
//           disjoint views of the mapping with Algorithm 3.
//   kTrz  — chunked-compressed offline: a v2 .trz archive's chunks are
//           decoded per rank, in parallel, then analyzed offline.
#pragma once

#include <functional>
#include <string>

#include "core/parda.hpp"
#include "trace/source.hpp"

namespace parda {

namespace detail {

/// The producer scaffolding shared by the file entry points: spawns a
/// producer thread that streams `path` into a bounded pipe (honoring the
/// FaultPlan's producer_fail_after injection), runs `consume(pipe)` on the
/// calling thread, and tears both down with the root-cause rethrow policy
/// (a producer error reaches the consumer by pipe poisoning, so the
/// producer's own exception wins).
PardaResult run_with_file_producer(
    const std::string& path, const PardaOptions& options,
    std::size_t pipe_words,
    const std::function<PardaResult(TracePipe&)>& consume);

}  // namespace detail

/// Analyzes a trace file on a caller-owned WorkerPool through the chosen
/// ingest path. kPipe streams the file through a bounded pipe into the
/// streaming algorithm (pipe_words is the paper's pipe-size knob; it is
/// ignored by the offline modes). kMmap expects a binary .trc/.bin file;
/// kTrz expects a chunked v2 .trz archive.
PardaResult parda_analyze_file_on(comm::WorkerPool& pool,
                                  const std::string& path,
                                  const PardaOptions& options,
                                  std::size_t pipe_words = 1 << 20,
                                  IngestMode ingest = IngestMode::kPipe);

/// One-shot file analysis on a transient runtime (the historical entry
/// point); see parda_analyze_file_on.
PardaResult parda_analyze_file(const std::string& path,
                               const PardaOptions& options,
                               std::size_t pipe_words = 1 << 20,
                               IngestMode ingest = IngestMode::kPipe);

}  // namespace parda
