// Streaming analysis of on-disk traces: bridges a trace file into the
// multi-phase online algorithm through a TracePipe, so traces larger than
// memory are analyzed at O(pipe + rank state) footprint — the offline
// counterpart of the Figure 3 framework.
#pragma once

#include <string>

#include "core/parda.hpp"

namespace parda {

/// Analyzes a binary (.trc) trace file by streaming it through a bounded
/// pipe into parda_analyze_stream. pipe_words controls the producer/
/// consumer buffering (the paper's pipe-size knob).
PardaResult parda_analyze_file(const std::string& path,
                               const PardaOptions& options,
                               std::size_t pipe_words = 1 << 20);

}  // namespace parda
