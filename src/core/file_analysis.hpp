// Streaming analysis of on-disk traces: bridges a trace file into the
// multi-phase online algorithm through a TracePipe, so traces larger than
// memory are analyzed at O(pipe + rank state) footprint — the offline
// counterpart of the Figure 3 framework.
#pragma once

#include <functional>
#include <string>

#include "core/parda.hpp"

namespace parda {

namespace detail {

/// The producer scaffolding shared by the file entry points: spawns a
/// producer thread that streams `path` into a bounded pipe (honoring the
/// FaultPlan's producer_fail_after injection), runs `consume(pipe)` on the
/// calling thread, and tears both down with the root-cause rethrow policy
/// (a producer error reaches the consumer by pipe poisoning, so the
/// producer's own exception wins).
PardaResult run_with_file_producer(
    const std::string& path, const PardaOptions& options,
    std::size_t pipe_words,
    const std::function<PardaResult(TracePipe&)>& consume);

}  // namespace detail

/// Analyzes a binary (.trc) trace file by streaming it through a bounded
/// pipe into the streaming algorithm on a caller-owned WorkerPool.
/// pipe_words controls the producer/consumer buffering (the paper's
/// pipe-size knob).
PardaResult parda_analyze_file_on(comm::WorkerPool& pool,
                                  const std::string& path,
                                  const PardaOptions& options,
                                  std::size_t pipe_words = 1 << 20);

/// One-shot file analysis on a transient runtime (the historical entry
/// point); see parda_analyze_file_on.
PardaResult parda_analyze_file(const std::string& path,
                               const PardaOptions& options,
                               std::size_t pipe_words = 1 << 20);

}  // namespace parda
