#include "core/file_analysis.hpp"

#include <thread>

#include "trace/trace_io.hpp"
#include "trace/trace_pipe.hpp"

namespace parda {

PardaResult parda_analyze_file(const std::string& path,
                               const PardaOptions& options,
                               std::size_t pipe_words) {
  BinaryTraceReader reader(path);
  TracePipe pipe(pipe_words);
  std::exception_ptr producer_error;
  std::thread producer([&] {
    try {
      // Size reads from the pipe capacity, but never below 64K words
      // (512KB): small pipes must not translate into small file reads.
      constexpr std::size_t kMinReadBlockWords = std::size_t{64} << 10;
      const std::size_t block =
          std::max(kMinReadBlockWords, pipe_words / 4);
      while (true) {
        std::vector<Addr> chunk = reader.read_words(block);
        if (chunk.empty()) break;
        pipe.write(std::move(chunk));
      }
    } catch (...) {
      producer_error = std::current_exception();
    }
    pipe.close();
  });
  PardaResult result = parda_analyze_stream(pipe, options);
  producer.join();
  if (producer_error) std::rethrow_exception(producer_error);
  return result;
}

}  // namespace parda
