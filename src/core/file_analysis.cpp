#include "core/file_analysis.hpp"

#include <thread>

#include "comm/fault.hpp"
#include "obs/metrics.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_pipe.hpp"

namespace parda {

namespace detail {

PardaResult run_with_file_producer(
    const std::string& path, const PardaOptions& options,
    std::size_t pipe_words,
    const std::function<PardaResult(TracePipe&)>& consume) {
  BinaryTraceReader reader(path);
  TracePipe pipe(pipe_words);

  // Deterministic producer fault, if the run's FaultPlan asks for one.
  std::optional<std::uint64_t> fail_after;
  if (options.run_options.fault_plan != nullptr) {
    fail_after = options.run_options.fault_plan->producer_fail_after();
  }

  std::exception_ptr producer_error;
  std::thread producer([&] {
    try {
      // Size reads from the pipe capacity, but never below 64K words
      // (512KB): small pipes must not translate into small file reads.
      constexpr std::size_t kMinReadBlockWords = std::size_t{64} << 10;
      const std::size_t block =
          std::max(kMinReadBlockWords, pipe_words / 4);
      std::uint64_t written = 0;
      while (true) {
        std::vector<Addr> chunk = reader.read_words(block);
        if (chunk.empty()) break;
        if (fail_after.has_value() && written + chunk.size() > *fail_after) {
          chunk.resize(static_cast<std::size_t>(*fail_after - written));
          if (!chunk.empty()) pipe.write(std::move(chunk));
          throw comm::FaultInjectedError(
              "injected trace producer failure after " +
              std::to_string(*fail_after) + " words");
        }
        written += chunk.size();
        pipe.write(std::move(chunk));
      }
      if (obs::enabled()) {
        // Every reference crossed the pipe as a copy; the offline sources
        // keep this counter at 0, which is their zero-copy proof.
        obs::registry().counter("ingest.bytes_copied")
            .add(written * sizeof(Addr));
      }
      pipe.close();
    } catch (...) {
      // Poison the pipe so the consumer stops mid-phase instead of
      // analyzing the truncated stream as if it were complete. (If the
      // consumer poisoned it first, this keeps the earlier error.)
      producer_error = std::current_exception();
      pipe.close_with_error(std::current_exception());
    }
  });

  PardaResult result;
  try {
    result = consume(pipe);
  } catch (...) {
    // Wake a producer blocked on a full pipe before joining it; its next
    // write throws and the thread exits.
    pipe.close_with_error(std::current_exception());
    producer.join();
    // Attribute the failure to its root: a producer error reaches the
    // consumer by rethrow, so prefer the producer's own exception.
    if (producer_error) std::rethrow_exception(producer_error);
    throw;
  }
  producer.join();
  if (producer_error) std::rethrow_exception(producer_error);
  return result;
}

}  // namespace detail

PardaResult parda_analyze_file_on(comm::WorkerPool& pool,
                                  const std::string& path,
                                  const PardaOptions& options,
                                  std::size_t pipe_words,
                                  IngestMode ingest) {
  if (ingest != IngestMode::kPipe) {
    std::unique_ptr<TraceSource> source = open_offline_source(path, ingest);
    return parda_analyze_source_on(pool, *source, options);
  }
  return detail::run_with_file_producer(
      path, options, pipe_words, [&](TracePipe& pipe) {
        return parda_analyze_stream_on(pool, pipe, options);
      });
}

PardaResult parda_analyze_file(const std::string& path,
                               const PardaOptions& options,
                               std::size_t pipe_words, IngestMode ingest) {
  comm::WorkerPool pool(options.num_procs);
  return parda_analyze_file_on(pool, path, options, pipe_words, ingest);
}

}  // namespace parda
