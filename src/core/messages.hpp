// Wire records and message tags used between Parda ranks.
#pragma once

#include <cstdint>

#include "util/types.hpp"

namespace parda {

/// One local-infinity entry: a first reference (within the producing rank's
/// view) carrying its global timestamp, passed leftward down the rank
/// pipeline (Algorithm 3). The same record serializes tree/hash state for
/// the phase reduction (Algorithm 6).
struct InfRecord {
  Addr addr;
  Timestamp ts;

  friend bool operator==(const InfRecord&, const InfRecord&) = default;
};
static_assert(sizeof(InfRecord) == 16);

/// Message tags (the comm runtime matches on (src, tag) like MPI).
enum MsgTag : int {
  kTagInfinities = 1,  // local-infinity lists, rank p -> p-1
  kTagState = 2,       // (addr, ts) state dump for the phase reduce
  kTagHistogram = 3,   // histogram reduction
  kTagChunk = 4,       // trace chunk scatter from the pipe reader
  kTagControl = 5,     // per-phase reference counts
  kTagProfile = 6,     // per-rank profile gathering
};

}  // namespace parda
