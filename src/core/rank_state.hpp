// Per-rank analysis state for the Parda parallel algorithm.
//
// One RankState bundles the tree + hash table + histogram of Algorithm 3's
// modified stack_dist, the local-infinity queue, the received-infinity
// counter of the space-optimized merge (Algorithm 4), and the bounded-cache
// logic of Algorithm 7. It is deliberately comm-agnostic so the same state
// machine drives the offline, phased, and test harnesses.
//
// Bounded-mode semantics (one deliberate tightening over the paper, see
// DESIGN.md): with bound B, the final histogram is exact for all d < B and
// every reference with true distance >= B is an infinity. The paper's
// Algorithm 4 would occasionally resolve an inter-chunk distance >= B
// exactly; we clamp those to infinity so bounded-parallel equals
// bounded-sequential bit-for-bit, which the property tests verify.
#pragma once

#include <span>
#include <vector>

#include "core/messages.hpp"
#include "hash/addr_map.hpp"
#include "hist/histogram.hpp"
#include "tree/order_stat_tree.hpp"
#include "tree/splay_tree.hpp"
#include "util/check.hpp"
#include "util/types.hpp"

namespace parda {

inline constexpr std::uint64_t kUnbounded = 0;

template <OrderStatTree Tree = SplayTree>
class RankState {
 public:
  /// bound: kUnbounded, or the cache bound B of Algorithm 7.
  /// space_optimized: use Algorithm 4 for incoming infinities. Bounded mode
  /// requires it (the paper's evaluated configuration).
  explicit RankState(std::uint64_t bound = kUnbounded,
                     bool space_optimized = true)
      : bound_(bound), space_optimized_(space_optimized) {
    PARDA_CHECK(bound_ == kUnbounded || space_optimized_);
  }

  /// Processes one reference of this rank's own chunk; ts is the global
  /// trace position (Algorithm 3 / Algorithm 7 main loop).
  ///
  /// Bounded-mode note: the paper's Algorithm 7 emits at most B local
  /// infinities per chunk and counts later misses as infinite on the spot.
  /// That silently breaks Property 4.3 (the leftward record stream is no
  /// longer complete), which in turn leaves stale replicas on left ranks
  /// and undercounts the Algorithm 4 offset — observable as duplicated
  /// addresses in the phase reduction and mis-resolved inter-chunk
  /// distances. We instead emit a record for *every* miss (tree and hash
  /// stay bounded at B via LRU eviction, so the O(N/P log B) time claim is
  /// unaffected); a swallowed-in-the-paper record always carries a true
  /// distance >= B, so downstream it either misses everywhere (counted as
  /// an infinity at rank 0, correct) or resolves to a clamped distance
  /// >= B (also an infinity, correct). This is what makes the bounded
  /// parallel histogram equal the bounded sequential one bit for bit.
  void process_own(Addr z, Timestamp ts) {
    if (const Timestamp* last = table_.find(z)) {
      Distance d = tree_.count_greater(*last);
      tree_.erase(*last);
      // The tree can transiently exceed B entries (a phase-holder rank
      // carries up to B inherited entries plus its chunk's misses), so a
      // hit may resolve a distance >= B; under the bound that reference is
      // a capacity miss.
      if (bound_ != kUnbounded && d >= bound_) d = kInfiniteDistance;
      hist_.record(d);
    } else {
      if (bound_ != kUnbounded && table_.size() >= bound_) {
        // Capacity: evict LRU. The victim's own judgement was already
        // deferred when it first appeared, so nothing is tallied here.
        const TreeEntry victim = tree_.pop_oldest();
        table_.erase(victim.addr);
      }
      // First reference in this rank's view: defer judgement, pass left.
      loc_inf_.push_back(InfRecord{z, ts});
    }
    tree_.insert(ts, z);
    table_.insert_or_assign(z, ts);
    note_resident();
  }

  /// Batched process_own over a contiguous run of this rank's chunk whose
  /// first reference sits at global position base_ts. Identical tallies and
  /// record stream to the per-reference loop; the hash probe a few
  /// references ahead is software-prefetched.
  void process_own_block(std::span<const Addr> block, Timestamp base_ts) {
    constexpr std::size_t kAhead = 8;
    const std::size_t n = block.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (i + kAhead < n) table_.prefetch(block[i + kAhead]);
      process_own(block[i], base_ts + i);
    }
  }

  /// Processes a received local-infinity list (one merge round). Survivors
  /// (still-unresolved references) are appended to the outgoing queue.
  void process_incoming(std::span<const InfRecord> records) {
    for (const InfRecord& rec : records) {
      if (const Timestamp* last = table_.find(rec.addr)) {
        Distance d = tree_.count_greater(*last);
        if (space_optimized_) {
          // Algorithm 4: offset by infinities received so far — distinct
          // elements of the right-hand suffix that are (by design) absent
          // from this rank's tree.
          d += received_count_;
          tree_.erase(*last);
          table_.erase(rec.addr);
        } else {
          // Unoptimized Algorithm 3: the incoming reference is replayed
          // like a normal trace entry, so the tree itself accounts for
          // every suffix element and no offset applies.
          tree_.erase(*last);
          tree_.insert(rec.ts, rec.addr);
          table_.insert_or_assign(rec.addr, rec.ts);
        }
        if (bound_ != kUnbounded && d >= bound_) d = kInfiniteDistance;
        hist_.record(d);
      } else {
        loc_inf_.push_back(rec);
        if (!space_optimized_) {
          tree_.insert(rec.ts, rec.addr);
          table_.insert_or_assign(rec.addr, rec.ts);
          note_resident();
        }
      }
      ++received_count_;
    }
  }

  /// The pending local-infinity queue (inspection only).
  const std::vector<InfRecord>& local_infinities() const noexcept {
    return loc_inf_;
  }

  /// Moves out the pending local-infinity queue (to send leftward).
  std::vector<InfRecord> take_local_infinities() {
    std::vector<InfRecord> out = std::move(loc_inf_);
    loc_inf_.clear();
    return out;
  }

  /// Rank 0 terminal handling: everything still unresolved is a global
  /// infinity (compulsory miss).
  void flush_global_infinities() {
    hist_.record(kInfiniteDistance, loc_inf_.size());
    loc_inf_.clear();
  }

  /// Serializes the resident (addr, last-ts) set for the phase reduction
  /// (Algorithm 6), leaving this rank empty.
  std::vector<InfRecord> export_state() {
    std::vector<InfRecord> out;
    out.reserve(tree_.size());
    tree_.for_each(
        [&](TreeEntry e) { out.push_back(InfRecord{e.addr, e.ts}); });
    tree_.clear();
    table_.clear();
    return out;
  }

  /// Merges another rank's exported state. With space optimization the
  /// address sets are disjoint (paper Section IV-C), so no duplicate check
  /// is needed — PARDA_DCHECK guards that claim in debug builds.
  void import_state(std::span<const InfRecord> records) {
    for (const InfRecord& rec : records) {
      PARDA_DCHECK(!table_.contains(rec.addr));
      tree_.insert(rec.ts, rec.addr);
      table_.insert_or_assign(rec.addr, rec.ts);
    }
    note_resident();
  }

  /// Bounded phases: drop all but the B most-recent distinct elements —
  /// anything older has >= B distinct successors and can never be hit again
  /// under the bound.
  void prune_to_bound() {
    if (bound_ == kUnbounded) return;
    while (tree_.size() > bound_) {
      const TreeEntry victim = tree_.pop_oldest();
      table_.erase(victim.addr);
    }
  }

  /// Resets the per-merge-stage received counter (start of each phase).
  void begin_merge_stage() { received_count_ = 0; }

  const Histogram& hist() const noexcept { return hist_; }
  Histogram& hist() noexcept { return hist_; }
  std::size_t resident() const noexcept { return tree_.size(); }
  std::uint64_t peak_resident() const noexcept { return peak_resident_; }
  std::uint64_t received_count() const noexcept { return received_count_; }
  std::size_t pending_infinities() const noexcept { return loc_inf_.size(); }
  std::uint64_t bound() const noexcept { return bound_; }
  bool space_optimized() const noexcept { return space_optimized_; }
  const Tree& tree() const noexcept { return tree_; }
  const AddrMap& table() const noexcept { return table_; }

 private:
  void note_resident() noexcept {
    if (tree_.size() > peak_resident_) peak_resident_ = tree_.size();
  }

  std::uint64_t bound_;
  bool space_optimized_;
  Tree tree_;
  AddrMap table_;
  Histogram hist_;
  std::vector<InfRecord> loc_inf_;
  std::uint64_t received_count_ = 0;  // 'count' of Algorithm 4
  std::uint64_t peak_resident_ = 0;
};

}  // namespace parda
