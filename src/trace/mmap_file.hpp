// MappedFile: a read-only memory mapping of a whole file, the shared
// substrate of the zero-copy ingest paths (MmapTraceSource maps .bin
// traces, ChunkedTrzFile maps .trz archives so per-chunk decoding reads
// straight from the page cache with no read() syscalls or intermediate
// buffers).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace parda {

class MappedFile {
 public:
  /// Maps `path` read-only. Throws std::runtime_error when the file cannot
  /// be opened, sized, or mapped. An empty file maps to {nullptr, 0}.
  explicit MappedFile(const std::string& path);
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const std::uint8_t* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }

  /// madvise(MADV_SEQUENTIAL): the traces are consumed front to back, keep
  /// kernel readahead aggressive. No-op on platforms without madvise.
  void advise_sequential() const noexcept;

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace parda
