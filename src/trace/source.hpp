// TraceSource: how references reach the ranks.
//
// The paper streams 100-billion-reference traces through a Linux pipe into
// rank 0; this repo's offline path historically did the same (a producer
// thread copying every block through a TracePipe) even when the trace was
// a seekable file. TraceSource abstracts the ingest so the driver can pick
// the cheapest path per input:
//
//   - PipeTraceSource   — the streaming/online source: a TracePipe fed by
//                         an external producer (the Figure 3 shape). The
//                         only choice when the trace is unbounded or
//                         arrives live; runs the multi-phase Algorithm 5.
//   - MmapTraceSource   — zero-copy offline .bin ingest: the file is
//                         mmap'd once, madvise(SEQUENTIAL), and each rank
//                         analyzes a disjoint view of the mapping. No
//                         pipe, no producer thread, no copy.
//   - ChunkedTrzSource  — chunked-compressed offline ingest: a v2 .trz
//                         archive's chunks are assigned to ranks in
//                         contiguous runs and each rank decodes its own
//                         chunks, in parallel, into a per-rank arena that
//                         is reused across analyses.
//
// Offline sources partition the trace once per job (partition(np), driver
// thread), then every rank asks for its RankView from its own thread
// (rank_view(rank)) — which is exactly where ChunkedTrzSource does its
// decoding, so decompression parallelizes with np for free. Views stay
// valid until the next partition() or the source's destruction; they must
// never outlive the source (the mmap case would fault).
//
// Ingest telemetry (the `ingest.*` metrics, DESIGN.md "Ingest"):
//   ingest.bytes_mapped    bytes of file mapped (mmap + trz)
//   ingest.bytes_decoded   compressed payload bytes decoded (trz)
//   ingest.bytes_copied    raw reference bytes memcpy'd (pipe path only —
//                          the zero-copy proof is this staying 0)
//   ingest.chunks_assigned trz chunks handed to ranks
//   ingest.decode          per-rank decode wall time (trz)
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "trace/mmap_file.hpp"
#include "trace/trace_compress.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_pipe.hpp"
#include "util/types.hpp"

namespace parda {

/// The file-ingest path the parallel driver should use; resolves through
/// the layered config rule (--ingest > $PARDA_INGEST > pipe).
enum class IngestMode { kPipe, kMmap, kTrz };

const char* ingest_mode_name(IngestMode mode) noexcept;
/// Parses "pipe" | "mmap" | "trz"; nullopt for anything else.
std::optional<IngestMode> parse_ingest_mode(std::string_view text) noexcept;

/// One rank's slice of the trace: the references plus the global logical
/// time of refs[0] (rank bases must be cumulative across ranks so the
/// infinity pipeline sees one consistent clock).
struct RankView {
  std::span<const Addr> refs;
  Timestamp base = 0;
};

class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// The ingest-mode label ("pipe" | "mmap" | "trz"), for diagnostics and
  /// bench points.
  virtual const char* name() const noexcept = 0;

  /// Whether the whole trace is addressable up front. Offline sources
  /// implement partition()/rank_view(); streaming sources implement
  /// pipe().
  virtual bool offline() const noexcept = 0;

  /// Offline only: total references in the trace.
  virtual std::uint64_t total_references() const;

  /// Offline only: splits the trace into np contiguous per-rank ranges.
  /// Called once per job from the driver thread, before any rank_view().
  virtual void partition(int np);

  /// Offline only: rank's disjoint view, called from the rank's own
  /// thread (concurrent across ranks — this is where ChunkedTrzSource
  /// decodes). Valid until the next partition() or destruction.
  virtual RankView rank_view(int rank);

  /// Streaming only: the pipe the multi-phase driver drains.
  virtual TracePipe& pipe();
};

/// The streaming/online source: wraps an externally produced TracePipe
/// behind the TraceSource interface (the producer lifecycle stays with the
/// caller — see detail::run_with_file_producer for the file-backed shape).
class PipeTraceSource final : public TraceSource {
 public:
  explicit PipeTraceSource(TracePipe& pipe) : pipe_(&pipe) {}

  const char* name() const noexcept override { return "pipe"; }
  bool offline() const noexcept override { return false; }
  TracePipe& pipe() override { return *pipe_; }

 private:
  TracePipe* pipe_;
};

/// Zero-copy offline source over a binary (.trc/.bin) trace: maps the file
/// once and hands each rank a disjoint view straight into the mapping.
class MmapTraceSource final : public TraceSource {
 public:
  /// Maps and validates the trace header (same checks and byte-offset
  /// TraceFormatErrors as BinaryTraceReader).
  explicit MmapTraceSource(const std::string& path);

  const char* name() const noexcept override { return "mmap"; }
  bool offline() const noexcept override { return true; }
  std::uint64_t total_references() const override { return total_; }
  void partition(int np) override;
  RankView rank_view(int rank) override;

  /// The whole trace as one view (tests; sequential tools).
  std::span<const Addr> view() const noexcept { return {refs_, total_}; }
  /// The mapped byte range, exposed so tests can prove rank views alias
  /// the mapping (zero copies) instead of pointing at private buffers.
  const void* map_base() const noexcept { return map_.data(); }
  std::size_t map_bytes() const noexcept { return map_.size(); }

 private:
  std::string path_;
  MappedFile map_;
  const Addr* refs_ = nullptr;
  std::uint64_t total_ = 0;
  int np_ = 0;
};

/// Chunked-compressed offline source over a v2 .trz archive: contiguous
/// chunk runs per rank, decoded in parallel on the ranks' own threads into
/// per-rank arenas that persist (and keep their capacity) across
/// partitions and analyses.
class ChunkedTrzSource final : public TraceSource {
 public:
  explicit ChunkedTrzSource(const std::string& path);

  const char* name() const noexcept override { return "trz"; }
  bool offline() const noexcept override { return true; }
  std::uint64_t total_references() const override {
    return file_.total_references();
  }
  void partition(int np) override;
  RankView rank_view(int rank) override;

  const ChunkedTrzFile& file() const noexcept { return file_; }
  /// The chunk range assigned to `rank` by the last partition(), as
  /// [first, first + count): exposed for the balance tests.
  std::pair<std::uint64_t, std::uint64_t> assigned_chunks(int rank) const;

 private:
  struct Assignment {
    std::uint64_t first_chunk = 0;
    std::uint64_t num_chunks = 0;
    std::uint64_t first_ref = 0;  // global index of the run's first ref
    std::uint64_t refs = 0;
  };

  ChunkedTrzFile file_;
  std::vector<Assignment> plan_;
  std::vector<std::vector<Addr>> arenas_;  // one per rank, reused
};

/// Opens the offline source for `mode` (kMmap or kTrz) over `path`.
/// kPipe has no offline source (the producer owns the pipe's lifecycle);
/// asking for it is a CheckError.
std::unique_ptr<TraceSource> open_offline_source(const std::string& path,
                                                 IngestMode mode);

}  // namespace parda
