#include "trace/source.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "obs/metrics.hpp"
#include "obs/span_tracer.hpp"
#include "util/check.hpp"

namespace parda {

namespace {

[[noreturn]] void format_fail(const std::string& path, std::uint64_t offset,
                              const std::string& what) {
  throw TraceFormatError(what + " at byte offset " + std::to_string(offset) +
                         ": " + path);
}

}  // namespace

const char* ingest_mode_name(IngestMode mode) noexcept {
  switch (mode) {
    case IngestMode::kPipe: return "pipe";
    case IngestMode::kMmap: return "mmap";
    case IngestMode::kTrz: return "trz";
  }
  return "?";
}

std::optional<IngestMode> parse_ingest_mode(std::string_view text) noexcept {
  if (text == "pipe") return IngestMode::kPipe;
  if (text == "mmap") return IngestMode::kMmap;
  if (text == "trz") return IngestMode::kTrz;
  return std::nullopt;
}

// --- TraceSource defaults ---------------------------------------------------
// Each capability is optional; asking a source for the other family's
// interface is a programming error, reported as a CheckError naming the
// source.

std::uint64_t TraceSource::total_references() const {
  PARDA_CHECK_MSG(false, "TraceSource: not an offline source");
}

void TraceSource::partition(int) {
  PARDA_CHECK_MSG(false, "TraceSource: not an offline source");
}

RankView TraceSource::rank_view(int) {
  PARDA_CHECK_MSG(false, "TraceSource: not an offline source");
}

TracePipe& TraceSource::pipe() {
  PARDA_CHECK_MSG(false, "TraceSource: not a streaming source");
}

// --- MmapTraceSource --------------------------------------------------------

MmapTraceSource::MmapTraceSource(const std::string& path)
    : path_(path), map_(path) {
  // Same validation ladder (and byte-offset diagnostics) as
  // BinaryTraceReader, against the mapping instead of a FILE.
  if (map_.size() < sizeof(kTraceMagic)) {
    format_fail(path_, 0, "trace shorter than the 8-byte magic");
  }
  if (std::memcmp(map_.data(), kTraceMagic, sizeof(kTraceMagic)) != 0) {
    format_fail(path_, 0, "bad trace magic");
  }
  if (map_.size() < kTraceHeaderBytes) {
    format_fail(path_, map_.size(), "trace shorter than the 24-byte header");
  }
  std::uint64_t version = 0;
  std::memcpy(&version, map_.data() + 8, sizeof(version));
  if (version != kTraceVersion) {
    format_fail(path_, 8,
                "unsupported trace version " + std::to_string(version) +
                    " (expected " + std::to_string(kTraceVersion) + ")");
  }
  std::memcpy(&total_, map_.data() + 16, sizeof(total_));
  const std::uint64_t body_bytes = map_.size() - kTraceHeaderBytes;
  const std::uint64_t actual_words = body_bytes / sizeof(Addr);
  if (body_bytes % sizeof(Addr) != 0 || actual_words != total_) {
    format_fail(path_, kTraceHeaderBytes,
                "trace body size mismatch: header declares " +
                    std::to_string(total_) + " references but the file "
                    "holds " +
                    std::to_string(body_bytes) + " body bytes (" +
                    std::to_string(actual_words) + " whole references)");
  }
  // The 24-byte header keeps the body 8-aligned, so the view is a plain
  // reinterpretation of the mapping — this is the zero-copy property.
  static_assert(kTraceHeaderBytes % sizeof(Addr) == 0);
  refs_ = reinterpret_cast<const Addr*>(map_.data() + kTraceHeaderBytes);
  map_.advise_sequential();
  if (obs::enabled()) {
    obs::registry().counter("ingest.bytes_mapped").add(map_.size());
  }
}

void MmapTraceSource::partition(int np) {
  PARDA_CHECK(np >= 1);
  np_ = np;
}

RankView MmapTraceSource::rank_view(int rank) {
  PARDA_CHECK_MSG(np_ >= 1, "MmapTraceSource: partition() before rank_view()");
  PARDA_CHECK(rank >= 0 && rank < np_);
  // The classic ceil-division split of Algorithm 3: rank p owns global
  // positions [p*ceil(N/np), ...).
  const std::uint64_t n = total_;
  const std::uint64_t np = static_cast<std::uint64_t>(np_);
  const std::uint64_t chunk = (n + np - 1) / np;
  const std::uint64_t begin =
      std::min(static_cast<std::uint64_t>(rank) * chunk, n);
  const std::uint64_t end = std::min(begin + chunk, n);
  return RankView{
      std::span<const Addr>(refs_ + begin,
                            static_cast<std::size_t>(end - begin)),
      static_cast<Timestamp>(begin)};
}

// --- ChunkedTrzSource -------------------------------------------------------

ChunkedTrzSource::ChunkedTrzSource(const std::string& path) : file_(path) {
  if (obs::enabled()) {
    obs::registry().counter("ingest.bytes_mapped").add(file_.file_bytes());
  }
}

void ChunkedTrzSource::partition(int np) {
  PARDA_CHECK(np >= 1);
  // Contiguous chunk runs, balanced by chunk count (chunks are fixed-size
  // except the last, so this is balanced by references too): rank r gets
  // chunks [r*M/np, (r+1)*M/np). Ranks beyond the chunk count get empty
  // runs — their views are empty and the merge pipeline is unaffected.
  const std::uint64_t m = file_.num_chunks();
  const auto unp = static_cast<std::uint64_t>(np);
  plan_.assign(static_cast<std::size_t>(np), {});
  if (arenas_.size() < static_cast<std::size_t>(np)) {
    arenas_.resize(static_cast<std::size_t>(np));  // capacity is retained
  }
  for (std::uint64_t r = 0; r < unp; ++r) {
    Assignment& a = plan_[static_cast<std::size_t>(r)];
    a.first_chunk = r * m / unp;
    a.num_chunks = (r + 1) * m / unp - a.first_chunk;
    a.first_ref = a.first_chunk * file_.chunk_refs();
    a.refs = 0;
    for (std::uint64_t c = 0; c < a.num_chunks; ++c) {
      a.refs += file_.chunk(static_cast<std::size_t>(a.first_chunk + c)).refs;
    }
  }
  if (obs::enabled()) {
    obs::registry().counter("ingest.chunks_assigned").add(m);
  }
}

RankView ChunkedTrzSource::rank_view(int rank) {
  PARDA_CHECK_MSG(!plan_.empty(),
                  "ChunkedTrzSource: partition() before rank_view()");
  PARDA_CHECK(rank >= 0 && static_cast<std::size_t>(rank) < plan_.size());
  const Assignment& a = plan_[static_cast<std::size_t>(rank)];
  std::vector<Addr>& arena = arenas_[static_cast<std::size_t>(rank)];
  arena.clear();
  arena.reserve(static_cast<std::size_t>(a.refs));
  const std::int64_t t0 = obs::enabled() ? obs::tracer().now_ns() : -1;
  std::uint64_t payload_bytes = 0;
  for (std::uint64_t c = 0; c < a.num_chunks; ++c) {
    const auto idx = static_cast<std::size_t>(a.first_chunk + c);
    file_.decode_chunk(idx, arena);
    payload_bytes += file_.chunk(idx).payload_bytes;
  }
  if (t0 >= 0) {
    auto& reg = obs::registry();
    reg.counter("ingest.bytes_decoded").add(payload_bytes);
    reg.timer("ingest.decode").record_ns(
        static_cast<std::uint64_t>(obs::tracer().now_ns() - t0));
  }
  return RankView{std::span<const Addr>(arena),
                  static_cast<Timestamp>(a.first_ref)};
}

std::pair<std::uint64_t, std::uint64_t> ChunkedTrzSource::assigned_chunks(
    int rank) const {
  PARDA_CHECK(rank >= 0 && static_cast<std::size_t>(rank) < plan_.size());
  const Assignment& a = plan_[static_cast<std::size_t>(rank)];
  return {a.first_chunk, a.num_chunks};
}

std::unique_ptr<TraceSource> open_offline_source(const std::string& path,
                                                 IngestMode mode) {
  switch (mode) {
    case IngestMode::kMmap:
      return std::make_unique<MmapTraceSource>(path);
    case IngestMode::kTrz:
      return std::make_unique<ChunkedTrzSource>(path);
    case IngestMode::kPipe: break;
  }
  PARDA_CHECK_MSG(false,
                  "open_offline_source: pipe ingest has no offline source");
}

}  // namespace parda
