// Delta + varint compressed trace formats (.trz).
//
// Address traces are massive (the paper's run to 100 billion references),
// and consecutive addresses are strongly correlated, so the offline format
// stores zigzag-encoded deltas in LEB128 varints: sequential sweeps cost
// ~1 byte per reference instead of 8.
//
// Two on-disk layouts share the "PARDATRZ" magic:
//
//   v1 (legacy, whole-file): magic, u64 version=1, u64 reference count,
//   u64 payload bytes, then one delta stream for the entire trace. Must be
//   decoded serially from the front.
//
//   v2 (chunked, the fast path): magic, u64 version=2, u64 reference
//   count, u64 refs-per-chunk, u64 chunk count, then a seekable index of
//   one 24-byte entry per chunk {u64 base address, u64 payload bytes,
//   u64 crc32}, then the chunk payloads concatenated in order. Each chunk
//   is a self-contained delta stream seeded by its base address (the first
//   reference of the chunk), so disjoint chunk ranges decode independently
//   and in parallel — ChunkedTrzSource assigns contiguous chunk runs to
//   ranks and each rank decodes its own into a reused arena.
//
// Every malformed input is a typed parda::TraceFormatError naming the file
// and the byte offset (matching BinaryTraceReader), never a crash or a
// silent short read.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "trace/mmap_file.hpp"
#include "trace/trace_io.hpp"
#include "util/types.hpp"

namespace parda {

inline constexpr char kCompressedTraceMagic[8] = {'P', 'A', 'R', 'D',
                                                  'A', 'T', 'R', 'Z'};
/// v1 header: magic + version + count + payload bytes.
inline constexpr std::uint64_t kTrzV1HeaderBytes = 32;
/// v2 header: magic + version + count + refs-per-chunk + chunk count.
inline constexpr std::uint64_t kTrzV2HeaderBytes = 40;
/// v2 index entry: base address + payload bytes + crc32 (in a u64 slot).
inline constexpr std::uint64_t kTrzIndexEntryBytes = 24;
/// Default refs-per-chunk for the chunked writer: 64Ki references ≈ one
/// rank-sized unit of decode work (64–512KB of payload).
inline constexpr std::uint64_t kDefaultTrzChunkRefs = std::uint64_t{1} << 16;

/// In-memory codec (exposed for tests and for pipe-level compression).
/// decompress_trace throws TraceFormatError on truncated input, varint
/// overrun, or payload bytes left over after the declared count.
std::vector<std::uint8_t> compress_trace(std::span<const Addr> trace);
std::vector<Addr> decompress_trace(std::span<const std::uint8_t> bytes,
                                   std::size_t expected_count);

/// CRC-32 (IEEE, reflected) over `bytes`, continuing from `seed` (pass the
/// previous return value to checksum discontiguous pieces). Exposed so
/// tests can craft corrupt-but-recomputed chunk indexes.
std::uint32_t trz_crc32(std::span<const std::uint8_t> bytes,
                        std::uint32_t seed = 0) noexcept;

/// Writes the legacy v1 whole-file layout.
void write_trace_compressed(const std::string& path,
                            std::span<const Addr> trace);

/// Writes the chunked v2 layout with fixed `chunk_refs` references per
/// chunk (the last chunk may be short). chunk_refs must be positive.
void write_trace_chunked(const std::string& path, std::span<const Addr> trace,
                         std::uint64_t chunk_refs = kDefaultTrzChunkRefs);

/// Reads either layout (dispatching on the header version) into memory.
std::vector<Addr> read_trace_compressed(const std::string& path);

/// One chunk of a v2 archive, as described by the index.
struct TrzChunk {
  Addr base = 0;                  // first reference of the chunk
  std::uint64_t refs = 0;         // references in this chunk
  std::uint64_t payload_offset = 0;  // absolute file offset of the payload
  std::uint64_t payload_bytes = 0;
  std::uint32_t crc = 0;          // crc32 over base (LE bytes) + payload
};

/// A memory-mapped chunked (v2) .trz archive: the constructor maps the
/// file and validates the header and the whole chunk index (entry sizes,
/// payload extents vs the file size, per-chunk reference counts vs the
/// declared total) up front, so decode_chunk can seek anywhere without
/// re-checking structure. A v1 file is rejected with a TraceFormatError
/// naming `trace_tool convert` as the upgrade path.
class ChunkedTrzFile {
 public:
  explicit ChunkedTrzFile(const std::string& path);

  ChunkedTrzFile(ChunkedTrzFile&&) noexcept = default;
  ChunkedTrzFile& operator=(ChunkedTrzFile&&) noexcept = default;

  const std::string& path() const noexcept { return path_; }
  std::uint64_t total_references() const noexcept { return total_; }
  std::uint64_t chunk_refs() const noexcept { return chunk_refs_; }
  std::size_t num_chunks() const noexcept { return chunks_.size(); }
  const TrzChunk& chunk(std::size_t i) const { return chunks_.at(i); }
  std::uint64_t file_bytes() const noexcept { return map_.size(); }

  /// Decodes chunk i, appending its references to `out` (callers reuse one
  /// arena vector across chunks and analyses). Verifies the stored CRC and
  /// the exact reference count; both failures are TraceFormatErrors with
  /// the chunk number and byte offset.
  void decode_chunk(std::size_t i, std::vector<Addr>& out) const;

 private:
  std::string path_;
  MappedFile map_;
  std::uint64_t total_ = 0;
  std::uint64_t chunk_refs_ = 0;
  std::vector<TrzChunk> chunks_;
};

}  // namespace parda
