// Delta + varint compressed trace format (.trz).
//
// Address traces are massive (the paper's run to 100 billion references),
// and consecutive addresses are strongly correlated, so the offline format
// stores zigzag-encoded deltas in LEB128 varints: sequential sweeps cost
// ~1 byte per reference instead of 8.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace parda {

inline constexpr char kCompressedTraceMagic[8] = {'P', 'A', 'R', 'D',
                                                  'A', 'T', 'R', 'Z'};

/// In-memory codec (exposed for tests and for pipe-level compression).
std::vector<std::uint8_t> compress_trace(std::span<const Addr> trace);
std::vector<Addr> decompress_trace(std::span<const std::uint8_t> bytes,
                                   std::size_t expected_count);

/// File layout: magic, u64 version, u64 reference count, u64 payload
/// bytes, payload.
void write_trace_compressed(const std::string& path,
                            std::span<const Addr> trace);
std::vector<Addr> read_trace_compressed(const std::string& path);

}  // namespace parda
