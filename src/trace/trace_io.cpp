#include "trace/trace_io.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>  // posix_fadvise
#endif

#include "util/check.hpp"

namespace parda {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + ": " + path);
}

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

void write_trace_binary(const std::string& path,
                        std::span<const Addr> trace) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) fail("cannot open trace for writing", path);
  const std::uint64_t version = kTraceVersion;
  const std::uint64_t count = trace.size();
  if (std::fwrite(kTraceMagic, 1, sizeof(kTraceMagic), f.get()) !=
          sizeof(kTraceMagic) ||
      std::fwrite(&version, sizeof(version), 1, f.get()) != 1 ||
      std::fwrite(&count, sizeof(count), 1, f.get()) != 1) {
    fail("short write on trace header", path);
  }
  if (!trace.empty() &&
      std::fwrite(trace.data(), sizeof(Addr), trace.size(), f.get()) !=
          trace.size()) {
    fail("short write on trace body", path);
  }
}

std::vector<Addr> read_trace_binary(const std::string& path) {
  BinaryTraceReader reader(path);
  std::vector<Addr> trace;
  trace.reserve(reader.total_references());
  while (true) {
    std::vector<Addr> block = reader.read_words(1 << 20);
    if (block.empty()) break;
    trace.insert(trace.end(), block.begin(), block.end());
  }
  return trace;
}

void write_trace_text(const std::string& path, std::span<const Addr> trace) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (!f) fail("cannot open trace for writing", path);
  std::fprintf(f.get(), "# parda text trace, %zu references\n", trace.size());
  for (Addr a : trace) std::fprintf(f.get(), "%" PRIu64 "\n", a);
}

std::vector<Addr> read_trace_text(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "r"));
  if (!f) fail("cannot open trace for reading", path);
  std::vector<Addr> trace;
  char line[256];
  while (std::fgets(line, sizeof(line), f.get()) != nullptr) {
    if (line[0] == '#' || line[0] == '\n' || line[0] == '\0') continue;
    char* end = nullptr;
    const Addr a = std::strtoull(line, &end, 0);
    if (end == line) fail("malformed trace line", path);
    trace.push_back(a);
  }
  return trace;
}

BinaryTraceReader::BinaryTraceReader(const std::string& path)
    : file_(std::fopen(path.c_str(), "rb")) {
  if (file_ == nullptr) fail("cannot open trace for reading", path);
  // Traces are consumed front to back in large chunks: widen stdio's
  // buffer (must happen before the first read) and tell the kernel the
  // access pattern so readahead stays aggressive.
  std::setvbuf(file_, nullptr, _IOFBF, std::size_t{1} << 20);
#if defined(POSIX_FADV_SEQUENTIAL)
  posix_fadvise(fileno(file_), 0, 0, POSIX_FADV_SEQUENTIAL);
#endif
  char magic[8];
  std::uint64_t version = 0;
  if (std::fread(magic, 1, sizeof(magic), file_) != sizeof(magic) ||
      std::memcmp(magic, kTraceMagic, sizeof(magic)) != 0) {
    std::fclose(file_);
    file_ = nullptr;
    fail("bad trace magic", path);
  }
  if (std::fread(&version, sizeof(version), 1, file_) != 1 ||
      version != kTraceVersion ||
      std::fread(&total_, sizeof(total_), 1, file_) != 1) {
    std::fclose(file_);
    file_ = nullptr;
    fail("bad trace header", path);
  }
}

BinaryTraceReader::~BinaryTraceReader() {
  if (file_ != nullptr) std::fclose(file_);
}

std::vector<Addr> BinaryTraceReader::read_words(std::size_t max_words) {
  const std::uint64_t remaining = total_ - consumed_;
  const std::size_t want =
      static_cast<std::size_t>(std::min<std::uint64_t>(max_words, remaining));
  std::vector<Addr> block(want);
  if (want == 0) return {};
  const std::size_t got =
      std::fread(block.data(), sizeof(Addr), want, file_);
  PARDA_CHECK(got == want);
  consumed_ += got;
  return block;
}

}  // namespace parda
