#include "trace/trace_io.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>  // posix_fadvise
#endif

#include "obs/metrics.hpp"
#include "obs/span_tracer.hpp"
#include "util/check.hpp"

namespace parda {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + ": " + path);
}

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

void write_trace_binary(const std::string& path,
                        std::span<const Addr> trace) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) fail("cannot open trace for writing", path);
  const std::uint64_t version = kTraceVersion;
  const std::uint64_t count = trace.size();
  if (std::fwrite(kTraceMagic, 1, sizeof(kTraceMagic), f.get()) !=
          sizeof(kTraceMagic) ||
      std::fwrite(&version, sizeof(version), 1, f.get()) != 1 ||
      std::fwrite(&count, sizeof(count), 1, f.get()) != 1) {
    fail("short write on trace header", path);
  }
  if (!trace.empty() &&
      std::fwrite(trace.data(), sizeof(Addr), trace.size(), f.get()) !=
          trace.size()) {
    fail("short write on trace body", path);
  }
}

std::vector<Addr> read_trace_binary(const std::string& path) {
  BinaryTraceReader reader(path);
  std::vector<Addr> trace;
  trace.reserve(reader.total_references());
  while (true) {
    std::vector<Addr> block = reader.read_words(1 << 20);
    if (block.empty()) break;
    trace.insert(trace.end(), block.begin(), block.end());
  }
  return trace;
}

void write_trace_text(const std::string& path, std::span<const Addr> trace) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (!f) fail("cannot open trace for writing", path);
  std::fprintf(f.get(), "# parda text trace, %zu references\n", trace.size());
  for (Addr a : trace) std::fprintf(f.get(), "%" PRIu64 "\n", a);
}

std::vector<Addr> read_trace_text(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "r"));
  if (!f) fail("cannot open trace for reading", path);
  std::vector<Addr> trace;
  char line[256];
  while (std::fgets(line, sizeof(line), f.get()) != nullptr) {
    if (line[0] == '#' || line[0] == '\n' || line[0] == '\0') continue;
    char* end = nullptr;
    const Addr a = std::strtoull(line, &end, 0);
    if (end == line) fail("malformed trace line", path);
    trace.push_back(a);
  }
  return trace;
}

BinaryTraceReader::BinaryTraceReader(const std::string& path)
    : file_(std::fopen(path.c_str(), "rb")), path_(path) {
  if (file_ == nullptr) fail("cannot open trace for reading", path);
  // Traces are consumed front to back in large chunks: widen stdio's
  // buffer (must happen before the first read) and tell the kernel the
  // access pattern so readahead stays aggressive.
  std::setvbuf(file_, nullptr, _IOFBF, std::size_t{1} << 20);
#if defined(POSIX_FADV_SEQUENTIAL)
  posix_fadvise(fileno(file_), 0, 0, POSIX_FADV_SEQUENTIAL);
#endif
  const auto reject = [&](const std::string& what) {
    std::fclose(file_);
    file_ = nullptr;
    throw TraceFormatError(what + ": " + path);
  };
  // Header and size validation up front: a truncated or corrupt trace must
  // be rejected here, not silently short-read during the analysis.
  char magic[8];
  std::uint64_t version = 0;
  if (std::fread(magic, 1, sizeof(magic), file_) != sizeof(magic)) {
    reject("trace shorter than the 8-byte magic");
  }
  if (std::memcmp(magic, kTraceMagic, sizeof(magic)) != 0) {
    reject("bad trace magic at byte offset 0");
  }
  if (std::fread(&version, sizeof(version), 1, file_) != 1 ||
      std::fread(&total_, sizeof(total_), 1, file_) != 1) {
    reject("trace shorter than the 24-byte header");
  }
  if (version != kTraceVersion) {
    char msg[128];
    std::snprintf(msg, sizeof(msg),
                  "unsupported trace version %" PRIu64 " (expected %" PRIu64
                  ") at byte offset 8",
                  version, kTraceVersion);
    reject(msg);
  }
  // Declared count vs actual file size.
  const long data_start = std::ftell(file_);
  if (data_start != static_cast<long>(kTraceHeaderBytes) ||
      std::fseek(file_, 0, SEEK_END) != 0) {
    reject("cannot determine trace file size");
  }
  const long file_size = std::ftell(file_);
  if (std::fseek(file_, data_start, SEEK_SET) != 0) {
    reject("cannot seek back to trace body");
  }
  const std::uint64_t body_bytes =
      static_cast<std::uint64_t>(file_size) - kTraceHeaderBytes;
  const std::uint64_t actual_words = body_bytes / sizeof(Addr);
  if (body_bytes % sizeof(Addr) != 0 || actual_words != total_) {
    char msg[192];
    std::snprintf(msg, sizeof(msg),
                  "trace body size mismatch at byte offset %" PRIu64
                  ": header declares %" PRIu64 " references (%" PRIu64
                  " bytes) but the file holds %" PRIu64 " bytes (%" PRIu64
                  " whole references)",
                  kTraceHeaderBytes, total_,
                  total_ * static_cast<std::uint64_t>(sizeof(Addr)),
                  body_bytes, actual_words);
    reject(msg);
  }
}

BinaryTraceReader::~BinaryTraceReader() {
  if (file_ != nullptr) std::fclose(file_);
}

std::vector<Addr> BinaryTraceReader::read_words(std::size_t max_words) {
  const std::uint64_t remaining = total_ - consumed_;
  const std::size_t want =
      static_cast<std::size_t>(std::min<std::uint64_t>(max_words, remaining));
  std::vector<Addr> block(want);
  if (want == 0) return {};
  const std::int64_t t0 = obs::enabled() ? obs::tracer().now_ns() : -1;
  const std::size_t got =
      std::fread(block.data(), sizeof(Addr), want, file_);
  if (t0 >= 0) {
    auto& reg = obs::registry();
    reg.counter("trace.bytes_read").add(got * sizeof(Addr));
    reg.timer("trace.read").record_ns(
        static_cast<std::uint64_t>(obs::tracer().now_ns() - t0));
  }
  if (got != want) {
    // The constructor validated the size, so a short read here means the
    // file shrank underneath us (or the medium failed). Name the spot.
    char msg[192];
    std::snprintf(msg, sizeof(msg),
                  "short read at byte offset %" PRIu64 ": wanted %zu "
                  "references, got %zu (%" PRIu64 " of %" PRIu64
                  " consumed): %s",
                  kTraceHeaderBytes +
                      consumed_ * static_cast<std::uint64_t>(sizeof(Addr)),
                  want, got, consumed_, total_, path_.c_str());
    throw TraceFormatError(msg);
  }
  consumed_ += got;
  return block;
}

}  // namespace parda
