#include "trace/mmap_file.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace parda {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + ": " + path + " (" +
                           std::strerror(errno) + ")");
}

}  // namespace

MappedFile::MappedFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail("cannot open trace for mapping", path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    fail("cannot stat trace", path);
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ != 0) {
    void* map = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map == MAP_FAILED) {
      ::close(fd);
      fail("cannot mmap trace", path);
    }
    data_ = static_cast<const std::uint8_t*>(map);
  }
  // The mapping pins the file contents; the descriptor is no longer needed.
  ::close(fd);
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
  }
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) {
      ::munmap(const_cast<std::uint8_t*>(data_), size_);
    }
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

void MappedFile::advise_sequential() const noexcept {
#if defined(MADV_SEQUENTIAL)
  if (data_ != nullptr) {
    ::madvise(const_cast<std::uint8_t*>(data_), size_, MADV_SEQUENTIAL);
  }
#endif
}

}  // namespace parda
