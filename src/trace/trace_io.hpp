// Trace file I/O: binary (little-endian u64 per reference, with a small
// header) and text (one address per line, '#' comments) formats for
// storing and replaying reference traces offline.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace parda {

/// Binary trace layout: 8-byte magic "PARDATRC", u64 version, u64 count,
/// then count little-endian u64 addresses.
inline constexpr char kTraceMagic[8] = {'P', 'A', 'R', 'D',
                                        'A', 'T', 'R', 'C'};
inline constexpr std::uint64_t kTraceVersion = 1;

void write_trace_binary(const std::string& path, std::span<const Addr> trace);
std::vector<Addr> read_trace_binary(const std::string& path);

void write_trace_text(const std::string& path, std::span<const Addr> trace);
std::vector<Addr> read_trace_text(const std::string& path);

/// Streaming binary reader for traces too large to hold in memory.
class BinaryTraceReader {
 public:
  explicit BinaryTraceReader(const std::string& path);
  ~BinaryTraceReader();

  BinaryTraceReader(const BinaryTraceReader&) = delete;
  BinaryTraceReader& operator=(const BinaryTraceReader&) = delete;

  std::uint64_t total_references() const noexcept { return total_; }

  /// Reads up to max_words references; empty result means end of trace.
  std::vector<Addr> read_words(std::size_t max_words);

 private:
  std::FILE* file_;
  std::uint64_t total_ = 0;
  std::uint64_t consumed_ = 0;
};

}  // namespace parda
