// Trace file I/O: binary (little-endian u64 per reference, with a small
// header) and text (one address per line, '#' comments) formats for
// storing and replaying reference traces offline.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace parda {

/// Binary trace layout: 8-byte magic "PARDATRC", u64 version, u64 count,
/// then count little-endian u64 addresses.
inline constexpr char kTraceMagic[8] = {'P', 'A', 'R', 'D',
                                        'A', 'T', 'R', 'C'};
inline constexpr std::uint64_t kTraceVersion = 1;
/// Header size in bytes: magic + version + count.
inline constexpr std::uint64_t kTraceHeaderBytes = 24;

/// A malformed or truncated trace file: bad magic/version, or a declared
/// reference count that disagrees with the actual file size. The message
/// names the file, the byte offset, and the expected/actual counts.
class TraceFormatError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

void write_trace_binary(const std::string& path, std::span<const Addr> trace);
std::vector<Addr> read_trace_binary(const std::string& path);

void write_trace_text(const std::string& path, std::span<const Addr> trace);
std::vector<Addr> read_trace_text(const std::string& path);

/// Streaming binary reader for traces too large to hold in memory.
/// The constructor validates magic, version, and the declared reference
/// count against the actual file size; a truncated or corrupt trace throws
/// TraceFormatError up front instead of silently short-reading later.
class BinaryTraceReader {
 public:
  explicit BinaryTraceReader(const std::string& path);
  ~BinaryTraceReader();

  BinaryTraceReader(const BinaryTraceReader&) = delete;
  BinaryTraceReader& operator=(const BinaryTraceReader&) = delete;

  std::uint64_t total_references() const noexcept { return total_; }

  /// Reads up to max_words references; empty result means end of trace.
  std::vector<Addr> read_words(std::size_t max_words);

 private:
  std::FILE* file_;
  std::string path_;
  std::uint64_t total_ = 0;
  std::uint64_t consumed_ = 0;
};

}  // namespace parda
