#include "trace/trace_pipe.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/check.hpp"

namespace parda {

TracePipe::TracePipe(std::size_t capacity_words) : capacity_(capacity_words) {
  PARDA_CHECK(capacity_words > 0);
}

void TracePipe::throw_if_unwritable_locked() const {
  if (error_ != nullptr) std::rethrow_exception(error_);
  PARDA_CHECK_MSG(!closed_, "TracePipe::write after close()");
}

void TracePipe::write(std::vector<Addr> block) {
  if (block.empty()) return;
  std::unique_lock lock(mu_);
  throw_if_unwritable_locked();
  // A block larger than the whole pipe is admitted alone (buffered_ == 0),
  // like a pipe write larger than the kernel buffer that proceeds in one
  // blocking call from the analyzer's perspective.
  can_write_.wait(lock, [&] {
    return closed_ || has_space_locked(block.size());
  });
  throw_if_unwritable_locked();  // the consumer may have poisoned the wait
  buffered_ += block.size();
  written_ += block.size();
  blocks_.push_back(std::move(block));
  can_read_.notify_one();
}

void TracePipe::write(std::span<const Addr> block) {
  write(std::vector<Addr>(block.begin(), block.end()));
}

void TracePipe::close() {
  {
    std::lock_guard lock(mu_);
    closed_ = true;
  }
  can_read_.notify_all();
  can_write_.notify_all();
}

void TracePipe::close_with_error(std::exception_ptr cause) {
  PARDA_CHECK(cause != nullptr);
  {
    std::lock_guard lock(mu_);
    if (error_ == nullptr) error_ = std::move(cause);  // first error wins
    closed_ = true;
  }
  can_read_.notify_all();
  can_write_.notify_all();
}

void TracePipe::close_with_error(const std::string& what) {
  close_with_error(
      std::make_exception_ptr(std::runtime_error("trace pipe error: " + what)));
}

bool TracePipe::read(std::vector<Addr>& block) {
  std::unique_lock lock(mu_);
  can_read_.wait(lock, [&] { return !blocks_.empty() || closed_; });
  // An error outranks queued data: a poisoned stream is truncated at an
  // arbitrary point and must not be analyzed as if it were complete.
  if (error_ != nullptr) std::rethrow_exception(error_);
  if (blocks_.empty()) return false;
  block = std::move(blocks_.front());
  blocks_.pop_front();
  buffered_ -= block.size();
  can_write_.notify_one();
  return true;
}

std::vector<Addr> TracePipe::read_words(std::size_t max_words) {
  std::vector<Addr> out;
  while (out.size() < max_words) {
    if (partial_pos_ < partial_.size()) {
      const std::size_t take = std::min(max_words - out.size(),
                                        partial_.size() - partial_pos_);
      if (out.capacity() < max_words) out.reserve(max_words);
      out.insert(out.end(), partial_.begin() + partial_pos_,
                 partial_.begin() + partial_pos_ + take);
      partial_pos_ += take;
      continue;
    }
    partial_.clear();
    partial_pos_ = 0;
    if (!read(partial_)) break;
    if (out.empty() && partial_.size() <= max_words) {
      // Whole-block handoff: the producer's buffer becomes the result
      // without a copy (the common case when the producer writes blocks no
      // larger than the consumer's phase reads).
      out = std::move(partial_);
      partial_.clear();
      partial_pos_ = 0;
    }
  }
  return out;
}

std::uint64_t TracePipe::words_written() const noexcept {
  std::lock_guard lock(mu_);
  return written_;
}

bool TracePipe::failed() const noexcept {
  std::lock_guard lock(mu_);
  return error_ != nullptr;
}

}  // namespace parda
