// TracePipe: a bounded single-producer single-consumer channel of address
// blocks — this repository's stand-in for the Linux pipe that carries the
// Pin-generated trace to Parda's rank 0 (paper Figure 3).
//
// The capacity is expressed in words (addresses), mirroring the paper's
// "64Mw pipe" configuration knob. The producer (a workload generator or the
// instrumented VM) blocks when the pipe is full; the consumer blocks when
// it is empty; close() signals clean end-of-trace.
//
// Failure story: close_with_error() poisons the pipe from either side. A
// failed producer stops the consumer mid-phase (reads rethrow the
// producer's exception instead of presenting the truncated stream as a
// complete trace), and a failed consumer wakes a producer blocked on a
// full pipe (its next write throws). Writing after close() is a checked
// error (parda::CheckError), not undefined behavior.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace parda {

class TracePipe {
 public:
  /// capacity_words: maximum addresses buffered in the pipe at once.
  explicit TracePipe(std::size_t capacity_words);

  TracePipe(const TracePipe&) = delete;
  TracePipe& operator=(const TracePipe&) = delete;

  /// Producer side: enqueue a block. Blocks while the pipe is full.
  /// Throws parda::CheckError if the pipe was close()d, and rethrows the
  /// stored error if it was close_with_error()d (so a producer looping on
  /// write stops promptly when the consumer gives up).
  void write(std::vector<Addr> block);
  void write(std::span<const Addr> block);

  /// Producer side: no more data will be written.
  void close();

  /// Either side: poison the pipe with an error. Blocked peers wake
  /// immediately; subsequent reads rethrow `cause` (data still queued is
  /// discarded — a poisoned trace must not be analyzed as if complete) and
  /// subsequent writes rethrow it too. First error wins; close() after an
  /// error keeps the error.
  void close_with_error(std::exception_ptr cause);
  void close_with_error(const std::string& what);

  /// Consumer side: dequeue the next block. Returns false at end-of-trace
  /// (pipe closed and drained); rethrows the stored error if the pipe was
  /// poisoned.
  bool read(std::vector<Addr>& block);

  /// Consumer side: read up to max_words addresses, concatenating queued
  /// blocks. When a whole queued block satisfies the request it is moved
  /// out instead of copied. Returns an empty vector at end-of-trace;
  /// rethrows the stored error if the pipe was poisoned.
  std::vector<Addr> read_words(std::size_t max_words);

  std::size_t capacity_words() const noexcept { return capacity_; }

  /// Total addresses that have passed through (producer side count).
  std::uint64_t words_written() const noexcept;

  /// Whether close_with_error() was called (either side).
  bool failed() const noexcept;

 private:
  bool has_space_locked(std::size_t incoming) const noexcept {
    return buffered_ + incoming <= capacity_ || buffered_ == 0;
  }
  /// Pre-write / post-wait validity check; must hold mu_.
  void throw_if_unwritable_locked() const;

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable can_write_;
  std::condition_variable can_read_;
  std::deque<std::vector<Addr>> blocks_;
  std::size_t buffered_ = 0;  // words currently queued
  std::uint64_t written_ = 0;
  bool closed_ = false;
  std::exception_ptr error_;  // set by close_with_error; first wins
  // Carry-over for read_words when a block is larger than requested.
  std::vector<Addr> partial_;
  std::size_t partial_pos_ = 0;
};

}  // namespace parda
