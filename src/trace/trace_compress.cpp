#include "trace/trace_compress.hpp"

#include <array>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/span_tracer.hpp"
#include "util/check.hpp"

namespace parda {

namespace {

inline std::uint64_t zigzag_encode(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t zigzag_decode(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// A varint never needs more than ceil(64/7) = 10 bytes; the index
/// validation uses this to reject payload lengths no delta stream of the
/// declared count could occupy.
constexpr std::uint64_t kMaxVarintBytes = 10;

[[noreturn]] void io_fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + ": " + path);
}

/// Malformed input: the typed error every reader throws, formatted like
/// BinaryTraceReader's ("<what> at byte offset <off>: <path>").
[[noreturn]] void format_fail(const std::string& path, std::uint64_t offset,
                              const std::string& what) {
  throw TraceFormatError(what + " at byte offset " + std::to_string(offset) +
                         ": " + path);
}

inline std::uint64_t load_u64(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

/// Decodes exactly `count` zigzag-varint deltas from `bytes`, appending
/// the reconstructed addresses to `out`. `prev` seeds the delta chain
/// (0 for a v1 stream, the chunk base for a v2 chunk — the base itself is
/// appended by the caller). `abs_base` is the file offset of bytes[0],
/// so every failure names the exact spot. Returns the bytes consumed.
std::size_t decode_deltas(std::span<const std::uint8_t> bytes,
                          std::size_t count, Addr prev,
                          std::vector<Addr>& out, std::uint64_t abs_base,
                          const std::string& path) {
  std::size_t at = 0;
  for (std::size_t k = 0; k < count; ++k) {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (at >= bytes.size()) {
        format_fail(path, abs_base + at,
                    "count/payload mismatch: payload exhausted after " +
                        std::to_string(k) + " of " + std::to_string(count) +
                        " delta references (truncated payload)");
      }
      const std::uint8_t byte = bytes[at++];
      v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
      if (shift > 63) {
        format_fail(path, abs_base + at,
                    "varint overrun: delta reference " + std::to_string(k) +
                        " continues past bit 63");
      }
    }
    prev = static_cast<Addr>(static_cast<std::int64_t>(prev) +
                             zigzag_decode(v));
    out.push_back(prev);
  }
  return at;
}

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

/// Encodes trace[1..] as deltas seeded by trace[0] (the chunk base, which
/// the index stores verbatim), appending to `out`.
void compress_chunk_tail(std::span<const Addr> chunk,
                         std::vector<std::uint8_t>& out) {
  Addr prev = chunk.front();
  for (std::size_t i = 1; i < chunk.size(); ++i) {
    const auto delta = static_cast<std::int64_t>(chunk[i]) -
                       static_cast<std::int64_t>(prev);
    put_varint(out, zigzag_encode(delta));
    prev = chunk[i];
  }
}

std::uint32_t crc_of_chunk(Addr base, std::span<const std::uint8_t> payload) {
  std::array<std::uint8_t, 8> base_le{};
  std::memcpy(base_le.data(), &base, sizeof(base));
  return trz_crc32(payload, trz_crc32(base_le));
}

/// Decodes a whole mapped v1 archive (header already validated up to the
/// version field).
std::vector<Addr> read_whole_v1(const MappedFile& map,
                                const std::string& path) {
  if (map.size() < kTrzV1HeaderBytes) {
    format_fail(path, map.size(), "trz shorter than the 32-byte v1 header");
  }
  const std::uint64_t count = load_u64(map.data() + 16);
  const std::uint64_t payload_bytes = load_u64(map.data() + 24);
  const std::uint64_t body = map.size() - kTrzV1HeaderBytes;
  if (payload_bytes > body) {
    format_fail(path, kTrzV1HeaderBytes,
                "trz payload truncated: header declares " +
                    std::to_string(payload_bytes) +
                    " payload bytes but the file holds " +
                    std::to_string(body));
  }
  if (payload_bytes < body) {
    format_fail(path, kTrzV1HeaderBytes + payload_bytes,
                "trailing bytes after the declared trz payload");
  }
  std::vector<Addr> trace;
  trace.reserve(count);
  const std::span<const std::uint8_t> payload(map.data() + kTrzV1HeaderBytes,
                                              payload_bytes);
  const std::size_t used =
      decode_deltas(payload, count, 0, trace, kTrzV1HeaderBytes, path);
  if (used != payload.size()) {
    format_fail(path, kTrzV1HeaderBytes + used,
                "count/payload mismatch: " + std::to_string(count) +
                    " references decoded with " +
                    std::to_string(payload.size() - used) +
                    " payload bytes left over");
  }
  if (obs::enabled()) {
    obs::registry().counter("trace.bytes_decompressed").add(payload_bytes);
  }
  return trace;
}

}  // namespace

std::uint32_t trz_crc32(std::span<const std::uint8_t> bytes,
                        std::uint32_t seed) noexcept {
  // CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table built on
  // first use.
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (const std::uint8_t b : bytes) {
    crc = table[(crc ^ b) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::vector<std::uint8_t> compress_trace(std::span<const Addr> trace) {
  std::vector<std::uint8_t> out;
  out.reserve(trace.size() * 2);
  Addr prev = 0;
  for (Addr a : trace) {
    const auto delta =
        static_cast<std::int64_t>(a) - static_cast<std::int64_t>(prev);
    put_varint(out, zigzag_encode(delta));
    prev = a;
  }
  return out;
}

std::vector<Addr> decompress_trace(std::span<const std::uint8_t> bytes,
                                   std::size_t expected_count) {
  const std::int64_t t0 = obs::enabled() ? obs::tracer().now_ns() : -1;
  static const std::string kMemory = "<memory>";
  std::vector<Addr> trace;
  trace.reserve(expected_count);
  const std::size_t used =
      decode_deltas(bytes, expected_count, 0, trace, 0, kMemory);
  if (used != bytes.size()) {
    format_fail(kMemory, used,
                "count/payload mismatch: " + std::to_string(expected_count) +
                    " references decoded with " +
                    std::to_string(bytes.size() - used) +
                    " payload bytes left over");
  }
  if (t0 >= 0) {
    auto& reg = obs::registry();
    reg.counter("trace.bytes_decompressed").add(bytes.size());
    reg.timer("trace.decompress").record_ns(
        static_cast<std::uint64_t>(obs::tracer().now_ns() - t0));
  }
  return trace;
}

void write_trace_compressed(const std::string& path,
                            std::span<const Addr> trace) {
  const std::vector<std::uint8_t> payload = compress_trace(trace);
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) io_fail("cannot open trace for writing", path);
  const std::uint64_t version = 1;
  const std::uint64_t count = trace.size();
  const std::uint64_t bytes = payload.size();
  if (std::fwrite(kCompressedTraceMagic, 1, sizeof(kCompressedTraceMagic),
                  f.get()) != sizeof(kCompressedTraceMagic) ||
      std::fwrite(&version, sizeof(version), 1, f.get()) != 1 ||
      std::fwrite(&count, sizeof(count), 1, f.get()) != 1 ||
      std::fwrite(&bytes, sizeof(bytes), 1, f.get()) != 1) {
    io_fail("short write on compressed trace header", path);
  }
  if (!payload.empty() &&
      std::fwrite(payload.data(), 1, payload.size(), f.get()) !=
          payload.size()) {
    io_fail("short write on compressed trace payload", path);
  }
}

void write_trace_chunked(const std::string& path, std::span<const Addr> trace,
                         std::uint64_t chunk_refs) {
  PARDA_CHECK_MSG(chunk_refs >= 1,
                  "write_trace_chunked: chunk_refs must be positive");
  const std::uint64_t count = trace.size();
  const std::uint64_t num_chunks =
      count == 0 ? 0 : (count + chunk_refs - 1) / chunk_refs;

  // One pass builds the payload stream and the index side by side.
  std::vector<std::uint8_t> payloads;
  payloads.reserve(trace.size() * 2);
  std::vector<std::uint8_t> index;
  index.reserve(static_cast<std::size_t>(num_chunks) * kTrzIndexEntryBytes);
  const auto put_u64 = [](std::vector<std::uint8_t>& out, std::uint64_t v) {
    std::uint8_t le[8];
    std::memcpy(le, &v, sizeof(v));
    out.insert(out.end(), le, le + sizeof(le));
  };
  for (std::uint64_t c = 0; c < num_chunks; ++c) {
    const std::size_t lo = static_cast<std::size_t>(c * chunk_refs);
    const std::size_t hi = static_cast<std::size_t>(
        std::min<std::uint64_t>(count, (c + 1) * chunk_refs));
    const std::span<const Addr> chunk = trace.subspan(lo, hi - lo);
    const std::size_t payload_start = payloads.size();
    compress_chunk_tail(chunk, payloads);
    const std::span<const std::uint8_t> payload(
        payloads.data() + payload_start, payloads.size() - payload_start);
    put_u64(index, chunk.front());
    put_u64(index, payload.size());
    put_u64(index, crc_of_chunk(chunk.front(), payload));
  }

  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) io_fail("cannot open trace for writing", path);
  const std::uint64_t version = 2;
  if (std::fwrite(kCompressedTraceMagic, 1, sizeof(kCompressedTraceMagic),
                  f.get()) != sizeof(kCompressedTraceMagic) ||
      std::fwrite(&version, sizeof(version), 1, f.get()) != 1 ||
      std::fwrite(&count, sizeof(count), 1, f.get()) != 1 ||
      std::fwrite(&chunk_refs, sizeof(chunk_refs), 1, f.get()) != 1 ||
      std::fwrite(&num_chunks, sizeof(num_chunks), 1, f.get()) != 1) {
    io_fail("short write on chunked trace header", path);
  }
  if (!index.empty() &&
      std::fwrite(index.data(), 1, index.size(), f.get()) != index.size()) {
    io_fail("short write on chunked trace index", path);
  }
  if (!payloads.empty() &&
      std::fwrite(payloads.data(), 1, payloads.size(), f.get()) !=
          payloads.size()) {
    io_fail("short write on chunked trace payload", path);
  }
}

std::vector<Addr> read_trace_compressed(const std::string& path) {
  MappedFile map(path);
  if (map.size() < sizeof(kCompressedTraceMagic)) {
    format_fail(path, 0, "trz shorter than the 8-byte magic");
  }
  if (std::memcmp(map.data(), kCompressedTraceMagic,
                  sizeof(kCompressedTraceMagic)) != 0) {
    format_fail(path, 0, "bad trz magic");
  }
  if (map.size() < 16) {
    format_fail(path, 8, "trz shorter than its version field");
  }
  const std::uint64_t version = load_u64(map.data() + 8);
  if (version == 1) return read_whole_v1(map, path);
  if (version != 2) {
    format_fail(path, 8,
                "unsupported trz version " + std::to_string(version) +
                    " (expected 1 or 2)");
  }
  // v2: decode every chunk in order through the validated index.
  ChunkedTrzFile file(path);
  std::vector<Addr> trace;
  trace.reserve(file.total_references());
  for (std::size_t c = 0; c < file.num_chunks(); ++c) {
    file.decode_chunk(c, trace);
  }
  return trace;
}

ChunkedTrzFile::ChunkedTrzFile(const std::string& path)
    : path_(path), map_(path) {
  if (map_.size() < sizeof(kCompressedTraceMagic)) {
    format_fail(path_, 0, "trz shorter than the 8-byte magic");
  }
  if (std::memcmp(map_.data(), kCompressedTraceMagic,
                  sizeof(kCompressedTraceMagic)) != 0) {
    format_fail(path_, 0, "bad trz magic");
  }
  if (map_.size() < 16) {
    format_fail(path_, 8, "trz shorter than its version field");
  }
  const std::uint64_t version = load_u64(map_.data() + 8);
  if (version == 1) {
    format_fail(path_, 8,
                "chunked ingest needs a v2 .trz archive (this file is the "
                "whole-file v1 layout; upgrade it with `trace_tool convert "
                "in.trz out.trz --trz-version=2`)");
  }
  if (version != 2) {
    format_fail(path_, 8,
                "unsupported trz version " + std::to_string(version) +
                    " (expected 1 or 2)");
  }
  if (map_.size() < kTrzV2HeaderBytes) {
    format_fail(path_, map_.size(),
                "trz shorter than the 40-byte v2 header");
  }
  total_ = load_u64(map_.data() + 16);
  chunk_refs_ = load_u64(map_.data() + 24);
  const std::uint64_t num_chunks = load_u64(map_.data() + 32);
  if (chunk_refs_ == 0 && total_ != 0) {
    format_fail(path_, 24, "zero refs-per-chunk with a nonzero trace");
  }
  const std::uint64_t expected_chunks =
      total_ == 0 ? 0 : (total_ + chunk_refs_ - 1) / chunk_refs_;
  if (num_chunks != expected_chunks) {
    format_fail(path_, 32,
                "chunk count mismatch: header declares " +
                    std::to_string(num_chunks) + " chunks but " +
                    std::to_string(total_) + " references at " +
                    std::to_string(chunk_refs_) + " refs/chunk need " +
                    std::to_string(expected_chunks));
  }
  if (num_chunks > (map_.size() - kTrzV2HeaderBytes) / kTrzIndexEntryBytes) {
    format_fail(path_, kTrzV2HeaderBytes,
                "chunk index extends past the end of the file");
  }
  chunks_.reserve(static_cast<std::size_t>(num_chunks));
  std::uint64_t payload_at =
      kTrzV2HeaderBytes + num_chunks * kTrzIndexEntryBytes;
  for (std::uint64_t c = 0; c < num_chunks; ++c) {
    const std::uint64_t entry_off =
        kTrzV2HeaderBytes + c * kTrzIndexEntryBytes;
    const std::uint8_t* entry = map_.data() + entry_off;
    TrzChunk chunk;
    chunk.base = load_u64(entry);
    chunk.payload_bytes = load_u64(entry + 8);
    const std::uint64_t crc_word = load_u64(entry + 16);
    if (crc_word > 0xFFFFFFFFull) {
      format_fail(path_, entry_off + 16,
                  "corrupt crc field in chunk " + std::to_string(c) +
                      " (high bits set)");
    }
    chunk.crc = static_cast<std::uint32_t>(crc_word);
    chunk.refs = c + 1 < num_chunks ? chunk_refs_
                                    : total_ - (num_chunks - 1) * chunk_refs_;
    // A chunk of k references carries exactly k-1 varints of 1..10 bytes:
    // any payload length outside that envelope is structurally corrupt,
    // caught here before decode_chunk ever trusts the offset.
    const std::uint64_t min_bytes = chunk.refs - 1;
    const std::uint64_t max_bytes = (chunk.refs - 1) * kMaxVarintBytes;
    if (chunk.payload_bytes < min_bytes || chunk.payload_bytes > max_bytes) {
      format_fail(path_, entry_off + 8,
                  "chunk " + std::to_string(c) + " declares " +
                      std::to_string(chunk.payload_bytes) +
                      " payload bytes for " + std::to_string(chunk.refs) +
                      " references (expected " + std::to_string(min_bytes) +
                      ".." + std::to_string(max_bytes) + ")");
    }
    if (chunk.payload_bytes > map_.size() - payload_at) {
      format_fail(path_, payload_at,
                  "chunk " + std::to_string(c) +
                      " payload extends past the end of the file");
    }
    chunk.payload_offset = payload_at;
    payload_at += chunk.payload_bytes;
    chunks_.push_back(chunk);
  }
  if (payload_at != map_.size()) {
    format_fail(path_, payload_at,
                "trailing bytes after the last chunk payload (index "
                "accounts for " +
                    std::to_string(payload_at) + " of " +
                    std::to_string(map_.size()) + " file bytes)");
  }
}

void ChunkedTrzFile::decode_chunk(std::size_t i,
                                  std::vector<Addr>& out) const {
  const TrzChunk& c = chunk(i);
  const std::span<const std::uint8_t> payload(
      map_.data() + c.payload_offset,
      static_cast<std::size_t>(c.payload_bytes));
  const std::uint32_t computed = crc_of_chunk(c.base, payload);
  if (computed != c.crc) {
    char msg[96];
    std::snprintf(msg, sizeof(msg),
                  "chunk %zu crc mismatch (stored 0x%08x, computed 0x%08x)",
                  i, c.crc, computed);
    format_fail(path_, c.payload_offset, msg);
  }
  out.push_back(c.base);
  const std::size_t used =
      decode_deltas(payload, static_cast<std::size_t>(c.refs - 1), c.base,
                    out, c.payload_offset, path_);
  if (used != payload.size()) {
    format_fail(path_, c.payload_offset + used,
                "count/payload mismatch in chunk " + std::to_string(i) +
                    ": " + std::to_string(c.refs) +
                    " references decoded with " +
                    std::to_string(payload.size() - used) +
                    " payload bytes left over");
  }
}

}  // namespace parda
