#include "trace/trace_compress.hpp"

#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/span_tracer.hpp"
#include "util/check.hpp"

namespace parda {

namespace {

inline std::uint64_t zigzag_encode(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t zigzag_decode(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + ": " + path);
}

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

std::vector<std::uint8_t> compress_trace(std::span<const Addr> trace) {
  std::vector<std::uint8_t> out;
  out.reserve(trace.size() * 2);
  Addr prev = 0;
  for (Addr a : trace) {
    const auto delta =
        static_cast<std::int64_t>(a) - static_cast<std::int64_t>(prev);
    put_varint(out, zigzag_encode(delta));
    prev = a;
  }
  return out;
}

std::vector<Addr> decompress_trace(std::span<const std::uint8_t> bytes,
                                   std::size_t expected_count) {
  const std::int64_t t0 = obs::enabled() ? obs::tracer().now_ns() : -1;
  std::vector<Addr> trace;
  trace.reserve(expected_count);
  Addr prev = 0;
  std::size_t at = 0;
  while (trace.size() < expected_count) {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (at >= bytes.size()) {
        throw std::runtime_error("truncated compressed trace");
      }
      const std::uint8_t byte = bytes[at++];
      v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
      if (shift > 63) throw std::runtime_error("varint overflow");
    }
    prev = static_cast<Addr>(static_cast<std::int64_t>(prev) +
                             zigzag_decode(v));
    trace.push_back(prev);
  }
  if (at != bytes.size()) {
    throw std::runtime_error("trailing bytes in compressed trace");
  }
  if (t0 >= 0) {
    auto& reg = obs::registry();
    reg.counter("trace.bytes_decompressed").add(bytes.size());
    reg.timer("trace.decompress").record_ns(
        static_cast<std::uint64_t>(obs::tracer().now_ns() - t0));
  }
  return trace;
}

void write_trace_compressed(const std::string& path,
                            std::span<const Addr> trace) {
  const std::vector<std::uint8_t> payload = compress_trace(trace);
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) fail("cannot open trace for writing", path);
  const std::uint64_t version = 1;
  const std::uint64_t count = trace.size();
  const std::uint64_t bytes = payload.size();
  if (std::fwrite(kCompressedTraceMagic, 1, sizeof(kCompressedTraceMagic),
                  f.get()) != sizeof(kCompressedTraceMagic) ||
      std::fwrite(&version, sizeof(version), 1, f.get()) != 1 ||
      std::fwrite(&count, sizeof(count), 1, f.get()) != 1 ||
      std::fwrite(&bytes, sizeof(bytes), 1, f.get()) != 1) {
    fail("short write on compressed trace header", path);
  }
  if (!payload.empty() &&
      std::fwrite(payload.data(), 1, payload.size(), f.get()) !=
          payload.size()) {
    fail("short write on compressed trace payload", path);
  }
}

std::vector<Addr> read_trace_compressed(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) fail("cannot open trace for reading", path);
  char magic[8];
  std::uint64_t version = 0;
  std::uint64_t count = 0;
  std::uint64_t bytes = 0;
  if (std::fread(magic, 1, sizeof(magic), f.get()) != sizeof(magic) ||
      std::memcmp(magic, kCompressedTraceMagic, sizeof(magic)) != 0 ||
      std::fread(&version, sizeof(version), 1, f.get()) != 1 ||
      version != 1 ||
      std::fread(&count, sizeof(count), 1, f.get()) != 1 ||
      std::fread(&bytes, sizeof(bytes), 1, f.get()) != 1) {
    fail("bad compressed trace header", path);
  }
  std::vector<std::uint8_t> payload(bytes);
  if (bytes != 0 &&
      std::fread(payload.data(), 1, bytes, f.get()) != bytes) {
    fail("short read on compressed trace payload", path);
  }
  return decompress_trace(payload, static_cast<std::size_t>(count));
}

}  // namespace parda
