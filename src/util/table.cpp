#include "util/table.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/stats.hpp"

namespace parda {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  PARDA_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::FILE* out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%s%-*s", c == 0 ? "" : "  ",
                   static_cast<int>(widths[c]), row[c].c_str());
    }
    std::fprintf(out, "\n");
  };

  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  for (std::size_t i = 0; i + 2 < total; ++i) std::fputc('-', out);
  std::fputc('\n', out);
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::fmt_u64(unsigned long long v) {
  return with_commas(v);
}

}  // namespace parda
