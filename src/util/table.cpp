#include "util/table.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/stats.hpp"

namespace parda {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  PARDA_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::FILE* out) const {
  const std::string rendered = str();
  std::fwrite(rendered.data(), 1, rendered.size(), out);
}

std::string TablePrinter::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }

  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out += "  ";
      out += row[c];
      // Pad all but the last column so lines carry no trailing blanks.
      if (c + 1 < row.size())
        out.append(widths[c] - row[c].size(), ' ');
    }
    out += '\n';
  };

  append_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out.append(total > 2 ? total - 2 : 0, '-');
  out += '\n';
  for (const auto& row : rows_) append_row(row);
  return out;
}

std::string TablePrinter::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::fmt_u64(unsigned long long v) {
  return with_commas(v);
}

}  // namespace parda
