#include "util/json.hpp"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace parda::json {

// --- Writer ----------------------------------------------------------------

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void Writer::comma() {
  if (!need_comma_.empty()) {
    if (need_comma_.back()) out_ += ',';
    need_comma_.back() = true;
  }
}

Writer& Writer::begin_object() {
  comma();
  out_ += '{';
  need_comma_.push_back(false);
  return *this;
}

Writer& Writer::end_object() {
  out_ += '}';
  need_comma_.pop_back();
  return *this;
}

Writer& Writer::begin_array() {
  comma();
  out_ += '[';
  need_comma_.push_back(false);
  return *this;
}

Writer& Writer::end_array() {
  out_ += ']';
  need_comma_.pop_back();
  return *this;
}

Writer& Writer::key(std::string_view k) {
  comma();
  append_escaped(out_, k);
  out_ += ':';
  // The upcoming value must not emit another comma.
  if (!need_comma_.empty()) need_comma_.back() = false;
  return *this;
}

Writer& Writer::value(std::string_view s) {
  comma();
  append_escaped(out_, s);
  return *this;
}

Writer& Writer::value(std::uint64_t v) {
  comma();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out_ += buf;
  return *this;
}

Writer& Writer::value(std::int64_t v) {
  comma();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out_ += buf;
  return *this;
}

Writer& Writer::value(double v) {
  comma();
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out_ += buf;
  return *this;
}

Writer& Writer::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  return *this;
}

Writer& Writer::null() {
  comma();
  out_ += "null";
  return *this;
}

Writer& Writer::raw(std::string_view json) {
  comma();
  out_ += json;
  return *this;
}

// --- Value accessors -------------------------------------------------------

const Value* Value::find(std::string_view key) const noexcept {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* v = find(key);
  if (v == nullptr) {
    throw JsonError("missing JSON object member: " + std::string(key));
  }
  return *v;
}

std::uint64_t Value::as_u64() const {
  if (kind != Kind::kNumber) throw JsonError("JSON value is not a number");
  return std::strtoull(text.c_str(), nullptr, 10);
}

std::int64_t Value::as_i64() const {
  if (kind != Kind::kNumber) throw JsonError("JSON value is not a number");
  return std::strtoll(text.c_str(), nullptr, 10);
}

double Value::as_double() const {
  if (kind != Kind::kNumber) throw JsonError("JSON value is not a number");
  return std::strtod(text.c_str(), nullptr);
}

const std::string& Value::as_string() const {
  if (kind != Kind::kString) throw JsonError("JSON value is not a string");
  return text;
}

// --- Parser ----------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw JsonError(what + " (at byte " + std::to_string(pos_) + ")");
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of JSON");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string();
      case 't':
      case 'f': return parse_bool();
      case 'n': return parse_null();
      default: return parse_number();
    }
  }

  Value parse_object() {
    Value v;
    v.kind = Value::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      Value key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key.text), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array() {
    Value v;
    v.kind = Value::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  Value parse_string() {
    Value v;
    v.kind = Value::Kind::kString;
    expect('"');
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return v;
      if (c != '\\') {
        v.text += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': v.text += '"'; break;
        case '\\': v.text += '\\'; break;
        case '/': v.text += '/'; break;
        case 'b': v.text += '\b'; break;
        case 'f': v.text += '\f'; break;
        case 'n': v.text += '\n'; break;
        case 'r': v.text += '\r'; break;
        case 't': v.text += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // ASCII only (all this repo ever emits); encode the rest as UTF-8.
          if (code < 0x80) {
            v.text += static_cast<char>(code);
          } else if (code < 0x800) {
            v.text += static_cast<char>(0xC0 | (code >> 6));
            v.text += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            v.text += static_cast<char>(0xE0 | (code >> 12));
            v.text += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            v.text += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Value parse_bool() {
    Value v;
    v.kind = Value::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
    } else {
      fail("bad literal");
    }
    return v;
  }

  Value parse_null() {
    if (text_.compare(pos_, 4, "null") != 0) fail("bad literal");
    pos_ += 4;
    return Value{};
  }

  Value parse_number() {
    Value v;
    v.kind = Value::Kind::kNumber;
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool digits = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      if (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        digits = true;
      }
      ++pos_;
    }
    if (!digits) fail("bad number");
    v.text.assign(text_.substr(start, pos_ - start));
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace parda::json
