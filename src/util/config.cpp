#include "util/config.hpp"

#include <cstdlib>

namespace parda::config {

const char* source_name(Source source) noexcept {
  switch (source) {
    case Source::kCli: return "command line";
    case Source::kEnv: return "environment";
    case Source::kDefault: return "default";
  }
  return "?";
}

Resolved resolve(const std::optional<std::string>& cli_value,
                 const char* env_var, std::string default_value) {
  if (cli_value.has_value()) return {*cli_value, Source::kCli};
  if (env_var != nullptr) {
    const char* env = std::getenv(env_var);
    if (env != nullptr && env[0] != '\0') {
      return {std::string(env), Source::kEnv};
    }
  }
  return {std::move(default_value), Source::kDefault};
}

Resolved resolve_flag(const CliParser& cli, const std::string& flag_name,
                      const std::string& flag_value, const char* env_var,
                      std::string default_value) {
  std::optional<std::string> cli_value;
  if (cli.was_set(flag_name)) cli_value = flag_value;
  return resolve(cli_value, env_var, std::move(default_value));
}

}  // namespace parda::config
