#include "util/prng.hpp"

#include <cmath>

#include "util/check.hpp"

namespace parda {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return splitmix64(s);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Xoshiro256::result_type Xoshiro256::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::below(std::uint64_t bound) noexcept {
  PARDA_DCHECK(bound != 0);
  // Lemire's nearly-divisionless unbiased bounded sampling.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t Xoshiro256::range(std::uint64_t lo, std::uint64_t hi) noexcept {
  PARDA_DCHECK(lo <= hi);
  return lo + below(hi - lo + 1);
}

double Xoshiro256::uniform() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

void Xoshiro256::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      (*this)();
    }
  }
  s_ = {s0, s1, s2, s3};
}

ZipfSampler::ZipfSampler(std::uint64_t n, double alpha)
    : n_(n), alpha_(alpha) {
  PARDA_CHECK(n >= 1);
  PARDA_CHECK(alpha >= 0.0);
  h_x1_ = h(1.5) - 1.0;
  h_n_ = h(static_cast<double>(n) + 0.5);
  s_ = 2.0 - h_inv(h(2.5) - std::pow(2.0, -alpha));
}

double ZipfSampler::h(double x) const noexcept {
  // Integral of x^-alpha; the alpha == 1 limit is log.
  if (alpha_ == 1.0) return std::log(x);
  return std::pow(x, 1.0 - alpha_) / (1.0 - alpha_);
}

double ZipfSampler::h_inv(double x) const noexcept {
  if (alpha_ == 1.0) return std::exp(x);
  return std::pow((1.0 - alpha_) * x, 1.0 / (1.0 - alpha_));
}

std::uint64_t ZipfSampler::operator()(Xoshiro256& rng) const noexcept {
  if (n_ == 1) return 0;
  while (true) {
    const double u = h_n_ + rng.uniform() * (h_x1_ - h_n_);
    const double x = h_inv(u);
    auto k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    if (static_cast<double>(k) - x <= s_ ||
        u >= h(static_cast<double>(k) + 0.5) -
                 std::pow(static_cast<double>(k), -alpha_)) {
      return k - 1;  // 0-based rank
    }
  }
}

std::vector<std::uint64_t> random_permutation(std::uint64_t n,
                                              Xoshiro256& rng) {
  std::vector<std::uint64_t> perm(n);
  for (std::uint64_t i = 0; i < n; ++i) perm[i] = i;
  for (std::uint64_t i = n; i > 1; --i) {
    const std::uint64_t j = rng.below(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

}  // namespace parda
