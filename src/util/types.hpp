// Fundamental scalar types shared across the Parda library.
#pragma once

#include <cstdint>
#include <limits>

namespace parda {

/// A memory address (or abstract data-element identifier) in a reference
/// trace. The paper's traces are word-granularity addresses produced by Pin;
/// any 64-bit identifier works.
using Addr = std::uint64_t;

/// Logical time: the position of a reference within the (global) trace.
using Timestamp = std::uint64_t;

/// Reuse distance. `kInfiniteDistance` marks a first reference (compulsory
/// miss); finite values count distinct intervening addresses.
using Distance = std::uint64_t;

inline constexpr Distance kInfiniteDistance =
    std::numeric_limits<Distance>::max();

/// Sentinel for "no timestamp" in hash tables and trees.
inline constexpr Timestamp kNoTimestamp =
    std::numeric_limits<Timestamp>::max();

}  // namespace parda
