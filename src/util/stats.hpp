// Small statistics helpers shared by the benchmark harnesses and the
// phase-detection application.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace parda {

double mean(std::span<const double> xs) noexcept;
double stdev(std::span<const double> xs) noexcept;
double median(std::vector<double> xs) noexcept;

/// p in [0,100]; linear interpolation between order statistics.
double percentile(std::vector<double> xs, double p) noexcept;

/// Geometric mean; all inputs must be positive.
double geomean(std::span<const double> xs) noexcept;

/// Pretty-print a count with thousands separators, e.g. 12,081,037.
std::string with_commas(unsigned long long value);

/// Human-readable byte/word sizes, e.g. "2Mw", "512Kw", "64w".
std::string words_human(unsigned long long words);

}  // namespace parda
