// Lightweight runtime checks. PARDA_CHECK is always on (cheap, used on cold
// paths and in tests); PARDA_DCHECK compiles out in release builds and may
// sit on hot paths. Both abort: they guard programmer errors where no
// recovery is meaningful (tests, hot-path invariants).
//
// PARDA_CHECK_MSG is the library-level variant: it throws parda::CheckError
// with a printf-formatted context message, so invariant violations reached
// through public APIs (bad payload sizes, malformed inputs, misuse of a
// closed pipe) surface as catchable exceptions that the fault-tolerant
// runtime can propagate and attribute, instead of killing the process.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace parda {

/// Thrown by PARDA_CHECK_MSG: a violated library invariant with context.
class CheckError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {

#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 4, 5)))
#endif
[[noreturn]] inline void
throw_check_failure(const char* expr, const char* file, int line,
                    const char* fmt, ...) {
  char msg[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(msg, sizeof(msg), fmt, ap);
  va_end(ap);
  char full[768];
  std::snprintf(full, sizeof(full), "check failed: %s — %s (%s:%d)", expr,
                msg, file, line);
  throw CheckError(full);
}

}  // namespace detail
}  // namespace parda

#define PARDA_CHECK(cond)                                                   \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "PARDA_CHECK failed: %s at %s:%d\n", #cond,      \
                   __FILE__, __LINE__);                                     \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

/// Throwing check with printf-style context:
///   PARDA_CHECK_MSG(off + cnt <= n, "slice [%zu,+%zu) exceeds block of %zu",
///                   off, cnt, n);
#define PARDA_CHECK_MSG(cond, ...)                                          \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::parda::detail::throw_check_failure(#cond, __FILE__, __LINE__,       \
                                           __VA_ARGS__);                    \
    }                                                                       \
  } while (0)

#ifndef NDEBUG
#define PARDA_DCHECK(cond) PARDA_CHECK(cond)
#else
#define PARDA_DCHECK(cond) \
  do {                     \
  } while (0)
#endif
