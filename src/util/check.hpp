// Lightweight runtime checks. PARDA_CHECK is always on (cheap, used on cold
// paths and in tests); PARDA_DCHECK compiles out in release builds and may
// sit on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

#define PARDA_CHECK(cond)                                                   \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "PARDA_CHECK failed: %s at %s:%d\n", #cond,      \
                   __FILE__, __LINE__);                                     \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#ifndef NDEBUG
#define PARDA_DCHECK(cond) PARDA_CHECK(cond)
#else
#define PARDA_DCHECK(cond) \
  do {                     \
  } while (0)
#endif
