// A minimal command-line flag parser for the examples and bench harnesses.
//
// Flags take the form --name=value or --name value; bare --name sets a bool.
// Unrecognized flags, malformed values, and missing required values exit
// with kExitUsage and a one-line diagnostic plus the usage listing.
//
// Exit-code convention for the tools built on this parser:
//   0            success (and --help)
//   kExitRuntime a well-formed invocation that failed at runtime
//                (missing trace file, aborted analysis, ...)
//   kExitUsage   a malformed invocation (unknown flag, bad value,
//                out-of-range argument)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace parda {

inline constexpr int kExitRuntime = 1;
inline constexpr int kExitUsage = 2;

/// App-level argument validation: prints "error: <message>" (one line) to
/// stderr and exits with kExitUsage.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 1, 2)))
#endif
[[noreturn]] void
usage_error(const char* fmt, ...);

class CliParser {
 public:
  explicit CliParser(std::string program_description);

  /// Registers a flag; returns a handle whose value is filled by parse().
  /// The pointed-to default remains if the flag is absent.
  void add_flag(const std::string& name, std::string* value,
                const std::string& help);
  void add_flag(const std::string& name, std::uint64_t* value,
                const std::string& help);
  void add_flag(const std::string& name, double* value,
                const std::string& help);
  void add_flag(const std::string& name, bool* value, const std::string& help);

  /// Parses argv. On --help prints usage and exits 0; on error prints a
  /// diagnostic plus usage and exits kExitUsage. Positional arguments are
  /// collected into positionals().
  void parse(int argc, char** argv);

  const std::vector<std::string>& positionals() const { return positionals_; }

  /// True when the named flag appeared on the command line (regardless of
  /// the value it carried). This is what lets a layered config tell "the
  /// user typed --transport=threads" apart from "the default is threads":
  /// only explicitly set flags override environment variables.
  bool was_set(const std::string& name) const;

 private:
  enum class Kind { kString, kUint, kDouble, kBool };
  struct Flag {
    std::string name;
    Kind kind;
    void* target;
    std::string help;
  };

  [[noreturn]] void usage_and_exit(int code) const;
  const Flag* find(const std::string& name) const;
  void assign(const Flag& flag, const std::string& value) const;

  std::string description_;
  std::string program_;
  std::vector<Flag> flags_;
  std::vector<std::string> positionals_;
  std::vector<std::string> set_names_;  // flags seen during parse()
};

}  // namespace parda
