// A minimal command-line flag parser for the examples and bench harnesses.
//
// Flags take the form --name=value or --name value; bare --name sets a bool.
// Unrecognized flags abort with a usage message listing registered flags.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace parda {

class CliParser {
 public:
  explicit CliParser(std::string program_description);

  /// Registers a flag; returns a handle whose value is filled by parse().
  /// The pointed-to default remains if the flag is absent.
  void add_flag(const std::string& name, std::string* value,
                const std::string& help);
  void add_flag(const std::string& name, std::uint64_t* value,
                const std::string& help);
  void add_flag(const std::string& name, double* value,
                const std::string& help);
  void add_flag(const std::string& name, bool* value, const std::string& help);

  /// Parses argv. On --help prints usage and exits 0; on error prints usage
  /// and exits 1. Positional arguments are collected into positionals().
  void parse(int argc, char** argv);

  const std::vector<std::string>& positionals() const { return positionals_; }

 private:
  enum class Kind { kString, kUint, kDouble, kBool };
  struct Flag {
    std::string name;
    Kind kind;
    void* target;
    std::string help;
  };

  [[noreturn]] void usage_and_exit(int code) const;
  const Flag* find(const std::string& name) const;
  void assign(const Flag& flag, const std::string& value) const;

  std::string description_;
  std::string program_;
  std::vector<Flag> flags_;
  std::vector<std::string> positionals_;
};

}  // namespace parda
