// Deterministic pseudo-random number generation for workload synthesis.
//
// We implement xoshiro256** (Blackman & Vigna) seeded through splitmix64
// rather than relying on std::mt19937_64: it is faster, has a tiny state,
// and guarantees bit-identical streams across standard libraries, which the
// test suite depends on.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace parda {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Stateless 64-bit mix of a value (one splitmix64 round).
std::uint64_t mix64(std::uint64_t x) noexcept;

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept;

  /// Uniform in [0, bound). bound must be nonzero. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Jump function: advances the stream by 2^128 steps; used to derive
  /// independent per-rank streams from one seed.
  void jump() noexcept;

 private:
  std::array<std::uint64_t, 4> s_;
};

/// Samples ranks 0..n-1 with probability proportional to 1/(rank+1)^alpha.
/// Uses the classic rejection-inversion method of Hörmann & Derflinger so
/// setup is O(1) and sampling is O(1) expected, independent of n.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double alpha);

  std::uint64_t operator()(Xoshiro256& rng) const noexcept;

  std::uint64_t n() const noexcept { return n_; }
  double alpha() const noexcept { return alpha_; }

 private:
  double h(double x) const noexcept;
  double h_inv(double x) const noexcept;

  std::uint64_t n_;
  double alpha_;
  double h_x1_;
  double h_n_;
  double s_;
};

/// A random permutation of [0, n) built with Fisher-Yates; used to scatter
/// logical indices over a synthetic address space.
std::vector<std::uint64_t> random_permutation(std::uint64_t n,
                                              Xoshiro256& rng);

}  // namespace parda
