// Layered runtime configuration: ONE precedence rule for every setting
// that can arrive both on the command line and from the environment.
//
//   command line  >  environment variable  >  compiled-in default
//
// Historically each tool hand-rolled this (log level read $PARDA_LOG_LEVEL
// inside obs/log.cpp on first use, the fault plan read $PARDA_FAULT_PLAN
// inside FaultPlan::from_env, and the two disagreed on whether an empty
// env var counted as "set"). resolve() is the single choke point: it
// reports both the winning value and WHERE it came from, so tools can say
// "transport tcp (from $PARDA_TRANSPORT)" in diagnostics and tests can
// assert the precedence order directly.
//
// Settings routed through this layer:
//   --transport   / $PARDA_TRANSPORT   (comm::TransportSpec grammar)
//   --log-level   / $PARDA_LOG_LEVEL   (trace|debug|info|warn|error|off)
//   --fault-plan  / $PARDA_FAULT_PLAN  (comm::FaultPlan grammar)
//
// An environment variable set to the empty string counts as UNSET (so
// `PARDA_TRANSPORT= ./trace_tool ...` falls back to the default instead
// of failing to parse ""), matching FaultPlan::from_env's behavior.
#pragma once

#include <optional>
#include <string>

#include "util/cli.hpp"

namespace parda::config {

/// Which layer supplied a resolved value, in precedence order.
enum class Source { kCli, kEnv, kDefault };

/// Human-readable layer name ("command line", "environment", "default")
/// for diagnostics like "bad transport 'x' (from environment)".
const char* source_name(Source source) noexcept;

/// One resolved setting: the winning value plus the layer that won.
struct Resolved {
  std::string value;
  Source source = Source::kDefault;

  bool from_cli() const noexcept { return source == Source::kCli; }
  bool from_env() const noexcept { return source == Source::kEnv; }
};

/// Core precedence rule. `cli_value` is engaged only when the flag was
/// explicitly set (see CliParser::was_set); `env_var` may be nullptr to
/// skip the environment layer.
Resolved resolve(const std::optional<std::string>& cli_value,
                 const char* env_var, std::string default_value);

/// Convenience binding for CliParser string flags: consults
/// cli.was_set(flag_name) so a flag left at its default does NOT shadow
/// the environment variable.
Resolved resolve_flag(const CliParser& cli, const std::string& flag_name,
                      const std::string& flag_value, const char* env_var,
                      std::string default_value);

}  // namespace parda::config
