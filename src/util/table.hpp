// Fixed-width ASCII table printer used by the bench harnesses to emit the
// paper's tables and figure series in a readable, diffable form.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace parda {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Renders to the given stream (default stdout) with a header rule.
  void print(std::FILE* out = stdout) const;

  /// Renders the same output as print() into a string.
  std::string str() const;

  /// Helpers for formatting numeric cells.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt_u64(unsigned long long v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace parda
