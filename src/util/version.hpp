// Library version, bumped with the release notes in README.md.
#pragma once

namespace parda {

inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr int kVersionPatch = 0;
inline constexpr const char* kVersionString = "1.0.0";

}  // namespace parda
