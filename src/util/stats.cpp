#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace parda {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stdev(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double median(std::vector<double> xs) noexcept {
  return percentile(std::move(xs), 50.0);
}

double percentile(std::vector<double> xs, double p) noexcept {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  const double pos = (p / 100.0) * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double geomean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) {
    PARDA_DCHECK(x > 0.0);
    acc += std::log(x);
  }
  return std::exp(acc / static_cast<double>(xs.size()));
}

std::string with_commas(unsigned long long value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t first_group = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - first_group) % 3 == 0 && i >= first_group) out += ',';
    out += digits[i];
  }
  return out;
}

std::string words_human(unsigned long long words) {
  if (words >= (1ULL << 30) && words % (1ULL << 30) == 0)
    return std::to_string(words >> 30) + "Gw";
  if (words >= (1ULL << 20) && words % (1ULL << 20) == 0)
    return std::to_string(words >> 20) + "Mw";
  if (words >= (1ULL << 10) && words % (1ULL << 10) == 0)
    return std::to_string(words >> 10) + "Kw";
  return std::to_string(words) + "w";
}

}  // namespace parda
