// Wall-clock and CPU timers used by the benchmark harnesses and the comm
// runtime's per-rank busy-time accounting.
#pragma once

#include <chrono>
#include <ctime>

namespace parda {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Per-thread CPU-time stopwatch (CLOCK_THREAD_CPUTIME_ID). Used to charge
/// each simulated rank only for its own work so parallel-scaling figures can
/// be reproduced on a single-core host via critical-path accounting.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() noexcept : start_(now()) {}

  void reset() noexcept { start_ = now(); }

  double seconds() const noexcept { return now() - start_; }

 private:
  static double now() noexcept {
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }
  double start_;
};

}  // namespace parda
