// Minimal JSON support for the observability layer and histogram
// serialization: an append-style writer and a small recursive-descent
// parser — enough for the "parda.metrics.v1" / "parda.histogram.v1" /
// chrome://tracing schemas without an external dependency.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace parda::json {

/// Malformed JSON input (parse) or structural misuse (typed accessors).
class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Append-style JSON writer. Commas and key/value structure are handled by
/// the begin/end calls; strings are escaped.
class Writer {
 public:
  Writer& begin_object();
  Writer& end_object();
  Writer& begin_array();
  Writer& end_array();
  /// Must be called inside an object, before each value.
  Writer& key(std::string_view k);
  Writer& value(std::string_view s);
  Writer& value(const char* s) { return value(std::string_view(s)); }
  Writer& value(std::uint64_t v);
  Writer& value(std::int64_t v);
  Writer& value(int v) { return value(static_cast<std::int64_t>(v)); }
  Writer& value(double v);
  Writer& value(bool v);
  Writer& null();
  /// Splices pre-rendered JSON in value position verbatim (no escaping).
  /// The caller owns the well-formedness of `json` — used to embed one
  /// writer's document (e.g. a metrics snapshot) inside another.
  Writer& raw(std::string_view json);

  const std::string& str() const noexcept { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void comma();
  std::string out_;
  std::vector<bool> need_comma_;  // one entry per open container
};

void append_escaped(std::string& out, std::string_view s);

/// A parsed JSON value. Numbers keep their raw text so u64 counts survive
/// without a double round-trip.
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  std::string text;  // string contents, or raw number text
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;  // insertion order

  bool is_object() const noexcept { return kind == Kind::kObject; }
  bool is_array() const noexcept { return kind == Kind::kArray; }
  bool is_number() const noexcept { return kind == Kind::kNumber; }
  bool is_string() const noexcept { return kind == Kind::kString; }

  /// Object member lookup; nullptr if absent or not an object.
  const Value* find(std::string_view key) const noexcept;
  /// Object member access; throws JsonError if absent.
  const Value& at(std::string_view key) const;

  std::uint64_t as_u64() const;
  std::int64_t as_i64() const;
  double as_double() const;
  const std::string& as_string() const;
};

/// Parses one JSON document (throws JsonError on malformed input or
/// trailing garbage).
Value parse(std::string_view text);

}  // namespace parda::json
