#include "util/cli.hpp"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace parda {

void usage_error(const char* fmt, ...) {
  std::fputs("error: ", stderr);
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(stderr, fmt, ap);
  va_end(ap);
  std::fputc('\n', stderr);
  std::exit(kExitUsage);
}

CliParser::CliParser(std::string program_description)
    : description_(std::move(program_description)) {}

void CliParser::add_flag(const std::string& name, std::string* value,
                         const std::string& help) {
  flags_.push_back({name, Kind::kString, value, help});
}

void CliParser::add_flag(const std::string& name, std::uint64_t* value,
                         const std::string& help) {
  flags_.push_back({name, Kind::kUint, value, help});
}

void CliParser::add_flag(const std::string& name, double* value,
                         const std::string& help) {
  flags_.push_back({name, Kind::kDouble, value, help});
}

void CliParser::add_flag(const std::string& name, bool* value,
                         const std::string& help) {
  flags_.push_back({name, Kind::kBool, value, help});
}

void CliParser::usage_and_exit(int code) const {
  std::fprintf(stderr, "%s\n\nusage: %s [flags]\n", description_.c_str(),
               program_.c_str());
  for (const Flag& f : flags_) {
    std::fprintf(stderr, "  --%-18s %s\n", f.name.c_str(), f.help.c_str());
  }
  std::exit(code);
}

bool CliParser::was_set(const std::string& name) const {
  for (const std::string& n : set_names_) {
    if (n == name) return true;
  }
  return false;
}

const CliParser::Flag* CliParser::find(const std::string& name) const {
  for (const Flag& f : flags_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

void CliParser::assign(const Flag& flag, const std::string& value) const {
  char* end = nullptr;
  switch (flag.kind) {
    case Kind::kString:
      *static_cast<std::string*>(flag.target) = value;
      break;
    case Kind::kUint:
      // strtoull silently wraps negatives; reject them (and any trailing
      // garbage) so "--procs=-4" is a usage error, not 2^64-4 ranks.
      if (value.empty() || value[0] == '-') {
        std::fprintf(stderr, "flag --%s needs a non-negative integer, got "
                             "'%s'\n",
                     flag.name.c_str(), value.c_str());
        usage_and_exit(kExitUsage);
      }
      *static_cast<std::uint64_t*>(flag.target) =
          std::strtoull(value.c_str(), &end, 0);
      if (end == value.c_str() || *end != '\0') {
        std::fprintf(stderr, "flag --%s needs an integer, got '%s'\n",
                     flag.name.c_str(), value.c_str());
        usage_and_exit(kExitUsage);
      }
      break;
    case Kind::kDouble:
      *static_cast<double*>(flag.target) = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        std::fprintf(stderr, "flag --%s needs a number, got '%s'\n",
                     flag.name.c_str(), value.c_str());
        usage_and_exit(kExitUsage);
      }
      break;
    case Kind::kBool:
      if (value.empty() || value == "1" || value == "true" || value == "yes") {
        *static_cast<bool*>(flag.target) = true;
      } else if (value == "0" || value == "false" || value == "no") {
        *static_cast<bool*>(flag.target) = false;
      } else {
        std::fprintf(stderr, "flag --%s needs a boolean, got '%s'\n",
                     flag.name.c_str(), value.c_str());
        usage_and_exit(kExitUsage);
      }
      break;
  }
}

void CliParser::parse(int argc, char** argv) {
  program_ = argc > 0 ? argv[0] : "prog";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") usage_and_exit(0);
    if (arg.rfind("--", 0) != 0) {
      positionals_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool have_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      have_value = true;
    }
    const Flag* flag = find(name);
    if (flag == nullptr) {
      std::fprintf(stderr, "unknown flag --%s\n", name.c_str());
      usage_and_exit(kExitUsage);
    }
    if (!have_value && flag->kind != Kind::kBool) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag --%s requires a value\n", name.c_str());
        usage_and_exit(kExitUsage);
      }
      value = argv[++i];
    }
    assign(*flag, value);
    set_names_.push_back(name);
  }
}

}  // namespace parda
