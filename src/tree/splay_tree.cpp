#include "tree/splay_tree.hpp"

#include "util/check.hpp"

namespace parda {

std::uint32_t SplayTree::alloc_node(Timestamp ts, Addr addr) {
  std::uint32_t n;
  if (!free_list_.empty()) {
    n = free_list_.back();
    free_list_.pop_back();
  } else {
    PARDA_CHECK(nodes_.size() < kNull);
    n = static_cast<std::uint32_t>(nodes_.size());
    nodes_.emplace_back();
  }
  nodes_[n] = Node{ts, addr, kNull, kNull, kNull, 1};
  return n;
}

void SplayTree::free_node(std::uint32_t n) noexcept {
  free_list_.push_back(n);
}

void SplayTree::update(std::uint32_t n) noexcept {
  Node& node = nodes_[n];
  node.weight = 1 + weight_of(node.left) + weight_of(node.right);
}

void SplayTree::rotate(std::uint32_t x) noexcept {
  ++rotations_;
  const std::uint32_t p = nodes_[x].parent;
  const std::uint32_t g = nodes_[p].parent;
  if (nodes_[p].left == x) {
    nodes_[p].left = nodes_[x].right;
    if (nodes_[x].right != kNull) nodes_[nodes_[x].right].parent = p;
    nodes_[x].right = p;
  } else {
    nodes_[p].right = nodes_[x].left;
    if (nodes_[x].left != kNull) nodes_[nodes_[x].left].parent = p;
    nodes_[x].left = p;
  }
  nodes_[p].parent = x;
  nodes_[x].parent = g;
  if (g != kNull) {
    if (nodes_[g].left == p) {
      nodes_[g].left = x;
    } else {
      nodes_[g].right = x;
    }
  } else {
    root_ = x;
  }
  update(p);
  update(x);
}

void SplayTree::splay(std::uint32_t x) noexcept {
  ++splays_;
  while (nodes_[x].parent != kNull) {
    const std::uint32_t p = nodes_[x].parent;
    const std::uint32_t g = nodes_[p].parent;
    if (g != kNull) {
      const bool zigzig = (nodes_[g].left == p) == (nodes_[p].left == x);
      if (zigzig) {
        rotate(p);
      } else {
        rotate(x);
      }
    }
    rotate(x);
  }
}

std::uint32_t SplayTree::descend(Timestamp ts,
                                 std::uint32_t& last_visited) const noexcept {
  std::uint32_t cur = root_;
  last_visited = kNull;
  while (cur != kNull) {
    last_visited = cur;
    const Node& node = nodes_[cur];
    if (ts == node.ts) return cur;
    cur = ts < node.ts ? node.left : node.right;
  }
  return kNull;
}

void SplayTree::insert(Timestamp ts, Addr addr) {
  const std::uint32_t n = alloc_node(ts, addr);
  if (root_ == kNull) {
    root_ = n;
    ++size_;
    return;
  }
  std::uint32_t cur = root_;
  while (true) {
    Node& node = nodes_[cur];
    PARDA_DCHECK(node.ts != ts);
    ++node.weight;  // new node lands in this subtree
    std::uint32_t& child = ts < node.ts ? node.left : node.right;
    if (child == kNull) {
      child = n;
      nodes_[n].parent = cur;
      break;
    }
    cur = child;
  }
  ++size_;
  splay(n);
}

std::uint64_t SplayTree::count_greater(Timestamp ts) {
  std::uint32_t last = kNull;
  const std::uint32_t found = descend(ts, last);
  if (last == kNull) return 0;  // empty tree
  // Splay the deepest node visited; this is the amortized-O(log n) access
  // that pays for the search even on misses.
  splay(found != kNull ? found : last);
  const Node& root = nodes_[root_];
  std::uint64_t count = weight_of(root.right);
  // After splaying, root is ts itself, or its predecessor/successor when ts
  // is absent; in all cases everything strictly greater than ts is the
  // right subtree, plus the root when the root's key itself exceeds ts.
  if (root.ts > ts) ++count;
  return count;
}

void SplayTree::remove_root() {
  const std::uint32_t old_root = root_;
  const std::uint32_t left = nodes_[old_root].left;
  const std::uint32_t right = nodes_[old_root].right;
  if (left == kNull) {
    root_ = right;
    if (right != kNull) nodes_[right].parent = kNull;
  } else {
    nodes_[left].parent = kNull;
    // Splay the maximum of the left subtree to its root; it then has no
    // right child and adopts the old right subtree.
    std::uint32_t m = left;
    while (nodes_[m].right != kNull) m = nodes_[m].right;
    root_ = left;
    splay(m);
    PARDA_DCHECK(nodes_[m].right == kNull);
    nodes_[m].right = right;
    if (right != kNull) nodes_[right].parent = m;
    update(m);
  }
  free_node(old_root);
  --size_;
}

bool SplayTree::erase(Timestamp ts) {
  std::uint32_t last = kNull;
  const std::uint32_t found = descend(ts, last);
  if (found == kNull) {
    if (last != kNull) splay(last);
    return false;
  }
  splay(found);
  remove_root();
  return true;
}

std::uint32_t SplayTree::leftmost(std::uint32_t n) const noexcept {
  while (nodes_[n].left != kNull) n = nodes_[n].left;
  return n;
}

TreeEntry SplayTree::oldest() const {
  PARDA_CHECK(root_ != kNull);
  const Node& node = nodes_[leftmost(root_)];
  return TreeEntry{node.ts, node.addr};
}

TreeEntry SplayTree::pop_oldest() {
  PARDA_CHECK(root_ != kNull);
  const std::uint32_t n = leftmost(root_);
  const TreeEntry entry{nodes_[n].ts, nodes_[n].addr};
  splay(n);
  remove_root();
  return entry;
}

void SplayTree::clear() noexcept {
  nodes_.clear();
  free_list_.clear();
  root_ = kNull;
  size_ = 0;
}

void SplayTree::reserve(std::size_t n) { nodes_.reserve(n); }

bool SplayTree::validate() const {
  if (root_ == kNull) return size_ == 0;
  if (nodes_[root_].parent != kNull) return false;
  // Iterative subtree check with an explicit stack.
  struct Frame {
    std::uint32_t node;
    bool expanded;
  };
  std::vector<Frame> stack{{root_, false}};
  std::size_t visited = 0;
  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();
    const Node& node = nodes_[frame.node];
    if (!frame.expanded) {
      ++visited;
      if (node.weight !=
          1 + weight_of(node.left) + weight_of(node.right)) {
        return false;
      }
      for (std::uint32_t child : {node.left, node.right}) {
        if (child == kNull) continue;
        if (nodes_[child].parent != frame.node) return false;
        if (child == node.left && nodes_[child].ts >= node.ts) return false;
        if (child == node.right && nodes_[child].ts <= node.ts) return false;
        stack.push_back({child, false});
      }
    }
  }
  // BST order across whole tree: verified via for_each monotonicity.
  Timestamp prev = 0;
  bool first = true;
  bool ordered = true;
  for_each([&](TreeEntry e) {
    if (!first && e.ts <= prev) ordered = false;
    prev = e.ts;
    first = false;
  });
  return ordered && visited == size_;
}

}  // namespace parda
