// Treap order-statistic engine: randomized balance via deterministic
// per-timestamp priorities (mix64 of the key), implemented with split/merge.
// Included as a third independent engine for cross-checking and for the
// tree-engine ablation bench (DESIGN.md A1).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "tree/order_stat_tree.hpp"
#include "util/types.hpp"

namespace parda {

class Treap {
 public:
  Treap() = default;

  void insert(Timestamp ts, Addr addr);
  bool erase(Timestamp ts);
  std::uint64_t count_greater(Timestamp ts) const noexcept;
  std::uint64_t count_greater(Timestamp ts) noexcept {
    return std::as_const(*this).count_greater(ts);
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  TreeEntry oldest() const;
  TreeEntry pop_oldest();

  void clear() noexcept;
  void reserve(std::size_t n);

  template <typename Fn>
  void for_each(Fn&& fn) const {
    std::vector<std::uint32_t> stack;
    std::uint32_t cur = root_;
    while (cur != kNull || !stack.empty()) {
      while (cur != kNull) {
        stack.push_back(cur);
        cur = nodes_[cur].left;
      }
      cur = stack.back();
      stack.pop_back();
      fn(TreeEntry{nodes_[cur].ts, nodes_[cur].addr});
      cur = nodes_[cur].right;
    }
  }

  bool validate() const;

 private:
  static constexpr std::uint32_t kNull = 0xFFFFFFFFu;

  struct Node {
    Timestamp ts;
    Addr addr;
    std::uint64_t priority;
    std::uint32_t left;
    std::uint32_t right;
    std::uint64_t weight;
  };

  std::uint32_t alloc_node(Timestamp ts, Addr addr);
  std::uint64_t weight_of(std::uint32_t n) const noexcept {
    return n == kNull ? 0 : nodes_[n].weight;
  }
  void update(std::uint32_t n) noexcept;
  /// Splits into (< ts) and (>= ts).
  void split(std::uint32_t n, Timestamp ts, std::uint32_t& lo,
             std::uint32_t& hi);
  std::uint32_t merge(std::uint32_t lo, std::uint32_t hi);
  bool validate_impl(std::uint32_t n) const;

  std::vector<Node> nodes_;
  std::vector<std::uint32_t> free_list_;
  std::uint32_t root_ = kNull;
  std::size_t size_ = 0;
};

static_assert(OrderStatTree<Treap>);

}  // namespace parda
