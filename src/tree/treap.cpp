#include "tree/treap.hpp"

#include "util/check.hpp"
#include "util/prng.hpp"

namespace parda {

std::uint32_t Treap::alloc_node(Timestamp ts, Addr addr) {
  std::uint32_t n;
  if (!free_list_.empty()) {
    n = free_list_.back();
    free_list_.pop_back();
  } else {
    PARDA_CHECK(nodes_.size() < kNull);
    n = static_cast<std::uint32_t>(nodes_.size());
    nodes_.emplace_back();
  }
  // Deterministic priority keeps runs reproducible while remaining
  // effectively random with respect to key order.
  nodes_[n] = Node{ts, addr, mix64(ts ^ 0x6a09e667f3bcc909ULL),
                   kNull,    kNull, 1};
  return n;
}

void Treap::update(std::uint32_t n) noexcept {
  Node& node = nodes_[n];
  node.weight = 1 + weight_of(node.left) + weight_of(node.right);
}

void Treap::split(std::uint32_t n, Timestamp ts, std::uint32_t& lo,
                  std::uint32_t& hi) {
  if (n == kNull) {
    lo = hi = kNull;
    return;
  }
  if (nodes_[n].ts < ts) {
    split(nodes_[n].right, ts, nodes_[n].right, hi);
    lo = n;
    update(n);
  } else {
    split(nodes_[n].left, ts, lo, nodes_[n].left);
    hi = n;
    update(n);
  }
}

std::uint32_t Treap::merge(std::uint32_t lo, std::uint32_t hi) {
  if (lo == kNull) return hi;
  if (hi == kNull) return lo;
  if (nodes_[lo].priority > nodes_[hi].priority) {
    nodes_[lo].right = merge(nodes_[lo].right, hi);
    update(lo);
    return lo;
  }
  nodes_[hi].left = merge(lo, nodes_[hi].left);
  update(hi);
  return hi;
}

void Treap::insert(Timestamp ts, Addr addr) {
  const std::uint32_t fresh = alloc_node(ts, addr);
  std::uint32_t lo = kNull;
  std::uint32_t hi = kNull;
  split(root_, ts, lo, hi);
  root_ = merge(merge(lo, fresh), hi);
  ++size_;
}

bool Treap::erase(Timestamp ts) {
  std::uint32_t lo = kNull;
  std::uint32_t mid_hi = kNull;
  split(root_, ts, lo, mid_hi);
  std::uint32_t mid = kNull;
  std::uint32_t hi = kNull;
  split(mid_hi, ts + 1, mid, hi);
  const bool erased = mid != kNull;
  if (erased) {
    PARDA_DCHECK(nodes_[mid].left == kNull && nodes_[mid].right == kNull);
    free_list_.push_back(mid);
    --size_;
  }
  root_ = merge(lo, hi);
  return erased;
}

std::uint64_t Treap::count_greater(Timestamp ts) const noexcept {
  std::uint64_t count = 0;
  std::uint32_t cur = root_;
  while (cur != kNull) {
    const Node& node = nodes_[cur];
    if (node.ts > ts) {
      count += 1 + weight_of(node.right);
      cur = node.left;
    } else {
      cur = node.right;
    }
  }
  return count;
}

TreeEntry Treap::oldest() const {
  PARDA_CHECK(root_ != kNull);
  std::uint32_t cur = root_;
  while (nodes_[cur].left != kNull) cur = nodes_[cur].left;
  return TreeEntry{nodes_[cur].ts, nodes_[cur].addr};
}

TreeEntry Treap::pop_oldest() {
  const TreeEntry entry = oldest();
  const bool erased = erase(entry.ts);
  PARDA_CHECK(erased);
  return entry;
}

void Treap::clear() noexcept {
  nodes_.clear();
  free_list_.clear();
  root_ = kNull;
  size_ = 0;
}

void Treap::reserve(std::size_t n) { nodes_.reserve(n); }

bool Treap::validate_impl(std::uint32_t n) const {
  if (n == kNull) return true;
  const Node& node = nodes_[n];
  if (node.weight != 1 + weight_of(node.left) + weight_of(node.right))
    return false;
  if (node.left != kNull && (nodes_[node.left].ts >= node.ts ||
                             nodes_[node.left].priority > node.priority))
    return false;
  if (node.right != kNull && (nodes_[node.right].ts <= node.ts ||
                              nodes_[node.right].priority > node.priority))
    return false;
  return validate_impl(node.left) && validate_impl(node.right);
}

bool Treap::validate() const {
  return weight_of(root_) == size_ && validate_impl(root_);
}

}  // namespace parda
