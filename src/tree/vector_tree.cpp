#include "tree/vector_tree.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace parda {

namespace {
struct TsLess {
  bool operator()(const TreeEntry& e, Timestamp ts) const {
    return e.ts < ts;
  }
  bool operator()(Timestamp ts, const TreeEntry& e) const {
    return ts < e.ts;
  }
};
}  // namespace

void VectorTree::insert(Timestamp ts, Addr addr) {
  const auto it =
      std::lower_bound(entries_.begin(), entries_.end(), ts, TsLess{});
  PARDA_DCHECK(it == entries_.end() || it->ts != ts);
  entries_.insert(it, TreeEntry{ts, addr});
}

bool VectorTree::erase(Timestamp ts) {
  const auto it =
      std::lower_bound(entries_.begin(), entries_.end(), ts, TsLess{});
  if (it == entries_.end() || it->ts != ts) return false;
  entries_.erase(it);
  return true;
}

std::uint64_t VectorTree::count_greater(Timestamp ts) const noexcept {
  const auto it =
      std::upper_bound(entries_.begin(), entries_.end(), ts, TsLess{});
  return static_cast<std::uint64_t>(entries_.end() - it);
}

TreeEntry VectorTree::oldest() const {
  PARDA_CHECK(!entries_.empty());
  return entries_.front();
}

TreeEntry VectorTree::pop_oldest() {
  PARDA_CHECK(!entries_.empty());
  const TreeEntry entry = entries_.front();
  entries_.erase(entries_.begin());
  return entry;
}

bool VectorTree::validate() const {
  return std::is_sorted(
      entries_.begin(), entries_.end(),
      [](const TreeEntry& a, const TreeEntry& b) { return a.ts < b.ts; });
}

}  // namespace parda
