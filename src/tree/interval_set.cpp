#include "tree/interval_set.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace parda {

std::size_t IntervalSet::find_slot(std::uint64_t point) const noexcept {
  // First interval whose hi >= point.
  std::size_t lo = 0;
  std::size_t hi = intervals_.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (intervals_[mid].hi < point) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

bool IntervalSet::contains(std::uint64_t point) const noexcept {
  const std::size_t i = find_slot(point);
  return i < intervals_.size() && intervals_[i].lo <= point;
}

void IntervalSet::insert(std::uint64_t point) {
  PARDA_DCHECK(!contains(point));
  const std::size_t i = find_slot(point);
  const bool joins_right =
      i < intervals_.size() && intervals_[i].lo == point + 1;
  const bool joins_left = i > 0 && intervals_[i - 1].hi + 1 == point;

  if (joins_left && joins_right) {
    // Bridge two intervals into one.
    intervals_[i - 1].hi = intervals_[i].hi;
    intervals_.erase(intervals_.begin() + static_cast<std::ptrdiff_t>(i));
    rebuild_prefix_from(i - 1);
  } else if (joins_left) {
    intervals_[i - 1].hi = point;
    rebuild_prefix_from(i);
  } else if (joins_right) {
    intervals_[i].lo = point;
    rebuild_prefix_from(i + 1);
  } else {
    intervals_.insert(intervals_.begin() + static_cast<std::ptrdiff_t>(i),
                      Interval{point, point});
    // Rebuild from i, not i+1: when the singleton is appended at the end
    // the prefix vector grows by one value-initialized slot whose correct
    // value must be computed here.
    rebuild_prefix_from(i);
  }
  ++total_;
}

void IntervalSet::rebuild_prefix_from(std::size_t index) {
  // prefix_[i] counts the points held by intervals_[0..i).
  prefix_.resize(intervals_.size());
  for (std::size_t i = index; i < intervals_.size(); ++i) {
    if (i == 0) {
      prefix_[0] = 0;
    } else {
      prefix_[i] = prefix_[i - 1] +
                   (intervals_[i - 1].hi - intervals_[i - 1].lo + 1);
    }
  }
}

std::uint64_t IntervalSet::count_in(std::uint64_t lo,
                                    std::uint64_t hi) const noexcept {
  if (lo > hi || intervals_.empty()) return 0;
  // count_below(x): points strictly below x.
  const auto count_below = [&](std::uint64_t x) -> std::uint64_t {
    const std::size_t i = find_slot(x);  // first interval with hi >= x
    if (i == intervals_.size()) return total_;
    std::uint64_t below = prefix_[i];
    if (intervals_[i].lo < x) below += x - intervals_[i].lo;
    return below;
  };
  const std::uint64_t upto_hi =
      hi == ~0ULL ? total_ : count_below(hi + 1);
  return upto_hi - count_below(lo);
}

bool IntervalSet::validate() const {
  if (prefix_.size() != intervals_.size()) return false;
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < intervals_.size(); ++i) {
    const Interval& iv = intervals_[i];
    if (iv.lo > iv.hi) return false;
    if (i > 0) {
      // Sorted, disjoint, and maximally merged (gap of at least one).
      if (intervals_[i - 1].hi + 1 >= iv.lo) return false;
    }
    if (prefix_[i] != running) return false;
    running += iv.hi - iv.lo + 1;
  }
  return running == total_;
}

}  // namespace parda
