// IntervalSet: a set of integer points stored as sorted, disjoint, merged
// intervals with prefix counts — the "hole" bookkeeping behind the
// interval-based reuse distance algorithm of Almási, Caşcaval & Padua
// (paper reference [1]).
//
// Points are inserted once each (timestamps of dead last-accesses) and
// queried by range count. When reuse is local, consecutive holes coalesce
// and the interval count stays far below the point count, which is the
// algorithm's compression insight; the worst case degrades to O(k) per
// insert for k intervals.
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace parda {

class IntervalSet {
 public:
  struct Interval {
    std::uint64_t lo;
    std::uint64_t hi;  // inclusive

    friend bool operator==(const Interval&, const Interval&) = default;
  };

  /// Inserts a point; must not already be present.
  void insert(std::uint64_t point);

  /// True iff the point is in the set.
  bool contains(std::uint64_t point) const noexcept;

  /// Number of points in [lo, hi]; 0 for an empty range (lo > hi).
  std::uint64_t count_in(std::uint64_t lo, std::uint64_t hi) const noexcept;

  /// Total points.
  std::uint64_t size() const noexcept { return total_; }

  /// Number of stored intervals (the compression measure).
  std::size_t interval_count() const noexcept { return intervals_.size(); }

  const std::vector<Interval>& intervals() const noexcept {
    return intervals_;
  }

  void clear() noexcept {
    intervals_.clear();
    prefix_.clear();
    total_ = 0;
  }

  /// Checks ordering, disjointness, merging, and prefix sums.
  bool validate() const;

 private:
  /// Index of the first interval with hi >= point (search anchor).
  std::size_t find_slot(std::uint64_t point) const noexcept;
  void rebuild_prefix_from(std::size_t index);

  std::vector<Interval> intervals_;  // sorted by lo, disjoint, maximal
  std::vector<std::uint64_t> prefix_;  // points in intervals_[0..i-1]
  std::uint64_t total_ = 0;
};

}  // namespace parda
