// Fenwick (binary indexed) tree over trace positions — the substrate for
// the Bennett & Kruskal reuse distance algorithm (paper reference [2]).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace parda {

class FenwickTree {
 public:
  explicit FenwickTree(std::size_t size) : bits_(size + 1, 0) {}

  std::size_t size() const noexcept { return bits_.size() - 1; }

  /// Adds delta at position i (0-based).
  void add(std::size_t i, std::int64_t delta) {
    PARDA_DCHECK(i < size());
    for (std::size_t k = i + 1; k < bits_.size(); k += k & (~k + 1)) {
      bits_[k] += delta;
    }
  }

  /// Sum of positions [0, i] (0-based, inclusive).
  std::int64_t prefix_sum(std::size_t i) const {
    PARDA_DCHECK(i < size());
    std::int64_t sum = 0;
    for (std::size_t k = i + 1; k > 0; k -= k & (~k + 1)) {
      sum += bits_[k];
    }
    return sum;
  }

  /// Sum of positions [lo, hi] inclusive; 0 for an empty range.
  std::int64_t range_sum(std::size_t lo, std::size_t hi) const {
    if (lo > hi) return 0;
    return prefix_sum(hi) - (lo == 0 ? 0 : prefix_sum(lo - 1));
  }

  /// Total sum.
  std::int64_t total() const {
    return size() == 0 ? 0 : prefix_sum(size() - 1);
  }

  void clear() { std::fill(bits_.begin(), bits_.end(), 0); }

 private:
  std::vector<std::int64_t> bits_;
};

}  // namespace parda
