// AVL order-statistic engine — the structure of Olken's original sequential
// algorithm [13]. Strictly balanced, so count_greater is worst-case
// O(log n) with no restructuring on queries (unlike the splay engine).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "tree/order_stat_tree.hpp"
#include "util/types.hpp"

namespace parda {

class AvlTree {
 public:
  AvlTree() = default;

  void insert(Timestamp ts, Addr addr);
  bool erase(Timestamp ts);
  std::uint64_t count_greater(Timestamp ts) const noexcept;
  // Non-const overload so AvlTree satisfies OrderStatTree alongside the
  // splay engine, whose queries restructure.
  std::uint64_t count_greater(Timestamp ts) noexcept {
    return std::as_const(*this).count_greater(ts);
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  TreeEntry oldest() const;
  TreeEntry pop_oldest();

  void clear() noexcept;
  void reserve(std::size_t n);

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for_each_impl(root_, fn);
  }

  bool validate() const;

  /// Height of the root (0 for empty); exposed for balance tests.
  int height() const noexcept { return height_of(root_); }

 private:
  static constexpr std::uint32_t kNull = 0xFFFFFFFFu;

  struct Node {
    Timestamp ts;
    Addr addr;
    std::uint32_t left;
    std::uint32_t right;
    std::uint64_t weight;
    std::int32_t height;
  };

  std::uint32_t alloc_node(Timestamp ts, Addr addr);
  std::uint64_t weight_of(std::uint32_t n) const noexcept {
    return n == kNull ? 0 : nodes_[n].weight;
  }
  std::int32_t height_of(std::uint32_t n) const noexcept {
    return n == kNull ? 0 : nodes_[n].height;
  }
  void update(std::uint32_t n) noexcept;
  std::int32_t balance_of(std::uint32_t n) const noexcept;
  std::uint32_t rotate_left(std::uint32_t n) noexcept;
  std::uint32_t rotate_right(std::uint32_t n) noexcept;
  std::uint32_t rebalance(std::uint32_t n) noexcept;
  std::uint32_t insert_impl(std::uint32_t n, std::uint32_t fresh);
  std::uint32_t erase_impl(std::uint32_t n, Timestamp ts, bool& erased);
  std::uint32_t pop_min_impl(std::uint32_t n, std::uint32_t& min_node);
  bool validate_impl(std::uint32_t n, Timestamp lo, Timestamp hi,
                     bool has_lo, bool has_hi) const;

  template <typename Fn>
  void for_each_impl(std::uint32_t n, Fn& fn) const {
    if (n == kNull) return;
    for_each_impl(nodes_[n].left, fn);
    fn(TreeEntry{nodes_[n].ts, nodes_[n].addr});
    for_each_impl(nodes_[n].right, fn);
  }

  std::vector<Node> nodes_;
  std::vector<std::uint32_t> free_list_;
  std::uint32_t root_ = kNull;
  std::size_t size_ = 0;
};

static_assert(OrderStatTree<AvlTree>);

}  // namespace parda
