// The order-statistic tree interface shared by all Parda tree engines.
//
// A tree holds one entry per *distinct* data address currently tracked,
// keyed by the timestamp of that address's most recent reference, with
// subtree weights so that "how many distinct addresses were referenced
// after time t" — the reuse distance query of Algorithm 2 in the paper —
// resolves in O(log size) node visits.
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>

#include "util/types.hpp"

namespace parda {

/// One tree entry: a distinct address and its last-reference time.
struct TreeEntry {
  Timestamp ts;
  Addr addr;

  friend bool operator==(const TreeEntry&, const TreeEntry&) = default;
};

/// Concept satisfied by SplayTree, AvlTree, Treap, and VectorTree.
///
/// Semantics:
///  - insert(ts, addr): ts must not already be present.
///  - erase(ts): removes the entry with that timestamp; false if absent.
///  - count_greater(ts): number of entries with timestamp strictly greater
///    than ts; ts need not be present. Non-const because the splay engine
///    restructures on every query.
///  - oldest()/pop_oldest(): the entry with the minimum timestamp — the LRU
///    victim used by the bounded algorithm (Algorithm 7).
template <typename T>
concept OrderStatTree = requires(T t, const T ct, Timestamp ts, Addr a) {
  { t.insert(ts, a) } -> std::same_as<void>;
  { t.erase(ts) } -> std::same_as<bool>;
  { t.count_greater(ts) } -> std::convertible_to<std::uint64_t>;
  { ct.size() } -> std::convertible_to<std::size_t>;
  { ct.empty() } -> std::same_as<bool>;
  { ct.oldest() } -> std::same_as<TreeEntry>;
  { t.pop_oldest() } -> std::same_as<TreeEntry>;
  { t.clear() } -> std::same_as<void>;
  { ct.validate() } -> std::same_as<bool>;
};

}  // namespace parda
