// VectorTree: a sorted-vector "tree" used as the correctness oracle in
// property tests and as the list-based baseline of Mattson et al. [12].
// Lookups are O(log n); insert/erase are O(n) memmoves.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "tree/order_stat_tree.hpp"
#include "util/types.hpp"

namespace parda {

class VectorTree {
 public:
  VectorTree() = default;

  void insert(Timestamp ts, Addr addr);
  bool erase(Timestamp ts);
  std::uint64_t count_greater(Timestamp ts) const noexcept;
  std::uint64_t count_greater(Timestamp ts) noexcept {
    return std::as_const(*this).count_greater(ts);
  }

  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }

  TreeEntry oldest() const;
  TreeEntry pop_oldest();

  void clear() noexcept { entries_.clear(); }
  void reserve(std::size_t n) { entries_.reserve(n); }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const TreeEntry& e : entries_) fn(e);
  }

  bool validate() const;

 private:
  std::vector<TreeEntry> entries_;  // ascending by ts
};

static_assert(OrderStatTree<VectorTree>);

}  // namespace parda
