#include "tree/avl_tree.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace parda {

std::uint32_t AvlTree::alloc_node(Timestamp ts, Addr addr) {
  std::uint32_t n;
  if (!free_list_.empty()) {
    n = free_list_.back();
    free_list_.pop_back();
  } else {
    PARDA_CHECK(nodes_.size() < kNull);
    n = static_cast<std::uint32_t>(nodes_.size());
    nodes_.emplace_back();
  }
  nodes_[n] = Node{ts, addr, kNull, kNull, 1, 1};
  return n;
}

void AvlTree::update(std::uint32_t n) noexcept {
  Node& node = nodes_[n];
  node.weight = 1 + weight_of(node.left) + weight_of(node.right);
  node.height = 1 + std::max(height_of(node.left), height_of(node.right));
}

std::int32_t AvlTree::balance_of(std::uint32_t n) const noexcept {
  return height_of(nodes_[n].left) - height_of(nodes_[n].right);
}

std::uint32_t AvlTree::rotate_left(std::uint32_t n) noexcept {
  const std::uint32_t r = nodes_[n].right;
  nodes_[n].right = nodes_[r].left;
  nodes_[r].left = n;
  update(n);
  update(r);
  return r;
}

std::uint32_t AvlTree::rotate_right(std::uint32_t n) noexcept {
  const std::uint32_t l = nodes_[n].left;
  nodes_[n].left = nodes_[l].right;
  nodes_[l].right = n;
  update(n);
  update(l);
  return l;
}

std::uint32_t AvlTree::rebalance(std::uint32_t n) noexcept {
  update(n);
  const std::int32_t balance = balance_of(n);
  if (balance > 1) {
    if (balance_of(nodes_[n].left) < 0) {
      nodes_[n].left = rotate_left(nodes_[n].left);
    }
    return rotate_right(n);
  }
  if (balance < -1) {
    if (balance_of(nodes_[n].right) > 0) {
      nodes_[n].right = rotate_right(nodes_[n].right);
    }
    return rotate_left(n);
  }
  return n;
}

std::uint32_t AvlTree::insert_impl(std::uint32_t n, std::uint32_t fresh) {
  if (n == kNull) return fresh;
  PARDA_DCHECK(nodes_[fresh].ts != nodes_[n].ts);
  if (nodes_[fresh].ts < nodes_[n].ts) {
    nodes_[n].left = insert_impl(nodes_[n].left, fresh);
  } else {
    nodes_[n].right = insert_impl(nodes_[n].right, fresh);
  }
  return rebalance(n);
}

void AvlTree::insert(Timestamp ts, Addr addr) {
  const std::uint32_t fresh = alloc_node(ts, addr);
  root_ = insert_impl(root_, fresh);
  ++size_;
}

std::uint32_t AvlTree::pop_min_impl(std::uint32_t n,
                                    std::uint32_t& min_node) {
  if (nodes_[n].left == kNull) {
    min_node = n;
    return nodes_[n].right;
  }
  nodes_[n].left = pop_min_impl(nodes_[n].left, min_node);
  return rebalance(n);
}

std::uint32_t AvlTree::erase_impl(std::uint32_t n, Timestamp ts,
                                  bool& erased) {
  if (n == kNull) return kNull;
  if (ts < nodes_[n].ts) {
    nodes_[n].left = erase_impl(nodes_[n].left, ts, erased);
  } else if (ts > nodes_[n].ts) {
    nodes_[n].right = erase_impl(nodes_[n].right, ts, erased);
  } else {
    erased = true;
    const std::uint32_t left = nodes_[n].left;
    const std::uint32_t right = nodes_[n].right;
    free_list_.push_back(n);
    if (right == kNull) return left;
    if (left == kNull) return right;
    std::uint32_t successor = kNull;
    const std::uint32_t new_right = pop_min_impl(right, successor);
    nodes_[successor].left = left;
    nodes_[successor].right = new_right;
    return rebalance(successor);
  }
  return rebalance(n);
}

bool AvlTree::erase(Timestamp ts) {
  bool erased = false;
  root_ = erase_impl(root_, ts, erased);
  if (erased) --size_;
  return erased;
}

std::uint64_t AvlTree::count_greater(Timestamp ts) const noexcept {
  std::uint64_t count = 0;
  std::uint32_t cur = root_;
  while (cur != kNull) {
    const Node& node = nodes_[cur];
    if (node.ts > ts) {
      count += 1 + weight_of(node.right);
      cur = node.left;
    } else {
      cur = node.right;
    }
  }
  return count;
}

TreeEntry AvlTree::oldest() const {
  PARDA_CHECK(root_ != kNull);
  std::uint32_t cur = root_;
  while (nodes_[cur].left != kNull) cur = nodes_[cur].left;
  return TreeEntry{nodes_[cur].ts, nodes_[cur].addr};
}

TreeEntry AvlTree::pop_oldest() {
  const TreeEntry entry = oldest();
  const bool erased = erase(entry.ts);
  PARDA_CHECK(erased);
  return entry;
}

void AvlTree::clear() noexcept {
  nodes_.clear();
  free_list_.clear();
  root_ = kNull;
  size_ = 0;
}

void AvlTree::reserve(std::size_t n) { nodes_.reserve(n); }

bool AvlTree::validate_impl(std::uint32_t n, Timestamp lo, Timestamp hi,
                            bool has_lo, bool has_hi) const {
  if (n == kNull) return true;
  const Node& node = nodes_[n];
  if (has_lo && node.ts <= lo) return false;
  if (has_hi && node.ts >= hi) return false;
  if (node.weight != 1 + weight_of(node.left) + weight_of(node.right))
    return false;
  if (node.height !=
      1 + std::max(height_of(node.left), height_of(node.right)))
    return false;
  if (std::abs(height_of(node.left) - height_of(node.right)) > 1)
    return false;
  return validate_impl(node.left, lo, node.ts, has_lo, true) &&
         validate_impl(node.right, node.ts, hi, true, has_hi);
}

bool AvlTree::validate() const {
  if (root_ == kNull) return size_ == 0;
  return weight_of(root_) == size_ && validate_impl(root_, 0, 0, false, false);
}

}  // namespace parda
