// Splay-tree order-statistic engine — the paper's core analysis structure
// (Sleator & Tarjan [17], as used by Sugumar & Abraham [18] and the original
// Parda implementation).
//
// Nodes live in a contiguous pool addressed by 32-bit indices with a free
// list, so steady-state analysis performs no heap allocation per reference.
// Every successful lookup splays the accessed node to the root, which gives
// the working-set theorem behaviour that makes splay trees well suited to
// reuse distance analysis: recently referenced timestamps are near the root.
#pragma once

#include <cstdint>
#include <vector>

#include "tree/order_stat_tree.hpp"
#include "util/types.hpp"

namespace parda {

class SplayTree {
 public:
  SplayTree() = default;

  void insert(Timestamp ts, Addr addr);
  bool erase(Timestamp ts);
  std::uint64_t count_greater(Timestamp ts);

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  TreeEntry oldest() const;
  TreeEntry pop_oldest();

  void clear() noexcept;
  void reserve(std::size_t n);

  /// In-order (ascending timestamp) traversal; fn(TreeEntry). Allocation-
  /// free: walks parent links (in-order successor) instead of keeping an
  /// explicit stack — this runs in every merge round, so a per-call vector
  /// would churn the heap np times per phase.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    if (root_ == kNull) return;
    std::uint32_t cur = leftmost(root_);
    while (cur != kNull) {
      fn(TreeEntry{nodes_[cur].ts, nodes_[cur].addr});
      if (nodes_[cur].right != kNull) {
        cur = leftmost(nodes_[cur].right);
      } else {
        // Climb until we leave a left subtree; that ancestor is next.
        std::uint32_t up = nodes_[cur].parent;
        while (up != kNull && nodes_[up].right == cur) {
          cur = up;
          up = nodes_[up].parent;
        }
        cur = up;
      }
    }
  }

  /// Checks BST ordering, subtree weights, and parent links.
  bool validate() const;

  /// Lifetime structural-work counters for the observability layer (plain
  /// increments; the tree is single-threaded per rank).
  std::uint64_t rotation_count() const noexcept { return rotations_; }
  std::uint64_t splay_count() const noexcept { return splays_; }

 private:
  static constexpr std::uint32_t kNull = 0xFFFFFFFFu;

  struct Node {
    Timestamp ts;
    Addr addr;
    std::uint32_t left;
    std::uint32_t right;
    std::uint32_t parent;
    std::uint64_t weight;  // subtree node count
  };

  std::uint32_t alloc_node(Timestamp ts, Addr addr);
  void free_node(std::uint32_t n) noexcept;
  std::uint64_t weight_of(std::uint32_t n) const noexcept {
    return n == kNull ? 0 : nodes_[n].weight;
  }
  void update(std::uint32_t n) noexcept;
  void rotate(std::uint32_t x) noexcept;
  void splay(std::uint32_t x) noexcept;
  /// Descends to ts; returns the node if found, else kNull, setting
  /// last_visited to the final node on the search path.
  std::uint32_t descend(Timestamp ts, std::uint32_t& last_visited) const
      noexcept;
  std::uint32_t leftmost(std::uint32_t n) const noexcept;
  void remove_root();

  std::vector<Node> nodes_;
  std::vector<std::uint32_t> free_list_;
  std::uint32_t root_ = kNull;
  std::size_t size_ = 0;
  std::uint64_t rotations_ = 0;
  std::uint64_t splays_ = 0;
};

static_assert(OrderStatTree<SplayTree>);

}  // namespace parda
