// Umbrella header: the full public API of the Parda reproduction.
//
//   #include "parda.hpp"
//
// pulls in the analysis engines (sequential and parallel), trace plumbing,
// workload generators, cache simulators, and the applications built on
// reuse distance histograms. Individual headers remain includable on
// their own for faster builds.
#pragma once

// Core parallel algorithm (Algorithms 3-7) and per-rank state.
#include "core/file_analysis.hpp" // IWYU pragma: export
#include "core/messages.hpp"      // IWYU pragma: export
#include "core/parda.hpp"         // IWYU pragma: export
#include "core/rank_state.hpp"    // IWYU pragma: export

// Sequential engines and the unified ReuseAnalyzer API.
#include "seq/analyzer.hpp"          // IWYU pragma: export
#include "seq/approx.hpp"            // IWYU pragma: export
#include "seq/bennett_kruskal.hpp"   // IWYU pragma: export
#include "seq/bounded.hpp"           // IWYU pragma: export
#include "seq/interval_analyzer.hpp" // IWYU pragma: export
#include "seq/naive.hpp"             // IWYU pragma: export
#include "seq/olken.hpp"             // IWYU pragma: export

// Histograms, miss-ratio curves, CSV reports.
#include "hist/histogram.hpp" // IWYU pragma: export
#include "hist/mrc.hpp"       // IWYU pragma: export
#include "hist/report.hpp"    // IWYU pragma: export

// Trace plumbing.
#include "trace/trace_compress.hpp" // IWYU pragma: export
#include "trace/trace_io.hpp"       // IWYU pragma: export
#include "trace/trace_pipe.hpp"     // IWYU pragma: export

// Observability: metrics registry and span tracer.
#include "obs/obs.hpp" // IWYU pragma: export

// Workloads and the instrumented VM.
#include "vm/assembler.hpp"       // IWYU pragma: export
#include "vm/machine.hpp"         // IWYU pragma: export
#include "vm/programs.hpp"        // IWYU pragma: export
#include "vm/tracer.hpp"          // IWYU pragma: export
#include "workload/generators.hpp" // IWYU pragma: export
#include "workload/parse.hpp"      // IWYU pragma: export
#include "workload/spec.hpp"       // IWYU pragma: export
#include "workload/workload.hpp"   // IWYU pragma: export

// Cache simulators.
#include "cachesim/hierarchy.hpp"      // IWYU pragma: export
#include "cachesim/lru_cache.hpp"      // IWYU pragma: export
#include "cachesim/set_assoc_cache.hpp" // IWYU pragma: export

// Applications.
#include "apps/miss_rate.hpp"     // IWYU pragma: export
#include "apps/online_mrc.hpp"    // IWYU pragma: export
#include "apps/partition.hpp"     // IWYU pragma: export
#include "apps/phase_detect.hpp"  // IWYU pragma: export
#include "apps/shared_cache.hpp"  // IWYU pragma: export
#include "apps/superpage.hpp"     // IWYU pragma: export
#include "apps/time_distance.hpp" // IWYU pragma: export

#include "util/version.hpp" // IWYU pragma: export
