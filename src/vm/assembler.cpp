#include "vm/assembler.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace parda::vm {

namespace {

struct Token {
  std::string text;
};

[[noreturn]] void fail(std::size_t line, const std::string& why) {
  throw std::invalid_argument("asm line " + std::to_string(line) + ": " +
                              why);
}

/// Splits a statement into whitespace/comma separated tokens, stripping
/// comments.
std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : line) {
    if (c == ';' || c == '#') break;
    if (std::isspace(static_cast<unsigned char>(c)) || c == ',') {
      if (!current.empty()) {
        tokens.push_back(std::move(current));
        current.clear();
      }
    } else {
      current += c;
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

bool is_integer(const std::string& s) {
  if (s.empty()) return false;
  std::size_t at = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (at == s.size()) return false;
  for (; at < s.size(); ++at) {
    if (!std::isdigit(static_cast<unsigned char>(s[at]))) return false;
  }
  return true;
}

std::uint8_t parse_reg(const std::string& token, std::size_t line) {
  if (token.size() < 2 || (token[0] != 'r' && token[0] != 'R') ||
      !is_integer(token.substr(1))) {
    fail(line, "expected register, got '" + token + "'");
  }
  const long n = std::strtol(token.c_str() + 1, nullptr, 10);
  if (n < 0 || n >= kNumRegs) {
    fail(line, "register out of range: '" + token + "'");
  }
  return static_cast<std::uint8_t>(n);
}

struct PendingLabel {
  std::size_t instr;  // which instruction's imm needs patching
  std::string label;
  std::size_t line;
};

struct OpSpec {
  Op op;
  int regs;       // leading register operands
  bool has_imm;   // trailing immediate (or label for branches/jumps)
  bool imm_is_target;  // immediate is a branch target (label allowed)
};

const std::unordered_map<std::string, OpSpec>& op_table() {
  static const std::unordered_map<std::string, OpSpec> table{
      {"halt", {Op::kHalt, 0, false, false}},
      {"movi", {Op::kMovi, 1, true, false}},
      {"mov", {Op::kMov, 2, false, false}},
      {"add", {Op::kAdd, 3, false, false}},
      {"addi", {Op::kAddi, 2, true, false}},
      {"mul", {Op::kMul, 3, false, false}},
      {"shr", {Op::kShr, 2, true, false}},
      {"load", {Op::kLoad, 2, true, false}},
      {"store", {Op::kStore, 2, true, false}},
      {"jmp", {Op::kJmp, 0, true, true}},
      {"bne", {Op::kBne, 2, true, true}},
      {"blt", {Op::kBlt, 2, true, true}},
  };
  return table;
}

}  // namespace

Program assemble(std::string_view source) {
  Program program;
  program.name = "asm";
  std::unordered_map<std::string, std::size_t> labels;
  std::vector<PendingLabel> pending;

  std::size_t line_no = 0;
  std::size_t at = 0;
  while (at <= source.size()) {
    const std::size_t end = source.find('\n', at);
    std::string_view line = source.substr(
        at, end == std::string_view::npos ? source.size() - at : end - at);
    at = end == std::string_view::npos ? source.size() + 1 : end + 1;
    ++line_no;

    std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty()) continue;

    // Labels (possibly several) prefix the statement.
    while (!tokens.empty() && tokens[0].back() == ':') {
      const std::string label = tokens[0].substr(0, tokens[0].size() - 1);
      if (label.empty()) fail(line_no, "empty label");
      if (!labels.emplace(label, program.code.size()).second) {
        fail(line_no, "duplicate label '" + label + "'");
      }
      tokens.erase(tokens.begin());
    }
    if (tokens.empty()) continue;

    const std::string& head = tokens[0];
    if (head == ".name") {
      if (tokens.size() != 2) fail(line_no, ".name takes one token");
      program.name = tokens[1];
      continue;
    }
    if (head == ".mem") {
      if (tokens.size() != 2 || !is_integer(tokens[1])) {
        fail(line_no, ".mem takes one integer");
      }
      program.memory_words = std::strtoull(tokens[1].c_str(), nullptr, 10);
      continue;
    }
    if (head == ".data") {
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        if (!is_integer(tokens[i])) {
          fail(line_no, ".data takes integers, got '" + tokens[i] + "'");
        }
        program.initial_memory.push_back(
            std::strtoll(tokens[i].c_str(), nullptr, 10));
      }
      continue;
    }
    if (head[0] == '.') fail(line_no, "unknown directive '" + head + "'");

    const auto spec_it = op_table().find(head);
    if (spec_it == op_table().end()) {
      fail(line_no, "unknown mnemonic '" + head + "'");
    }
    const OpSpec& spec = spec_it->second;
    const std::size_t expected =
        1 + static_cast<std::size_t>(spec.regs) + (spec.has_imm ? 1 : 0);
    if (tokens.size() != expected) {
      fail(line_no, "'" + head + "' expects " +
                        std::to_string(expected - 1) + " operands");
    }

    Instr instr;
    instr.op = spec.op;
    std::uint8_t* const reg_slots[] = {&instr.a, &instr.b, &instr.c};
    for (int r = 0; r < spec.regs; ++r) {
      *reg_slots[r] =
          parse_reg(tokens[1 + static_cast<std::size_t>(r)], line_no);
    }
    if (spec.has_imm) {
      const std::string& imm = tokens.back();
      if (is_integer(imm)) {
        instr.imm = std::strtoll(imm.c_str(), nullptr, 10);
      } else if (spec.imm_is_target) {
        pending.push_back(PendingLabel{program.code.size(), imm, line_no});
      } else {
        fail(line_no, "expected integer immediate, got '" + imm + "'");
      }
    }
    program.code.push_back(instr);
  }

  for (const PendingLabel& p : pending) {
    const auto it = labels.find(p.label);
    if (it == labels.end()) {
      fail(p.line, "undefined label '" + p.label + "'");
    }
    program.code[p.instr].imm = static_cast<std::int64_t>(it->second);
  }
  if (program.memory_words < program.initial_memory.size()) {
    program.memory_words = program.initial_memory.size();
  }
  return program;
}

Program assemble_file(const std::string& path) {
  struct Closer {
    void operator()(std::FILE* f) const noexcept {
      if (f != nullptr) std::fclose(f);
    }
  };
  std::unique_ptr<std::FILE, Closer> f(std::fopen(path.c_str(), "rb"));
  if (!f) {
    throw std::invalid_argument("cannot open assembly file: " + path);
  }
  std::string source;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f.get())) > 0) {
    source.append(buf, got);
  }
  return assemble(source);
}

}  // namespace parda::vm
