// A miniature instrumented virtual machine — this repository's stand-in
// for Pin dynamic binary instrumentation (paper Section VI, Figure 3).
//
// Real programs (vector kernels, matrix multiply, linked-list traversals)
// execute on a small register machine; every load and store invokes an
// instrumentation hook with the accessed word address, exactly the code
// path Pin's memory-trace tool exercises: program runs -> per-access
// callback -> pipe -> online Parda analysis.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace parda::vm {

enum class Op : std::uint8_t {
  kHalt,   // stop execution
  kMovi,   // r[a] = imm
  kMov,    // r[a] = r[b]
  kAdd,    // r[a] = r[b] + r[c]
  kAddi,   // r[a] = r[b] + imm
  kMul,    // r[a] = r[b] * r[c]
  kShr,    // r[a] = r[b] >> imm (arithmetic shift of non-negative values)
  kLoad,   // r[a] = mem[r[b] + imm]   (instrumented)
  kStore,  // mem[r[b] + imm] = r[a]   (instrumented)
  kJmp,    // pc = imm
  kBne,    // if r[a] != r[b]: pc = imm
  kBlt,    // if r[a] <  r[b]: pc = imm
};

struct Instr {
  Op op = Op::kHalt;
  std::uint8_t a = 0;
  std::uint8_t b = 0;
  std::uint8_t c = 0;
  std::int64_t imm = 0;
};

struct Program {
  std::string name;
  std::vector<Instr> code;
  std::uint64_t memory_words = 0;  // data memory size
  // Optional data segment copied into memory at startup (e.g. the next[]
  // pointers of a linked-list program).
  std::vector<std::int64_t> initial_memory;
};

inline constexpr int kNumRegs = 16;

/// Executes a program. The hook is called once per memory access with the
/// accessed word address (like a Pin memory-trace analysis routine).
class Machine {
 public:
  using AccessHook = std::function<void(Addr)>;

  explicit Machine(const Program& program);

  /// Runs to kHalt or until max_steps instructions retire; returns the
  /// number of instructions executed. Throws std::runtime_error on an
  /// out-of-bounds access or bad jump target.
  std::uint64_t run(const AccessHook& hook,
                    std::uint64_t max_steps = 1ULL << 32);

  std::int64_t reg(int r) const { return regs_[r]; }
  const std::vector<std::int64_t>& memory() const { return mem_; }
  std::uint64_t mem_accesses() const noexcept { return accesses_; }

  void reset();

 private:
  const Program& program_;
  std::vector<std::int64_t> mem_;
  std::int64_t regs_[kNumRegs] = {};
  std::uint64_t accesses_ = 0;
};

/// Convenience: run the program and collect its full address trace.
std::vector<Addr> trace_program(const Program& program,
                                std::uint64_t max_steps = 1ULL << 32);

}  // namespace parda::vm
