#include "vm/machine.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/check.hpp"

namespace parda::vm {

Machine::Machine(const Program& program) : program_(program) { reset(); }

void Machine::reset() {
  mem_.assign(program_.memory_words, 0);
  const std::size_t init =
      std::min(program_.initial_memory.size(), mem_.size());
  std::copy_n(program_.initial_memory.begin(), init, mem_.begin());
  for (std::int64_t& r : regs_) r = 0;
  accesses_ = 0;
}

std::uint64_t Machine::run(const AccessHook& hook, std::uint64_t max_steps) {
  std::uint64_t pc = 0;
  std::uint64_t steps = 0;
  const std::vector<Instr>& code = program_.code;

  auto mem_at = [&](std::int64_t addr) -> std::int64_t& {
    if (addr < 0 || static_cast<std::uint64_t>(addr) >= mem_.size()) {
      throw std::runtime_error(program_.name + ": memory access out of bounds");
    }
    return mem_[static_cast<std::uint64_t>(addr)];
  };

  while (steps < max_steps) {
    if (pc >= code.size()) {
      throw std::runtime_error(program_.name + ": pc out of bounds");
    }
    const Instr& ins = code[pc];
    ++steps;
    switch (ins.op) {
      case Op::kHalt:
        return steps;
      case Op::kMovi:
        regs_[ins.a] = ins.imm;
        break;
      case Op::kMov:
        regs_[ins.a] = regs_[ins.b];
        break;
      case Op::kAdd:
        regs_[ins.a] = regs_[ins.b] + regs_[ins.c];
        break;
      case Op::kAddi:
        regs_[ins.a] = regs_[ins.b] + ins.imm;
        break;
      case Op::kMul:
        regs_[ins.a] = regs_[ins.b] * regs_[ins.c];
        break;
      case Op::kShr:
        regs_[ins.a] = regs_[ins.b] >> ins.imm;
        break;
      case Op::kLoad: {
        const std::int64_t addr = regs_[ins.b] + ins.imm;
        regs_[ins.a] = mem_at(addr);
        ++accesses_;
        if (hook) hook(static_cast<Addr>(addr));
        break;
      }
      case Op::kStore: {
        const std::int64_t addr = regs_[ins.b] + ins.imm;
        mem_at(addr) = regs_[ins.a];
        ++accesses_;
        if (hook) hook(static_cast<Addr>(addr));
        break;
      }
      case Op::kJmp:
        pc = static_cast<std::uint64_t>(ins.imm);
        continue;
      case Op::kBne:
        if (regs_[ins.a] != regs_[ins.b]) {
          pc = static_cast<std::uint64_t>(ins.imm);
          continue;
        }
        break;
      case Op::kBlt:
        if (regs_[ins.a] < regs_[ins.b]) {
          pc = static_cast<std::uint64_t>(ins.imm);
          continue;
        }
        break;
    }
    ++pc;
  }
  return steps;
}

std::vector<Addr> trace_program(const Program& program,
                                std::uint64_t max_steps) {
  Machine machine(program);
  std::vector<Addr> trace;
  machine.run([&](Addr a) { trace.push_back(a); }, max_steps);
  return trace;
}

}  // namespace parda::vm
