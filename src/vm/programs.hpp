// Ready-made VM programs whose address traces have analytically known
// structure, used by the online-analysis examples and tests.
#pragma once

#include <cstdint>

#include "vm/machine.hpp"

namespace parda::vm {

/// sum += a[i] for i in [0, n): n loads, footprint n, all infinities.
Program vector_sum(std::uint64_t n);

/// b[i] = a[i] + a[i+1] for i in [0, n-1) repeated `passes` times:
/// short-distance intra-pass reuse plus long-distance inter-pass reuse.
Program smooth_passes(std::uint64_t n, std::uint64_t iterations);

/// Naive n x n x n matrix multiply C[i][j] += A[i][k] * B[k][j]; classic
/// loop-nest locality (B columns at distance ~n).
Program matmul(std::uint64_t n);

/// Builds a pseudo-random singly linked list of `nodes` nodes, then chases
/// it `rounds` times: mcf-style pointer chasing with full-footprint reuse
/// distances between rounds.
Program list_chase(std::uint64_t nodes, std::uint64_t rounds);

/// `queries` binary searches over a sorted array of n elements; the data
/// segment holds 0..n-1 so every search succeeds. Log-depth access trees
/// with a heavily reused top (the root is touched by every query).
Program binary_search(std::uint64_t n, std::uint64_t queries);

/// In-place bubble sort of a pseudo-randomly permuted array: O(n^2)
/// references with strong short-distance reuse between adjacent passes.
Program bubble_sort(std::uint64_t n);

}  // namespace parda::vm
