// A small two-pass assembler for the instrumented VM, so traced programs
// can be written as text instead of hand-built Instr vectors.
//
// Syntax (one statement per line; ';' or '#' start comments):
//
//   .name  vecsum          ; program name
//   .mem   1024            ; data memory words
//   .data  5 7 9           ; initial memory image, appended in order
//
//   start:                 ; labels end with ':'
//     movi r1, 0
//     movi r2, 100
//   loop:
//     load r4, r1, 0       ; r4 = mem[r1 + 0]
//     add  r3, r3, r4
//     addi r1, r1, 1
//     blt  r1, r2, loop    ; branch targets are labels or absolute ints
//     halt
//
// Mnemonics: halt, movi, mov, add, addi, mul, shr, load, store, jmp,
// bne, blt. Registers are r0..r15.
#pragma once

#include <string>
#include <string_view>

#include "vm/machine.hpp"

namespace parda::vm {

/// Assembles source text into a Program; throws std::invalid_argument
/// with a line-numbered message on any syntax error.
Program assemble(std::string_view source);

/// Reads and assembles a file.
Program assemble_file(const std::string& path);

}  // namespace parda::vm
