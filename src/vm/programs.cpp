#include "vm/programs.hpp"

#include <cstdint>

#include "util/check.hpp"
#include "util/prng.hpp"

namespace parda::vm {

namespace {

/// Tiny assembler: emit() returns the instruction's index so branch targets
/// can be patched after the fact.
class Asm {
 public:
  std::size_t emit(Op op, std::uint8_t a = 0, std::uint8_t b = 0,
                   std::uint8_t c = 0, std::int64_t imm = 0) {
    code_.push_back(Instr{op, a, b, c, imm});
    return code_.size() - 1;
  }

  std::size_t here() const noexcept { return code_.size(); }

  void patch(std::size_t instr, std::int64_t target) {
    code_[instr].imm = target;
  }

  std::vector<Instr> take() { return std::move(code_); }

 private:
  std::vector<Instr> code_;
};

}  // namespace

Program vector_sum(std::uint64_t n) {
  PARDA_CHECK(n >= 1);
  Asm a;
  a.emit(Op::kMovi, 1, 0, 0, 0);                        // r1 = i = 0
  a.emit(Op::kMovi, 2, 0, 0, static_cast<std::int64_t>(n));  // r2 = n
  a.emit(Op::kMovi, 3, 0, 0, 0);                        // r3 = sum
  const std::size_t loop = a.here();
  a.emit(Op::kLoad, 4, 1, 0, 0);    // r4 = a[i]
  a.emit(Op::kAdd, 3, 3, 4);        // sum += r4
  a.emit(Op::kAddi, 1, 1, 0, 1);    // ++i
  a.emit(Op::kBlt, 1, 2, 0, static_cast<std::int64_t>(loop));
  a.emit(Op::kHalt);
  return Program{"vector_sum", a.take(), n, {}};
}

Program smooth_passes(std::uint64_t n, std::uint64_t iterations) {
  PARDA_CHECK(n >= 2);
  PARDA_CHECK(iterations >= 1);
  Asm a;
  a.emit(Op::kMovi, 5, 0, 0, 0);  // r5 = pass
  a.emit(Op::kMovi, 6, 0, 0, static_cast<std::int64_t>(iterations));
  const std::size_t pass_loop = a.here();
  a.emit(Op::kMovi, 1, 0, 0, 0);  // r1 = i
  a.emit(Op::kMovi, 2, 0, 0, static_cast<std::int64_t>(n - 1));
  const std::size_t loop = a.here();
  a.emit(Op::kLoad, 3, 1, 0, 0);  // a[i]
  a.emit(Op::kLoad, 4, 1, 0, 1);  // a[i+1]
  a.emit(Op::kAdd, 3, 3, 4);
  a.emit(Op::kStore, 3, 1, 0, static_cast<std::int64_t>(n));  // b[i]
  a.emit(Op::kAddi, 1, 1, 0, 1);
  a.emit(Op::kBlt, 1, 2, 0, static_cast<std::int64_t>(loop));
  a.emit(Op::kAddi, 5, 5, 0, 1);
  a.emit(Op::kBlt, 5, 6, 0, static_cast<std::int64_t>(pass_loop));
  a.emit(Op::kHalt);
  return Program{"smooth_passes", a.take(), 2 * n, {}};
}

Program matmul(std::uint64_t n) {
  PARDA_CHECK(n >= 1);
  const auto nn = static_cast<std::int64_t>(n);
  const std::int64_t b_base = nn * nn;
  const std::int64_t c_base = 2 * nn * nn;
  Asm a;
  a.emit(Op::kMovi, 4, 0, 0, nn);  // r4 = n
  a.emit(Op::kMovi, 1, 0, 0, 0);   // r1 = i
  const std::size_t iloop = a.here();
  a.emit(Op::kMovi, 2, 0, 0, 0);  // r2 = j
  const std::size_t jloop = a.here();
  a.emit(Op::kMovi, 3, 0, 0, 0);  // r3 = k
  a.emit(Op::kMovi, 7, 0, 0, 0);  // r7 = acc
  const std::size_t kloop = a.here();
  a.emit(Op::kMul, 10, 1, 4);      // r10 = i*n
  a.emit(Op::kAdd, 10, 10, 3);     // + k
  a.emit(Op::kLoad, 5, 10, 0, 0);  // A[i][k]
  a.emit(Op::kMul, 11, 3, 4);      // r11 = k*n
  a.emit(Op::kAdd, 11, 11, 2);     // + j
  a.emit(Op::kLoad, 6, 11, 0, b_base);  // B[k][j]
  a.emit(Op::kMul, 5, 5, 6);
  a.emit(Op::kAdd, 7, 7, 5);
  a.emit(Op::kAddi, 3, 3, 0, 1);
  a.emit(Op::kBlt, 3, 4, 0, static_cast<std::int64_t>(kloop));
  a.emit(Op::kMul, 10, 1, 4);
  a.emit(Op::kAdd, 10, 10, 2);          // i*n + j
  a.emit(Op::kLoad, 8, 10, 0, c_base);  // C[i][j]
  a.emit(Op::kAdd, 8, 8, 7);
  a.emit(Op::kStore, 8, 10, 0, c_base);
  a.emit(Op::kAddi, 2, 2, 0, 1);
  a.emit(Op::kBlt, 2, 4, 0, static_cast<std::int64_t>(jloop));
  a.emit(Op::kAddi, 1, 1, 0, 1);
  a.emit(Op::kBlt, 1, 4, 0, static_cast<std::int64_t>(iloop));
  a.emit(Op::kHalt);
  return Program{"matmul", a.take(), 3 * n * n, {}};
}

Program list_chase(std::uint64_t nodes, std::uint64_t rounds) {
  PARDA_CHECK(nodes >= 1);
  PARDA_CHECK(rounds >= 1);
  // Data segment: next[i] forms one random Hamiltonian cycle.
  Xoshiro256 rng(nodes * 0x9e3779b9ULL + 7);
  const std::vector<std::uint64_t> perm = random_permutation(nodes, rng);
  std::vector<std::int64_t> next(nodes);
  for (std::uint64_t i = 0; i < nodes; ++i) {
    next[perm[i]] = static_cast<std::int64_t>(perm[(i + 1) % nodes]);
  }

  Asm a;
  a.emit(Op::kMovi, 1, 0, 0, 0);  // r1 = cur
  a.emit(Op::kMovi, 2, 0, 0,
         static_cast<std::int64_t>(nodes * rounds));  // r2 = total steps
  a.emit(Op::kMovi, 3, 0, 0, 0);                      // r3 = counter
  const std::size_t loop = a.here();
  a.emit(Op::kLoad, 1, 1, 0, 0);  // cur = next[cur]
  a.emit(Op::kAddi, 3, 3, 0, 1);
  a.emit(Op::kBlt, 3, 2, 0, static_cast<std::int64_t>(loop));
  a.emit(Op::kHalt);
  return Program{"list_chase", a.take(), nodes, std::move(next)};
}

Program binary_search(std::uint64_t n, std::uint64_t queries) {
  PARDA_CHECK(n >= 2);
  PARDA_CHECK(queries >= 1);
  // Data segment: the sorted array 0..n-1.
  std::vector<std::int64_t> data(n);
  for (std::uint64_t i = 0; i < n; ++i) data[i] = static_cast<std::int64_t>(i);

  // r4 = n, r7 = query counter, r8 = query budget, r9 = key,
  // r10 = key stride (coprime-ish walk over the key space).
  Asm a;
  a.emit(Op::kMovi, 4, 0, 0, static_cast<std::int64_t>(n));
  a.emit(Op::kMovi, 7, 0, 0, 0);
  a.emit(Op::kMovi, 8, 0, 0, static_cast<std::int64_t>(queries));
  a.emit(Op::kMovi, 9, 0, 0, 0);
  a.emit(Op::kMovi, 10, 0, 0, static_cast<std::int64_t>(n / 3 * 2 + 1));
  const std::size_t query_loop = a.here();
  // key = (key + stride) mod n, by conditional subtraction (stride < n...
  // stride may exceed n, so subtract until in range).
  a.emit(Op::kAdd, 9, 9, 10);
  const std::size_t mod_loop = a.here();
  const std::size_t blt_in_range = a.emit(Op::kBlt, 9, 4, 0, 0);  // patched
  a.emit(Op::kMov, 11, 4);
  a.emit(Op::kMovi, 12, 0, 0, -1);
  a.emit(Op::kMul, 11, 11, 12);   // r11 = -n
  a.emit(Op::kAdd, 9, 9, 11);     // key -= n
  a.emit(Op::kJmp, 0, 0, 0, static_cast<std::int64_t>(mod_loop));
  const std::size_t search_setup = a.here();
  a.patch(blt_in_range, static_cast<std::int64_t>(search_setup));
  a.emit(Op::kMovi, 1, 0, 0, 0);  // lo = 0
  a.emit(Op::kMov, 2, 4);         // hi = n
  const std::size_t search_loop = a.here();
  const std::size_t blt_continue = a.emit(Op::kBlt, 1, 2, 0, 0);  // patched
  const std::size_t next_query_jmp = a.emit(Op::kJmp, 0, 0, 0, 0);
  const std::size_t body = a.here();
  a.patch(blt_continue, static_cast<std::int64_t>(body));
  a.emit(Op::kAdd, 3, 1, 2);
  a.emit(Op::kShr, 3, 3, 0, 1);   // mid = (lo + hi) >> 1
  a.emit(Op::kLoad, 5, 3, 0, 0);  // a[mid]
  const std::size_t blt_go_right = a.emit(Op::kBlt, 5, 9, 0, 0);  // patched
  const std::size_t blt_go_left = a.emit(Op::kBlt, 9, 5, 0, 0);   // patched
  const std::size_t found_jmp = a.emit(Op::kJmp, 0, 0, 0, 0);     // found
  const std::size_t go_right = a.here();
  a.patch(blt_go_right, static_cast<std::int64_t>(go_right));
  a.emit(Op::kAddi, 1, 3, 0, 1);  // lo = mid + 1
  a.emit(Op::kJmp, 0, 0, 0, static_cast<std::int64_t>(search_loop));
  const std::size_t go_left = a.here();
  a.patch(blt_go_left, static_cast<std::int64_t>(go_left));
  a.emit(Op::kMov, 2, 3);  // hi = mid
  a.emit(Op::kJmp, 0, 0, 0, static_cast<std::int64_t>(search_loop));
  const std::size_t next_query = a.here();
  a.patch(next_query_jmp, static_cast<std::int64_t>(next_query));
  a.patch(found_jmp, static_cast<std::int64_t>(next_query));
  a.emit(Op::kAddi, 7, 7, 0, 1);
  a.emit(Op::kBlt, 7, 8, 0, static_cast<std::int64_t>(query_loop));
  a.emit(Op::kHalt);
  return Program{"binary_search", a.take(), n, std::move(data)};
}

Program bubble_sort(std::uint64_t n) {
  PARDA_CHECK(n >= 2);
  // Data segment: a deterministic pseudo-random permutation to sort.
  Xoshiro256 rng(n * 31 + 5);
  const std::vector<std::uint64_t> perm = random_permutation(n, rng);
  std::vector<std::int64_t> data(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    data[i] = static_cast<std::int64_t>(perm[i]);
  }

  // r4 = n-1 (inner bound), r5 = pass, r6 = n (pass bound), r1 = j.
  Asm a;
  a.emit(Op::kMovi, 4, 0, 0, static_cast<std::int64_t>(n - 1));
  a.emit(Op::kMovi, 5, 0, 0, 0);
  a.emit(Op::kMovi, 6, 0, 0, static_cast<std::int64_t>(n));
  const std::size_t pass_loop = a.here();
  a.emit(Op::kMovi, 1, 0, 0, 0);
  const std::size_t inner_loop = a.here();
  a.emit(Op::kLoad, 2, 1, 0, 0);  // a[j]
  a.emit(Op::kLoad, 3, 1, 0, 1);  // a[j+1]
  const std::size_t blt_swap = a.emit(Op::kBlt, 3, 2, 0, 0);  // patched
  const std::size_t no_swap_jmp = a.emit(Op::kJmp, 0, 0, 0, 0);
  const std::size_t do_swap = a.here();
  a.patch(blt_swap, static_cast<std::int64_t>(do_swap));
  a.emit(Op::kStore, 3, 1, 0, 0);
  a.emit(Op::kStore, 2, 1, 0, 1);
  const std::size_t after_swap = a.here();
  a.patch(no_swap_jmp, static_cast<std::int64_t>(after_swap));
  a.emit(Op::kAddi, 1, 1, 0, 1);
  a.emit(Op::kBlt, 1, 4, 0, static_cast<std::int64_t>(inner_loop));
  a.emit(Op::kAddi, 5, 5, 0, 1);
  a.emit(Op::kBlt, 5, 6, 0, static_cast<std::int64_t>(pass_loop));
  a.emit(Op::kHalt);
  return Program{"bubble_sort", a.take(), n, std::move(data)};
}

}  // namespace parda::vm
