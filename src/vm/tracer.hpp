// Glue between the instrumented VM and the trace plumbing: runs a program
// while streaming its accesses into a TracePipe in blocks — the producer
// half of the paper's Figure 3.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/trace_pipe.hpp"
#include "util/types.hpp"
#include "vm/machine.hpp"

namespace parda::vm {

struct StreamResult {
  std::uint64_t instructions = 0;
  std::uint64_t accesses = 0;
};

/// Executes the program, writing its address trace into the pipe in blocks
/// of block_words, and closes the pipe at halt. Call from a producer
/// thread while a consumer (e.g. parda_analyze_stream) drains the pipe.
inline StreamResult stream_program(const Program& program, TracePipe& pipe,
                                   std::size_t block_words = 1024) {
  Machine machine(program);
  std::vector<Addr> block;
  block.reserve(block_words);
  StreamResult result;
  result.instructions = machine.run([&](Addr a) {
    block.push_back(a);
    if (block.size() == block_words) {
      pipe.write(std::move(block));
      block = std::vector<Addr>();
      block.reserve(block_words);
    }
  });
  pipe.write(std::move(block));
  pipe.close();
  result.accesses = machine.mem_accesses();
  return result;
}

}  // namespace parda::vm
