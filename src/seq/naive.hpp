// The naive list-based stack algorithm of Mattson et al. (paper Section
// III-A): an explicit LRU stack searched linearly from the head. O(N * M)
// time; kept as the reference baseline and for the Olken81-vs-naive bench.
#pragma once

#include <span>
#include <vector>

#include "hist/histogram.hpp"
#include "seq/analyzer.hpp"
#include "util/types.hpp"

namespace parda {

class NaiveStackAnalyzer {
 public:
  /// Processes one reference; returns its reuse distance.
  Distance access(Addr z);

  void access_and_record(Addr z, Histogram& hist) { hist.record(access(z)); }

  // --- ReuseAnalyzer surface -----------------------------------------------
  void process(Addr z) { hist_.record(access(z)); }
  void finish() {}
  const Histogram& histogram() const noexcept { return hist_; }
  EngineStats stats() const {
    EngineStats s;
    s.references = refs_;
    s.finite = hist_.finite_total();
    s.infinities = hist_.infinities();
    s.peak_footprint = peak_;
    return s;
  }

  std::size_t footprint() const noexcept { return stack_.size(); }
  void reset() {
    stack_.clear();
    hist_.clear();
    refs_ = 0;
    peak_ = 0;
  }

 private:
  // stack_[0] is the top (most recently used).
  std::vector<Addr> stack_;
  Histogram hist_;
  std::uint64_t refs_ = 0;
  std::size_t peak_ = 0;
};

static_assert(ReuseAnalyzer<NaiveStackAnalyzer>);

/// Runs the naive algorithm over a whole trace.
Histogram naive_stack_analysis(std::span<const Addr> trace);

}  // namespace parda
