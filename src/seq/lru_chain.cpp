#include "seq/lru_chain.hpp"

#include <cstdio>

namespace parda {

void LruChainAnalyzer::insert_miss(Addr z) {
  if (bound_ != 0 && size_ == bound_) evict_tail();
  // Allocate: recycle from the free list, else extend the arena. The
  // chain only grows on first references, so bounded operation reaches
  // `bound` arena slots and then runs allocation-free forever.
  std::uint32_t x;
  if (free_ != kNull) {
    x = free_;
    free_ = nodes_[x].next;
    --free_count_;
  } else {
    PARDA_CHECK(nodes_.size() < static_cast<std::size_t>(kNull));
    x = static_cast<std::uint32_t>(nodes_.size());
    nodes_.emplace_back();
  }
  nodes_[x].addr = z;
  table_.insert_or_assign(z, x);

  // Every resident node shifts down one position: slide each level's
  // boundary marker one hop toward the head, and drop the old head from
  // level 0 into level 1.
  if (size_ > 0) {
    std::uint64_t hops = 0;
    for (std::uint32_t i = 1; i < kMaxLevels && marker_[i] != kNull; ++i) {
      const std::uint32_t m = marker_[i];
      nodes_[m].level = i + 1;
      marker_[i] = nodes_[m].prev;
      ++hops;
    }
    marker_hops_ += hops;
    nodes_[head_].level = 1;
  }

  nodes_[x].prev = kNull;
  nodes_[x].next = head_;
  nodes_[x].level = 0;
  if (head_ != kNull) {
    nodes_[head_].prev = x;
  } else {
    tail_ = x;
  }
  head_ = x;
  ++size_;
  if (size_ > peak_) peak_ = size_;

  // A marker springs into existence the first time position 2^i - 1 is
  // occupied, i.e. when the pre-insert size was exactly 2^i - 1; the
  // shifted old tail is then the new boundary node of level i.
  const std::uint64_t old_size = size_ - 1;
  if (old_size >= 1 && ((old_size + 1) & old_size) == 0) {
    const auto i = static_cast<std::uint32_t>(std::bit_width(old_size));
    PARDA_DCHECK(i < kMaxLevels);
    marker_[i] = tail_;
  }
}

void LruChainAnalyzer::evict_tail() {
  const std::uint32_t t = tail_;
  PARDA_DCHECK(t != kNull);
  const std::uint32_t level = nodes_[t].level;
  // The tail is a boundary node only when the chain length is exactly
  // 2^level; removing it leaves position 2^level - 1 unoccupied, so the
  // marker vanishes with it. A longer chain's tail sits past every
  // boundary and no marker moves.
  if (level >= 1 && marker_[level] == t) marker_[level] = kNull;
  table_.erase(nodes_[t].addr);
  tail_ = nodes_[t].prev;
  if (tail_ != kNull) {
    nodes_[tail_].next = kNull;
  } else {
    head_ = kNull;
  }
  nodes_[t].next = free_;
  free_ = t;
  ++free_count_;
  --size_;
  ++evictions_;
}

void LruChainAnalyzer::reset() {
  nodes_.clear();  // capacity retained; arena refills without allocation
  table_.clear();
  hist_.clear();
  marker_.fill(kNull);
  bins_.fill(0);
  head_ = tail_ = free_ = kNull;
  inf_count_ = now_ = size_ = peak_ = 0;
  free_count_ = evictions_ = marker_hops_ = 0;
  finished_ = false;
}

namespace {

/// The log2 bucket a chain position belongs to: 0 for position 0,
/// floor(log2(p)) + 1 otherwise (bucket i >= 1 spans [2^(i-1), 2^i)).
std::uint32_t bucket_of_position(std::uint64_t p) noexcept {
  return p == 0 ? 0u : static_cast<std::uint32_t>(std::bit_width(p));
}

bool fail(std::string* why, const char* fmt, std::uint64_t a,
          std::uint64_t b) {
  if (why != nullptr) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), fmt, static_cast<unsigned long long>(a),
                  static_cast<unsigned long long>(b));
    *why = buf;
  }
  return false;
}

}  // namespace

bool LruChainAnalyzer::check_invariants(std::string* why) const {
  std::uint64_t pos = 0;
  std::uint32_t prev = kNull;
  std::array<std::uint32_t, kMaxLevels> seen_marker;
  seen_marker.fill(kNull);
  for (std::uint32_t x = head_; x != kNull; x = nodes_[x].next) {
    if (pos > size_) return fail(why, "chain longer than size %llu", size_, 0);
    if (nodes_[x].prev != prev) {
      return fail(why, "bad prev link at position %llu", pos, 0);
    }
    const std::uint32_t want = bucket_of_position(pos);
    if (nodes_[x].level != want) {
      return fail(why, "level %llu at position %llu",
                  nodes_[x].level, pos);
    }
    const Timestamp* slot = table_.find(nodes_[x].addr);
    if (slot == nullptr || static_cast<std::uint32_t>(*slot) != x) {
      return fail(why, "table does not map node at position %llu", pos, 0);
    }
    // Position 2^i - 1 is the boundary node of level i: remember it to
    // compare against marker_.
    if (pos >= 1 && ((pos + 1) & pos) == 0) {
      seen_marker[static_cast<std::uint32_t>(std::bit_width(pos))] = x;
    }
    prev = x;
    ++pos;
  }
  if (pos != size_) return fail(why, "chain length %llu != size %llu", pos, size_);
  if (tail_ != prev) return fail(why, "tail mismatch %llu", tail_, 0);
  if (table_.size() != size_) {
    return fail(why, "table size %llu != size %llu", table_.size(), size_);
  }
  for (std::uint32_t i = 1; i < kMaxLevels; ++i) {
    if (marker_[i] != seen_marker[i]) {
      return fail(why, "marker[%llu] off (expected node at 2^i-1): %llu", i,
                  marker_[i]);
    }
  }
  if (marker_[0] != kNull) return fail(why, "marker[0] must stay null", 0, 0);
  std::uint64_t free_len = 0;
  for (std::uint32_t x = free_; x != kNull; x = nodes_[x].next) {
    ++free_len;
    if (free_len > nodes_.size()) {
      return fail(why, "free list cycle after %llu nodes", free_len, 0);
    }
  }
  if (free_len != free_count_) {
    return fail(why, "free list length %llu != count %llu", free_len,
                free_count_);
  }
  if (size_ + free_count_ != nodes_.size()) {
    return fail(why, "arena %llu != chain+free %llu", nodes_.size(),
                size_ + free_count_);
  }
  return true;
}

}  // namespace parda
