// Sequential bounded reuse distance analysis (the cache-bound idea of paper
// Section V, Algorithm 7, without the parallel local-infinity plumbing).
//
// With bound B, the tree and hash table hold at most B entries — the B most
// recently referenced distinct addresses — evicting LRU like a real cache of
// size B. Every reference with true distance d < B is measured exactly;
// everything else (evicted or first-ever) lands in the infinity bin, which
// is all a cache of size <= B needs.
#pragma once

#include <span>

#include "hash/addr_map.hpp"
#include "hist/histogram.hpp"
#include "seq/analyzer.hpp"
#include "tree/order_stat_tree.hpp"
#include "tree/splay_tree.hpp"
#include "util/types.hpp"

namespace parda {

template <OrderStatTree Tree>
class BoundedAnalyzer {
 public:
  explicit BoundedAnalyzer(std::uint64_t bound) : bound_(bound) {}

  /// Processes one reference; returns its distance, which is exact when
  /// finite and kInfiniteDistance for first references *and* references
  /// whose true distance is >= bound (capacity misses).
  Distance access(Addr z) {
    Distance d = kInfiniteDistance;
    if (const Timestamp* last = table_.find(z)) {
      d = tree_.count_greater(*last);
      tree_.erase(*last);
      table_.erase(z);
    } else if (table_.size() >= bound_) {
      const TreeEntry victim = tree_.pop_oldest();
      table_.erase(victim.addr);
      ++evictions_;
    }
    tree_.insert(now_, z);
    table_.insert_or_assign(z, now_);
    ++now_;
    return d;
  }

  void access_and_record(Addr z, Histogram& hist) { hist.record(access(z)); }

  /// Batched access: records each reference's distance into `hist` (not
  /// the internal histogram) with the same prefetch schedule as
  /// process_block — the online-MRC monitor's window path.
  void access_block(std::span<const Addr> block, Histogram& hist) {
    constexpr std::size_t kAhead = 8;
    const std::size_t n = block.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (i + kAhead < n) table_.prefetch(block[i + kAhead]);
      hist.record(access(block[i]));
    }
  }

  // --- ReuseAnalyzer surface -----------------------------------------------
  void process(Addr z) { hist_.record(access(z)); }

  /// Batched processing: identical tallies to per-reference process(),
  /// with the hash probe a few references ahead software-prefetched so the
  /// table's home slot is resident by the time access() runs.
  void process_block(std::span<const Addr> block) {
    constexpr std::size_t kAhead = 8;
    const std::size_t n = block.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (i + kAhead < n) table_.prefetch(block[i + kAhead]);
      hist_.record(access(block[i]));
    }
  }

  void finish() {}
  const Histogram& histogram() const noexcept { return hist_; }
  EngineStats stats() const {
    EngineStats s;
    s.references = now_;
    s.finite = hist_.finite_total();
    s.infinities = hist_.infinities();
    s.hash_probes = table_.probe_count();
    s.evictions = evictions_;
    // The resident set is capped at B, so the bound is the peak whenever
    // an eviction ever happened.
    s.peak_footprint = evictions_ > 0 ? bound_ : tree_.size();
    detail::fill_tree_stats(tree_, s);
    return s;
  }

  std::uint64_t bound() const noexcept { return bound_; }
  /// Distinct addresses currently tracked (<= bound). Renamed from the
  /// straggler `resident()` to match the other engines' accessor.
  std::size_t footprint() const noexcept { return tree_.size(); }
  std::uint64_t eviction_count() const noexcept { return evictions_; }
  Timestamp time() const noexcept { return now_; }

  void reset() {
    tree_.clear();
    table_.clear();
    hist_.clear();
    now_ = 0;
    evictions_ = 0;
  }

 private:
  std::uint64_t bound_;
  Tree tree_;
  AddrMap table_;
  Histogram hist_;
  Timestamp now_ = 0;
  std::uint64_t evictions_ = 0;
};

static_assert(ReuseAnalyzer<BoundedAnalyzer<SplayTree>>);
static_assert(BlockReuseAnalyzer<BoundedAnalyzer<SplayTree>>);

template <OrderStatTree Tree = SplayTree>
Histogram bounded_analysis(std::span<const Addr> trace, std::uint64_t bound) {
  BoundedAnalyzer<Tree> analyzer(bound);
  return analyze_trace(analyzer, trace);
}

}  // namespace parda
