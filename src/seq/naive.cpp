#include "seq/naive.hpp"

namespace parda {

Distance NaiveStackAnalyzer::access(Addr z) {
  ++refs_;
  for (std::size_t i = 0; i < stack_.size(); ++i) {
    if (stack_[i] == z) {
      // Move to front; the reuse distance is the number of distinct
      // addresses above the old position, which is exactly its index.
      stack_.erase(stack_.begin() + static_cast<std::ptrdiff_t>(i));
      stack_.insert(stack_.begin(), z);
      return static_cast<Distance>(i);
    }
  }
  stack_.insert(stack_.begin(), z);
  if (stack_.size() > peak_) peak_ = stack_.size();
  return kInfiniteDistance;
}

Histogram naive_stack_analysis(std::span<const Addr> trace) {
  NaiveStackAnalyzer analyzer;
  return analyze_trace(analyzer, trace);
}

}  // namespace parda
