// The unified sequential-engine API: every reuse distance engine — Naive,
// Olken, BennettKruskal, Bounded, Approx, Interval — conforms to the
// ReuseAnalyzer concept below (checked by static_asserts at the bottom of
// each engine header), so drivers, benches, and the observability layer
// talk to all six through one shape:
//
//   analyzer.process(addr);   // one reference (may defer work, e.g. B&K)
//   analyzer.finish();        // flush deferred work; idempotent
//   analyzer.histogram();     // the result (valid after finish())
//   analyzer.stats();         // structural counters for the metrics layer
//
// The distance-returning access() members remain on the engines that can
// answer online; process() is the portable surface (Bennett & Kruskal is
// two-pass and cannot return distances online, which is why the concept is
// built around process/finish rather than access).
#pragma once

#include <concepts>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "hist/histogram.hpp"
#include "obs/metrics.hpp"
#include "util/types.hpp"

namespace parda {

/// Structural work counters every engine can report. Fields an engine
/// cannot measure stay 0 (the naive stack has no hash table; only the
/// bounded engine evicts).
struct EngineStats {
  std::uint64_t references = 0;      // process() calls
  std::uint64_t finite = 0;          // finite distances in histogram()
  std::uint64_t infinities = 0;      // infinity bin of histogram()
  std::uint64_t hash_probes = 0;     // AddrMap slot inspections
  std::uint64_t tree_rotations = 0;  // rotations (splay/AVL/treap)
  std::uint64_t tree_splays = 0;     // splay-to-root operations
  std::uint64_t evictions = 0;       // LRU evictions (bounded engine)
  std::uint64_t peak_footprint = 0;  // max distinct addresses tracked

  /// Publishes the counters into a metrics registry under
  /// "<prefix>.references", "<prefix>.hash_probes", ... attributed to the
  /// calling thread's rank shard. Cold path (name lookups).
  void publish(obs::Registry& reg, std::string_view prefix) const {
    const std::string p(prefix);
    reg.counter(p + ".references").add(references);
    reg.counter(p + ".finite").add(finite);
    reg.counter(p + ".infinities").add(infinities);
    reg.counter(p + ".hash_probes").add(hash_probes);
    reg.counter(p + ".tree_rotations").add(tree_rotations);
    reg.counter(p + ".tree_splays").add(tree_splays);
    reg.counter(p + ".evictions").add(evictions);
    reg.gauge(p + ".peak_footprint").set_max(peak_footprint);
  }
};

/// The engine concept. histogram() contents are only final after finish();
/// finish() must be idempotent and process() must not be called after it.
template <typename A>
concept ReuseAnalyzer = requires(A a, const A ca, Addr z) {
  { a.process(z) } -> std::same_as<void>;
  { a.finish() } -> std::same_as<void>;
  { ca.histogram() } -> std::same_as<const Histogram&>;
  { ca.stats() } -> std::same_as<EngineStats>;
};

/// Runs a whole trace through any conforming engine and returns the
/// finished histogram (the one-liner behind the per-engine *_analysis
/// convenience functions).
template <ReuseAnalyzer A>
Histogram analyze_trace(A& analyzer, std::span<const Addr> trace) {
  for (Addr z : trace) analyzer.process(z);
  analyzer.finish();
  return analyzer.histogram();
}

namespace detail {

/// Structural counters from tree engines that expose them; engines that
/// don't (e.g. VectorTree) contribute zeros.
template <typename Tree>
void fill_tree_stats(const Tree& tree, EngineStats& s) {
  if constexpr (requires { tree.rotation_count(); }) {
    s.tree_rotations = tree.rotation_count();
  }
  if constexpr (requires { tree.splay_count(); }) {
    s.tree_splays = tree.splay_count();
  }
}

}  // namespace detail

}  // namespace parda
