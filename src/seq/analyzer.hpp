// The unified sequential-engine API: every reuse distance engine — Naive,
// Olken, BennettKruskal, Bounded, Approx, Interval, LruChain — conforms to
// the ReuseAnalyzer concept below (checked by static_asserts at the bottom
// of each engine header), so drivers, benches, and the observability layer
// talk to all seven through one shape:
//
//   analyzer.process(addr);   // one reference (may defer work, e.g. B&K)
//   analyzer.finish();        // flush deferred work; idempotent
//   analyzer.histogram();     // the result (valid after finish())
//   analyzer.stats();         // structural counters for the metrics layer
//
// The distance-returning access() members remain on the engines that can
// answer online; process() is the portable surface (Bennett & Kruskal is
// two-pass and cannot return distances online, which is why the concept is
// built around process/finish rather than access).
//
// Batched surface: engines may additionally expose
//
//   analyzer.process_block(std::span<const Addr>);
//
// (the BlockReuseAnalyzer refinement). The free process_block() below
// dispatches to it when present and falls back to the per-reference loop
// otherwise, so drivers always hand blocks down and engines that can
// software-prefetch their hash probes (LruChain, Olken, Bounded) amortize
// per-reference dispatch overhead.
#pragma once

#include <concepts>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "hist/histogram.hpp"
#include "obs/metrics.hpp"
#include "util/types.hpp"

namespace parda {

/// Structural work counters every engine can report. Fields an engine
/// cannot measure stay 0 (the naive stack has no hash table; only the
/// bounded engine evicts).
struct EngineStats {
  std::uint64_t references = 0;      // process() calls
  std::uint64_t finite = 0;          // finite distances in histogram()
  std::uint64_t infinities = 0;      // infinity bin of histogram()
  std::uint64_t hash_probes = 0;     // AddrMap slot inspections
  std::uint64_t tree_rotations = 0;  // rotations (splay/AVL/treap)
  std::uint64_t tree_splays = 0;     // splay-to-root operations
  std::uint64_t evictions = 0;       // LRU evictions (bounded engines)
  std::uint64_t marker_hops = 0;     // log2-marker slides (LruChain)
  std::uint64_t peak_footprint = 0;  // max distinct addresses tracked

  void publish(obs::Registry& reg, std::string_view prefix) const;
};

/// Resolves the "<prefix>.*" metric handles for EngineStats publication
/// once, so repeated publication (one per job in the pooled-runtime loop)
/// is just nine handle records — no name concatenation, no allocation,
/// no registry lock. Construct it next to the session/monitor that owns
/// the engine and call publish() per job.
class EngineStatsPublisher {
 public:
  EngineStatsPublisher(obs::Registry& reg, std::string_view prefix)
      : references_(&resolve(reg, prefix, ".references")),
        finite_(&resolve(reg, prefix, ".finite")),
        infinities_(&resolve(reg, prefix, ".infinities")),
        hash_probes_(&resolve(reg, prefix, ".hash_probes")),
        tree_rotations_(&resolve(reg, prefix, ".tree_rotations")),
        tree_splays_(&resolve(reg, prefix, ".tree_splays")),
        evictions_(&resolve(reg, prefix, ".evictions")),
        marker_hops_(&resolve(reg, prefix, ".marker_hops")),
        peak_footprint_(&reg.gauge(name(prefix, ".peak_footprint"))) {}

  /// Hot-path safe: records through the cached handles only.
  void publish(const EngineStats& s) const {
    references_->add(s.references);
    finite_->add(s.finite);
    infinities_->add(s.infinities);
    hash_probes_->add(s.hash_probes);
    tree_rotations_->add(s.tree_rotations);
    tree_splays_->add(s.tree_splays);
    evictions_->add(s.evictions);
    marker_hops_->add(s.marker_hops);
    peak_footprint_->set_max(s.peak_footprint);
  }

 private:
  static std::string name(std::string_view prefix, std::string_view suffix) {
    std::string n;
    n.reserve(prefix.size() + suffix.size());
    n.append(prefix);
    n.append(suffix);
    return n;
  }
  static obs::Counter& resolve(obs::Registry& reg, std::string_view prefix,
                               std::string_view suffix) {
    return reg.counter(name(prefix, suffix));
  }

  obs::Counter* references_;
  obs::Counter* finite_;
  obs::Counter* infinities_;
  obs::Counter* hash_probes_;
  obs::Counter* tree_rotations_;
  obs::Counter* tree_splays_;
  obs::Counter* evictions_;
  obs::Counter* marker_hops_;
  obs::Gauge* peak_footprint_;
};

/// One-shot publication under "<prefix>.references", "<prefix>.hash_probes",
/// ... attributed to the calling thread's rank shard. Cold path (nine name
/// lookups); per-job publication in a loop should hold an
/// EngineStatsPublisher instead, which resolves the handles once.
inline void EngineStats::publish(obs::Registry& reg,
                                 std::string_view prefix) const {
  EngineStatsPublisher(reg, prefix).publish(*this);
}

/// The engine concept. histogram() contents are only final after finish();
/// finish() must be idempotent and process() must not be called after it.
template <typename A>
concept ReuseAnalyzer = requires(A a, const A ca, Addr z) {
  { a.process(z) } -> std::same_as<void>;
  { a.finish() } -> std::same_as<void>;
  { ca.histogram() } -> std::same_as<const Histogram&>;
  { ca.stats() } -> std::same_as<EngineStats>;
};

/// Refinement for engines with a native batched surface. process_block(b)
/// must be exactly equivalent to calling process(z) for each z of b in
/// order — it exists so the engine can software-prefetch its hash probes
/// a few references ahead and skip per-call overhead, not to change
/// results (the equivalence is property-tested per engine).
template <typename A>
concept BlockReuseAnalyzer =
    ReuseAnalyzer<A> && requires(A a, std::span<const Addr> block) {
      { a.process_block(block) } -> std::same_as<void>;
    };

/// Block dispatch: the batched entry every driver funnels through. Uses
/// the engine's native process_block when it has one, else the per-
/// reference loop.
template <ReuseAnalyzer A>
void process_block(A& analyzer, std::span<const Addr> block) {
  if constexpr (BlockReuseAnalyzer<A>) {
    analyzer.process_block(block);
  } else {
    for (Addr z : block) analyzer.process(z);
  }
}

/// Runs a whole trace through any conforming engine and returns the
/// finished histogram (the one-liner behind the per-engine *_analysis
/// convenience functions). Dispatches the trace as one block so engines
/// with a batched surface get their prefetched path.
template <ReuseAnalyzer A>
Histogram analyze_trace(A& analyzer, std::span<const Addr> trace) {
  process_block(analyzer, trace);
  analyzer.finish();
  return analyzer.histogram();
}

namespace detail {

/// Structural counters from tree engines that expose them; engines that
/// don't (e.g. VectorTree) contribute zeros.
template <typename Tree>
void fill_tree_stats(const Tree& tree, EngineStats& s) {
  if constexpr (requires { tree.rotation_count(); }) {
    s.tree_rotations = tree.rotation_count();
  }
  if constexpr (requires { tree.splay_count(); }) {
    s.tree_splays = tree.splay_count();
  }
}

}  // namespace detail

}  // namespace parda
