// OPT (Belady) stack distance analysis — the other classical stack
// algorithm defined by Mattson et al. [12] alongside LRU.
//
// OPT is a stack algorithm, so one pass yields the hit count of the
// optimal replacement policy for *every* cache size, exactly as the LRU
// histogram does for LRU: a reference hits an OPT-managed cache of size C
// iff its OPT stack distance is < C. The update rule percolates priorities
// by next-use time (sooner next use = higher stack position), per the
// original paper; this implementation keeps the stack in a vector
// (O(depth) per reference — the structure Sugumar & Abraham's Cheetah
// [18] later accelerated with binomial trees).
#pragma once

#include <span>
#include <vector>

#include "hist/histogram.hpp"
#include "util/types.hpp"

namespace parda {

/// Per-reference OPT stack distances (kInfiniteDistance for first
/// references); the histogram convention matches the LRU analyzers:
/// hit in an OPT cache of size C  <=>  distance < C.
std::vector<Distance> opt_distances(std::span<const Addr> trace);

/// Histogram form.
Histogram opt_distance_analysis(std::span<const Addr> trace);

/// Brute-force Belady cache simulator (evict the resident block whose next
/// use is farthest); used to validate the stack analysis. O(N * C).
class OptCacheSim {
 public:
  OptCacheSim(std::uint64_t capacity, std::span<const Addr> trace);

  /// Runs the whole trace; returns hits.
  std::uint64_t run();

  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }

 private:
  std::uint64_t capacity_;
  std::vector<Addr> trace_;
  std::vector<std::uint64_t> next_use_;  // per position
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace parda
