// Fixed-size spatial-hash sampling (the SHARDS family, Waldspurger et al.,
// FAST'15) — the constant-memory degradation path for long-running
// multi-tenant serving (DESIGN.md "Serving & isolation model").
//
// ApproxAnalyzer (seq/approx.hpp) samples at a FIXED RATE: its state still
// grows with the sampled footprint, so a hostile or simply huge tenant
// can grow without bound. FixedSizeSampler fixes the BUDGET instead
// (SHARDS_adj): it tracks at most `max_tracked` distinct sampled
// addresses. Addresses enter the sample when hash(addr) <= threshold;
// when the tracked set would exceed the budget, the address with the
// LARGEST hash is evicted and the threshold is lowered to exclude it —
// so the sampling rate adapts downward to whatever the footprint
// requires, and state never exceeds the budget.
//
// Distances are measured on the sampled sub-stream by a BoundedAnalyzer
// with bound == max_tracked and rescaled at record time by the CURRENT
// rate R (distance d -> d/R, count 1 -> round(1/R)), because R changes as
// the threshold decays — a finish-time rescale (ApproxAnalyzer's scheme)
// would misattribute early, high-rate samples. Scaled distances at or
// beyond `distance_cap` land in the infinity bin, exactly like a bounded
// engine, which keeps the dense histogram O(distance_cap) instead of
// O(max_tracked / R).
//
// Approximations, documented for the accuracy bound in DESIGN.md:
//  - Hash-evicted addresses are dropped lazily: they stop being sampled
//    immediately (the threshold excludes them) but their last entry ages
//    out of the bounded engine by LRU instead of being excised, which can
//    inflate a few subsequent distances by at most the number of stale
//    entries (< max_tracked).
//  - Counts are scaled by round(1/R); the miss-RATIO estimator is
//    unbiased up to this rounding because every bin of a window shares
//    the same factor.
//  - SHARDS_adj: each window is corrected by adding the shortfall between
//    the expected sampled-reference count (window_refs * R) and the
//    actual count to the distance-0 bin (negative shortfalls are clamped
//    to zero — Histogram counts are unsigned).
// With max_tracked ~= 8K the SHARDS paper reports mean absolute MRC error
// under 0.01 on storage traces; the accuracy test here asserts mean
// absolute miss-ratio error < 0.05 on zipf workloads at a 256-entry
// budget.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <queue>
#include <span>
#include <utility>
#include <vector>

#include "hash/addr_map.hpp"
#include "hist/histogram.hpp"
#include "seq/analyzer.hpp"
#include "seq/bounded.hpp"
#include "tree/splay_tree.hpp"
#include "util/check.hpp"
#include "util/prng.hpp"
#include "util/types.hpp"

namespace parda {

class FixedSizeSampler {
 public:
  /// max_tracked: hard budget on distinct sampled addresses (>= 1).
  /// distance_cap: scaled distances >= cap record as infinity (0 = no
  /// cap; the dense histogram then grows with max_tracked / rate).
  /// initial_rate in (0, 1]: the threshold before any budget eviction.
  explicit FixedSizeSampler(std::size_t max_tracked,
                            std::uint64_t distance_cap = 0,
                            double initial_rate = 1.0,
                            std::uint64_t seed = 1)
      : max_tracked_(max_tracked),
        distance_cap_(distance_cap),
        seed_(seed),
        initial_threshold_(rate_to_threshold(initial_rate)),
        threshold_(initial_threshold_),
        exact_(max_tracked) {
    PARDA_CHECK(max_tracked >= 1);
    PARDA_CHECK(initial_rate > 0.0 && initial_rate <= 1.0);
  }

  // --- ReuseAnalyzer surface -----------------------------------------------
  void process(Addr z) {
    ++references_;
    ++window_references_;
    const std::uint64_t h = mix64(z ^ (seed_ * 0x9e3779b97f4a7c15ULL));
    if (h > threshold_) return;
    admit(z, h);
    record_scaled(exact_.access(z));
  }

  void process_block(std::span<const Addr> block) {
    for (Addr z : block) process(z);
  }

  /// Applies the SHARDS_adj correction for the references seen since the
  /// last take_window_histogram(). Idempotent.
  void finish() {
    if (finished_) return;
    finished_ = true;
    apply_window_adjustment();
  }

  const Histogram& histogram() const noexcept { return hist_; }

  EngineStats stats() const {
    EngineStats s = exact_.stats();
    s.references = references_;
    s.finite = hist_.finite_total();
    s.infinities = hist_.infinities();
    return s;
  }

  // --- windowed serving surface --------------------------------------------
  /// Takes the scaled histogram accumulated since the previous take (with
  /// its SHARDS_adj correction applied) and clears it, KEEPING the
  /// sampling state — the threshold, the tracked set, and the bounded
  /// engine's recency stack all persist, so cross-window reuses of
  /// sampled addresses still measure finite. This is the degraded
  /// tenant's window-roll primitive (decayed_fold consumes the result).
  Histogram take_window_histogram() {
    apply_window_adjustment();
    Histogram out = std::move(hist_);
    hist_.clear();
    finished_ = false;
    return out;
  }

  /// Current sampling rate R = P(address is sampled) under the current
  /// threshold; decays as budget evictions lower the threshold.
  double rate() const noexcept {
    return static_cast<double>(threshold_) / 18446744073709551615.0;
  }

  std::size_t tracked() const noexcept { return members_.size(); }
  std::size_t max_tracked() const noexcept { return max_tracked_; }
  std::uint64_t references_seen() const noexcept { return references_; }
  std::uint64_t sampled_references() const noexcept { return sampled_; }
  std::uint64_t budget_evictions() const noexcept { return budget_evictions_; }

  /// Resident-state estimate for quota accounting: the tracked-set table
  /// and eviction heap, the bounded engine's tree + hash entries, and the
  /// dense histogram. O(max_tracked + distance_cap) by construction.
  std::uint64_t footprint_bytes() const noexcept {
    // ~96 B/entry covers a splay node + robin-hood slot + slack.
    return static_cast<std::uint64_t>(members_.capacity()) * 16 +
           static_cast<std::uint64_t>(heap_.size()) * 16 +
           static_cast<std::uint64_t>(exact_.footprint()) * 96 +
           static_cast<std::uint64_t>(hist_.counts().capacity()) * 8;
  }

  void reset() {
    threshold_ = initial_threshold_;
    exact_.reset();
    members_.clear();
    heap_ = {};
    hist_.clear();
    references_ = 0;
    sampled_ = 0;
    window_references_ = 0;
    window_sampled_ = 0;
    budget_evictions_ = 0;
    finished_ = false;
  }

 private:
  /// rate * 2^64, saturated: the double product of a rate near 1 can round
  /// up to exactly 2^64, whose uint64 cast would be undefined.
  static std::uint64_t rate_to_threshold(double rate) noexcept {
    const double scaled = rate * 18446744073709551616.0;  // rate * 2^64
    if (scaled >= 18446744073709551616.0) return ~std::uint64_t{0};
    return static_cast<std::uint64_t>(scaled);
  }

  /// Tracks z in the sampled set; evicts the max-hash member (lowering
  /// the threshold) when the budget would be exceeded.
  void admit(Addr z, std::uint64_t h) {
    if (members_.contains(z)) return;
    members_.insert_or_assign(z, h);
    heap_.emplace(h, z);
    if (members_.size() <= max_tracked_) return;
    const auto [max_hash, victim] = heap_.top();
    heap_.pop();
    members_.erase(victim);
    ++budget_evictions_;
    // Future references hash-compare against the lowered threshold, so
    // the victim (and anything rarer) never re-enters; its stale entry in
    // the bounded engine ages out by LRU (see file comment).
    threshold_ = max_hash == 0 ? 0 : max_hash - 1;
  }

  void record_scaled(Distance d) {
    ++sampled_;
    ++window_sampled_;
    const double inv = rate() > 0.0 ? 1.0 / rate() : 1.0;
    const auto count =
        static_cast<std::uint64_t>(std::max<long long>(1, std::llround(inv)));
    if (d == kInfiniteDistance) {
      hist_.record(kInfiniteDistance, count);
      return;
    }
    const auto scaled = static_cast<Distance>(
        std::llround(static_cast<double>(d) * inv));
    if (distance_cap_ != 0 && scaled >= distance_cap_) {
      hist_.record(kInfiniteDistance, count);
    } else {
      hist_.record(scaled, count);
    }
  }

  /// SHARDS_adj for the current window: the expected sampled count under
  /// the current rate minus the actual count, added (scaled) to the
  /// distance-0 bin. Clamped at zero on the short side.
  void apply_window_adjustment() {
    const double r = rate();
    if (r > 0.0 && r < 1.0) {
      const auto expected = static_cast<std::int64_t>(
          std::llround(static_cast<double>(window_references_) * r));
      const std::int64_t diff =
          expected - static_cast<std::int64_t>(window_sampled_);
      if (diff > 0) {
        const auto count = static_cast<std::uint64_t>(
            std::llround(static_cast<double>(diff) / r));
        hist_.record(0, count);
      }
    }
    window_references_ = 0;
    window_sampled_ = 0;
  }

  std::size_t max_tracked_;
  std::uint64_t distance_cap_;
  std::uint64_t seed_;
  std::uint64_t initial_threshold_;
  std::uint64_t threshold_;
  BoundedAnalyzer<SplayTree> exact_;  // runs on the sampled sub-stream
  AddrMap members_;                   // sampled addr -> its hash
  // Max-heap over (hash, addr): the eviction order. Every member is
  // pushed exactly once (admit() dedups), so no lazy deletion is needed.
  std::priority_queue<std::pair<std::uint64_t, Addr>> heap_;
  Histogram hist_;  // scaled; cumulative since the last window take
  std::uint64_t references_ = 0;
  std::uint64_t sampled_ = 0;
  std::uint64_t window_references_ = 0;
  std::uint64_t window_sampled_ = 0;
  std::uint64_t budget_evictions_ = 0;
  bool finished_ = false;
};

static_assert(ReuseAnalyzer<FixedSizeSampler>);
static_assert(BlockReuseAnalyzer<FixedSizeSampler>);

}  // namespace parda
