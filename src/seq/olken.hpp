// Olken's tree-based sequential reuse distance analysis (paper Algorithm 1).
//
// State is a hash table (address -> last timestamp) plus an order-statistic
// tree holding one entry per distinct address, keyed by last-reference
// timestamp. Each reference costs one hash lookup and O(log M) tree work.
// The tree engine is a template parameter; the paper's configuration is
// OlkenAnalyzer<SplayTree>.
#pragma once

#include <span>

#include "hash/addr_map.hpp"
#include "hist/histogram.hpp"
#include "seq/analyzer.hpp"
#include "tree/order_stat_tree.hpp"
#include "tree/splay_tree.hpp"
#include "util/types.hpp"

namespace parda {

template <OrderStatTree Tree>
class OlkenAnalyzer {
 public:
  OlkenAnalyzer() = default;

  /// Processes one reference and returns its reuse distance
  /// (kInfiniteDistance for a first reference). Does NOT touch the
  /// internal histogram — callers that want the distance stream tally it
  /// themselves; the ReuseAnalyzer surface is process().
  Distance access(Addr z) {
    Distance d = kInfiniteDistance;
    if (const Timestamp* last = table_.find(z)) {
      d = tree_.count_greater(*last);
      tree_.erase(*last);
    }
    tree_.insert(now_, z);
    table_.insert_or_assign(z, now_);
    if (tree_.size() > peak_) peak_ = tree_.size();
    ++now_;
    return d;
  }

  /// Processes one reference and tallies it into hist.
  void access_and_record(Addr z, Histogram& hist) { hist.record(access(z)); }

  // --- ReuseAnalyzer surface -----------------------------------------------
  void process(Addr z) { hist_.record(access(z)); }

  /// Batched processing: identical tallies to per-reference process(),
  /// with the hash probe a few references ahead software-prefetched so the
  /// table's home slot is resident by the time access() runs.
  void process_block(std::span<const Addr> block) {
    constexpr std::size_t kAhead = 8;
    const std::size_t n = block.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (i + kAhead < n) table_.prefetch(block[i + kAhead]);
      hist_.record(access(block[i]));
    }
  }

  void finish() {}
  const Histogram& histogram() const noexcept { return hist_; }
  EngineStats stats() const {
    EngineStats s;
    s.references = now_;
    s.finite = hist_.finite_total();
    s.infinities = hist_.infinities();
    s.hash_probes = table_.probe_count();
    s.peak_footprint = peak_;
    detail::fill_tree_stats(tree_, s);
    return s;
  }

  /// Next timestamp to be assigned (== number of references processed).
  Timestamp time() const noexcept { return now_; }

  /// Number of distinct addresses seen so far.
  std::size_t footprint() const noexcept { return tree_.size(); }

  const Tree& tree() const noexcept { return tree_; }
  Tree& tree() noexcept { return tree_; }
  const AddrMap& table() const noexcept { return table_; }
  AddrMap& table() noexcept { return table_; }

  void reset() {
    tree_.clear();
    table_.clear();
    hist_.clear();
    now_ = 0;
    peak_ = 0;
  }

 private:
  Tree tree_;
  AddrMap table_;
  Histogram hist_;
  Timestamp now_ = 0;
  std::size_t peak_ = 0;
};

static_assert(ReuseAnalyzer<OlkenAnalyzer<SplayTree>>);
static_assert(BlockReuseAnalyzer<OlkenAnalyzer<SplayTree>>);

/// Runs Algorithm 1 over a whole trace and returns the histogram.
template <OrderStatTree Tree = SplayTree>
Histogram olken_analysis(std::span<const Addr> trace) {
  OlkenAnalyzer<Tree> analyzer;
  return analyze_trace(analyzer, trace);
}

}  // namespace parda
