// Approximate reuse distance analysis by address sampling — the
// accuracy-for-speed family the paper contrasts with (Ding & Zhong [4],
// Zhong & Chang [19], Schuff et al. [15]).
//
// A hash of the address decides membership in the sampled sub-trace
// (spatial sampling), the exact engine runs on the sample, and distances
// and counts are scaled back by the sampling rate. Sampling by *address*
// (not by reference) keeps every reuse pair of a sampled address intact,
// so the scaled distance d/rate is an unbiased estimate of the true stack
// distance. Parda is "compatible with ... approximate analysis techniques"
// (Section VII); sampled_parda_analysis composes the two.
#pragma once

#include <cmath>
#include <span>
#include <vector>

#include "core/parda.hpp"
#include "hist/histogram.hpp"
#include "seq/analyzer.hpp"
#include "seq/olken.hpp"
#include "util/check.hpp"
#include "util/prng.hpp"
#include "util/types.hpp"

namespace parda {

/// True iff addr belongs to the sampled subset at the given rate.
inline bool sample_selects(Addr addr, double rate,
                           std::uint64_t seed) noexcept {
  const auto threshold = static_cast<std::uint64_t>(
      rate * 18446744073709551615.0);  // rate * (2^64 - 1)
  return mix64(addr ^ (seed * 0x9e3779b97f4a7c15ULL)) <= threshold;
}

/// Extracts the sampled sub-trace.
inline std::vector<Addr> sample_trace(std::span<const Addr> trace,
                                      double rate, std::uint64_t seed) {
  std::vector<Addr> sampled;
  sampled.reserve(static_cast<std::size_t>(
      static_cast<double>(trace.size()) * rate * 1.2) + 16);
  for (Addr a : trace) {
    if (sample_selects(a, rate, seed)) sampled.push_back(a);
  }
  return sampled;
}

/// Rescales a histogram measured on a rate-sampled sub-trace back to
/// full-trace coordinates: distances and counts are multiplied by 1/rate.
inline Histogram rescale_sampled_histogram(const Histogram& sampled,
                                           double rate) {
  PARDA_CHECK(rate > 0.0 && rate <= 1.0);
  Histogram out;
  const double inv = 1.0 / rate;
  const auto& counts = sampled.counts();
  for (std::size_t d = 0; d < counts.size(); ++d) {
    if (counts[d] == 0) continue;
    const auto scaled_d = static_cast<Distance>(
        std::llround(static_cast<double>(d) * inv));
    const auto scaled_count = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(counts[d]) * inv));
    out.record(scaled_d, scaled_count);
  }
  out.record(kInfiniteDistance,
             static_cast<std::uint64_t>(std::llround(
                 static_cast<double>(sampled.infinities()) * inv)));
  return out;
}

/// Streaming sampled engine: spatial-samples the reference stream into an
/// exact Olken engine and rescales at finish(). rate in (0, 1]; rate == 1
/// degenerates to the exact analysis.
class ApproxAnalyzer {
 public:
  explicit ApproxAnalyzer(double rate, std::uint64_t seed = 1)
      : rate_(rate), seed_(seed) {
    PARDA_CHECK(rate > 0.0 && rate <= 1.0);
  }

  void process(Addr z) {
    ++references_;
    if (rate_ >= 1.0 || sample_selects(z, rate_, seed_)) exact_.process(z);
  }

  void finish() {
    if (finished_) return;
    finished_ = true;
    exact_.finish();
    hist_ = rate_ >= 1.0 ? exact_.histogram()
                         : rescale_sampled_histogram(exact_.histogram(), rate_);
  }

  /// Rescaled to full-trace coordinates; valid after finish().
  const Histogram& histogram() const noexcept { return hist_; }

  EngineStats stats() const {
    // Structural counters (probes, rotations, footprint) reflect the
    // sampled sub-trace the exact engine actually ran on; references is
    // the unsampled stream length.
    EngineStats s = exact_.stats();
    s.references = references_;
    s.finite = hist_.finite_total();
    s.infinities = hist_.infinities();
    return s;
  }

  double rate() const noexcept { return rate_; }
  std::uint64_t sampled_references() const noexcept { return exact_.time(); }

  void reset() {
    exact_.reset();
    hist_.clear();
    references_ = 0;
    finished_ = false;
  }

 private:
  double rate_;
  std::uint64_t seed_;
  OlkenAnalyzer<SplayTree> exact_;
  Histogram hist_;
  std::uint64_t references_ = 0;
  bool finished_ = false;
};

static_assert(ReuseAnalyzer<ApproxAnalyzer>);

/// Sequential sampled analysis: exact Olken on the sampled addresses,
/// rescaled. rate in (0, 1]; rate == 1 degenerates to the exact analysis.
inline Histogram sampled_analysis(std::span<const Addr> trace, double rate,
                                  std::uint64_t seed = 1) {
  ApproxAnalyzer analyzer(rate, seed);
  return analyze_trace(analyzer, trace);
}

/// Sampling composed with the parallel algorithm (Section VII: "our
/// algorithm can be combined with approximate analysis techniques").
inline Histogram sampled_parda_analysis(std::span<const Addr> trace,
                                        double rate,
                                        const PardaOptions& options,
                                        std::uint64_t seed = 1) {
  if (rate >= 1.0) return parda_analyze(trace, options).hist;
  const std::vector<Addr> sampled = sample_trace(trace, rate, seed);
  return rescale_sampled_histogram(parda_analyze(sampled, options).hist,
                                   rate);
}

}  // namespace parda
