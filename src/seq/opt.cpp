#include "seq/opt.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "hash/addr_map.hpp"
#include "util/check.hpp"

namespace parda {

namespace {

constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();

/// next_use[t] = index of the next reference to trace[t]'s address after
/// position t, or kNever.
std::vector<std::uint64_t> compute_next_use(std::span<const Addr> trace) {
  std::vector<std::uint64_t> next(trace.size(), kNever);
  AddrMap upcoming;  // addr -> next position seen while scanning backwards
  for (std::size_t t = trace.size(); t-- > 0;) {
    if (const Timestamp* later = upcoming.find(trace[t])) {
      next[t] = *later;
    }
    upcoming.insert_or_assign(trace[t], t);
  }
  return next;
}

}  // namespace

std::vector<Distance> opt_distances(std::span<const Addr> trace) {
  const std::vector<std::uint64_t> next_use = compute_next_use(trace);
  std::vector<Distance> distances(trace.size(), kInfiniteDistance);

  struct Entry {
    Addr addr;
    std::uint64_t next_use;  // always > current time while resident
  };
  std::vector<Entry> stack;  // stack[0] is the top

  for (std::size_t t = 0; t < trace.size(); ++t) {
    const Addr x = trace[t];
    // Locate x (linear scan; its depth is the OPT stack distance).
    std::size_t old_pos = stack.size();
    for (std::size_t i = 0; i < stack.size(); ++i) {
      if (stack[i].addr == x) {
        old_pos = i;
        break;
      }
    }
    const bool was_present = old_pos != stack.size();
    if (was_present) {
      distances[t] = static_cast<Distance>(old_pos);
    } else {
      stack.emplace_back();  // the percolation chain runs to the bottom
    }
    // Percolate: x takes the top; the previous occupants of positions
    // [0, old_pos) compete downward by next-use priority (sooner next use
    // stays higher); the final loser settles at old_pos.
    Entry displaced{x, next_use[t]};
    for (std::size_t i = 0; i <= old_pos && i < stack.size(); ++i) {
      if (i == old_pos) {
        stack[i] = displaced;
        break;
      }
      // The carried entry competes with the incumbent for this slot; the
      // sooner next use wins (stays high), the loser keeps falling. On
      // the first step the carried entry is x itself, which was just
      // referenced and always takes the top.
      if (i == 0 || displaced.next_use < stack[i].next_use) {
        std::swap(stack[i], displaced);
      }
    }
    PARDA_DCHECK(stack[0].addr == x);
  }
  return distances;
}

Histogram opt_distance_analysis(std::span<const Addr> trace) {
  Histogram hist;
  for (Distance d : opt_distances(trace)) hist.record(d);
  return hist;
}

OptCacheSim::OptCacheSim(std::uint64_t capacity, std::span<const Addr> trace)
    : capacity_(capacity),
      trace_(trace.begin(), trace.end()),
      next_use_(compute_next_use(trace)) {
  PARDA_CHECK(capacity >= 1);
}

std::uint64_t OptCacheSim::run() {
  // resident: addr -> next use position (kept current at each access).
  std::unordered_map<Addr, std::uint64_t> resident;
  resident.reserve(static_cast<std::size_t>(capacity_) * 2);
  hits_ = 0;
  misses_ = 0;
  for (std::size_t t = 0; t < trace_.size(); ++t) {
    const Addr x = trace_[t];
    const auto it = resident.find(x);
    if (it != resident.end()) {
      ++hits_;
      it->second = next_use_[t];
      continue;
    }
    ++misses_;
    if (resident.size() >= capacity_) {
      // Belady: evict the farthest next use.
      auto victim = resident.begin();
      for (auto cur = resident.begin(); cur != resident.end(); ++cur) {
        if (cur->second > victim->second) victim = cur;
      }
      resident.erase(victim);
    }
    resident.emplace(x, next_use_[t]);
  }
  return hits_;
}

}  // namespace parda
