// Raw-speed MRC engine: an intrusive doubly-linked LRU chain with one
// marker pointer per binary-log level (the spm-sieve RD trick).
//
// Every other engine pays O(log M) balanced-tree work per reference to
// answer the *exact* reuse distance — but the dominant consumer, miss-
// ratio curves, only reads the histogram at log2 granularity. This engine
// answers exactly that question and nothing more, which buys a much
// cheaper access:
//
//   hash probe + unlink + relink + at most #buckets marker hops.
//
// Structure: all currently-tracked addresses sit on one LRU chain (head =
// most recent). A node's position p in the chain IS the reuse distance its
// address would resolve to right now, so its log2 bucket is a function of
// p alone: bucket 0 holds p == 0, bucket i >= 1 holds p in [2^(i-1), 2^i)
// — the exact layout of Histogram::log2_buckets(). Each node caches its
// bucket (`level`), and marker[i] points at the LAST node of level i (the
// node at position 2^i - 1). Splicing an accessed node to the front shifts
// every node ahead of it down one position, but only the nodes crossing a
// bucket edge change level — exactly the marker nodes — so the whole
// update is one level bump + one `prev` hop per affected marker, with no
// rebalancing. Nodes live in an arena indexed by 32-bit links (24 bytes a
// node, no per-access allocation); evicted nodes go on a free list, so
// bounded operation recycles memory at zero allocation steady-state.
//
// The histogram is accumulated directly in log2 bins and materialized at
// finish() by recording each bin's count at the bucket's floor distance
// (0, 1, 2, 4, ...), which makes histogram().log2_buckets() bit-identical
// to the bucketed exact analysis — the property tests pin this against
// OlkenAnalyzer on every trace family. See DESIGN.md §13 for the marker
// invariant and why log2 granularity is lossless for MRC consumers.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "hash/addr_map.hpp"
#include "hist/histogram.hpp"
#include "seq/analyzer.hpp"
#include "util/check.hpp"
#include "util/types.hpp"

namespace parda {

class LruChainAnalyzer {
 public:
  /// Link / marker sentinel ("no node").
  static constexpr std::uint32_t kNull = 0xFFFFFFFFu;
  /// access_bucket() result for a first reference or capacity miss.
  static constexpr std::uint32_t kMissBucket = 0xFFFFFFFFu;
  /// Enough levels for any footprint a 32-bit arena can hold.
  static constexpr std::uint32_t kMaxLevels = 34;

  /// bound == 0: unbounded (track every distinct address). bound B >= 1:
  /// keep only the B most recently referenced addresses, evicting LRU —
  /// the Algorithm 7 cache-bound semantics, so every reference with true
  /// distance < B lands in its exact bucket and everything else is an
  /// infinity.
  explicit LruChainAnalyzer(std::uint64_t bound = 0) : bound_(bound) {
    marker_.fill(kNull);
    if (bound_ != 0) nodes_.reserve(static_cast<std::size_t>(bound_));
  }

  /// Processes one reference and returns the log2 bucket of its reuse
  /// distance (kMissBucket for a first reference or capacity miss).
  std::uint32_t access_bucket(Addr z) {
    ++now_;
    if (const Timestamp* slot = table_.find(z)) {
      const auto x = static_cast<std::uint32_t>(*slot);
      const std::uint32_t level = nodes_[x].level;
      if (x != head_) move_to_front(x, level);
      return level;
    }
    insert_miss(z);
    return kMissBucket;
  }

  /// Processes one reference and returns its distance *bucket floor* —
  /// 0 for bucket 0, 2^(i-1) for bucket i — or kInfiniteDistance on a
  /// miss. The floor is the smallest distance in the bucket; the true
  /// distance lies in [floor, 2*floor) (d == floor exactly for buckets
  /// 0 and 1).
  Distance access(Addr z) {
    const std::uint32_t b = access_bucket(z);
    if (b == kMissBucket) return kInfiniteDistance;
    return bucket_floor(b);
  }

  /// Smallest distance in bucket b (the distance the bin is recorded at).
  static constexpr Distance bucket_floor(std::uint32_t b) noexcept {
    return b == 0 ? 0 : Distance{1} << (b - 1);
  }

  // --- ReuseAnalyzer surface -----------------------------------------------
  void process(Addr z) {
    const std::uint32_t b = access_bucket(z);
    if (b == kMissBucket) {
      ++inf_count_;
    } else {
      ++bins_[b];
    }
  }

  /// Batched processing: identical tallies to per-reference process(),
  /// with the hash probe for a few references ahead software-prefetched so
  /// the robin-hood chain's first line is resident when find() runs.
  void process_block(std::span<const Addr> block) {
    constexpr std::size_t kAhead = 8;
    const std::size_t n = block.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (i + kAhead < n) table_.prefetch(block[i + kAhead]);
      process(block[i]);
    }
  }

  /// Materializes the log2 bins into the histogram (each bin recorded at
  /// its bucket floor). Idempotent.
  void finish() {
    if (finished_) return;
    finished_ = true;
    for (std::uint32_t b = 0; b < kMaxLevels; ++b) {
      if (bins_[b] != 0) hist_.record(bucket_floor(b), bins_[b]);
    }
    if (inf_count_ != 0) hist_.record(kInfiniteDistance, inf_count_);
  }

  const Histogram& histogram() const noexcept { return hist_; }

  EngineStats stats() const {
    EngineStats s;
    s.references = now_;
    s.infinities = inf_count_;
    s.finite = now_ - inf_count_;
    s.hash_probes = table_.probe_count();
    s.evictions = evictions_;
    s.marker_hops = marker_hops_;
    s.peak_footprint = peak_;
    return s;
  }

  // --- Introspection --------------------------------------------------------
  std::uint64_t bound() const noexcept { return bound_; }
  Timestamp time() const noexcept { return now_; }
  /// Distinct addresses currently on the chain.
  std::size_t footprint() const noexcept { return size_; }
  /// Arena slots ever allocated; stays at bound under bounded operation
  /// because evicted nodes are recycled through the free list.
  std::size_t allocated_nodes() const noexcept { return nodes_.size(); }
  /// Nodes currently parked on the free list.
  std::size_t free_nodes() const noexcept { return free_count_; }
  std::uint64_t eviction_count() const noexcept { return evictions_; }
  std::uint64_t marker_hop_count() const noexcept { return marker_hops_; }
  /// The raw log2 bins (index = bucket), live during processing.
  std::span<const std::uint64_t> bins() const noexcept {
    return {bins_.data(), kMaxLevels};
  }

  /// Full structural audit: chain/level/marker/table/free-list agreement.
  /// O(footprint); for tests and debugging. Returns false and fills `why`
  /// (if given) on the first violated invariant.
  bool check_invariants(std::string* why = nullptr) const;

  void reset();

 private:
  struct Node {
    Addr addr = 0;
    std::uint32_t prev = kNull;
    std::uint32_t next = kNull;
    std::uint32_t level = 0;
  };

  /// Splices non-head node x (at some position p with bucket `level`, so
  /// level >= 1) to the front. Nodes ahead of x shift down one position;
  /// the boundary node of each level below x's crosses into the next
  /// level, which is exactly a marker slide: bump its level, hop the
  /// marker one node toward the head.
  void move_to_front(std::uint32_t x, std::uint32_t level) {
    Node* nodes = nodes_.data();
    std::uint64_t hops = level - 1;
    if (marker_[level] == x) {
      // x was its own level's boundary node (position 2^level - 1); the
      // node ahead of it inherits that position once x leaves.
      marker_[level] = nodes[x].prev;
      ++hops;
    }
    for (std::uint32_t i = 1; i < level; ++i) {
      const std::uint32_t m = marker_[i];
      nodes[m].level = i + 1;
      marker_[i] = nodes[m].prev;
    }
    marker_hops_ += hops;
    nodes[head_].level = 1;  // old head shifts from position 0 to 1
    // Unlink x ...
    const std::uint32_t p = nodes[x].prev;
    const std::uint32_t n = nodes[x].next;
    nodes[p].next = n;
    if (n != kNull) {
      nodes[n].prev = p;
    } else {
      tail_ = p;
    }
    // ... and relink at the front.
    nodes[x].prev = kNull;
    nodes[x].next = head_;
    nodes[x].level = 0;
    nodes[head_].prev = x;
    head_ = x;
  }

  void insert_miss(Addr z);
  void evict_tail();

  std::uint64_t bound_;
  std::vector<Node> nodes_;  // arena; nodes addressed by index
  AddrMap table_;            // addr -> arena index of its node
  std::uint32_t head_ = kNull;
  std::uint32_t tail_ = kNull;
  std::uint32_t free_ = kNull;  // singly linked through Node::next
  // marker_[i] = node at position 2^i - 1 (the last node of level i), or
  // kNull while the chain is shorter than 2^i. marker_[0] would always be
  // the head, so it is left implicit and slot 0 stays kNull.
  std::array<std::uint32_t, kMaxLevels> marker_;
  std::array<std::uint64_t, kMaxLevels> bins_{};  // finite log2 tallies
  Histogram hist_;
  std::uint64_t inf_count_ = 0;
  std::uint64_t now_ = 0;
  std::uint64_t size_ = 0;
  std::uint64_t peak_ = 0;
  std::uint64_t free_count_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t marker_hops_ = 0;
  bool finished_ = false;
};

static_assert(ReuseAnalyzer<LruChainAnalyzer>);
static_assert(BlockReuseAnalyzer<LruChainAnalyzer>);

/// Whole-trace convenience (log2-granular histogram; bound 0 = unbounded).
inline Histogram lru_chain_analysis(std::span<const Addr> trace,
                                    std::uint64_t bound = 0) {
  LruChainAnalyzer analyzer(bound);
  return analyze_trace(analyzer, trace);
}

}  // namespace parda
