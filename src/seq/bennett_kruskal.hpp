// The Bennett & Kruskal algorithm (1975, paper reference [2]): a hashing
// pre-pass records each reference's previous-access time; a second pass
// walks the trace keeping a bit per position ("this position was the last
// access of its address so far") in a Fenwick tree, so the reuse distance
// of a reference with previous access t0 is the number of set bits in
// (t0, t) — each set bit is one distinct intervening address.
//
// Unlike Olken's O(M)-space structure this needs O(N) bits, which is why
// Olken's tree superseded it; both are exposed for the engine ablation.
#pragma once

#include <span>
#include <vector>

#include "hash/addr_map.hpp"
#include "hist/histogram.hpp"
#include "seq/analyzer.hpp"
#include "tree/fenwick.hpp"
#include "util/check.hpp"
#include "util/types.hpp"

namespace parda {

/// Two-pass engine behind bennett_kruskal_analysis. The algorithm cannot
/// answer distances online (pass 2 needs the full previous-occurrence
/// table), so process() buffers references and finish() runs both passes;
/// analyze() skips the buffering when the whole trace is already in hand.
class BennettKruskalAnalyzer {
 public:
  void process(Addr z) {
    PARDA_CHECK(!finished_);
    trace_.push_back(z);
  }

  /// Batched buffering: one bounds-check + bulk append instead of a
  /// push_back per reference. Tallies are identical — the two passes
  /// run over the same buffered trace in finish().
  void process_block(std::span<const Addr> block) {
    PARDA_CHECK(!finished_);
    trace_.insert(trace_.end(), block.begin(), block.end());
  }

  void finish() {
    if (finished_) return;
    finished_ = true;
    run_two_pass(trace_);
    references_ = trace_.size();
  }

  /// Whole-trace entry point: both passes directly over `trace`, with no
  /// buffering copy. The analyzer must be fresh (no process() calls yet).
  void analyze(std::span<const Addr> trace) {
    PARDA_CHECK(!finished_ && trace_.empty());
    finished_ = true;
    run_two_pass(trace);
    references_ = trace.size();
  }

  const Histogram& histogram() const noexcept { return hist_; }

  EngineStats stats() const {
    EngineStats s;
    s.references = references_;
    s.finite = hist_.finite_total();
    s.infinities = hist_.infinities();
    s.hash_probes = hash_probes_;
    s.peak_footprint = distinct_;
    return s;
  }

  void reset() {
    trace_.clear();
    hist_.clear();
    finished_ = false;
    references_ = 0;
    hash_probes_ = 0;
    distinct_ = 0;
  }

 private:
  void run_two_pass(std::span<const Addr> trace) {
    const std::size_t n = trace.size();
    if (n == 0) return;

    // Pass 1: previous-occurrence index per reference (kNoTimestamp =
    // first).
    std::vector<Timestamp> previous(n);
    {
      AddrMap last_seen;
      for (std::size_t t = 0; t < n; ++t) {
        if (const Timestamp* last = last_seen.find(trace[t])) {
          previous[t] = *last;
        } else {
          previous[t] = kNoTimestamp;
          ++distinct_;
        }
        last_seen.insert_or_assign(trace[t], t);
      }
      hash_probes_ = last_seen.probe_count();
    }

    // Pass 2: maintain "is live last-access" flags in a Fenwick tree.
    FenwickTree live(n);
    for (std::size_t t = 0; t < n; ++t) {
      if (previous[t] == kNoTimestamp) {
        hist_.record(kInfiniteDistance);
      } else {
        const auto t0 = static_cast<std::size_t>(previous[t]);
        // Set bits strictly inside (t0, t) are the distinct addresses
        // referenced since the previous access.
        const std::int64_t distinct =
            t0 + 1 <= t - 1 ? live.range_sum(t0 + 1, t - 1) : 0;
        hist_.record(static_cast<Distance>(distinct));
        live.add(t0, -1);  // t0 is no longer its address's last access
      }
      live.add(t, +1);
    }
  }

  std::vector<Addr> trace_;
  Histogram hist_;
  bool finished_ = false;
  std::size_t references_ = 0;
  std::uint64_t hash_probes_ = 0;
  std::size_t distinct_ = 0;
};

static_assert(ReuseAnalyzer<BennettKruskalAnalyzer>);
static_assert(BlockReuseAnalyzer<BennettKruskalAnalyzer>);

/// Whole-trace analysis; requires the trace in memory (two passes).
inline Histogram bennett_kruskal_analysis(std::span<const Addr> trace) {
  BennettKruskalAnalyzer analyzer;
  analyzer.analyze(trace);
  return analyzer.histogram();
}

}  // namespace parda
