// The Bennett & Kruskal algorithm (1975, paper reference [2]): a hashing
// pre-pass records each reference's previous-access time; a second pass
// walks the trace keeping a bit per position ("this position was the last
// access of its address so far") in a Fenwick tree, so the reuse distance
// of a reference with previous access t0 is the number of set bits in
// (t0, t) — each set bit is one distinct intervening address.
//
// Unlike Olken's O(M)-space structure this needs O(N) bits, which is why
// Olken's tree superseded it; both are exposed for the engine ablation.
#pragma once

#include <span>
#include <vector>

#include "hash/addr_map.hpp"
#include "hist/histogram.hpp"
#include "tree/fenwick.hpp"
#include "util/types.hpp"

namespace parda {

/// Whole-trace analysis; requires the trace in memory (two passes).
inline Histogram bennett_kruskal_analysis(std::span<const Addr> trace) {
  const std::size_t n = trace.size();
  Histogram hist;
  if (n == 0) return hist;

  // Pass 1: previous-occurrence index per reference (kNoTimestamp = first).
  std::vector<Timestamp> previous(n);
  {
    AddrMap last_seen;
    for (std::size_t t = 0; t < n; ++t) {
      if (const Timestamp* last = last_seen.find(trace[t])) {
        previous[t] = *last;
      } else {
        previous[t] = kNoTimestamp;
      }
      last_seen.insert_or_assign(trace[t], t);
    }
  }

  // Pass 2: maintain "is live last-access" flags in a Fenwick tree.
  FenwickTree live(n);
  for (std::size_t t = 0; t < n; ++t) {
    if (previous[t] == kNoTimestamp) {
      hist.record(kInfiniteDistance);
    } else {
      const auto t0 = static_cast<std::size_t>(previous[t]);
      // Set bits strictly inside (t0, t) are the distinct addresses
      // referenced since the previous access.
      const std::int64_t distinct =
          t0 + 1 <= t - 1 ? live.range_sum(t0 + 1, t - 1) : 0;
      hist.record(static_cast<Distance>(distinct));
      live.add(t0, -1);  // t0 is no longer its address's last access
    }
    live.add(t, +1);
  }
  return hist;
}

}  // namespace parda
