// The interval-based sequential algorithm of Almási, Caşcaval & Padua
// (paper reference [1], "Calculating stack distances efficiently").
//
// Instead of a tree of live last-access timestamps, track the *holes* —
// timestamps whose address was re-referenced later. The reuse distance of
// a reference whose previous access was at t0 is then
//
//   d = (now - 1 - t0) - holes_in(t0+1, now-1)
//
// i.e. all intervening timestamps minus the dead ones. Holes coalesce
// into few intervals when reuse is local, making the structure compact.
#pragma once

#include <span>

#include "hash/addr_map.hpp"
#include "hist/histogram.hpp"
#include "seq/analyzer.hpp"
#include "tree/interval_set.hpp"
#include "util/types.hpp"

namespace parda {

class IntervalAnalyzer {
 public:
  /// Processes one reference; returns its reuse distance. Kept
  /// out-of-line: the hole-walk in count_in dominates (microseconds per
  /// call on large footprints), so inlining buys nothing, and one shared
  /// copy keeps the per-reference and batched paths on identical code.
#if defined(__GNUC__) || defined(__clang__)
  __attribute__((noinline))
#endif
  Distance access(Addr z) {
    Distance d = kInfiniteDistance;
    const Timestamp now = now_;
    if (const Timestamp* last = table_.find(z)) {
      const Timestamp t0 = *last;
      const std::uint64_t intervening = now - 1 - t0;
      d = intervening - holes_.count_in(t0 + 1, now - 1);
      holes_.insert(t0);  // t0 is dead from here on
    }
    table_.insert_or_assign(z, now);
    ++now_;
    return d;
  }

  void access_and_record(Addr z, Histogram& hist) { hist.record(access(z)); }

  // --- ReuseAnalyzer surface -----------------------------------------------
  void process(Addr z) { hist_.record(access(z)); }

  /// Batched processing: identical tallies to per-reference process(),
  /// with the last-access probe for a few references ahead prefetched.
  void process_block(std::span<const Addr> block) {
    constexpr std::size_t kAhead = 8;
    const std::size_t n = block.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (i + kAhead < n) table_.prefetch(block[i + kAhead]);
      hist_.record(access(block[i]));
    }
  }

  void finish() {}
  const Histogram& histogram() const noexcept { return hist_; }
  EngineStats stats() const {
    EngineStats s;
    s.references = now_;
    s.finite = hist_.finite_total();
    s.infinities = hist_.infinities();
    s.hash_probes = table_.probe_count();
    s.peak_footprint = footprint();
    return s;
  }

  Timestamp time() const noexcept { return now_; }
  std::size_t footprint() const noexcept {
    return static_cast<std::size_t>(now_ - holes_.size());
  }
  /// The compression measure: holes per interval (paper [1]'s win).
  std::size_t hole_intervals() const noexcept {
    return holes_.interval_count();
  }

  void reset() {
    table_.clear();
    holes_.clear();
    hist_.clear();
    now_ = 0;
  }

 private:
  AddrMap table_;
  IntervalSet holes_;
  Histogram hist_;
  Timestamp now_ = 0;
};

static_assert(ReuseAnalyzer<IntervalAnalyzer>);
static_assert(BlockReuseAnalyzer<IntervalAnalyzer>);

/// Whole-trace analysis with the interval engine.
inline Histogram interval_analysis(std::span<const Addr> trace) {
  IntervalAnalyzer analyzer;
  return analyze_trace(analyzer, trace);
}

}  // namespace parda
