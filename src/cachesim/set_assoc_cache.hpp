// Set-associative LRU cache simulator with configurable block size.
//
// Used by the miss-rate-prediction application to quantify how closely the
// fully-associative model that reuse distance analysis assumes tracks a
// realistic cache organization.
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace parda {

struct CacheConfig {
  std::uint64_t total_blocks = 1024;  // capacity in blocks
  std::uint32_t ways = 8;             // associativity
  std::uint32_t block_words = 1;      // words per block (addresses are words)

  std::uint64_t num_sets() const noexcept { return total_blocks / ways; }
};

class SetAssocCache {
 public:
  explicit SetAssocCache(const CacheConfig& config);

  /// Accesses one word address; returns true on hit. Writes mark the line
  /// dirty; evicting a dirty line counts a writeback.
  bool access(Addr a, bool is_write = false);

  const CacheConfig& config() const noexcept { return config_; }
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::uint64_t writebacks() const noexcept { return writebacks_; }
  std::uint64_t accesses() const noexcept { return hits_ + misses_; }
  double miss_ratio() const noexcept {
    const std::uint64_t n = accesses();
    return n == 0 ? 0.0
                  : static_cast<double>(misses_) / static_cast<double>(n);
  }

  void reset();

 private:
  struct Line {
    Addr tag = 0;
    std::uint64_t last_used = 0;
    bool valid = false;
    bool dirty = false;
  };

  CacheConfig config_;
  std::vector<Line> lines_;  // sets * ways, row-major by set
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t writebacks_ = 0;
};

}  // namespace parda
