// Multi-level LRU cache hierarchy simulator (the paper's Section I
// motivates reuse distance with the multi-level cache designs of modern
// processors).
//
// Two recency policies are supported per hierarchy:
//  - kGlobalLru: every level observes every reference (a "stack" LRU
//    hierarchy). With fully-associative levels the Mattson inclusion
//    property extends across levels, so one reuse distance histogram
//    predicts every level exactly: level i hits references with
//    capacity(i-1) <= d < capacity(i).
//  - kFilteredLru: a level only observes the references that miss above
//    it (real hardware). The filtering perturbs recency order, so the
//    single-histogram prediction becomes an approximation — the tests
//    quantify the gap.
#pragma once

#include <cstdint>
#include <vector>

#include "cachesim/lru_cache.hpp"
#include "hist/histogram.hpp"
#include "util/types.hpp"

namespace parda {

enum class HierarchyPolicy {
  kGlobalLru,    // all levels update recency on every access
  kFilteredLru,  // level i updates only on a miss in levels < i
};

struct LevelStats {
  std::uint64_t capacity = 0;
  std::uint64_t accesses = 0;  // references that reached this level
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;

  double local_hit_ratio() const noexcept {
    return accesses == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(accesses);
  }
};

class CacheHierarchy {
 public:
  /// capacities must be strictly increasing (inclusive hierarchy).
  CacheHierarchy(std::vector<std::uint64_t> capacities,
                 HierarchyPolicy policy);

  /// Accesses one address; returns the level that hit (0-based), or the
  /// level count if it missed everywhere (memory access).
  std::size_t access(Addr a);

  std::size_t levels() const noexcept { return caches_.size(); }
  const LevelStats& level(std::size_t i) const { return stats_[i]; }

  /// References that missed every level.
  std::uint64_t memory_accesses() const noexcept { return memory_; }

  void reset();

 private:
  HierarchyPolicy policy_;
  std::vector<LruCache> caches_;
  std::vector<LevelStats> stats_;
  std::uint64_t memory_ = 0;
};

/// Predicted per-level hits for a global-LRU fully-associative hierarchy:
/// level i captures references with capacities[i-1] <= d < capacities[i].
/// Exact for HierarchyPolicy::kGlobalLru (asserted in tests).
std::vector<std::uint64_t> predict_level_hits(
    const Histogram& hist, const std::vector<std::uint64_t>& capacities);

}  // namespace parda
