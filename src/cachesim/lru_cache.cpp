#include "cachesim/lru_cache.hpp"

#include "util/check.hpp"

namespace parda {

LruCache::LruCache(std::uint64_t capacity) : capacity_(capacity) {
  PARDA_CHECK(capacity >= 1);
}

bool LruCache::access(Addr a, bool is_write) {
  if (const Timestamp* slot = index_.find(a)) {
    lru_.splice(lru_.begin(), lru_, slots_[*slot]);  // move to MRU
    lru_.front().dirty |= is_write;
    ++hits_;
    return true;
  }
  ++misses_;
  if (lru_.size() >= capacity_) {
    const Line victim = lru_.back();
    lru_.pop_back();
    if (victim.dirty) ++writebacks_;
    const Timestamp* victim_slot = index_.find(victim.addr);
    PARDA_DCHECK(victim_slot != nullptr);
    free_slots_.push_back(*victim_slot);
    index_.erase(victim.addr);
  }
  lru_.push_front(Line{a, is_write});
  std::uint64_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = lru_.begin();
  } else {
    slot = slots_.size();
    slots_.push_back(lru_.begin());
  }
  index_.insert_or_assign(a, slot);
  return false;
}

std::uint64_t LruCache::dirty_resident() const noexcept {
  std::uint64_t dirty = 0;
  for (const Line& line : lru_) {
    if (line.dirty) ++dirty;
  }
  return dirty;
}

void LruCache::reset() {
  lru_.clear();
  index_.clear();
  slots_.clear();
  free_slots_.clear();
  hits_ = 0;
  misses_ = 0;
  writebacks_ = 0;
}

}  // namespace parda
