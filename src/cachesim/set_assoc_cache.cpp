#include "cachesim/set_assoc_cache.hpp"

#include "util/check.hpp"
#include "util/prng.hpp"

namespace parda {

SetAssocCache::SetAssocCache(const CacheConfig& config) : config_(config) {
  PARDA_CHECK(config.ways >= 1);
  PARDA_CHECK(config.block_words >= 1);
  PARDA_CHECK(config.total_blocks % config.ways == 0);
  PARDA_CHECK(config.num_sets() >= 1);
  lines_.resize(config.total_blocks);
}

bool SetAssocCache::access(Addr a, bool is_write) {
  const Addr block = a / config_.block_words;
  // Hash the block number into a set so the synthetic region layout
  // (disjoint high bits) does not alias pathologically.
  const std::uint64_t set = mix64(block) % config_.num_sets();
  Line* base = &lines_[set * config_.ways];
  ++tick_;

  Line* lru = base;
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == block) {
      line.last_used = tick_;
      line.dirty |= is_write;
      ++hits_;
      return true;
    }
    if (!line.valid) {
      lru = &line;  // prefer an invalid way
    } else if (lru->valid && line.last_used < lru->last_used) {
      lru = &line;
    }
  }
  ++misses_;
  if (lru->valid && lru->dirty) ++writebacks_;
  lru->tag = block;
  lru->valid = true;
  lru->dirty = is_write;
  lru->last_used = tick_;
  return false;
}

void SetAssocCache::reset() {
  for (Line& line : lines_) line = Line{};
  tick_ = 0;
  hits_ = 0;
  misses_ = 0;
  writebacks_ = 0;
}

}  // namespace parda
