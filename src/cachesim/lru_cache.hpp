// Exact fully-associative LRU cache simulator.
//
// This is the model reuse distance analysis predicts (paper Section I,
// advantage (1)): with capacity C, a reference hits iff its reuse distance
// is < C. The integration tests drive the simulator and the analyzers over
// the same traces and require hits == hist.hits_below(C) exactly.
#pragma once

#include <cstdint>
#include <list>
#include <vector>

#include "hash/addr_map.hpp"
#include "util/types.hpp"

namespace parda {

class LruCache {
 public:
  explicit LruCache(std::uint64_t capacity);

  /// Accesses one address; returns true on hit. Misses insert (and evict
  /// the least recently used entry if full). Writes mark the line dirty;
  /// evicting a dirty line counts a writeback (write-allocate,
  /// write-back policy).
  bool access(Addr a, bool is_write = false);

  std::uint64_t capacity() const noexcept { return capacity_; }
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::uint64_t accesses() const noexcept { return hits_ + misses_; }
  std::uint64_t writebacks() const noexcept { return writebacks_; }
  /// Dirty lines still resident (flushed writebacks at program end).
  std::uint64_t dirty_resident() const noexcept;
  std::size_t resident() const noexcept { return lru_.size(); }

  double miss_ratio() const noexcept {
    const std::uint64_t n = accesses();
    return n == 0 ? 0.0 : static_cast<double>(misses_) / static_cast<double>(n);
  }

  void reset();

 private:
  struct Line {
    Addr addr;
    bool dirty;
  };

  std::uint64_t capacity_;
  // Recency list (front = MRU) plus an index from address to list node:
  // AddrMap maps addr -> slot id, slots_ holds the list iterators (ids
  // recycled through free_slots_).
  std::list<Line> lru_;
  AddrMap index_;
  std::vector<std::list<Line>::iterator> slots_;
  std::vector<std::uint64_t> free_slots_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t writebacks_ = 0;
};

}  // namespace parda
