#include "cachesim/hierarchy.hpp"

#include "util/check.hpp"

namespace parda {

CacheHierarchy::CacheHierarchy(std::vector<std::uint64_t> capacities,
                               HierarchyPolicy policy)
    : policy_(policy) {
  PARDA_CHECK(!capacities.empty());
  std::uint64_t prev = 0;
  for (std::uint64_t c : capacities) {
    PARDA_CHECK(c > prev);
    prev = c;
    caches_.emplace_back(c);
    LevelStats stats;
    stats.capacity = c;
    stats_.push_back(stats);
  }
}

std::size_t CacheHierarchy::access(Addr a) {
  std::size_t hit_level = caches_.size();
  for (std::size_t i = 0; i < caches_.size(); ++i) {
    const bool reached = hit_level == caches_.size();
    if (!reached && policy_ == HierarchyPolicy::kFilteredLru) {
      // A hit above satisfied the reference; lower levels see nothing
      // (their recency and contents are untouched).
      break;
    }
    if (reached) ++stats_[i].accesses;
    const bool hit = caches_[i].access(a);
    if (reached) {
      if (hit) {
        ++stats_[i].hits;
        hit_level = i;
      } else {
        ++stats_[i].misses;
      }
    }
  }
  if (hit_level == caches_.size()) ++memory_;
  return hit_level;
}

void CacheHierarchy::reset() {
  for (LruCache& cache : caches_) cache.reset();
  for (LevelStats& stats : stats_) {
    const std::uint64_t cap = stats.capacity;
    stats = LevelStats{};
    stats.capacity = cap;
  }
  memory_ = 0;
}

std::vector<std::uint64_t> predict_level_hits(
    const Histogram& hist, const std::vector<std::uint64_t>& capacities) {
  std::vector<std::uint64_t> hits;
  hits.reserve(capacities.size());
  std::uint64_t below_prev = 0;
  for (std::uint64_t c : capacities) {
    const std::uint64_t below = hist.hits_below(c);
    hits.push_back(below - below_prev);
    below_prev = below;
  }
  return hits;
}

}  // namespace parda
