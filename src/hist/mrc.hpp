// Miss-ratio curve (MRC) derivation from a reuse distance histogram.
//
// This is the payoff that motivates reuse distance analysis (paper Section
// I): with an LRU fully-associative cache of size C, every reference with
// distance d < C hits and everything else misses, so one histogram yields
// the miss ratio of *every* cache size at once.
#pragma once

#include <cstdint>
#include <vector>

#include "hist/histogram.hpp"
#include "util/types.hpp"

namespace parda {

struct MrcPoint {
  std::uint64_t cache_size;  // in distinct data elements (words/blocks)
  double miss_ratio;         // misses / total references
};

/// Miss ratio of an LRU cache holding `cache_size` distinct elements.
double miss_ratio(const Histogram& hist, std::uint64_t cache_size) noexcept;

/// Number of misses for the same model.
std::uint64_t miss_count(const Histogram& hist,
                         std::uint64_t cache_size) noexcept;

/// The full curve sampled at the given cache sizes (ascending recommended).
std::vector<MrcPoint> miss_ratio_curve(const Histogram& hist,
                                       const std::vector<std::uint64_t>& sizes);

/// Power-of-two sample points 1, 2, 4, ... up to the first size where the
/// miss ratio reaches the compulsory floor (or max_size).
std::vector<MrcPoint> miss_ratio_curve_pow2(const Histogram& hist,
                                            std::uint64_t max_size);

/// Smallest cache size whose miss ratio is <= target; returns max_size + 1
/// if unattainable. Used by the cache-partitioning application.
std::uint64_t cache_size_for_miss_ratio(const Histogram& hist, double target,
                                        std::uint64_t max_size) noexcept;

}  // namespace parda
