// The reuse distance histogram: the output of every analysis engine.
//
// Finite distances are stored densely (distance -> count); first references
// (compulsory misses) are tallied in a separate infinity bin, matching the
// paper's hist[] + hist[inf] layout. Histograms are mergeable (the MPI
// reduce_sum of Algorithm 3) and serializable for the comm runtime.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/types.hpp"

namespace parda {

class Histogram {
 public:
  Histogram() = default;

  /// Tallies one reference with the given distance (may be
  /// kInfiniteDistance).
  void record(Distance d) { record(d, 1); }
  void record(Distance d, std::uint64_t count);

  std::uint64_t at(Distance d) const noexcept;
  std::uint64_t infinities() const noexcept { return infinities_; }

  /// Total references tallied, including infinities.
  std::uint64_t total() const noexcept { return total_; }
  /// Total references with finite distance.
  std::uint64_t finite_total() const noexcept { return total_ - infinities_; }

  /// Largest finite distance recorded; 0 if none.
  Distance max_distance() const noexcept;

  /// Number of references with distance strictly below d (d finite).
  /// With a fully associative LRU cache of size C, hits == hits_below(C).
  std::uint64_t hits_below(Distance d) const noexcept;

  /// Element-wise sum; the reduce_sum of Algorithm 3.
  void merge(const Histogram& other);

  void clear() noexcept;

  bool operator==(const Histogram& other) const noexcept;

  /// Dense counts, index == distance. May carry trailing zeros.
  const std::vector<std::uint64_t>& counts() const noexcept { return counts_; }

  /// log2-bucketed view: bucket 0 holds d == 0, bucket i >= 1 holds
  /// d in [2^(i-1), 2^i). Infinities are excluded.
  std::vector<std::uint64_t> log2_buckets() const;

  /// Mean of the finite distances (0 if none).
  double mean_finite_distance() const noexcept;

  /// Smallest distance d such that at least fraction p (in [0,1]) of the
  /// *finite* references have distance <= d; 0 if no finite references.
  Distance finite_distance_percentile(double p) const noexcept;

  /// Flat serialization: [infinities, total, n, counts[0..n)].
  std::vector<std::uint64_t> to_words() const;
  static Histogram from_words(const std::vector<std::uint64_t>& words);

  /// JSON serialization ("parda.histogram.v1"): sparse finite counts as
  /// [[distance, count], ...] plus the infinity bin and totals. This is
  /// THE interchange format — the metrics snapshot and hist/report tooling
  /// both use it; the CSV emitters remain for plotting only.
  std::string to_json() const;
  /// Inverse of to_json(). Throws json::JsonError on malformed input or a
  /// schema/total mismatch.
  static Histogram from_json(std::string_view text);

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t infinities_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace parda
