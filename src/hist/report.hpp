// Report emission for histograms and miss-ratio curves.
//
// JSON ("parda.histogram.v1", via Histogram::to_json) is the interchange
// format — it round-trips and is what the metrics snapshot embeds. The CSV
// emitters are plotting-only (gnuplot/python) and deprecated for anything
// that needs to be read back.
#pragma once

#include <string>
#include <vector>

#include "hist/histogram.hpp"
#include "hist/mrc.hpp"

namespace parda {

/// The "parda.histogram.v1" document plus a trailing newline, ready for
/// write_text_file. Read back with Histogram::from_json.
std::string histogram_to_json(const Histogram& hist);

/// CSV with header "distance,count" (finite rows ascending) and a final
/// "inf,<count>" row. Plotting-only: does not round-trip (use
/// histogram_to_json for interchange).
std::string histogram_to_csv(const Histogram& hist);

/// CSV with header "bucket_low,bucket_high,count" over log2 buckets.
/// Plotting-only; lossy (use histogram_to_json for interchange).
std::string histogram_to_csv_log2(const Histogram& hist);

/// CSV with header "cache_size,miss_ratio".
std::string mrc_to_csv(const std::vector<MrcPoint>& curve);

/// Writes content to path, throwing std::runtime_error on failure.
void write_text_file(const std::string& path, const std::string& content);

/// Reads the whole file as text, throwing std::runtime_error on failure.
std::string read_text_file(const std::string& path);

}  // namespace parda
