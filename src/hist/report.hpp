// CSV emission for histograms and miss-ratio curves, so bench harness
// output can be plotted (gnuplot/python) without re-running experiments.
#pragma once

#include <string>
#include <vector>

#include "hist/histogram.hpp"
#include "hist/mrc.hpp"

namespace parda {

/// CSV with header "distance,count" (finite rows ascending) and a final
/// "inf,<count>" row.
std::string histogram_to_csv(const Histogram& hist);

/// CSV with header "bucket_low,bucket_high,count" over log2 buckets.
std::string histogram_to_csv_log2(const Histogram& hist);

/// CSV with header "cache_size,miss_ratio".
std::string mrc_to_csv(const std::vector<MrcPoint>& curve);

/// Writes content to path, throwing std::runtime_error on failure.
void write_text_file(const std::string& path, const std::string& content);

}  // namespace parda
