#include "hist/mrc.hpp"

#include "util/check.hpp"

namespace parda {

std::uint64_t miss_count(const Histogram& hist,
                         std::uint64_t cache_size) noexcept {
  return hist.total() - hist.hits_below(cache_size);
}

double miss_ratio(const Histogram& hist, std::uint64_t cache_size) noexcept {
  if (hist.total() == 0) return 0.0;
  return static_cast<double>(miss_count(hist, cache_size)) /
         static_cast<double>(hist.total());
}

std::vector<MrcPoint> miss_ratio_curve(
    const Histogram& hist, const std::vector<std::uint64_t>& sizes) {
  std::vector<MrcPoint> curve;
  curve.reserve(sizes.size());
  for (std::uint64_t c : sizes) curve.push_back({c, miss_ratio(hist, c)});
  return curve;
}

std::vector<MrcPoint> miss_ratio_curve_pow2(const Histogram& hist,
                                            std::uint64_t max_size) {
  std::vector<MrcPoint> curve;
  const double floor_ratio =
      hist.total() == 0
          ? 0.0
          : static_cast<double>(hist.infinities()) /
                static_cast<double>(hist.total());
  for (std::uint64_t c = 1; c <= max_size; c *= 2) {
    const double r = miss_ratio(hist, c);
    curve.push_back({c, r});
    if (r <= floor_ratio) break;
    if (c > max_size / 2) break;  // avoid overflow
  }
  return curve;
}

std::uint64_t cache_size_for_miss_ratio(const Histogram& hist, double target,
                                        std::uint64_t max_size) noexcept {
  // The miss ratio is non-increasing in cache size: binary search.
  std::uint64_t lo = 0;
  std::uint64_t hi = max_size;
  if (miss_ratio(hist, max_size) > target) return max_size + 1;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (miss_ratio(hist, mid) <= target) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace parda
