#include "hist/histogram.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/json.hpp"

namespace parda {

void Histogram::record(Distance d, std::uint64_t count) {
  if (count == 0) return;
  if (d == kInfiniteDistance) {
    infinities_ += count;
  } else {
    // A finite distance is bounded by the trace footprint; anything this
    // large is an upstream bug (e.g. an underflowed subtraction), and
    // growing the dense array for it would hang — fail loudly instead.
    PARDA_CHECK(d < (1ULL << 48));
    if (d >= counts_.size()) {
      // Geometric growth so a rising max distance costs amortized O(1).
      std::size_t cap = std::max<std::size_t>(16, counts_.size());
      while (cap <= d) cap *= 2;
      counts_.resize(cap, 0);
    }
    counts_[d] += count;
  }
  total_ += count;
}

std::uint64_t Histogram::at(Distance d) const noexcept {
  if (d == kInfiniteDistance) return infinities_;
  return d < counts_.size() ? counts_[d] : 0;
}

Distance Histogram::max_distance() const noexcept {
  for (std::size_t i = counts_.size(); i > 0; --i) {
    if (counts_[i - 1] != 0) return i - 1;
  }
  return 0;
}

std::uint64_t Histogram::hits_below(Distance d) const noexcept {
  std::uint64_t hits = 0;
  const std::size_t stop = std::min<std::size_t>(d, counts_.size());
  for (std::size_t i = 0; i < stop; ++i) hits += counts_[i];
  return hits;
}

void Histogram::merge(const Histogram& other) {
  if (other.counts_.size() > counts_.size())
    counts_.resize(other.counts_.size(), 0);
  for (std::size_t i = 0; i < other.counts_.size(); ++i)
    counts_[i] += other.counts_[i];
  infinities_ += other.infinities_;
  total_ += other.total_;
}

void Histogram::clear() noexcept {
  counts_.clear();
  infinities_ = 0;
  total_ = 0;
}

bool Histogram::operator==(const Histogram& other) const noexcept {
  if (infinities_ != other.infinities_ || total_ != other.total_)
    return false;
  const std::size_t n = std::max(counts_.size(), other.counts_.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (at(i) != other.at(i)) return false;
  }
  return true;
}

std::vector<std::uint64_t> Histogram::log2_buckets() const {
  std::vector<std::uint64_t> buckets;
  for (std::size_t d = 0; d < counts_.size(); ++d) {
    if (counts_[d] == 0) continue;
    std::size_t bucket = 0;
    while ((1ULL << bucket) <= d) ++bucket;  // bucket i >= 1: [2^(i-1), 2^i)
    if (bucket >= buckets.size()) buckets.resize(bucket + 1, 0);
    buckets[bucket] += counts_[d];
  }
  return buckets;
}

double Histogram::mean_finite_distance() const noexcept {
  const std::uint64_t n = finite_total();
  if (n == 0) return 0.0;
  double acc = 0.0;
  for (std::size_t d = 0; d < counts_.size(); ++d) {
    acc += static_cast<double>(d) * static_cast<double>(counts_[d]);
  }
  return acc / static_cast<double>(n);
}

Distance Histogram::finite_distance_percentile(double p) const noexcept {
  const std::uint64_t n = finite_total();
  if (n == 0) return 0;
  const auto target = static_cast<std::uint64_t>(
      p * static_cast<double>(n) + 0.5);
  std::uint64_t seen = 0;
  for (std::size_t d = 0; d < counts_.size(); ++d) {
    seen += counts_[d];
    if (seen >= target) return d;
  }
  return max_distance();
}

std::vector<std::uint64_t> Histogram::to_words() const {
  const Distance top = counts_.empty() ? 0 : max_distance() + 1;
  std::vector<std::uint64_t> words;
  words.reserve(3 + top);
  words.push_back(infinities_);
  words.push_back(total_);
  words.push_back(top);
  words.insert(words.end(), counts_.begin(), counts_.begin() + top);
  return words;
}

Histogram Histogram::from_words(const std::vector<std::uint64_t>& words) {
  PARDA_CHECK(words.size() >= 3);
  Histogram h;
  h.infinities_ = words[0];
  h.total_ = words[1];
  const std::uint64_t n = words[2];
  PARDA_CHECK(words.size() == 3 + n);
  h.counts_.assign(words.begin() + 3, words.end());
  return h;
}

std::string Histogram::to_json() const {
  json::Writer w;
  w.begin_object();
  w.key("schema").value("parda.histogram.v1");
  w.key("total").value(total_);
  w.key("infinities").value(infinities_);
  w.key("finite").begin_array();
  for (std::size_t d = 0; d < counts_.size(); ++d) {
    if (counts_[d] == 0) continue;
    w.begin_array().value(std::uint64_t{d}).value(counts_[d]).end_array();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

Histogram Histogram::from_json(std::string_view text) {
  const json::Value doc = json::parse(text);
  if (!doc.is_object()) throw json::JsonError("histogram: not an object");
  const json::Value* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "parda.histogram.v1") {
    throw json::JsonError("histogram: missing/unknown schema");
  }
  Histogram h;
  const json::Value& finite = doc.at("finite");
  if (!finite.is_array()) throw json::JsonError("histogram: finite not array");
  for (const json::Value& pair : finite.array) {
    if (!pair.is_array() || pair.array.size() != 2) {
      throw json::JsonError("histogram: finite entry not a [d, count] pair");
    }
    h.record(pair.array[0].as_u64(), pair.array[1].as_u64());
  }
  h.record(kInfiniteDistance, doc.at("infinities").as_u64());
  if (h.total_ != doc.at("total").as_u64()) {
    throw json::JsonError("histogram: total does not match finite+infinities");
  }
  return h;
}

}  // namespace parda
