#include "hist/report.hpp"

#include <cinttypes>
#include <cstdio>
#include <memory>
#include <stdexcept>

namespace parda {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  out += buf;
}

}  // namespace

std::string histogram_to_json(const Histogram& hist) {
  std::string out = hist.to_json();
  out += '\n';
  return out;
}

std::string histogram_to_csv(const Histogram& hist) {
  std::string out = "distance,count\n";
  const auto& counts = hist.counts();
  for (std::size_t d = 0; d < counts.size(); ++d) {
    if (counts[d] == 0) continue;
    append_u64(out, d);
    out += ',';
    append_u64(out, counts[d]);
    out += '\n';
  }
  out += "inf,";
  append_u64(out, hist.infinities());
  out += '\n';
  return out;
}

std::string histogram_to_csv_log2(const Histogram& hist) {
  std::string out = "bucket_low,bucket_high,count\n";
  const auto buckets = hist.log2_buckets();
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const std::uint64_t lo = i == 0 ? 0 : 1ULL << (i - 1);
    const std::uint64_t hi = i == 0 ? 0 : (1ULL << i) - 1;
    append_u64(out, lo);
    out += ',';
    append_u64(out, hi);
    out += ',';
    append_u64(out, buckets[i]);
    out += '\n';
  }
  return out;
}

std::string mrc_to_csv(const std::vector<MrcPoint>& curve) {
  std::string out = "cache_size,miss_ratio\n";
  for (const MrcPoint& p : curve) {
    append_u64(out, p.cache_size);
    out += ',';
    append_double(out, p.miss_ratio);
    out += '\n';
  }
  return out;
}

void write_text_file(const std::string& path, const std::string& content) {
  struct Closer {
    void operator()(std::FILE* f) const noexcept {
      if (f != nullptr) std::fclose(f);
    }
  };
  std::unique_ptr<std::FILE, Closer> f(std::fopen(path.c_str(), "w"));
  if (!f) throw std::runtime_error("cannot open for writing: " + path);
  if (!content.empty() &&
      std::fwrite(content.data(), 1, content.size(), f.get()) !=
          content.size()) {
    throw std::runtime_error("short write: " + path);
  }
}

std::string read_text_file(const std::string& path) {
  struct Closer {
    void operator()(std::FILE* f) const noexcept {
      if (f != nullptr) std::fclose(f);
    }
  };
  std::unique_ptr<std::FILE, Closer> f(std::fopen(path.c_str(), "rb"));
  if (!f) throw std::runtime_error("cannot open for reading: " + path);
  std::string out;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f.get())) > 0) {
    out.append(buf, n);
  }
  if (std::ferror(f.get())) throw std::runtime_error("read failed: " + path);
  return out;
}

}  // namespace parda
