// AddrMap: an open-addressing robin-hood hash map from Addr to Timestamp.
//
// This is the repository's stand-in for the GLib GHashTable the original
// Parda implementation used: every sequential engine and every Parda rank
// keeps one AddrMap from data address to the timestamp of its most recent
// reference. Robin-hood probing with backward-shift deletion keeps probe
// chains short under the heavy churn (insert + erase per reference) that
// reuse distance analysis generates.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/prng.hpp"
#include "util/types.hpp"

namespace parda {

class AddrMap {
 public:
  AddrMap();
  explicit AddrMap(std::size_t initial_capacity);

  AddrMap(const AddrMap&) = default;
  AddrMap(AddrMap&&) noexcept = default;
  AddrMap& operator=(const AddrMap&) = default;
  AddrMap& operator=(AddrMap&&) noexcept = default;

  /// Returns a pointer to the mapped timestamp, or nullptr if absent. The
  /// pointer is invalidated by any mutating call.
  const Timestamp* find(Addr key) const noexcept;
  Timestamp* find(Addr key) noexcept;

  bool contains(Addr key) const noexcept { return find(key) != nullptr; }

  /// Hints the cache to load the key's home slot (the first slot a find()
  /// would inspect). The batched engine paths issue this a few references
  /// ahead of the probe so the robin-hood chain's first line is resident
  /// by the time find() runs. No effect on the map's state or counters.
  void prefetch(Addr key) const noexcept {
#if defined(__GNUC__) || defined(__clang__)
    const std::size_t i = static_cast<std::size_t>(mix64(key)) & mask_;
    __builtin_prefetch(slots_.data() + i, /*rw=*/0, /*locality=*/3);
#else
    (void)key;
#endif
  }

  /// Inserts or overwrites. Returns true if the key was newly inserted.
  bool insert_or_assign(Addr key, Timestamp value);

  /// Removes the key; returns true if it was present.
  bool erase(Addr key) noexcept;

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t capacity() const noexcept { return slots_.size(); }

  void clear() noexcept;
  void reserve(std::size_t n);

  /// Invokes fn(addr, timestamp) for every entry, in unspecified order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.dib != kEmpty) fn(s.key, s.value);
    }
  }

  /// All entries as (addr, timestamp) pairs; used to serialize rank state
  /// for the multi-phase reduce step (Algorithm 6).
  std::vector<std::pair<Addr, Timestamp>> entries() const;

  /// Longest probe chain currently in the table (diagnostics / tests).
  std::size_t max_probe_length() const noexcept;

  /// Cumulative slot inspections across every find/erase search over the
  /// map's lifetime — the "hash probes" engine stat surfaced by the
  /// observability layer. A plain (non-atomic) counter: AddrMap is
  /// single-threaded per rank.
  std::uint64_t probe_count() const noexcept { return probes_; }

 private:
  // dib is 16-bit with 0xFFFF as the empty sentinel. The previous 8-bit
  // encoding made a probe chain of length 255 indistinguishable from
  // "empty" (an adversarial set of same-bucket keys silently corrupted the
  // table); 16 bits cost nothing (the slot is padded to 24 bytes either
  // way) and kGrowProbeLimit additionally forces a rehash long before the
  // sentinel could be reached.
  static constexpr std::uint16_t kEmpty = 0xFFFF;
  /// Inserting a chain that probes this far triggers an early grow(): a
  /// doubled table splits every bucket's chain, keeping probes short even
  /// for adversarial same-bucket key sets.
  static constexpr std::uint16_t kGrowProbeLimit = 255;
  static constexpr std::size_t kMinCapacity = 16;

  struct Slot {
    Addr key = 0;
    Timestamp value = 0;
    std::uint16_t dib = kEmpty;  // distance from ideal bucket
  };

  std::size_t bucket_of(Addr key) const noexcept;
  void grow();
  /// Returns the longest probe distance written while placing the entry.
  std::uint16_t insert_fresh(Addr key, Timestamp value);

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
  mutable std::uint64_t probes_ = 0;
};

}  // namespace parda
