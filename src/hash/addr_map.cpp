#include "hash/addr_map.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/prng.hpp"

namespace parda {

AddrMap::AddrMap() : AddrMap(kMinCapacity) {}

AddrMap::AddrMap(std::size_t initial_capacity) {
  std::size_t cap = kMinCapacity;
  while (cap < initial_capacity) cap <<= 1;
  slots_.resize(cap);
  mask_ = cap - 1;
}

std::size_t AddrMap::bucket_of(Addr key) const noexcept {
  return static_cast<std::size_t>(mix64(key)) & mask_;
}

const Timestamp* AddrMap::find(Addr key) const noexcept {
  std::size_t i = bucket_of(key);
  std::uint16_t dib = 0;
  while (true) {
    ++probes_;
    const Slot& s = slots_[i];
    if (s.dib == kEmpty || s.dib < dib) return nullptr;
    if (s.dib == dib && s.key == key) return &s.value;
    i = (i + 1) & mask_;
    ++dib;
  }
}

Timestamp* AddrMap::find(Addr key) noexcept {
  return const_cast<Timestamp*>(std::as_const(*this).find(key));
}

bool AddrMap::insert_or_assign(Addr key, Timestamp value) {
  if (Timestamp* existing = find(key)) {
    *existing = value;
    return false;
  }
  if ((size_ + 1) * 4 > slots_.size() * 3) grow();
  const std::uint16_t probed = insert_fresh(key, value);
  ++size_;
  // A pathological chain (same-bucket key set) saturates probe distances
  // long before the load factor trips: rehash early so the doubled mask
  // splits the bucket. Repeated inserts re-trigger this until chains are
  // short, and the 16-bit dib keeps correctness in the meantime.
  if (probed >= kGrowProbeLimit) grow();
  return true;
}

std::uint16_t AddrMap::insert_fresh(Addr key, Timestamp value) {
  Slot incoming{key, value, 0};
  std::uint16_t longest = 0;
  std::size_t i = bucket_of(key);
  while (true) {
    Slot& s = slots_[i];
    if (s.dib == kEmpty) {
      s = incoming;
      return std::max(longest, incoming.dib);
    }
    if (s.dib < incoming.dib) std::swap(s, incoming);
    i = (i + 1) & mask_;
    PARDA_CHECK(incoming.dib != kEmpty - 1);  // probe chain overflow
    ++incoming.dib;
    longest = std::max(longest, incoming.dib);
  }
}

bool AddrMap::erase(Addr key) noexcept {
  std::size_t i = bucket_of(key);
  std::uint16_t dib = 0;
  while (true) {
    ++probes_;
    Slot& s = slots_[i];
    if (s.dib == kEmpty || s.dib < dib) return false;
    if (s.dib == dib && s.key == key) break;
    i = (i + 1) & mask_;
    ++dib;
  }
  // Backward-shift deletion: slide successors with dib > 0 left one slot.
  std::size_t hole = i;
  while (true) {
    const std::size_t next = (hole + 1) & mask_;
    Slot& n = slots_[next];
    if (n.dib == kEmpty || n.dib == 0) break;
    slots_[hole] = n;
    --slots_[hole].dib;
    hole = next;
  }
  slots_[hole].dib = kEmpty;
  --size_;
  return true;
}

void AddrMap::clear() noexcept {
  for (Slot& s : slots_) s.dib = kEmpty;
  size_ = 0;
}

void AddrMap::reserve(std::size_t n) {
  std::size_t needed = kMinCapacity;
  while (needed * 3 < n * 4) needed <<= 1;
  if (needed <= slots_.size()) return;
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(needed, Slot{});
  mask_ = needed - 1;
  size_ = 0;
  for (const Slot& s : old) {
    if (s.dib != kEmpty) {
      insert_fresh(s.key, s.value);
      ++size_;
    }
  }
}

void AddrMap::grow() { reserve(slots_.size() * 2); }

std::vector<std::pair<Addr, Timestamp>> AddrMap::entries() const {
  std::vector<std::pair<Addr, Timestamp>> out;
  out.reserve(size_);
  for_each([&](Addr a, Timestamp t) { out.emplace_back(a, t); });
  return out;
}

std::size_t AddrMap::max_probe_length() const noexcept {
  std::uint16_t longest = 0;
  for (const Slot& s : slots_) {
    if (s.dib != kEmpty) longest = std::max(longest, s.dib);
  }
  return longest;
}

}  // namespace parda
