// Umbrella for the observability layer: the enable/attribution runtime,
// the metrics registry (Counter / Gauge / TimerHistogram with per-rank
// shards), the span tracer with chrome://tracing export, structured
// logging, Prometheus exposition, the span-attribution report, the
// telemetry HTTP server, the distributed telemetry hub, and the crash
// flight recorder.
//
// See DESIGN.md sections "Observability", "Live telemetry &
// attribution", and "Distributed telemetry" for the schemas, the
// overhead budget, and how spans map onto the paper's Algorithms 3-7
// phases.
#pragma once

#include "obs/export.hpp"           // IWYU pragma: export
#include "obs/flight_recorder.hpp"  // IWYU pragma: export
#include "obs/log.hpp"              // IWYU pragma: export
#include "obs/metrics.hpp"          // IWYU pragma: export
#include "obs/report.hpp"           // IWYU pragma: export
#include "obs/runtime.hpp"          // IWYU pragma: export
#include "obs/server.hpp"           // IWYU pragma: export
#include "obs/span_tracer.hpp"      // IWYU pragma: export
#include "obs/telemetry.hpp"        // IWYU pragma: export
