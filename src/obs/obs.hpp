// Umbrella for the observability layer: the enable/attribution runtime,
// the metrics registry (Counter / Gauge / TimerHistogram with per-rank
// shards), and the span tracer with chrome://tracing export.
//
// See DESIGN.md section "Observability" for the schema, the overhead
// budget, and how spans map onto the paper's Algorithms 3-7 phases.
#pragma once

#include "obs/metrics.hpp"      // IWYU pragma: export
#include "obs/runtime.hpp"      // IWYU pragma: export
#include "obs/span_tracer.hpp"  // IWYU pragma: export
