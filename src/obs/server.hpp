// TelemetryServer: a minimal poll-loop HTTP/1.1 server exposing the obs
// layer while an analysis is running. Opt-in (RuntimeOptions.serve_port /
// trace_tool --serve); when off, nothing here is constructed and the hot
// paths do zero extra work.
//
// Built-in endpoints (GET, Connection: close):
//   /metrics       Prometheus text exposition 0.0.4 (obs/export.hpp)
//   /metrics.json  the "parda.metrics.v1" snapshot (Registry::to_json)
//   /spans         chrome://tracing JSON (SpanTracer::to_chrome_json)
//   /healthz       pool + watchdog status from the runtime's callback
//
// An owner may additionally install ONE route handler (set_handler) that
// is consulted before the built-ins for every request — GET and POST —
// with the request body already read (bounded by kMaxBodyBytes, rejected
// 413 beyond it). This is how the serving layer (src/serve) mounts its
// /tenants and /ingest routes without the obs library ever linking
// against it.
//
// Every built-in endpoint renders from the same relaxed per-rank shard
// slots the hot path writes, so a scrape never takes a lock a worker can
// hold and cannot stall an in-flight analysis. Requests are served by a
// small ACCEPT POOL (kDefaultAcceptThreads threads sharing the listen
// socket, each poll+accept+serve): a route handler that blocks — an
// ingest POST waiting on the analysis pool, a slow client dribbling its
// body — occupies one pool thread, and /metrics scrapes keep flowing
// through the others instead of queuing behind it. This is still scrape
// and control traffic, not a high-fanout RPC plane. The listener binds
// 127.0.0.1 only; port 0 picks an ephemeral port (see port()).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace parda::obs {

/// The listen socket could not be bound (port already in use, no
/// privileges, out of descriptors). Typed so tools can turn it into a
/// clean runtime-failure exit instead of an anonymous runtime_error.
class ServerBindError : public std::runtime_error {
 public:
  ServerBindError(std::uint16_t port, const std::string& what)
      : std::runtime_error(what), port_(port) {}
  /// The port that was requested (0 = ephemeral).
  std::uint16_t port() const noexcept { return port_; }

 private:
  std::uint16_t port_;
};

/// What /healthz reports. Filled by the owning runtime's callback so the
/// obs library never links against the comm layer.
struct Health {
  bool ok = true;
  int workers = 0;           // pool worker threads alive
  std::uint64_t jobs = 0;    // jobs admitted so far
  bool watchdog = false;     // stall-watchdog service thread running
  std::string detail;        // optional free-form note ("" = omitted)
};

using HealthFn = std::function<Health()>;

class TelemetryServer {
 public:
  /// Largest accepted request body; anything bigger is answered 413
  /// before the handler runs (hostile "oversized frame" clients cannot
  /// make the server buffer unbounded input).
  static constexpr std::size_t kMaxBodyBytes = 8u << 20;
  /// Accept-pool width: how many requests can be in service concurrently
  /// before one more queues in the listen backlog.
  static constexpr int kDefaultAcceptThreads = 4;

  /// Binds and starts serving immediately; throws ServerBindError if the
  /// port cannot be bound. port 0 = ephemeral (query port()).
  /// health may be empty: /healthz then reports {"ok":true} only.
  /// accept_threads sizes the pool (clamped to >= 1).
  explicit TelemetryServer(std::uint16_t port, HealthFn health = {},
                           int accept_threads = kDefaultAcceptThreads);
  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;
  ~TelemetryServer();

  /// The actually bound port (resolves port 0).
  std::uint16_t port() const noexcept { return port_; }
  /// Accept-pool threads serving requests.
  int accept_threads() const noexcept {
    return static_cast<int>(threads_.size());
  }

  /// Stops the poll loops and joins the accept pool. Idempotent.
  void stop();

  /// One parsed request, as handed to the route handler.
  struct Request {
    std::string method;        // "GET" or "POST" (others answered 405)
    std::string path;          // without the query string
    std::string content_type;  // "" when absent
    std::string body;          // <= kMaxBodyBytes
  };

  /// Request dispatch result: maps to (status, content-type, body).
  struct Response {
    int status = 200;
    std::string content_type;
    std::string body;
  };

  /// A route handler: return a Response to answer the request, or
  /// nullopt to fall through to the built-in endpoints. A throwing
  /// handler answers 500 with the exception text. Install before traffic
  /// arrives (the setter is serialized against dispatch, but handlers
  /// themselves must be thread-safe against the owner's other threads).
  using RouteFn = std::function<std::optional<Response>(const Request&)>;
  void set_handler(RouteFn handler);

  /// Request dispatch, exposed for tests: runs the installed handler,
  /// then the built-ins.
  Response handle(const Request& request) const;
  /// GET convenience for the scrape-endpoint tests.
  Response handle(std::string_view path) const;

 private:
  void serve_loop();
  void serve_one(int client_fd) const;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  HealthFn health_;
  mutable std::mutex handler_mu_;
  RouteFn handler_;
  std::atomic<bool> stop_{false};
  std::vector<std::thread> threads_;  // the accept pool
};

}  // namespace parda::obs
