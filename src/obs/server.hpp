// TelemetryServer: a minimal poll-loop HTTP/1.1 server exposing the obs
// layer while an analysis is running. Opt-in (RuntimeOptions.serve_port /
// trace_tool --serve); when off, nothing here is constructed and the hot
// paths do zero extra work.
//
// Endpoints (GET, Connection: close):
//   /metrics       Prometheus text exposition 0.0.4 (obs/export.hpp)
//   /metrics.json  the "parda.metrics.v1" snapshot (Registry::to_json)
//   /spans         chrome://tracing JSON (SpanTracer::to_chrome_json)
//   /healthz       pool + watchdog status from the runtime's callback
//
// Every endpoint renders from the same relaxed per-rank shard slots the
// hot path writes, so a scrape never takes a lock a worker can hold and
// cannot stall an in-flight analysis. Requests are served one at a time on
// the server's own thread — scrape traffic, not an RPC plane. The listener
// binds 127.0.0.1 only; port 0 picks an ephemeral port (see port()).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace parda::obs {

/// What /healthz reports. Filled by the owning runtime's callback so the
/// obs library never links against the comm layer.
struct Health {
  bool ok = true;
  int workers = 0;           // pool worker threads alive
  std::uint64_t jobs = 0;    // jobs admitted so far
  bool watchdog = false;     // stall-watchdog service thread running
  std::string detail;        // optional free-form note ("" = omitted)
};

using HealthFn = std::function<Health()>;

class TelemetryServer {
 public:
  /// Binds and starts serving immediately; throws std::runtime_error if
  /// the port cannot be bound. port 0 = ephemeral (query port()).
  /// health may be empty: /healthz then reports {"ok":true} only.
  explicit TelemetryServer(std::uint16_t port, HealthFn health = {});
  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;
  ~TelemetryServer();

  /// The actually bound port (resolves port 0).
  std::uint16_t port() const noexcept { return port_; }

  /// Stops the poll loop and joins the serving thread. Idempotent.
  void stop();

  /// Request dispatch, exposed for tests: maps a request path to
  /// (status, content-type, body).
  struct Response {
    int status = 200;
    std::string content_type;
    std::string body;
  };
  Response handle(std::string_view path) const;

 private:
  void serve_loop();
  void serve_one(int client_fd) const;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  HealthFn health_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace parda::obs
