// Prometheus text exposition (format 0.0.4) for the metrics registry and
// the span tracer, plus the hand-rolled format validator the tests and the
// CI telemetry smoke run scrape output through.
//
// Mapping ("." becomes "_", everything prefixed "parda_"):
//   Counter  comm.bytes_sent  -> parda_comm_bytes_sent_total{rank="0"} ...
//   Gauge    runtime.job_np   -> parda_runtime_job_np{rank="driver"} ...
//                                parda_runtime_job_np_max{...}        ...
//   Timer    comm.mailbox_wait-> parda_comm_mailbox_wait_ns_bucket{le="2"}
//                                ..._sum / ..._count   (log2-ns buckets,
//                                aggregated across shards)
// plus parda_obs_spans_dropped_total{rank=...} from the tracer rings.
//
// Rendering reads the same relaxed per-rank shard slots the hot path
// writes — a scrape never takes a lock a worker can hold (the registry
// mutex only guards name registration, which workers touch once at handle
// resolution), so serving /metrics cannot stall an in-flight analysis.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span_tracer.hpp"

namespace parda::obs {

class TelemetryHub;

/// Renders the registry (and the tracer's drop counters) as Prometheus
/// text exposition format. Deterministic order: counters, gauges, timers,
/// then the tracer synthetics.
std::string to_prometheus(const Registry& reg, const SpanTracer& tracer);

/// Fleet-wide render: when the hub has ingested remote telemetry, local
/// samples carry process="0" and every remote process's samples join the
/// SAME family blocks (one HELP/TYPE per family) with process="N", plus
/// per-process parda_telemetry_* freshness series. While the hub is empty
/// this is byte-identical to the two-argument form — single-process
/// scrapes never change shape.
std::string to_prometheus(const Registry& reg, const SpanTracer& tracer,
                          const TelemetryHub& hub);

/// Convenience over the process globals (what /metrics serves): the
/// hub-aware render against registry(), tracer(), and hub().
std::string to_prometheus();

/// Hand-rolled exposition-format validator: HELP/TYPE presence and order,
/// metric/label name charsets, label escaping, numeric sample values,
/// counter naming, histogram bucket monotonicity and _sum/_count
/// consistency. Returns one message per violation; empty = valid.
std::vector<std::string> validate_prometheus(std::string_view text);

}  // namespace parda::obs
