// The distributed telemetry plane's rank-0 half: parda.telemetry.v1 frame
// building/parsing and the TelemetryHub that aggregates remote processes'
// metrics and spans into the fleet-wide exports.
//
// In a distributed World (one rank per process, shm/tcp wire) every
// non-rank-0 process periodically snapshots its metrics registry and span
// ring into a compact JSON frame and forwards it to rank 0 over the
// transport's reserved-tag control plane (comm/telemetry_channel.hpp). Rank
// 0 ingests frames here, so its TelemetryServer serves /metrics,
// /metrics.json, and /spans for the whole fleet with process/rank labels
// and per-process freshness gauges.
//
// Clock alignment: each frame carries the sender's ClockSync — the min-RTT
// midpoint estimate of rank 0's tracer epoch relative to the sender's,
// measured by the ping/pong handshake at World setup. Remote span
// timestamps are rebased onto rank 0's epoch AT INGEST (t + offset_ns), so
// the merged chrome trace and the SpanReport straggler attribution are
// directly comparable across processes; the estimator's uncertainty (half
// the minimum observed RTT) is surfaced in the report and the freshness
// gauges.
//
// The hub never links against comm: frames arrive as opaque JSON strings.
// While the hub is empty (every single-process run), the exporters render
// exactly what they always rendered — byte-identical output.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span_tracer.hpp"

namespace parda::obs {

/// Offset of rank 0's span-tracer epoch relative to the local one, as
/// estimated by the clock handshake: local_t + offset_ns is the same
/// instant expressed on rank 0's clock. uncertainty_ns is half the minimum
/// observed round-trip (the midpoint estimator cannot be wrong by more).
struct ClockSync {
  std::int64_t offset_ns = 0;
  std::int64_t uncertainty_ns = 0;
  bool valid = false;
  int samples = 0;
};

/// Renders one parda.telemetry.v1 frame: the process id, a per-sender
/// sequence number, the final-flush marker, the sender's clock estimate,
/// an embedded parda.metrics.v1 snapshot, and the last `max_spans` span
/// events (tracer-epoch timestamps; the hub rebases them).
std::string make_telemetry_frame(int process, std::uint64_t seq,
                                 bool final_frame, const ClockSync& clock,
                                 const Registry& reg, const SpanTracer& tracer,
                                 std::size_t max_spans = 4096);

/// One remote process's most recent telemetry, as the hub stores it.
/// Metric shard arrays follow the registry convention: index 0 is the
/// unattributed shard, index r+1 is rank r.
struct ProcessTelemetry {
  struct RemoteCounter {
    std::string name;
    std::vector<std::uint64_t> shards;
  };
  struct RemoteGauge {
    std::string name;
    std::vector<std::uint64_t> maxes;
    std::vector<std::uint64_t> values;
  };
  struct RemoteTimer {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t sum_ns = 0;
    std::vector<std::uint64_t> buckets;  // log2(ns), cumulative-ready
  };

  int process = -1;
  std::uint64_t seq = 0;
  std::uint64_t frames = 0;  // frames ingested from this process
  bool final_received = false;
  ClockSync clock;
  std::int64_t last_ingest_ns = 0;  // local tracer time of the last frame
  std::uint64_t spans_dropped = 0;
  std::vector<RemoteCounter> counters;
  std::vector<RemoteGauge> gauges;
  std::vector<RemoteTimer> timers;
  std::vector<SpanEvent> spans;  // timestamps rebased onto rank 0's epoch
  std::string metrics_json;      // the embedded parda.metrics.v1 document
};

/// Rank 0's aggregation point. Thread-safe: the comm drainer ingests while
/// the TelemetryServer's accept pool renders. Ops of remote spans are
/// interned in a deque so SpanEvent's `const char*` contract holds.
class TelemetryHub {
 public:
  /// What ingest_frame learned about the sender — the comm drainer uses
  /// the final flag to know when every peer has flushed.
  struct Ingest {
    int process = -1;
    bool final_frame = false;
  };

  /// Parses and stores one parda.telemetry.v1 frame, replacing the
  /// sender's previous snapshot (frames are cumulative, not deltas).
  /// Throws json::JsonError / std::runtime_error on a malformed frame.
  Ingest ingest_frame(std::string_view frame_json);

  /// True when no remote process has ever reported — the exporters then
  /// render their historical single-process output, byte for byte.
  bool empty() const;

  /// Copies of every remote process's latest telemetry, ordered by
  /// process id.
  std::vector<ProcessTelemetry> snapshot() const;

  /// Local + remote span events (remote already rebased), ordered like
  /// SpanTracer::events().
  std::vector<SpanEvent> merged_events(const SpanTracer& local) const;
  /// Span drops across the local tracer and every remote process.
  std::uint64_t merged_dropped(const SpanTracer& local) const;

  /// chrome://tracing JSON across the fleet: local events keep pid 0,
  /// remote processes render as pid == process id.
  std::string merged_chrome_json(const SpanTracer& local) const;

  /// The local parda.metrics.v1 snapshot extended with a "processes" array
  /// carrying each remote process's embedded snapshot, clock estimate, and
  /// freshness fields.
  std::string merged_metrics_json(const Registry& local) const;

  /// Largest valid clock uncertainty across remote processes (0 when none
  /// reported a valid estimate) — the merged report's error bar.
  std::int64_t max_uncertainty_ns() const;

  std::uint64_t frames_total() const;

  void clear();

 private:
  const char* intern(std::string_view op);

  mutable std::mutex mu_;
  std::map<int, ProcessTelemetry> processes_;
  std::uint64_t frames_total_ = 0;
  std::map<std::string, const char*, std::less<>> op_index_;
  std::deque<std::string> op_storage_;  // stable addresses for SpanEvent::op
};

/// The process-global hub (populated only on rank 0 of a distributed run).
TelemetryHub& hub();

}  // namespace parda::obs
