#include "obs/server.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/span_tracer.hpp"
#include "util/json.hpp"

namespace parda::obs {

namespace {

constexpr int kPollTimeoutMs = 100;
constexpr std::size_t kMaxRequestBytes = 8 * 1024;

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    default: return "Error";
  }
}

void write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // client went away; nothing to do for a scrape endpoint
    }
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

TelemetryServer::TelemetryServer(std::uint16_t port, HealthFn health)
    : health_(std::move(health)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw std::runtime_error("telemetry: socket() failed");

  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(
        std::string("telemetry: cannot listen on 127.0.0.1:") +
        std::to_string(port) + ": " + std::strerror(err));
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = port;
  }

  thread_ = std::thread([this] { serve_loop(); });
}

TelemetryServer::~TelemetryServer() { stop(); }

void TelemetryServer::stop() {
  if (stop_.exchange(true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void TelemetryServer::serve_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, kPollTimeoutMs);
    if (ready <= 0) continue;  // timeout (re-check stop) or EINTR
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    serve_one(client);
    ::close(client);
  }
}

void TelemetryServer::serve_one(int client_fd) const {
  // A stalled client must not wedge the loop (and with it, stop()).
  timeval timeout{};
  timeout.tv_sec = 2;
  ::setsockopt(client_fd, SOL_SOCKET, SO_RCVTIMEO, &timeout,
               sizeof(timeout));

  // Read until the end of the request head (we ignore any body: every
  // endpoint is a GET).
  std::string req;
  char buf[1024];
  while (req.size() < kMaxRequestBytes &&
         req.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(client_fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    req.append(buf, static_cast<std::size_t>(n));
  }

  const std::size_t line_end = req.find("\r\n");
  const std::string_view line =
      std::string_view(req).substr(0, line_end == std::string::npos
                                          ? req.size()
                                          : line_end);
  Response resp;
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    resp = Response{405, "text/plain", "bad request line\n"};
  } else if (line.substr(0, sp1) != "GET") {
    resp = Response{405, "text/plain", "only GET is supported\n"};
  } else {
    std::string_view path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    if (const std::size_t q = path.find('?'); q != std::string_view::npos)
      path = path.substr(0, q);
    resp = handle(path);
  }

  std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                    status_text(resp.status) + "\r\n";
  out += "Content-Type: " + resp.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(resp.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += resp.body;
  write_all(client_fd, out);
  ::shutdown(client_fd, SHUT_WR);
}

TelemetryServer::Response TelemetryServer::handle(
    std::string_view path) const {
  if (path == "/metrics") {
    return {200, "text/plain; version=0.0.4; charset=utf-8",
            to_prometheus()};
  }
  if (path == "/metrics.json") {
    return {200, "application/json", registry().to_json()};
  }
  if (path == "/spans") {
    return {200, "application/json", tracer().to_chrome_json()};
  }
  if (path == "/healthz") {
    Health h;
    if (health_) h = health_();
    json::Writer w;
    w.begin_object();
    w.key("ok").value(h.ok);
    w.key("workers").value(h.workers);
    w.key("jobs").value(h.jobs);
    w.key("watchdog").value(h.watchdog);
    if (!h.detail.empty()) w.key("detail").value(h.detail);
    w.end_object();
    return {200, "application/json", w.take() + "\n"};
  }
  return {404, "text/plain",
          "unknown path; try /metrics /metrics.json /spans /healthz\n"};
}

}  // namespace parda::obs
