#include "obs/server.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/span_tracer.hpp"
#include "obs/telemetry.hpp"
#include "util/json.hpp"

namespace parda::obs {

namespace {

constexpr int kPollTimeoutMs = 100;
constexpr std::size_t kMaxHeadBytes = 8 * 1024;

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 411: return "Length Required";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Error";
  }
}

void write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // client went away; nothing to do for a scrape endpoint
    }
    off += static_cast<std::size_t>(n);
  }
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

/// Case-insensitive header lookup over the raw request head; returns the
/// trimmed value or nullopt.
std::optional<std::string> find_header(std::string_view head,
                                       std::string_view name) {
  std::size_t pos = head.find("\r\n");
  while (pos != std::string_view::npos && pos + 2 < head.size()) {
    const std::size_t start = pos + 2;
    const std::size_t end = head.find("\r\n", start);
    const std::string_view line = head.substr(
        start, end == std::string_view::npos ? std::string_view::npos
                                             : end - start);
    if (line.empty()) break;
    const std::size_t colon = line.find(':');
    if (colon != std::string_view::npos &&
        iequals(line.substr(0, colon), name)) {
      std::string_view v = line.substr(colon + 1);
      while (!v.empty() && (v.front() == ' ' || v.front() == '\t')) {
        v.remove_prefix(1);
      }
      while (!v.empty() && (v.back() == ' ' || v.back() == '\r')) {
        v.remove_suffix(1);
      }
      return std::string(v);
    }
    pos = end;
  }
  return std::nullopt;
}

}  // namespace

TelemetryServer::TelemetryServer(std::uint16_t port, HealthFn health,
                                 int accept_threads)
    : health_(std::move(health)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw ServerBindError(port, "telemetry: socket() failed: " +
                                    std::string(std::strerror(errno)));
  }

  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw ServerBindError(
        port, std::string("telemetry: cannot listen on 127.0.0.1:") +
                  std::to_string(port) + ": " + std::strerror(err));
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = port;
  }

  // Non-blocking accept: pool threads race for each connection after a
  // poll wakeup; the losers get EAGAIN and go back to polling instead of
  // parking inside accept() where stop() could not reach them.
  const int flags = ::fcntl(listen_fd_, F_GETFL, 0);
  if (flags >= 0) ::fcntl(listen_fd_, F_SETFL, flags | O_NONBLOCK);

  // The accept pool: every thread polls and accepts on the shared listen
  // socket, so a request that is slow to serve (a blocking ingest POST, a
  // dribbling client) occupies one thread while scrapes keep flowing
  // through the others.
  if (accept_threads < 1) accept_threads = 1;
  threads_.reserve(static_cast<std::size_t>(accept_threads));
  for (int i = 0; i < accept_threads; ++i) {
    threads_.emplace_back([this] { serve_loop(); });
  }
}

TelemetryServer::~TelemetryServer() { stop(); }

void TelemetryServer::stop() {
  if (stop_.exchange(true)) {
    for (std::thread& t : threads_) {
      if (t.joinable()) t.join();
    }
    return;
  }
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void TelemetryServer::set_handler(RouteFn handler) {
  const std::lock_guard<std::mutex> lock(handler_mu_);
  handler_ = std::move(handler);
}

void TelemetryServer::serve_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, kPollTimeoutMs);
    if (ready <= 0) continue;  // timeout (re-check stop) or EINTR
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    serve_one(client);
    ::close(client);
  }
}

void TelemetryServer::serve_one(int client_fd) const {
  // A stalled or deliberately slow client must not wedge the loop (and
  // with it, stop()): every recv is bounded by this timeout, so the worst
  // a hostile client can cost is a couple of seconds of serial service.
  timeval timeout{};
  timeout.tv_sec = 2;
  ::setsockopt(client_fd, SOL_SOCKET, SO_RCVTIMEO, &timeout,
               sizeof(timeout));

  // Read until the end of the request head.
  std::string req;
  char buf[4096];
  std::size_t head_end = std::string::npos;
  while (req.size() < kMaxHeadBytes + kMaxBodyBytes) {
    head_end = req.find("\r\n\r\n");
    if (head_end != std::string::npos) break;
    if (req.size() >= kMaxHeadBytes) break;
    const ssize_t n = ::recv(client_fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    req.append(buf, static_cast<std::size_t>(n));
  }

  Response resp;
  Request parsed;
  bool dispatch = false;

  const std::size_t line_end = req.find("\r\n");
  const std::string_view line =
      std::string_view(req).substr(0, line_end == std::string::npos
                                          ? req.size()
                                          : line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  if (head_end == std::string::npos || sp1 == std::string_view::npos ||
      sp2 == std::string_view::npos) {
    resp = Response{400, "text/plain", "bad request line\n"};
  } else {
    parsed.method = std::string(line.substr(0, sp1));
    std::string_view path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    if (const std::size_t q = path.find('?'); q != std::string_view::npos)
      path = path.substr(0, q);
    parsed.path = std::string(path);

    if (parsed.method != "GET" && parsed.method != "POST") {
      resp = Response{405, "text/plain", "only GET and POST are supported\n"};
    } else {
      const std::string_view head = std::string_view(req).substr(0, head_end);
      if (const auto ct = find_header(head, "Content-Type")) {
        parsed.content_type = *ct;
      }
      std::size_t content_length = 0;
      bool have_length = false;
      if (const auto cl = find_header(head, "Content-Length")) {
        char* end = nullptr;
        content_length = std::strtoul(cl->c_str(), &end, 10);
        have_length = end != nullptr && *end == '\0';
      }
      // A POST without Content-Length is an empty-body request (curl -X
      // POST); only a chunked body, which this server does not speak, is
      // answered 411.
      if (parsed.method == "POST" && !have_length &&
          find_header(head, "Transfer-Encoding").has_value()) {
        resp = Response{411, "text/plain",
                        "chunked bodies are not supported; send "
                        "Content-Length\n"};
      } else if (content_length > kMaxBodyBytes) {
        resp = Response{413, "text/plain",
                        "body exceeds " + std::to_string(kMaxBodyBytes) +
                            " bytes\n"};
      } else {
        std::string body = req.substr(head_end + 4);
        while (body.size() < content_length) {
          const ssize_t n = ::recv(client_fd, buf, sizeof(buf), 0);
          if (n < 0 && errno == EINTR) continue;
          if (n <= 0) break;
          body.append(buf, static_cast<std::size_t>(n));
        }
        if (body.size() < content_length) {
          resp = Response{400, "text/plain", "truncated request body\n"};
        } else {
          body.resize(content_length);
          parsed.body = std::move(body);
          dispatch = true;
        }
      }
    }
  }

  if (dispatch) resp = handle(parsed);

  std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                    status_text(resp.status) + "\r\n";
  out += "Content-Type: " + resp.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(resp.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += resp.body;
  write_all(client_fd, out);
  ::shutdown(client_fd, SHUT_WR);
}

TelemetryServer::Response TelemetryServer::handle(
    const Request& request) const {
  RouteFn handler;
  {
    // Copy, then invoke unlocked: a handler that blocks on the analysis
    // pool must not hold the dispatch lock.
    std::lock_guard<std::mutex> lock(handler_mu_);
    handler = handler_;
  }
  if (handler) {
    try {
      if (std::optional<Response> r = handler(request)) return *r;
    } catch (const std::exception& e) {
      return {500, "text/plain",
              std::string("handler error: ") + e.what() + "\n"};
    }
  }

  if (request.method != "GET") {
    return {405, "text/plain", "built-in endpoints are GET only\n"};
  }
  const std::string& path = request.path;
  if (path == "/metrics") {
    return {200, "text/plain; version=0.0.4; charset=utf-8",
            to_prometheus()};
  }
  if (path == "/metrics.json") {
    // Hub-aware: in a distributed run rank 0's snapshot grows a
    // "processes" array with every remote process's telemetry; while the
    // hub is empty this is Registry::to_json() verbatim.
    return {200, "application/json",
            hub().merged_metrics_json(registry())};
  }
  if (path == "/spans") {
    if (!hub().empty()) {
      return {200, "application/json", hub().merged_chrome_json(tracer())};
    }
    return {200, "application/json", tracer().to_chrome_json()};
  }
  if (path == "/healthz") {
    Health h;
    if (health_) h = health_();
    json::Writer w;
    w.begin_object();
    w.key("ok").value(h.ok);
    w.key("workers").value(h.workers);
    w.key("jobs").value(h.jobs);
    w.key("watchdog").value(h.watchdog);
    if (!h.detail.empty()) w.key("detail").value(h.detail);
    w.end_object();
    return {200, "application/json", w.take() + "\n"};
  }
  return {404, "text/plain",
          "unknown path; try /metrics /metrics.json /spans /healthz\n"};
}

TelemetryServer::Response TelemetryServer::handle(
    std::string_view path) const {
  Request r;
  r.method = "GET";
  r.path = std::string(path);
  return handle(r);
}

}  // namespace parda::obs
