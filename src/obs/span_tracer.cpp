#include "obs/span_tracer.hpp"

#include <algorithm>

#include "util/json.hpp"

namespace parda::obs {

SpanTracer::SpanTracer(std::size_t capacity_per_rank)
    : epoch_(std::chrono::steady_clock::now()),
      capacity_(std::max<std::size_t>(capacity_per_rank, 16)) {
  rings_.reserve(kShards);
  for (int i = 0; i < kShards; ++i) {
    rings_.push_back(std::make_unique<Ring>(capacity_));
  }
}

void SpanTracer::record(std::int64_t t_start_ns, std::int64_t t_end_ns,
                        const char* op, std::uint32_t phase) noexcept {
  if (!enabled()) return;
  Ring& ring = *rings_[static_cast<std::size_t>(thread_shard())];
  // Claim an index with one relaxed RMW: rank shards have a single writer
  // (the rank's own thread); the unattributed shard may have several, and
  // the claim keeps their writes disjoint.
  const std::uint64_t idx = ring.n.fetch_add(1, std::memory_order_relaxed);
  if (idx >= capacity_) {
    // The claimed slot overwrites the shard's oldest span: count the loss
    // (relaxed, shard-local) so exports can surface it instead of wrapping
    // silently.
    ring.dropped.fetch_add(1, std::memory_order_relaxed);
  }
  Slot& slot = ring.slots[static_cast<std::size_t>(idx % capacity_)];
  // Seqlock write: odd seq marks the write in flight so a concurrent
  // snapshot (mid-run scrape, telemetry forwarder) skips the slot
  // instead of reading it torn.
  const std::uint32_t seq = slot.seq.load(std::memory_order_relaxed);
  slot.seq.store(seq + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.t_start_ns.store(t_start_ns, std::memory_order_relaxed);
  slot.t_end_ns.store(t_end_ns, std::memory_order_relaxed);
  slot.op.store(op, std::memory_order_relaxed);
  slot.phase.store(phase, std::memory_order_relaxed);
  slot.rank.store(thread_rank(), std::memory_order_relaxed);
  slot.seq.store(seq + 2, std::memory_order_release);
}

std::vector<SpanEvent> SpanTracer::events() const {
  std::vector<SpanEvent> out;
  for (const auto& ring : rings_) {
    const std::uint64_t n = ring->n.load(std::memory_order_acquire);
    const std::uint64_t kept = std::min<std::uint64_t>(n, capacity_);
    for (std::uint64_t i = n - kept; i < n; ++i) {
      const Slot& slot = ring->slots[static_cast<std::size_t>(i % capacity_)];
      const std::uint32_t s1 = slot.seq.load(std::memory_order_acquire);
      SpanEvent e;
      e.t_start_ns = slot.t_start_ns.load(std::memory_order_relaxed);
      e.t_end_ns = slot.t_end_ns.load(std::memory_order_relaxed);
      e.op = slot.op.load(std::memory_order_relaxed);
      e.phase = slot.phase.load(std::memory_order_relaxed);
      e.rank = slot.rank.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      const std::uint32_t s2 = slot.seq.load(std::memory_order_relaxed);
      // Skip unpublished (0), in-flight (odd), or overwritten-mid-read
      // (changed) slots: a snapshot may briefly miss a span a concurrent
      // writer is filling in, never emit a torn one.
      if (s1 == 0 || (s1 & 1u) != 0 || s1 != s2) continue;
      out.push_back(e);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanEvent& a, const SpanEvent& b) {
                     if (a.rank != b.rank) return a.rank < b.rank;
                     return a.t_start_ns < b.t_start_ns;
                   });
  return out;
}

std::vector<SpanEvent> SpanTracer::events_for_rank(int rank) const {
  std::vector<SpanEvent> all = events();
  std::erase_if(all, [rank](const SpanEvent& e) { return e.rank != rank; });
  return all;
}

std::uint64_t SpanTracer::dropped() const noexcept {
  std::uint64_t d = 0;
  for (const auto& ring : rings_) {
    d += ring->dropped.load(std::memory_order_relaxed);
  }
  return d;
}

std::array<std::uint64_t, kShards> SpanTracer::dropped_per_shard()
    const noexcept {
  std::array<std::uint64_t, kShards> out{};
  for (std::size_t i = 0; i < rings_.size(); ++i) {
    out[i] = rings_[i]->dropped.load(std::memory_order_relaxed);
  }
  return out;
}

void SpanTracer::clear() noexcept {
  for (auto& ring : rings_) {
    ring->n.store(0, std::memory_order_relaxed);
    ring->dropped.store(0, std::memory_order_relaxed);
  }
}

std::string SpanTracer::to_chrome_json() const {
  const std::vector<SpanEvent> all = events();
  json::Writer w;
  w.begin_object();
  w.key("traceEvents").begin_array();
  // Thread-name metadata so chrome://tracing labels rows "rank N".
  std::int32_t last_named = -2;
  for (const SpanEvent& e : all) {
    if (e.rank != last_named) {
      last_named = e.rank;
      w.begin_object();
      w.key("name").value("thread_name");
      w.key("ph").value("M");
      w.key("pid").value(0);
      w.key("tid").value(e.rank >= 0 ? e.rank : kMaxRanks);
      w.key("args").begin_object();
      w.key("name").value(e.rank >= 0
                              ? ("rank " + std::to_string(e.rank))
                              : std::string("driver"));
      w.end_object();
      w.end_object();
    }
    w.begin_object();
    w.key("name").value(e.op);
    w.key("cat").value("parda");
    w.key("ph").value("X");
    w.key("pid").value(0);
    w.key("tid").value(e.rank >= 0 ? e.rank : kMaxRanks);
    w.key("ts").value(static_cast<double>(e.t_start_ns) / 1000.0);
    w.key("dur").value(
        static_cast<double>(e.t_end_ns - e.t_start_ns) / 1000.0);
    w.key("args").begin_object();
    w.key("rank").value(static_cast<std::int64_t>(e.rank));
    if (e.phase != kNoPhase) {
      w.key("phase").value(static_cast<std::uint64_t>(e.phase));
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.key("displayTimeUnit").value("ms");
  // Ring-wrap visibility: a nonzero count here means the oldest spans were
  // overwritten and the trace above is the tail, not the whole run.
  w.key("otherData").begin_object();
  w.key("spansDropped").value(dropped());
  w.end_object();
  w.end_object();
  return w.take();
}

SpanTracer& tracer() {
  static SpanTracer instance;
  return instance;
}

}  // namespace parda::obs
