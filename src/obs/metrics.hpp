// The metrics registry: named Counters, Gauges, and TimerHistograms with
// per-rank sharded slots, aggregated only at snapshot time.
//
// Hot-path contract (the reason this layer may be wired through the comm
// runtime and the analysis engines): recording is lock-free — one relaxed
// load of the enable flag, then one relaxed atomic RMW on a cache-line-
// padded slot owned by the recording rank. No allocation, no locking, no
// cross-rank cache-line sharing. Registration (name lookup) takes a mutex
// and must stay off hot paths: resolve metric handles once, then record
// through the handle.
//
// The snapshot schema ("parda.metrics.v1") is shared by trace_tool
// --metrics-out, the bench_common.hpp PARDA_METRICS_OUT hook, and the
// tests; see DESIGN.md section "Observability".
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/runtime.hpp"

namespace parda::obs {

namespace detail {

struct alignas(64) Slot {
  std::atomic<std::uint64_t> v{0};
};

/// Relaxed compare-exchange max on an atomic (snapshot readers tolerate
/// momentary staleness).
inline void atomic_max(std::atomic<std::uint64_t>& a,
                       std::uint64_t v) noexcept {
  std::uint64_t cur = a.load(std::memory_order_relaxed);
  while (cur < v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

inline void atomic_min(std::atomic<std::uint64_t>& a,
                       std::uint64_t v) noexcept {
  std::uint64_t cur = a.load(std::memory_order_relaxed);
  while (cur > v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace detail

/// Monotonic event/byte count, sharded per rank.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  /// Adds n to the calling thread's shard. No-op while obs is disabled.
  void add(std::uint64_t n) noexcept {
    if (!enabled()) return;
    slots_[static_cast<std::size_t>(thread_shard())].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  void increment() noexcept { add(1); }

  /// Explicit-shard add for cold paths that attribute on behalf of a rank
  /// (e.g. end-of-run engine stat publication).
  void add_for_rank(int rank, std::uint64_t n) noexcept {
    if (!enabled()) return;
    const int shard = (rank >= 0 && rank < kMaxRanks) ? rank + 1 : 0;
    slots_[static_cast<std::size_t>(shard)].v.fetch_add(
        n, std::memory_order_relaxed);
  }

  const std::string& name() const noexcept { return name_; }
  std::uint64_t total() const noexcept;
  /// Shard values: index 0 unattributed, index r+1 = rank r.
  std::array<std::uint64_t, kShards> shards() const noexcept;
  void reset() noexcept;

 private:
  std::string name_;
  std::array<detail::Slot, kShards> slots_;
};

/// Last-set value and running max per shard (e.g. peak resident set size).
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  void set(std::uint64_t v) noexcept {
    if (!enabled()) return;
    auto& s = slots_[static_cast<std::size_t>(thread_shard())];
    s.value.store(v, std::memory_order_relaxed);
    detail::atomic_max(s.max, v);
  }
  void set_max(std::uint64_t v) noexcept {
    if (!enabled()) return;
    detail::atomic_max(
        slots_[static_cast<std::size_t>(thread_shard())].max, v);
  }
  void set_for_rank(int rank, std::uint64_t v) noexcept {
    if (!enabled()) return;
    const int shard = (rank >= 0 && rank < kMaxRanks) ? rank + 1 : 0;
    auto& s = slots_[static_cast<std::size_t>(shard)];
    s.value.store(v, std::memory_order_relaxed);
    detail::atomic_max(s.max, v);
  }

  const std::string& name() const noexcept { return name_; }
  std::uint64_t max() const noexcept;
  /// Running max per shard: index 0 unattributed, r+1 = rank r.
  std::array<std::uint64_t, kShards> shards() const noexcept;
  /// Last-set value per shard. Gauges are re-published per job (see
  /// DESIGN.md "Live telemetry"): `values` reflects the current/most
  /// recent job, `shards` (the max) the lifetime high-water mark.
  std::array<std::uint64_t, kShards> values() const noexcept;
  void reset() noexcept;

 private:
  struct alignas(64) GaugeSlot {
    std::atomic<std::uint64_t> value{0};
    std::atomic<std::uint64_t> max{0};
  };
  std::string name_;
  std::array<GaugeSlot, kShards> slots_;
};

/// Duration distribution: per-shard count/sum/min/max plus log2(ns)
/// buckets, so mailbox-wait and phase-time distributions survive
/// aggregation without storing every sample.
class TimerHistogram {
 public:
  /// log2 nanosecond buckets: bucket i holds durations in [2^i, 2^(i+1))
  /// ns (bucket 0 also holds 0 ns). 2^39 ns ~ 9 minutes: ample.
  static constexpr int kBuckets = 40;

  explicit TimerHistogram(std::string name) : name_(std::move(name)) {}

  void record_ns(std::uint64_t ns) noexcept {
    if (!enabled()) return;
    auto& s = slots_[static_cast<std::size_t>(thread_shard())];
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum_ns.fetch_add(ns, std::memory_order_relaxed);
    detail::atomic_min(s.min_ns, ns);
    detail::atomic_max(s.max_ns, ns);
    int b = 0;
    while ((std::uint64_t{1} << (b + 1)) <= ns && b + 1 < kBuckets) ++b;
    s.buckets[static_cast<std::size_t>(b)].fetch_add(
        1, std::memory_order_relaxed);
  }

  struct Aggregate {
    std::uint64_t count = 0;
    std::uint64_t sum_ns = 0;
    std::uint64_t min_ns = 0;  // 0 when count == 0
    std::uint64_t max_ns = 0;
    std::array<std::uint64_t, kBuckets> buckets{};
  };

  const std::string& name() const noexcept { return name_; }
  Aggregate aggregate() const noexcept;
  /// Per-shard (count, sum_ns): index 0 unattributed, r+1 = rank r.
  std::array<std::pair<std::uint64_t, std::uint64_t>, kShards> shards()
      const noexcept;
  void reset() noexcept;

 private:
  struct alignas(64) TimerSlot {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum_ns{0};
    std::atomic<std::uint64_t> min_ns{~std::uint64_t{0}};
    std::atomic<std::uint64_t> max_ns{0};
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
  };
  std::string name_;
  std::array<TimerSlot, kShards> slots_;
};

/// Name -> metric store. Lookup is mutex-guarded (cold path only); handles
/// returned by counter()/gauge()/timer() are stable for the registry's
/// lifetime and are the hot-path interface.
class Registry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  TimerHistogram& timer(std::string_view name);

  /// Zeroes every slot of every registered metric (handles stay valid).
  void reset_values();

  /// Full snapshot as "parda.metrics.v1" JSON. Per-rank arrays are trimmed
  /// to the highest shard with any activity.
  std::string to_json() const;

  /// Convenience lookups for tests and report code: total across shards,
  /// or 0 if the metric was never registered.
  std::uint64_t counter_total(std::string_view name) const;

  /// Stable handles to every registered metric, for the export renderers
  /// (obs/export.hpp). Metrics are never removed, so the pointers stay
  /// valid for the registry's lifetime; only the vector copy is guarded.
  std::vector<const Counter*> counters() const;
  std::vector<const Gauge*> gauges() const;
  std::vector<const TimerHistogram*> timers() const;

 private:
  template <typename T>
  T& find_or_create(std::vector<std::unique_ptr<T>>& store,
                    std::string_view name);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Counter>> counters_;
  std::vector<std::unique_ptr<Gauge>> gauges_;
  std::vector<std::unique_ptr<TimerHistogram>> timers_;
};

/// The process-global registry (what trace_tool, the comm runtime, and the
/// bench hook record into).
Registry& registry();

}  // namespace parda::obs
