#include "obs/metrics.hpp"

#include <algorithm>

#include "util/json.hpp"

namespace parda::obs {

// --- Counter ---------------------------------------------------------------

std::uint64_t Counter::total() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& s : slots_) sum += s.v.load(std::memory_order_relaxed);
  return sum;
}

std::array<std::uint64_t, kShards> Counter::shards() const noexcept {
  std::array<std::uint64_t, kShards> out{};
  for (int i = 0; i < kShards; ++i) {
    out[static_cast<std::size_t>(i)] =
        slots_[static_cast<std::size_t>(i)].v.load(std::memory_order_relaxed);
  }
  return out;
}

void Counter::reset() noexcept {
  for (auto& s : slots_) s.v.store(0, std::memory_order_relaxed);
}

// --- Gauge -----------------------------------------------------------------

std::uint64_t Gauge::max() const noexcept {
  std::uint64_t m = 0;
  for (const auto& s : slots_) {
    m = std::max(m, s.max.load(std::memory_order_relaxed));
  }
  return m;
}

std::array<std::uint64_t, kShards> Gauge::shards() const noexcept {
  std::array<std::uint64_t, kShards> out{};
  for (int i = 0; i < kShards; ++i) {
    out[static_cast<std::size_t>(i)] =
        slots_[static_cast<std::size_t>(i)].max.load(
            std::memory_order_relaxed);
  }
  return out;
}

std::array<std::uint64_t, kShards> Gauge::values() const noexcept {
  std::array<std::uint64_t, kShards> out{};
  for (int i = 0; i < kShards; ++i) {
    out[static_cast<std::size_t>(i)] =
        slots_[static_cast<std::size_t>(i)].value.load(
            std::memory_order_relaxed);
  }
  return out;
}

void Gauge::reset() noexcept {
  for (auto& s : slots_) {
    s.value.store(0, std::memory_order_relaxed);
    s.max.store(0, std::memory_order_relaxed);
  }
}

// --- TimerHistogram --------------------------------------------------------

TimerHistogram::Aggregate TimerHistogram::aggregate() const noexcept {
  Aggregate agg;
  std::uint64_t min_seen = ~std::uint64_t{0};
  for (const auto& s : slots_) {
    const std::uint64_t c = s.count.load(std::memory_order_relaxed);
    if (c == 0) continue;
    agg.count += c;
    agg.sum_ns += s.sum_ns.load(std::memory_order_relaxed);
    min_seen = std::min(min_seen, s.min_ns.load(std::memory_order_relaxed));
    agg.max_ns =
        std::max(agg.max_ns, s.max_ns.load(std::memory_order_relaxed));
    for (int b = 0; b < kBuckets; ++b) {
      agg.buckets[static_cast<std::size_t>(b)] +=
          s.buckets[static_cast<std::size_t>(b)].load(
              std::memory_order_relaxed);
    }
  }
  agg.min_ns = agg.count == 0 ? 0 : min_seen;
  return agg;
}

std::array<std::pair<std::uint64_t, std::uint64_t>, kShards>
TimerHistogram::shards() const noexcept {
  std::array<std::pair<std::uint64_t, std::uint64_t>, kShards> out{};
  for (int i = 0; i < kShards; ++i) {
    const auto& s = slots_[static_cast<std::size_t>(i)];
    out[static_cast<std::size_t>(i)] = {
        s.count.load(std::memory_order_relaxed),
        s.sum_ns.load(std::memory_order_relaxed)};
  }
  return out;
}

void TimerHistogram::reset() noexcept {
  for (auto& s : slots_) {
    s.count.store(0, std::memory_order_relaxed);
    s.sum_ns.store(0, std::memory_order_relaxed);
    s.min_ns.store(~std::uint64_t{0}, std::memory_order_relaxed);
    s.max_ns.store(0, std::memory_order_relaxed);
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
  }
}

// --- Registry --------------------------------------------------------------

template <typename T>
T& Registry::find_or_create(std::vector<std::unique_ptr<T>>& store,
                            std::string_view name) {
  std::lock_guard lock(mu_);
  for (const auto& m : store) {
    if (m->name() == name) return *m;
  }
  store.push_back(std::make_unique<T>(std::string(name)));
  return *store.back();
}

Counter& Registry::counter(std::string_view name) {
  return find_or_create(counters_, name);
}

Gauge& Registry::gauge(std::string_view name) {
  return find_or_create(gauges_, name);
}

TimerHistogram& Registry::timer(std::string_view name) {
  return find_or_create(timers_, name);
}

void Registry::reset_values() {
  std::lock_guard lock(mu_);
  for (const auto& c : counters_) c->reset();
  for (const auto& g : gauges_) g->reset();
  for (const auto& t : timers_) t->reset();
}

std::uint64_t Registry::counter_total(std::string_view name) const {
  std::lock_guard lock(mu_);
  for (const auto& c : counters_) {
    if (c->name() == name) return c->total();
  }
  return 0;
}

std::vector<const Counter*> Registry::counters() const {
  std::lock_guard lock(mu_);
  std::vector<const Counter*> out;
  out.reserve(counters_.size());
  for (const auto& c : counters_) out.push_back(c.get());
  return out;
}

std::vector<const Gauge*> Registry::gauges() const {
  std::lock_guard lock(mu_);
  std::vector<const Gauge*> out;
  out.reserve(gauges_.size());
  for (const auto& g : gauges_) out.push_back(g.get());
  return out;
}

std::vector<const TimerHistogram*> Registry::timers() const {
  std::lock_guard lock(mu_);
  std::vector<const TimerHistogram*> out;
  out.reserve(timers_.size());
  for (const auto& t : timers_) out.push_back(t.get());
  return out;
}

namespace {

/// Shards trimmed to the last active one: [unattributed, rank0, rank1, ...].
template <typename Array>
std::size_t active_shards(const Array& shards) {
  std::size_t last = 0;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (shards[i] != typename Array::value_type{}) last = i + 1;
  }
  return last;
}

void write_shard_array(json::Writer& w,
                       const std::array<std::uint64_t, kShards>& shards) {
  // per_rank[r] is rank r's value; shard 0 (unattributed) is its own key.
  const std::size_t n = active_shards(shards);
  w.key("unattributed").value(shards[0]);
  w.key("per_rank").begin_array();
  for (std::size_t i = 1; i < std::max<std::size_t>(n, 1); ++i) {
    w.value(shards[i]);
  }
  w.end_array();
}

}  // namespace

std::string Registry::to_json() const {
  std::lock_guard lock(mu_);
  json::Writer w;
  w.begin_object();
  w.key("schema").value("parda.metrics.v1");

  w.key("counters").begin_object();
  for (const auto& c : counters_) {
    w.key(c->name()).begin_object();
    w.key("total").value(c->total());
    write_shard_array(w, c->shards());
    w.end_object();
  }
  w.end_object();

  w.key("gauges").begin_object();
  for (const auto& g : gauges_) {
    w.key(g->name()).begin_object();
    w.key("max").value(g->max());
    write_shard_array(w, g->shards());
    // Job-scoped reading: the last value each shard published (gauges are
    // re-published per job, so this never carries a previous job's value).
    const auto values = g->values();
    w.key("last_unattributed").value(values[0]);
    w.key("last").begin_array();
    const auto maxes = g->shards();
    std::size_t n = active_shards(maxes);
    for (std::size_t i = 1; i < std::max<std::size_t>(n, 1); ++i) {
      w.value(values[i]);
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();

  w.key("timers").begin_object();
  for (const auto& t : timers_) {
    const TimerHistogram::Aggregate agg = t->aggregate();
    w.key(t->name()).begin_object();
    w.key("count").value(agg.count);
    w.key("sum_ns").value(agg.sum_ns);
    w.key("min_ns").value(agg.min_ns);
    w.key("max_ns").value(agg.max_ns);
    w.key("mean_ns").value(
        agg.count == 0 ? 0.0
                       : static_cast<double>(agg.sum_ns) /
                             static_cast<double>(agg.count));
    w.key("log2_ns").begin_array();
    std::size_t last = 0;
    for (std::size_t b = 0; b < agg.buckets.size(); ++b) {
      if (agg.buckets[b] != 0) last = b + 1;
    }
    for (std::size_t b = 0; b < last; ++b) w.value(agg.buckets[b]);
    w.end_array();
    const auto shards = t->shards();
    w.key("per_rank").begin_array();
    std::size_t n = 0;
    for (std::size_t i = 1; i < shards.size(); ++i) {
      if (shards[i].first != 0) n = i;
    }
    for (std::size_t i = 1; i <= n; ++i) {
      w.begin_object();
      w.key("count").value(shards[i].first);
      w.key("sum_ns").value(shards[i].second);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();

  w.end_object();
  return w.take();
}

Registry& registry() {
  static Registry instance;
  return instance;
}

}  // namespace parda::obs
