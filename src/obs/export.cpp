#include "obs/export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <optional>
#include <utility>

#include "obs/telemetry.hpp"

namespace parda::obs {

namespace {

/// "comm.bytes_sent" -> "parda_comm_bytes_sent" (charset [a-zA-Z0-9_:]).
std::string prom_name(std::string_view name) {
  std::string out = "parda_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

/// Label values escape backslash, double-quote, and newline.
std::string escape_label(std::string_view v) {
  std::string out;
  for (char c : v) {
    if (c == '\\') out += "\\\\";
    else if (c == '"') out += "\\\"";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

/// HELP text escapes backslash and newline (quotes are fine).
std::string escape_help(std::string_view v) {
  std::string out;
  for (char c : v) {
    if (c == '\\') out += "\\\\";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

void header(std::string& out, const std::string& fam,
            const std::string& help, const char* type) {
  out += "# HELP " + fam + " " + escape_help(help) + "\n";
  out += "# TYPE " + fam + " ";
  out += type;
  out += "\n";
}

std::string rank_label(std::size_t shard) {
  // Shard 0 is the unattributed (driver/producer) shard.
  return shard == 0 ? std::string("driver") : std::to_string(shard - 1);
}

void sample_u64(std::string& out, const std::string& fam,
                const std::string& labels, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += fam;
  out += labels;
  out += ' ';
  out += buf;
  out += '\n';
}

/// Emits one family of per-rank u64 samples: shard 0 always (so the family
/// is never empty), other shards only when active per `active`.
/// `extra` is a pre-rendered label list ('k="v",k2="v2"') merged before the
/// rank label.
template <typename Shards, typename Active>
void per_rank_samples(std::string& out, const std::string& fam,
                      const std::string& extra, const Shards& values,
                      const Active& active) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0 && !active[i]) continue;
    std::string labels = "{";
    if (!extra.empty()) {
      labels += extra;
      labels += ',';
    }
    labels += "rank=\"" + escape_label(rank_label(i)) + "\"}";
    sample_u64(out, fam, labels, values[i]);
  }
}

/// Label names must match [a-zA-Z_][a-zA-Z0-9_]*; anything else maps to
/// '_' (mirrors prom_name for metric names).
std::string sanitize_label_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_';
    const bool ok = alpha || (i > 0 && c >= '0' && c <= '9');
    out += ok ? c : '_';
  }
  if (out.empty()) out = "_";
  return out;
}

/// A registry metric name optionally carries a label set in the name
/// string itself — "serve.ingest_refs{tenant=alice,reason=rate}" — which
/// is how label-dimensioned metrics (per-tenant serving counters) ride on
/// the flat name->metric registry. split_name separates the family base
/// from the rendered label list.
struct LabeledName {
  std::string base;    // registry name without the label block
  std::string labels;  // rendered 'k="v",k2="v2"' (escaped); "" if none
};

LabeledName split_name(std::string_view name) {
  LabeledName out;
  const std::size_t brace = name.find('{');
  if (brace == std::string_view::npos || name.empty() ||
      name.back() != '}') {
    out.base = std::string(name);
    return out;
  }
  out.base = std::string(name.substr(0, brace));
  const std::string_view inner =
      name.substr(brace + 1, name.size() - brace - 2);
  std::size_t pos = 0;
  while (pos < inner.size()) {
    const std::size_t comma = inner.find(',', pos);
    const std::string_view pair = inner.substr(
        pos, comma == std::string_view::npos ? std::string_view::npos
                                             : comma - pos);
    pos = comma == std::string_view::npos ? inner.size() : comma + 1;
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) continue;  // malformed pair: dropped
    if (!out.labels.empty()) out.labels += ',';
    out.labels += sanitize_label_name(pair.substr(0, eq));
    out.labels += "=\"";
    out.labels += escape_label(pair.substr(eq + 1));
    out.labels += '"';
  }
  return out;
}

}  // namespace

std::string to_prometheus(const Registry& reg, const SpanTracer& tracer) {
  std::string out;
  out.reserve(1 << 14);

  // Metrics whose names carry a label block share a Prometheus family with
  // every other label set of the same base name, and the exposition format
  // allows exactly one HELP/TYPE per family — so each kind groups by
  // family first and emits the header once.
  std::map<std::string,
           std::vector<std::pair<const Counter*, LabeledName>>>
      counter_fams;
  for (const Counter* c : reg.counters()) {
    LabeledName ln = split_name(c->name());
    counter_fams[prom_name(ln.base) + "_total"].emplace_back(c,
                                                             std::move(ln));
  }
  for (const auto& [fam, members] : counter_fams) {
    header(out, fam,
           "Parda counter " + members.front().second.base +
               " (rank=\"driver\" is the unattributed shard)",
           "counter");
    for (const auto& [c, ln] : members) {
      const auto shards = c->shards();
      std::array<bool, kShards> active{};
      for (std::size_t i = 0; i < shards.size(); ++i) {
        active[i] = shards[i] != 0;
      }
      per_rank_samples(out, fam, ln.labels, shards, active);
    }
  }

  std::map<std::string, std::vector<std::pair<const Gauge*, LabeledName>>>
      gauge_fams;
  for (const Gauge* g : reg.gauges()) {
    LabeledName ln = split_name(g->name());
    gauge_fams[prom_name(ln.base)].emplace_back(g, std::move(ln));
  }
  for (const auto& [fam, members] : gauge_fams) {
    header(out, fam,
           "Parda gauge " + members.front().second.base +
               " (last value published per rank)",
           "gauge");
    for (const auto& [g, ln] : members) {
      const auto maxes = g->shards();
      const auto values = g->values();
      std::array<bool, kShards> active{};
      for (std::size_t i = 0; i < maxes.size(); ++i) {
        active[i] = maxes[i] != 0;
      }
      per_rank_samples(out, fam, ln.labels, values, active);
    }
    const std::string fam_max = fam + "_max";
    header(out, fam_max,
           "Parda gauge " + members.front().second.base +
               " lifetime high-water mark per rank",
           "gauge");
    for (const auto& [g, ln] : members) {
      const auto maxes = g->shards();
      std::array<bool, kShards> active{};
      for (std::size_t i = 0; i < maxes.size(); ++i) {
        active[i] = maxes[i] != 0;
      }
      per_rank_samples(out, fam_max, ln.labels, maxes, active);
    }
  }

  std::map<std::string,
           std::vector<std::pair<const TimerHistogram*, LabeledName>>>
      timer_fams;
  for (const TimerHistogram* t : reg.timers()) {
    LabeledName ln = split_name(t->name());
    timer_fams[prom_name(ln.base) + "_ns"].emplace_back(t, std::move(ln));
  }
  for (const auto& [fam, members] : timer_fams) {
    header(out, fam,
           "Parda timer " + members.front().second.base +
               " in nanoseconds (log2 buckets, aggregated across ranks)",
           "histogram");
    for (const auto& [t, ln] : members) {
      const std::string extra =
          ln.labels.empty() ? std::string() : ln.labels + ',';
      const TimerHistogram::Aggregate agg = t->aggregate();
      std::size_t last = 0;
      for (std::size_t b = 0; b < agg.buckets.size(); ++b) {
        if (agg.buckets[b] != 0) last = b + 1;
      }
      std::uint64_t cum = 0;
      for (std::size_t b = 0; b < last; ++b) {
        cum += agg.buckets[b];
        // Bucket b holds [2^b, 2^(b+1)) ns; integer durations make
        // le=2^(b+1)-1 the exact inclusive upper bound.
        const std::uint64_t le = (std::uint64_t{1} << (b + 1)) - 1;
        sample_u64(out, fam + "_bucket",
                   "{" + extra + "le=\"" + std::to_string(le) + "\"}", cum);
      }
      sample_u64(out, fam + "_bucket", "{" + extra + "le=\"+Inf\"}",
                 agg.count);
      sample_u64(out, fam + "_sum",
                 ln.labels.empty() ? "" : "{" + ln.labels + "}", agg.sum_ns);
      sample_u64(out, fam + "_count",
                 ln.labels.empty() ? "" : "{" + ln.labels + "}", agg.count);
    }
  }

  {
    const std::string fam = "parda_obs_spans_dropped_total";
    header(out, fam,
           "Span ring overwrites per rank shard (nonzero means the oldest "
           "spans were lost to wrap-around)",
           "counter");
    const auto dropped = tracer.dropped_per_shard();
    std::array<bool, kShards> active{};
    for (std::size_t i = 0; i < dropped.size(); ++i) {
      active[i] = dropped[i] != 0;
    }
    per_rank_samples(out, fam, "", dropped, active);
  }

  return out;
}

std::string to_prometheus(const Registry& reg, const SpanTracer& tracer,
                          const TelemetryHub& hub) {
  if (hub.empty()) return to_prometheus(reg, tracer);
  const std::vector<ProcessTelemetry> remotes = hub.snapshot();

  std::string out;
  out.reserve(1 << 15);

  auto with_process = [](const std::string& labels, int process) {
    std::string extra = "process=\"" + std::to_string(process) + "\"";
    if (!labels.empty()) {
      extra += ',';
      extra += labels;
    }
    return extra;
  };
  auto active_mask = [](const std::vector<std::uint64_t>& shards) {
    std::vector<bool> active(shards.size());
    for (std::size_t i = 0; i < shards.size(); ++i) {
      active[i] = shards[i] != 0;
    }
    return active;
  };

  // Counters: local (process="0") and every remote process share one
  // family block per base name — the exposition format allows exactly one
  // HELP/TYPE per family.
  struct CounterMember {
    std::string labels;
    std::vector<std::uint64_t> shards;
  };
  std::map<std::string, std::pair<std::string, std::vector<CounterMember>>>
      counter_fams;
  auto add_counter = [&](std::string_view name, int process,
                         std::vector<std::uint64_t> shards) {
    LabeledName ln = split_name(name);
    auto& fam = counter_fams[prom_name(ln.base) + "_total"];
    if (fam.second.empty()) fam.first = ln.base;
    fam.second.push_back(
        {with_process(ln.labels, process), std::move(shards)});
  };
  for (const Counter* c : reg.counters()) {
    const auto shards = c->shards();
    add_counter(c->name(), 0,
                std::vector<std::uint64_t>(shards.begin(), shards.end()));
  }
  for (const ProcessTelemetry& pt : remotes) {
    for (const auto& rc : pt.counters) {
      add_counter(rc.name, pt.process, rc.shards);
    }
  }
  for (const auto& [fam, entry] : counter_fams) {
    header(out, fam,
           "Parda counter " + entry.first +
               " (rank=\"driver\" is the unattributed shard)",
           "counter");
    for (const CounterMember& m : entry.second) {
      per_rank_samples(out, fam, m.labels, m.shards, active_mask(m.shards));
    }
  }

  struct GaugeMember {
    std::string labels;
    std::vector<std::uint64_t> maxes;
    std::vector<std::uint64_t> values;
  };
  std::map<std::string, std::pair<std::string, std::vector<GaugeMember>>>
      gauge_fams;
  auto add_gauge = [&](std::string_view name, int process,
                       std::vector<std::uint64_t> maxes,
                       std::vector<std::uint64_t> values) {
    LabeledName ln = split_name(name);
    auto& fam = gauge_fams[prom_name(ln.base)];
    if (fam.second.empty()) fam.first = ln.base;
    fam.second.push_back({with_process(ln.labels, process),
                          std::move(maxes), std::move(values)});
  };
  for (const Gauge* g : reg.gauges()) {
    const auto maxes = g->shards();
    const auto values = g->values();
    add_gauge(g->name(), 0,
              std::vector<std::uint64_t>(maxes.begin(), maxes.end()),
              std::vector<std::uint64_t>(values.begin(), values.end()));
  }
  for (const ProcessTelemetry& pt : remotes) {
    for (const auto& rg : pt.gauges) {
      add_gauge(rg.name, pt.process, rg.maxes, rg.values);
    }
  }
  for (const auto& [fam, entry] : gauge_fams) {
    header(out, fam,
           "Parda gauge " + entry.first + " (last value published per rank)",
           "gauge");
    for (const GaugeMember& m : entry.second) {
      per_rank_samples(out, fam, m.labels, m.values, active_mask(m.maxes));
    }
    const std::string fam_max = fam + "_max";
    header(out, fam_max,
           "Parda gauge " + entry.first +
               " lifetime high-water mark per rank",
           "gauge");
    for (const GaugeMember& m : entry.second) {
      per_rank_samples(out, fam_max, m.labels, m.maxes,
                       active_mask(m.maxes));
    }
  }

  struct TimerMember {
    std::string labels;
    std::uint64_t count = 0;
    std::uint64_t sum_ns = 0;
    std::vector<std::uint64_t> buckets;
  };
  std::map<std::string, std::pair<std::string, std::vector<TimerMember>>>
      timer_fams;
  auto add_timer = [&](std::string_view name, int process,
                       std::uint64_t count, std::uint64_t sum_ns,
                       std::vector<std::uint64_t> buckets) {
    LabeledName ln = split_name(name);
    auto& fam = timer_fams[prom_name(ln.base) + "_ns"];
    if (fam.second.empty()) fam.first = ln.base;
    fam.second.push_back({with_process(ln.labels, process), count, sum_ns,
                          std::move(buckets)});
  };
  for (const TimerHistogram* t : reg.timers()) {
    const TimerHistogram::Aggregate agg = t->aggregate();
    add_timer(t->name(), 0, agg.count, agg.sum_ns,
              std::vector<std::uint64_t>(agg.buckets.begin(),
                                         agg.buckets.end()));
  }
  for (const ProcessTelemetry& pt : remotes) {
    for (const auto& rt : pt.timers) {
      add_timer(rt.name, pt.process, rt.count, rt.sum_ns, rt.buckets);
    }
  }
  for (const auto& [fam, entry] : timer_fams) {
    header(out, fam,
           "Parda timer " + entry.first +
               " in nanoseconds (log2 buckets, aggregated across ranks)",
           "histogram");
    for (const TimerMember& m : entry.second) {
      const std::string extra = m.labels + ',';
      std::size_t last = 0;
      for (std::size_t b = 0; b < m.buckets.size(); ++b) {
        if (m.buckets[b] != 0) last = b + 1;
      }
      std::uint64_t cum = 0;
      for (std::size_t b = 0; b < last; ++b) {
        cum += m.buckets[b];
        const std::uint64_t le = (std::uint64_t{1} << (b + 1)) - 1;
        sample_u64(out, fam + "_bucket",
                   "{" + extra + "le=\"" + std::to_string(le) + "\"}", cum);
      }
      sample_u64(out, fam + "_bucket", "{" + extra + "le=\"+Inf\"}",
                 m.count);
      sample_u64(out, fam + "_sum", "{" + m.labels + "}", m.sum_ns);
      sample_u64(out, fam + "_count", "{" + m.labels + "}", m.count);
    }
  }

  {
    const std::string fam = "parda_obs_spans_dropped_total";
    header(out, fam,
           "Span ring overwrites per rank shard (nonzero means the oldest "
           "spans were lost to wrap-around)",
           "counter");
    const auto dropped = tracer.dropped_per_shard();
    per_rank_samples(
        out, fam, "process=\"0\"",
        std::vector<std::uint64_t>(dropped.begin(), dropped.end()),
        active_mask(
            std::vector<std::uint64_t>(dropped.begin(), dropped.end())));
    for (const ProcessTelemetry& pt : remotes) {
      // Remote drops arrive as one total per process (the frame does not
      // break them out per shard).
      sample_u64(out, fam,
                 "{process=\"" + std::to_string(pt.process) + "\"}",
                 pt.spans_dropped);
    }
  }

  // Per-process freshness: is every process still reporting, how stale is
  // its snapshot, and how trustworthy is its clock alignment.
  auto process_labels = [](int process) {
    return "{process=\"" + std::to_string(process) + "\"}";
  };
  {
    const std::string fam = "parda_telemetry_frames_total";
    header(out, fam, "Telemetry frames ingested per remote process",
           "counter");
    for (const ProcessTelemetry& pt : remotes) {
      sample_u64(out, fam, process_labels(pt.process), pt.frames);
    }
  }
  {
    const std::string fam = "parda_telemetry_last_seq";
    header(out, fam, "Sequence number of the newest frame per process",
           "gauge");
    for (const ProcessTelemetry& pt : remotes) {
      sample_u64(out, fam, process_labels(pt.process), pt.seq);
    }
  }
  {
    const std::string fam = "parda_telemetry_final";
    header(out, fam,
           "1 once the process sent its end-of-job flush frame", "gauge");
    for (const ProcessTelemetry& pt : remotes) {
      sample_u64(out, fam, process_labels(pt.process),
                 pt.final_received ? 1 : 0);
    }
  }
  {
    const std::string fam = "parda_telemetry_age_ns";
    header(out, fam, "Nanoseconds since the newest frame per process",
           "gauge");
    const std::int64_t now = tracer.now_ns();
    for (const ProcessTelemetry& pt : remotes) {
      sample_u64(out, fam, process_labels(pt.process),
                 static_cast<std::uint64_t>(
                     std::max<std::int64_t>(0, now - pt.last_ingest_ns)));
    }
  }
  {
    const std::string fam = "parda_telemetry_clock_uncertainty_ns";
    header(out, fam,
           "Half the min round-trip of the clock handshake per process "
           "(0 with clock_valid=0 means no estimate)",
           "gauge");
    for (const ProcessTelemetry& pt : remotes) {
      sample_u64(out, fam, process_labels(pt.process),
                 pt.clock.valid
                     ? static_cast<std::uint64_t>(
                           std::max<std::int64_t>(0,
                                                  pt.clock.uncertainty_ns))
                     : 0);
    }
  }
  {
    const std::string fam = "parda_telemetry_clock_valid";
    header(out, fam,
           "1 when the process's clock-offset handshake converged",
           "gauge");
    for (const ProcessTelemetry& pt : remotes) {
      sample_u64(out, fam, process_labels(pt.process),
                 pt.clock.valid ? 1 : 0);
    }
  }

  return out;
}

std::string to_prometheus() {
  return to_prometheus(registry(), tracer(), hub());
}

// --- Validator --------------------------------------------------------------

namespace {

bool valid_metric_name(std::string_view s) {
  if (s.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(s[0])) return false;
  for (char c : s.substr(1)) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

bool valid_label_name(std::string_view s) {
  if (s.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  if (!head(s[0])) return false;
  for (char c : s.substr(1)) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

bool valid_value(std::string_view s) {
  if (s == "+Inf" || s == "-Inf" || s == "Inf" || s == "NaN") return true;
  if (s.empty()) return false;
  char* end = nullptr;
  const std::string copy(s);
  std::strtod(copy.c_str(), &end);
  return end == copy.c_str() + copy.size();
}

struct Sample {
  std::string name;
  // Sorted key=value pairs, `le` excluded for bucket grouping.
  std::vector<std::pair<std::string, std::string>> labels;
  std::optional<std::string> le;
  double value = 0;
  std::size_t line_no = 0;
};

/// Base family of a sample name: strips _bucket/_sum/_count when the
/// stripped name was declared as a histogram.
std::string histogram_base(const std::string& name,
                           const std::map<std::string, std::string>& types) {
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    const std::string_view sv(suffix);
    if (name.size() > sv.size() &&
        name.compare(name.size() - sv.size(), sv.size(), sv) == 0) {
      const std::string base = name.substr(0, name.size() - sv.size());
      const auto it = types.find(base);
      if (it != types.end() && it->second == "histogram") return base;
    }
  }
  return name;
}

}  // namespace

std::vector<std::string> validate_prometheus(std::string_view text) {
  std::vector<std::string> problems;
  auto fail = [&](std::size_t line_no, const std::string& msg) {
    problems.push_back("line " + std::to_string(line_no) + ": " + msg);
  };

  if (text.empty() || text.back() != '\n') {
    problems.push_back("exposition must end with a newline");
  }

  std::map<std::string, std::string> types;   // family -> TYPE
  std::map<std::string, std::size_t> helps;   // family -> HELP line
  std::vector<Sample> samples;

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    ++line_no;
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                       : eol - pos);
    pos = eol == std::string_view::npos ? text.size() : eol + 1;
    if (line.empty()) continue;

    if (line[0] == '#') {
      // "# HELP name text" | "# TYPE name type" | plain comment.
      if (line.rfind("# HELP ", 0) == 0) {
        const std::string_view rest = line.substr(7);
        const std::size_t sp = rest.find(' ');
        const std::string name(rest.substr(0, sp));
        if (!valid_metric_name(name)) {
          fail(line_no, "HELP for invalid metric name '" + name + "'");
        }
        if (helps.count(name) != 0) {
          fail(line_no, "duplicate HELP for '" + name + "'");
        }
        helps[name] = line_no;
      } else if (line.rfind("# TYPE ", 0) == 0) {
        const std::string_view rest = line.substr(7);
        const std::size_t sp = rest.find(' ');
        if (sp == std::string_view::npos) {
          fail(line_no, "TYPE line missing type");
          continue;
        }
        const std::string name(rest.substr(0, sp));
        const std::string type(rest.substr(sp + 1));
        if (!valid_metric_name(name)) {
          fail(line_no, "TYPE for invalid metric name '" + name + "'");
        }
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped") {
          fail(line_no, "unknown TYPE '" + type + "'");
        }
        if (types.count(name) != 0) {
          fail(line_no, "duplicate TYPE for '" + name + "'");
        }
        if (helps.count(name) == 0) {
          fail(line_no, "TYPE for '" + name + "' without preceding HELP");
        }
        types[name] = type;
        if (type == "counter" &&
            (name.size() < 6 ||
             name.compare(name.size() - 6, 6, "_total") != 0)) {
          fail(line_no, "counter '" + name + "' must end with _total");
        }
      }
      continue;
    }

    // Sample line: name[{labels}] value [timestamp]
    Sample s;
    s.line_no = line_no;
    std::size_t i = 0;
    while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
    s.name = std::string(line.substr(0, i));
    if (!valid_metric_name(s.name)) {
      fail(line_no, "invalid metric name '" + s.name + "'");
      continue;
    }
    if (i < line.size() && line[i] == '{') {
      ++i;
      while (i < line.size() && line[i] != '}') {
        std::size_t eq = line.find('=', i);
        if (eq == std::string_view::npos) {
          fail(line_no, "malformed label (no '=')");
          break;
        }
        const std::string lname(line.substr(i, eq - i));
        if (!valid_label_name(lname)) {
          fail(line_no, "invalid label name '" + lname + "'");
        }
        if (eq + 1 >= line.size() || line[eq + 1] != '"') {
          fail(line_no, "label value must be quoted");
          break;
        }
        std::string lvalue;
        std::size_t j = eq + 2;
        bool closed = false;
        while (j < line.size()) {
          const char c = line[j];
          if (c == '\\') {
            if (j + 1 >= line.size() ||
                (line[j + 1] != '\\' && line[j + 1] != '"' &&
                 line[j + 1] != 'n')) {
              fail(line_no, "bad escape in label value");
              break;
            }
            lvalue += line[j + 1] == 'n' ? '\n' : line[j + 1];
            j += 2;
          } else if (c == '"') {
            closed = true;
            ++j;
            break;
          } else {
            lvalue += c;
            ++j;
          }
        }
        if (!closed) {
          fail(line_no, "unterminated label value");
          break;
        }
        if (lname == "le") {
          s.le = lvalue;
        } else {
          s.labels.emplace_back(lname, lvalue);
        }
        i = j;
        if (i < line.size() && line[i] == ',') ++i;
      }
      if (i < line.size() && line[i] == '}') ++i;
    }
    if (i >= line.size() || line[i] != ' ') {
      fail(line_no, "missing value after metric");
      continue;
    }
    ++i;
    const std::size_t sp = line.find(' ', i);
    const std::string value_text(
        line.substr(i, sp == std::string_view::npos ? std::string_view::npos
                                                    : sp - i));
    if (!valid_value(value_text)) {
      fail(line_no, "non-numeric sample value '" + value_text + "'");
      continue;
    }
    s.value = value_text == "+Inf" || value_text == "Inf"
                  ? std::numeric_limits<double>::infinity()
                  : std::strtod(value_text.c_str(), nullptr);
    std::sort(s.labels.begin(), s.labels.end());
    samples.push_back(std::move(s));
  }

  // Every sample's family must have a TYPE declared (before use is implied
  // by emission order; we check presence here and order via line numbers).
  for (const Sample& s : samples) {
    const std::string fam = histogram_base(s.name, types);
    const auto it = types.find(fam);
    if (it == types.end()) {
      fail(s.line_no, "sample '" + s.name + "' has no TYPE declaration");
    }
  }

  // Histogram consistency per (family, labels-minus-le).
  struct HistGroup {
    std::vector<std::pair<double, double>> buckets;  // (le, cumulative)
    std::optional<double> sum;
    std::optional<double> count;
    std::size_t line_no = 0;
  };
  std::map<std::string, HistGroup> groups;
  auto group_key = [](const std::string& fam, const Sample& s) {
    std::string key = fam;
    for (const auto& [k, v] : s.labels) key += "|" + k + "=" + v;
    return key;
  };
  for (const Sample& s : samples) {
    const std::string fam = histogram_base(s.name, types);
    if (fam == s.name || types.find(fam)->second != "histogram") continue;
    HistGroup& g = groups[group_key(fam, s)];
    g.line_no = s.line_no;
    if (s.name == fam + "_bucket") {
      if (!s.le.has_value()) {
        fail(s.line_no, "_bucket sample without le label");
        continue;
      }
      const double le = *s.le == "+Inf"
                            ? std::numeric_limits<double>::infinity()
                            : std::strtod(s.le->c_str(), nullptr);
      g.buckets.emplace_back(le, s.value);
    } else if (s.name == fam + "_sum") {
      g.sum = s.value;
    } else if (s.name == fam + "_count") {
      g.count = s.value;
    }
  }
  for (const auto& [key, g] : groups) {
    const std::string fam = key.substr(0, key.find('|'));
    if (g.buckets.empty()) {
      fail(g.line_no, "histogram '" + fam + "' has no _bucket samples");
      continue;
    }
    for (std::size_t b = 1; b < g.buckets.size(); ++b) {
      if (!(g.buckets[b].first > g.buckets[b - 1].first)) {
        fail(g.line_no, "histogram '" + fam + "' le values not increasing");
      }
      if (g.buckets[b].second < g.buckets[b - 1].second) {
        fail(g.line_no,
             "histogram '" + fam + "' bucket counts not monotonic");
      }
    }
    if (!std::isinf(g.buckets.back().first)) {
      fail(g.line_no, "histogram '" + fam + "' missing le=\"+Inf\" bucket");
    }
    if (!g.count.has_value()) {
      fail(g.line_no, "histogram '" + fam + "' missing _count");
    } else if (std::isinf(g.buckets.back().first) &&
               g.buckets.back().second != *g.count) {
      fail(g.line_no,
           "histogram '" + fam + "' +Inf bucket != _count");
    }
    if (!g.sum.has_value()) {
      fail(g.line_no, "histogram '" + fam + "' missing _sum");
    }
  }

  return problems;
}

}  // namespace parda::obs
