#include "obs/export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <optional>

namespace parda::obs {

namespace {

/// "comm.bytes_sent" -> "parda_comm_bytes_sent" (charset [a-zA-Z0-9_:]).
std::string prom_name(std::string_view name) {
  std::string out = "parda_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

/// Label values escape backslash, double-quote, and newline.
std::string escape_label(std::string_view v) {
  std::string out;
  for (char c : v) {
    if (c == '\\') out += "\\\\";
    else if (c == '"') out += "\\\"";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

/// HELP text escapes backslash and newline (quotes are fine).
std::string escape_help(std::string_view v) {
  std::string out;
  for (char c : v) {
    if (c == '\\') out += "\\\\";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

void header(std::string& out, const std::string& fam,
            const std::string& help, const char* type) {
  out += "# HELP " + fam + " " + escape_help(help) + "\n";
  out += "# TYPE " + fam + " ";
  out += type;
  out += "\n";
}

std::string rank_label(std::size_t shard) {
  // Shard 0 is the unattributed (driver/producer) shard.
  return shard == 0 ? std::string("driver") : std::to_string(shard - 1);
}

void sample_u64(std::string& out, const std::string& fam,
                const std::string& labels, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += fam;
  out += labels;
  out += ' ';
  out += buf;
  out += '\n';
}

/// Emits one family of per-rank u64 samples: shard 0 always (so the family
/// is never empty), other shards only when active per `active`.
template <typename Shards, typename Active>
void per_rank_samples(std::string& out, const std::string& fam,
                      const Shards& values, const Active& active) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0 && !active[i]) continue;
    sample_u64(out, fam, "{rank=\"" + escape_label(rank_label(i)) + "\"}",
               values[i]);
  }
}

}  // namespace

std::string to_prometheus(const Registry& reg, const SpanTracer& tracer) {
  std::string out;
  out.reserve(1 << 14);

  for (const Counter* c : reg.counters()) {
    const std::string fam = prom_name(c->name()) + "_total";
    header(out, fam,
           "Parda counter " + c->name() +
               " (rank=\"driver\" is the unattributed shard)",
           "counter");
    const auto shards = c->shards();
    std::array<bool, kShards> active{};
    for (std::size_t i = 0; i < shards.size(); ++i) active[i] = shards[i] != 0;
    per_rank_samples(out, fam, shards, active);
  }

  for (const Gauge* g : reg.gauges()) {
    const auto maxes = g->shards();
    const auto values = g->values();
    std::array<bool, kShards> active{};
    for (std::size_t i = 0; i < maxes.size(); ++i) active[i] = maxes[i] != 0;
    const std::string fam = prom_name(g->name());
    header(out, fam,
           "Parda gauge " + g->name() + " (last value published per rank)",
           "gauge");
    per_rank_samples(out, fam, values, active);
    const std::string fam_max = fam + "_max";
    header(out, fam_max,
           "Parda gauge " + g->name() + " lifetime high-water mark per rank",
           "gauge");
    per_rank_samples(out, fam_max, maxes, active);
  }

  for (const TimerHistogram* t : reg.timers()) {
    const std::string fam = prom_name(t->name()) + "_ns";
    header(out, fam,
           "Parda timer " + t->name() +
               " in nanoseconds (log2 buckets, aggregated across ranks)",
           "histogram");
    const TimerHistogram::Aggregate agg = t->aggregate();
    std::size_t last = 0;
    for (std::size_t b = 0; b < agg.buckets.size(); ++b) {
      if (agg.buckets[b] != 0) last = b + 1;
    }
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < last; ++b) {
      cum += agg.buckets[b];
      // Bucket b holds [2^b, 2^(b+1)) ns; integer durations make
      // le=2^(b+1)-1 the exact inclusive upper bound.
      const std::uint64_t le = (std::uint64_t{1} << (b + 1)) - 1;
      sample_u64(out, fam + "_bucket",
                 "{le=\"" + std::to_string(le) + "\"}", cum);
    }
    sample_u64(out, fam + "_bucket", "{le=\"+Inf\"}", agg.count);
    sample_u64(out, fam + "_sum", "", agg.sum_ns);
    sample_u64(out, fam + "_count", "", agg.count);
  }

  {
    const std::string fam = "parda_obs_spans_dropped_total";
    header(out, fam,
           "Span ring overwrites per rank shard (nonzero means the oldest "
           "spans were lost to wrap-around)",
           "counter");
    const auto dropped = tracer.dropped_per_shard();
    std::array<bool, kShards> active{};
    for (std::size_t i = 0; i < dropped.size(); ++i) {
      active[i] = dropped[i] != 0;
    }
    per_rank_samples(out, fam, dropped, active);
  }

  return out;
}

std::string to_prometheus() { return to_prometheus(registry(), tracer()); }

// --- Validator --------------------------------------------------------------

namespace {

bool valid_metric_name(std::string_view s) {
  if (s.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(s[0])) return false;
  for (char c : s.substr(1)) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

bool valid_label_name(std::string_view s) {
  if (s.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  if (!head(s[0])) return false;
  for (char c : s.substr(1)) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

bool valid_value(std::string_view s) {
  if (s == "+Inf" || s == "-Inf" || s == "Inf" || s == "NaN") return true;
  if (s.empty()) return false;
  char* end = nullptr;
  const std::string copy(s);
  std::strtod(copy.c_str(), &end);
  return end == copy.c_str() + copy.size();
}

struct Sample {
  std::string name;
  // Sorted key=value pairs, `le` excluded for bucket grouping.
  std::vector<std::pair<std::string, std::string>> labels;
  std::optional<std::string> le;
  double value = 0;
  std::size_t line_no = 0;
};

/// Base family of a sample name: strips _bucket/_sum/_count when the
/// stripped name was declared as a histogram.
std::string histogram_base(const std::string& name,
                           const std::map<std::string, std::string>& types) {
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    const std::string_view sv(suffix);
    if (name.size() > sv.size() &&
        name.compare(name.size() - sv.size(), sv.size(), sv) == 0) {
      const std::string base = name.substr(0, name.size() - sv.size());
      const auto it = types.find(base);
      if (it != types.end() && it->second == "histogram") return base;
    }
  }
  return name;
}

}  // namespace

std::vector<std::string> validate_prometheus(std::string_view text) {
  std::vector<std::string> problems;
  auto fail = [&](std::size_t line_no, const std::string& msg) {
    problems.push_back("line " + std::to_string(line_no) + ": " + msg);
  };

  if (text.empty() || text.back() != '\n') {
    problems.push_back("exposition must end with a newline");
  }

  std::map<std::string, std::string> types;   // family -> TYPE
  std::map<std::string, std::size_t> helps;   // family -> HELP line
  std::vector<Sample> samples;

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    ++line_no;
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                       : eol - pos);
    pos = eol == std::string_view::npos ? text.size() : eol + 1;
    if (line.empty()) continue;

    if (line[0] == '#') {
      // "# HELP name text" | "# TYPE name type" | plain comment.
      if (line.rfind("# HELP ", 0) == 0) {
        const std::string_view rest = line.substr(7);
        const std::size_t sp = rest.find(' ');
        const std::string name(rest.substr(0, sp));
        if (!valid_metric_name(name)) {
          fail(line_no, "HELP for invalid metric name '" + name + "'");
        }
        if (helps.count(name) != 0) {
          fail(line_no, "duplicate HELP for '" + name + "'");
        }
        helps[name] = line_no;
      } else if (line.rfind("# TYPE ", 0) == 0) {
        const std::string_view rest = line.substr(7);
        const std::size_t sp = rest.find(' ');
        if (sp == std::string_view::npos) {
          fail(line_no, "TYPE line missing type");
          continue;
        }
        const std::string name(rest.substr(0, sp));
        const std::string type(rest.substr(sp + 1));
        if (!valid_metric_name(name)) {
          fail(line_no, "TYPE for invalid metric name '" + name + "'");
        }
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped") {
          fail(line_no, "unknown TYPE '" + type + "'");
        }
        if (types.count(name) != 0) {
          fail(line_no, "duplicate TYPE for '" + name + "'");
        }
        if (helps.count(name) == 0) {
          fail(line_no, "TYPE for '" + name + "' without preceding HELP");
        }
        types[name] = type;
        if (type == "counter" &&
            (name.size() < 6 ||
             name.compare(name.size() - 6, 6, "_total") != 0)) {
          fail(line_no, "counter '" + name + "' must end with _total");
        }
      }
      continue;
    }

    // Sample line: name[{labels}] value [timestamp]
    Sample s;
    s.line_no = line_no;
    std::size_t i = 0;
    while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
    s.name = std::string(line.substr(0, i));
    if (!valid_metric_name(s.name)) {
      fail(line_no, "invalid metric name '" + s.name + "'");
      continue;
    }
    if (i < line.size() && line[i] == '{') {
      ++i;
      while (i < line.size() && line[i] != '}') {
        std::size_t eq = line.find('=', i);
        if (eq == std::string_view::npos) {
          fail(line_no, "malformed label (no '=')");
          break;
        }
        const std::string lname(line.substr(i, eq - i));
        if (!valid_label_name(lname)) {
          fail(line_no, "invalid label name '" + lname + "'");
        }
        if (eq + 1 >= line.size() || line[eq + 1] != '"') {
          fail(line_no, "label value must be quoted");
          break;
        }
        std::string lvalue;
        std::size_t j = eq + 2;
        bool closed = false;
        while (j < line.size()) {
          const char c = line[j];
          if (c == '\\') {
            if (j + 1 >= line.size() ||
                (line[j + 1] != '\\' && line[j + 1] != '"' &&
                 line[j + 1] != 'n')) {
              fail(line_no, "bad escape in label value");
              break;
            }
            lvalue += line[j + 1] == 'n' ? '\n' : line[j + 1];
            j += 2;
          } else if (c == '"') {
            closed = true;
            ++j;
            break;
          } else {
            lvalue += c;
            ++j;
          }
        }
        if (!closed) {
          fail(line_no, "unterminated label value");
          break;
        }
        if (lname == "le") {
          s.le = lvalue;
        } else {
          s.labels.emplace_back(lname, lvalue);
        }
        i = j;
        if (i < line.size() && line[i] == ',') ++i;
      }
      if (i < line.size() && line[i] == '}') ++i;
    }
    if (i >= line.size() || line[i] != ' ') {
      fail(line_no, "missing value after metric");
      continue;
    }
    ++i;
    const std::size_t sp = line.find(' ', i);
    const std::string value_text(
        line.substr(i, sp == std::string_view::npos ? std::string_view::npos
                                                    : sp - i));
    if (!valid_value(value_text)) {
      fail(line_no, "non-numeric sample value '" + value_text + "'");
      continue;
    }
    s.value = value_text == "+Inf" || value_text == "Inf"
                  ? std::numeric_limits<double>::infinity()
                  : std::strtod(value_text.c_str(), nullptr);
    std::sort(s.labels.begin(), s.labels.end());
    samples.push_back(std::move(s));
  }

  // Every sample's family must have a TYPE declared (before use is implied
  // by emission order; we check presence here and order via line numbers).
  for (const Sample& s : samples) {
    const std::string fam = histogram_base(s.name, types);
    const auto it = types.find(fam);
    if (it == types.end()) {
      fail(s.line_no, "sample '" + s.name + "' has no TYPE declaration");
    }
  }

  // Histogram consistency per (family, labels-minus-le).
  struct HistGroup {
    std::vector<std::pair<double, double>> buckets;  // (le, cumulative)
    std::optional<double> sum;
    std::optional<double> count;
    std::size_t line_no = 0;
  };
  std::map<std::string, HistGroup> groups;
  auto group_key = [](const std::string& fam, const Sample& s) {
    std::string key = fam;
    for (const auto& [k, v] : s.labels) key += "|" + k + "=" + v;
    return key;
  };
  for (const Sample& s : samples) {
    const std::string fam = histogram_base(s.name, types);
    if (fam == s.name || types.find(fam)->second != "histogram") continue;
    HistGroup& g = groups[group_key(fam, s)];
    g.line_no = s.line_no;
    if (s.name == fam + "_bucket") {
      if (!s.le.has_value()) {
        fail(s.line_no, "_bucket sample without le label");
        continue;
      }
      const double le = *s.le == "+Inf"
                            ? std::numeric_limits<double>::infinity()
                            : std::strtod(s.le->c_str(), nullptr);
      g.buckets.emplace_back(le, s.value);
    } else if (s.name == fam + "_sum") {
      g.sum = s.value;
    } else if (s.name == fam + "_count") {
      g.count = s.value;
    }
  }
  for (const auto& [key, g] : groups) {
    const std::string fam = key.substr(0, key.find('|'));
    if (g.buckets.empty()) {
      fail(g.line_no, "histogram '" + fam + "' has no _bucket samples");
      continue;
    }
    for (std::size_t b = 1; b < g.buckets.size(); ++b) {
      if (!(g.buckets[b].first > g.buckets[b - 1].first)) {
        fail(g.line_no, "histogram '" + fam + "' le values not increasing");
      }
      if (g.buckets[b].second < g.buckets[b - 1].second) {
        fail(g.line_no,
             "histogram '" + fam + "' bucket counts not monotonic");
      }
    }
    if (!std::isinf(g.buckets.back().first)) {
      fail(g.line_no, "histogram '" + fam + "' missing le=\"+Inf\" bucket");
    }
    if (!g.count.has_value()) {
      fail(g.line_no, "histogram '" + fam + "' missing _count");
    } else if (std::isinf(g.buckets.back().first) &&
               g.buckets.back().second != *g.count) {
      fail(g.line_no,
           "histogram '" + fam + "' +Inf bucket != _count");
    }
    if (!g.sum.has_value()) {
      fail(g.line_no, "histogram '" + fam + "' missing _sum");
    }
  }

  return problems;
}

}  // namespace parda::obs
