#include "obs/telemetry.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/json.hpp"

namespace parda::obs {

namespace {

void write_clock(json::Writer& w, const ClockSync& clock) {
  w.begin_object();
  w.key("offset_ns").value(clock.offset_ns);
  w.key("uncertainty_ns").value(clock.uncertainty_ns);
  w.key("valid").value(clock.valid);
  w.key("samples").value(clock.samples);
  w.end_object();
}

ClockSync parse_clock(const json::Value& v) {
  ClockSync clock;
  clock.offset_ns = v.at("offset_ns").as_i64();
  clock.uncertainty_ns = v.at("uncertainty_ns").as_i64();
  clock.valid = v.at("valid").kind == json::Value::Kind::kBool
                    ? v.at("valid").boolean
                    : false;
  clock.samples = static_cast<int>(v.at("samples").as_i64());
  return clock;
}

std::vector<std::uint64_t> parse_u64_array(const json::Value& v) {
  std::vector<std::uint64_t> out;
  out.reserve(v.array.size());
  for (const json::Value& e : v.array) out.push_back(e.as_u64());
  return out;
}

/// [unattributed, per_rank...] — the shard layout shared with the local
/// registry (index 0 unattributed, index r+1 = rank r).
std::vector<std::uint64_t> parse_shards(const json::Value& metric,
                                        const char* head_key,
                                        const char* rank_key) {
  std::vector<std::uint64_t> shards;
  shards.push_back(metric.at(head_key).as_u64());
  for (const json::Value& e : metric.at(rank_key).array) {
    shards.push_back(e.as_u64());
  }
  return shards;
}

void rerender(json::Writer& out, const json::Value& v) {
  switch (v.kind) {
    case json::Value::Kind::kNull:
      out.null();
      break;
    case json::Value::Kind::kBool:
      out.value(v.boolean);
      break;
    case json::Value::Kind::kNumber:
      out.raw(v.text);
      break;
    case json::Value::Kind::kString:
      out.value(v.text);
      break;
    case json::Value::Kind::kArray:
      out.begin_array();
      for (const json::Value& e : v.array) rerender(out, e);
      out.end_array();
      break;
    case json::Value::Kind::kObject:
      out.begin_object();
      for (const auto& [k, e] : v.object) {
        out.key(k);
        rerender(out, e);
      }
      out.end_object();
      break;
  }
}

}  // namespace

std::string make_telemetry_frame(int process, std::uint64_t seq,
                                 bool final_frame, const ClockSync& clock,
                                 const Registry& reg, const SpanTracer& tracer,
                                 std::size_t max_spans) {
  std::vector<SpanEvent> spans = tracer.events();
  if (spans.size() > max_spans) {
    // Keep the chronologically latest max_spans, then restore the
    // (rank, t_start) order the hub expects.
    std::stable_sort(spans.begin(), spans.end(),
                     [](const SpanEvent& a, const SpanEvent& b) {
                       return a.t_start_ns < b.t_start_ns;
                     });
    spans.erase(spans.begin(),
                spans.end() - static_cast<std::ptrdiff_t>(max_spans));
    std::stable_sort(spans.begin(), spans.end(),
                     [](const SpanEvent& a, const SpanEvent& b) {
                       if (a.rank != b.rank) return a.rank < b.rank;
                       return a.t_start_ns < b.t_start_ns;
                     });
  }

  json::Writer w;
  w.begin_object();
  w.key("schema").value("parda.telemetry.v1");
  w.key("process").value(process);
  w.key("seq").value(seq);
  w.key("final").value(final_frame);
  w.key("clock");
  write_clock(w, clock);
  w.key("metrics").raw(reg.to_json());
  w.key("spans").begin_array();
  for (const SpanEvent& e : spans) {
    w.begin_object();
    w.key("t0").value(e.t_start_ns);
    w.key("t1").value(e.t_end_ns);
    w.key("op").value(e.op);
    if (e.phase != kNoPhase) {
      w.key("phase").value(static_cast<std::uint64_t>(e.phase));
    }
    w.key("rank").value(static_cast<std::int64_t>(e.rank));
    w.end_object();
  }
  w.end_array();
  w.key("spans_dropped").value(tracer.dropped());
  w.end_object();
  return w.take();
}

const char* TelemetryHub::intern(std::string_view op) {
  auto it = op_index_.find(op);
  if (it != op_index_.end()) return it->second;
  op_storage_.emplace_back(op);
  const char* stable = op_storage_.back().c_str();
  op_index_.emplace(op_storage_.back(), stable);
  return stable;
}

TelemetryHub::Ingest TelemetryHub::ingest_frame(std::string_view frame_json) {
  const json::Value frame = json::parse(frame_json);
  const json::Value* schema = frame.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "parda.telemetry.v1") {
    throw std::runtime_error("telemetry frame: bad or missing schema");
  }

  ProcessTelemetry pt;
  pt.process = static_cast<int>(frame.at("process").as_i64());
  if (pt.process < 0) {
    throw std::runtime_error("telemetry frame: negative process id");
  }
  pt.seq = frame.at("seq").as_u64();
  pt.final_received = frame.at("final").kind == json::Value::Kind::kBool &&
                      frame.at("final").boolean;
  pt.clock = parse_clock(frame.at("clock"));
  pt.spans_dropped = frame.at("spans_dropped").as_u64();

  const json::Value& metrics = frame.at("metrics");
  for (const auto& [name, m] : metrics.at("counters").object) {
    ProcessTelemetry::RemoteCounter c;
    c.name = name;
    c.shards = parse_shards(m, "unattributed", "per_rank");
    pt.counters.push_back(std::move(c));
  }
  for (const auto& [name, m] : metrics.at("gauges").object) {
    ProcessTelemetry::RemoteGauge g;
    g.name = name;
    g.maxes = parse_shards(m, "unattributed", "per_rank");
    g.values = parse_shards(m, "last_unattributed", "last");
    pt.gauges.push_back(std::move(g));
  }
  for (const auto& [name, m] : metrics.at("timers").object) {
    ProcessTelemetry::RemoteTimer t;
    t.name = name;
    t.count = m.at("count").as_u64();
    t.sum_ns = m.at("sum_ns").as_u64();
    t.buckets = parse_u64_array(m.at("log2_ns"));
    pt.timers.push_back(std::move(t));
  }
  {
    // Re-render the metrics subtree so merged_metrics_json can splice the
    // sender's snapshot verbatim without keeping the whole frame around.
    json::Writer w;
    rerender(w, metrics);
    pt.metrics_json = w.take();
  }

  const std::int64_t offset = pt.clock.offset_ns;
  pt.last_ingest_ns = tracer().now_ns();
  std::lock_guard lock(mu_);
  for (const json::Value& s : frame.at("spans").array) {
    SpanEvent e;
    e.t_start_ns = s.at("t0").as_i64() + offset;
    e.t_end_ns = s.at("t1").as_i64() + offset;
    e.op = intern(s.at("op").as_string());
    const json::Value* phase = s.find("phase");
    e.phase = phase != nullptr ? static_cast<std::uint32_t>(phase->as_u64())
                               : kNoPhase;
    e.rank = static_cast<std::int32_t>(s.at("rank").as_i64());
    pt.spans.push_back(e);
  }

  ProcessTelemetry& slot = processes_[pt.process];
  pt.frames = slot.frames + 1;
  const Ingest result{pt.process, pt.final_received};
  slot = std::move(pt);
  ++frames_total_;
  return result;
}

bool TelemetryHub::empty() const {
  std::lock_guard lock(mu_);
  return processes_.empty();
}

std::vector<ProcessTelemetry> TelemetryHub::snapshot() const {
  std::lock_guard lock(mu_);
  std::vector<ProcessTelemetry> out;
  out.reserve(processes_.size());
  for (const auto& [process, pt] : processes_) out.push_back(pt);
  return out;
}

std::vector<SpanEvent> TelemetryHub::merged_events(
    const SpanTracer& local) const {
  std::vector<SpanEvent> out = local.events();
  {
    std::lock_guard lock(mu_);
    for (const auto& [process, pt] : processes_) {
      out.insert(out.end(), pt.spans.begin(), pt.spans.end());
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanEvent& a, const SpanEvent& b) {
                     if (a.rank != b.rank) return a.rank < b.rank;
                     return a.t_start_ns < b.t_start_ns;
                   });
  return out;
}

std::uint64_t TelemetryHub::merged_dropped(const SpanTracer& local) const {
  std::uint64_t d = local.dropped();
  std::lock_guard lock(mu_);
  for (const auto& [process, pt] : processes_) d += pt.spans_dropped;
  return d;
}

std::string TelemetryHub::merged_chrome_json(const SpanTracer& local) const {
  struct PidEvent {
    int pid;
    SpanEvent e;
  };
  std::vector<PidEvent> all;
  for (const SpanEvent& e : local.events()) all.push_back({0, e});
  {
    std::lock_guard lock(mu_);
    for (const auto& [process, pt] : processes_) {
      for (const SpanEvent& e : pt.spans) all.push_back({process, e});
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const PidEvent& a, const PidEvent& b) {
                     if (a.pid != b.pid) return a.pid < b.pid;
                     if (a.e.rank != b.e.rank) return a.e.rank < b.e.rank;
                     return a.e.t_start_ns < b.e.t_start_ns;
                   });

  json::Writer w;
  w.begin_object();
  w.key("traceEvents").begin_array();
  int last_pid = -1;
  std::int32_t last_named = -2;
  for (const PidEvent& pe : all) {
    if (pe.pid != last_pid) {
      last_pid = pe.pid;
      last_named = -2;
      w.begin_object();
      w.key("name").value("process_name");
      w.key("ph").value("M");
      w.key("pid").value(pe.pid);
      w.key("tid").value(0);
      w.key("args").begin_object();
      w.key("name").value("process " + std::to_string(pe.pid));
      w.end_object();
      w.end_object();
    }
    if (pe.e.rank != last_named) {
      last_named = pe.e.rank;
      w.begin_object();
      w.key("name").value("thread_name");
      w.key("ph").value("M");
      w.key("pid").value(pe.pid);
      w.key("tid").value(pe.e.rank >= 0 ? pe.e.rank : kMaxRanks);
      w.key("args").begin_object();
      w.key("name").value(pe.e.rank >= 0
                              ? ("rank " + std::to_string(pe.e.rank))
                              : std::string("driver"));
      w.end_object();
      w.end_object();
    }
    w.begin_object();
    w.key("name").value(pe.e.op);
    w.key("cat").value("parda");
    w.key("ph").value("X");
    w.key("pid").value(pe.pid);
    w.key("tid").value(pe.e.rank >= 0 ? pe.e.rank : kMaxRanks);
    w.key("ts").value(static_cast<double>(pe.e.t_start_ns) / 1000.0);
    w.key("dur").value(
        static_cast<double>(pe.e.t_end_ns - pe.e.t_start_ns) / 1000.0);
    w.key("args").begin_object();
    w.key("rank").value(static_cast<std::int64_t>(pe.e.rank));
    if (pe.e.phase != kNoPhase) {
      w.key("phase").value(static_cast<std::uint64_t>(pe.e.phase));
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.key("displayTimeUnit").value("ms");
  w.key("otherData").begin_object();
  w.key("spansDropped").value(merged_dropped(local));
  w.end_object();
  w.end_object();
  return w.take();
}

std::string TelemetryHub::merged_metrics_json(const Registry& local) const {
  std::string base = local.to_json();
  std::lock_guard lock(mu_);
  if (processes_.empty()) return base;
  // Splice a "processes" array before the local document's closing brace.
  base.pop_back();
  json::Writer w;
  w.begin_array();
  for (const auto& [process, pt] : processes_) {
    w.begin_object();
    w.key("process").value(process);
    w.key("seq").value(pt.seq);
    w.key("frames").value(pt.frames);
    w.key("final").value(pt.final_received);
    w.key("clock");
    write_clock(w, pt.clock);
    w.key("spans_dropped").value(pt.spans_dropped);
    w.key("age_ns").value(std::max<std::int64_t>(
        0, tracer().now_ns() - pt.last_ingest_ns));
    w.key("metrics").raw(pt.metrics_json);
    w.end_object();
  }
  w.end_array();
  base += ",\"processes\":";
  base += w.take();
  base += "}";
  return base;
}

std::int64_t TelemetryHub::max_uncertainty_ns() const {
  std::lock_guard lock(mu_);
  std::int64_t u = 0;
  for (const auto& [process, pt] : processes_) {
    if (pt.clock.valid) u = std::max(u, pt.clock.uncertainty_ns);
  }
  return u;
}

std::uint64_t TelemetryHub::frames_total() const {
  std::lock_guard lock(mu_);
  return frames_total_;
}

void TelemetryHub::clear() {
  std::lock_guard lock(mu_);
  processes_.clear();
  frames_total_ = 0;
  // Interned op strings stay allocated: cleared hubs may still have
  // SpanEvent copies alive in callers.
}

TelemetryHub& hub() {
  static TelemetryHub instance;
  return instance;
}

}  // namespace parda::obs
