#include "obs/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <mutex>

#include "obs/runtime.hpp"

namespace parda::obs {

namespace {

std::atomic<int> g_level{-1};  // -1 = not yet initialized from the env
std::atomic<std::FILE*> g_sink{nullptr};
std::mutex g_emit_mu;

// Always-on bounded tail of emitted lines (guarded by g_emit_mu): the
// flight recorder's view of "what was the process saying just before it
// died", independent of where the sink pointed.
constexpr std::size_t kLogTailCapacity = 64;
std::deque<std::string>& tail_ring() {
  static std::deque<std::string>* ring = new std::deque<std::string>();
  return *ring;
}

int level_from_env() {
  const char* env = std::getenv("PARDA_LOG_LEVEL");
  if (env != nullptr && *env != '\0') {
    if (const auto parsed = parse_log_level(env); parsed.has_value()) {
      return static_cast<int>(*parsed);
    }
  }
  return static_cast<int>(LogLevel::kWarn);
}

// The steady epoch and its wall-clock anchor are captured in one place so
// a line's unix_ns (anchor + ts_ns) names the same instant as its ts_ns.
struct LogEpoch {
  std::chrono::steady_clock::time_point steady;
  std::int64_t unix_ns;
};

const LogEpoch& log_epoch() {
  static const LogEpoch epoch = [] {
    LogEpoch e;
    e.steady = std::chrono::steady_clock::now();
    e.unix_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::system_clock::now().time_since_epoch())
                    .count();
    return e;
  }();
  return epoch;
}

}  // namespace

LogLevel log_level() noexcept {
  int level = g_level.load(std::memory_order_relaxed);
  if (level < 0) {
    // First query initializes from PARDA_LOG_LEVEL; races are benign
    // (every racer computes the same value).
    level = level_from_env();
    g_level.store(level, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(level);
}

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

std::optional<LogLevel> parse_log_level(std::string_view name) noexcept {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return std::nullopt;
}

const char* log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

void set_log_sink(std::FILE* sink) noexcept {
  g_sink.store(sink, std::memory_order_release);
}

LogEvent::LogEvent(LogLevel level, const char* event) noexcept {
  if (!log_enabled(level) || level == LogLevel::kOff) return;
  live_ = true;
  const LogEpoch& epoch = log_epoch();
  const auto ts = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - epoch.steady)
                      .count();
  json::Writer head;
  head.begin_object();
  head.key("ts_ns").value(static_cast<std::int64_t>(ts));
  head.key("unix_ns").value(epoch.unix_ns + static_cast<std::int64_t>(ts));
  head.key("level").value(log_level_name(level));
  head.key("rank").value(thread_rank());
  if (thread_phase() != kNoPhaseAttr) {
    head.key("phase").value(static_cast<std::uint64_t>(thread_phase()));
  }
  head.key("event").value(event);
  // The head object is left unclosed on purpose; the destructor appends
  // the fields object and the closing brace.
  head_ = head.take();
  fields_.begin_object();
}

LogEvent::~LogEvent() {
  if (!live_) return;
  fields_.end_object();
  std::string line = std::move(head_);
  line += ",\"fields\":";
  line += fields_.str();
  line += "}\n";
  std::FILE* sink = g_sink.load(std::memory_order_acquire);
  if (sink == nullptr) sink = stderr;
  std::lock_guard lock(g_emit_mu);
  std::deque<std::string>& tail = tail_ring();
  tail.emplace_back(line.data(), line.size() - 1);  // strip the newline
  if (tail.size() > kLogTailCapacity) tail.pop_front();
  std::fwrite(line.data(), 1, line.size(), sink);
  std::fflush(sink);
}

std::int64_t log_unix_anchor_ns() noexcept { return log_epoch().unix_ns; }

std::vector<std::string> log_tail() {
  std::lock_guard lock(g_emit_mu);
  const std::deque<std::string>& tail = tail_ring();
  return std::vector<std::string>(tail.begin(), tail.end());
}

LogEvent& LogEvent::field(std::string_view key, std::string_view value) {
  if (live_) fields_.key(key).value(value);
  return *this;
}

LogEvent& LogEvent::field(std::string_view key, std::uint64_t value) {
  if (live_) fields_.key(key).value(value);
  return *this;
}

LogEvent& LogEvent::field(std::string_view key, std::int64_t value) {
  if (live_) fields_.key(key).value(value);
  return *this;
}

LogEvent& LogEvent::field(std::string_view key, double value) {
  if (live_) fields_.key(key).value(value);
  return *this;
}

LogEvent& LogEvent::field(std::string_view key, bool value) {
  if (live_) fields_.key(key).value(value);
  return *this;
}

}  // namespace parda::obs
