// Span-based tracing: each rank thread records {rank, phase, op, t_start,
// t_end} events into its own fixed-capacity ring buffer (single writer per
// shard on the rank paths; the unattributed shard claims indices with one
// relaxed fetch_add). Export produces chrome://tracing JSON ("traceEvents"
// with complete "X" events, tid == rank) so a streaming run's per-phase
// structure — scatter / analyze / infinity-pipeline / reduce per Algorithm
// 5 phase — can be loaded straight into a trace viewer.
//
// Timestamps are steady_clock nanoseconds relative to the tracer's epoch;
// recording costs one clock read at span start and one at span end, and
// nothing at all while obs is disabled.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/runtime.hpp"

namespace parda::obs {

/// Sentinel for spans outside any streaming phase.
inline constexpr std::uint32_t kNoPhase = 0xFFFFFFFFu;

struct SpanEvent {
  std::int64_t t_start_ns = 0;
  std::int64_t t_end_ns = 0;
  const char* op = "";     // static-storage string (a literal)
  std::uint32_t phase = kNoPhase;
  std::int32_t rank = -1;  // -1 = unattributed
};

class SpanTracer {
 public:
  /// capacity_per_rank events are kept per shard; older events are
  /// overwritten once a shard wraps (dropped() counts overwrites).
  explicit SpanTracer(std::size_t capacity_per_rank = std::size_t{1} << 15);

  /// Nanoseconds since the tracer's epoch (steady clock).
  std::int64_t now_ns() const noexcept {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Records one finished span into the calling thread's shard. No-op while
  /// obs is disabled.
  void record(std::int64_t t_start_ns, std::int64_t t_end_ns, const char* op,
              std::uint32_t phase = kNoPhase) noexcept;

  /// All recorded events, ordered by (rank, t_start). Safe to call while
  /// other threads are still recording (mid-run scrapes, the distributed
  /// telemetry forwarder): each slot is guarded by a seqlock, so a span
  /// whose write is in flight is skipped rather than read torn. A
  /// post-run call (after comm::run has joined its ranks) sees every
  /// surviving span.
  std::vector<SpanEvent> events() const;
  std::vector<SpanEvent> events_for_rank(int rank) const;

  /// Events overwritten by ring wrap-around across all shards.
  std::uint64_t dropped() const noexcept;
  /// Per-shard overwrite counts (index 0 unattributed, r+1 = rank r) —
  /// the obs.spans_dropped counter surfaced in /metrics and the
  /// chrome-trace metadata.
  std::array<std::uint64_t, kShards> dropped_per_shard() const noexcept;

  void clear() noexcept;

  /// chrome://tracing JSON: {"traceEvents":[...]} with "X" (complete)
  /// events, ts/dur in microseconds, pid 0, tid == rank (unattributed
  /// spans use tid kMaxRanks), and args {rank, phase}.
  std::string to_chrome_json() const;

 private:
  /// One ring slot: the event's fields as relaxed atomics plus a seqlock
  /// counter (odd = write in flight, 0 = never published). Readers that
  /// see an odd or changing seq skip the slot; writers never block on
  /// readers, keeping the §12 contract that a scrape cannot stall a
  /// worker. The unattributed shard can in principle have two writers on
  /// one slot after a wrap collision; the seqlock then only guarantees
  /// the reader skips or sees one writer's fields per field — acceptable
  /// for a diagnostic snapshot, and rank shards stay single-writer.
  struct Slot {
    std::atomic<std::uint32_t> seq{0};
    std::atomic<std::int64_t> t_start_ns{0};
    std::atomic<std::int64_t> t_end_ns{0};
    std::atomic<const char*> op{""};
    std::atomic<std::uint32_t> phase{kNoPhase};
    std::atomic<std::int32_t> rank{-1};
  };

  struct Ring {
    explicit Ring(std::size_t cap) : slots(cap) {}
    std::vector<Slot> slots;
    std::atomic<std::uint64_t> n{0};        // total events ever claimed
    std::atomic<std::uint64_t> dropped{0};  // overwrites after wrap
  };

  std::chrono::steady_clock::time_point epoch_;
  std::size_t capacity_;
  std::vector<std::unique_ptr<Ring>> rings_;  // one per shard
};

/// The process-global tracer used by the wired-in spans.
SpanTracer& tracer();

/// RAII span recording into the global tracer. Costs nothing while obs is
/// disabled (no clock read). `op` must be a string literal (or otherwise
/// outlive the tracer).
class SpanScope {
 public:
  /// The phase defaults to the calling thread's attribution (see
  /// obs/runtime.hpp), so spans recorded below the streaming driver's
  /// ScopedThreadPhase land in the right phase automatically.
  explicit SpanScope(const char* op,
                     std::uint32_t phase = thread_phase()) noexcept {
    if (enabled()) {
      op_ = op;
      phase_ = phase;
      start_ = tracer().now_ns();
    }
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;
  ~SpanScope() {
    if (op_ != nullptr) {
      SpanTracer& t = tracer();
      t.record(start_, t.now_ns(), op_, phase_);
    }
  }

 private:
  const char* op_ = nullptr;  // null = disabled at construction
  std::uint32_t phase_ = kNoPhase;
  std::int64_t start_ = 0;
};

}  // namespace parda::obs
