// Crash flight recorder: a postmortem "parda.flightrec.v1" JSON dump of
// the last spans, a metrics snapshot, the structured-log tail, and
// caller-noted context (e.g. transport state), written on the first fatal
// event a process sees — comm abort, watchdog fire, a fatal top-level
// exception, or a fatal signal.
//
// Configuration follows the repo's CLI > env > default rule
// (util/config): binaries pass --flight-recorder through configure();
// when nothing was configured, dump() falls back to $PARDA_FLIGHT_RECORDER
// at dump time, so even processes that never parse flags (gtest children
// in the fault matrix) leave a dump when the env var is set. A "%r" in the
// path is replaced by the process id, giving per-rank files from one
// shared setting. The first dump wins; later triggers in the same process
// are no-ops — the file describes the ORIGINAL failure, not the teardown
// cascade it causes.
//
// dump() is deliberately tolerant: it allocates and takes locks, so a
// dump from a fatal-signal handler is best effort (the handler re-raises
// with the default disposition afterwards either way).
#pragma once

#include <string>
#include <string_view>

namespace parda::obs {

/// Sets the dump path ("" disables; "%r" expands to the process id) and
/// the reporting process id (the distributed local rank, 0 otherwise).
void flightrec_configure(std::string_view path, int process);

/// Updates only the process id (e.g. once the local rank is known).
void flightrec_set_process(int process);

/// Attaches one context string to future dumps (last write per key wins):
/// transport descriptions, trace paths, run parameters.
void flightrec_note(std::string_view key, std::string_view value);

/// Writes the dump if a path is configured (or $PARDA_FLIGHT_RECORDER is
/// set) and no dump has been written yet. Returns true when a file was
/// written. Never throws.
bool flightrec_dump(std::string_view reason) noexcept;

/// True once this process has written its dump.
bool flightrec_dumped() noexcept;

/// Installs best-effort SIGSEGV/SIGBUS/SIGFPE/SIGABRT handlers that dump
/// and then re-raise with the default disposition. Idempotent.
void flightrec_install_signal_handlers();

/// Test hook: forget the configured path, notes, and the dumped flag.
void flightrec_reset_for_test();

}  // namespace parda::obs
