#include "obs/report.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <utility>

#include "util/json.hpp"
#include "util/table.hpp"

namespace parda::obs {

namespace {

bool is_wait_op(const char* op) noexcept {
  return std::strcmp(op, "recv-wait") == 0 ||
         std::strcmp(op, "barrier-wait") == 0;
}

bool is_io_op(const char* op) noexcept {
  return std::strcmp(op, "scatter") == 0;
}

bool is_compute_op(const char* op) noexcept {
  return std::strcmp(op, "analyze") == 0;
}

std::uint64_t span_ns(const SpanEvent& e) noexcept {
  return e.t_end_ns > e.t_start_ns
             ? static_cast<std::uint64_t>(e.t_end_ns - e.t_start_ns)
             : 0;
}

struct SliceAccum {
  RankSlice slice;
  bool seen = false;
};

double ms(std::uint64_t ns) { return static_cast<double>(ns) / 1e6; }

std::string phase_name(std::uint32_t phase) {
  return phase == kNoPhase ? std::string("-") : std::to_string(phase);
}

}  // namespace

SpanReport SpanReport::from_tracer(const SpanTracer& t) {
  return from_events(t.events(), t.dropped());
}

SpanReport SpanReport::from_events(const std::vector<SpanEvent>& events,
                                   std::uint64_t spans_dropped) {
  SpanReport r;
  r.spans_dropped_ = spans_dropped;

  // kNoPhase maps above every real phase so the pseudo-phase sorts last.
  auto phase_key = [](std::uint32_t phase) -> std::uint64_t {
    return phase == kNoPhase ? ~std::uint64_t{0}
                             : static_cast<std::uint64_t>(phase);
  };

  std::map<std::uint64_t, std::map<int, SliceAccum>> by_phase;
  std::map<std::uint64_t, std::pair<std::int64_t, std::int64_t>> extents;
  std::map<int, RankUtilization> by_rank;
  std::int64_t wall_begin = 0;
  std::int64_t wall_end = 0;
  bool any = false;

  for (const SpanEvent& e : events) {
    const std::uint64_t dur = span_ns(e);
    const std::uint64_t key = phase_key(e.phase);
    auto& acc = by_phase[key][e.rank];
    acc.slice.rank = e.rank;
    auto& util = by_rank[e.rank];
    util.rank = e.rank;

    if (is_wait_op(e.op)) {
      // Waits nest inside sections: they refine the section time, they do
      // not add to it.
      acc.slice.wait_ns += dur;
      util.wait_ns += dur;
      continue;
    }
    acc.slice.total_ns += dur;
    util.busy_ns += dur;
    if (is_io_op(e.op)) acc.slice.io_ns += dur;
    if (is_compute_op(e.op)) acc.slice.compute_ns += dur;

    auto [it, inserted] =
        extents.try_emplace(key, e.t_start_ns, e.t_end_ns);
    if (!inserted) {
      it->second.first = std::min(it->second.first, e.t_start_ns);
      it->second.second = std::max(it->second.second, e.t_end_ns);
    }
    if (!acc.seen) acc.seen = true;
    if (!any) {
      wall_begin = e.t_start_ns;
      wall_end = e.t_end_ns;
      any = true;
    } else {
      wall_begin = std::min(wall_begin, e.t_start_ns);
      wall_end = std::max(wall_end, e.t_end_ns);
    }
  }
  if (any && wall_end > wall_begin)
    r.wall_ns_ = static_cast<std::uint64_t>(wall_end - wall_begin);

  for (auto& [key, ranks] : by_phase) {
    PhaseReport phase;
    phase.phase = key == ~std::uint64_t{0}
                      ? kNoPhase
                      : static_cast<std::uint32_t>(key);
    const auto ext_it = extents.find(key);
    const std::int64_t ext_begin =
        ext_it != extents.end() ? ext_it->second.first : 0;
    const std::int64_t ext_end =
        ext_it != extents.end() ? ext_it->second.second : 0;
    phase.t_begin_ns = ext_begin;
    phase.t_end_ns = ext_end;
    const std::uint64_t extent =
        ext_end > ext_begin ? static_cast<std::uint64_t>(ext_end - ext_begin)
                            : 0;

    for (auto& [rank, acc] : ranks) {
      RankSlice slice = acc.slice;
      slice.self_ns =
          slice.total_ns > slice.wait_ns ? slice.total_ns - slice.wait_ns : 0;
      phase.critical_path_ns = std::max(phase.critical_path_ns,
                                        slice.total_ns);
      if (slice.self_ns > phase.straggler_self_ns ||
          phase.straggler_rank < 0) {
        phase.straggler_self_ns = slice.self_ns;
        phase.straggler_rank = slice.rank;
      }
      if (extent > slice.total_ns)
        phase.bubble_ns += extent - slice.total_ns;
      phase.ranks.push_back(slice);
    }
    r.phases_.push_back(std::move(phase));
  }

  std::uint64_t best_self = 0;
  for (auto& [rank, util] : by_rank) {
    util.self_ns =
        util.busy_ns > util.wait_ns ? util.busy_ns - util.wait_ns : 0;
    util.utilization =
        r.wall_ns_ > 0
            ? static_cast<double>(util.self_ns) /
                  static_cast<double>(r.wall_ns_)
            : 0.0;
    if (r.straggler_rank_ < 0 || util.self_ns > best_self) {
      best_self = util.self_ns;
      r.straggler_rank_ = util.rank;
    }
    r.ranks_.push_back(util);
  }
  return r;
}

std::string SpanReport::to_json() const {
  json::Writer w;
  w.begin_object();
  w.key("schema").value("parda.spanreport.v1");
  w.key("wall_ns").value(wall_ns_);
  w.key("straggler_rank").value(straggler_rank_);
  w.key("spans_dropped").value(spans_dropped_);
  w.key("clock_uncertainty_ns").value(clock_uncertainty_ns_);

  w.key("ranks").begin_array();
  for (const RankUtilization& u : ranks_) {
    w.begin_object();
    w.key("rank").value(u.rank);
    w.key("busy_ns").value(u.busy_ns);
    w.key("wait_ns").value(u.wait_ns);
    w.key("self_ns").value(u.self_ns);
    w.key("utilization").value(u.utilization);
    w.end_object();
  }
  w.end_array();

  w.key("phases").begin_array();
  for (const PhaseReport& p : phases_) {
    w.begin_object();
    if (p.phase == kNoPhase) {
      w.key("phase").null();
    } else {
      w.key("phase").value(static_cast<std::uint64_t>(p.phase));
    }
    w.key("t_begin_ns").value(p.t_begin_ns);
    w.key("t_end_ns").value(p.t_end_ns);
    w.key("critical_path_ns").value(p.critical_path_ns);
    w.key("straggler_rank").value(p.straggler_rank);
    w.key("straggler_self_ns").value(p.straggler_self_ns);
    w.key("bubble_ns").value(p.bubble_ns);
    w.key("ranks").begin_array();
    for (const RankSlice& s : p.ranks) {
      w.begin_object();
      w.key("rank").value(s.rank);
      w.key("total_ns").value(s.total_ns);
      w.key("wait_ns").value(s.wait_ns);
      w.key("self_ns").value(s.self_ns);
      w.key("io_ns").value(s.io_ns);
      w.key("compute_ns").value(s.compute_ns);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

std::string SpanReport::to_table() const {
  std::string out;
  out += "span report: wall " + TablePrinter::fmt(ms(wall_ns_)) + " ms";
  if (straggler_rank_ >= 0)
    out += ", straggler rank " + std::to_string(straggler_rank_);
  if (spans_dropped_ > 0)
    out += ", " + std::to_string(spans_dropped_) + " spans dropped";
  if (clock_uncertainty_ns_ > 0)
    out += ", clock uncertainty +/-" +
           TablePrinter::fmt(ms(
               static_cast<std::uint64_t>(clock_uncertainty_ns_))) +
           " ms";
  out += "\n\n";

  TablePrinter ranks({"rank", "busy_ms", "wait_ms", "self_ms", "util_%"});
  for (const RankUtilization& u : ranks_) {
    ranks.add_row({u.rank < 0 ? std::string("driver") : std::to_string(u.rank),
                   TablePrinter::fmt(ms(u.busy_ns)),
                   TablePrinter::fmt(ms(u.wait_ns)),
                   TablePrinter::fmt(ms(u.self_ns)),
                   TablePrinter::fmt(u.utilization * 100.0, 1)});
  }
  out += ranks.str();
  out += '\n';

  TablePrinter phases({"phase", "extent_ms", "crit_ms", "bubble_ms",
                       "straggler", "straggler_self_ms"});
  for (const PhaseReport& p : phases_) {
    const std::uint64_t extent =
        p.t_end_ns > p.t_begin_ns
            ? static_cast<std::uint64_t>(p.t_end_ns - p.t_begin_ns)
            : 0;
    phases.add_row(
        {phase_name(p.phase), TablePrinter::fmt(ms(extent)),
         TablePrinter::fmt(ms(p.critical_path_ns)),
         TablePrinter::fmt(ms(p.bubble_ns)),
         p.straggler_rank < 0 ? std::string("-")
                              : std::to_string(p.straggler_rank),
         TablePrinter::fmt(ms(p.straggler_self_ns))});
  }
  out += phases.str();
  return out;
}

}  // namespace parda::obs
