// Span-based bottleneck attribution: folds the span ring into
// per-(phase, rank) compute/wait/IO time, per-phase critical path and
// straggler rank, per-rank utilization, and pipeline-bubble time for the
// Algorithm 5 phase loop — the paper's Section VII time-attribution
// exercise as a first-class artifact instead of an eyeballed chrome trace.
//
// Span taxonomy (see core/parda.hpp and comm/comm.hpp):
//   sections (top level, cover a rank's phase time):
//     "analyze"            compute on the rank's own chunk
//     "scatter"            phase intake: pipe read + chunk distribution (IO)
//     "infinity-pipeline"  Algorithm 3/5 merge rounds
//     "reduce"             per-phase state reduction (Algorithm 6)
//     "final-reduce"       end-of-run histogram/profile reduction
//   waits (nested inside sections): "recv-wait", "barrier-wait"
//
// Attribution semantics: a rank's `total` is its section coverage, `wait`
// the nested blocking time, and `self = total - wait` the time the rank
// spent making (or delaying) progress. The per-phase straggler is the rank
// with the largest SELF time: a rank held up by others shows large waits,
// the rank holding everyone up shows large self time — so a fault-injected
// delay on one rank is automatically named even though every rank's
// wall time inflates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/span_tracer.hpp"

namespace parda::obs {

struct RankSlice {
  int rank = -1;
  std::uint64_t total_ns = 0;    // section span coverage
  std::uint64_t wait_ns = 0;     // nested recv-wait/barrier-wait time
  std::uint64_t self_ns = 0;     // total - wait (clamped at 0)
  std::uint64_t io_ns = 0;       // "scatter" section share of total
  std::uint64_t compute_ns = 0;  // "analyze" section share of total
};

struct PhaseReport {
  std::uint32_t phase = kNoPhase;  // kNoPhase = outside the phase loop
  std::int64_t t_begin_ns = 0;     // earliest section start in the phase
  std::int64_t t_end_ns = 0;       // latest section end
  std::uint64_t critical_path_ns = 0;  // max over ranks of total_ns
  int straggler_rank = -1;             // argmax over ranks of self_ns
  std::uint64_t straggler_self_ns = 0;
  std::uint64_t bubble_ns = 0;  // sum over ranks of (extent - total_ns)
  std::vector<RankSlice> ranks;
};

struct RankUtilization {
  int rank = -1;
  std::uint64_t busy_ns = 0;  // section coverage across all phases
  std::uint64_t wait_ns = 0;
  std::uint64_t self_ns = 0;
  double utilization = 0.0;  // self / report wall extent
};

class SpanReport {
 public:
  /// Builds the report from an explicit event list (tests) or the global
  /// tracer (drivers). Call after the analysis has joined its ranks.
  static SpanReport from_events(const std::vector<SpanEvent>& events,
                                std::uint64_t spans_dropped = 0);
  static SpanReport from_tracer(const SpanTracer& t);

  /// Phases in execution order; the kNoPhase pseudo-phase (offline spans,
  /// final-reduce) sorts last.
  const std::vector<PhaseReport>& phases() const noexcept { return phases_; }
  const std::vector<RankUtilization>& ranks() const noexcept {
    return ranks_;
  }
  /// Wall extent covered by the report (max end - min start over events).
  std::uint64_t wall_ns() const noexcept { return wall_ns_; }
  /// The rank with the largest total self time, or -1 when empty.
  int straggler_rank() const noexcept { return straggler_rank_; }
  std::uint64_t spans_dropped() const noexcept { return spans_dropped_; }

  /// Cross-process error bar: when the report was built from hub-merged
  /// events, the largest clock-handshake uncertainty among the remote
  /// processes whose spans it contains (0 for single-process reports).
  /// Timing differences below this are not attributable.
  std::int64_t clock_uncertainty_ns() const noexcept {
    return clock_uncertainty_ns_;
  }
  void set_clock_uncertainty_ns(std::int64_t ns) noexcept {
    clock_uncertainty_ns_ = ns;
  }

  /// "parda.spanreport.v1" JSON.
  std::string to_json() const;
  /// Aligned text tables (per-rank utilization + per-phase attribution).
  std::string to_table() const;

 private:
  std::vector<PhaseReport> phases_;
  std::vector<RankUtilization> ranks_;
  std::uint64_t wall_ns_ = 0;
  int straggler_rank_ = -1;
  std::uint64_t spans_dropped_ = 0;
  std::int64_t clock_uncertainty_ns_ = 0;
};

}  // namespace parda::obs
