// Structured logging: leveled JSON-lines events replacing the ad-hoc
// stderr prints in the comm abort/watchdog/fault paths and the drivers.
//
// One event is one line:
//   {"ts_ns":123456,"unix_ns":1754550000123456789,"level":"warn","rank":2,
//    "phase":7,"event":"fault.inject","fields":{"action":"delay","ms":50}}
//
// ts_ns is steady-clock nanoseconds since the log's epoch (the first use
// in the process); unix_ns is the same instant on the wall clock, derived
// from one system_clock anchor captured together with the epoch — so
// multi-process logs can be merged on unix_ns while ts_ns stays monotonic
// within a process. rank/phase come from the calling thread's obs
// attribution (obs/runtime.hpp; rank -1 and absent phase = driver), and
// fields are event-specific key/values added through the builder.
//
// The level gate is one relaxed atomic load; a suppressed event costs
// nothing else (no clock read, no formatting). Emission takes a mutex so
// concurrent ranks never interleave bytes of a line. Logging is
// independent of the metrics/span enable flag: the default level kWarn
// keeps abort and watchdog diagnostics visible exactly where the old
// stderr prints were, controlled by PARDA_LOG_LEVEL / --log-level
// (trace|debug|info|warn|error|off).
#pragma once

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.hpp"

namespace parda::obs {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Current threshold: events below it are dropped. Initialized from
/// PARDA_LOG_LEVEL on first query (default kWarn).
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

/// Parses "trace" | "debug" | "info" | "warn" | "error" | "off"
/// (case-sensitive); nullopt on anything else.
std::optional<LogLevel> parse_log_level(std::string_view name) noexcept;
const char* log_level_name(LogLevel level) noexcept;

/// Redirects emission (default stderr). Pass nullptr to restore stderr.
/// The stream is borrowed, not owned; tests point it at a tmpfile.
void set_log_sink(std::FILE* sink) noexcept;

/// Whether an event at `level` would be emitted — use to skip expensive
/// field computation.
inline bool log_enabled(LogLevel level) noexcept {
  return static_cast<int>(level) >= static_cast<int>(log_level());
}

/// Builder for one event; emits on destruction (end of the full
/// expression). A suppressed event never touches the clock or allocates.
class LogEvent {
 public:
  LogEvent(LogLevel level, const char* event) noexcept;
  LogEvent(const LogEvent&) = delete;
  LogEvent& operator=(const LogEvent&) = delete;
  ~LogEvent();

  LogEvent& field(std::string_view key, std::string_view value);
  LogEvent& field(std::string_view key, const char* value) {
    return field(key, std::string_view(value));
  }
  LogEvent& field(std::string_view key, std::uint64_t value);
  LogEvent& field(std::string_view key, std::int64_t value);
  LogEvent& field(std::string_view key, int value) {
    return field(key, static_cast<std::int64_t>(value));
  }
  LogEvent& field(std::string_view key, double value);
  LogEvent& field(std::string_view key, bool value);

 private:
  bool live_ = false;  // passed the level gate at construction
  json::Writer fields_;
  std::string head_;  // everything before the fields object
};

/// Entry point: obs::log(LogLevel::kWarn, "comm.abort").field("origin", 2);
inline LogEvent log(LogLevel level, const char* event) noexcept {
  return LogEvent(level, event);
}

/// The wall-clock instant of the log epoch (nanoseconds since the Unix
/// epoch, captured once together with the steady-clock epoch). A line's
/// unix_ns is this anchor plus its ts_ns.
std::int64_t log_unix_anchor_ns() noexcept;

/// The most recent emitted log lines (without trailing newlines), oldest
/// first — a small always-on ring kept regardless of sink or level so the
/// crash flight recorder can dump the tail of what was actually logged.
std::vector<std::string> log_tail();

}  // namespace parda::obs
