// Observability runtime state shared by the metrics registry and the span
// tracer: one process-wide enable flag and a per-thread rank attribution.
//
// Instrumentation is compiled in everywhere but disabled by default; every
// hot-path record starts with a relaxed load of the enable flag, so the
// disabled cost is one predictable branch (measured <2% on bench_engines,
// see DESIGN.md section "Observability").
//
// Attribution: metrics and spans are sharded by rank so per-rank breakdowns
// need no hot-path locking. comm::run tags each rank thread via
// set_thread_rank; threads outside the rank world (the driver, the trace
// producer) record into the "unattributed" shard 0.
#pragma once

#include <atomic>

namespace parda::obs {

/// Hard cap on distinguishable ranks (the paper sweeps up to 64 physical
/// cores); higher ranks fold into the unattributed shard.
inline constexpr int kMaxRanks = 64;
/// Shard 0 is unattributed; rank r records into shard r + 1.
inline constexpr int kShards = kMaxRanks + 1;

/// Sentinel phase for threads outside any streaming phase (mirrors
/// span_tracer.hpp's kNoPhase; kept here so the attribution state is
/// self-contained).
inline constexpr unsigned kNoPhaseAttr = 0xFFFFFFFFu;

namespace detail {
inline std::atomic<bool> g_enabled{false};
inline thread_local int t_shard = 0;
inline thread_local unsigned t_phase = kNoPhaseAttr;
}  // namespace detail

inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
inline void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

inline void set_thread_rank(int rank) noexcept {
  detail::t_shard = (rank >= 0 && rank < kMaxRanks) ? rank + 1 : 0;
}
inline void clear_thread_rank() noexcept { detail::t_shard = 0; }

/// Shard index of the calling thread (0 = unattributed).
inline int thread_shard() noexcept { return detail::t_shard; }
/// Rank of the calling thread, or -1 if unattributed.
inline int thread_rank() noexcept { return detail::t_shard - 1; }

/// Phase attribution: the streaming driver tags each rank thread with the
/// current Algorithm 5 phase so instrumentation recorded below it (comm
/// wait spans, log events) lands in the right phase without threading the
/// phase number through every layer.
inline void set_thread_phase(unsigned phase) noexcept {
  detail::t_phase = phase;
}
inline void clear_thread_phase() noexcept {
  detail::t_phase = kNoPhaseAttr;
}
/// Current phase of the calling thread (kNoPhaseAttr outside a phase).
inline unsigned thread_phase() noexcept { return detail::t_phase; }

/// RAII phase attribution for one streaming phase iteration.
class ScopedThreadPhase {
 public:
  explicit ScopedThreadPhase(unsigned phase) noexcept
      : prev_(detail::t_phase) {
    detail::t_phase = phase;
  }
  ScopedThreadPhase(const ScopedThreadPhase&) = delete;
  ScopedThreadPhase& operator=(const ScopedThreadPhase&) = delete;
  ~ScopedThreadPhase() { detail::t_phase = prev_; }

 private:
  unsigned prev_;
};

/// RAII rank attribution for a thread's lifetime (used by comm::run and
/// tests).
class ScopedThreadRank {
 public:
  explicit ScopedThreadRank(int rank) noexcept : prev_(detail::t_shard) {
    set_thread_rank(rank);
  }
  ScopedThreadRank(const ScopedThreadRank&) = delete;
  ScopedThreadRank& operator=(const ScopedThreadRank&) = delete;
  ~ScopedThreadRank() { detail::t_shard = prev_; }

 private:
  int prev_;
};

}  // namespace parda::obs
