#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <vector>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/span_tracer.hpp"
#include "util/json.hpp"

namespace parda::obs {

namespace {

constexpr std::size_t kDumpSpanCap = 256;

struct FlightRecState {
  std::mutex mu;
  std::string path;  // empty = not configured via configure()
  int process = 0;
  std::map<std::string, std::string> notes;
  std::atomic<bool> dumped{false};
};

FlightRecState& state() {
  static FlightRecState* s = new FlightRecState();
  return *s;
}

std::string substitute_process(std::string_view path, int process) {
  std::string out;
  out.reserve(path.size() + 8);
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (path[i] == '%' && i + 1 < path.size() && path[i + 1] == 'r') {
      out += std::to_string(process);
      ++i;
    } else {
      out += path[i];
    }
  }
  return out;
}

std::string render_dump(std::string_view reason, int process,
                        const std::map<std::string, std::string>& notes) {
  // Last kDumpSpanCap spans by start time, re-sorted (rank, t_start) so
  // the dump reads like the tracer's own export.
  std::vector<SpanEvent> spans = tracer().events();
  if (spans.size() > kDumpSpanCap) {
    std::stable_sort(spans.begin(), spans.end(),
                     [](const SpanEvent& a, const SpanEvent& b) {
                       return a.t_start_ns < b.t_start_ns;
                     });
    spans.erase(spans.begin(),
                spans.end() - static_cast<std::ptrdiff_t>(kDumpSpanCap));
    std::stable_sort(spans.begin(), spans.end(),
                     [](const SpanEvent& a, const SpanEvent& b) {
                       if (a.rank != b.rank) return a.rank < b.rank;
                       return a.t_start_ns < b.t_start_ns;
                     });
  }

  json::Writer w;
  w.begin_object();
  w.key("schema").value("parda.flightrec.v1");
  w.key("reason").value(reason);
  w.key("process").value(process);
  w.key("unix_ns").value(
      static_cast<std::int64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::system_clock::now().time_since_epoch())
              .count()));
  w.key("context").begin_object();
  for (const auto& [key, value] : notes) w.key(key).value(value);
  w.end_object();
  w.key("log_tail").begin_array();
  for (const std::string& line : log_tail()) {
    // Lines are themselves JSON objects; splice them so the tail stays
    // structured instead of double-escaped.
    w.raw(line);
  }
  w.end_array();
  w.key("spans").begin_array();
  for (const SpanEvent& e : spans) {
    w.begin_object();
    w.key("t0").value(e.t_start_ns);
    w.key("t1").value(e.t_end_ns);
    w.key("op").value(e.op);
    if (e.phase != kNoPhase) {
      w.key("phase").value(static_cast<std::uint64_t>(e.phase));
    }
    w.key("rank").value(static_cast<std::int64_t>(e.rank));
    w.end_object();
  }
  w.end_array();
  w.key("spans_dropped").value(tracer().dropped());
  w.key("metrics").raw(registry().to_json());
  w.end_object();
  return w.take();
}

}  // namespace

void flightrec_configure(std::string_view path, int process) {
  FlightRecState& s = state();
  std::lock_guard lock(s.mu);
  s.path.assign(path);
  s.process = process;
}

void flightrec_set_process(int process) {
  FlightRecState& s = state();
  std::lock_guard lock(s.mu);
  s.process = process;
}

void flightrec_note(std::string_view key, std::string_view value) {
  FlightRecState& s = state();
  std::lock_guard lock(s.mu);
  s.notes.insert_or_assign(std::string(key), std::string(value));
}

bool flightrec_dump(std::string_view reason) noexcept {
  FlightRecState& s = state();
  try {
    std::string path;
    int process = 0;
    std::map<std::string, std::string> notes;
    {
      std::lock_guard lock(s.mu);
      path = s.path;
      process = s.process;
      notes = s.notes;
    }
    if (path.empty()) {
      // Env fallback at dump time: processes that never parsed flags
      // (fault-matrix gtest children) still leave a postmortem.
      const char* env = std::getenv("PARDA_FLIGHT_RECORDER");
      if (env != nullptr && *env != '\0') path = env;
    }
    if (path.empty()) return false;
    if (s.dumped.exchange(true, std::memory_order_acq_rel)) return false;

    const std::string resolved = substitute_process(path, process);
    const std::string doc = render_dump(reason, process, notes);
    std::FILE* f = std::fopen(resolved.c_str(), "w");
    if (f == nullptr) return false;
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    log(LogLevel::kWarn, "flightrec.dump")
        .field("path", resolved)
        .field("reason", reason);
    return true;
  } catch (...) {
    return false;
  }
}

bool flightrec_dumped() noexcept {
  return state().dumped.load(std::memory_order_acquire);
}

namespace {

void fatal_signal_handler(int signo) {
  // Best effort: this allocates and locks, which is formally unsafe in a
  // signal handler — but the process is dying anyway, and the alternative
  // is no postmortem at all.
  const char* name = "signal";
  switch (signo) {
    case SIGSEGV: name = "signal:SIGSEGV"; break;
    case SIGBUS: name = "signal:SIGBUS"; break;
    case SIGFPE: name = "signal:SIGFPE"; break;
    case SIGABRT: name = "signal:SIGABRT"; break;
    default: break;
  }
  flightrec_dump(name);
  std::signal(signo, SIG_DFL);
  std::raise(signo);
}

}  // namespace

void flightrec_install_signal_handlers() {
  static std::once_flag once;
  std::call_once(once, [] {
    std::signal(SIGSEGV, fatal_signal_handler);
    std::signal(SIGBUS, fatal_signal_handler);
    std::signal(SIGFPE, fatal_signal_handler);
    std::signal(SIGABRT, fatal_signal_handler);
  });
}

void flightrec_reset_for_test() {
  FlightRecState& s = state();
  std::lock_guard lock(s.mu);
  s.path.clear();
  s.process = 0;
  s.notes.clear();
  s.dumped.store(false, std::memory_order_release);
}

}  // namespace parda::obs
