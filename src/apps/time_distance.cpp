#include "apps/time_distance.hpp"

#include "hash/addr_map.hpp"
#include "seq/olken.hpp"

namespace parda {

Histogram time_distance_histogram(std::span<const Addr> trace) {
  Histogram hist;
  AddrMap last_seen;
  for (std::size_t t = 0; t < trace.size(); ++t) {
    if (const Timestamp* last = last_seen.find(trace[t])) {
      // References strictly between the two accesses.
      hist.record(static_cast<Distance>(t - *last - 1));
    } else {
      hist.record(kInfiniteDistance);
    }
    last_seen.insert_or_assign(trace[t], t);
  }
  return hist;
}

LocalityComparison compare_locality_metrics(std::span<const Addr> trace) {
  LocalityComparison cmp;
  cmp.reuse = olken_analysis(trace);
  cmp.time = time_distance_histogram(trace);
  return cmp;
}

}  // namespace parda
