// Time distance vs reuse distance (paper Section I, advantage (2)):
// reuse distance counts *distinct* intervening addresses and is bounded by
// the footprint M; time distance counts *all* intervening references and
// is unbounded. This module computes both so the claim can be quantified
// on any trace.
#pragma once

#include <span>

#include "hist/histogram.hpp"
#include "util/types.hpp"

namespace parda {

/// Histogram of time distances: for each reference, the number of
/// references (distinct or not) since the previous access to the same
/// address; first references land in the infinity bin.
Histogram time_distance_histogram(std::span<const Addr> trace);

struct LocalityComparison {
  Histogram reuse;
  Histogram time;

  /// Reuse distance is never larger than time distance, so these gaps are
  /// always >= 0 (asserted in tests).
  double mean_gap() const {
    return time.mean_finite_distance() - reuse.mean_finite_distance();
  }
};

/// Computes both metrics over one trace.
LocalityComparison compare_locality_metrics(std::span<const Addr> trace);

}  // namespace parda
