#include "apps/shared_cache.hpp"

#include "hist/mrc.hpp"
#include "seq/olken.hpp"
#include "tree/splay_tree.hpp"
#include "util/check.hpp"
#include "util/prng.hpp"

namespace parda {

InterleavedTrace interleave_traces(
    const std::vector<std::vector<Addr>>& streams, InterleavePolicy policy,
    std::uint64_t seed) {
  InterleavedTrace out;
  std::size_t total = 0;
  for (const auto& s : streams) total += s.size();
  out.addresses.reserve(total);
  out.origin.reserve(total);

  std::vector<std::size_t> cursor(streams.size(), 0);
  Xoshiro256 rng(seed);

  if (policy == InterleavePolicy::kRoundRobin) {
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (std::size_t k = 0; k < streams.size(); ++k) {
        if (cursor[k] < streams[k].size()) {
          out.addresses.push_back(streams[k][cursor[k]++]);
          out.origin.push_back(static_cast<std::uint32_t>(k));
          progressed = true;
        }
      }
    }
  } else {
    std::vector<std::size_t> live;
    for (std::size_t k = 0; k < streams.size(); ++k) {
      if (!streams[k].empty()) live.push_back(k);
    }
    while (!live.empty()) {
      const std::size_t pick = rng.below(live.size());
      const std::size_t k = live[pick];
      out.addresses.push_back(streams[k][cursor[k]++]);
      out.origin.push_back(static_cast<std::uint32_t>(k));
      if (cursor[k] == streams[k].size()) {
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      }
    }
  }
  return out;
}

SharedCacheAnalysis analyze_shared_cache(
    const std::vector<std::vector<Addr>>& streams, InterleavePolicy policy,
    std::uint64_t seed) {
  SharedCacheAnalysis analysis;
  analysis.shared_view.resize(streams.size());
  analysis.solo_view.resize(streams.size());

  const InterleavedTrace mix = interleave_traces(streams, policy, seed);
  OlkenAnalyzer<SplayTree> analyzer;
  for (std::size_t i = 0; i < mix.addresses.size(); ++i) {
    const Distance d = analyzer.access(mix.addresses[i]);
    analysis.combined.record(d);
    analysis.shared_view[mix.origin[i]].record(d);
  }
  for (std::size_t k = 0; k < streams.size(); ++k) {
    analysis.solo_view[k] = olken_analysis(streams[k]);
  }
  return analysis;
}

std::uint64_t SharedCacheAnalysis::shared_misses(std::size_t k,
                                                 std::uint64_t cache) const {
  PARDA_CHECK(k < shared_view.size());
  return miss_count(shared_view[k], cache);
}

std::uint64_t SharedCacheAnalysis::solo_misses(std::size_t k,
                                               std::uint64_t cache) const {
  PARDA_CHECK(k < solo_view.size());
  return miss_count(solo_view[k], cache);
}

double SharedCacheAnalysis::contention_factor(std::size_t k,
                                              std::uint64_t cache) const {
  const std::uint64_t solo = solo_misses(k, cache);
  if (solo == 0) {
    return shared_misses(k, cache) == 0 ? 1.0 : 1e9;
  }
  return static_cast<double>(shared_misses(k, cache)) /
         static_cast<double>(solo);
}

}  // namespace parda
