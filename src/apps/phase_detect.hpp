// Locality phase detection (Shen et al. [16], cited in the paper's
// introduction): the trace is cut into fixed windows, each summarized by
// its log2-bucketed reuse distance signature; a phase boundary is declared
// where consecutive signatures diverge beyond a threshold.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/types.hpp"

namespace parda {

struct PhaseDetectOptions {
  std::size_t window = 1 << 14;  // references per window
  double threshold = 0.25;       // normalized L1 divergence in [0, 2]
};

struct PhaseBoundary {
  std::size_t position;  // trace index where the new phase begins
  double divergence;     // signature distance that triggered it
};

struct PhaseReport {
  std::vector<PhaseBoundary> boundaries;
  std::vector<std::vector<double>> signatures;  // per-window normalized
};

/// Normalized L1 distance between two signatures (range [0, 2]).
double signature_distance(std::span<const double> a,
                          std::span<const double> b) noexcept;

/// Runs windowed reuse distance analysis over the trace and reports phase
/// boundaries.
PhaseReport detect_phases(std::span<const Addr> trace,
                          const PhaseDetectOptions& options);

}  // namespace parda
