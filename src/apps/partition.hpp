// Shared-cache partitioning from per-stream reuse distance histograms
// (Lu et al. [9] "Soft-OLP" and Petoumenos et al. [14], cited in the
// paper's introduction and conclusions as the online use case Parda
// enables).
//
// Given K streams sharing a cache of C units, choose an allocation
// (c_1..c_K, sum = C) minimizing total misses, where stream k's misses at
// allocation c are read off its histogram. Miss curves from real programs
// need not be convex, so the greedy marginal-gain allocator is a heuristic;
// the exact dynamic-programming allocator is also provided and the tests
// compare them.
#pragma once

#include <cstdint>
#include <vector>

#include "hist/histogram.hpp"

namespace parda {

struct PartitionResult {
  std::vector<std::uint64_t> allocation;  // units per stream, sums to total
  std::uint64_t total_misses = 0;
};

/// Misses of one stream when granted `units` of cache.
std::uint64_t stream_misses(const Histogram& hist, std::uint64_t units);

/// Greedy marginal-gain allocation (unit by unit to the stream whose next
/// unit saves the most misses). O(total * K).
PartitionResult partition_greedy(const std::vector<Histogram>& streams,
                                 std::uint64_t total_units);

/// Exact allocation by dynamic programming over (stream, budget).
/// O(K * total^2) — fine for way-granularity problems.
PartitionResult partition_optimal(const std::vector<Histogram>& streams,
                                  std::uint64_t total_units);

/// Baseline: equal split (remainder to the lowest-index streams).
PartitionResult partition_even(const std::vector<Histogram>& streams,
                               std::uint64_t total_units);

}  // namespace parda
