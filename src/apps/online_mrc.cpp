#include "apps/online_mrc.hpp"

#include <cmath>

#include "hist/mrc.hpp"
#include "util/check.hpp"

namespace parda {

OnlineMrcMonitor::OnlineMrcMonitor(std::uint64_t bound, std::uint64_t window,
                                   double decay)
    : analyzer_(bound), window_(window), decay_(decay) {
  PARDA_CHECK(bound >= 1);
  PARDA_CHECK(window >= 1);
  PARDA_CHECK(decay > 0.0 && decay <= 1.0);
}

void OnlineMrcMonitor::access(Addr a) {
  current_.record(analyzer_.access(a));
  ++seen_;
  if (seen_ % window_ == 0) roll_window();
}

void OnlineMrcMonitor::roll_window() {
  if (decay_ == 1.0) {
    aggregate_.merge(current_);
  } else {
    // aggregate = round(decay * aggregate) + current, bin by bin.
    Histogram next;
    const auto& counts = aggregate_.counts();
    for (std::size_t d = 0; d < counts.size(); ++d) {
      if (counts[d] == 0) continue;
      const auto scaled = static_cast<std::uint64_t>(
          std::llround(decay_ * static_cast<double>(counts[d])));
      next.record(static_cast<Distance>(d), scaled);
    }
    next.record(kInfiniteDistance,
                static_cast<std::uint64_t>(std::llround(
                    decay_ * static_cast<double>(aggregate_.infinities()))));
    next.merge(current_);
    aggregate_ = std::move(next);
  }
  current_.clear();
  ++windows_;
}

Histogram OnlineMrcMonitor::snapshot() const {
  Histogram combined = aggregate_;
  combined.merge(current_);
  return combined;
}

double OnlineMrcMonitor::miss_ratio(std::uint64_t cache_size) const {
  const Histogram combined = snapshot();
  return parda::miss_ratio(combined, cache_size);
}

}  // namespace parda
